// Execution-planner A/B bench: what does the cost-model plan actually buy?
//
// Two claims are measured per evaluation network and written to
// BENCH_plan_fusion.json (baseline committed under bench/baselines/):
//
//  * iteration time — full fwd+bwd wall clock, planned vs plain, at 1 and
//    8 threads. Runs are interleaved (plain, planned, plain, ...) and the
//    minimum over repetitions is reported, so one noisy scheduling quantum
//    on a shared host cannot masquerade as a speedup or a regression.
//  * activation memory — the lifetime-planned arena footprint vs the plain
//    per-blob allocation, for the train and test phases separately (test
//    has no diff planes and much shorter lifetimes, so its saving is the
//    larger one). These numbers are exact properties of the plan, not
//    measurements; peak process RSS rides along in the report's meta
//    header (buildinfo::WriteMetaJson) for compare_bench.py to diff.
//
// Gate against the committed baseline with:
//   tools/compare_bench.py bench/baselines/BENCH_plan_fusion.json \
//       BENCH_plan_fusion.json
#include <algorithm>
#include <chrono>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cgdnn/core/rng.hpp"
#include "cgdnn/data/dataset.hpp"
#include "cgdnn/net/models.hpp"
#include "cgdnn/net/net.hpp"
#include "cgdnn/parallel/context.hpp"
#include "cgdnn/plan/planner.hpp"

namespace {

using namespace cgdnn;

constexpr int kReps = 3;       // interleaved repetitions, min is reported
constexpr int kWarmup = 1;

double MeasureIterationUs(const proto::NetParameter& param, int threads,
                          int iters, bool planned) {
  parallel::ParallelConfig cfg;
  cfg.mode = threads > 1 ? parallel::ExecutionMode::kCoarseGrain
                         : parallel::ExecutionMode::kSerial;
  cfg.num_threads = threads;
  cfg.merge = parallel::GradientMerge::kOrdered;
  parallel::Parallel::Scope scope(cfg);

  SeedGlobalRng(1);
  data::ClearDatasetCache();
  Net<float> net(param, Phase::kTrain);
  if (planned) {
    plan::PlannerOptions opts;
    opts.threads = threads;
    opts.use_cache = false;  // hermetic: plan fresh, time only execution
    auto built = plan::BuildPlan(net, opts);
    plan::ApplyPlan(&net, built.plan);
  }
  for (int i = 0; i < kWarmup; ++i) {
    net.ClearParamDiffs();
    net.ForwardBackward();
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    net.ClearParamDiffs();
    net.ForwardBackward();
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / iters;
}

struct ArenaNumbers {
  index_t per_blob = 0;
  index_t arena = 0;
  double saving_pct() const {
    return per_blob > 0
               ? 100.0 * (1.0 - static_cast<double>(arena) /
                                    static_cast<double>(per_blob))
               : 0.0;
  }
};

ArenaNumbers PlanArenaBytes(const proto::NetParameter& param, Phase phase,
                            int threads) {
  SeedGlobalRng(1);
  data::ClearDatasetCache();
  Net<float> net(param, phase);
  plan::PlannerOptions opts;
  opts.threads = threads;
  opts.use_cache = false;
  opts.measure = false;  // memory numbers are shape facts, skip the probes
  const auto built = plan::BuildPlan(net, opts);
  return {built.plan.arena.per_plane_bytes, built.plan.arena.total_bytes};
}

void BenchModel(const std::string& name, const proto::NetParameter& param,
                int iters) {
  auto& report = bench::BenchReport::Get();
  std::cout << "=== " << name << " ===\n";

  for (const int threads : {1, 8}) {
    double plain_us = 1e300, planned_us = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      plain_us = std::min(plain_us,
                          MeasureIterationUs(param, threads, iters, false));
      planned_us = std::min(planned_us,
                            MeasureIterationUs(param, threads, iters, true));
    }
    const std::string col = std::to_string(threads) + "t";
    report.Add(name, "plain_iteration_us", col, plain_us);
    report.Add(name, "planned_iteration_us", col, planned_us);
    report.Add(name, "planned_speedup", col, plain_us / planned_us);
    std::cout << "  " << threads << " thread(s): plain " << std::fixed
              << std::setprecision(0) << plain_us << " us, planned "
              << planned_us << " us  (" << std::setprecision(2)
              << plain_us / planned_us << "x)\n"
              << std::defaultfloat;
  }

  for (const Phase phase : {Phase::kTrain, Phase::kTest}) {
    const char* pname = phase == Phase::kTrain ? "train" : "test";
    const ArenaNumbers mem = PlanArenaBytes(param, phase, 8);
    const std::string section = name + "." + pname;
    report.Add(section, "activation_kb", "per_blob",
               static_cast<double>(mem.per_blob) / 1024.0);
    report.Add(section, "activation_kb", "arena",
               static_cast<double>(mem.arena) / 1024.0);
    report.Add(section, "activation_saving_pct", "value", mem.saving_pct());
    std::cout << "  " << pname << " activations: " << mem.per_blob / 1024
              << " KB per-blob -> " << mem.arena / 1024 << " KB arena  ("
              << std::fixed << std::setprecision(1) << mem.saving_pct()
              << "% saved)\n" << std::defaultfloat;
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Cost-model execution planner: fusion + arena A/B ===\n\n";

  models::ModelOptions mnist_opts;
  mnist_opts.batch_size = 64;
  mnist_opts.num_samples = 128;
  mnist_opts.with_accuracy = false;
  BenchModel("lenet", models::LeNet(mnist_opts), /*iters=*/5);

  models::ModelOptions cifar_opts;
  cifar_opts.batch_size = 100;
  cifar_opts.num_samples = 128;
  cifar_opts.with_accuracy = false;
  BenchModel("cifar10_quick", models::Cifar10Quick(cifar_opts), /*iters=*/3);

  bench::BenchReport::Get().Write("plan_fusion");
  return 0;
}
