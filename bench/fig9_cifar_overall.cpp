// Figure 9 reproduction: CIFAR-10 overall speedups — OpenMP vs plain-GPU vs
// cuDNN-GPU — plus per-layer GPU speedups.
//
// Paper shape targets: OpenMP ~6x at 8 threads, 8.83x at 16; plain-GPU ~6x
// (conv kernels 1.8x-6x, everything else >10x with pooling ~110x and LRN
// ~40x); cuDNN-GPU ~27x with conv speedups around 50x.
#include "bench_common.hpp"

int main() {
  using namespace cgdnn;
  auto ctx = bench::PrepareCifar();
  bench::PaperOverall paper;
  paper.omp8 = 6.0;
  paper.omp16 = 8.83;
  paper.plain_gpu = 6.0;
  paper.cudnn_gpu = 27.0;
  bench::PrintOverallFigure(ctx, "Figure 9: CIFAR-10 overall speedups", paper);
  bench::BenchReport::Get().Write("fig9_cifar_overall");
  return 0;
}
