// §3.2.1 memory-overhead table: extra memory from per-thread privatization
// at 16 threads vs the network's total allocation.
//
// Paper numbers: MNIST ≤640KB extra vs 8MB total; CIFAR-10 ≤1250KB extra vs
// 36MB total (~5%). The privatized storage is reused across layers, so the
// total is bounded by the most demanding layer, not the sum over layers.
// Our arena also privatizes the im2col column buffers (one per thread),
// which the paper accounts under the layer's own working memory — both
// components are reported separately below.
#include <iostream>

#include "bench_common.hpp"
#include "cgdnn/core/rng.hpp"
#include "cgdnn/data/dataset.hpp"
#include "cgdnn/net/models.hpp"
#include "cgdnn/net/net.hpp"
#include "cgdnn/parallel/context.hpp"
#include "cgdnn/parallel/privatizer.hpp"

namespace {

void Report(const char* name, const cgdnn::proto::NetParameter& param,
            double paper_extra_kb, double paper_total_mb) {
  using namespace cgdnn;
  constexpr int kThreads = 16;

  parallel::ParallelConfig cfg;
  cfg.mode = parallel::ExecutionMode::kCoarseGrain;
  cfg.num_threads = kThreads;
  cfg.merge = parallel::GradientMerge::kOrdered;
  parallel::Parallel::Scope scope(cfg);

  SeedGlobalRng(1);
  data::ClearDatasetCache();
  auto& pool = parallel::PrivatizationPool::Get();
  pool.Release();

  Net<float> net(param, Phase::kTrain);
  net.ClearParamDiffs();
  net.ForwardBackward();

  // Gradient-privatization share: the largest privatizing layer's
  // (weight+bias) gradient x threads. Only convolutions privatize
  // (InnerProduct partitions gradient rows across threads instead), which
  // is also the layer type the paper attributes its numbers to.
  std::size_t max_param_bytes = 0;
  for (const auto& layer : net.layers()) {
    if (std::string(layer->type()) != "Convolution") continue;
    std::size_t bytes = 0;
    for (const auto& blob : layer->blobs()) bytes += blob->data_bytes();
    max_param_bytes = std::max(max_param_bytes, bytes);
  }
  const double grad_extra_kb =
      static_cast<double>(max_param_bytes) * kThreads / 1024.0;
  const double arena_kb = static_cast<double>(pool.total_bytes()) / 1024.0;
  const double total_mb =
      static_cast<double>(net.MemoryUsedBytes()) / (1024.0 * 1024.0);

  auto& report = bench::BenchReport::Get();
  report.Add(name, "grad_privatization_kb", "value", grad_extra_kb);
  report.Add(name, "grad_privatization_kb", "paper_max", paper_extra_kb);
  report.Add(name, "arena_kb", "value", arena_kb);
  report.Add(name, "total_mb", "value", total_mb);
  report.Add(name, "total_mb", "paper", paper_total_mb);
  std::cout << name << " (16 threads):\n"
            << "  gradient privatization (largest layer x threads): "
            << grad_extra_kb << " KB   [paper: <=" << paper_extra_kb
            << " KB]\n"
            << "  full per-thread arena (incl. im2col buffers):      "
            << arena_kb << " KB\n"
            << "  network total allocation:                          "
            << total_mb << " MB   [paper: " << paper_total_mb << " MB]\n"
            << "  gradient overhead / total: "
            << 100.0 * grad_extra_kb / 1024.0 / total_mb
            << "%   [paper: ~5% including working buffers]\n\n";
}

}  // namespace

int main() {
  using namespace cgdnn;
  std::cout << "=== Memory overhead of batch-level privatization "
               "(paper 3.2.1) ===\n\n";
  models::ModelOptions mnist_opts;
  mnist_opts.batch_size = 64;
  mnist_opts.num_samples = 128;
  mnist_opts.with_accuracy = false;
  Report("MNIST / LeNet", models::LeNet(mnist_opts), 640, 8);

  models::ModelOptions cifar_opts;
  cifar_opts.batch_size = 100;
  cifar_opts.num_samples = 128;
  cifar_opts.with_accuracy = false;
  Report("CIFAR-10 / quick", models::Cifar10Quick(cifar_opts), 1250, 36);
  bench::BenchReport::Get().Write("tab_memory_overhead");
  return 0;
}
