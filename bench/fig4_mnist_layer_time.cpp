// Figure 4 reproduction: MNIST per-layer absolute execution time and share
// of one training iteration for 1/2/4/8/12/16 threads.
//
// Paper shape targets: convolution + pooling layers account for ~80% of the
// iteration; conv2 dominates; the "center" layers (pool2, ip1 tail, relu,
// ip2, loss) shrink with network depth (dimensionality reduction).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cgdnn;
  auto ctx = bench::PrepareMnist();
  bench::PrintLayerTimeFigure(ctx, "Figure 4: MNIST per-layer time");

  // Headline check printed for EXPERIMENTS.md: conv+pool share.
  double conv_pool = 0, total = 0;
  for (const auto& w : ctx.work) {
    const double us = w.forward.serial_us + w.backward.serial_us;
    total += us;
    if (w.type == "Convolution" || w.type == "Pooling") conv_pool += us;
  }
  std::cout << "conv+pool share of iteration: " << 100.0 * conv_pool / total
            << "% (paper: ~80%)\n";
  bench::BenchReport::Get().Add("headline", "conv_pool_share_pct", "value",
                                100.0 * conv_pool / total);
  bench::BenchReport::Get().Add("headline", "conv_pool_share_pct", "paper",
                                80.0);
  bench::BenchReport::Get().Write("fig4_mnist_layer_time");
  return 0;
}
