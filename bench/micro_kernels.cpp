// google-benchmark micro-kernels for the primitives every layer is built
// from. These are host measurements (no simulation): useful for regression
// tracking of the native BLAS and im2col implementations.
#include <benchmark/benchmark.h>

#include <vector>

#include "cgdnn/blas/blas.hpp"
#include "cgdnn/blas/im2col.hpp"
#include "cgdnn/core/rng.hpp"

namespace {

using namespace cgdnn;

std::vector<float> RandomVec(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.Uniform(-1, 1));
  return v;
}

// LeNet conv2 forward GEMM: 50 x (20*5*5=500) x (8*8=64).
void BM_GemmConv2Shape(benchmark::State& state) {
  const auto a = RandomVec(50 * 500, 1);
  const auto b = RandomVec(500 * 64, 2);
  std::vector<float> c(50 * 64);
  for (auto _ : state) {
    blas::gemm(blas::Transpose::kNo, blas::Transpose::kNo, 50, 64, 500, 1.0f,
               a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 50 * 64 * 500);
}
BENCHMARK(BM_GemmConv2Shape);

// LeNet ip1 forward GEMM: 64 x 800 -> 500.
void BM_GemmIp1Shape(benchmark::State& state) {
  const auto a = RandomVec(64 * 800, 3);
  const auto b = RandomVec(500 * 800, 4);
  std::vector<float> c(64 * 500);
  for (auto _ : state) {
    blas::gemm(blas::Transpose::kNo, blas::Transpose::kTrans, 64, 500, 800,
               1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 64 * 500 * 800);
}
BENCHMARK(BM_GemmIp1Shape);

// Transposed-A GEMM (the weight-gradient shape).
void BM_GemmWeightGradShape(benchmark::State& state) {
  const auto a = RandomVec(64 * 500, 5);  // top_diff
  const auto b = RandomVec(64 * 800, 6);  // bottom
  std::vector<float> c(500 * 800);
  for (auto _ : state) {
    blas::gemm(blas::Transpose::kTrans, blas::Transpose::kNo, 500, 800, 64,
               1.0f, a.data(), b.data(), 1.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 500 * 800 * 64);
}
BENCHMARK(BM_GemmWeightGradShape);

// MNIST conv1 im2col: 1x28x28, 5x5 kernel.
void BM_Im2ColMnist(benchmark::State& state) {
  const auto img = RandomVec(28 * 28, 7);
  std::vector<float> col(25 * 24 * 24);
  for (auto _ : state) {
    blas::im2col(img.data(), 1, 28, 28, 5, 5, 0, 0, 1, 1, 1, 1, col.data());
    benchmark::DoNotOptimize(col.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(col.size() * sizeof(float)));
}
BENCHMARK(BM_Im2ColMnist);

// CIFAR conv2 col2im (backward data path): 32 ch, 16x16, 5x5 pad 2.
void BM_Col2ImCifar(benchmark::State& state) {
  const auto col = RandomVec(32 * 25 * 16 * 16, 8);
  std::vector<float> img(32 * 16 * 16);
  for (auto _ : state) {
    blas::col2im(col.data(), 32, 16, 16, 5, 5, 2, 2, 1, 1, 1, 1, img.data());
    benchmark::DoNotOptimize(img.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(col.size() * sizeof(float)));
}
BENCHMARK(BM_Col2ImCifar);

void BM_Axpy(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto x = RandomVec(n, 9);
  std::vector<float> y(static_cast<std::size_t>(n), 1.0f);
  for (auto _ : state) {
    blas::axpy(n, 0.5f, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * n *
                          static_cast<int64_t>(3 * sizeof(float)));
}
BENCHMARK(BM_Axpy)->Arg(1024)->Arg(25050)->Arg(400000);

}  // namespace
