// Micro-kernel benchmarks: (1) an old-vs-new GEMM engine sweep over the
// actual im2col/inner-product shapes of LeNet and cifar10_quick, emitting
// BENCH_gemm_micro.json (the regression gate for the packed GEMM engine —
// see docs/perf.md and tools/compare_bench.py), and (2) google-benchmark
// timings of the primitives every layer is built from. These are host
// measurements (no simulation).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cgdnn/blas/blas.hpp"
#include "cgdnn/blas/im2col.hpp"
#include "cgdnn/core/rng.hpp"

namespace {

using namespace cgdnn;

std::vector<float> RandomVec(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.Uniform(-1, 1));
  return v;
}

// ---- old-vs-new GEMM shape sweep -------------------------------------------

// The pre-packing serial kernels (seed's blas::gemm), kept verbatim as the
// "old" side of the sweep so the speedup in BENCH_gemm_micro.json always
// refers to the same baseline.
namespace legacy {

constexpr index_t kBlockK = 256;

template <typename Dtype>
void ScaleC(index_t m, index_t n, Dtype beta, Dtype* c) {
  const index_t total = m * n;
  if (beta == Dtype(0)) {
    std::fill(c, c + total, Dtype(0));
  } else if (beta != Dtype(1)) {
    for (index_t i = 0; i < total; ++i) c[i] *= beta;
  }
}

template <typename Dtype>
void gemm(blas::Transpose trans_a, blas::Transpose trans_b, index_t m,
          index_t n, index_t k, Dtype alpha, const Dtype* a, const Dtype* b,
          Dtype beta, Dtype* c) {
  ScaleC(m, n, beta, c);
  if (m == 0 || n == 0 || k == 0 || alpha == Dtype(0)) return;
  const bool ta = trans_a == blas::Transpose::kTrans;
  const bool tb = trans_b == blas::Transpose::kTrans;
  if (!ta && !tb) {
    for (index_t k0 = 0; k0 < k; k0 += kBlockK) {
      const index_t k1 = std::min(k0 + kBlockK, k);
      for (index_t i = 0; i < m; ++i) {
        Dtype* ci = c + i * n;
        for (index_t kk = k0; kk < k1; ++kk) {
          const Dtype aik = alpha * a[i * k + kk];
          if (aik == Dtype(0)) continue;
          const Dtype* bk = b + kk * n;
          for (index_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
        }
      }
    }
  } else if (!ta && tb) {
    for (index_t i = 0; i < m; ++i) {
      const Dtype* ai = a + i * k;
      Dtype* ci = c + i * n;
      for (index_t j = 0; j < n; ++j) {
        const Dtype* bj = b + j * k;
        Dtype sum = 0;
        for (index_t kk = 0; kk < k; ++kk) sum += ai[kk] * bj[kk];
        ci[j] += alpha * sum;
      }
    }
  } else if (ta && !tb) {
    for (index_t kk = 0; kk < k; ++kk) {
      const Dtype* ak = a + kk * m;
      const Dtype* bk = b + kk * n;
      for (index_t i = 0; i < m; ++i) {
        const Dtype aik = alpha * ak[i];
        if (aik == Dtype(0)) continue;
        Dtype* ci = c + i * n;
        for (index_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
      }
    }
  } else {
    for (index_t i = 0; i < m; ++i) {
      Dtype* ci = c + i * n;
      for (index_t j = 0; j < n; ++j) {
        const Dtype* bj = b + j * k;
        Dtype sum = 0;
        for (index_t kk = 0; kk < k; ++kk) sum += a[kk * m + i] * bj[kk];
        ci[j] += alpha * sum;
      }
    }
  }
}

}  // namespace legacy

struct GemmShape {
  const char* name;  // <net>.<layer>.<pass>
  blas::Transpose ta, tb;
  index_t m, n, k;
  float beta;
};

// The exact per-sample GEMM shapes the conv/inner-product layers issue for
// LeNet (MNIST) and cifar10_quick: forward (im2col . W), dW (NT) and dX (TN)
// for each conv, plus the inner-product forward shapes (batch 64/100).
const GemmShape kGemmShapes[] = {
    // LeNet convs: conv1 20x(1*5*5=25) on 24x24, conv2 50x(20*5*5=500) on 8x8.
    {"lenet.conv1.fwd", blas::Transpose::kNo, blas::Transpose::kNo, 20, 576, 25, 0.f},
    {"lenet.conv1.dW", blas::Transpose::kNo, blas::Transpose::kTrans, 20, 25, 576, 1.f},
    {"lenet.conv1.dX", blas::Transpose::kTrans, blas::Transpose::kNo, 25, 576, 20, 0.f},
    {"lenet.conv2.fwd", blas::Transpose::kNo, blas::Transpose::kNo, 50, 64, 500, 0.f},
    {"lenet.conv2.dW", blas::Transpose::kNo, blas::Transpose::kTrans, 50, 500, 64, 1.f},
    {"lenet.conv2.dX", blas::Transpose::kTrans, blas::Transpose::kNo, 500, 64, 50, 0.f},
    // LeNet inner products at batch 64.
    {"lenet.ip1.fwd", blas::Transpose::kNo, blas::Transpose::kTrans, 64, 500, 800, 0.f},
    {"lenet.ip2.fwd", blas::Transpose::kNo, blas::Transpose::kTrans, 64, 10, 500, 0.f},
    // cifar10_quick convs: conv1 32x(3*5*5=75) on 32x32 (the acceptance
    // shape), conv2 32x(32*5*5=800) on 16x16, conv3 64x800 on 8x8.
    {"cifar.conv1.fwd", blas::Transpose::kNo, blas::Transpose::kNo, 32, 1024, 75, 0.f},
    {"cifar.conv1.dW", blas::Transpose::kNo, blas::Transpose::kTrans, 32, 75, 1024, 1.f},
    {"cifar.conv1.dX", blas::Transpose::kTrans, blas::Transpose::kNo, 75, 1024, 32, 0.f},
    {"cifar.conv2.fwd", blas::Transpose::kNo, blas::Transpose::kNo, 32, 256, 800, 0.f},
    {"cifar.conv2.dW", blas::Transpose::kNo, blas::Transpose::kTrans, 32, 800, 256, 1.f},
    {"cifar.conv2.dX", blas::Transpose::kTrans, blas::Transpose::kNo, 800, 256, 32, 0.f},
    {"cifar.conv3.fwd", blas::Transpose::kNo, blas::Transpose::kNo, 64, 64, 800, 0.f},
    {"cifar.conv3.dW", blas::Transpose::kNo, blas::Transpose::kTrans, 64, 800, 64, 1.f},
    {"cifar.conv3.dX", blas::Transpose::kTrans, blas::Transpose::kNo, 800, 64, 64, 0.f},
    // cifar10_quick inner products at batch 100.
    {"cifar.ip1.fwd", blas::Transpose::kNo, blas::Transpose::kTrans, 100, 64, 1024, 0.f},
    {"cifar.ip2.fwd", blas::Transpose::kNo, blas::Transpose::kTrans, 100, 10, 64, 0.f},
};

template <typename Fn>
double MeasureGflops(index_t m, index_t n, index_t k, Fn&& fn) {
  const double flops = 2.0 * static_cast<double>(m) * n * k;
  // Repeat until ~40ms of work so tiny shapes are not timer-noise.
  const int iters =
      std::max(1, static_cast<int>(2.0e8 / std::max(flops, 1.0)));
  fn();  // warmup (also first-touch of the pack scratch)
  double best_sec = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < iters; ++it) fn();
    const auto t1 = std::chrono::steady_clock::now();
    best_sec = std::min(best_sec,
                        std::chrono::duration<double>(t1 - t0).count() / iters);
  }
  return flops / best_sec / 1e9;
}

/// Runs the old-vs-new sweep, prints a table, and writes
/// BENCH_gemm_micro.json (sections: one per shape; columns: old_gflops,
/// new_gflops, speedup).
void RunGemmSweep() {
  std::printf("=== GEMM engine sweep: packed/register-tiled vs legacy "
              "kernels (single thread, float) ===\n");
  std::printf("%-18s %8s %8s %8s %12s %12s %9s\n", "shape", "m", "n", "k",
              "old GFLOP/s", "new GFLOP/s", "speedup");
  for (const GemmShape& s : kGemmShapes) {
    const auto a = RandomVec(s.m * s.k, 1);
    const auto b = RandomVec(s.k * s.n, 2);
    std::vector<float> c(static_cast<std::size_t>(s.m * s.n), 0.0f);
    const double old_gf = MeasureGflops(s.m, s.n, s.k, [&] {
      legacy::gemm(s.ta, s.tb, s.m, s.n, s.k, 1.0f, a.data(), b.data(),
                   s.beta, c.data());
      benchmark::DoNotOptimize(c.data());
    });
    const double new_gf = MeasureGflops(s.m, s.n, s.k, [&] {
      blas::gemm(s.ta, s.tb, s.m, s.n, s.k, 1.0f, a.data(), b.data(), s.beta,
                 c.data());
      benchmark::DoNotOptimize(c.data());
    });
    const double speedup = new_gf / old_gf;
    auto& report = bench::BenchReport::Get();
    report.Add("gemm_sweep", s.name, "old_gflops", old_gf);
    report.Add("gemm_sweep", s.name, "new_gflops", new_gf);
    report.Add("gemm_sweep", s.name, "speedup", speedup);
    std::printf("%-18s %8lld %8lld %8lld %12.2f %12.2f %8.2fx\n", s.name,
                static_cast<long long>(s.m), static_cast<long long>(s.n),
                static_cast<long long>(s.k), old_gf, new_gf, speedup);
  }
  bench::BenchReport::Get().Write("gemm_micro");
  std::printf("\n");
}

// ---- google-benchmark primitives -------------------------------------------

// LeNet conv2 forward GEMM: 50 x (20*5*5=500) x (8*8=64).
void BM_GemmConv2Shape(benchmark::State& state) {
  const auto a = RandomVec(50 * 500, 1);
  const auto b = RandomVec(500 * 64, 2);
  std::vector<float> c(50 * 64);
  for (auto _ : state) {
    blas::gemm(blas::Transpose::kNo, blas::Transpose::kNo, 50, 64, 500, 1.0f,
               a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 50 * 64 * 500);
}
BENCHMARK(BM_GemmConv2Shape);

// LeNet ip1 forward GEMM: 64 x 800 -> 500.
void BM_GemmIp1Shape(benchmark::State& state) {
  const auto a = RandomVec(64 * 800, 3);
  const auto b = RandomVec(500 * 800, 4);
  std::vector<float> c(64 * 500);
  for (auto _ : state) {
    blas::gemm(blas::Transpose::kNo, blas::Transpose::kTrans, 64, 500, 800,
               1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 64 * 500 * 800);
}
BENCHMARK(BM_GemmIp1Shape);

// Transposed-A GEMM (the weight-gradient shape).
void BM_GemmWeightGradShape(benchmark::State& state) {
  const auto a = RandomVec(64 * 500, 5);  // top_diff
  const auto b = RandomVec(64 * 800, 6);  // bottom
  std::vector<float> c(500 * 800);
  for (auto _ : state) {
    blas::gemm(blas::Transpose::kTrans, blas::Transpose::kNo, 500, 800, 64,
               1.0f, a.data(), b.data(), 1.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 500 * 800 * 64);
}
BENCHMARK(BM_GemmWeightGradShape);

// MNIST conv1 im2col: 1x28x28, 5x5 kernel.
void BM_Im2ColMnist(benchmark::State& state) {
  const auto img = RandomVec(28 * 28, 7);
  std::vector<float> col(25 * 24 * 24);
  for (auto _ : state) {
    blas::im2col(img.data(), 1, 28, 28, 5, 5, 0, 0, 1, 1, 1, 1, col.data());
    benchmark::DoNotOptimize(col.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(col.size() * sizeof(float)));
}
BENCHMARK(BM_Im2ColMnist);

// CIFAR conv2 col2im (backward data path): 32 ch, 16x16, 5x5 pad 2.
void BM_Col2ImCifar(benchmark::State& state) {
  const auto col = RandomVec(32 * 25 * 16 * 16, 8);
  std::vector<float> img(32 * 16 * 16);
  for (auto _ : state) {
    blas::col2im(col.data(), 32, 16, 16, 5, 5, 2, 2, 1, 1, 1, 1, img.data());
    benchmark::DoNotOptimize(img.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(col.size() * sizeof(float)));
}
BENCHMARK(BM_Col2ImCifar);

void BM_Axpy(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto x = RandomVec(n, 9);
  std::vector<float> y(static_cast<std::size_t>(n), 1.0f);
  for (auto _ : state) {
    blas::axpy(n, 0.5f, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * n *
                          static_cast<int64_t>(3 * sizeof(float)));
}
BENCHMARK(BM_Axpy)->Arg(1024)->Arg(25050)->Arg(400000);

}  // namespace

int main(int argc, char** argv) {
  RunGemmSweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
