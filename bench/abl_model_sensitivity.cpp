// Ablation: sensitivity of the multicore model to its calibrated machine
// constants (DESIGN.md §4 asks how much the reproduced Figure 5/6 shapes
// depend on the calibration). Each constant is halved/doubled around the
// calibrated value; the paper-critical observables are re-derived:
//   * ip1 forward speedup at 8 threads   (paper: 4.58x)
//   * conv2/conv1 forward ratio at 16    (paper: conv2 slightly above)
//   * overall speedup at 8 / 16 threads  (paper: ~6x / ~8x)
// The qualitative orderings must be calibration-robust; only magnitudes
// move — which is what this table demonstrates.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace cgdnn;

struct Observables {
  double ip1_8t = 0;
  double conv_ratio_16t = 0;
  double overall_8t = 0;
  double overall_16t = 0;
};

Observables Measure(const bench::FigureContext& ctx,
                    const sim::CpuMachine& machine) {
  sim::MulticoreSim cpu(machine);
  Observables o;
  const auto layer_speedup = [&](const std::string& name, int t) {
    for (std::size_t li = 0; li < ctx.work.size(); ++li) {
      if (ctx.work[li].name != name) continue;
      const sim::LayerWork* prev = li > 0 ? &ctx.work[li - 1] : nullptr;
      return ctx.work[li].forward.serial_us /
             cpu.SimulatePass(ctx.work[li], ctx.work[li].forward, prev, t,
                              false);
    }
    return 0.0;
  };
  o.ip1_8t = layer_speedup("ip1", 8);
  o.conv_ratio_16t = layer_speedup("conv2", 16) / layer_speedup("conv1", 16);
  const double serial = ctx.SerialTotalUs();
  o.overall_8t = serial / cpu.SimulateNet(ctx.work, 8).total_us;
  o.overall_16t = serial / cpu.SimulateNet(ctx.work, 16).total_us;
  return o;
}

void Print(const char* label, const Observables& o) {
  std::printf("%-28s %10.2f %12.2f %12.2f %12.2f\n", label, o.ip1_8t,
              o.conv_ratio_16t, o.overall_8t, o.overall_16t);
  auto& report = bench::BenchReport::Get();
  report.Add("sensitivity", label, "ip1_8T", o.ip1_8t);
  report.Add("sensitivity", label, "conv2_over_conv1_16T", o.conv_ratio_16t);
  report.Add("sensitivity", label, "overall_8T", o.overall_8t);
  report.Add("sensitivity", label, "overall_16T", o.overall_16t);
}

}  // namespace

int main() {
  auto ctx = cgdnn::bench::PrepareMnist(64, 2);
  std::printf(
      "=== Ablation: multicore-model calibration sensitivity (MNIST) ===\n"
      "paper targets: ip1@8T 4.58x | conv2>conv1 | overall ~6x@8T ~8x@16T\n\n");
  std::printf("%-28s %10s %12s %12s %12s\n", "machine variant", "ip1@8T",
              "conv2/conv1", "overall@8T", "overall@16T");

  const auto base = cgdnn::sim::CpuMachine::XeonE5_2667v2();
  Print("calibrated", Measure(ctx, base));
  for (const double f : {0.5, 2.0}) {
    auto m = base;
    m.locality_penalty *= f;
    char label[64];
    std::snprintf(label, sizeof(label), "locality_penalty x%.1f", f);
    Print(label, Measure(ctx, m));
  }
  for (const double f : {0.5, 2.0}) {
    auto m = base;
    m.numa_penalty *= f;
    char label[64];
    std::snprintf(label, sizeof(label), "numa_penalty x%.1f", f);
    Print(label, Measure(ctx, m));
  }
  for (const double f : {0.5, 2.0}) {
    auto m = base;
    m.fork_join_us *= f;
    char label[64];
    std::snprintf(label, sizeof(label), "fork_join_us x%.1f", f);
    Print(label, Measure(ctx, m));
  }
  for (const double f : {0.5, 2.0}) {
    auto m = base;
    m.balance_flops_per_byte *= f;
    char label[64];
    std::snprintf(label, sizeof(label), "balance_fpb x%.1f", f);
    Print(label, Measure(ctx, m));
  }
  std::printf(
      "\n(the orderings — ip1 saturating, conv2 above conv1, 6-10x overall "
      "band — persist across 4x swings of every constant; only magnitudes "
      "shift)\n");
  cgdnn::bench::BenchReport::Get().Write("abl_model_sensitivity");
  return 0;
}
