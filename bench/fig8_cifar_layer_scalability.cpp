// Figure 8 reproduction: CIFAR-10 per-layer scalability.
//
// Paper shape targets: conv1 ~5.87x at 8 threads / ~9x at 16 (sequential
// data layer + NUMA); pool1/relu1 scale to ~11x/13x; norm1 changes the
// data-thread distribution and reaches ~4.6x/10.8x; conv2 is dragged by
// norm1's different distribution; reductions in the backward pass are
// negligible.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cgdnn;
  auto ctx = bench::PrepareCifar();
  bench::PrintScalabilityFigure(ctx,
                                "Figure 8: CIFAR-10 per-layer scalability");

  const auto speedup = [&](const std::string& name, int threads) {
    for (std::size_t li = 0; li < ctx.work.size(); ++li) {
      if (ctx.work[li].name != name) continue;
      const sim::LayerWork* prev = li > 0 ? &ctx.work[li - 1] : nullptr;
      const double t = ctx.cpu.SimulatePass(ctx.work[li],
                                            ctx.work[li].forward, prev,
                                            threads, false);
      return ctx.work[li].forward.serial_us / t;
    }
    return 0.0;
  };
  std::cout << "conv1 fwd speedup @8T: " << speedup("conv1", 8)
            << " @16T: " << speedup("conv1", 16)
            << "  (paper: 5.87 / 9)\n";
  std::cout << "pool1 fwd speedup @8T: " << speedup("pool1", 8)
            << " @16T: " << speedup("pool1", 16) << "  (paper: 6.5 / 11)\n";
  std::cout << "conv2 fwd speedup @16T: " << speedup("conv2", 16)
            << "  (paper: ~8.25, limited by norm1's distribution)\n";
  bench::BenchReport::Get().Add("headline", "conv1_fwd_speedup", "8T",
                                speedup("conv1", 8));
  bench::BenchReport::Get().Add("headline", "conv1_fwd_speedup", "16T",
                                speedup("conv1", 16));
  bench::BenchReport::Get().Add("headline", "conv2_fwd_speedup", "16T",
                                speedup("conv2", 16));
  bench::BenchReport::Get().Write("fig8_cifar_layer_scalability");
  return 0;
}
