// Figure 7 reproduction: CIFAR-10 per-layer absolute execution time and
// relative weight per thread count.
//
// Paper shape targets: conv + pool + LRN layers account for ~85% of the
// iteration in all thread configurations; the deep tail (pool3, ip1, loss)
// is negligible.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cgdnn;
  auto ctx = bench::PrepareCifar();
  bench::PrintLayerTimeFigure(ctx, "Figure 7: CIFAR-10 per-layer time");

  double dominant = 0, total = 0;
  for (const auto& w : ctx.work) {
    const double us = w.forward.serial_us + w.backward.serial_us;
    total += us;
    if (w.type == "Convolution" || w.type == "Pooling" || w.type == "LRN") {
      dominant += us;
    }
  }
  std::cout << "conv+pool+norm share of iteration: "
            << 100.0 * dominant / total << "% (paper: ~85%)\n";
  bench::BenchReport::Get().Add("headline", "conv_pool_norm_share_pct",
                                "value", 100.0 * dominant / total);
  bench::BenchReport::Get().Add("headline", "conv_pool_norm_share_pct",
                                "paper", 85.0);
  bench::BenchReport::Get().Write("fig7_cifar_layer_time");
  return 0;
}
