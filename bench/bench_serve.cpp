// Serving-runtime bench: latency, throughput, and shed behaviour of the
// cgdnn::serve stack, written to BENCH_serve.json (baseline committed
// under bench/baselines/).
//
// Two regimes per evaluation network, both against the calibrated
// sustainable rate so the coordinates transfer across hosts:
//
//  * moderate (0.5x sustainable) — the latency numbers: client p50/p99 of
//    successful calls and admitted (server-side) p50/p99, plus achieved
//    QPS. Shed rate here should be ~0; a rise means admission control is
//    firing where it should not.
//  * overload (3x sustainable)  — the robustness numbers: shed rate (the
//    fraction of submissions explicitly rejected — HIGHER offered load
//    must turn into rejections, not queue growth), admitted p99 (must stay
//    deadline-bounded no matter the pressure), and the mean dynamic batch
//    size (expected to ride at max_batch under saturation).
//
// compare_bench.py direction markers: *_us, shed_rate, shed_frac and
// straggler_frac lower-is-better; *_qps higher-is-better. Gate a change
// with:
//   tools/compare_bench.py bench/baselines/BENCH_serve.json BENCH_serve.json
#include <iomanip>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "cgdnn/core/rng.hpp"
#include "cgdnn/data/dataset.hpp"
#include "cgdnn/parallel/context.hpp"
#include "cgdnn/serve/loadgen.hpp"
#include "cgdnn/serve/server.hpp"

namespace {

using namespace cgdnn;

void BenchRegime(const std::string& model_name,
                 const proto::NetParameter& param, const char* regime,
                 double rate_factor, double duration_s) {
  SeedGlobalRng(1);
  data::ClearDatasetCache();

  serve::ServerOptions sopts;
  sopts.workers = 2;
  sopts.max_batch = 8;
  sopts.plan_cache = false;  // hermetic: no on-disk state
  serve::Server server(param, sopts);
  const double sustainable = server.CalibrateSustainableQps();
  server.Start();

  serve::LoadGenOptions lopts;
  lopts.rate_qps = rate_factor * sustainable;
  lopts.duration_s = duration_s;
  lopts.seed = 1;
  const serve::LoadGenReport rep = serve::RunLoad(server, lopts);
  server.Stop();
  const serve::ServerStats stats = server.stats();
  // Tail attribution from the live-stats window (default 10 s — covers the
  // whole 1.5 s run including the drain): where the p99 went and how
  // concentrated the slow requests were on one worker.
  const serve::StatsSnapshot live = server.live_stats();

  const double shed_rate =
      stats.submitted > 0
          ? static_cast<double>(stats.shed_queue_full + stats.shed_load) /
                static_cast<double>(stats.submitted)
          : 0.0;

  auto& report = bench::BenchReport::Get();
  const std::string section = model_name + "." + regime;
  report.Add(section, "p50_us", "client", rep.p50_us);
  report.Add(section, "p99_us", "client", rep.p99_us);
  report.Add(section, "p50_us", "admitted", rep.server_p50_us);
  report.Add(section, "p99_us", "admitted", rep.server_p99_us);
  report.Add(section, "achieved_qps", "value", rep.achieved_qps);
  report.Add(section, "sustainable_qps", "value", sustainable);
  report.Add(section, "shed_rate", "value", shed_rate);
  report.Add(section, "batch_size_mean", "value", stats.batch_size_mean);
  // Attribution coordinates (lower-is-better in compare_bench.py): a rise
  // in shed_frac/straggler_frac flags an admission or imbalance regression
  // even when the headline percentiles still pass.
  report.Add(section, "shed_frac", "window", live.shed_rate);
  report.Add(section, "straggler_frac", "window", live.straggler_frac);
  report.Add(section, "queue_wait_p99_us", "window", live.queue_wait_p99_us);
  report.Add(section, "compute_p99_us", "window", live.compute_p99_us);

  std::cout << "  " << std::left << std::setw(9) << regime << std::right
            << " (" << std::fixed << std::setprecision(1) << rate_factor
            << "x): " << std::setprecision(0) << rep.achieved_qps << "/"
            << rep.offered_qps << " req/s, client p99 "
            << std::setprecision(1) << rep.p99_us / 1e3
            << " ms, admitted p99 " << rep.server_p99_us / 1e3
            << " ms, shed " << std::setprecision(1) << 100.0 * shed_rate
            << "%, batch " << std::setprecision(2) << stats.batch_size_mean
            << ", p99 " << live.p99_class << "\n" << std::defaultfloat;
}

void BenchModel(const std::string& name, const proto::NetParameter& param) {
  std::cout << "=== " << name << " ===\n";
  BenchRegime(name, param, "moderate", 0.5, 1.5);
  BenchRegime(name, param, "overload", 3.0, 1.5);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Serving runtime: latency / throughput / shed ===\n\n";

  // Workers parallelize the pool; intra-op threading must stay serial
  // (Server::Start's contract with the privatization arenas).
  parallel::ParallelConfig cfg;
  cfg.mode = parallel::ExecutionMode::kSerial;
  cfg.num_threads = 1;
  parallel::Parallel::Scope scope(cfg);

  models::ModelOptions mnist_opts;
  mnist_opts.batch_size = 8;
  mnist_opts.num_samples = 32;
  mnist_opts.with_accuracy = false;
  BenchModel("lenet", models::LeNet(mnist_opts));

  models::ModelOptions cifar_opts;
  cifar_opts.batch_size = 8;
  cifar_opts.num_samples = 32;
  cifar_opts.with_accuracy = false;
  BenchModel("cifar10_quick", models::Cifar10Quick(cifar_opts));

  bench::BenchReport::Get().Write("serve");
  return 0;
}
