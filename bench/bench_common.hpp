// Shared harness for the figure-reproduction benches (DESIGN.md §3).
//
// Every figure binary follows the same recipe:
//  1. build the real network and MEASURE per-layer serial forward/backward
//     times on this host (plus analytic FLOP/byte counts from real shapes);
//  2. feed that workload into the calibrated machine models (16-core
//     dual-NUMA Xeon E5-2667v2 CPU; Tesla K40 plain/cuDNN GPU) to obtain
//     the multi-thread and GPU series of the paper's figures;
//  3. print the series next to the paper's reported values so the shape
//     comparison (who wins, by what factor, where it saturates) is direct.
// When the host itself has multiple cores, real OpenMP timings are also
// measured and printed.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "cgdnn/net/models.hpp"
#include "cgdnn/net/net.hpp"
#include "cgdnn/sim/gpu_sim.hpp"
#include "cgdnn/sim/multicore_sim.hpp"
#include "cgdnn/sim/workload.hpp"

namespace cgdnn::bench {

inline const std::vector<int> kThreadSweep = {1, 2, 4, 8, 12, 16};

struct FigureContext {
  std::string dataset;
  index_t batch = 0;
  std::vector<sim::LayerWork> work;
  sim::MulticoreSim cpu{sim::CpuMachine::XeonE5_2667v2()};
  sim::GpuSim gpu{sim::GpuMachine::TeslaK40()};

  double SerialTotalUs() const;
};

/// Builds LeNet / CIFAR-quick on synthetic data and measures the workload.
FigureContext PrepareMnist(index_t batch = 64, int measure_iters = 3);
FigureContext PrepareCifar(index_t batch = 100, int measure_iters = 2);

/// Figure 4/7: per-layer absolute µs and share of the iteration, one block
/// per thread count (horizontal bars of the paper).
void PrintLayerTimeFigure(const FigureContext& ctx, const std::string& title);

/// Figure 5/8: per-layer speedup vs serial for each thread count.
void PrintScalabilityFigure(const FigureContext& ctx, const std::string& title);

struct PaperOverall {
  // Paper-reported overall speedups for the shape comparison.
  double omp8 = 0, omp16 = 0, plain_gpu = 0, cudnn_gpu = 0;
};

/// Figure 6/9: overall OpenMP/GPU speedups plus per-layer GPU speedups.
void PrintOverallFigure(const FigureContext& ctx, const std::string& title,
                        const PaperOverall& paper);

/// True when this host can actually run a multi-core sweep (its value on
/// the 1-core reference container is false; the harness then reports only
/// model-based series, as documented in DESIGN.md §4).
bool HostHasMultipleCores();

/// Machine-readable mirror of the figure output. The Print* helpers record
/// every value they print; a bench main then calls
/// `BenchReport::Get().Write("fig4_mnist_layer_time")` to produce
/// BENCH_fig4_mnist_layer_time.json in the working directory
/// (tools/run_benches.sh collects these under bench/results/). Benches that
/// print custom tables record their headline numbers with Add() directly.
class BenchReport {
 public:
  static BenchReport& Get();

  /// Records `section/key/column = value`, e.g.
  /// Add("forward", "conv1", "8T", 512.0). Repeated calls with the same
  /// coordinates overwrite.
  void Add(const std::string& section, const std::string& key,
           const std::string& column, double value);

  /// Writes BENCH_<bench_name>.json and clears the accumulated rows.
  /// Returns false (with a note on stderr) when the file cannot be opened.
  bool Write(const std::string& bench_name);

 private:
  struct Row {
    std::string section;
    std::string key;
    std::vector<std::pair<std::string, double>> values;
  };
  std::vector<Row> rows_;
};

/// Measures REAL wall-clock per-iteration time of one training iteration at
/// the given thread count (only meaningful on multi-core hosts).
double MeasureRealIterationUs(const proto::NetParameter& param, int threads,
                              int iters);

}  // namespace cgdnn::bench
