// Figure 5 reproduction: MNIST per-layer scalability (speedup vs serial for
// 2..16 threads).
//
// Paper shape targets: u-shaped cluster (big conv/pool layers on the sides
// scale; the tiny center layers do not); ip1 ~4.6-5.9x and pool2 ~5.5-5.7x
// at 8 threads with no further gains; conv2 scales better than conv1 (conv1
// inherits the sequential data layer's memory footprint).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cgdnn;
  auto ctx = bench::PrepareMnist();
  bench::PrintScalabilityFigure(ctx, "Figure 5: MNIST per-layer scalability");

  // Shape assertions (reported, not enforced): conv1 vs conv2 at 16T.
  const auto speedup = [&](const std::string& name, int threads) {
    for (std::size_t li = 0; li < ctx.work.size(); ++li) {
      if (ctx.work[li].name != name) continue;
      const sim::LayerWork* prev = li > 0 ? &ctx.work[li - 1] : nullptr;
      const double t = ctx.cpu.SimulatePass(ctx.work[li],
                                            ctx.work[li].forward, prev,
                                            threads, false);
      return ctx.work[li].forward.serial_us / t;
    }
    return 0.0;
  };
  std::cout << "conv1 fwd speedup @16T: " << speedup("conv1", 16)
            << "  conv2 fwd: " << speedup("conv2", 16)
            << "  (paper: conv2 ~10% above conv1)\n";
  std::cout << "ip1 fwd speedup @8T: " << speedup("ip1", 8)
            << " @16T: " << speedup("ip1", 16)
            << "  (paper: 4.58 at 8T, flat beyond)\n";
  std::cout << "pool2 fwd speedup @8T: " << speedup("pool2", 8)
            << " @16T: " << speedup("pool2", 16)
            << "  (paper: 5.52 at 8T, flat beyond)\n";
  bench::BenchReport::Get().Add("headline", "ip1_fwd_speedup", "8T",
                                speedup("ip1", 8));
  bench::BenchReport::Get().Add("headline", "ip1_fwd_speedup", "paper_8T",
                                4.58);
  bench::BenchReport::Get().Add("headline", "pool2_fwd_speedup", "8T",
                                speedup("pool2", 8));
  bench::BenchReport::Get().Add("headline", "pool2_fwd_speedup", "paper_8T",
                                5.52);
  bench::BenchReport::Get().Write("fig5_mnist_layer_scalability");
  return 0;
}
