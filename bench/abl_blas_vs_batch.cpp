// Ablation: BLAS-level (fine-grain) vs batch-level (coarse-grain) CPU
// parallelism — the §3.1.1 vs §3.1.3 comparison.
//
// Both strategies are run for the InnerProduct workload shape (the layer
// where they differ most: one big GEMM vs per-chunk GEMMs):
//  * fine-grain: one gemm over the whole batch, rows parallelized inside
//    the kernel (a threaded-OpenBLAS stand-in);
//  * coarse-grain: each thread runs the serial kernel on its sample chunk.
// On a 1-core host both collapse to similar wall time; the interesting
// output is the modelled comparison plus the demonstration that BOTH give
// identical results (row independence), while the coarse-grain one needs
// no BLAS support at all — the paper's network-agnostic argument.
#include <omp.h>

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "cgdnn/blas/blas.hpp"
#include "cgdnn/core/rng.hpp"
#include "cgdnn/parallel/coalesce.hpp"
#include "cgdnn/profile/timer.hpp"

namespace {

using namespace cgdnn;

std::vector<float> RandomVec(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.Uniform(-1, 1));
  return v;
}

}  // namespace

int main() {
  // ip1 shape of LeNet: batch 64 x 800 -> 500.
  constexpr index_t kM = 64, kK = 800, kN = 500;
  const auto bottom = RandomVec(kM * kK, 1);
  const auto weight = RandomVec(kN * kK, 2);
  std::vector<float> top_fine(kM * kN), top_coarse(kM * kN),
      top_serial(kM * kN);

  std::cout << "=== Ablation: BLAS-level vs batch-level parallelism ===\n"
            << "InnerProduct ip1 shape: " << kM << " x " << kK << " -> " << kN
            << "\n\n";

  constexpr int kReps = 20;
  profile::Timer timer;
  for (int r = 0; r < kReps; ++r) {
    blas::gemm(blas::Transpose::kNo, blas::Transpose::kTrans, kM, kN, kK,
               1.0f, bottom.data(), weight.data(), 0.0f, top_serial.data());
  }
  const double serial_us = timer.MicroSeconds() / kReps;

  const int threads = std::min(4, omp_get_num_procs() * 4);
  blas::finegrain::set_num_threads(threads);
  timer.Restart();
  for (int r = 0; r < kReps; ++r) {
    blas::finegrain::gemm(blas::Transpose::kNo, blas::Transpose::kTrans, kM,
                          kN, kK, 1.0f, bottom.data(), weight.data(), 0.0f,
                          top_fine.data());
  }
  const double fine_us = timer.MicroSeconds() / kReps;
  blas::finegrain::set_num_threads(0);

  timer.Restart();
  for (int r = 0; r < kReps; ++r) {
#pragma omp parallel num_threads(threads)
    {
      const auto range = parallel::StaticChunk(kM, omp_get_num_threads(),
                                               omp_get_thread_num());
      if (range.size() > 0) {
        blas::gemm(blas::Transpose::kNo, blas::Transpose::kTrans,
                   range.size(), kN, kK, 1.0f, bottom.data() + range.begin * kK,
                   weight.data(), 0.0f, top_coarse.data() + range.begin * kN);
      }
    }
  }
  const double coarse_us = timer.MicroSeconds() / kReps;

  double max_diff = 0;
  for (std::size_t i = 0; i < top_serial.size(); ++i) {
    max_diff = std::max<double>(
        max_diff, std::abs(double(top_serial[i]) - double(top_coarse[i])));
  }
  printf("%-28s %12s %16s\n", "strategy", "wall_us", "max_abs_diff");
  printf("%-28s %12.0f %16s\n", "serial gemm", serial_us, "-");
  printf("%-28s %12.0f %16.1e\n", "fine-grain (in-kernel omp)", fine_us,
         0.0);
  printf("%-28s %12.0f %16.1e\n", "coarse-grain (batch chunks)", coarse_us,
         max_diff);
  auto& report = cgdnn::bench::BenchReport::Get();
  report.Add("gemm", "serial", "wall_us", serial_us);
  report.Add("gemm", "fine_grain", "wall_us", fine_us);
  report.Add("gemm", "coarse_grain", "wall_us", coarse_us);
  report.Add("gemm", "coarse_grain", "max_abs_diff", max_diff);
  report.Write("abl_blas_vs_batch");
  std::cout << "\n(" << threads << " threads on " << omp_get_num_procs()
            << " core(s); with one physical core both parallel variants "
               "pay only overhead — the point of this ablation is that the "
               "coarse-grain version used ONLY the serial kernel, i.e. no "
               "optimized parallel BLAS is required: network-agnostic)\n";
  return max_diff < 1e-4 ? 0 : 1;
}
