// Figure 6 reproduction: MNIST overall speedups — OpenMP (2..16 threads)
// vs plain-GPU and cuDNN-GPU — plus per-layer GPU speedups.
//
// Paper shape targets: OpenMP ~6x at 8 threads, ~8x at 16; plain-GPU ~2x
// (its generic convolution kernels are the bottleneck: 0.43x-2.9x);
// cuDNN-GPU ~12x; plain-GPU pooling forward 57x/62x, dropping to ~27x under
// cuDNN.
#include "bench_common.hpp"

int main() {
  using namespace cgdnn;
  auto ctx = bench::PrepareMnist();
  bench::PaperOverall paper;
  paper.omp8 = 6.0;
  paper.omp16 = 8.0;
  paper.plain_gpu = 2.0;
  paper.cudnn_gpu = 12.0;
  bench::PrintOverallFigure(ctx, "Figure 6: MNIST overall speedups", paper);
  bench::BenchReport::Get().Write("fig6_mnist_overall");
  return 0;
}
