// Ablation: loop coalescing (§3.2.1 / §4.3 "work unbalance").
//
// The coarse-grain transformation coalesces the batch loop with inner loops
// so the minimal static-scheduling work unit shrinks. Without coalescing,
// one loop iteration = one full sample, and thread counts that do not
// divide the batch leave whole-sample bubbles. This bench quantifies the
// effect two ways:
//  1. analytically — exact static-chunk makespans of the pool1 layer's
//     iteration space with and without coalescing;
//  2. via the multicore model — simulated pool1 forward time both ways.
#include <iostream>

#include "bench_common.hpp"
#include "cgdnn/parallel/coalesce.hpp"

int main() {
  using namespace cgdnn;
  std::cout << "=== Ablation: loop coalescing vs bare batch loop ===\n"
            << "LeNet pool1: batch 64, 20 channels -> coalesced space 1280 "
               "planes; bare space 64 samples.\n\n";

  printf("%8s %22s %22s %12s\n", "threads", "coalesced_makespan",
         "batch_only_makespan", "advantage");
  for (const int t : bench::kThreadSweep) {
    // Slowest-thread share of the iteration space (1.0 = serial).
    const auto makespan = [&](index_t total) {
      index_t max_chunk = 0;
      for (int tid = 0; tid < t; ++tid) {
        max_chunk =
            std::max(max_chunk, parallel::StaticChunk(total, t, tid).size());
      }
      return static_cast<double>(max_chunk) / static_cast<double>(total);
    };
    const double coalesced = makespan(64 * 20);
    const double batch_only = makespan(64);
    printf("%8d %22.4f %22.4f %11.1f%%\n", t, coalesced, batch_only,
           100.0 * (batch_only - coalesced) / batch_only);
    auto& report = bench::BenchReport::Get();
    const std::string col = std::to_string(t) + "T";
    report.Add("makespan", "coalesced", col, coalesced);
    report.Add("makespan", "batch_only", col, batch_only);
  }

  std::cout << "\nSimulated pool1 forward time (us), 16-core Xeon model, via "
               "iteration-space choice:\n";
  auto ctx = bench::PrepareMnist(/*batch=*/64, /*measure_iters=*/2);
  for (std::size_t li = 0; li < ctx.work.size(); ++li) {
    if (ctx.work[li].name != "pool1") continue;
    const sim::LayerWork* prev = li > 0 ? &ctx.work[li - 1] : nullptr;
    sim::LayerWork coalesced = ctx.work[li];
    sim::LayerWork batch_only = ctx.work[li];
    batch_only.forward.par_iters = 64;  // bare batch loop
    printf("%8s %14s %14s\n", "threads", "coalesced", "batch-only");
    for (const int t : bench::kThreadSweep) {
      const double c_us =
          ctx.cpu.SimulatePass(coalesced, coalesced.forward, prev, t, false);
      const double b_us =
          ctx.cpu.SimulatePass(batch_only, batch_only.forward, prev, t,
                               false);
      printf("%8d %14.0f %14.0f\n", t, c_us, b_us);
      auto& report = bench::BenchReport::Get();
      const std::string col = std::to_string(t) + "T";
      report.Add("pool1_fwd_us", "coalesced", col, c_us);
      report.Add("pool1_fwd_us", "batch_only", col, b_us);
    }
  }
  std::cout << "\n(the 12-thread row shows the paper's point: 64 samples "
               "over 12 threads quantize to 6-sample chunks, an 11% bubble, "
               "while 1280 coalesced planes split almost evenly)\n";
  bench::BenchReport::Get().Write("abl_coalescing");
  return 0;
}
