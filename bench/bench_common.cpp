#include "bench_common.hpp"

#include <omp.h>

#include <fstream>
#include <iomanip>
#include <iostream>

#include "cgdnn/core/buildinfo.hpp"
#include "cgdnn/core/rng.hpp"
#include "cgdnn/data/dataset.hpp"
#include "cgdnn/parallel/context.hpp"
#include "cgdnn/profile/timer.hpp"

namespace cgdnn::bench {

double FigureContext::SerialTotalUs() const {
  double total = 0;
  for (const auto& w : work) {
    total += w.forward.serial_us + w.backward.serial_us;
  }
  return total;
}

namespace {

FigureContext Prepare(const proto::NetParameter& param,
                      const std::string& dataset, index_t batch,
                      int measure_iters) {
  FigureContext ctx;
  ctx.dataset = dataset;
  ctx.batch = batch;
  SeedGlobalRng(1);
  data::ClearDatasetCache();
  Net<float> net(param, Phase::kTrain);
  ctx.work = sim::ExtractWorkload(net, measure_iters, /*warmup=*/1);
  return ctx;
}

}  // namespace

FigureContext PrepareMnist(index_t batch, int measure_iters) {
  models::ModelOptions opts;
  opts.batch_size = batch;
  opts.num_samples = std::max<index_t>(batch, 128);
  opts.with_accuracy = false;
  return Prepare(models::LeNet(opts), "MNIST (LeNet)", batch, measure_iters);
}

FigureContext PrepareCifar(index_t batch, int measure_iters) {
  models::ModelOptions opts;
  opts.batch_size = batch;
  opts.num_samples = std::max<index_t>(batch, 128);
  opts.with_accuracy = false;
  return Prepare(models::Cifar10Quick(opts), "CIFAR-10 (quick)", batch,
                 measure_iters);
}

void PrintLayerTimeFigure(const FigureContext& ctx, const std::string& title) {
  std::cout << "=== " << title << " ===\n"
            << ctx.dataset << ", batch " << ctx.batch
            << ". Absolute per-layer execution time (microseconds) and share "
               "of one training iteration.\n"
            << "1-thread column: measured serial time on this host; other "
               "columns: calibrated 16-core Xeon E5-2667v2 model.\n\n";
  for (const auto phase : {false, true}) {  // forward, backward
    std::cout << (phase ? "backward pass:\n" : "forward pass:\n");
    std::cout << std::left << std::setw(10) << "layer";
    for (const int t : kThreadSweep) {
      std::cout << std::right << std::setw(11) << (std::to_string(t) + "T");
    }
    std::cout << std::setw(9) << "share1T" << "\n";
    const double serial_total = ctx.SerialTotalUs();
    for (std::size_t li = 0; li < ctx.work.size(); ++li) {
      const auto& lw = ctx.work[li];
      const auto& pass = phase ? lw.backward : lw.forward;
      if (pass.serial_us <= 0) continue;
      std::cout << std::left << std::setw(10) << lw.name << std::right
                << std::fixed << std::setprecision(0);
      const sim::LayerWork* prev = li > 0 ? &ctx.work[li - 1] : nullptr;
      const char* section = phase ? "backward_us" : "forward_us";
      for (const int t : kThreadSweep) {
        const double us = ctx.cpu.SimulatePass(lw, pass, prev, t, phase);
        BenchReport::Get().Add(section, lw.name, std::to_string(t) + "T", us);
        std::cout << std::setw(11) << us;
      }
      const double share = 100.0 * pass.serial_us / serial_total;
      BenchReport::Get().Add(section, lw.name, "share1T_pct", share);
      std::cout << std::setprecision(1) << std::setw(8) << share << "%\n";
    }
  }
  std::cout << "\n";
}

void PrintScalabilityFigure(const FigureContext& ctx,
                            const std::string& title) {
  std::cout << "=== " << title << " ===\n"
            << ctx.dataset << ", batch " << ctx.batch
            << ". Per-layer speedup over the serial execution "
               "(model: 16-core dual-NUMA Xeon E5-2667v2).\n\n";
  for (const auto phase : {false, true}) {
    std::cout << (phase ? "backward pass:\n" : "forward pass:\n");
    std::cout << std::left << std::setw(10) << "layer";
    for (const int t : kThreadSweep) {
      if (t == 1) continue;
      std::cout << std::right << std::setw(9) << (std::to_string(t) + "T");
    }
    std::cout << "\n";
    for (std::size_t li = 0; li < ctx.work.size(); ++li) {
      const auto& lw = ctx.work[li];
      const auto& pass = phase ? lw.backward : lw.forward;
      if (pass.serial_us <= 0 || lw.sequential) continue;
      const sim::LayerWork* prev = li > 0 ? &ctx.work[li - 1] : nullptr;
      std::cout << std::left << std::setw(10) << lw.name << std::right
                << std::fixed << std::setprecision(2);
      for (const int t : kThreadSweep) {
        if (t == 1) continue;
        const double st = ctx.cpu.SimulatePass(lw, pass, prev, t, phase);
        BenchReport::Get().Add(
            phase ? "backward_speedup" : "forward_speedup", lw.name,
            std::to_string(t) + "T", pass.serial_us / st);
        std::cout << std::setw(9) << pass.serial_us / st;
      }
      std::cout << "\n";
    }
  }
  std::cout << "\n";
}

void PrintOverallFigure(const FigureContext& ctx, const std::string& title,
                        const PaperOverall& paper) {
  std::cout << "=== " << title << " ===\n"
            << ctx.dataset << ", batch " << ctx.batch
            << ". Overall training-iteration speedup over serial CPU.\n\n";
  const double serial = ctx.SerialTotalUs();

  std::cout << std::left << std::setw(14) << "version" << std::right
            << std::setw(12) << "time_us" << std::setw(10) << "speedup"
            << std::setw(10) << "paper" << "\n";
  std::cout << std::left << std::setw(14) << "serial" << std::right
            << std::fixed << std::setprecision(0) << std::setw(12) << serial
            << std::setprecision(2) << std::setw(10) << 1.0 << std::setw(10)
            << 1.0 << "\n";
  BenchReport::Get().Add("overall", "serial", "time_us", serial);
  BenchReport::Get().Add("overall", "serial", "speedup", 1.0);
  for (const int t : kThreadSweep) {
    if (t == 1) continue;
    const auto simres = ctx.cpu.SimulateNet(ctx.work, t);
    double paper_val = 0;
    if (t == 8) paper_val = paper.omp8;
    if (t == 16) paper_val = paper.omp16;
    const std::string version = "OpenMP-" + std::to_string(t);
    BenchReport::Get().Add("overall", version, "time_us", simres.total_us);
    BenchReport::Get().Add("overall", version, "speedup",
                           serial / simres.total_us);
    if (paper_val > 0) {
      BenchReport::Get().Add("overall", version, "paper", paper_val);
    }
    std::cout << std::left << std::setw(14) << version << std::right
              << std::setprecision(0) << std::setw(12) << simres.total_us
              << std::setprecision(2) << std::setw(10)
              << serial / simres.total_us;
    if (paper_val > 0) {
      std::cout << std::setw(10) << paper_val;
    } else {
      std::cout << std::setw(10) << "-";
    }
    std::cout << "\n";
  }
  for (const auto variant : {sim::GpuVariant::kPlain, sim::GpuVariant::kCudnn}) {
    const auto simres = ctx.gpu.SimulateNet(ctx.work, variant);
    const double paper_val = variant == sim::GpuVariant::kPlain
                                 ? paper.plain_gpu
                                 : paper.cudnn_gpu;
    const std::string version = sim::GpuVariantName(variant);
    BenchReport::Get().Add("overall", version, "time_us", simres.total_us);
    BenchReport::Get().Add("overall", version, "speedup",
                           serial / simres.total_us);
    BenchReport::Get().Add("overall", version, "paper", paper_val);
    std::cout << std::left << std::setw(14) << version
              << std::right << std::setprecision(0) << std::setw(12)
              << simres.total_us << std::setprecision(2) << std::setw(10)
              << serial / simres.total_us << std::setw(10) << paper_val
              << "\n";
  }

  // Right side of the paper's figure: per-layer GPU speedups.
  std::cout << "\nper-layer GPU speedup over serial CPU:\n"
            << std::left << std::setw(10) << "layer" << std::right
            << std::setw(12) << "plain-fwd" << std::setw(12) << "plain-bwd"
            << std::setw(12) << "cudnn-fwd" << std::setw(12) << "cudnn-bwd"
            << "\n";
  for (const auto& lw : ctx.work) {
    if (lw.sequential || lw.forward.serial_us <= 0) continue;
    std::cout << std::left << std::setw(10) << lw.name << std::right
              << std::fixed << std::setprecision(2);
    for (const auto variant :
         {sim::GpuVariant::kPlain, sim::GpuVariant::kCudnn}) {
      const double fwd = ctx.gpu.SimulatePass(lw, lw.forward, variant, false);
      const double bwd = ctx.gpu.SimulatePass(lw, lw.backward, variant, true);
      const char* tag = variant == sim::GpuVariant::kPlain ? "plain" : "cudnn";
      BenchReport::Get().Add("gpu_per_layer", lw.name,
                             std::string(tag) + "_fwd",
                             lw.forward.serial_us / fwd);
      BenchReport::Get().Add("gpu_per_layer", lw.name,
                             std::string(tag) + "_bwd",
                             bwd > 0 ? lw.backward.serial_us / bwd : 0.0);
      std::cout << std::setw(12) << lw.forward.serial_us / fwd;
      std::cout << std::setw(12)
                << (bwd > 0 ? lw.backward.serial_us / bwd : 0.0);
    }
    std::cout << "\n";
  }

  if (HostHasMultipleCores()) {
    std::cout << "\n(host has " << omp_get_num_procs()
              << " cores: run examples/mnist_lenet with varying thread "
                 "counts for real wall-clock speedups)\n";
  } else {
    std::cout << "\n(host has 1 core: OpenMP timings are model-based; "
                 "correctness of the parallel code is covered by the test "
                 "suite on oversubscribed threads)\n";
  }
  std::cout << "\n";
}

bool HostHasMultipleCores() { return omp_get_num_procs() > 1; }

BenchReport& BenchReport::Get() {
  static BenchReport report;
  return report;
}

void BenchReport::Add(const std::string& section, const std::string& key,
                      const std::string& column, double value) {
  Row* row = nullptr;
  for (Row& r : rows_) {
    if (r.section == section && r.key == key) {
      row = &r;
      break;
    }
  }
  if (row == nullptr) {
    rows_.push_back({section, key, {}});
    row = &rows_.back();
  }
  for (auto& [col, val] : row->values) {
    if (col == column) {
      val = value;
      return;
    }
  }
  row->values.emplace_back(column, value);
}

bool BenchReport::Write(const std::string& bench_name) {
  const std::string path = "BENCH_" + bench_name + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "note: cannot write " << path << "\n";
    rows_.clear();
    return false;
  }
  out << "{\n  \"bench\": \"" << bench_name << "\",\n  \"meta\": ";
  buildinfo::WriteMetaJson(out);
  out << ",\n  \"rows\": [";
  out << std::setprecision(15);
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    out << (i ? ",\n" : "\n") << "    {\"section\": \"" << r.section
        << "\", \"key\": \"" << r.key << "\", \"values\": {";
    for (std::size_t j = 0; j < r.values.size(); ++j) {
      out << (j ? ", " : "") << "\"" << r.values[j].first
          << "\": " << r.values[j].second;
    }
    out << "}}";
  }
  out << "\n  ]\n}\n";
  rows_.clear();
  std::cerr << "report written to " << path << "\n";
  return true;
}

double MeasureRealIterationUs(const proto::NetParameter& param, int threads,
                              int iters) {
  parallel::ParallelConfig cfg;
  cfg.mode = threads > 1 ? parallel::ExecutionMode::kCoarseGrain
                         : parallel::ExecutionMode::kSerial;
  cfg.num_threads = threads;
  parallel::Parallel::Scope scope(cfg);
  SeedGlobalRng(1);
  Net<float> net(param, Phase::kTrain);
  net.ForwardBackward();  // warmup
  profile::Timer timer;
  for (int i = 0; i < iters; ++i) {
    net.ClearParamDiffs();
    net.ForwardBackward();
  }
  return timer.MicroSeconds() / iters;
}

}  // namespace cgdnn::bench
