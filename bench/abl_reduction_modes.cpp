// Ablation: gradient-merge strategies (§3.2.1's ordered-vs-reduction
// discussion). Trains the same LeNet under each merge mode and reports
//  * the final loss and its divergence from the serial trajectory,
//  * run-to-run reproducibility (the paper's reason to prefer ordered
//    during tuning/debugging),
//  * measured merge wall-time on this host (oversubscribed threads), and
//  * the modelled merge cost at 16 threads.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "cgdnn/core/rng.hpp"
#include "cgdnn/data/dataset.hpp"
#include "cgdnn/net/models.hpp"
#include "cgdnn/parallel/context.hpp"
#include "cgdnn/profile/timer.hpp"
#include "cgdnn/solvers/solver.hpp"

namespace {

std::vector<float> Train(cgdnn::parallel::GradientMerge merge, int threads,
                         cgdnn::index_t iters, double* wall_us) {
  using namespace cgdnn;
  parallel::ParallelConfig cfg;
  cfg.mode = threads > 1 ? parallel::ExecutionMode::kCoarseGrain
                         : parallel::ExecutionMode::kSerial;
  cfg.num_threads = threads;
  cfg.merge = merge;
  parallel::Parallel::Scope scope(cfg);

  data::ClearDatasetCache();
  models::ModelOptions opts;
  opts.batch_size = 16;
  opts.num_samples = 64;
  opts.with_accuracy = false;
  auto param = models::LeNetSolver(opts);
  param.test_iter = 0;
  param.max_iter = iters;
  const auto solver = CreateSolver<float>(param);
  profile::Timer timer;
  solver->Step(iters);
  if (wall_us != nullptr) *wall_us = timer.MicroSeconds();
  return solver->loss_history();
}

}  // namespace

int main() {
  using namespace cgdnn;
  constexpr index_t kIters = 10;
  std::cout << "=== Ablation: gradient merge strategies (paper 3.2.1) ===\n"
            << "LeNet, batch 16, 4 threads, " << kIters << " iterations.\n\n";

  double serial_us = 0;
  const auto serial =
      Train(parallel::GradientMerge::kSerial, 1, kIters, &serial_us);

  std::cout << std::left;
  printf("%-10s %14s %18s %14s %12s\n", "merge", "final_loss",
         "max_rel_vs_serial", "reproducible", "wall_us");
  printf("%-10s %14.6f %18s %14s %12.0f\n", "serial", double(serial.back()),
         "-", "yes", serial_us);

  for (const auto merge :
       {parallel::GradientMerge::kOrdered, parallel::GradientMerge::kTree,
        parallel::GradientMerge::kAtomic}) {
    double wall = 0;
    const auto run1 = Train(merge, 4, kIters, &wall);
    const auto run2 = Train(merge, 4, kIters, nullptr);
    double max_rel = 0;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      max_rel = std::max(
          max_rel, std::abs(double(run1[i]) - double(serial[i])) /
                       std::max(1e-12, std::abs(double(serial[i]))));
    }
    printf("%-10s %14.6f %18.3e %14s %12.0f\n",
           parallel::GradientMergeName(merge), double(run1.back()), max_rel,
           run1 == run2 ? "yes" : "NO", wall);
    auto& report = bench::BenchReport::Get();
    const std::string key = parallel::GradientMergeName(merge);
    report.Add("merge", key, "final_loss", double(run1.back()));
    report.Add("merge", key, "max_rel_vs_serial", max_rel);
    report.Add("merge", key, "reproducible", run1 == run2 ? 1.0 : 0.0);
    report.Add("merge", key, "wall_us", wall);
  }
  std::cout << "\n(ordered: deterministic and closest to serial — the "
               "paper's choice for tuning/debugging; atomic is unordered "
               "and may differ run to run)\n";
  auto& report = bench::BenchReport::Get();
  report.Add("merge", "serial", "final_loss", double(serial.back()));
  report.Add("merge", "serial", "wall_us", serial_us);
  report.Write("abl_reduction_modes");
  return 0;
}
