// Deterministic, splittable random number generation.
//
// Reproducibility is a core requirement of the paper's convergence-invariance
// property: a training run must produce bit-identical results regardless of
// the number of OpenMP threads. We therefore avoid std::mt19937 seeded from
// time and instead use a counter-based design: every Rng is fully determined
// by (seed, stream), and independent streams can be split off for
// sample-indexed work (e.g. dropout masks keyed by element index) so the
// random values consumed do not depend on thread interleaving.
#pragma once

#include <cstdint>

#include "cgdnn/core/common.hpp"

namespace cgdnn {

/// SplitMix64 step — used for seeding and as a cheap stateless hash.
std::uint64_t SplitMix64(std::uint64_t& state);

/// Stateless 64-bit mix of two words (used to derive per-index streams).
std::uint64_t HashCombine64(std::uint64_t a, std::uint64_t b);

/// Complete serialized state of an Rng. Six words fully determine the
/// generator, so a checkpointed training run can restore the exact point in
/// the random stream (bit-identical resume).
struct RngState {
  std::uint64_t s[4];
  std::uint64_t seed;
  std::uint64_t stream;
};

/// xoshiro256** generator with deterministic (seed, stream) initialization.
class Rng {
 public:
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);

  /// Next raw 64-bit value.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  index_t UniformInt(index_t lo, index_t hi);
  /// Standard normal via Box-Muller (no cached spare: stateless per call
  /// pair, which keeps replay behaviour simple).
  double Gaussian(double mean, double stddev);
  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Derives an independent generator for the given sub-stream. Splitting
  /// does not perturb this generator's state.
  Rng Split(std::uint64_t substream) const;

  /// Exports the full generator state (checkpointing).
  RngState state() const;
  /// Restores a state previously captured with state(). Rejects the all-zero
  /// xoshiro state, which a genuine export can never contain.
  void set_state(const RngState& state);

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
  std::uint64_t stream_;
};

/// Process-wide generator (the analogue of Caffe's Caffe::rng), used for
/// weight initialization. Only ever advanced from serial code; per-sample
/// randomness (dropout masks, data augmentation) uses Split()-derived
/// streams instead so results do not depend on thread interleaving.
Rng& GlobalRng();
/// Reseeds the global generator (Caffe::set_random_seed).
void SeedGlobalRng(std::uint64_t seed);

}  // namespace cgdnn
