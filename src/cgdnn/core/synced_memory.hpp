// SyncedMemory: the Blob backing store, modelled after Caffe's class of the
// same name. Caffe uses it to conceal CPU<->GPU transfers; since this
// reproduction has no physical GPU (see DESIGN.md §4) the "device" side is a
// second host buffer. Keeping the two-headed state machine intact preserves
// Caffe's API and lets the simulator account for host<->device traffic: every
// synchronizing transition is counted in TransferStats.
#pragma once

#include <cstddef>
#include <memory>

#include "cgdnn/core/common.hpp"

namespace cgdnn {

/// Global counters of modelled host<->device transfers (bytes and count).
struct TransferStats {
  std::size_t to_device_bytes = 0;
  std::size_t to_host_bytes = 0;
  std::size_t to_device_count = 0;
  std::size_t to_host_count = 0;

  static TransferStats& Get();
  void Reset();
};

/// Allocates `bytes` of 64-byte-aligned zero-initialized memory; RAII-owned.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t bytes);
  ~AlignedBuffer();

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;

  void* get() const { return ptr_; }
  std::size_t bytes() const { return bytes_; }

 private:
  void* ptr_ = nullptr;
  std::size_t bytes_ = 0;
};

class SyncedMemory {
 public:
  enum class Head { kUninitialized, kAtCpu, kAtDevice, kSynced };

  explicit SyncedMemory(std::size_t bytes);
  ~SyncedMemory() = default;
  SyncedMemory(const SyncedMemory&) = delete;
  SyncedMemory& operator=(const SyncedMemory&) = delete;

  const void* cpu_data();
  const void* device_data();
  void* mutable_cpu_data();
  void* mutable_device_data();

  /// Adopt an external CPU buffer without copying (used for zero-copy
  /// sharing, e.g. data layers handing a batch slice to the net). The caller
  /// retains ownership and must keep the buffer alive.
  void set_cpu_data(void* data);

  std::size_t size() const { return bytes_; }
  Head head() const { return head_; }

 private:
  void ToCpu();
  void ToDevice();

  AlignedBuffer cpu_buffer_;
  AlignedBuffer device_buffer_;
  void* cpu_ptr_ = nullptr;     // points into cpu_buffer_ or external memory
  void* device_ptr_ = nullptr;  // points into device_buffer_
  bool own_cpu_data_ = true;
  std::size_t bytes_ = 0;
  Head head_ = Head::kUninitialized;
};

}  // namespace cgdnn
