#include "cgdnn/core/arena.hpp"

#include <algorithm>

namespace cgdnn {

namespace {
constexpr std::size_t kAlign = 64;
constexpr std::size_t kMinChunkBytes = 64 * 1024;

std::size_t AlignUp(std::size_t n) { return (n + kAlign - 1) / kAlign * kAlign; }
}  // namespace

void* ThreadArena::Allocate(std::size_t bytes) {
  const std::size_t need = AlignUp(std::max<std::size_t>(bytes, 1));
  for (Chunk& chunk : chunks_) {
    if (chunk.buffer.bytes() - chunk.used >= need) {
      void* p = static_cast<char*>(chunk.buffer.get()) + chunk.used;
      chunk.used += need;
      used_ += need;
      return p;
    }
  }
  Chunk chunk;
  const std::size_t chunk_bytes = std::max(need, kMinChunkBytes);
  chunk.buffer = AlignedBuffer(chunk_bytes);
  chunk.used = need;
  capacity_ += chunk_bytes;
  used_ += need;
  chunks_.push_back(std::move(chunk));
  return chunks_.back().buffer.get();
}

void ThreadArena::ResetScope() {
  for (Chunk& chunk : chunks_) chunk.used = 0;
  used_ = 0;
}

}  // namespace cgdnn
