#include "cgdnn/core/buildinfo.hpp"

#include <omp.h>

#include <sstream>

#ifdef __unix__
#include <sys/resource.h>
#include <unistd.h>
#endif

// Configure-time facts arrive as compile definitions (set in
// src/cgdnn/core/CMakeLists.txt so only this file rebuilds when they
// change). Sensible fallbacks keep non-CMake builds compiling.
#ifndef CGDNN_GIT_SHA
#define CGDNN_GIT_SHA "unknown"
#endif
#ifndef CGDNN_COMPILER_ID
#define CGDNN_COMPILER_ID "unknown"
#endif
#ifndef CGDNN_BUILD_TYPE
#define CGDNN_BUILD_TYPE "unknown"
#endif
#ifndef CGDNN_CXX_FLAGS
#define CGDNN_CXX_FLAGS ""
#endif
#ifndef CGDNN_TRACE_ENABLED
#define CGDNN_TRACE_ENABLED 1
#endif
#ifndef CGDNN_CHECK_ENABLED
#define CGDNN_CHECK_ENABLED 1
#endif
#ifndef CGDNN_BLACKBOX_ENABLED
#define CGDNN_BLACKBOX_ENABLED 1
#endif
#ifndef CGDNN_SANITIZE_NAME
#define CGDNN_SANITIZE_NAME ""
#endif

#define CGDNN_STR_IMPL(x) #x
#define CGDNN_STR(x) CGDNN_STR_IMPL(x)

namespace cgdnn::buildinfo {

namespace {

constexpr const char* kOptions =
    "trace=" CGDNN_STR(CGDNN_TRACE_ENABLED)
    " check=" CGDNN_STR(CGDNN_CHECK_ENABLED)
    " blackbox=" CGDNN_STR(CGDNN_BLACKBOX_ENABLED)
    " sanitize=" CGDNN_SANITIZE_NAME
#ifdef NDEBUG
    " ndebug=1";
#else
    " ndebug=0";
#endif

void WriteJsonEscaped(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
  os << '"';
}

}  // namespace

const Info& Get() {
  static const Info info = {CGDNN_GIT_SHA, CGDNN_COMPILER_ID, CGDNN_BUILD_TYPE,
                            CGDNN_CXX_FLAGS, kOptions};
  return info;
}

const std::string& Hostname() {
  static const std::string hostname = [] {
#ifdef __unix__
    char buf[256] = {};
    if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') {
      return std::string(buf);
    }
#endif
    return std::string("unknown");
  }();
  return hostname;
}

void WriteMetaJson(std::ostream& os) {
  const Info& info = Get();
  os << "{\"git_sha\": ";
  WriteJsonEscaped(os, info.git_sha);
  os << ", \"compiler\": ";
  WriteJsonEscaped(os, info.compiler);
  os << ", \"build_type\": ";
  WriteJsonEscaped(os, info.build_type);
  os << ", \"flags\": ";
  WriteJsonEscaped(os, info.flags);
  os << ", \"options\": ";
  WriteJsonEscaped(os, info.options);
  os << ", \"threads\": " << omp_get_max_threads();
#ifdef __unix__
  // Peak RSS of the whole process so far (ru_maxrss is KB on Linux). Meta
  // headers are written when the report is, i.e. after the workload — the
  // number covers the run. compare_bench.py diffs it between reports that
  // both carry it (the arena planner's memory claims are gated on this).
  if (struct rusage ru; getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
    os << ", \"peak_rss_kb\": " << ru.ru_maxrss;
  }
#endif
  os << ", \"hostname\": ";
  WriteJsonEscaped(os, Hostname().c_str());
  os << "}";
}

std::string MetaJson() {
  std::ostringstream os;
  WriteMetaJson(os);
  return os.str();
}

}  // namespace cgdnn::buildinfo
