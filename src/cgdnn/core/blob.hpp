// Blob: the N-dimensional, C-contiguous array that carries all data through
// the network (batches, parameters, gradients), mirroring Caffe's blob design
// described in §2.1.1 of the paper. A blob holds two planes: `data` (values)
// and `diff` (gradients). The canonical image layout is N x C x H x W with
// the value at (n, c, h, w) stored at ((n*C + c)*H + h)*W + w.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cgdnn/core/common.hpp"
#include "cgdnn/core/synced_memory.hpp"

namespace cgdnn {

template <typename Dtype>
class Blob {
 public:
  Blob() = default;
  /// Convenience 4-d constructor (num, channels, height, width).
  Blob(index_t num, index_t channels, index_t height, index_t width);
  explicit Blob(const std::vector<index_t>& shape);

  /// Changes the blob's dimensions, reallocating only when the new element
  /// count exceeds the current capacity (Caffe semantics: Reshape is cheap
  /// inside the steady-state training loop).
  void Reshape(const std::vector<index_t>& shape);
  void Reshape(index_t num, index_t channels, index_t height, index_t width);
  void ReshapeLike(const Blob& other);

  const std::vector<index_t>& shape() const { return shape_; }
  index_t shape(int axis) const { return shape_[CanonicalAxisIndex(axis)]; }
  int num_axes() const { return static_cast<int>(shape_.size()); }
  index_t count() const { return count_; }
  /// Product of dimensions in [start_axis, end_axis).
  index_t count(int start_axis, int end_axis) const;
  /// Product of dimensions from start_axis to the end.
  index_t count(int start_axis) const;

  /// Supports negative axes (-1 = last), throwing when out of range.
  int CanonicalAxisIndex(int axis) const;

  /// Canonical 4-d accessors; axes beyond num_axes() count as size 1,
  /// matching Caffe's LegacyShape behaviour for vectors/matrices.
  index_t num() const { return LegacyShape(0); }
  index_t channels() const { return LegacyShape(1); }
  index_t height() const { return LegacyShape(2); }
  index_t width() const { return LegacyShape(3); }
  index_t LegacyShape(int axis) const;

  index_t offset(index_t n, index_t c = 0, index_t h = 0, index_t w = 0) const;
  index_t offset(const std::vector<index_t>& indices) const;

  const Dtype* cpu_data() const;
  Dtype* mutable_cpu_data();
  const Dtype* cpu_diff() const;
  Dtype* mutable_cpu_diff();

  Dtype data_at(index_t n, index_t c, index_t h, index_t w) const;
  Dtype diff_at(index_t n, index_t c, index_t h, index_t w) const;

  /// data := data - diff   (the SGD update applied by solvers).
  void Update();

  /// L1 norm / sum of squares of each plane.
  Dtype asum_data() const;
  Dtype asum_diff() const;
  Dtype sumsq_data() const;
  Dtype sumsq_diff() const;
  /// In-place scaling of each plane.
  void scale_data(Dtype factor);
  void scale_diff(Dtype factor);
  void set_data(Dtype value);
  void set_diff(Dtype value);

  /// Share another blob's data/diff storage (zero copy). Shapes must match
  /// in count. Used by Split layers and train/test weight sharing.
  void ShareData(const Blob& other);
  void ShareDiff(const Blob& other);

  /// Copy data (and optionally diff) from another blob, reshaping if asked.
  void CopyFrom(const Blob& other, bool copy_diff = false,
                bool reshape = false);

  /// Human-readable shape, e.g. "64 32 16 16 (32768)".
  std::string shape_string() const;

  /// Bytes held by the data plane (diff lazily allocates the same amount).
  std::size_t data_bytes() const { return count_ * sizeof(Dtype); }

  const std::shared_ptr<SyncedMemory>& data() const { return data_; }
  const std::shared_ptr<SyncedMemory>& diff() const { return diff_; }

 private:
  std::shared_ptr<SyncedMemory> data_;
  std::shared_ptr<SyncedMemory> diff_;
  std::vector<index_t> shape_;
  index_t count_ = 0;
  index_t capacity_ = 0;
};

}  // namespace cgdnn
