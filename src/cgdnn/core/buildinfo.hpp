// Build/run provenance for emitted artifacts.
//
// Every JSON artifact the tools write (Chrome traces, metrics dumps,
// telemetry streams, BENCH_*/AUDIT_* reports, black-box dumps) stamps the
// same `meta` header: git SHA, compiler + flags, the CGDNN_* feature
// options the binary was built with, the OpenMP thread ceiling and the
// hostname. Two reports can then be compared knowing WHAT produced them —
// tools/compare_bench.py prints both sides' meta whenever it flags a
// regression, so "regression" vs "different build / different machine" is
// answerable from the reports alone.
#pragma once

#include <ostream>
#include <string>

namespace cgdnn::buildinfo {

/// Static facts about this binary, captured at configure/compile time.
struct Info {
  const char* git_sha;    ///< short SHA at configure time ("unknown" outside git)
  const char* compiler;   ///< e.g. "GNU 13.2.0"
  const char* build_type; ///< CMAKE_BUILD_TYPE
  const char* flags;      ///< CMAKE_CXX_FLAGS (may be empty)
  const char* options;    ///< CGDNN_* feature switches, "k=v k=v" form
};

const Info& Get();

/// Hostname via gethostname(2) ("unknown" on failure). Cached.
const std::string& Hostname();

/// Writes the meta header as one JSON object (no trailing separator):
///   {"git_sha": "...", "compiler": "...", "build_type": "...",
///    "flags": "...", "options": "...", "threads": N,
///    "peak_rss_kb": N, "hostname": "..."}
/// `threads` is omp_get_max_threads() — the run's thread ceiling.
/// `peak_rss_kb` is the process peak RSS at write time (getrusage;
/// omitted on platforms without it).
void WriteMetaJson(std::ostream& os);

/// WriteMetaJson into a string (handy for sinks that write line-wise).
std::string MetaJson();

}  // namespace cgdnn::buildinfo
