#include "cgdnn/core/common.hpp"

namespace cgdnn {

std::string Error::Format(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": " << msg;
  return os.str();
}

namespace detail {
void ThrowCheckFailure(const char* file, int line, const char* expr,
                       const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr;
  if (!msg.empty()) os << " " << msg;
  throw Error(file, line, os.str());
}
}  // namespace detail

const char* PhaseName(Phase phase) {
  return phase == Phase::kTrain ? "TRAIN" : "TEST";
}

}  // namespace cgdnn
