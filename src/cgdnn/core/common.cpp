#include "cgdnn/core/common.hpp"

#include <chrono>

namespace cgdnn {

std::uint64_t MonotonicNowNs() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

std::string Error::Format(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": " << msg;
  return os.str();
}

namespace detail {
void ThrowCheckFailure(const char* file, int line, const char* expr,
                       const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr;
  if (!msg.empty()) os << " " << msg;
  throw Error(file, line, os.str());
}
}  // namespace detail

const char* PhaseName(Phase phase) {
  return phase == Phase::kTrain ? "TRAIN" : "TEST";
}

}  // namespace cgdnn
