#include "cgdnn/core/blob.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

namespace cgdnn {

template <typename Dtype>
Blob<Dtype>::Blob(index_t num, index_t channels, index_t height,
                  index_t width) {
  Reshape(num, channels, height, width);
}

template <typename Dtype>
Blob<Dtype>::Blob(const std::vector<index_t>& shape) {
  Reshape(shape);
}

template <typename Dtype>
void Blob<Dtype>::Reshape(const std::vector<index_t>& shape) {
  CGDNN_CHECK_LE(shape.size(), 32u) << "blob has too many axes";
  index_t count = 1;
  for (index_t dim : shape) {
    CGDNN_CHECK_GE(dim, 0) << "blob dimensions must be non-negative";
    if (count != 0) {
      CGDNN_CHECK_LE(dim, std::numeric_limits<index_t>::max() / std::max<index_t>(count, 1))
          << "blob size overflows index_t";
    }
    count *= dim;
  }
  shape_ = shape;
  count_ = count;
  if (count_ > capacity_) {
    capacity_ = count_;
    data_ = std::make_shared<SyncedMemory>(capacity_ * sizeof(Dtype));
    diff_ = std::make_shared<SyncedMemory>(capacity_ * sizeof(Dtype));
  }
}

template <typename Dtype>
void Blob<Dtype>::Reshape(index_t num, index_t channels, index_t height,
                          index_t width) {
  Reshape({num, channels, height, width});
}

template <typename Dtype>
void Blob<Dtype>::ReshapeLike(const Blob& other) {
  Reshape(other.shape());
}

template <typename Dtype>
index_t Blob<Dtype>::count(int start_axis, int end_axis) const {
  CGDNN_CHECK_LE(start_axis, end_axis);
  CGDNN_CHECK_GE(start_axis, 0);
  CGDNN_CHECK_LE(end_axis, num_axes());
  index_t c = 1;
  for (int i = start_axis; i < end_axis; ++i) c *= shape_[i];
  return c;
}

template <typename Dtype>
index_t Blob<Dtype>::count(int start_axis) const {
  return count(start_axis, num_axes());
}

template <typename Dtype>
int Blob<Dtype>::CanonicalAxisIndex(int axis) const {
  CGDNN_CHECK_GE(axis, -num_axes()) << "axis out of range for " << shape_string();
  CGDNN_CHECK_LT(axis, num_axes()) << "axis out of range for " << shape_string();
  return axis < 0 ? axis + num_axes() : axis;
}

template <typename Dtype>
index_t Blob<Dtype>::LegacyShape(int axis) const {
  CGDNN_CHECK_LE(num_axes(), 4) << "LegacyShape only valid for <=4 axes";
  CGDNN_CHECK_GE(axis, 0);
  CGDNN_CHECK_LT(axis, 4);
  if (axis >= num_axes()) return 1;
  return shape_[axis];
}

template <typename Dtype>
index_t Blob<Dtype>::offset(index_t n, index_t c, index_t h, index_t w) const {
  CGDNN_CHECK_GE(n, 0);
  CGDNN_CHECK_LT(n, num());
  CGDNN_CHECK_GE(c, 0);
  CGDNN_CHECK_LT(c, channels());
  CGDNN_CHECK_GE(h, 0);
  CGDNN_CHECK_LT(h, height());
  CGDNN_CHECK_GE(w, 0);
  CGDNN_CHECK_LT(w, width());
  return ((n * channels() + c) * height() + h) * width() + w;
}

template <typename Dtype>
index_t Blob<Dtype>::offset(const std::vector<index_t>& indices) const {
  CGDNN_CHECK_LE(indices.size(), shape_.size());
  index_t off = 0;
  for (int i = 0; i < num_axes(); ++i) {
    off *= shape_[i];
    if (static_cast<std::size_t>(i) < indices.size()) {
      CGDNN_CHECK_GE(indices[i], 0);
      CGDNN_CHECK_LT(indices[i], shape_[i]);
      off += indices[i];
    }
  }
  return off;
}

template <typename Dtype>
const Dtype* Blob<Dtype>::cpu_data() const {
  CGDNN_CHECK(data_) << "blob has no storage (never reshaped?)";
  return static_cast<const Dtype*>(data_->cpu_data());
}

template <typename Dtype>
Dtype* Blob<Dtype>::mutable_cpu_data() {
  CGDNN_CHECK(data_) << "blob has no storage (never reshaped?)";
  return static_cast<Dtype*>(data_->mutable_cpu_data());
}

template <typename Dtype>
const Dtype* Blob<Dtype>::cpu_diff() const {
  CGDNN_CHECK(diff_) << "blob has no storage (never reshaped?)";
  return static_cast<const Dtype*>(diff_->cpu_data());
}

template <typename Dtype>
Dtype* Blob<Dtype>::mutable_cpu_diff() {
  CGDNN_CHECK(diff_) << "blob has no storage (never reshaped?)";
  return static_cast<Dtype*>(diff_->mutable_cpu_data());
}

template <typename Dtype>
Dtype Blob<Dtype>::data_at(index_t n, index_t c, index_t h, index_t w) const {
  return cpu_data()[offset(n, c, h, w)];
}

template <typename Dtype>
Dtype Blob<Dtype>::diff_at(index_t n, index_t c, index_t h, index_t w) const {
  return cpu_diff()[offset(n, c, h, w)];
}

template <typename Dtype>
void Blob<Dtype>::Update() {
  Dtype* data = mutable_cpu_data();
  const Dtype* diff = cpu_diff();
  for (index_t i = 0; i < count_; ++i) data[i] -= diff[i];
}

template <typename Dtype>
Dtype Blob<Dtype>::asum_data() const {
  const Dtype* p = cpu_data();
  Dtype sum = 0;
  for (index_t i = 0; i < count_; ++i) sum += std::abs(p[i]);
  return sum;
}

template <typename Dtype>
Dtype Blob<Dtype>::asum_diff() const {
  const Dtype* p = cpu_diff();
  Dtype sum = 0;
  for (index_t i = 0; i < count_; ++i) sum += std::abs(p[i]);
  return sum;
}

template <typename Dtype>
Dtype Blob<Dtype>::sumsq_data() const {
  const Dtype* p = cpu_data();
  Dtype sum = 0;
  for (index_t i = 0; i < count_; ++i) sum += p[i] * p[i];
  return sum;
}

template <typename Dtype>
Dtype Blob<Dtype>::sumsq_diff() const {
  const Dtype* p = cpu_diff();
  Dtype sum = 0;
  for (index_t i = 0; i < count_; ++i) sum += p[i] * p[i];
  return sum;
}

template <typename Dtype>
void Blob<Dtype>::scale_data(Dtype factor) {
  Dtype* p = mutable_cpu_data();
  for (index_t i = 0; i < count_; ++i) p[i] *= factor;
}

template <typename Dtype>
void Blob<Dtype>::scale_diff(Dtype factor) {
  Dtype* p = mutable_cpu_diff();
  for (index_t i = 0; i < count_; ++i) p[i] *= factor;
}

template <typename Dtype>
void Blob<Dtype>::set_data(Dtype value) {
  Dtype* p = mutable_cpu_data();
  std::fill(p, p + count_, value);
}

template <typename Dtype>
void Blob<Dtype>::set_diff(Dtype value) {
  Dtype* p = mutable_cpu_diff();
  std::fill(p, p + count_, value);
}

template <typename Dtype>
void Blob<Dtype>::ShareData(const Blob& other) {
  CGDNN_CHECK_EQ(count_, other.count());
  data_ = other.data();
}

template <typename Dtype>
void Blob<Dtype>::ShareDiff(const Blob& other) {
  CGDNN_CHECK_EQ(count_, other.count());
  diff_ = other.diff();
}

template <typename Dtype>
void Blob<Dtype>::CopyFrom(const Blob& other, bool copy_diff, bool reshape) {
  if (count_ != other.count() || shape_ != other.shape()) {
    CGDNN_CHECK(reshape) << "shape mismatch in CopyFrom: " << shape_string()
                         << " vs " << other.shape_string();
    Reshape(other.shape());
  }
  if (copy_diff) {
    std::memcpy(mutable_cpu_diff(), other.cpu_diff(), count_ * sizeof(Dtype));
  } else {
    std::memcpy(mutable_cpu_data(), other.cpu_data(), count_ * sizeof(Dtype));
  }
}

template <typename Dtype>
std::string Blob<Dtype>::shape_string() const {
  std::ostringstream os;
  for (index_t dim : shape_) os << dim << " ";
  os << "(" << count_ << ")";
  return os.str();
}

template class Blob<float>;
template class Blob<double>;

}  // namespace cgdnn
