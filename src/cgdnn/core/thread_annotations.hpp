// Clang Thread Safety Analysis surface for the whole hand-rolled
// concurrency layer (serve queue/server/stats/loadgen, blackbox arming,
// sliding metrics, dataset cache, perfctr probe).
//
// Two pieces live here:
//
//  * the CGDNN_* capability macros — thin wrappers over clang's
//    thread-safety attributes that expand to nothing on compilers without
//    them (GCC builds are unaffected; the `tidy` preset builds with
//    clang++ -Wthread-safety -Werror and enforces every annotation, see
//    docs/correctness.md "Concurrency contracts");
//
//  * annotated synchronization primitives `cgdnn::Mutex`, `cgdnn::LockGuard`,
//    `cgdnn::UniqueLock` and `cgdnn::CondVar`. std::mutex cannot carry the
//    capability attribute, so the analysis cannot see through
//    std::lock_guard<std::mutex>; the wrappers delegate straight to the
//    std types and add only attributes. CondVar is deliberately narrower
//    than std::condition_variable: every wait takes the Mutex directly and
//    REQUIRES a predicate, so the "condvar waits must use the predicate
//    overload" rule (tools/lint_locks.py, rule condvar-predicate) is
//    unrepresentable-by-construction for code using the wrapper.
//
// Annotation conventions (enforced tree-wide, docs/correctness.md):
//  * every mutex-guarded field is declared CGDNN_GUARDED_BY(mu);
//  * private helpers called with a lock held are CGDNN_REQUIRES(mu);
//  * fields published by atomic release/acquire (not by a mutex) stay
//    unannotated and carry a comment naming the publishing protocol;
//  * CGDNN_NO_THREAD_SAFETY_ANALYSIS is an allowlisted escape hatch —
//    every use must cite a reason and is audited in docs/correctness.md.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CGDNN_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CGDNN_THREAD_ANNOTATION
#define CGDNN_THREAD_ANNOTATION(x)  // no-op on GCC and pre-TSA clang
#endif

#define CGDNN_CAPABILITY(x) CGDNN_THREAD_ANNOTATION(capability(x))
#define CGDNN_SCOPED_CAPABILITY CGDNN_THREAD_ANNOTATION(scoped_lockable)
#define CGDNN_GUARDED_BY(x) CGDNN_THREAD_ANNOTATION(guarded_by(x))
#define CGDNN_PT_GUARDED_BY(x) CGDNN_THREAD_ANNOTATION(pt_guarded_by(x))
#define CGDNN_ACQUIRED_BEFORE(...) \
  CGDNN_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define CGDNN_ACQUIRED_AFTER(...) \
  CGDNN_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define CGDNN_REQUIRES(...) \
  CGDNN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CGDNN_ACQUIRE(...) \
  CGDNN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CGDNN_RELEASE(...) \
  CGDNN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CGDNN_TRY_ACQUIRE(...) \
  CGDNN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define CGDNN_EXCLUDES(...) CGDNN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define CGDNN_RETURN_CAPABILITY(x) CGDNN_THREAD_ANNOTATION(lock_returned(x))
#define CGDNN_NO_THREAD_SAFETY_ANALYSIS \
  CGDNN_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cgdnn {

/// std::mutex with the capability attribute, so GUARDED_BY/REQUIRES can
/// name it. Identical runtime behavior to std::mutex.
class CGDNN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CGDNN_ACQUIRE() { mu_.lock(); }
  void unlock() CGDNN_RELEASE() { mu_.unlock(); }
  bool try_lock() CGDNN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// For interop with std facilities that need the raw mutex. The analysis
  /// cannot follow uses through this; prefer LockGuard/UniqueLock/CondVar.
  std::mutex& native() { return mu_; }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::lock_guard over cgdnn::Mutex. Scoped: acquires at construction,
/// releases at scope end.
class CGDNN_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) CGDNN_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() CGDNN_RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock over cgdnn::Mutex: scoped like LockGuard but supports
/// early Unlock() (and re-Lock()) for the hand-off patterns in the serve
/// queue — drop the lock before running completion callbacks/notifies.
class CGDNN_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) CGDNN_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~UniqueLock() CGDNN_RELEASE() {
    if (held_) mu_.unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void Lock() CGDNN_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void Unlock() CGDNN_RELEASE() {
    held_ = false;
    mu_.unlock();
  }
  bool owns_lock() const { return held_; }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_;
};

/// Condition variable bound to cgdnn::Mutex. Only predicate overloads
/// exist — spurious-wakeup-safe by construction — and every wait states
/// CGDNN_REQUIRES(mu) so the analysis verifies the caller holds the lock.
///
/// Implemented over condition_variable_any waiting on the Mutex directly:
/// the unlock/relock inside std::condition_variable_any happens in a
/// system header, outside the analysis, which is exactly the semantics a
/// condvar wait needs (the capability is held again whenever the predicate
/// runs and when the wait returns). Predicates that read GUARDED_BY state
/// are written `[&]() CGDNN_REQUIRES(mu) { ... }` at their definition site
/// — the lock IS held whenever a wait runs the predicate.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  /// Blocks until pred() is true. pred runs with mu held.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) CGDNN_REQUIRES(mu) {
    cv_.wait(mu, pred);
  }

  /// Returns pred() after waiting at most rel_time.
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& rel_time,
               Pred pred) CGDNN_REQUIRES(mu) {
    return cv_.wait_for(mu, rel_time, pred);
  }

  /// Returns pred() after waiting until deadline at the latest.
  template <typename Clock, typename Duration, typename Pred>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline,
                 Pred pred) CGDNN_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline, pred);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace cgdnn
