// ThreadArena: bump allocator over stable chunks, the building block of all
// per-thread scratch storage (parallel::PrivatizationPool's privatized
// gradient/col buffers and the BLAS GEMM packing scratch).
//
// Arena properties: chunked (pointers remain stable while a scope is open),
// grow-only (reuse across layers/calls), per-thread (no cross-thread
// allocation, hence no locking). Lives in core so that low-level consumers
// (blas) can use it without depending on the parallel runtime.
#pragma once

#include <vector>

#include "cgdnn/core/common.hpp"
#include "cgdnn/core/synced_memory.hpp"

namespace cgdnn {

/// Bump allocator over stable chunks. Not thread-safe by itself; each
/// consuming thread owns exactly one arena.
class ThreadArena {
 public:
  /// Returns `bytes` of 64-byte-aligned storage valid until ResetScope().
  void* Allocate(std::size_t bytes);
  /// Marks all storage reusable; keeps the chunks (grow-only semantics).
  void ResetScope();

  std::size_t capacity_bytes() const { return capacity_; }
  std::size_t used_bytes() const { return used_; }

 private:
  struct Chunk {
    AlignedBuffer buffer;
    std::size_t used = 0;
  };
  std::vector<Chunk> chunks_;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
};

}  // namespace cgdnn
