#include "cgdnn/core/synced_memory.hpp"

#include <cstdlib>
#include <cstring>

namespace cgdnn {

TransferStats& TransferStats::Get() {
  static TransferStats stats;
  return stats;
}

void TransferStats::Reset() { *this = TransferStats{}; }

namespace {
constexpr std::size_t kAlignment = 64;  // cache line; also good for AVX-512
}

AlignedBuffer::AlignedBuffer(std::size_t bytes) : bytes_(bytes) {
  if (bytes == 0) return;
  const std::size_t rounded = (bytes + kAlignment - 1) / kAlignment * kAlignment;
  ptr_ = std::aligned_alloc(kAlignment, rounded);
  CGDNN_CHECK(ptr_ != nullptr) << "aligned_alloc of " << rounded << " bytes failed";
  std::memset(ptr_, 0, rounded);
}

AlignedBuffer::~AlignedBuffer() { std::free(ptr_); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : ptr_(other.ptr_), bytes_(other.bytes_) {
  other.ptr_ = nullptr;
  other.bytes_ = 0;
}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    std::free(ptr_);
    ptr_ = other.ptr_;
    bytes_ = other.bytes_;
    other.ptr_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

SyncedMemory::SyncedMemory(std::size_t bytes) : bytes_(bytes) {}

void SyncedMemory::ToCpu() {
  switch (head_) {
    case Head::kUninitialized:
      cpu_buffer_ = AlignedBuffer(bytes_);
      cpu_ptr_ = cpu_buffer_.get();
      own_cpu_data_ = true;
      head_ = Head::kAtCpu;
      break;
    case Head::kAtDevice:
      if (cpu_ptr_ == nullptr) {
        cpu_buffer_ = AlignedBuffer(bytes_);
        cpu_ptr_ = cpu_buffer_.get();
        own_cpu_data_ = true;
      }
      std::memcpy(cpu_ptr_, device_ptr_, bytes_);
      TransferStats::Get().to_host_bytes += bytes_;
      TransferStats::Get().to_host_count += 1;
      head_ = Head::kSynced;
      break;
    case Head::kAtCpu:
    case Head::kSynced:
      break;
  }
}

void SyncedMemory::ToDevice() {
  switch (head_) {
    case Head::kUninitialized:
      device_buffer_ = AlignedBuffer(bytes_);
      device_ptr_ = device_buffer_.get();
      head_ = Head::kAtDevice;
      break;
    case Head::kAtCpu:
      if (device_ptr_ == nullptr) {
        device_buffer_ = AlignedBuffer(bytes_);
        device_ptr_ = device_buffer_.get();
      }
      std::memcpy(device_ptr_, cpu_ptr_, bytes_);
      TransferStats::Get().to_device_bytes += bytes_;
      TransferStats::Get().to_device_count += 1;
      head_ = Head::kSynced;
      break;
    case Head::kAtDevice:
    case Head::kSynced:
      break;
  }
}

const void* SyncedMemory::cpu_data() {
  ToCpu();
  return cpu_ptr_;
}

const void* SyncedMemory::device_data() {
  ToDevice();
  return device_ptr_;
}

void* SyncedMemory::mutable_cpu_data() {
  ToCpu();
  head_ = Head::kAtCpu;
  return cpu_ptr_;
}

void* SyncedMemory::mutable_device_data() {
  ToDevice();
  head_ = Head::kAtDevice;
  return device_ptr_;
}

void SyncedMemory::set_cpu_data(void* data) {
  CGDNN_CHECK(data != nullptr);
  cpu_buffer_ = AlignedBuffer();  // release any owned storage
  cpu_ptr_ = data;
  own_cpu_data_ = false;
  head_ = Head::kAtCpu;
}

}  // namespace cgdnn
