// Common definitions for the cgdnn library: index types, error reporting
// and the CHECK macro family used throughout (Caffe-style, but throwing
// cgdnn::Error instead of aborting so library users can recover).
#pragma once

#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

namespace cgdnn {

/// Signed index type used for all shape/offset arithmetic. Signed so that
/// negative-axis indexing and difference expressions are well defined.
using index_t = std::int64_t;

/// Exception type thrown by all CGDNN_CHECK* failures and explicit errors.
class Error : public std::runtime_error {
 public:
  Error(const char* file, int line, const std::string& msg)
      : std::runtime_error(Format(file, line, msg)) {}

 private:
  static std::string Format(const char* file, int line,
                            const std::string& msg);
};

namespace detail {
[[noreturn]] void ThrowCheckFailure(const char* file, int line,
                                    const char* expr, const std::string& msg);

/// Stream-builder used by the CHECK macros to collect an optional message.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessage() noexcept(false) {
    ThrowCheckFailure(file_, line_, expr_, stream_.str());
  }
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};
}  // namespace detail

namespace detail {
/// Evaluates both operands exactly once; returns the "(a vs b) " diagnostic
/// on failure, null on success (glog's MakeCheckOpString technique).
template <typename A, typename B, typename Pred>
std::unique_ptr<std::string> MakeCheckOpString(const A& a, const B& b,
                                               Pred pred) {
  if (pred(a, b)) return nullptr;
  std::ostringstream os;
  os << "(" << a << " vs " << b << ") ";
  return std::make_unique<std::string>(os.str());
}
}  // namespace detail

// The macros evaluate their arguments exactly once. On failure they throw
// cgdnn::Error carrying file:line, the failed expression, both operand
// values and any streamed message:
//   CGDNN_CHECK_EQ(a, b) << "while reshaping " << name;
// The `while` form (from glog) has no `else`, so the macros compose safely
// with unbraced if/else in caller code; the body throws on its only
// iteration.
#define CGDNN_CHECK(cond)                                       \
  while (!(cond)) /* NOLINT */                                  \
  ::cgdnn::detail::CheckMessage(__FILE__, __LINE__, #cond)

#define CGDNN_CHECK_OP(op, a, b)                                             \
  while (const auto cgdnn_msg_ = ::cgdnn::detail::MakeCheckOpString(         \
             (a), (b),                                                       \
             [](const auto& va_, const auto& vb_) { return va_ op vb_; }))   \
  ::cgdnn::detail::CheckMessage(__FILE__, __LINE__, #a " " #op " " #b)       \
      << *cgdnn_msg_

#define CGDNN_CHECK_EQ(a, b) CGDNN_CHECK_OP(==, a, b)
#define CGDNN_CHECK_NE(a, b) CGDNN_CHECK_OP(!=, a, b)
#define CGDNN_CHECK_LT(a, b) CGDNN_CHECK_OP(<, a, b)
#define CGDNN_CHECK_LE(a, b) CGDNN_CHECK_OP(<=, a, b)
#define CGDNN_CHECK_GT(a, b) CGDNN_CHECK_OP(>, a, b)
#define CGDNN_CHECK_GE(a, b) CGDNN_CHECK_OP(>=, a, b)

#define CGDNN_NOT_IMPLEMENTED \
  CGDNN_CHECK(false) << "not implemented"

/// Nanoseconds since the process-wide monotonic epoch (pinned on first
/// call). Every timing subsystem — the span tracer, the flight recorder,
/// the profiler-independent watchdog — shares this epoch so their
/// timestamps line up when merged into one timeline.
std::uint64_t MonotonicNowNs();

/// Phase of network execution, mirroring Caffe's caffe::Phase.
enum class Phase { kTrain, kTest };

const char* PhaseName(Phase phase);

}  // namespace cgdnn
