#include "cgdnn/core/rng.hpp"

#include <cmath>
#include <numbers>

namespace cgdnn {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t HashCombine64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return SplitMix64(s);
}

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : seed_(seed), stream_(stream) {
  std::uint64_t sm = HashCombine64(seed, stream);
  for (auto& s : s_) s = SplitMix64(sm);
  // All-zero state is the one invalid state for xoshiro; SplitMix64 cannot
  // produce four zeros from a single chain, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 top bits -> [0, 1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  CGDNN_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

index_t Rng::UniformInt(index_t lo, index_t hi) {
  CGDNN_CHECK_LE(lo, hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<index_t>(NextU64());  // full 64-bit span
  // Rejection sampling for an unbiased draw.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t v = NextU64();
  while (v >= limit) v = NextU64();
  return lo + static_cast<index_t>(v % range);
}

double Rng::Gaussian(double mean, double stddev) {
  CGDNN_CHECK_GE(stddev, 0.0);
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  const double u1 = 1.0 - Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::Bernoulli(double p) {
  CGDNN_CHECK_GE(p, 0.0);
  CGDNN_CHECK_LE(p, 1.0);
  return Uniform() < p;
}

Rng Rng::Split(std::uint64_t substream) const {
  return Rng(seed_, HashCombine64(stream_ + 1, substream));
}

RngState Rng::state() const {
  return {{s_[0], s_[1], s_[2], s_[3]}, seed_, stream_};
}

void Rng::set_state(const RngState& state) {
  CGDNN_CHECK((state.s[0] | state.s[1] | state.s[2] | state.s[3]) != 0)
      << "all-zero xoshiro state is invalid";
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  seed_ = state.seed;
  stream_ = state.stream;
}

Rng& GlobalRng() {
  static Rng rng(1, /*stream=*/0x610BA1);
  return rng;
}

void SeedGlobalRng(std::uint64_t seed) {
  GlobalRng() = Rng(seed, /*stream=*/0x610BA1);
}

}  // namespace cgdnn
