// JSONL telemetry sink for training runs.
//
// The solver writes one JSON object per line per iteration — iter, loss,
// learning rate, throughput, resident set size — so a dashboard (or plain
// `jq`) can follow a long training run without parsing log text. The schema
// is flat key->number; see docs/observability.md.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <utility>

#include "cgdnn/core/common.hpp"

namespace cgdnn::trace {

class TelemetrySink {
 public:
  /// Opens (truncates) `path`. A failed open leaves the sink inert — Write
  /// becomes a no-op — so telemetry can never abort a training run.
  explicit TelemetrySink(const std::string& path);

  bool ok() const { return out_.is_open() && out_.good(); }
  const std::string& path() const { return path_; }

  /// Appends one JSONL record with the fields in the given order and
  /// flushes, keeping the file valid if the process dies mid-run.
  void Write(std::initializer_list<std::pair<const char*, double>> fields);

 private:
  std::string path_;
  std::ofstream out_;
};

/// Resident set size of this process in bytes (0 where unsupported).
std::size_t CurrentRssBytes();

}  // namespace cgdnn::trace
