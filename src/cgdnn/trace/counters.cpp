#include "cgdnn/trace/counters.hpp"

namespace cgdnn::trace {

void RecordCounterDeltaMetrics(const std::string& prefix,
                               const perfctr::Delta& delta,
                               MetricsRegistry& registry) {
  if (!delta.valid) return;
  for (int i = 0; i < perfctr::kNumEvents; ++i) {
    const auto e = static_cast<perfctr::Event>(i);
    if (!delta.has(e)) continue;
    registry.GetCounter(prefix + "." + perfctr::EventName(e))
        .Add(static_cast<std::int64_t>(delta.get(e)));
  }
  const double ipc = delta.Ipc();
  if (ipc >= 0) registry.GetGauge(prefix + ".ipc_last").Set(ipc);
  const double miss_rate = delta.LlcMissRate();
  if (miss_rate >= 0) {
    registry.GetGauge(prefix + ".llc_miss_rate_last").Set(miss_rate);
  }
  const double stalled = delta.StalledFrac();
  if (stalled >= 0) {
    registry.GetGauge(prefix + ".stalled_frac_last").Set(stalled);
  }
  registry.GetGauge(prefix + ".mux_scale_last").Set(delta.multiplex_scale);
}

}  // namespace cgdnn::trace
