#include "cgdnn/trace/trace.hpp"

#include <atomic>
#include <iomanip>
#include <mutex>

#include "cgdnn/core/buildinfo.hpp"
#include "cgdnn/core/thread_annotations.hpp"

namespace cgdnn::trace {

namespace {

std::atomic<bool> g_tracing{false};
std::atomic<bool> g_metrics{false};

/// Minimal JSON string escaping (quotes, backslashes, control chars).
void WriteJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

bool TracingActive() { return g_tracing.load(std::memory_order_relaxed); }
bool MetricsActive() { return g_metrics.load(std::memory_order_relaxed); }
bool CollectionActive() { return TracingActive() || MetricsActive(); }
void SetMetrics(bool active) {
  g_metrics.store(active, std::memory_order_relaxed);
}

std::uint64_t NowNs() {
  // Shared process epoch (cgdnn::MonotonicNowNs): tracer spans and flight-
  // recorder events land on one timeline, so decoded black-box dumps merge
  // cleanly with Chrome traces.
  return MonotonicNowNs();
}

struct Tracer::ThreadLog {
  int tid = 0;
  std::vector<TraceEvent> events;
};

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // leaked: threads may outlive main
  return *tracer;
}

Tracer::ThreadLog& Tracer::Log() {
  // Registration order assigns the stable tid. OpenMP reuses its worker
  // threads across parallel regions, so each worker keeps one log for the
  // process lifetime; the thread_local caches the lookup.
  static Mutex mu;
  thread_local ThreadLog* log = [this] {
    auto* l = new ThreadLog();
    LockGuard lock(mu);
    l->tid = static_cast<int>(logs_.size());
    logs_.push_back(l);
    return l;
  }();
  return *log;
}

void Tracer::Start() {
  MonotonicNowNs();  // pin the epoch before the first event
  g_tracing.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() { g_tracing.store(false, std::memory_order_relaxed); }

void Tracer::Clear() {
  for (ThreadLog* log : logs_) log->events.clear();
}

void Tracer::Emit(const char* category, std::string name,
                  std::uint64_t start_ns, std::uint64_t end_ns) {
  Emit(category, std::move(name), start_ns, end_ns, {});
}

void Tracer::Emit(const char* category, std::string name,
                  std::uint64_t start_ns, std::uint64_t end_ns,
                  std::vector<TraceArg> args) {
  ThreadLog& log = Log();
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = category;
  ev.start_ns = start_ns;
  ev.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  ev.tid = log.tid;
  ev.args = std::move(args);
  log.events.push_back(std::move(ev));
}

void Tracer::EmitFlow(const char* category, std::string name,
                      std::uint64_t ts_ns, std::uint64_t flow_id,
                      char phase) {
  ThreadLog& log = Log();
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = category;
  ev.start_ns = ts_ns;
  ev.tid = log.tid;
  ev.phase = phase;
  ev.flow_id = flow_id;
  log.events.push_back(std::move(ev));
}

void Tracer::EmitInstant(const char* category, std::string name,
                         std::uint64_t ts_ns, std::vector<TraceArg> args) {
  ThreadLog& log = Log();
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = category;
  ev.start_ns = ts_ns;
  ev.tid = log.tid;
  ev.phase = 'i';
  ev.args = std::move(args);
  log.events.push_back(std::move(ev));
}

std::vector<TraceArg> CounterTraceArgs(const perfctr::Delta& delta) {
  std::vector<TraceArg> args;
  if (!delta.valid) return args;
  for (int i = 0; i < perfctr::kNumEvents; ++i) {
    const auto e = static_cast<perfctr::Event>(i);
    if (delta.has(e)) args.push_back({perfctr::EventName(e), delta.get(e)});
  }
  if (args.empty()) return args;
  const double ipc = delta.Ipc();
  if (ipc >= 0) args.push_back({"ipc", ipc});
  const double miss_rate = delta.LlcMissRate();
  if (miss_rate >= 0) args.push_back({"llc_miss_rate", miss_rate});
  const double stalled = delta.StalledFrac();
  if (stalled >= 0) args.push_back({"stalled_frac", stalled});
  args.push_back({"mux_scale", delta.multiplex_scale});
  return args;
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  for (const ThreadLog* log : logs_) n += log->events.size();
  return n;
}

std::size_t Tracer::thread_count() const {
  std::size_t n = 0;
  for (const ThreadLog* log : logs_) n += log->events.empty() ? 0 : 1;
  return n;
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> all;
  for (const ThreadLog* log : logs_) {
    all.insert(all.end(), log->events.begin(), log->events.end());
  }
  return all;
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  // Fixed microsecond timestamps with ns resolution: scientific notation is
  // valid JSON but breaks some trace viewers' zoom heuristics.
  const auto saved_flags = os.flags();
  const auto saved_prec = os.precision();
  os << std::fixed << std::setprecision(3);
  // Provenance rides along as a Chrome metadata ("M") event so the output
  // stays a plain event array (viewers and existing consumers expect '[').
  os << "[\n{\"name\":\"cgdnn_meta\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"meta\":";
  buildinfo::WriteMetaJson(os);
  os << "}}";
  bool first = false;
  for (const ThreadLog* log : logs_) {
    for (const TraceEvent& ev : log->events) {
      if (!first) os << ",";
      first = false;
      os << "\n{\"name\":";
      WriteJsonString(os, ev.name);
      os << ",\"cat\":\"" << ev.category << "\",\"ph\":\"" << ev.phase
         << "\",\"ts\":" << static_cast<double>(ev.start_ns) / 1e3;
      if (ev.phase == 'X') {
        os << ",\"dur\":" << static_cast<double>(ev.dur_ns) / 1e3;
      }
      os << ",\"pid\":1,\"tid\":" << ev.tid;
      if (ev.phase == 's' || ev.phase == 't' || ev.phase == 'f') {
        os << ",\"id\":" << ev.flow_id;
        // Bind the flow end to the ENCLOSING slice, not the next one: the
        // per-request span the flow terminates in is already open when the
        // flow-end timestamp fires.
        if (ev.phase == 'f') os << ",\"bp\":\"e\"";
      }
      if (ev.phase == 'i') os << ",\"s\":\"t\"";  // thread-scoped instant
      if (!ev.args.empty()) {
        os << ",\"args\":{";
        bool afirst = true;
        for (const TraceArg& arg : ev.args) {
          if (!afirst) os << ",";
          afirst = false;
          os << "\"" << arg.key << "\":" << arg.value;
        }
        os << "}";
      }
      os << "}";
    }
  }
  os << "\n]\n";
  os.flags(saved_flags);
  os.precision(saved_prec);
}

}  // namespace cgdnn::trace
