// Per-thread span tracing for the coarse-grain runtime.
//
// The paper's evidence (Figures 4-9) is per-layer, per-thread timing: which
// OpenMP thread spent time where, how unbalanced a coalesced loop was, what
// the gradient merge cost. TRACE_SCOPE(category, name) records a span on the
// calling thread's private event log with nanosecond timestamps; the logs
// export as Chrome trace-event JSON loadable in chrome://tracing / Perfetto,
// so every thread of a parallel region appears as its own timeline row.
//
// Cost model: each thread appends to a log only it writes (lock-free on the
// hot path; a mutex is taken once per thread, at registration). When tracing
// is inactive, an instrumented scope costs one relaxed atomic load and a
// branch; compiling with CGDNN_TRACE_ENABLED=0 removes even that.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "cgdnn/blackbox/blackbox.hpp"
#include "cgdnn/core/common.hpp"
#include "cgdnn/perfctr/perfctr.hpp"

#ifndef CGDNN_TRACE_ENABLED
#define CGDNN_TRACE_ENABLED 1
#endif

namespace cgdnn::trace {

/// Runtime collection switches. Tracing (span capture) and metrics
/// (registry updates) toggle independently; both default off.
bool TracingActive();
bool MetricsActive();
/// True when either kind of collection is on — instrumented regions use it
/// to skip per-thread timing entirely in the common (disabled) case.
bool CollectionActive();
void SetMetrics(bool active);

/// Nanoseconds since the tracer's epoch (first use of the process tracer).
std::uint64_t NowNs();

/// One numeric key/value attached to a span ("args" in the Chrome trace
/// format); used for hardware-counter deltas (cycles, ipc, llc_misses, ...).
struct TraceArg {
  const char* key;  ///< static string
  double value;
};

/// One recorded event. Most events are completed spans (phase 'X'); flow
/// events ('s'/'t'/'f') stitch spans on different threads into one causal
/// arrow (Perfetto renders them as connecting lines), and instants ('i')
/// mark a point in time (a shed decision, a ladder transition).
struct TraceEvent {
  std::string name;      ///< e.g. "conv1.forward" or "merge.ordered"
  const char* category;  ///< static string: "layer", "region", "merge", ...
  std::uint64_t start_ns = 0;  ///< relative to the tracer epoch
  std::uint64_t dur_ns = 0;
  int tid = 0;  ///< stable per-thread id (registration order)
  /// Chrome trace phase: 'X' complete span, 's' flow start, 't' flow step,
  /// 'f' flow end (bound to the enclosing slice), 'i' instant.
  char phase = 'X';
  /// Flow-binding id for 's'/'t'/'f' events; 0 otherwise.
  std::uint64_t flow_id = 0;
  /// Optional counter deltas over the span; empty when hardware-counter
  /// collection was off (absent, never zeroed).
  std::vector<TraceArg> args;
};

/// Flattens the present fields of a counter delta into span args
/// (raw event counts + derived ipc / llc_miss_rate / stalled_frac /
/// mux_scale). Invalid deltas flatten to an empty vector.
std::vector<TraceArg> CounterTraceArgs(const perfctr::Delta& delta);

/// Process-wide span collector. Start()/Stop()/Clear()/Write must be called
/// from serial code; Emit may be called concurrently from any thread.
class Tracer {
 public:
  static Tracer& Get();

  void Start();
  void Stop();
  /// Drops captured events; keeps thread registrations (serial only).
  void Clear();

  /// Records one completed span on the calling thread's log.
  void Emit(const char* category, std::string name, std::uint64_t start_ns,
            std::uint64_t end_ns);
  /// Same, with counter-delta (or other numeric) args attached.
  void Emit(const char* category, std::string name, std::uint64_t start_ns,
            std::uint64_t end_ns, std::vector<TraceArg> args);

  /// Records a flow event ('s' start, 't' step, 'f' end) on the calling
  /// thread. All events sharing `flow_id` form one flow; Perfetto draws the
  /// arrow between the slices enclosing each event's timestamp, which is
  /// how a request's cross-thread path (submit thread -> worker thread)
  /// renders as one connected chain.
  void EmitFlow(const char* category, std::string name, std::uint64_t ts_ns,
                std::uint64_t flow_id, char phase);
  /// Records a point-in-time ('i', thread-scoped) event on the calling
  /// thread, e.g. a shed decision or a degradation-ladder transition.
  void EmitInstant(const char* category, std::string name, std::uint64_t ts_ns,
                   std::vector<TraceArg> args = {});

  /// Event count over all threads (serial only: call after the traced
  /// parallel work has joined/barriered).
  std::size_t event_count() const;
  /// Number of distinct threads that have recorded at least one event.
  std::size_t thread_count() const;
  /// Copies all events out (serial only).
  std::vector<TraceEvent> Events() const;

  /// Writes the Chrome trace-event JSON array: one "X" (complete) event per
  /// span, "s"/"t"/"f" events carrying their flow "id" (flow ends bind to
  /// the enclosing slice via "bp":"e"), "i" instants, with "ts"/"dur" in
  /// microseconds. Serial only.
  void WriteChromeTrace(std::ostream& os) const;

 private:
  Tracer() = default;
  struct ThreadLog;
  ThreadLog& Log();

  std::vector<ThreadLog*> logs_;  // owned; never freed while process lives
};

/// RAII span: captures the start time at construction and emits the event
/// at destruction. No-op (one atomic load) while tracing is inactive. When
/// hardware-counter collection is armed (perfctr::SetActive), the span also
/// samples the calling thread's counter group at both ends and attaches the
/// multiplex-scaled deltas as Chrome-trace args.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, std::string name) : name_(std::move(name)) {
    // The flight recorder sees every span — even with tracing off — so a
    // crash dump can show what each thread was inside when it died.
    blackbox::Record(blackbox::EventKind::kSpanBegin, name_.c_str());
    if (!TracingActive()) return;
    active_ = true;
    category_ = category;
    if (perfctr::CollectionActive()) {
      start_sample_ = perfctr::ReadThreadCounters();
    }
    start_ns_ = NowNs();
  }
  ~ScopedSpan() {
    blackbox::Record(blackbox::EventKind::kSpanEnd, name_.c_str());
    if (!active_) return;
    const std::uint64_t end_ns = NowNs();
    if (start_sample_.valid) {
      Tracer::Get().Emit(
          category_, std::move(name_), start_ns_, end_ns,
          CounterTraceArgs(perfctr::ComputeDelta(
              start_sample_, perfctr::ReadThreadCounters())));
    } else {
      Tracer::Get().Emit(category_, std::move(name_), start_ns_, end_ns);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_ = false;
  const char* category_ = nullptr;
  std::string name_;
  std::uint64_t start_ns_ = 0;
  perfctr::Sample start_sample_;
};

}  // namespace cgdnn::trace

#if CGDNN_TRACE_ENABLED
#define CGDNN_TRACE_CONCAT_IMPL(a, b) a##b
#define CGDNN_TRACE_CONCAT(a, b) CGDNN_TRACE_CONCAT_IMPL(a, b)
/// Records the enclosing scope as a span on the calling thread's timeline.
#define TRACE_SCOPE(category, name)                                   \
  ::cgdnn::trace::ScopedSpan CGDNN_TRACE_CONCAT(cgdnn_trace_span_,    \
                                                __COUNTER__)(category, name)
#else
#define TRACE_SCOPE(category, name) \
  do {                              \
  } while (false)
#endif
