// Metrics registry: named counters, gauges and fixed log-scale histograms.
//
// The runtime records per-layer FLOPs, bytes moved, achieved GFLOP/s, the
// load-imbalance ratio of every parallel region (max/mean per-thread busy
// time) and gradient-merge wait times here. All update paths are thread-safe
// (plain atomics; histogram buckets are independent atomic counters), so
// instrumentation inside OpenMP regions needs no locking. Lookup by name
// takes a mutex — hot paths should resolve a metric once and keep the
// reference (references remain valid for the registry's lifetime).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "cgdnn/core/common.hpp"
#include "cgdnn/core/thread_annotations.hpp"

namespace cgdnn::trace {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins floating-point metric.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over fixed log-scale (power-of-two) buckets.
///
/// Bucket 0 covers values <= 1; bucket i (1 <= i < kNumBuckets-1) covers
/// (2^(i-1), 2^i]; the last bucket collects everything above 2^(kNumBuckets-2).
/// 44 buckets span ~4.4e12, enough for nanoseconds-to-hours durations in any
/// unit. Exact count/sum/min/max ride along for mean and range queries.
class Histogram {
 public:
  static constexpr int kNumBuckets = 44;

  static int BucketIndex(double v) {
    int i = 0;
    double ub = 1.0;
    while (v > ub && i < kNumBuckets - 1) {
      ub *= 2.0;
      ++i;
    }
    return i;
  }
  /// Inclusive upper bound of bucket `i` (+inf for the overflow bucket).
  static double BucketUpperBound(int i) {
    if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
    double ub = 1.0;
    for (int k = 0; k < i; ++k) ub *= 2.0;
    return ub;
  }

  void Observe(double v);

  std::uint64_t bucket_count(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  double mean() const;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Sliding-window histogram over fine log-scale buckets.
///
/// The cumulative Histogram above answers "over the whole run"; live
/// serving needs "over the last W seconds". This keeps a ring of W
/// per-second slots, each a bucketized histogram; Observe lands in the slot
/// for its timestamp's second (lazily recycling slots whose second has
/// slid out of the window) and Read merges every slot still inside the
/// window into count/sum/min/max + interpolated quantiles.
///
/// Buckets are powers of kGamma (1.04) rather than powers of two: a
/// quantile read off a bucket's geometric midpoint then carries at most
/// ~(kGamma-1)/2 ≈ 2% relative error — fine-grained enough for live
/// percentiles to be compared against exact end-of-run recomputation
/// (docs/observability.md), which 2x-wide buckets (up to ~100% error)
/// cannot support. 700 buckets span 1 .. ~8.5e11, microseconds-to-days.
///
/// Timestamps are passed in explicitly (cgdnn::MonotonicNowNs timeline) so
/// rotation and wraparound are deterministic under test. Observe is safe
/// from any thread; Read is safe concurrently with Observe (one mutex
/// guards the ring — serving-rate update frequencies make contention
/// irrelevant next to the queue mutex).
class SlidingHistogram {
 public:
  static constexpr double kGamma = 1.04;
  static constexpr int kNumBuckets = 700;

  explicit SlidingHistogram(int window_s);

  static int BucketIndex(double v);
  /// Representative value of bucket `i`: the geometric midpoint of its
  /// (gamma^(i-1), gamma^i] range, which halves the worst-case error.
  static double BucketValue(int i);

  void Observe(double v, std::uint64_t now_ns);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
  };
  /// Merges every slot whose second is within [now-window, now].
  Snapshot Read(std::uint64_t now_ns) const;

  int window_s() const { return window_s_; }

 private:
  struct Slot {
    std::uint64_t sec = kEmptySec;
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    std::vector<std::uint32_t> buckets;
  };
  static constexpr std::uint64_t kEmptySec = ~0ull;
  Slot& SlotFor(std::uint64_t sec) CGDNN_REQUIRES(mu_);

  const int window_s_;
  mutable Mutex mu_;
  std::vector<Slot> slots_ CGDNN_GUARDED_BY(mu_);
};

/// Sliding-window counter: ring of per-second increment totals. Sum(now)
/// is the total over the last window; same timestamp/threading contract as
/// SlidingHistogram.
class SlidingCounter {
 public:
  explicit SlidingCounter(int window_s);
  void Add(std::uint64_t n, std::uint64_t now_ns);
  std::uint64_t Sum(std::uint64_t now_ns) const;
  int window_s() const { return window_s_; }

 private:
  static constexpr std::uint64_t kEmptySec = ~0ull;
  struct Slot {
    std::uint64_t sec = kEmptySec;
    std::uint64_t count = 0;
  };
  const int window_s_;
  mutable Mutex mu_;
  std::vector<Slot> slots_ CGDNN_GUARDED_BY(mu_);
};

/// Name -> metric map. Get* registers on first use; requesting an existing
/// name with a different metric kind throws.
class MetricsRegistry {
 public:
  /// The process-wide registry the runtime instrumentation records into.
  static MetricsRegistry& Default();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Read-only lookup: nullptr when `name` is absent or of another kind —
  /// unlike Get*, never registers. Consumers that must distinguish "metric
  /// was never recorded" from "recorded as zero" (the audit tool's optional
  /// counter fields) use these.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// Drops every registered metric. Serial only; invalidates references.
  void Reset();

  /// JSON object {"counters":{...},"gauges":{...},"histograms":{...}} with
  /// per-histogram count/sum/mean/min/max and non-empty buckets. Serial only.
  void WriteJson(std::ostream& os) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& GetEntry(const std::string& name, Kind kind);

  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ CGDNN_GUARDED_BY(mu_);
};

}  // namespace cgdnn::trace
