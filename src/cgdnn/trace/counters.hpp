// Bridges hardware-counter deltas (cgdnn/perfctr) into the metrics
// registry: one call records the raw event totals as accumulating counters
// and the derived ratios as last-value gauges under a caller-chosen prefix.
//
// The key shape mirrors the existing instrumentation namespaces:
//   layer.<name>.<phase>.{cycles,instructions,llc_refs,llc_misses,
//                         stalled_cycles}           (counters, accumulate)
//   layer.<name>.<phase>.{ipc,llc_miss_rate,stalled_frac,mux_scale}_last
//                                                   (gauges, last interval)
// Missing events record nothing — a metrics dump never contains zeroed
// placeholder counter fields (fallback discipline, docs/observability.md).
#pragma once

#include <string>

#include "cgdnn/perfctr/perfctr.hpp"
#include "cgdnn/trace/metrics.hpp"

namespace cgdnn::trace {

/// Records `delta` under `<prefix>.` into `registry`. No-op for invalid
/// deltas. Thread-safe (registry updates are atomic), but hot paths should
/// note the per-call name lookups take the registry mutex.
void RecordCounterDeltaMetrics(const std::string& prefix,
                               const perfctr::Delta& delta,
                               MetricsRegistry& registry);

}  // namespace cgdnn::trace
