#include "cgdnn/trace/telemetry.hpp"

#include <cmath>
#include <iomanip>

#ifdef __linux__
#include <unistd.h>
#endif

#include "cgdnn/core/buildinfo.hpp"

namespace cgdnn::trace {

TelemetrySink::TelemetrySink(const std::string& path)
    : path_(path), out_(path, std::ios::trunc) {
  // First line is the provenance header; every later line is one sample.
  // Consumers that only want samples skip lines containing a "meta" key.
  if (ok()) {
    out_ << "{\"meta\":";
    buildinfo::WriteMetaJson(out_);
    out_ << "}\n" << std::flush;
  }
}

void TelemetrySink::Write(
    std::initializer_list<std::pair<const char*, double>> fields) {
  if (!ok()) return;
  out_ << std::setprecision(15) << "{";
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) out_ << ",";
    first = false;
    out_ << "\"" << key << "\":";
    // NaN/inf are not valid JSON numbers (a diverged loss would poison the
    // whole line); emit null instead.
    if (std::isfinite(value)) {
      out_ << value;
    } else {
      out_ << "null";
    }
  }
  out_ << "}\n" << std::flush;
}

std::size_t CurrentRssBytes() {
#ifdef __linux__
  // /proc/self/statm field 2: resident pages.
  std::ifstream statm("/proc/self/statm");
  std::size_t total_pages = 0, resident_pages = 0;
  if (statm >> total_pages >> resident_pages) {
    return resident_pages * static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  }
#endif
  return 0;
}

}  // namespace cgdnn::trace
