#include "cgdnn/trace/metrics.hpp"

#include <iomanip>

#include "cgdnn/core/buildinfo.hpp"

namespace cgdnn::trace {

namespace {

/// fetch_add / fetch_min-style CAS update for atomic<double> (the fetch_*
/// overloads for floating point are C++20 but not universally implemented).
template <typename Op>
void AtomicUpdate(std::atomic<double>& target, double v, Op op) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, op(cur, v),
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Observe(double v) {
  buckets_[static_cast<std::size_t>(BucketIndex(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicUpdate(sum_, v, [](double a, double b) { return a + b; });
  AtomicUpdate(min_, v, [](double a, double b) { return b < a ? b : a; });
  AtomicUpdate(max_, v, [](double a, double b) { return b > a ? b : a; });
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::GetEntry(const std::string& name,
                                                  Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(name);
  Entry& e = it->second;
  if (inserted) {
    e.kind = kind;
    switch (kind) {
      case Kind::kCounter: e.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: e.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram: e.histogram = std::make_unique<Histogram>(); break;
    }
  }
  CGDNN_CHECK(e.kind == kind)
      << "metric '" << name << "' already registered with a different kind";
  return e;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  return *GetEntry(name, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  return *GetEntry(name, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  return *GetEntry(name, Kind::kHistogram).histogram;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::kCounter
             ? it->second.counter.get()
             : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::kGauge
             ? it->second.gauge.get()
             : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::kHistogram
             ? it->second.histogram.get()
             : nullptr;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto saved_prec = os.precision();
  os << std::setprecision(15);
  const auto write_section = [&](const char* title, Kind kind,
                                 bool trailing_comma) {
    os << "  \"" << title << "\": {";
    bool first = true;
    for (const auto& [name, e] : entries_) {
      if (e.kind != kind) continue;
      if (!first) os << ",";
      first = false;
      os << "\n    \"" << name << "\": ";
      if (kind == Kind::kCounter) {
        os << e.counter->value();
      } else if (kind == Kind::kGauge) {
        os << e.gauge->value();
      } else {
        const Histogram& h = *e.histogram;
        os << "{\"count\": " << h.count() << ", \"sum\": " << h.sum()
           << ", \"mean\": " << h.mean() << ", \"min\": " << h.min()
           << ", \"max\": " << h.max() << ", \"buckets\": [";
        bool bfirst = true;
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          if (h.bucket_count(i) == 0) continue;
          if (!bfirst) os << ", ";
          bfirst = false;
          os << "{\"le\": ";
          if (i == Histogram::kNumBuckets - 1) {
            os << "\"inf\"";
          } else {
            os << Histogram::BucketUpperBound(i);
          }
          os << ", \"count\": " << h.bucket_count(i) << "}";
        }
        os << "]}";
      }
    }
    os << (first ? "}" : "\n  }") << (trailing_comma ? "," : "") << "\n";
  };
  os << "{\n  \"meta\": ";
  buildinfo::WriteMetaJson(os);
  os << ",\n";
  write_section("counters", Kind::kCounter, true);
  write_section("gauges", Kind::kGauge, true);
  write_section("histograms", Kind::kHistogram, false);
  os << "}\n";
  os.precision(saved_prec);
}

}  // namespace cgdnn::trace
