#include "cgdnn/trace/metrics.hpp"

#include <cmath>
#include <iomanip>

#include "cgdnn/core/buildinfo.hpp"

namespace cgdnn::trace {

namespace {

/// fetch_add / fetch_min-style CAS update for atomic<double> (the fetch_*
/// overloads for floating point are C++20 but not universally implemented).
template <typename Op>
void AtomicUpdate(std::atomic<double>& target, double v, Op op) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, op(cur, v),
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Observe(double v) {
  buckets_[static_cast<std::size_t>(BucketIndex(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicUpdate(sum_, v, [](double a, double b) { return a + b; });
  AtomicUpdate(min_, v, [](double a, double b) { return b < a ? b : a; });
  AtomicUpdate(max_, v, [](double a, double b) { return b > a ? b : a; });
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

SlidingHistogram::SlidingHistogram(int window_s) : window_s_(window_s) {
  CGDNN_CHECK_GT(window_s_, 0) << "sliding window needs a positive width";
  slots_.resize(static_cast<std::size_t>(window_s_));
}

int SlidingHistogram::BucketIndex(double v) {
  if (!(v > 1.0)) return 0;
  const int i =
      static_cast<int>(std::ceil(std::log(v) / std::log(kGamma)));
  return i >= kNumBuckets ? kNumBuckets - 1 : (i < 0 ? 0 : i);
}

double SlidingHistogram::BucketValue(int i) {
  return std::pow(kGamma, static_cast<double>(i)) / std::sqrt(kGamma);
}

SlidingHistogram::Slot& SlidingHistogram::SlotFor(std::uint64_t sec) {
  Slot& slot = slots_[static_cast<std::size_t>(
      sec % static_cast<std::uint64_t>(window_s_))];
  if (slot.sec != sec) {
    // This ring position last held a second that has slid out of the
    // window (ring size == window width, so distinct in-window seconds
    // never collide) — recycle it.
    slot.sec = sec;
    slot.count = 0;
    slot.sum = 0;
    slot.min = 0;
    slot.max = 0;
    slot.buckets.assign(static_cast<std::size_t>(kNumBuckets), 0);
  }
  return slot;
}

void SlidingHistogram::Observe(double v, std::uint64_t now_ns) {
  LockGuard lock(mu_);
  Slot& slot = SlotFor(now_ns / 1'000'000'000ull);
  slot.buckets[static_cast<std::size_t>(BucketIndex(v))] += 1;
  if (slot.count == 0 || v < slot.min) slot.min = v;
  if (slot.count == 0 || v > slot.max) slot.max = v;
  slot.count += 1;
  slot.sum += v;
}

SlidingHistogram::Snapshot SlidingHistogram::Read(
    std::uint64_t now_ns) const {
  const std::uint64_t now_sec = now_ns / 1'000'000'000ull;
  Snapshot snap;
  std::array<std::uint64_t, kNumBuckets> merged{};
  {
    LockGuard lock(mu_);
    for (const Slot& slot : slots_) {
      // In-window: sec in (now_sec - window, now_sec]. A slot stamped a
      // hair ahead of `now` by a racing observer counts as current.
      if (slot.sec == kEmptySec || slot.count == 0) continue;
      if (slot.sec + static_cast<std::uint64_t>(window_s_) <= now_sec) {
        continue;
      }
      for (int i = 0; i < kNumBuckets; ++i) {
        merged[static_cast<std::size_t>(i)] +=
            slot.buckets[static_cast<std::size_t>(i)];
      }
      if (snap.count == 0 || slot.min < snap.min) snap.min = slot.min;
      if (snap.count == 0 || slot.max > snap.max) snap.max = slot.max;
      snap.count += slot.count;
      snap.sum += slot.sum;
    }
  }
  if (snap.count == 0) return snap;
  const auto quantile = [&](double q) {
    const double rank = q * static_cast<double>(snap.count - 1);
    std::uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      seen += merged[static_cast<std::size_t>(i)];
      if (static_cast<double>(seen) > rank) {
        // Clamp the bucket midpoint to the observed range: exact for the
        // extreme quantiles of sparse windows.
        double v = BucketValue(i);
        if (v < snap.min) v = snap.min;
        if (v > snap.max) v = snap.max;
        return v;
      }
    }
    return snap.max;
  };
  snap.p50 = quantile(0.50);
  snap.p90 = quantile(0.90);
  snap.p99 = quantile(0.99);
  return snap;
}

SlidingCounter::SlidingCounter(int window_s) : window_s_(window_s) {
  CGDNN_CHECK_GT(window_s_, 0) << "sliding window needs a positive width";
  slots_.resize(static_cast<std::size_t>(window_s_));
}

void SlidingCounter::Add(std::uint64_t n, std::uint64_t now_ns) {
  const std::uint64_t sec = now_ns / 1'000'000'000ull;
  LockGuard lock(mu_);
  Slot& slot = slots_[static_cast<std::size_t>(
      sec % static_cast<std::uint64_t>(window_s_))];
  if (slot.sec != sec) {
    slot.sec = sec;
    slot.count = 0;
  }
  slot.count += n;
}

std::uint64_t SlidingCounter::Sum(std::uint64_t now_ns) const {
  const std::uint64_t now_sec = now_ns / 1'000'000'000ull;
  std::uint64_t total = 0;
  LockGuard lock(mu_);
  for (const Slot& slot : slots_) {
    if (slot.sec == kEmptySec) continue;
    if (slot.sec + static_cast<std::uint64_t>(window_s_) <= now_sec) continue;
    total += slot.count;
  }
  return total;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::GetEntry(const std::string& name,
                                                  Kind kind) {
  LockGuard lock(mu_);
  auto [it, inserted] = entries_.try_emplace(name);
  Entry& e = it->second;
  if (inserted) {
    e.kind = kind;
    switch (kind) {
      case Kind::kCounter: e.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: e.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram: e.histogram = std::make_unique<Histogram>(); break;
    }
  }
  CGDNN_CHECK(e.kind == kind)
      << "metric '" << name << "' already registered with a different kind";
  return e;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  return *GetEntry(name, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  return *GetEntry(name, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  return *GetEntry(name, Kind::kHistogram).histogram;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  LockGuard lock(mu_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::kCounter
             ? it->second.counter.get()
             : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  LockGuard lock(mu_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::kGauge
             ? it->second.gauge.get()
             : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  LockGuard lock(mu_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::kHistogram
             ? it->second.histogram.get()
             : nullptr;
}

void MetricsRegistry::Reset() {
  LockGuard lock(mu_);
  entries_.clear();
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  LockGuard lock(mu_);
  const auto saved_prec = os.precision();
  os << std::setprecision(15);
  const auto write_section = [&](const char* title, Kind kind,
                                 bool trailing_comma) {
    os << "  \"" << title << "\": {";
    bool first = true;
    for (const auto& [name, e] : entries_) {
      if (e.kind != kind) continue;
      if (!first) os << ",";
      first = false;
      os << "\n    \"" << name << "\": ";
      if (kind == Kind::kCounter) {
        os << e.counter->value();
      } else if (kind == Kind::kGauge) {
        os << e.gauge->value();
      } else {
        const Histogram& h = *e.histogram;
        os << "{\"count\": " << h.count() << ", \"sum\": " << h.sum()
           << ", \"mean\": " << h.mean() << ", \"min\": " << h.min()
           << ", \"max\": " << h.max() << ", \"buckets\": [";
        bool bfirst = true;
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          if (h.bucket_count(i) == 0) continue;
          if (!bfirst) os << ", ";
          bfirst = false;
          os << "{\"le\": ";
          if (i == Histogram::kNumBuckets - 1) {
            os << "\"inf\"";
          } else {
            os << Histogram::BucketUpperBound(i);
          }
          os << ", \"count\": " << h.bucket_count(i) << "}";
        }
        os << "]}";
      }
    }
    os << (first ? "}" : "\n  }") << (trailing_comma ? "," : "") << "\n";
  };
  os << "{\n  \"meta\": ";
  buildinfo::WriteMetaJson(os);
  os << ",\n";
  write_section("counters", Kind::kCounter, true);
  write_section("gauges", Kind::kGauge, true);
  write_section("histograms", Kind::kHistogram, false);
  os << "}\n";
  os.precision(saved_prec);
}

}  // namespace cgdnn::trace
