// Synthetic open-loop load generator: the serving runtime's bench AND its
// overload drill.
//
// Open-loop means arrivals follow a fixed stochastic schedule (Poisson or
// bursty) that does NOT slow down when the server does — precisely the
// regime where an unbounded queue melts down and a bounded one sheds. The
// client side models real callers: every call has a timeout, and timed-out
// or shed calls retry with capped exponential backoff up to `max_retries`.
//
// One driver thread walks an event heap (arrivals, timeouts, retries);
// server completions arrive asynchronously from worker threads and are
// recorded per call. Latency percentiles are computed exactly from the
// recorded samples of successful calls (not from log-scale histogram
// buckets).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "cgdnn/core/rng.hpp"
#include "cgdnn/serve/server.hpp"

namespace cgdnn::serve {

struct LoadGenOptions {
  double rate_qps = 100;        ///< mean offered rate (open loop)
  double duration_s = 1.0;      ///< arrival window; drains afterwards
  std::string trace = "poisson";  ///< "poisson" | "bursty"
  /// Bursty trace: arrivals concentrate in the first `burst_duty` fraction
  /// of every `burst_period_ms` window at rate/burst_duty (mean offered
  /// rate stays rate_qps).
  double burst_period_ms = 100;
  double burst_duty = 0.2;

  std::uint64_t timeout_ms = 100;   ///< client-side per-attempt timeout
  int max_retries = 2;              ///< after the first attempt
  double backoff_base_ms = 5;      ///< retry k waits base * 2^k ...
  double backoff_cap_ms = 80;      ///< ... capped here
  double batch_fraction = 0.0;     ///< fraction of kBatch-class calls
  std::uint64_t deadline_ms = 0;   ///< per-request deadline (0 = server default)
  std::uint64_t seed = 1;

  /// Cooperative cancellation (SIGTERM drill): once *cancel is true the
  /// generator submits no further arrivals or retries and only drains the
  /// timers of calls already in flight. May be null.
  const std::atomic<bool>* cancel = nullptr;
};

struct LoadGenReport {
  // Call-level (a call = one logical request incl. retries).
  std::uint64_t calls = 0;
  std::uint64_t succeeded = 0;      ///< got an OK response before timeout
  std::uint64_t failed = 0;         ///< exhausted retries
  // Attempt-level.
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t shed = 0;           ///< kShedQueueFull + kShedLoad rejections
  std::uint64_t expired = 0;
  std::uint64_t stalled = 0;        ///< kWorkerStalled responses
  std::uint64_t errors = 0;
  std::uint64_t timeouts = 0;       ///< attempts with no response in time
  std::uint64_t late_responses = 0; ///< response after client gave up
  // Latency of successful calls, first submit -> OK response (includes
  // client-side retry backoff, the user-visible number).
  double p50_us = 0;
  double p99_us = 0;
  double mean_us = 0;
  double max_us = 0;
  // Server-side latency of ADMITTED requests that completed OK
  // (admission -> completion, Response::total_us). This is the number the
  // overload drill holds against the deadline: every admitted request must
  // finish within it or be expired, no matter how hard the client side is
  // retrying.
  double server_p50_us = 0;
  double server_p99_us = 0;
  double server_max_us = 0;
  double achieved_qps = 0;          ///< succeeded / wall duration
  double offered_qps = 0;
  double wall_s = 0;
};

/// Exact percentile over a sample vector (nearest-rank); q in [0,1].
double Percentile(std::vector<double> samples, double q);

/// Arrival offsets (seconds from start) for the configured trace; exposed
/// for tests of the trace shapes.
std::vector<double> BuildArrivals(const LoadGenOptions& opts, Rng& rng);

/// Runs the load pattern against `server` (which must be Start()ed) and
/// blocks until every call resolved (response, timeout+exhausted retries)
/// or drained. Single-use per call; thread-safe against the server's
/// completion threads.
LoadGenReport RunLoad(Server& server, const LoadGenOptions& opts);

}  // namespace cgdnn::serve
