#include "cgdnn/serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>

#include "cgdnn/core/rng.hpp"
#include "cgdnn/core/thread_annotations.hpp"

namespace cgdnn::serve {

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

namespace {

using Clock = std::chrono::steady_clock;

/// Draw from Exp(rate): the Poisson process's inter-arrival law.
double ExpDraw(Rng& rng, double rate) {
  double u = rng.Uniform();
  if (u <= 0) u = 1e-12;
  return -std::log(u) / rate;
}

}  // namespace

std::vector<double> BuildArrivals(const LoadGenOptions& opts, Rng& rng) {
  std::vector<double> arrivals;
  const double rate = opts.rate_qps;
  if (rate <= 0) return arrivals;
  if (opts.trace == "bursty") {
    // Arrivals concentrate in the first `duty` fraction of each period at
    // rate/duty, so the mean offered rate stays rate_qps but the server
    // sees alternating overload spikes and idle valleys.
    const double period = opts.burst_period_ms / 1e3;
    const double duty = std::min(std::max(opts.burst_duty, 0.01), 1.0);
    const double burst_len = duty * period;
    const double burst_rate = rate / duty;
    // Walk window indices rather than advancing one fmod-tracked clock:
    // jumping a double to "the next multiple of period" can land an ulp
    // short of it, where fmod reads ~period and the jump degenerates into
    // an epsilon-at-a-time spin.
    const auto windows = static_cast<std::size_t>(
        std::ceil(opts.duration_s / period));
    for (std::size_t w = 0; w < windows; ++w) {
      const double window_start = static_cast<double>(w) * period;
      double pos = 0;
      while (true) {
        pos += ExpDraw(rng, burst_rate);
        if (pos >= burst_len) break;  // rest of the window is idle
        const double t = window_start + pos;
        if (t < opts.duration_s) arrivals.push_back(t);
      }
    }
  } else {
    CGDNN_CHECK_EQ(opts.trace, "poisson")
        << "trace must be 'poisson' or 'bursty'";
    double t = 0;
    while (true) {
      t += ExpDraw(rng, rate);
      if (t >= opts.duration_s) break;
      arrivals.push_back(t);
    }
  }
  return arrivals;
}

namespace {

struct Call {
  int attempts = 0;               ///< submissions so far
  bool resolved = false;          ///< client-side final verdict reached
  std::uint64_t first_submit_ns = 0;
  RequestClass cls = RequestClass::kInteractive;
};

struct Completion {
  std::size_t call = 0;
  int attempt = 0;
  Status status = Status::kError;
  std::uint64_t now_ns = 0;
  double total_us = 0;  ///< Response::total_us (server-side latency)
};

/// Completions cross from server threads to the driver here. Owned by
/// shared_ptr: request callbacks can outlive RunLoad (a client-side timeout
/// resolves the call while the request still sits in the server queue;
/// Server::Stop later completes it), so the channel must not live on
/// RunLoad's stack.
struct CompletionChannel {
  Mutex mu;
  CondVar cv;
  std::vector<Completion> completions CGDNN_GUARDED_BY(mu);
};

struct Event {
  enum class Kind { kArrival, kTimeout, kRetry };
  Clock::time_point at;
  Kind kind;
  std::size_t call = 0;
  int attempt = 0;  ///< for kTimeout: which attempt this timer covers
  bool operator>(const Event& other) const { return at > other.at; }
};

}  // namespace

LoadGenReport RunLoad(Server& server, const LoadGenOptions& opts) {
  Rng rng(opts.seed, /*stream=*/7);
  const std::vector<double> arrival_s = BuildArrivals(opts, rng);

  LoadGenReport report;
  report.calls = arrival_s.size();
  report.offered_qps = opts.duration_s > 0
                           ? static_cast<double>(arrival_s.size()) /
                                 opts.duration_s
                           : 0;
  if (arrival_s.empty()) return report;

  // One synthetic input sample shared by every request (content is
  // irrelevant to load behaviour; a copy per request keeps the server's
  // ownership contract honest).
  std::vector<float> sample(static_cast<std::size_t>(server.sample_size()));
  for (auto& v : sample) v = static_cast<float>(rng.Uniform(-1.0, 1.0));

  std::vector<Call> calls(arrival_s.size());
  std::vector<double> latencies_us;
  std::vector<double> server_latencies_us;  // OK attempts, admit->complete

  auto chan = std::make_shared<CompletionChannel>();
  auto push_completion = [chan](Completion c) {
    {
      LockGuard lock(chan->mu);
      chan->completions.push_back(c);
    }
    chan->cv.NotifyOne();
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  const Clock::time_point start = Clock::now();
  for (std::size_t i = 0; i < arrival_s.size(); ++i) {
    events.push(Event{start + std::chrono::microseconds(
                                  static_cast<std::int64_t>(arrival_s[i] * 1e6)),
                      Event::Kind::kArrival, i, 0});
    calls[i].cls = rng.Bernoulli(opts.batch_fraction)
                       ? RequestClass::kBatch
                       : RequestClass::kInteractive;
  }

  auto submit_attempt = [&](std::size_t ci) {
    Call& call = calls[ci];
    call.attempts += 1;
    const int attempt = call.attempts;
    if (attempt > 1) report.retries += 1;
    report.attempts += 1;

    auto req = std::make_shared<Request>();
    req->cls = call.cls;
    req->input = sample;
    if (opts.deadline_ms > 0) {
      req->deadline_ns = MonotonicNowNs() + opts.deadline_ms * 1'000'000ull;
    }
    req->done = [ci, attempt, push_completion](Response&& r) {
      push_completion(
          Completion{ci, attempt, r.status, MonotonicNowNs(), r.total_us});
    };
    if (call.first_submit_ns == 0) call.first_submit_ns = MonotonicNowNs();
    server.Submit(std::move(req));
    events.push(Event{Clock::now() + std::chrono::milliseconds(opts.timeout_ms),
                      Event::Kind::kTimeout, ci, attempt});
  };

  auto schedule_retry_or_fail = [&](std::size_t ci) {
    Call& call = calls[ci];
    if (call.attempts > opts.max_retries) {
      call.resolved = true;
      report.failed += 1;
      return;
    }
    // Capped exponential backoff with decorrelating jitter.
    double backoff_ms =
        opts.backoff_base_ms * std::pow(2.0, call.attempts - 1);
    backoff_ms = std::min(backoff_ms, opts.backoff_cap_ms);
    backoff_ms *= rng.Uniform(0.5, 1.0);
    events.push(Event{Clock::now() + std::chrono::microseconds(
                                         static_cast<std::int64_t>(
                                             backoff_ms * 1e3)),
                      Event::Kind::kRetry, ci, 0});
  };

  auto process_completion = [&](const Completion& c) {
    Call& call = calls[c.call];
    if (call.resolved || c.attempt != call.attempts) {
      // The client already moved on (timeout fired, maybe a retry is in
      // flight): a late response is recorded but changes nothing.
      report.late_responses += 1;
      return;
    }
    switch (c.status) {
      case Status::kOk:
        call.resolved = true;
        report.succeeded += 1;
        latencies_us.push_back(
            static_cast<double>(c.now_ns - call.first_submit_ns) / 1e3);
        server_latencies_us.push_back(c.total_us);
        return;
      case Status::kShedQueueFull:
      case Status::kShedLoad:
        report.shed += 1;
        break;
      case Status::kExpired:
        report.expired += 1;
        break;
      case Status::kWorkerStalled:
        report.stalled += 1;
        break;
      case Status::kError:
        report.errors += 1;
        break;
    }
    schedule_retry_or_fail(c.call);
  };

  // Driver loop: completions preempt timers (they are drained first), the
  // heap orders everything else.
  std::vector<Completion> drained;
  while (!events.empty()) {
    const Event ev = events.top();
    const bool cancelled =
        opts.cancel != nullptr &&
        opts.cancel->load(std::memory_order_acquire);
    // Once cancelled, not-yet-due arrivals/retries resolve immediately
    // below instead of being waited for: only the timeout timers of
    // attempts already in flight pace the drain, so the generator exits
    // within ~timeout_ms of the stop signal, not after the remaining
    // trace duration (loadgen.hpp's cancellation contract).
    const bool due_now = cancelled && ev.kind != Event::Kind::kTimeout;
    {
      UniqueLock lock(chan->mu);
      if (!due_now) {
        chan->cv.WaitUntil(chan->mu, ev.at, [&]() CGDNN_REQUIRES(chan->mu) {
          return !chan->completions.empty();
        });
      }
      drained.swap(chan->completions);
    }
    for (const auto& c : drained) process_completion(c);
    drained.clear();
    if (!due_now && Clock::now() < ev.at) {
      continue;  // woken by a completion, not a timer
    }
    events.pop();
    Call& call = calls[ev.call];
    switch (ev.kind) {
      case Event::Kind::kArrival:
        if (cancelled) {
          call.resolved = true;  // never offered; don't count as failed
          report.calls -= 1;
          break;
        }
        submit_attempt(ev.call);
        break;
      case Event::Kind::kTimeout:
        if (!call.resolved && ev.attempt == call.attempts) {
          report.timeouts += 1;
          schedule_retry_or_fail(ev.call);
        }
        break;
      case Event::Kind::kRetry:
        if (cancelled && !call.resolved) {
          call.resolved = true;
          report.failed += 1;
          break;
        }
        if (!call.resolved) submit_attempt(ev.call);
        break;
    }
  }
  // Heap empty: every call resolved (each attempt carries a timeout timer).
  {
    LockGuard lock(chan->mu);
    for (const auto& c : chan->completions) {
      if (!calls[c.call].resolved) process_completion(c);
    }
  }

  report.wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  report.achieved_qps = report.wall_s > 0
                            ? static_cast<double>(report.succeeded) /
                                  report.wall_s
                            : 0;
  report.p50_us = Percentile(latencies_us, 0.50);
  report.p99_us = Percentile(latencies_us, 0.99);
  report.max_us = latencies_us.empty()
                      ? 0
                      : *std::max_element(latencies_us.begin(),
                                          latencies_us.end());
  if (!latencies_us.empty()) {
    double sum = 0;
    for (double v : latencies_us) sum += v;
    report.mean_us = sum / static_cast<double>(latencies_us.size());
  }
  report.server_p50_us = Percentile(server_latencies_us, 0.50);
  report.server_p99_us = Percentile(server_latencies_us, 0.99);
  report.server_max_us =
      server_latencies_us.empty()
          ? 0
          : *std::max_element(server_latencies_us.begin(),
                              server_latencies_us.end());
  return report;
}

}  // namespace cgdnn::serve
