#include "cgdnn/serve/queue.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "cgdnn/trace/metrics.hpp"

namespace cgdnn::serve {

namespace {

std::uint64_t StallPushMsFromEnv() {
  const char* env = std::getenv("CGDNN_SERVE_FAULT_STALL_QUEUE");
  if (env == nullptr || env[0] == '\0') return 0;
  return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
}

}  // namespace

const char* RequestClassName(RequestClass cls) {
  switch (cls) {
    case RequestClass::kInteractive: return "interactive";
    case RequestClass::kBatch: return "batch";
  }
  return "?";
}

const char* StatusName(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kShedQueueFull: return "shed_queue_full";
    case Status::kShedLoad: return "shed_load";
    case Status::kExpired: return "expired";
    case Status::kWorkerStalled: return "worker_stalled";
    case Status::kError: return "error";
  }
  return "?";
}

bool CompleteOnce(const RequestPtr& req, Response&& response) {
  if (req == nullptr) return false;
  if (req->completed.exchange(true, std::memory_order_acq_rel)) return false;
  if (req->done) req->done(std::move(response));
  return true;
}

BoundedRequestQueue::BoundedRequestQueue(std::size_t capacity)
    : capacity_(capacity),
      stall_push_ms_(StallPushMsFromEnv()),
      depth_gauge_(&trace::MetricsRegistry::Default().GetGauge(
          "serve.queue.depth")),
      depth_hist_(&trace::MetricsRegistry::Default().GetHistogram(
          "serve.queue.depth_hist")),
      lock_wait_hist_(&trace::MetricsRegistry::Default().GetHistogram(
          "serve.queue.lock_wait_us")) {
  CGDNN_CHECK_GT(capacity_, 0u) << "request queue needs a positive capacity";
}

void BoundedRequestQueue::RecordLockWait(std::uint64_t wait_ns) {
  lock_wait_hist_->Observe(static_cast<double>(wait_ns) / 1e3);
}

PushResult BoundedRequestQueue::Push(RequestPtr req) {
  const std::uint64_t t0 = MonotonicNowNs();
  UniqueLock lock(mu_);
  RecordLockWait(MonotonicNowNs() - t0);
  // Fault drill: hold the queue lock to simulate a stalled/contended queue.
  // Producers and consumers pile up on mu_ and the lock-wait histogram plus
  // shed counters must tell the story (docs/serving.md). The sleep-under-
  // lock is the drill's entire point, so it carries the one allowlisted
  // blocking-under-lock suppression in the tree (docs/correctness.md).
  if (stall_push_ms_ > 0) {
    // cgdnn-lint: allow(blocking-under-lock)
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_push_ms_));
  }
  if (closed_) return PushResult::kClosed;
  if (queue_.size() >= capacity_) return PushResult::kFull;
  queue_.push_back(std::move(req));
  if (queue_.size() > max_depth_) max_depth_ = queue_.size();
  depth_gauge_->Set(static_cast<double>(queue_.size()));
  depth_hist_->Observe(static_cast<double>(queue_.size()));
  lock.Unlock();
  not_empty_.NotifyOne();
  return PushResult::kAccepted;
}

std::vector<RequestPtr> BoundedRequestQueue::PopBatch(
    std::size_t max_batch, std::uint64_t fill_deadline_us) {
  std::vector<RequestPtr> batch;
  if (max_batch == 0) return batch;
  std::vector<RequestPtr> expired;

  const std::uint64_t t0 = MonotonicNowNs();
  UniqueLock lock(mu_);
  RecordLockWait(MonotonicNowNs() - t0);

  // Phase 1: block for the first request (or close+drain to empty).
  not_empty_.Wait(mu_, [&]() CGDNN_REQUIRES(mu_) {
    return closed_ || !queue_.empty();
  });

  auto take_available = [&]() CGDNN_REQUIRES(mu_) {
    const std::uint64_t now = MonotonicNowNs();
    while (!queue_.empty() && batch.size() < max_batch) {
      RequestPtr req = std::move(queue_.front());
      queue_.pop_front();
      req->dequeue_ns = now;  // queue_wait stage ends here (request.hpp)
      // Deadline enforcement at dequeue: an expired request must not waste
      // a batch slot or a forward.
      if (req->ExpiredAt(now)) {
        expired.push_back(std::move(req));
      } else {
        batch.push_back(std::move(req));
      }
    }
    depth_gauge_->Set(static_cast<double>(queue_.size()));
  };

  take_available();

  // Phase 2: coalesce. Wait (bounded by the batch deadline counted from the
  // first dequeue) for the batch to fill. A closed queue stops the wait —
  // drain latency beats fill factor during shutdown.
  if (fill_deadline_us > 0 && !batch.empty()) {
    const auto fill_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(fill_deadline_us);
    while (batch.size() < max_batch && !closed_) {
      if (not_empty_.WaitUntil(mu_, fill_deadline, [&]() CGDNN_REQUIRES(mu_) {
            return closed_ || !queue_.empty();
          })) {
        take_available();
      } else {
        break;  // fill deadline elapsed
      }
    }
  }
  lock.Unlock();

  for (auto& req : expired) {
    const std::uint64_t now = MonotonicNowNs();
    Response r;
    r.status = Status::kExpired;
    r.trace_id = req->id;
    r.queue_wait_us =
        static_cast<double>(req->dequeue_ns - req->admit_ns) / 1e3;
    r.complete_us = static_cast<double>(now - req->dequeue_ns) / 1e3;
    r.queue_us = r.queue_wait_us;
    r.total_us = static_cast<double>(now - req->admit_ns) / 1e3;
    CompleteOnce(req, std::move(r));
    trace::MetricsRegistry::Default()
        .GetCounter("serve.requests.expired_dequeue")
        .Add(1);
  }
  return batch;
}

void BoundedRequestQueue::Close() {
  {
    LockGuard lock(mu_);
    closed_ = true;
  }
  not_empty_.NotifyAll();
}

bool BoundedRequestQueue::closed() const {
  LockGuard lock(mu_);
  return closed_;
}

std::size_t BoundedRequestQueue::depth() const {
  LockGuard lock(mu_);
  return queue_.size();
}

std::size_t BoundedRequestQueue::max_depth() const {
  LockGuard lock(mu_);
  return max_depth_;
}

}  // namespace cgdnn::serve
