// Serving request/response types (ROADMAP item 1: `cgdnn_serve`).
//
// A Request is one single-sample inference job with an absolute deadline
// and a traffic class. Responses are delivered through a completion
// callback that fires EXACTLY once, no matter how many parties race to
// finish the request — the worker that forwarded it, the dequeue path that
// found it expired, the admission controller that shed it, or the hang
// supervisor failing over a stalled worker's in-flight batch. That
// exactly-once discipline (CompleteOnce) is what lets the overload and
// stalled-worker paths re-route requests without double-completing them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cgdnn/core/common.hpp"

namespace cgdnn::serve {

/// Traffic classes for admission control. Interactive requests survive
/// deeper into the degradation ladder than batch (best-effort) traffic:
/// under sustained overload the server sheds kBatch first.
enum class RequestClass : std::uint8_t {
  kInteractive = 0,
  kBatch = 1,
};

const char* RequestClassName(RequestClass cls);

/// Terminal status of a request. Every admitted request ends in exactly one
/// of these; rejected requests are answered synchronously at Submit.
enum class Status : std::uint8_t {
  kOk = 0,            ///< forwarded; output is valid
  kShedQueueFull,     ///< rejected at admission: bounded queue at capacity
  kShedLoad,          ///< rejected at admission: degradation ladder shed
  kExpired,           ///< deadline passed (at dequeue or at batch completion)
  kWorkerStalled,     ///< failed over from a hung worker's in-flight batch
  kError,             ///< forward threw; server kept serving
};

const char* StatusName(Status status);

/// What the server hands back. For Status::kOk `output` holds the model's
/// output plane for this sample (e.g. class probabilities); for every other
/// status it is empty.
struct Response {
  Status status = Status::kError;
  std::vector<float> output;
  double queue_us = 0;    ///< admission -> dequeue
  double total_us = 0;    ///< admission -> completion
  int batch_size = 0;     ///< coalesced batch this request rode in (0 = none)

  /// Request-scoped attribution (docs/observability.md). The trace id is
  /// the request id; the stage durations telescope — computed from the
  /// admit/dequeue/dispatch/forward-done/completion stamps on one shared
  /// timeline, so queue_wait + batch_form + compute + complete == total
  /// (up to float rounding). Stages a request never reached stay 0 (a
  /// request shed at admission has only `complete`; one expired at dequeue
  /// has queue_wait + complete).
  std::uint64_t trace_id = 0;
  int worker = -1;            ///< worker that forwarded the batch (-1: none)
  double queue_wait_us = 0;   ///< admit -> popped off the queue
  double batch_form_us = 0;   ///< popped -> batch dispatched to the worker
  double compute_us = 0;      ///< dispatch -> forward done
  double complete_us = 0;     ///< forward done -> completion stamped
};

/// One in-flight inference request. Owned by shared_ptr: the queue, the
/// worker's batch, the hang supervisor and the client can all hold it while
/// racing to complete it.
struct Request {
  std::uint64_t id = 0;
  RequestClass cls = RequestClass::kInteractive;
  /// Absolute deadline on the cgdnn::MonotonicNowNs timeline. 0 = none.
  std::uint64_t deadline_ns = 0;
  std::uint64_t admit_ns = 0;  ///< stamped by Server::Submit
  /// Stamped by BoundedRequestQueue::PopBatch when the request is popped
  /// into a batch (0 until then). With admit_ns and the worker's dispatch /
  /// forward-done / completion stamps this yields the per-stage breakdown
  /// in Response (the request's TraceContext: its id doubles as the
  /// Chrome-trace flow id binding the submit-side span to the worker-side
  /// span).
  std::uint64_t dequeue_ns = 0;
  /// Sample-major input, exactly one sample of the model's input shape.
  std::vector<float> input;
  /// Completion callback; invoked exactly once via CompleteOnce. May be
  /// called from a worker thread, the supervisor thread, or the submitting
  /// thread (synchronous shed) — must be thread-safe and non-blocking.
  std::function<void(Response&&)> done;

  /// Guards exactly-once completion. Internal to CompleteOnce.
  std::atomic<bool> completed{false};

  bool ExpiredAt(std::uint64_t now_ns) const {
    return deadline_ns != 0 && now_ns > deadline_ns;
  }
};

using RequestPtr = std::shared_ptr<Request>;

/// Completes `req` with `response` unless another party got there first.
/// Returns true when this call delivered the completion. The response
/// callback itself runs outside any server lock.
bool CompleteOnce(const RequestPtr& req, Response&& response);

}  // namespace cgdnn::serve
