#include "cgdnn/serve/server.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "cgdnn/blackbox/blackbox.hpp"
#include "cgdnn/core/thread_annotations.hpp"
#include "cgdnn/parallel/context.hpp"
#include "cgdnn/trace/metrics.hpp"
#include "cgdnn/trace/trace.hpp"

namespace cgdnn::serve {

namespace {

/// CGDNN_SERVE_FAULT_SLOW_WORKER="<ms>" (worker 0) or "<id>:<ms>".
void ParseSlowWorkerFault(int* worker_id, std::uint64_t* ms) {
  *worker_id = -1;
  *ms = 0;
  const char* env = std::getenv("CGDNN_SERVE_FAULT_SLOW_WORKER");
  if (env == nullptr || env[0] == '\0') return;
  const std::string s(env);
  const auto colon = s.find(':');
  if (colon == std::string::npos) {
    *worker_id = 0;
    *ms = std::strtoull(s.c_str(), nullptr, 10);
  } else {
    *worker_id = static_cast<int>(std::strtol(s.c_str(), nullptr, 10));
    *ms = std::strtoull(s.c_str() + colon + 1, nullptr, 10);
  }
}

std::uint64_t DropResponseEveryFromEnv() {
  const char* env = std::getenv("CGDNN_SERVE_FAULT_DROP_RESPONSE");
  if (env == nullptr || env[0] == '\0') return 0;
  return std::strtoull(env, nullptr, 10);
}

}  // namespace

struct Server::Impl {
  // ---- configuration ------------------------------------------------------
  proto::NetParameter model;
  ServerOptions opts;

  // ---- model --------------------------------------------------------------
  std::unique_ptr<InferenceEngine> engine;

  // ---- request path -------------------------------------------------------
  std::unique_ptr<BoundedRequestQueue> queue;
  std::atomic<std::uint64_t> next_id{1};

  // ---- live stats (stats.hpp) ---------------------------------------------
  std::unique_ptr<StatsExporter> stats_exporter;

  // ---- worker pool --------------------------------------------------------
  struct WorkerState {
    std::unique_ptr<InferenceEngine::Worker> model;  // private activations
    std::thread thread;
    /// Heartbeat: MonotonicNowNs at batch start, 0 when idle. The
    /// supervisor's hang detection reads this. Written only under
    /// inflight_mu so it stays paired with `inflight` (failover re-checks
    /// it under the lock to avoid killing a batch the worker already
    /// moved past).
    std::atomic<std::uint64_t> batch_start_ns{0};
    std::atomic<bool> excluded{false};
    /// WorkerLoop returned; Stop() joins only after seeing this (a hung
    /// worker is failed over + detached instead — see Stop()).
    std::atomic<bool> exited{false};
    /// The batch currently being forwarded, visible to the supervisor for
    /// failover when this worker stalls.
    Mutex inflight_mu;
    std::vector<RequestPtr> inflight CGDNN_GUARDED_BY(inflight_mu);
    std::uint64_t fault_slow_ms = 0;  // CGDNN_SERVE_FAULT_SLOW_WORKER
  };
  std::vector<std::unique_ptr<WorkerState>> workers;

  std::thread supervisor;
  std::atomic<bool> supervisor_stop{false};
  std::atomic<bool> started{false};
  std::atomic<bool> stopped{false};

  // ---- degradation ladder -------------------------------------------------
  std::atomic<int> degrade_level{0};

  // ---- fault injection ----------------------------------------------------
  std::uint64_t drop_response_every = 0;
  std::atomic<std::uint64_t> ok_seq{0};

  // ---- per-server stats (see ServerStats) ---------------------------------
  std::atomic<std::uint64_t> submitted{0}, admitted{0}, ok{0},
      shed_queue_full{0}, shed_load{0}, expired{0}, worker_stalled{0},
      errors{0}, dropped_responses{0}, batches{0}, batched_requests{0};
  std::atomic<int> workers_excluded{0};

  // Registry metrics, resolved once (hot-path rule in metrics.hpp).
  trace::Counter* m_ok = nullptr;
  trace::Counter* m_shed_queue_full = nullptr;
  trace::Counter* m_shed_load = nullptr;
  trace::Counter* m_expired = nullptr;
  trace::Counter* m_stalled = nullptr;
  trace::Counter* m_errors = nullptr;
  trace::Histogram* m_batch_size = nullptr;
  trace::Histogram* m_total_us = nullptr;
  trace::Histogram* m_queue_us = nullptr;
  trace::Gauge* m_degrade = nullptr;

  void ResolveMetrics() {
    auto& reg = trace::MetricsRegistry::Default();
    m_ok = &reg.GetCounter("serve.requests.ok");
    m_shed_queue_full = &reg.GetCounter("serve.requests.shed_queue_full");
    m_shed_load = &reg.GetCounter("serve.requests.shed_load");
    m_expired = &reg.GetCounter("serve.requests.expired");
    m_stalled = &reg.GetCounter("serve.requests.worker_stalled");
    m_errors = &reg.GetCounter("serve.requests.errors");
    m_batch_size = &reg.GetHistogram("serve.batch.size");
    m_total_us = &reg.GetHistogram("serve.latency.total_us");
    m_queue_us = &reg.GetHistogram("serve.latency.queue_us");
    m_degrade = &reg.GetGauge("serve.degrade.level");
  }

  /// Books a completed response into stats + metrics. Installed as a
  /// wrapper around every request's `done` callback, so every completion
  /// path — worker, supervisor failover, dequeue expiry, synchronous shed —
  /// is counted exactly once.
  void Count(const Response& r) {
    stats_exporter->RecordCompletion(r);
    // Satellite signals for the currently-invisible outcomes: a trace
    // instant per shed/expired/stalled completion makes overload decisions
    // visible on the timeline next to the request spans they displaced.
    if (trace::TracingActive() && r.status != Status::kOk) {
      const char* name = nullptr;
      switch (r.status) {
        case Status::kOk: break;
        case Status::kShedQueueFull: name = "serve.shed.queue_full"; break;
        case Status::kShedLoad: name = "serve.shed.load"; break;
        case Status::kExpired: name = "serve.expired"; break;
        case Status::kWorkerStalled: name = "serve.worker_stalled"; break;
        case Status::kError: name = "serve.error"; break;
      }
      if (name != nullptr) {
        trace::Tracer::Get().EmitInstant(
            "serve", name, trace::NowNs(),
            {{"trace_id", static_cast<double>(r.trace_id)}});
      }
    }
    switch (r.status) {
      case Status::kOk:
        ok.fetch_add(1, std::memory_order_relaxed);
        m_ok->Add(1);
        m_total_us->Observe(r.total_us);
        m_queue_us->Observe(r.queue_us);
        break;
      case Status::kShedQueueFull:
        shed_queue_full.fetch_add(1, std::memory_order_relaxed);
        m_shed_queue_full->Add(1);
        break;
      case Status::kShedLoad:
        shed_load.fetch_add(1, std::memory_order_relaxed);
        m_shed_load->Add(1);
        break;
      case Status::kExpired:
        expired.fetch_add(1, std::memory_order_relaxed);
        m_expired->Add(1);
        break;
      case Status::kWorkerStalled:
        worker_stalled.fetch_add(1, std::memory_order_relaxed);
        m_stalled->Add(1);
        break;
      case Status::kError:
        errors.fetch_add(1, std::memory_order_relaxed);
        m_errors->Add(1);
        break;
    }
  }

  std::uint64_t EffectiveBatchDeadlineUs() const {
    const std::uint64_t base = opts.batch_deadline_us;
    if (degrade_level.load(std::memory_order_relaxed) >= 1) {
      return static_cast<std::uint64_t>(
          static_cast<double>(base) * opts.degraded_batch_deadline_factor);
    }
    return base;
  }

  void WorkerLoop(int id);
  void SupervisorLoop();
  bool FailOverStalledWorker(int id, std::uint64_t observed_start_ns,
                             std::uint64_t age_ns);
};

Server::Server(const proto::NetParameter& model, const ServerOptions& opts)
    : impl_(std::make_shared<Impl>()) {
  impl_->model = model;
  impl_->opts = opts;
  CGDNN_CHECK_GT(impl_->opts.workers, 0) << "need at least one worker";
  CGDNN_CHECK_GT(impl_->opts.max_batch, 0) << "max_batch must be positive";
  impl_->ResolveMetrics();

  InferenceEngine::Options eopts;
  eopts.max_batch = opts.max_batch;
  eopts.planned = opts.planned;
  eopts.plan_cache = opts.plan_cache;
  eopts.plan_cache_dir = opts.plan_cache_dir;
  eopts.plan_threads = parallel::Parallel::ResolveThreads();
  impl_->engine = std::make_unique<InferenceEngine>(model, eopts);
  impl_->queue = std::make_unique<BoundedRequestQueue>(opts.queue_capacity);
  impl_->stats_exporter = std::make_unique<StatsExporter>(opts.stats);
}

Server::~Server() { Stop(); }

Net<float>& Server::master_net() { return impl_->engine->master(); }
index_t Server::sample_size() const { return impl_->engine->sample_size(); }
index_t Server::output_size() const { return impl_->engine->output_size(); }
int Server::degrade_level() const {
  return impl_->degrade_level.load(std::memory_order_relaxed);
}

StatsSnapshot Server::live_stats() const {
  return impl_->stats_exporter->Snapshot(MonotonicNowNs());
}

void Server::FlushStats() { impl_->stats_exporter->Finish(); }

double Server::CalibrateSustainableQps(int reps) {
  Impl& impl = *impl_;
  CGDNN_CHECK(!impl.started.load(std::memory_order_acquire))
      << "calibrate before Start(): worker construction is serial-only";
  if (impl.opts.workers > 1) {
    CGDNN_CHECK_EQ(parallel::Parallel::ResolveThreads(), 1)
        << "workers > 1 requires intra-op threads == 1 (the calibration "
           "probes run concurrently, same contract as Start)";
  }
  // One probe replica per worker, exercised CONCURRENTLY: the pool's real
  // capacity on a host with fewer cores (or less memory bandwidth) than
  // workers is the contended aggregate rate, not workers x an uncontended
  // single-worker rate. Replica construction stays serial (Net build and
  // planning are not thread-safe).
  const int workers = impl.opts.workers;
  const index_t max_batch = impl.opts.max_batch;
  std::vector<std::unique_ptr<InferenceEngine::Worker>> probes;
  probes.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    probes.push_back(impl.engine->MakeWorker());
  }
  std::vector<float> zeros(
      static_cast<std::size_t>(impl.engine->sample_size()), 0.0f);
  std::vector<const float*> samples(static_cast<std::size_t>(max_batch),
                                    zeros.data());
  {  // warmup every replica (lazy buffers, cold caches)
    std::vector<std::vector<float>> outputs;
    for (auto& probe : probes) {
      outputs.clear();  // RunBatch appends; don't accumulate across calls
      probe->RunBatch(samples, &outputs);
    }
  }
  const std::uint64_t t0 = MonotonicNowNs();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (auto& probe : probes) {
    threads.emplace_back([&probe, &samples, reps] {
      std::vector<std::vector<float>> outputs;
      for (int r = 0; r < reps; ++r) {
        // Clear per rep (RunBatch appends): accumulating reps x max_batch
        // vectors would add allocation overhead inside the timed region
        // and deflate the calibrated rate.
        outputs.clear();
        probe->RunBatch(samples, &outputs);
      }
    });
  }
  for (auto& t : threads) t.join();
  double wall_us = static_cast<double>(MonotonicNowNs() - t0) / 1e3;
  if (wall_us <= 0) wall_us = 1;
  return static_cast<double>(workers) * static_cast<double>(reps) *
         static_cast<double>(max_batch) / wall_us * 1e6;
}

void Server::Start() {
  CGDNN_CHECK(!impl_->stopped.load(std::memory_order_acquire))
      << "Server::Start after Stop";
  CGDNN_CHECK(!impl_->started.exchange(true, std::memory_order_acq_rel))
      << "Server::Start called twice";

  // Intra-op parallelism (global OMP config + tid-keyed privatization
  // arenas) does not compose with concurrent worker forwards.
  if (impl_->opts.workers > 1) {
    CGDNN_CHECK_EQ(parallel::Parallel::ResolveThreads(), 1)
        << "workers > 1 requires intra-op threads == 1 (privatization "
           "arenas are keyed by OMP thread id; concurrent parallel "
           "forwards would race)";
  }

  int fault_worker = -1;
  std::uint64_t fault_ms = 0;
  ParseSlowWorkerFault(&fault_worker, &fault_ms);
  impl_->drop_response_every = DropResponseEveryFromEnv();

  impl_->stats_exporter->Start();  // snapshot publisher (if paths are set)

  // Worker replicas are built serially: net construction draws from the
  // (non-thread-safe) global RNG, and plan application publishes gauges.
  for (int i = 0; i < impl_->opts.workers; ++i) {
    auto ws = std::make_unique<Impl::WorkerState>();
    ws->model = impl_->engine->MakeWorker();
    if (i == fault_worker) ws->fault_slow_ms = fault_ms;
    impl_->workers.push_back(std::move(ws));
  }
  // Threads launch only after every replica exists.
  for (int i = 0; i < impl_->opts.workers; ++i) {
    auto impl = impl_;  // keep Impl alive in detached (stalled) workers
    impl_->workers[static_cast<std::size_t>(i)]->thread =
        std::thread([impl, i] { impl->WorkerLoop(i); });
  }
  auto impl = impl_;
  impl_->supervisor = std::thread([impl] { impl->SupervisorLoop(); });
}

void Server::Submit(RequestPtr req) {
  Impl& impl = *impl_;
  impl.submitted.fetch_add(1, std::memory_order_relaxed);

  const std::uint64_t now = MonotonicNowNs();
  req->id = impl.next_id.fetch_add(1, std::memory_order_relaxed);
  req->admit_ns = now;
  if (req->deadline_ns == 0 && impl.opts.default_deadline_ms > 0) {
    req->deadline_ns = now + impl.opts.default_deadline_ms * 1'000'000ull;
  }
  // Wrap the caller's callback so every completion path books stats.
  {
    auto impl_sp = impl_;
    auto orig = std::move(req->done);
    req->done = [impl_sp, orig = std::move(orig)](Response&& r) {
      impl_sp->Count(r);
      if (orig) orig(std::move(r));
    };
  }

  auto reject = [&](Status status) {
    Response r;
    r.status = status;
    r.trace_id = req->id;
    const double us = static_cast<double>(MonotonicNowNs() - now) / 1e3;
    r.complete_us = us;  // never queued: the whole life is the verdict
    r.total_us = us;
    CompleteOnce(req, std::move(r));
  };

  if (req->ExpiredAt(now)) {
    reject(Status::kExpired);
    return;
  }
  // Degradation level 2: shed best-effort traffic before it queues.
  if (req->cls == RequestClass::kBatch &&
      impl.degrade_level.load(std::memory_order_relaxed) >= 2) {
    reject(Status::kShedLoad);
    return;
  }

  switch (impl.queue->Push(req)) {
    case PushResult::kAccepted:
      impl.admitted.fetch_add(1, std::memory_order_relaxed);
      // Trace the admission: a submit-side span enclosing a flow START
      // whose id is the request id. The matching flow end fires inside the
      // worker-side request span, so Perfetto draws the cross-thread
      // queue -> worker arrow (docs/observability.md).
      if (trace::TracingActive()) {
        auto& tracer = trace::Tracer::Get();
        tracer.Emit("serve", "serve.submit", now, MonotonicNowNs());
        tracer.EmitFlow("serve", "serve.req", now, req->id, 's');
      }
      break;
    case PushResult::kFull:
      reject(Status::kShedQueueFull);
      break;
    case PushResult::kClosed:
      reject(Status::kShedLoad);
      break;
  }
}

void Server::Impl::WorkerLoop(int id) {
  WorkerState& ws = *workers[static_cast<std::size_t>(id)];
  std::vector<const float*> samples;
  std::vector<std::vector<float>> outputs;

  while (!ws.excluded.load(std::memory_order_acquire)) {
    std::vector<RequestPtr> batch =
        queue->PopBatch(static_cast<std::size_t>(opts.max_batch),
                        EffectiveBatchDeadlineUs());
    if (batch.empty()) {
      if (queue->closed() && queue->depth() == 0) break;
      continue;  // everything popped had expired
    }

    // Publish the heartbeat + in-flight batch BEFORE any work (including
    // the slow-worker fault) so the supervisor can see a stall and fail
    // the batch over. Both are published under inflight_mu as one unit:
    // failover re-reads batch_start_ns under the lock and aborts if it no
    // longer matches the timestamp that triggered the hang verdict.
    const std::uint64_t batch_start = MonotonicNowNs();
    {
      LockGuard lock(ws.inflight_mu);
      ws.inflight = batch;
      ws.batch_start_ns.store(batch_start, std::memory_order_release);
    }

    if (ws.fault_slow_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ws.fault_slow_ms));
    }

    samples.clear();
    outputs.clear();
    for (const auto& req : batch) samples.push_back(req->input.data());

    bool forward_ok = true;
    {
      blackbox::ScopedPosition pos(blackbox::EventKind::kSpanBegin,
                                   blackbox::EventKind::kSpanEnd,
                                   "serve.worker.batch", batch.size());
      try {
        ws.model->RunBatch(samples, &outputs);
      } catch (const std::exception&) {
        forward_ok = false;
      }
    }

    const std::uint64_t done_ns = MonotonicNowNs();
    const bool tracing = trace::TracingActive();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const RequestPtr& req = batch[i];
      Response r;
      r.batch_size = static_cast<int>(batch.size());
      r.trace_id = req->id;
      r.worker = id;
      // Stage attribution (request.hpp): the stamps telescope —
      // admit (Submit) -> dequeue (PopBatch) -> dispatch (batch_start,
      // which the fault sleep FOLLOWS so an injected straggler shows up as
      // compute) -> forward done -> completion. queue_us keeps its
      // pre-existing meaning (admit -> dispatch) for older consumers.
      const std::uint64_t complete_ns = MonotonicNowNs();
      r.queue_wait_us =
          static_cast<double>(req->dequeue_ns - req->admit_ns) / 1e3;
      r.batch_form_us =
          static_cast<double>(batch_start - req->dequeue_ns) / 1e3;
      r.compute_us = static_cast<double>(done_ns - batch_start) / 1e3;
      r.complete_us = static_cast<double>(complete_ns - done_ns) / 1e3;
      r.queue_us = static_cast<double>(batch_start - req->admit_ns) / 1e3;
      r.total_us = static_cast<double>(complete_ns - req->admit_ns) / 1e3;
      if (tracing) {
        // Worker-side request span + stage children, and the flow END that
        // binds this span back to the submit-side flow start. The child
        // spans share boundary stamps, so they tile the request span.
        auto& tracer = trace::Tracer::Get();
        tracer.Emit("serve", "serve.request", req->dequeue_ns, complete_ns,
                    {{"trace_id", static_cast<double>(req->id)},
                     {"batch_size", static_cast<double>(batch.size())},
                     {"queue_wait_us", r.queue_wait_us},
                     {"batch_form_us", r.batch_form_us},
                     {"compute_us", r.compute_us},
                     {"complete_us", r.complete_us}});
        tracer.Emit("serve", "serve.stage.queue_wait", req->admit_ns,
                    req->dequeue_ns);
        tracer.Emit("serve", "serve.stage.batch_form", req->dequeue_ns,
                    batch_start);
        tracer.Emit("serve", "serve.stage.compute", batch_start, done_ns);
        tracer.Emit("serve", "serve.stage.complete", done_ns, complete_ns);
        tracer.EmitFlow("serve", "serve.req", req->dequeue_ns, req->id, 'f');
      }
      if (!forward_ok) {
        r.status = Status::kError;
      } else if (req->ExpiredAt(done_ns)) {
        // Deadline enforcement at batch completion: the forward finished
        // too late for this request to be useful.
        r.status = Status::kExpired;
      } else {
        r.status = Status::kOk;
        r.output = std::move(outputs[i]);
        // Fault drill: eat every n-th OK response; clients must cover this
        // with timeouts + retries.
        if (drop_response_every > 0 &&
            ok_seq.fetch_add(1, std::memory_order_relaxed) %
                    drop_response_every == drop_response_every - 1) {
          dropped_responses.fetch_add(1, std::memory_order_relaxed);
          trace::MetricsRegistry::Default()
              .GetCounter("serve.fault.dropped_responses")
              .Add(1);
          continue;
        }
      }
      CompleteOnce(req, std::move(r));
    }

    {
      LockGuard lock(ws.inflight_mu);
      ws.batch_start_ns.store(0, std::memory_order_release);
      ws.inflight.clear();
    }
    batches.fetch_add(1, std::memory_order_relaxed);
    batched_requests.fetch_add(batch.size(), std::memory_order_relaxed);
    m_batch_size->Observe(static_cast<double>(batch.size()));
    stats_exporter->RecordBatch(id, batch.size());
  }
  ws.exited.store(true, std::memory_order_release);
}

bool Server::Impl::FailOverStalledWorker(int id,
                                         std::uint64_t observed_start_ns,
                                         std::uint64_t age_ns) {
  WorkerState& ws = *workers[static_cast<std::size_t>(id)];

  // Re-check the hang verdict under inflight_mu: the caller sampled
  // batch_start_ns WITHOUT the lock, and the worker may have finished that
  // batch (and even started a new one) in between. batch_start_ns only
  // changes under inflight_mu, so a match here proves the stalled batch is
  // still the in-flight one; a mismatch means the worker recovered — abort
  // rather than exclude a healthy worker and fail its NEW batch.
  std::vector<RequestPtr> orphaned;
  {
    LockGuard lock(ws.inflight_mu);
    // Supervisor and Stop() can both reach a hang verdict; excluded is set
    // only under inflight_mu, so this check makes failover single-shot.
    if (ws.excluded.load(std::memory_order_relaxed)) return false;
    if (ws.batch_start_ns.load(std::memory_order_relaxed) !=
        observed_start_ns) {
      return false;
    }
    ws.excluded.store(true, std::memory_order_release);
    orphaned = ws.inflight;
  }
  workers_excluded.fetch_add(1, std::memory_order_relaxed);
  trace::MetricsRegistry::Default()
      .GetCounter("serve.workers.excluded")
      .Add(1);

  // Fail the in-flight batch over BEFORE the (slow, file-writing) blackbox
  // dump: clients have waited >= hang_deadline already. CompleteOnce makes
  // this race-safe against the worker finishing late — whichever side gets
  // there first wins, the other no-ops.
  const std::uint64_t now = MonotonicNowNs();
  for (const auto& req : orphaned) {
    Response r;
    r.status = Status::kWorkerStalled;
    r.trace_id = req->id;
    r.worker = id;
    // Attribution for the failed-over batch: it is stuck in compute — the
    // stamps up to dispatch (observed_start_ns) are real, the rest of its
    // life is the stall itself.
    r.queue_wait_us =
        static_cast<double>(req->dequeue_ns - req->admit_ns) / 1e3;
    r.batch_form_us =
        static_cast<double>(observed_start_ns - req->dequeue_ns) / 1e3;
    r.compute_us = static_cast<double>(now - observed_start_ns) / 1e3;
    r.queue_us = 0;
    r.total_us = static_cast<double>(now - req->admit_ns) / 1e3;
    CompleteOnce(req, std::move(r));
  }

  // Forensics: one blackbox dump captures every thread's ring, including
  // the stalled worker's still-open "serve.worker.batch" position.
  blackbox::Record(blackbox::EventKind::kViolation, "serve.worker.stall",
                   static_cast<std::uint64_t>(id), age_ns);
  blackbox::DumpNow(blackbox::DumpReason::kWatchdog);
  return true;
}

void Server::Impl::SupervisorLoop() {
  const std::uint64_t hang_ns = opts.hang_deadline_ms * 1'000'000ull;
  while (!supervisor_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opts.supervisor_tick_ms));

    // Degradation ladder: trip on queue fill, release with hysteresis at
    // half the trip watermark so the level does not flap.
    const double fill =
        static_cast<double>(queue->depth()) /
        static_cast<double>(queue->capacity());
    int level = degrade_level.load(std::memory_order_relaxed);
    if (fill >= opts.shed_fill) {
      level = 2;
    } else if (fill >= opts.degrade_fill && level < 1) {
      level = 1;
    }
    if (level == 2 && fill < opts.shed_fill * 0.5) level = 1;
    if (level == 1 && fill < opts.degrade_fill * 0.5) level = 0;
    const int prev =
        degrade_level.exchange(level, std::memory_order_relaxed);
    m_degrade->Set(static_cast<double>(level));
    stats_exporter->SetQueueFill(fill);
    stats_exporter->SetDegradeLevel(level);
    if (level != prev && trace::TracingActive()) {
      // Ladder transitions are rare and load-bearing: mark each one on the
      // supervisor's timeline so a latency cliff can be lined up with the
      // level change that caused (or failed to prevent) it.
      trace::Tracer::Get().EmitInstant(
          "serve", "serve.degrade.level_change", trace::NowNs(),
          {{"level", static_cast<double>(level)},
           {"prev", static_cast<double>(prev)},
           {"queue_fill", fill}});
    }

    // Hang detection: a worker whose current batch is older than the
    // deadline is excluded and its batch failed over.
    if (hang_ns == 0) continue;
    const std::uint64_t now = MonotonicNowNs();
    for (std::size_t i = 0; i < workers.size(); ++i) {
      WorkerState& ws = *workers[i];
      if (ws.excluded.load(std::memory_order_acquire)) continue;
      const std::uint64_t start =
          ws.batch_start_ns.load(std::memory_order_acquire);
      if (start != 0 && now > start && now - start > hang_ns) {
        FailOverStalledWorker(static_cast<int>(i), start, now - start);
      }
    }
  }
}

void Server::Stop() {
  Impl& impl = *impl_;
  if (impl.stopped.exchange(true, std::memory_order_acq_rel)) return;

  // Close first: Push starts rejecting, draining workers stop waiting for
  // batch fill (queue.hpp), and PopBatch returns empty once drained.
  impl.queue->Close();

  // Join workers with a bounded wait: a worker hung inside its forward
  // never returns, and a plain join would block SIGTERM drain forever. The
  // supervisor is still running here and may exclude the worker first;
  // otherwise Stop applies the same hang deadline itself, fails the batch
  // over, and detaches. A detached worker holds a shared_ptr to Impl, so
  // detaching is safe. The deadline is re-based on every sign of progress
  // (new batch started, or batch finished) so a long multi-batch drain is
  // never mistaken for a hang.
  const std::uint64_t hang_ns = impl.opts.hang_deadline_ms * 1'000'000ull;
  for (std::size_t i = 0; i < impl.workers.size(); ++i) {
    Impl::WorkerState& ws = *impl.workers[i];
    if (!ws.thread.joinable()) continue;
    if (hang_ns == 0) {
      // Hang detection disabled: no basis for declaring the worker stuck.
      ws.thread.join();
      continue;
    }
    std::uint64_t idle_ref = MonotonicNowNs();
    std::uint64_t last_start =
        ws.batch_start_ns.load(std::memory_order_acquire);
    while (true) {
      if (ws.exited.load(std::memory_order_acquire)) {
        ws.thread.join();
        break;
      }
      if (ws.excluded.load(std::memory_order_acquire)) {
        // Already failed over (supervisor or a previous pass here); its
        // in-flight batch was completed with kWorkerStalled.
        ws.thread.detach();
        break;
      }
      const std::uint64_t now = MonotonicNowNs();
      const std::uint64_t start =
          ws.batch_start_ns.load(std::memory_order_acquire);
      if (start != last_start) {  // progress: new batch, or went idle
        last_start = start;
        idle_ref = now;
      }
      const std::uint64_t ref = start != 0 ? start : idle_ref;
      if (now > ref && now - ref > hang_ns) {
        if (impl.FailOverStalledWorker(static_cast<int>(i), start,
                                       now - ref)) {
          ws.thread.detach();
          break;
        }
        // The worker made progress between the sample and the lock —
        // re-base and keep waiting.
        idle_ref = MonotonicNowNs();
        continue;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  impl.supervisor_stop.store(true, std::memory_order_release);
  if (impl.supervisor.joinable()) impl.supervisor.join();

  // All-workers-stalled case: requests can still sit in the closed queue.
  // Nothing will forward them — complete, never drop silently.
  while (true) {
    std::vector<RequestPtr> leftover = impl.queue->PopBatch(
        static_cast<std::size_t>(impl.opts.max_batch), 0);
    if (leftover.empty()) break;
    for (const auto& req : leftover) {
      const std::uint64_t now = MonotonicNowNs();
      Response r;
      r.status = Status::kShedLoad;
      r.trace_id = req->id;
      r.queue_wait_us =
          static_cast<double>(req->dequeue_ns - req->admit_ns) / 1e3;
      r.complete_us = static_cast<double>(now - req->dequeue_ns) / 1e3;
      r.total_us = static_cast<double>(now - req->admit_ns) / 1e3;
      CompleteOnce(req, std::move(r));
    }
  }

  // The drained run's final window (including everything completed during
  // the drain above) must land in the snapshot/history files.
  impl.stats_exporter->Finish();
}

ServerStats Server::stats() const {
  const Impl& impl = *impl_;
  ServerStats s;
  s.submitted = impl.submitted.load(std::memory_order_relaxed);
  s.admitted = impl.admitted.load(std::memory_order_relaxed);
  s.ok = impl.ok.load(std::memory_order_relaxed);
  s.shed_queue_full = impl.shed_queue_full.load(std::memory_order_relaxed);
  s.shed_load = impl.shed_load.load(std::memory_order_relaxed);
  s.expired = impl.expired.load(std::memory_order_relaxed);
  s.worker_stalled = impl.worker_stalled.load(std::memory_order_relaxed);
  s.errors = impl.errors.load(std::memory_order_relaxed);
  s.dropped_responses =
      impl.dropped_responses.load(std::memory_order_relaxed);
  s.batches = impl.batches.load(std::memory_order_relaxed);
  const std::uint64_t breq =
      impl.batched_requests.load(std::memory_order_relaxed);
  s.batch_size_mean =
      s.batches > 0 ? static_cast<double>(breq) /
                          static_cast<double>(s.batches)
                    : 0.0;
  s.workers_started = static_cast<int>(impl.workers.size());
  s.workers_excluded = impl.workers_excluded.load(std::memory_order_relaxed);
  s.degrade_level = impl.degrade_level.load(std::memory_order_relaxed);
  s.queue_max_depth = impl.queue->max_depth();
  s.queue_capacity = impl.queue->capacity();
  return s;
}

}  // namespace cgdnn::serve
