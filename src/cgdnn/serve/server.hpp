// Server: the serving runtime's control plane (ROADMAP item 1).
//
//   Submit -> [admission control] -> BoundedRequestQueue -> N workers
//                                            ^                  |
//                                   supervisor thread <---------+
//
// Robustness is the spine, enforced in layers:
//
//  * ADMISSION: the queue is bounded, so overload turns into explicit
//    rejections (Status::kShedQueueFull) instead of memory growth; under
//    sustained overload the degradation ladder additionally sheds
//    best-effort (RequestClass::kBatch) traffic at admission
//    (Status::kShedLoad) before it ever queues.
//  * DEADLINES: every request carries an absolute deadline (defaulted at
//    admission). It is enforced at dequeue (expired requests never occupy a
//    batch slot) and again at batch completion.
//  * DEGRADATION LADDER (supervisor-driven, queue-fill based, hysteresis at
//    half the trip watermark):
//      level 0  normal       full batch deadline, everything admitted
//      level 1  degraded     effective batch deadline shrunk — smaller
//                            batches, lower latency, higher per-forward cost
//      level 2  shedding     level 1 + kBatch-class requests rejected
//  * HANG DETECTION: workers publish a batch-start heartbeat; a worker
//    stuck past `hang_deadline_ms` is dumped via the PR-6 blackbox
//    (DumpReason::kWatchdog), EXCLUDED from the pool, and its in-flight
//    batch is failed over with Status::kWorkerStalled. The pool keeps
//    serving degraded — a stuck thread never takes the server down.
//  * FAULT DRILLS: CGDNN_SERVE_FAULT_SLOW_WORKER=<id:ms|ms> stalls a
//    worker before each forward, CGDNN_SERVE_FAULT_DROP_RESPONSE=<n> drops
//    every n-th OK response (client-timeout drill), and
//    CGDNN_SERVE_FAULT_STALL_QUEUE=<ms> contends the queue lock (see
//    queue.hpp). docs/serving.md describes the drills.
//
// Threading contract: Submit is safe from any thread. Response callbacks
// fire exactly once, from a worker, the supervisor, or the submitting
// thread. Because layer-level parallelism dispatches on the process-global
// parallel config and privatization arenas are keyed by OMP thread id,
// intra-op parallelism composes with ONE worker only: Start() rejects
// workers > 1 when the global parallel config asks for multiple threads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cgdnn/proto/params.hpp"
#include "cgdnn/serve/engine.hpp"
#include "cgdnn/serve/queue.hpp"
#include "cgdnn/serve/request.hpp"
#include "cgdnn/serve/stats.hpp"

namespace cgdnn::serve {

struct ServerOptions {
  int workers = 2;                       ///< inference worker threads
  index_t max_batch = 8;                 ///< dynamic-batch ceiling
  std::uint64_t batch_deadline_us = 2000;  ///< max coalescing wait
  std::size_t queue_capacity = 64;       ///< bounded queue size
  /// Deadline stamped on requests that arrive without one. 0 = none.
  std::uint64_t default_deadline_ms = 50;

  // Planner (PR-7) at the serving batch sizes.
  bool planned = true;
  bool plan_cache = true;
  std::string plan_cache_dir;

  // Degradation ladder: queue-fill watermarks in [0,1].
  double degrade_fill = 0.5;  ///< level 1 trip point
  double shed_fill = 0.8;     ///< level 2 trip point
  /// Effective batch deadline multiplier at level >= 1.
  double degraded_batch_deadline_factor = 0.25;
  std::uint64_t supervisor_tick_ms = 2;

  /// Worker stuck in one batch longer than this is dumped + excluded.
  /// 0 disables hang detection.
  std::uint64_t hang_deadline_ms = 1000;

  /// Live stats exporter (stats.hpp): sliding-window aggregation always
  /// runs; the snapshot/exposition/history files are published only when
  /// their paths are set.
  StatsOptions stats;
};

/// Monotonic counters + pool state, snapshot at any time. All counts are
/// per-server (NOT the process-global metrics registry, which accumulates
/// across servers in one process).
struct ServerStats {
  std::uint64_t submitted = 0;      ///< Submit calls
  std::uint64_t admitted = 0;       ///< made it into the queue
  std::uint64_t ok = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_load = 0;
  std::uint64_t expired = 0;        ///< at dequeue or completion
  std::uint64_t worker_stalled = 0; ///< failed over from a stuck worker
  std::uint64_t errors = 0;
  std::uint64_t dropped_responses = 0;  ///< fault-injected drops
  std::uint64_t batches = 0;        ///< coalesced batches forwarded
  double batch_size_mean = 0;
  int workers_started = 0;
  int workers_excluded = 0;
  int degrade_level = 0;
  std::size_t queue_max_depth = 0;
  std::size_t queue_capacity = 0;
};

class Server {
 public:
  /// `model` is a training/eval prototxt (Data layer + loss); the server
  /// derives the deploy form (see engine.hpp).
  Server(const proto::NetParameter& model, const ServerOptions& opts);
  ~Server();  ///< Stop()s if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Builds the engine + per-worker replicas (serial, slow) and launches
  /// the worker pool and supervisor. Call once.
  void Start();

  /// Admission control + enqueue. The request's `done` callback is
  /// guaranteed to fire exactly once eventually (possibly synchronously,
  /// with a shed/expired status) — except for responses eaten by the
  /// DROP_RESPONSE fault drill.
  void Submit(RequestPtr req);

  /// Graceful shutdown: closes the queue, lets workers drain every queued
  /// request (forwarding, not discarding), joins them, and completes
  /// anything left (all-workers-stalled case) with Status::kShedLoad.
  /// The join is BOUNDED when hang detection is enabled: a worker stuck in
  /// one forward past `hang_deadline_ms` during shutdown is failed over
  /// (batch completed with kWorkerStalled) and detached, so SIGTERM drain
  /// cannot block forever on a hung thread. Idempotent; also invoked by
  /// the destructor and typically by a SIGTERM handler in the serving
  /// binary.
  void Stop();

  ServerStats stats() const;
  int degrade_level() const;

  /// The live sliding-window view (stats.hpp): windowed qps/percentiles,
  /// tail classification, exemplars. Valid any time after construction.
  StatsSnapshot live_stats() const;
  /// Flushes the stats exporter (final snapshot write; idempotent). Stop()
  /// does this too — this entry point exists for fatal-error/signal paths
  /// that must persist observability output without a full drain
  /// (Observability::Finish parity, tools/flags.hpp).
  void FlushStats();

  /// Measures the pool's sustainable throughput (requests/s): one probe
  /// replica per worker runs `reps` forwards at max_batch CONCURRENTLY and
  /// the contended aggregate rate is returned — on a host with fewer cores
  /// than workers this is far below workers x the uncontended rate, and it
  /// is the honest capacity. The overload drill derives its "3x
  /// sustainable" offered rate from this. Call BEFORE Start().
  double CalibrateSustainableQps(int reps = 3);

  /// The shared weight owner — LoadWeights here before Start() to serve
  /// trained weights.
  Net<float>& master_net();
  index_t sample_size() const;
  index_t output_size() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;  ///< shared with worker threads: a detached
                                ///< (stalled) worker must never outlive its
                                ///< engine state
};

}  // namespace cgdnn::serve
