#include "cgdnn/serve/stats.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "cgdnn/core/buildinfo.hpp"
#include "cgdnn/data/io.hpp"

namespace cgdnn::serve {

namespace {

/// Minimum share of the slow exemplars that must sit on one worker before
/// the window's tail is blamed on that worker rather than on compute in
/// general. 2/3 echoes the imbalance-threshold idiom of the audit tool: a
/// balanced pool spreads its tail roughly evenly.
constexpr double kStragglerConcentration = 2.0 / 3.0;

}  // namespace

StatsExporter::StatsExporter(const StatsOptions& opts)
    : opts_(opts),
      start_ns_(MonotonicNowNs()),
      total_us_(opts.window_s),
      queue_wait_us_(opts.window_s),
      batch_form_us_(opts.window_s),
      compute_us_(opts.window_s),
      ok_(opts.window_s),
      shed_(opts.window_s),
      expired_(opts.window_s),
      stalled_(opts.window_s),
      errors_(opts.window_s) {
  CGDNN_CHECK_GT(opts_.window_s, 0) << "stats window must be positive";
  CGDNN_CHECK_GT(opts_.exemplars, 0) << "need at least one exemplar slot";
  exemplar_slots_.resize(static_cast<std::size_t>(opts_.window_s));
}

StatsExporter::~StatsExporter() { Finish(); }

void StatsExporter::Start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) return;
  const bool has_output = !opts_.snapshot_path.empty() ||
                          !opts_.exposition_path.empty() ||
                          !opts_.history_path.empty();
  if (opts_.period_ms > 0 && has_output) {
    publisher_ = std::thread([this] { PublisherLoop(); });
  }
}

void StatsExporter::Finish() {
  if (finished_.exchange(true, std::memory_order_acq_rel)) return;
  {
    LockGuard lock(publisher_mu_);
    publisher_stop_ = true;
  }
  publisher_cv_.NotifyAll();
  if (publisher_.joinable()) publisher_.join();
  // One final publish: the last window — shutdown-drain completions
  // included — must reach the snapshot/history files even when the period
  // never elapsed (short runs, fatal-error exits).
  Publish();
}

void StatsExporter::RecordCompletion(const Response& r) {
  const std::uint64_t now = MonotonicNowNs();
  switch (r.status) {
    case Status::kOk: break;
    case Status::kShedQueueFull:
    case Status::kShedLoad:
      shed_.Add(1, now);
      return;
    case Status::kExpired:
      expired_.Add(1, now);
      return;
    case Status::kWorkerStalled:
      stalled_.Add(1, now);
      return;
    case Status::kError:
      errors_.Add(1, now);
      return;
  }
  ok_.Add(1, now);
  total_us_.Observe(r.total_us, now);
  queue_wait_us_.Observe(r.queue_wait_us, now);
  batch_form_us_.Observe(r.batch_form_us, now);
  compute_us_.Observe(r.compute_us, now);

  StatsExemplar ex;
  ex.trace_id = r.trace_id;
  ex.worker = r.worker;
  ex.batch_size = r.batch_size;
  ex.total_us = r.total_us;
  ex.queue_wait_us = r.queue_wait_us;
  ex.batch_form_us = r.batch_form_us;
  ex.compute_us = r.compute_us;
  ex.complete_us = r.complete_us;

  const std::uint64_t sec = now / 1'000'000'000ull;
  const std::size_t k = static_cast<std::size_t>(opts_.exemplars);
  LockGuard lock(exemplars_mu_);
  ExemplarSlot& slot = exemplar_slots_[static_cast<std::size_t>(
      sec % static_cast<std::uint64_t>(opts_.window_s))];
  if (slot.sec != sec) {
    slot.sec = sec;
    slot.top.clear();
  }
  if (slot.top.size() < k) {
    slot.top.push_back(ex);
    return;
  }
  auto slowest_min = std::min_element(
      slot.top.begin(), slot.top.end(),
      [](const StatsExemplar& a, const StatsExemplar& b) {
        return a.total_us < b.total_us;
      });
  if (ex.total_us > slowest_min->total_us) *slowest_min = ex;
}

void StatsExporter::RecordBatch(int worker, std::size_t batch_size) {
  if (worker < 0) return;
  const std::uint64_t now = MonotonicNowNs();
  LockGuard lock(workers_mu_);
  while (worker_batches_.size() <= static_cast<std::size_t>(worker)) {
    worker_batches_.push_back(
        std::make_unique<trace::SlidingCounter>(opts_.window_s));
  }
  (void)batch_size;
  worker_batches_[static_cast<std::size_t>(worker)]->Add(1, now);
}

void StatsExporter::SetQueueFill(double fill) {
  queue_fill_.store(fill, std::memory_order_relaxed);
}

void StatsExporter::SetDegradeLevel(int level) {
  degrade_level_.store(level, std::memory_order_relaxed);
}

StatsSnapshot StatsExporter::Snapshot(std::uint64_t now_ns) const {
  StatsSnapshot snap;
  snap.version = version_.load(std::memory_order_relaxed);
  snap.uptime_s =
      now_ns >= start_ns_ ? static_cast<double>(now_ns - start_ns_) / 1e9 : 0;
  snap.window_s = opts_.window_s;

  snap.ok = ok_.Sum(now_ns);
  snap.shed = shed_.Sum(now_ns);
  snap.expired = expired_.Sum(now_ns);
  snap.stalled = stalled_.Sum(now_ns);
  snap.errors = errors_.Sum(now_ns);
  // QPS over the part of the window that has actually elapsed: a 2 s old
  // server with a 60 s window serves at ok/2, not ok/60.
  const double covered =
      std::min(static_cast<double>(opts_.window_s),
               std::max(snap.uptime_s, 1e-3));
  snap.qps = static_cast<double>(snap.ok) / covered;
  const std::uint64_t completions =
      snap.ok + snap.shed + snap.expired + snap.stalled + snap.errors;
  snap.shed_rate = completions > 0 ? static_cast<double>(snap.shed) /
                                         static_cast<double>(completions)
                                   : 0;

  const auto total = total_us_.Read(now_ns);
  snap.p50_us = total.p50;
  snap.p90_us = total.p90;
  snap.p99_us = total.p99;
  snap.queue_wait_p99_us = queue_wait_us_.Read(now_ns).p99;
  snap.batch_form_p99_us = batch_form_us_.Read(now_ns).p99;
  snap.compute_p99_us = compute_us_.Read(now_ns).p99;

  snap.queue_fill = queue_fill_.load(std::memory_order_relaxed);
  snap.degrade_level = degrade_level_.load(std::memory_order_relaxed);
  int active_workers = 0;
  {
    LockGuard lock(workers_mu_);
    snap.worker_batches.reserve(worker_batches_.size());
    for (const auto& counter : worker_batches_) {
      const std::uint64_t n = counter->Sum(now_ns);
      snap.worker_batches.push_back(n);
      if (n > 0) ++active_workers;
    }
  }

  // Exemplars: merge in-window slots, keep the global K slowest.
  {
    const std::uint64_t now_sec = now_ns / 1'000'000'000ull;
    LockGuard lock(exemplars_mu_);
    for (const ExemplarSlot& slot : exemplar_slots_) {
      if (slot.sec == ~0ull) continue;
      if (slot.sec + static_cast<std::uint64_t>(opts_.window_s) <= now_sec) {
        continue;
      }
      snap.slowest.insert(snap.slowest.end(), slot.top.begin(),
                          slot.top.end());
    }
  }
  std::sort(snap.slowest.begin(), snap.slowest.end(),
            [](const StatsExemplar& a, const StatsExemplar& b) {
              return a.total_us > b.total_us;
            });
  if (snap.slowest.size() > static_cast<std::size_t>(opts_.exemplars)) {
    snap.slowest.resize(static_cast<std::size_t>(opts_.exemplars));
  }

  // Tail attribution: blame the dominant stage of the slow exemplars.
  if (snap.ok == 0 || snap.slowest.empty()) {
    snap.p99_class = "idle";
    return snap;
  }
  double fq = 0, fb = 0, fc = 0;
  std::map<int, std::size_t> by_worker;
  for (const StatsExemplar& ex : snap.slowest) {
    if (ex.total_us > 0) {
      fq += ex.queue_wait_us / ex.total_us;
      fb += ex.batch_form_us / ex.total_us;
      fc += ex.compute_us / ex.total_us;
    }
    by_worker[ex.worker] += 1;
  }
  const double n = static_cast<double>(snap.slowest.size());
  fq /= n;
  fb /= n;
  fc /= n;
  std::size_t modal = 0;
  for (const auto& [worker, count] : by_worker) {
    (void)worker;
    modal = std::max(modal, count);
  }
  snap.straggler_frac = static_cast<double>(modal) / n;
  if (fc >= fq && fc >= fb) {
    snap.p99_class = (active_workers >= 2 &&
                      snap.straggler_frac >= kStragglerConcentration)
                         ? "straggler_bound"
                         : "compute_bound";
  } else if (fq >= fb) {
    snap.p99_class = "queue_bound";
  } else {
    snap.p99_class = "batch_deadline_bound";
  }
  return snap;
}

void StatsExporter::WriteSnapshotJson(std::ostream& os,
                                      const StatsSnapshot& snap) {
  const auto saved_prec = os.precision();
  os << std::setprecision(12);
  os << "{\"meta\": ";
  buildinfo::WriteMetaJson(os);
  os << ", \"version\": " << snap.version
     << ", \"uptime_s\": " << snap.uptime_s
     << ", \"window_s\": " << snap.window_s << ", \"window\": {\"qps\": "
     << snap.qps << ", \"ok\": " << snap.ok << ", \"shed\": " << snap.shed
     << ", \"expired\": " << snap.expired << ", \"stalled\": " << snap.stalled
     << ", \"errors\": " << snap.errors
     << ", \"shed_rate\": " << snap.shed_rate
     << ", \"p50_us\": " << snap.p50_us << ", \"p90_us\": " << snap.p90_us
     << ", \"p99_us\": " << snap.p99_us
     << ", \"queue_wait_p99_us\": " << snap.queue_wait_p99_us
     << ", \"batch_form_p99_us\": " << snap.batch_form_p99_us
     << ", \"compute_p99_us\": " << snap.compute_p99_us
     << "}, \"state\": {\"queue_fill\": " << snap.queue_fill
     << ", \"degrade_level\": " << snap.degrade_level
     << ", \"worker_batches\": [";
  for (std::size_t i = 0; i < snap.worker_batches.size(); ++i) {
    os << (i != 0 ? ", " : "") << snap.worker_batches[i];
  }
  os << "]}, \"p99_class\": \"" << snap.p99_class
     << "\", \"straggler_frac\": " << snap.straggler_frac
     << ", \"exemplars\": [";
  for (std::size_t i = 0; i < snap.slowest.size(); ++i) {
    const StatsExemplar& ex = snap.slowest[i];
    os << (i != 0 ? ", " : "") << "{\"trace_id\": " << ex.trace_id
       << ", \"worker\": " << ex.worker
       << ", \"batch_size\": " << ex.batch_size
       << ", \"total_us\": " << ex.total_us
       << ", \"queue_wait_us\": " << ex.queue_wait_us
       << ", \"batch_form_us\": " << ex.batch_form_us
       << ", \"compute_us\": " << ex.compute_us
       << ", \"complete_us\": " << ex.complete_us << "}";
  }
  os << "]}";
  os.precision(saved_prec);
}

void StatsExporter::WriteExposition(std::ostream& os,
                                    const StatsSnapshot& snap) {
  const auto saved_prec = os.precision();
  os << std::setprecision(12);
  os << "# cgdnn serving live stats (window " << snap.window_s
     << "s, version " << snap.version << ")\n";
  os << "cgdnn_serve_snapshot_version " << snap.version << "\n";
  os << "cgdnn_serve_uptime_seconds " << snap.uptime_s << "\n";
  os << "cgdnn_serve_window_qps " << snap.qps << "\n";
  os << "cgdnn_serve_window_requests{status=\"ok\"} " << snap.ok << "\n";
  os << "cgdnn_serve_window_requests{status=\"shed\"} " << snap.shed << "\n";
  os << "cgdnn_serve_window_requests{status=\"expired\"} " << snap.expired
     << "\n";
  os << "cgdnn_serve_window_requests{status=\"stalled\"} " << snap.stalled
     << "\n";
  os << "cgdnn_serve_window_requests{status=\"error\"} " << snap.errors
     << "\n";
  os << "cgdnn_serve_window_shed_rate " << snap.shed_rate << "\n";
  os << "cgdnn_serve_window_latency_us{quantile=\"0.5\"} " << snap.p50_us
     << "\n";
  os << "cgdnn_serve_window_latency_us{quantile=\"0.9\"} " << snap.p90_us
     << "\n";
  os << "cgdnn_serve_window_latency_us{quantile=\"0.99\"} " << snap.p99_us
     << "\n";
  os << "cgdnn_serve_window_stage_p99_us{stage=\"queue_wait\"} "
     << snap.queue_wait_p99_us << "\n";
  os << "cgdnn_serve_window_stage_p99_us{stage=\"batch_form\"} "
     << snap.batch_form_p99_us << "\n";
  os << "cgdnn_serve_window_stage_p99_us{stage=\"compute\"} "
     << snap.compute_p99_us << "\n";
  os << "cgdnn_serve_queue_fill " << snap.queue_fill << "\n";
  os << "cgdnn_serve_degrade_level " << snap.degrade_level << "\n";
  for (std::size_t w = 0; w < snap.worker_batches.size(); ++w) {
    os << "cgdnn_serve_window_worker_batches{worker=\"" << w << "\"} "
       << snap.worker_batches[w] << "\n";
  }
  os << "cgdnn_serve_window_p99_class{class=\"" << snap.p99_class
     << "\"} 1\n";
  os << "cgdnn_serve_window_straggler_frac " << snap.straggler_frac << "\n";
  os.precision(saved_prec);
}

void StatsExporter::Publish() {
  StatsSnapshot snap = Snapshot(MonotonicNowNs());
  snap.version = version_.fetch_add(1, std::memory_order_relaxed) + 1;

  std::ostringstream json;
  WriteSnapshotJson(json, snap);
  json << "\n";
  if (!opts_.snapshot_path.empty()) {
    data::WriteFileAtomic(opts_.snapshot_path, json.str());
  }
  if (!opts_.exposition_path.empty()) {
    std::ostringstream prom;
    WriteExposition(prom, snap);
    data::WriteFileAtomic(opts_.exposition_path, prom.str());
  }
  if (!opts_.history_path.empty()) {
    std::ofstream hist(opts_.history_path, std::ios::app);
    if (hist) hist << json.str();
  }
}

void StatsExporter::PublisherLoop() {
  UniqueLock lock(publisher_mu_);
  while (!publisher_stop_) {
    publisher_cv_.WaitFor(publisher_mu_,
                          std::chrono::milliseconds(opts_.period_ms),
                          [this]() CGDNN_REQUIRES(publisher_mu_) {
                            return publisher_stop_;
                          });
    if (publisher_stop_) break;  // Finish() writes the final snapshot
    // Publish() is EXCLUDES(publisher_mu_): all file I/O happens with the
    // lock dropped, so Finish() is never blocked behind a slow disk.
    lock.Unlock();
    Publish();
    lock.Lock();
  }
}

}  // namespace cgdnn::serve
