// InferenceEngine: the model side of the serving runtime.
//
// The paper's serving split — ONE read-only weight instance, PRIVATE
// activations per executor — maps here as: a master deploy net owns the
// weights, and every worker gets a Worker replica whose nets alias the
// master's parameter blobs via Net::ShareTrainedLayersWith (the replica.hpp
// idiom) while keeping all activation blobs private. Workers never write
// weights, so no synchronisation is needed on the model at all.
//
// Dynamic batching needs forwards at many batch sizes, but nets here have a
// fixed batch. The engine therefore builds BUCKET nets at power-of-two
// batch sizes up to max_batch (1, 2, 4, ...); a K-request batch runs on the
// smallest bucket >= K with the unused slots zero-padded. Because the
// packed GEMM computes output rows independently (PR-2), sample i's output
// bits do not depend on what occupies the other slots — this is what makes
// batched serving bit-identical to single-sample forwards, and the serve
// unit test plus `cgdnn_audit --serve` enforce it.
//
// Deploy transformation (MakeDeployParam): the training prototxt's Data
// layer becomes a MemoryData layer fed from a staging buffer, the
// SoftmaxWithLoss head becomes a plain Softmax producing "prob", and
// label-consuming layers (Accuracy) are dropped.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cgdnn/layers/data_layers.hpp"
#include "cgdnn/net/net.hpp"
#include "cgdnn/proto/params.hpp"

namespace cgdnn::serve {

/// Rewrites a training/eval prototxt into serving form at `batch_size`:
/// Data -> MemoryData (shape `channels` x `height` x `width`),
/// SoftmaxWithLoss -> Softmax with top "prob", Accuracy and other
/// label-consuming or TRAIN-only layers dropped.
proto::NetParameter MakeDeployParam(const proto::NetParameter& param,
                                    index_t batch_size, index_t channels,
                                    index_t height, index_t width);

class InferenceEngine {
 public:
  struct Options {
    index_t max_batch = 8;
    /// Run the PR-7 planner over every bucket net (kernel selection, fusion,
    /// activation arenas) at the serving batch sizes.
    bool planned = true;
    bool plan_cache = true;       ///< consult/populate the on-disk plan cache
    int plan_threads = 1;         ///< thread count the plans target
    std::string plan_cache_dir;   ///< override; empty = default resolution
  };

  /// Builds the deploy form of `param` and the master net (owner of the one
  /// shared weight instance). Weight values come from the param's fillers;
  /// call LoadWeights on master() to serve trained weights. NOT thread-safe
  /// (net construction draws from the global RNG).
  InferenceEngine(const proto::NetParameter& param, const Options& opts);

  /// One worker's private model state: bucket nets with private activations
  /// aliasing the master's weights.
  class Worker {
   public:
    /// Forwards `samples` (each `sample_size` floats) through the smallest
    /// bucket net that fits, zero-padding unused slots, and appends one
    /// output vector (`output_size` floats) per sample to `outputs`.
    void RunBatch(const std::vector<const float*>& samples,
                  std::vector<std::vector<float>>* outputs);

    index_t sample_size() const { return sample_size_; }
    index_t output_size() const { return output_size_; }

   private:
    friend class InferenceEngine;
    Worker() = default;

    struct Bucket {
      index_t batch = 0;
      std::unique_ptr<Net<float>> net;
      MemoryDataLayer<float>* input = nullptr;  // owned by net
      Blob<float>* prob = nullptr;              // owned by net
      std::vector<float> staging;               // batch * sample_size floats
    };

    Bucket& BucketFor(std::size_t k);

    std::vector<Bucket> buckets_;
    index_t sample_size_ = 0;
    index_t output_size_ = 0;
  };

  /// Builds a worker replica. NOT thread-safe (construct all workers
  /// serially before starting the pool); the returned worker's RunBatch is
  /// safe to call from that worker's thread only.
  std::unique_ptr<Worker> MakeWorker();

  Net<float>& master() { return *master_; }
  const proto::NetParameter& deploy_param(index_t bucket_batch) const;

  index_t sample_size() const { return sample_size_; }
  index_t output_size() const { return output_size_; }
  index_t max_batch() const { return opts_.max_batch; }
  const std::vector<index_t>& bucket_batches() const { return bucket_batches_; }

 private:
  void MaybePlan(Net<float>* net) const;

  Options opts_;
  std::vector<index_t> bucket_batches_;          // 1, 2, 4, ..., max_batch
  std::vector<proto::NetParameter> deploy_params_;  // one per bucket
  std::unique_ptr<Net<float>> master_;           // bucket-1 net: owns weights
  index_t sample_size_ = 0;
  index_t output_size_ = 0;
};

}  // namespace cgdnn::serve
