// Live serving stats: sliding-window aggregation + snapshot publishing.
//
// Everything else the runtime records (Chrome traces, the metrics
// registry, the audit JSON) is end-of-run output; an overloaded or
// degrading server needs inspection WHILE it runs. The StatsExporter is
// the bridge: every completion lands in sliding-window histograms/counters
// (trace/metrics.hpp), and a publisher thread atomically replaces a
// versioned JSON snapshot file (plus a Prometheus-style text exposition)
// every period — readers always see a complete, parseable file
// (data::WriteFileAtomic), never a torn write.
//
// Tail attribution: the exporter keeps the K slowest OK requests of the
// window (exemplars, with their full stage breakdown and trace ids) and
// classifies the window's p99 by the exemplars' dominant stage:
//
//   queue_bound           queue_wait dominates — admission outruns drain
//   batch_deadline_bound  batch_form dominates — coalescing waits, not work
//   compute_bound         compute dominates, spread across workers
//   straggler_bound       compute dominates AND the slow requests
//                         concentrate on one worker (the Das et al.
//                         synchronous-straggler effect, per-request)
//   idle                  no OK completion in the window
//
// docs/observability.md documents the snapshot schema and exposition
// names; tools/cgdnn_stats pretty-prints/follows the snapshot file.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "cgdnn/core/thread_annotations.hpp"
#include "cgdnn/serve/request.hpp"
#include "cgdnn/trace/metrics.hpp"

namespace cgdnn::serve {

struct StatsOptions {
  std::string snapshot_path;    ///< versioned JSON snapshot (atomic replace)
  std::string exposition_path;  ///< Prometheus-style text exposition
  std::string history_path;     ///< JSONL: every published snapshot appended
  std::uint64_t period_ms = 250;  ///< publish cadence
  int window_s = 10;              ///< sliding-window width
  int exemplars = 5;              ///< K slowest OK requests kept per window
};

/// One slow-request exemplar: enough to find the request in the Chrome
/// trace (trace_id == flow id) and see where its time went.
struct StatsExemplar {
  std::uint64_t trace_id = 0;
  int worker = -1;
  int batch_size = 0;
  double total_us = 0;
  double queue_wait_us = 0;
  double batch_form_us = 0;
  double compute_us = 0;
  double complete_us = 0;
};

/// Point-in-time view over the last `window_s` seconds.
struct StatsSnapshot {
  std::uint64_t version = 0;  ///< bumps on every publish; never decreases
  double uptime_s = 0;        ///< exporter construction -> snapshot
  int window_s = 0;
  // Windowed completion counts by outcome + derived rates. `qps` counts OK
  // completions per second of covered window (min(window_s, uptime)).
  std::uint64_t ok = 0, shed = 0, expired = 0, stalled = 0, errors = 0;
  double qps = 0;
  double shed_rate = 0;  ///< shed / all completions in window
  // Windowed latency quantiles (OK requests; SlidingHistogram error
  // <= ~2%, see metrics.hpp).
  double p50_us = 0, p90_us = 0, p99_us = 0;
  double queue_wait_p99_us = 0, batch_form_p99_us = 0, compute_p99_us = 0;
  // Instantaneous server state (fed by the supervisor tick).
  double queue_fill = 0;
  int degrade_level = 0;
  std::vector<std::uint64_t> worker_batches;  ///< per-worker, in window
  // Tail attribution.
  std::string p99_class = "idle";
  double straggler_frac = 0;  ///< modal-worker share of the exemplars
  std::vector<StatsExemplar> slowest;  ///< descending total_us, size <= K
};

class StatsExporter {
 public:
  explicit StatsExporter(const StatsOptions& opts);
  ~StatsExporter();  ///< Finish()

  StatsExporter(const StatsExporter&) = delete;
  StatsExporter& operator=(const StatsExporter&) = delete;

  /// Launches the publisher thread when any output path is configured.
  /// Recording works without Start (in-memory Snapshot only).
  void Start();
  /// Stops the publisher and writes one final snapshot (so the last window
  /// — including shutdown-drain completions — is never lost). Idempotent;
  /// safe from signal-drain and fatal-error paths (Observability::Finish
  /// parity, see tools/flags.hpp).
  void Finish();

  /// Books one completion. Any thread; called for every completion path
  /// via Server::Impl::Count.
  void RecordCompletion(const Response& r);
  /// Books one forwarded batch on `worker`. Worker threads.
  void RecordBatch(int worker, std::size_t batch_size);
  /// Supervisor-fed instantaneous state.
  void SetQueueFill(double fill);
  void SetDegradeLevel(int level);

  /// Builds the current view (does not bump the version or touch files).
  StatsSnapshot Snapshot(std::uint64_t now_ns) const;

  /// Single-line JSON form of a snapshot (the snapshot file's and history
  /// line's format; schema in docs/observability.md).
  static void WriteSnapshotJson(std::ostream& os, const StatsSnapshot& snap);
  /// Prometheus-style text exposition of a snapshot.
  static void WriteExposition(std::ostream& os, const StatsSnapshot& snap);

  const StatsOptions& options() const { return opts_; }

 private:
  void PublisherLoop() CGDNN_EXCLUDES(publisher_mu_);
  // Publishing does file I/O (WriteFileAtomic + history append); the
  // EXCLUDES annotation is the compile-time form of the "no blocking work
  // under a lock" rule — the publisher must drop its mutex first.
  void Publish() CGDNN_EXCLUDES(publisher_mu_);

  const StatsOptions opts_;
  const std::uint64_t start_ns_;

  trace::SlidingHistogram total_us_;
  trace::SlidingHistogram queue_wait_us_;
  trace::SlidingHistogram batch_form_us_;
  trace::SlidingHistogram compute_us_;
  trace::SlidingCounter ok_, shed_, expired_, stalled_, errors_;

  std::atomic<double> queue_fill_{0.0};
  std::atomic<int> degrade_level_{0};

  // Per-worker windowed batch counts; grown on first sight of a worker id.
  mutable Mutex workers_mu_;
  std::vector<std::unique_ptr<trace::SlidingCounter>> worker_batches_
      CGDNN_GUARDED_BY(workers_mu_);

  // Exemplars: per-second ring slots, each holding the K slowest OK
  // requests of that second; Snapshot merges in-window slots and keeps the
  // global K. Bounded memory, exact top-K over the window.
  struct ExemplarSlot {
    std::uint64_t sec = ~0ull;
    std::vector<StatsExemplar> top;  ///< unordered, size <= K
  };
  mutable Mutex exemplars_mu_;
  std::vector<ExemplarSlot> exemplar_slots_ CGDNN_GUARDED_BY(exemplars_mu_);

  std::atomic<std::uint64_t> version_{0};
  std::thread publisher_;
  Mutex publisher_mu_;
  CondVar publisher_cv_;
  bool publisher_stop_ CGDNN_GUARDED_BY(publisher_mu_) = false;
  std::atomic<bool> started_{false};
  std::atomic<bool> finished_{false};
};

}  // namespace cgdnn::serve
