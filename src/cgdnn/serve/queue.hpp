// Bounded, lock-aware request queue with deadline-driven batch dequeue.
//
// Overload safety comes from two properties:
//  * the queue is BOUNDED: Push never blocks and never grows the queue past
//    its capacity — a full queue is an explicit rejection (the admission
//    controller turns it into Status::kShedQueueFull), so sustained
//    overload shows up as shed counters, not as unbounded memory;
//  * dequeue is DEADLINE-DRIVEN: PopBatch coalesces single-sample requests
//    up to `max_batch` or until `fill_deadline_us` elapses after the first
//    request arrives — whichever comes first — and drops already-expired
//    requests before they waste a forward.
//
// "Lock-aware" concretely: the queue measures its own mutex acquisition
// wait on every producer/consumer entry and publishes it as the
// serve.queue.lock_wait_us histogram, alongside depth (gauge + histogram
// sampled at every push). A contended or fault-stalled queue is therefore
// visible in the metrics registry, not just in end-to-end latency.
//
// Fault injection: CGDNN_SERVE_FAULT_STALL_QUEUE=<ms> makes every Push hold
// the queue mutex for the given duration — the drill for "queue stalls must
// surface as lock-wait/latency metrics and shed counters, not hangs".
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cgdnn/core/thread_annotations.hpp"
#include "cgdnn/serve/request.hpp"

namespace cgdnn::trace {
class Gauge;
class Histogram;
}  // namespace cgdnn::trace

namespace cgdnn::serve {

/// Why a push was refused (mapped to a Status by the admission controller).
enum class PushResult {
  kAccepted,
  kFull,      ///< at capacity
  kClosed,    ///< queue shut down (server stopping)
};

class BoundedRequestQueue {
 public:
  explicit BoundedRequestQueue(std::size_t capacity);

  /// Non-blocking bounded push. Never grows the queue past capacity.
  PushResult Push(RequestPtr req);

  /// Blocks until at least one request is available (or the queue closes),
  /// then coalesces up to `max_batch` requests, waiting at most
  /// `fill_deadline_us` after the FIRST dequeued request for more to
  /// arrive. Expired requests are completed with Status::kExpired here and
  /// never occupy a batch slot. Returns the coalesced batch. An EMPTY
  /// return means either (a) the queue closed and drained, or (b) every
  /// request popped this round had already expired (each was completed
  /// with kExpired above) — callers must distinguish via closed()/depth()
  /// rather than treating empty as shutdown.
  std::vector<RequestPtr> PopBatch(std::size_t max_batch,
                                   std::uint64_t fill_deadline_us);

  /// Closes the queue: subsequent Push returns kClosed, blocked PopBatch
  /// calls wake. Queued requests remain poppable (drain).
  void Close();
  bool closed() const;

  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }
  /// High-water mark of depth over the queue's lifetime (bounded-queue
  /// assertion in the overload drill).
  std::size_t max_depth() const;

 private:
  void RecordLockWait(std::uint64_t wait_ns);

  const std::size_t capacity_;
  const std::uint64_t stall_push_ms_;  // CGDNN_SERVE_FAULT_STALL_QUEUE
  mutable Mutex mu_;
  CondVar not_empty_;
  std::deque<RequestPtr> queue_ CGDNN_GUARDED_BY(mu_);
  bool closed_ CGDNN_GUARDED_BY(mu_) = false;
  std::size_t max_depth_ CGDNN_GUARDED_BY(mu_) = 0;

  trace::Gauge* depth_gauge_;
  trace::Histogram* depth_hist_;
  trace::Histogram* lock_wait_hist_;
};

}  // namespace cgdnn::serve
