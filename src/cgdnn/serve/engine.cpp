#include "cgdnn/serve/engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "cgdnn/plan/planner.hpp"

namespace cgdnn::serve {

proto::NetParameter MakeDeployParam(const proto::NetParameter& param,
                                    index_t batch_size, index_t channels,
                                    index_t height, index_t width) {
  CGDNN_CHECK_GT(batch_size, 0) << "deploy batch must be positive";
  proto::NetParameter deploy;
  deploy.name = param.name + "_deploy_b" + std::to_string(batch_size);
  for (const auto& lp : param.layer) {
    if (lp.include_phase.has_value() && *lp.include_phase == Phase::kTrain) {
      continue;  // TRAIN-only layer
    }
    if (lp.type == "Accuracy") continue;  // needs labels; meaningless here
    if (lp.type == "Data" || lp.type == "DummyData" ||
        lp.type == "MemoryData") {
      CGDNN_CHECK(!lp.top.empty()) << "input layer without tops";
      proto::LayerParameter input;
      input.name = lp.name;
      input.type = "MemoryData";
      input.top = {lp.top[0]};  // drop the label top: serving has no labels
      input.memory_data_param.batch_size = batch_size;
      input.memory_data_param.channels = channels;
      input.memory_data_param.height = height;
      input.memory_data_param.width = width;
      deploy.layer.push_back(std::move(input));
      continue;
    }
    if (lp.type == "SoftmaxWithLoss") {
      CGDNN_CHECK(!lp.bottom.empty()) << "loss layer without bottoms";
      proto::LayerParameter prob;
      prob.name = "prob";
      prob.type = "Softmax";
      prob.bottom = {lp.bottom[0]};  // drop the label bottom
      prob.top = {"prob"};
      deploy.layer.push_back(std::move(prob));
      continue;
    }
    // Any other label consumer has no serving meaning either.
    const bool uses_label =
        std::find(lp.bottom.begin(), lp.bottom.end(), "label") !=
        lp.bottom.end();
    if (uses_label) continue;
    auto copy = lp;
    copy.include_phase.reset();
    deploy.layer.push_back(std::move(copy));
  }
  return deploy;
}

namespace {

/// Input geometry of the model, discovered by constructing a throwaway
/// probe net from the original prototxt and reading the data blob's shape.
struct InputShape {
  index_t channels = 0, height = 0, width = 0;
};

InputShape ProbeInputShape(const proto::NetParameter& param) {
  Net<float> probe(param, Phase::kTest);
  CGDNN_CHECK(probe.has_blob("data"))
      << "serving needs a net with a 'data' input blob";
  const auto& blob = *probe.blob_by_name("data");
  InputShape s;
  s.channels = blob.channels();
  s.height = blob.height();
  s.width = blob.width();
  return s;
}

}  // namespace

InferenceEngine::InferenceEngine(const proto::NetParameter& param,
                                 const Options& opts)
    : opts_(opts) {
  CGDNN_CHECK_GT(opts_.max_batch, 0) << "max_batch must be positive";
  const InputShape in = ProbeInputShape(param);
  sample_size_ = in.channels * in.height * in.width;

  // Power-of-two buckets, plus max_batch itself when it is not a power of
  // two: a K-request batch pads to the next bucket, so padding waste is at
  // most 2x and the number of planned nets stays logarithmic.
  for (index_t b = 1; b < opts_.max_batch; b *= 2) bucket_batches_.push_back(b);
  bucket_batches_.push_back(opts_.max_batch);

  for (index_t b : bucket_batches_) {
    deploy_params_.push_back(
        MakeDeployParam(param, b, in.channels, in.height, in.width));
  }

  // The master is the bucket-1 deploy net; it owns the single shared weight
  // instance every worker aliases.
  master_ = std::make_unique<Net<float>>(deploy_params_[0], Phase::kTest);
  CGDNN_CHECK(master_->has_blob("prob"))
      << "deploy transformation must yield a 'prob' output";
  output_size_ = master_->blob_by_name("prob")->count(1);
  MaybePlan(master_.get());
}

void InferenceEngine::MaybePlan(Net<float>* net) const {
  if (!opts_.planned) return;
  plan::PlannerOptions popts;
  popts.threads = opts_.plan_threads;
  popts.use_cache = opts_.plan_cache;
  popts.cache_dir = opts_.plan_cache_dir;
  // No measurement probes at serve startup: the cost model alone keeps
  // construction fast and deterministic across workers.
  popts.measure = false;
  plan::PlanAndApply(net, popts);
}

const proto::NetParameter& InferenceEngine::deploy_param(
    index_t bucket_batch) const {
  for (std::size_t i = 0; i < bucket_batches_.size(); ++i) {
    if (bucket_batches_[i] == bucket_batch) return deploy_params_[i];
  }
  CGDNN_CHECK(false) << "no deploy bucket of batch " << bucket_batch;
  std::abort();  // unreachable: CGDNN_CHECK(false) throws
}

std::unique_ptr<InferenceEngine::Worker> InferenceEngine::MakeWorker() {
  auto worker = std::unique_ptr<Worker>(new Worker());
  worker->sample_size_ = sample_size_;
  worker->output_size_ = output_size_;
  for (std::size_t i = 0; i < bucket_batches_.size(); ++i) {
    Worker::Bucket bucket;
    bucket.batch = bucket_batches_[i];
    bucket.net = std::make_unique<Net<float>>(deploy_params_[i], Phase::kTest);
    // Alias the master's weights BEFORE planning: the plan only rebinds
    // activation storage, so the aliased parameter blobs survive it.
    bucket.net->ShareTrainedLayersWith(*master_);
    MaybePlan(bucket.net.get());
    for (const auto& layer : bucket.net->layers()) {
      if (auto* mem = dynamic_cast<MemoryDataLayer<float>*>(layer.get())) {
        bucket.input = mem;
        break;
      }
    }
    CGDNN_CHECK(bucket.input != nullptr) << "deploy net lost its input layer";
    bucket.prob = bucket.net->blob_by_name("prob").get();
    bucket.staging.assign(
        static_cast<std::size_t>(bucket.batch * sample_size_), 0.0f);
    worker->buckets_.push_back(std::move(bucket));
  }
  return worker;
}

InferenceEngine::Worker::Bucket& InferenceEngine::Worker::BucketFor(
    std::size_t k) {
  for (auto& bucket : buckets_) {
    if (static_cast<std::size_t>(bucket.batch) >= k) return bucket;
  }
  CGDNN_CHECK(false) << "batch of " << k << " exceeds max_batch "
                     << buckets_.back().batch;
  std::abort();  // unreachable: CGDNN_CHECK(false) throws
}

void InferenceEngine::Worker::RunBatch(
    const std::vector<const float*>& samples,
    std::vector<std::vector<float>>* outputs) {
  CGDNN_CHECK(!samples.empty()) << "RunBatch needs at least one sample";
  Bucket& bucket = BucketFor(samples.size());
  const std::size_t dim = static_cast<std::size_t>(sample_size_);

  // Stage: K samples, then zeros in the padded slots. Zeroing is not just
  // hygiene — deterministic padding makes the whole forward reproducible,
  // which the bit-identity test relies on when comparing bucket sizes.
  for (std::size_t i = 0; i < samples.size(); ++i) {
    std::memcpy(bucket.staging.data() + i * dim, samples[i],
                dim * sizeof(float));
  }
  std::memset(bucket.staging.data() + samples.size() * dim, 0,
              (bucket.staging.size() - samples.size() * dim) * sizeof(float));

  bucket.input->Reset(bucket.staging.data(), nullptr, bucket.batch);
  bucket.net->Forward();

  const float* prob = bucket.prob->cpu_data();
  const std::size_t odim = static_cast<std::size_t>(output_size_);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    outputs->emplace_back(prob + i * odim, prob + (i + 1) * odim);
  }
}

}  // namespace cgdnn::serve
