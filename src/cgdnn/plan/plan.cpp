#include "cgdnn/plan/plan.hpp"

#include <sstream>

#include "cgdnn/plan/json_lite.hpp"

namespace cgdnn::plan {

std::string ExecutionPlan::ToJson() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"net_signature\": \"" << JsonEscape(net_signature) << "\",\n";
  os << "  \"batch\": " << batch << ",\n";
  os << "  \"threads\": " << threads << ",\n";
  os << "  \"git_sha\": \"" << JsonEscape(git_sha) << "\",\n";
  os << "  \"gflops\": " << gflops << ",\n";
  os << "  \"mem_gbps\": " << mem_gbps << ",\n";
  os << "  \"col_slot_bytes\": " << col_slot_bytes << ",\n";
  os << "  \"conv_decisions\": [";
  for (std::size_t i = 0; i < conv_decisions.size(); ++i) {
    const auto& d = conv_decisions[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"layer\": \"" << JsonEscape(d.layer) << "\", "
       << "\"forward_direct\": " << (d.forward_direct ? "true" : "false")
       << ", \"backward_weights_direct\": "
       << (d.backward_weights_direct ? "true" : "false")
       << ", \"im2col_us\": " << d.im2col_us
       << ", \"direct_us\": " << d.direct_us
       << ", \"measured_im2col_us\": " << d.measured_im2col_us
       << ", \"measured_direct_us\": " << d.measured_direct_us << "}";
  }
  os << "],\n";
  os << "  \"fusion_groups\": [";
  for (std::size_t i = 0; i < fusion_groups.size(); ++i) {
    const auto& g = fusion_groups[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"producer\": \"" << JsonEscape(g.producer)
       << "\", \"consumers\": [";
    for (std::size_t j = 0; j < g.consumers.size(); ++j) {
      os << (j ? ", " : "") << "\"" << JsonEscape(g.consumers[j]) << "\"";
    }
    os << "]}";
  }
  os << "],\n";
  os << "  \"arena_total_bytes\": " << arena.total_bytes << ",\n";
  os << "  \"arena_per_plane_bytes\": " << arena.per_plane_bytes << ",\n";
  os << "  \"intervals\": [";
  for (std::size_t i = 0; i < arena.intervals.size(); ++i) {
    const auto& iv = arena.intervals[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"name\": \"" << JsonEscape(iv.name) << "\", "
       << "\"kind\": " << static_cast<int>(iv.kind)
       << ", \"blob_id\": " << iv.blob_id << ", \"start\": " << iv.start
       << ", \"end\": " << iv.end << ", \"bytes\": " << iv.bytes
       << ", \"offset\": " << iv.offset
       << ", \"preserved\": " << (iv.preserved ? "true" : "false") << "}";
  }
  os << "]\n";
  os << "}\n";
  return os.str();
}

bool ExecutionPlan::FromJson(std::string_view text, ExecutionPlan* out) {
  JsonValue root;
  if (!JsonValue::Parse(text, &root) || !root.is_object()) return false;
  ExecutionPlan p;
  const JsonValue* sig = root.Find("net_signature");
  const JsonValue* sha = root.Find("git_sha");
  if (sig == nullptr || sha == nullptr) return false;
  p.net_signature = sig->AsString();
  p.git_sha = sha->AsString();
  p.batch = root.GetInt("batch", -1);
  p.threads = static_cast<int>(root.GetInt("threads", -1));
  if (p.batch < 0 || p.threads < 0) return false;
  p.gflops = root.GetNumber("gflops");
  p.mem_gbps = root.GetNumber("mem_gbps");
  p.col_slot_bytes = root.GetInt("col_slot_bytes");

  if (const JsonValue* arr = root.Find("conv_decisions");
      arr != nullptr && arr->is_array()) {
    for (const JsonValue& e : arr->array()) {
      if (!e.is_object()) return false;
      ConvDecision d;
      d.layer = e.GetString("layer");
      if (d.layer.empty()) return false;
      d.forward_direct = e.GetBool("forward_direct");
      d.backward_weights_direct = e.GetBool("backward_weights_direct");
      d.im2col_us = e.GetNumber("im2col_us");
      d.direct_us = e.GetNumber("direct_us");
      d.measured_im2col_us = e.GetNumber("measured_im2col_us", -1);
      d.measured_direct_us = e.GetNumber("measured_direct_us", -1);
      p.conv_decisions.push_back(std::move(d));
    }
  }
  if (const JsonValue* arr = root.Find("fusion_groups");
      arr != nullptr && arr->is_array()) {
    for (const JsonValue& e : arr->array()) {
      if (!e.is_object()) return false;
      FusionGroup g;
      g.producer = e.GetString("producer");
      if (g.producer.empty()) return false;
      const JsonValue* cons = e.Find("consumers");
      if (cons == nullptr || !cons->is_array()) return false;
      for (const JsonValue& c : cons->array()) g.consumers.push_back(c.AsString());
      p.fusion_groups.push_back(std::move(g));
    }
  }
  p.arena.total_bytes = root.GetInt("arena_total_bytes");
  p.arena.per_plane_bytes = root.GetInt("arena_per_plane_bytes");
  if (const JsonValue* arr = root.Find("intervals");
      arr != nullptr && arr->is_array()) {
    for (const JsonValue& e : arr->array()) {
      if (!e.is_object()) return false;
      LifetimeInterval iv;
      iv.name = e.GetString("name");
      const index_t kind = e.GetInt("kind", -1);
      if (iv.name.empty() || kind < 0 || kind > 2) return false;
      iv.kind = static_cast<SlotKind>(kind);
      iv.blob_id = e.GetInt("blob_id", -1);
      iv.start = e.GetInt("start");
      iv.end = e.GetInt("end");
      iv.bytes = e.GetInt("bytes", -1);
      iv.offset = e.GetInt("offset", -1);
      iv.preserved = e.GetBool("preserved");
      if (iv.bytes < 0 || iv.offset < 0 || iv.end < iv.start) return false;
      p.arena.intervals.push_back(std::move(iv));
    }
  }
  *out = std::move(p);
  return true;
}

}  // namespace cgdnn::plan
