// Analytic + measured cost model for per-shape conv kernel selection.
//
// The planner must decide, per convolution shape, whether the materialized
// im2col+GEMM path or the direct (implicit-im2col) path is faster. Both are
// bit-identical (blas/direct_conv.hpp), so this is purely a performance
// choice. The first cut is analytic: a two-roof estimate
//
//   us = max(flops / compute_roof, bytes / bandwidth_roof)
//
// seeded from the measured machine ceilings of perfctr::MeasureMachinePeak
// (the same probes the audit tool's roofline uses, so "peak" here means
// achievable-by-our-kernels, not a spec sheet). The analytic model only has
// to rank the two strategies, not predict wall time — but ranking from a
// two-parameter model is fragile near the crossover, so the planner refines
// the decision by actually timing both kernels on dummy buffers whenever the
// analytic margin is thin (both kernels are value-independent, so timing
// synthetic data is faithful).
#pragma once

#include "cgdnn/blas/direct_conv.hpp"
#include "cgdnn/perfctr/roofline.hpp"

namespace cgdnn::plan {

/// Analytic and (optionally) measured per-sample costs of one conv shape.
struct ConvCost {
  double im2col_us = 0;            ///< analytic estimate, im2col+GEMM
  double direct_us = 0;            ///< analytic estimate, direct
  double measured_im2col_us = -1;  ///< wall time; < 0 when not measured
  double measured_direct_us = -1;
};

/// FLOPs of one sample's forward conv (multiply+add counted separately).
double ConvForwardFlops(const blas::ConvGeom& g, index_t num_output);

/// Analytic per-sample forward cost in microseconds for one strategy.
/// `dtype_bytes` is sizeof the element type (4 or 8).
double AnalyticConvForwardUs(const blas::ConvGeom& g, index_t num_output,
                             bool direct, int dtype_bytes,
                             const perfctr::MachinePeak& peak);

/// Wall-clock per-sample forward time of one strategy on synthetic buffers
/// (min over `reps` runs). Allocates its own scratch; thread-safe.
template <typename Dtype>
double MeasureConvForwardUs(const blas::ConvGeom& g, index_t num_output,
                            bool direct, int reps = 3);

/// Full decision for one shape: analytic estimates always, measured
/// refinement when `measure` is set or the analytic margin is below 30%.
/// Returns true when the direct strategy should be used.
template <typename Dtype>
bool ChooseDirectForward(const blas::ConvGeom& g, index_t num_output,
                         const perfctr::MachinePeak& peak, bool measure,
                         ConvCost* cost);

}  // namespace cgdnn::plan
