// The planning pass: builds an ExecutionPlan for one (net, batch, threads)
// and applies it to a freshly constructed net.
//
// BuildPlan runs once per configuration (plan_cache.hpp memoizes it across
// processes): probe the machine roofs, run the cost model over every conv
// shape, discover legal fusion chains, and color the activation lifetime
// intervals into an arena layout. ApplyPlan then rewires a net in place:
// conv strategy setters, producer epilogues + forward-skip flags, and
// SyncedMemory rebinding of every planned plane into the arena buffer. The
// plan's owned state (the arena storage, the epilogue objects) is attached
// to the net via Net::AttachPlanState so it lives exactly as long as the
// net does.
//
// Everything a plan changes is bit-identity-preserving by construction
// (direct kernels share the GEMM micro-kernels, fusion replicates the layer
// formulas, the arena only moves storage); the planned thread-sweep tests
// and `cgdnn_plan --validate` enforce it end to end.
#pragma once

#include <memory>
#include <string>

#include "cgdnn/net/net.hpp"
#include "cgdnn/plan/plan.hpp"

namespace cgdnn::plan {

struct PlannerOptions {
  int threads = 1;          ///< thread count the plan targets (cache key)
  bool enable_direct = true;
  bool enable_fusion = true;
  bool enable_arena = true;
  bool use_cache = true;    ///< consult/populate the on-disk plan cache
  bool measure = true;      ///< refine conv choices with measured timings
  std::string cache_dir;    ///< override; empty = PlanCacheDir() resolution
};

struct BuildResult {
  ExecutionPlan plan;
  bool cache_hit = false;   ///< plan came from disk; no probes were run
  double build_us = 0;      ///< wall time of BuildPlan itself
};

/// Stable identity of a net's architecture for the plan-cache key: layer
/// names/types/shapes and phase. Two nets with equal signatures make the
/// same planning decisions.
template <typename Dtype>
std::string NetSignature(const Net<Dtype>& net);

/// Minimum plane size worth arena management; smaller blobs stay on their
/// private storage (rebinding overhead outweighs the savings).
constexpr index_t kMinArenaPlaneBytes = 4096;

template <typename Dtype>
BuildResult BuildPlan(const Net<Dtype>& net, const PlannerOptions& opts);

/// Applies `plan` to `net` (strategies, fusion, arena binding) and attaches
/// the plan's owned state. Also publishes the decision summary as metrics
/// gauges (plan.*) and one "plan"/"apply" trace span with the same numbers.
/// Call on a freshly constructed net, before any Forward.
template <typename Dtype>
void ApplyPlan(Net<Dtype>* net, const ExecutionPlan& plan);

/// Convenience: BuildPlan + ApplyPlan with the same options.
template <typename Dtype>
BuildResult PlanAndApply(Net<Dtype>* net, const PlannerOptions& opts);

}  // namespace cgdnn::plan
