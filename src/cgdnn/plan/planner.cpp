#include "cgdnn/plan/planner.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "cgdnn/core/buildinfo.hpp"
#include "cgdnn/layers/conv_layer.hpp"
#include "cgdnn/plan/cost_model.hpp"
#include "cgdnn/plan/plan_cache.hpp"
#include "cgdnn/profile/timer.hpp"
#include "cgdnn/trace/metrics.hpp"
#include "cgdnn/trace/trace.hpp"

namespace cgdnn::plan {

namespace {

/// Consumer types allowed in a fused epilogue chain. Dropout is stateful
/// (counter-driven masks), LRN/Pooling are cross-element — never fusable.
bool FusableConsumerType(const std::string& type) {
  return type == "ReLU" || type == "Sigmoid" || type == "TanH" ||
         type == "Scale" || type == "Bias";
}

/// Layer types whose tops carry externally produced batches; never arena'd.
bool IsDataType(const std::string& type) {
  return type == "Data" || type == "DummyData" || type == "MemoryData";
}

/// Layer types whose tops alias their bottom's storage via ShareData —
/// rebinding either side would split the alias, so both stay private.
bool IsSharingType(const std::string& type) {
  return type == "Split" || type == "Flatten" || type == "Reshape";
}

}  // namespace

template <typename Dtype>
std::string NetSignature(const Net<Dtype>& net) {
  std::ostringstream os;
  os << net.name() << "|"
     << (net.phase() == Phase::kTrain ? "train" : "test") << "|"
     << sizeof(Dtype);
  const auto& layers = net.layers();
  for (std::size_t li = 0; li < layers.size(); ++li) {
    os << "|" << net.layer_names()[li] << ":" << layers[li]->type();
    for (const std::size_t ti : net.top_id_vecs()[li]) {
      os << ":";
      const auto& shape = net.blobs()[ti]->shape();
      for (std::size_t a = 0; a < shape.size(); ++a) {
        os << (a ? "x" : "") << shape[a];
      }
    }
  }
  return os.str();
}

namespace {

template <typename Dtype>
void PlanConvStrategies(const Net<Dtype>& net, const PlannerOptions& opts,
                        const perfctr::MachinePeak& peak,
                        ExecutionPlan* plan) {
  const auto& layers = net.layers();
  for (std::size_t li = 0; li < layers.size(); ++li) {
    auto* conv = dynamic_cast<ConvolutionLayer<Dtype>*>(layers[li].get());
    if (conv == nullptr || !conv->DirectSupported()) continue;
    ConvDecision d;
    d.layer = net.layer_names()[li];
    ConvCost cost;
    const bool direct = ChooseDirectForward<Dtype>(
        conv->geom(), conv->num_output(), peak, opts.measure, &cost);
    d.im2col_us = cost.im2col_us;
    d.direct_us = cost.direct_us;
    d.measured_im2col_us = cost.measured_im2col_us;
    d.measured_direct_us = cost.measured_direct_us;
    d.forward_direct = direct;
    // The backward-weights kernel gathers the same columns against the same
    // GEMM loop, so the forward decision transfers (backward-bottom always
    // stays materialized: it WRITES the col matrix).
    d.backward_weights_direct = direct;
    plan->conv_decisions.push_back(std::move(d));
  }
}

template <typename Dtype>
void PlanFusion(const Net<Dtype>& net, ExecutionPlan* plan) {
  const auto& layers = net.layers();
  const auto& tops = net.top_id_vecs();
  const auto& bottoms = net.bottom_id_vecs();
  for (std::size_t li = 0; li < layers.size(); ++li) {
    if (!layers[li]->SupportsFusedEpilogue() || tops[li].size() != 1) {
      continue;
    }
    const std::size_t b = tops[li][0];
    FusionGroup group;
    group.producer = net.layer_names()[li];
    // Walk forward in execution order. A layer that touches blob b either
    // joins the chain (legal in-place elementwise consumer) or ends it: a
    // non-chain reader must still observe the values the UNfused schedule
    // would have given it at that point, so nothing past it may be hoisted
    // into the producer.
    for (std::size_t lj = li + 1; lj < layers.size(); ++lj) {
      const bool reads = std::find(bottoms[lj].begin(), bottoms[lj].end(),
                                   b) != bottoms[lj].end();
      const bool writes =
          std::find(tops[lj].begin(), tops[lj].end(), b) != tops[lj].end();
      if (!reads && !writes) continue;
      const std::string type = layers[lj]->type();
      const bool in_place = reads && writes && bottoms[lj].size() == 1 &&
                            tops[lj].size() == 1;
      const bool stateless_any_phase =
          type == "ReLU" || type == "Sigmoid" || type == "TanH";
      // Scale/Bias backward needs the pre-transform input, which in-place
      // forward destroys — fusable only when their backward never runs
      // (inference-style frozen chains).
      const bool legal =
          in_place && FusableConsumerType(type) &&
          (stateless_any_phase || !net.layer_need_backward()[lj]) &&
          layers[lj]->loss(0) == Dtype(0);
      if (!legal) break;
      group.consumers.push_back(net.layer_names()[lj]);
    }
    if (!group.consumers.empty()) {
      plan->fusion_groups.push_back(std::move(group));
    }
  }
}

template <typename Dtype>
void PlanArena(const Net<Dtype>& net, ExecutionPlan* plan) {
  const auto& layers = net.layers();
  const auto& tops = net.top_id_vecs();
  const auto& bottoms = net.bottom_id_vecs();
  const index_t L = static_cast<index_t>(layers.size());
  const bool train = net.phase() == Phase::kTrain;

  // Blobs that must keep their private storage.
  std::set<std::size_t> excluded;
  for (std::size_t li = 0; li < layers.size(); ++li) {
    const std::string type = layers[li]->type();
    if (IsDataType(type)) {
      for (const std::size_t b : tops[li]) excluded.insert(b);
    }
    if (IsSharingType(type)) {
      for (const std::size_t b : tops[li]) excluded.insert(b);
      for (const std::size_t b : bottoms[li]) excluded.insert(b);
    }
    // Loss-weighted tops: their diff plane holds the constant loss weight
    // (read by every Forward) and their data is inspected after the
    // iteration — both planes stay private.
    for (std::size_t ti = 0; ti < tops[li].size(); ++ti) {
      if (layers[li]->loss(static_cast<int>(ti)) != Dtype(0)) {
        excluded.insert(tops[li][ti]);
      }
    }
  }

  // Per-blob first producer and touch range over layer indices.
  const std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> producer(net.blobs().size(), kNone);
  std::vector<std::size_t> min_touch(net.blobs().size(), kNone);
  std::vector<std::size_t> max_touch(net.blobs().size(), 0);
  for (std::size_t li = 0; li < layers.size(); ++li) {
    for (const std::size_t b : tops[li]) {
      if (producer[b] == kNone) producer[b] = li;
    }
    for (const auto* vec : {&tops[li], &bottoms[li]}) {
      for (const std::size_t b : *vec) {
        if (min_touch[b] == kNone) min_touch[b] = li;
        max_touch[b] = std::max(max_touch[b], li);
      }
    }
  }

  std::vector<LifetimeInterval> intervals;
  for (std::size_t b = 0; b < net.blobs().size(); ++b) {
    if (producer[b] == kNone || excluded.count(b) != 0) continue;
    const index_t bytes =
        static_cast<index_t>(net.blobs()[b]->count()) * sizeof(Dtype);
    if (bytes < kMinArenaPlaneBytes) continue;
    const index_t p = static_cast<index_t>(producer[b]);
    const index_t last = static_cast<index_t>(max_touch[b]);
    LifetimeInterval data;
    data.name = net.blob_names()[b];
    data.kind = SlotKind::kData;
    data.blob_id = static_cast<index_t>(b);
    data.start = p;
    data.bytes = bytes;
    // Train: any toucher's backward may read this data; the earliest
    // toucher (the producer) runs backward last, at step 2L-1-p.
    data.end = train ? 2 * L - 1 - p : last;
    intervals.push_back(std::move(data));
    if (train && net.blob_need_backward()[b]) {
      LifetimeInterval diff;
      diff.name = net.blob_names()[b];
      diff.kind = SlotKind::kDiff;
      diff.blob_id = static_cast<index_t>(b);
      // Written first by the last toucher's backward, consumed through the
      // producer's backward.
      diff.start = 2 * L - 1 - last;
      diff.end = 2 * L - 1 - p;
      diff.bytes = bytes;
      intervals.push_back(std::move(diff));
    }
  }

  // The serial-path conv column scratch: all convs share one whole-timeline
  // slot sized for the largest column matrix (its contents never outlive a
  // single sample's lowering, but the slot must exist whenever any conv
  // runs, and point-interval bindings are not expressible with one static
  // pointer per layer).
  index_t col_bytes = 0;
  for (const auto& layer : layers) {
    const auto* conv =
        dynamic_cast<const ConvolutionLayer<Dtype>*>(layer.get());
    if (conv != nullptr) {
      col_bytes = std::max(
          col_bytes, static_cast<index_t>(conv->col_count()) *
                         static_cast<index_t>(sizeof(Dtype)));
    }
  }
  if (col_bytes > 0) {
    LifetimeInterval col;
    col.name = "col";
    col.kind = SlotKind::kCol;
    col.blob_id = -1;
    col.start = 0;
    col.end = 2 * L - 1;
    col.bytes = col_bytes;
    intervals.push_back(std::move(col));
  }
  plan->col_slot_bytes = col_bytes;
  plan->arena = PlanArenaOffsets(std::move(intervals));
}

}  // namespace

template <typename Dtype>
BuildResult BuildPlan(const Net<Dtype>& net, const PlannerOptions& opts) {
  profile::Timer timer;
  BuildResult result;
  ExecutionPlan& plan = result.plan;
  plan.net_signature = NetSignature(net);
  plan.batch = net.blobs().empty() || net.blobs()[0]->num_axes() == 0
                   ? 0
                   : net.blobs()[0]->shape(0);
  plan.threads = opts.threads;
  plan.git_sha = buildinfo::Get().git_sha;

  const std::string cache_dir = PlanCacheDir(opts.cache_dir);
  if (opts.use_cache) {
    PlanCacheKey key{plan.net_signature, plan.batch, plan.threads,
                     plan.git_sha};
    ExecutionPlan cached;
    if (LoadCachedPlan(key, cache_dir, &cached)) {
      result.plan = std::move(cached);
      result.cache_hit = true;
      result.build_us = timer.MicroSeconds();
      return result;
    }
  }

  // Cold build: probe the machine, then decide. The probes (and the
  // measured kernel timings inside PlanConvStrategies) are what the warm
  // path skips — the cold/warm gap the cache tests assert on.
  if (opts.enable_direct) {
    const perfctr::MachinePeak peak =
        perfctr::MeasureMachinePeak(opts.threads);
    plan.gflops = peak.gflops;
    plan.mem_gbps = peak.mem_gbps;
    PlanConvStrategies(net, opts, peak, &plan);
  }
  if (opts.enable_fusion) PlanFusion(net, &plan);
  if (opts.enable_arena) PlanArena(net, &plan);

  if (opts.use_cache) StorePlan(plan, cache_dir);
  result.build_us = timer.MicroSeconds();
  return result;
}

namespace {

/// State a plan attaches to its net: the arena storage and the epilogue
/// chains (layers hold raw views into both).
template <typename Dtype>
struct PlanState {
  AlignedBuffer arena;
  std::vector<std::shared_ptr<const FusedEpilogue<Dtype>>> epilogues;
};

template <typename Dtype>
FusedOp<Dtype> MakeFusedOp(const Layer<Dtype>& layer,
                           const Blob<Dtype>& bottom) {
  const std::string type = layer.type();
  FusedOp<Dtype> op;
  if (type == "ReLU") {
    op.kind = FusedOpKind::kReLU;
    op.slope = static_cast<Dtype>(layer.layer_param().relu_param.negative_slope);
  } else if (type == "Sigmoid") {
    op.kind = FusedOpKind::kSigmoid;
  } else if (type == "TanH") {
    op.kind = FusedOpKind::kTanH;
  } else if (type == "Scale") {
    op.kind = FusedOpKind::kScale;
    const int axis =
        bottom.CanonicalAxisIndex(layer.layer_param().scale_param.axis);
    op.coef = layer.blobs()[0]->cpu_data();
    op.bias = layer.blobs().size() > 1 ? layer.blobs()[1]->cpu_data() : nullptr;
    op.dim = bottom.shape(axis);
    op.inner = bottom.count(axis + 1);
  } else if (type == "Bias") {
    op.kind = FusedOpKind::kBias;
    const int axis =
        bottom.CanonicalAxisIndex(layer.layer_param().bias_param.axis);
    op.coef = layer.blobs()[0]->cpu_data();
    op.dim = bottom.shape(axis);
    op.inner = bottom.count(axis + 1);
  } else {
    CGDNN_CHECK(false) << "not a fusable layer type: " << type;
  }
  return op;
}

}  // namespace

template <typename Dtype>
void ApplyPlan(Net<Dtype>* net, const ExecutionPlan& plan) {
  const std::uint64_t start_ns = trace::NowNs();
  auto state = std::make_shared<PlanState<Dtype>>();

  // ---- conv strategies ----
  index_t direct_convs = 0;
  for (const ConvDecision& d : plan.conv_decisions) {
    CGDNN_CHECK(net->has_layer(d.layer)) << "planned conv missing: " << d.layer;
    auto* conv = dynamic_cast<ConvolutionLayer<Dtype>*>(
        net->layer_by_name(d.layer).get());
    CGDNN_CHECK(conv != nullptr) << d.layer << " is not a Convolution layer";
    conv->set_forward_strategy(d.forward_direct ? ConvStrategy::kDirect
                                                : ConvStrategy::kIm2colGemm);
    conv->set_backward_weights_strategy(d.backward_weights_direct
                                            ? ConvStrategy::kDirect
                                            : ConvStrategy::kIm2colGemm);
    direct_convs += d.forward_direct ? 1 : 0;
  }

  // ---- fusion ----
  std::map<std::string, std::size_t> layer_index;
  for (std::size_t li = 0; li < net->layer_names().size(); ++li) {
    layer_index[net->layer_names()[li]] = li;
  }
  index_t fused_layers = 0;
  for (const FusionGroup& g : plan.fusion_groups) {
    CGDNN_CHECK(net->has_layer(g.producer))
        << "planned producer missing: " << g.producer;
    auto ep = std::make_shared<FusedEpilogue<Dtype>>();
    for (const std::string& name : g.consumers) {
      const auto it = layer_index.find(name);
      CGDNN_CHECK(it != layer_index.end())
          << "planned consumer missing: " << name;
      const std::size_t ci = it->second;
      const Layer<Dtype>& consumer = *net->layers()[ci];
      ep->Append(MakeFusedOp(consumer, *net->bottom_vecs()[ci][0]), name);
      net->set_layer_forward_skip(ci, true);
      ++fused_layers;
    }
    net->layer_by_name(g.producer)
        ->set_fused_epilogue(
            std::shared_ptr<const FusedEpilogue<Dtype>>(ep));
    state->epilogues.push_back(std::move(ep));
  }

  // ---- arena binding ----
  if (plan.arena.total_bytes > 0 && !plan.arena.intervals.empty()) {
    state->arena = AlignedBuffer(static_cast<std::size_t>(
        plan.arena.total_bytes));
    char* base = static_cast<char*>(state->arena.get());
    for (const LifetimeInterval& iv : plan.arena.intervals) {
      if (iv.kind == SlotKind::kCol) {
        for (const auto& layer : net->layers()) {
          auto* conv =
              dynamic_cast<ConvolutionLayer<Dtype>*>(layer.get());
          if (conv != nullptr) {
            conv->BindSerialColBuffer(
                reinterpret_cast<Dtype*>(base + iv.offset),
                iv.bytes / static_cast<index_t>(sizeof(Dtype)));
          }
        }
        continue;
      }
      CGDNN_CHECK_GE(iv.blob_id, 0);
      CGDNN_CHECK_LT(static_cast<std::size_t>(iv.blob_id),
                     net->blobs().size());
      const auto& blob = net->blobs()[static_cast<std::size_t>(iv.blob_id)];
      CGDNN_CHECK_EQ(static_cast<index_t>(blob->count() * sizeof(Dtype)),
                     iv.bytes)
          << "plan/net shape mismatch on " << iv.name;
      void* slot = base + iv.offset;
      if (iv.kind == SlotKind::kData) {
        std::memcpy(slot, blob->cpu_data(),
                    static_cast<std::size_t>(iv.bytes));
        blob->data()->set_cpu_data(slot);
      } else {
        std::memcpy(slot, blob->cpu_diff(),
                    static_cast<std::size_t>(iv.bytes));
        blob->diff()->set_cpu_data(slot);
      }
    }
  }

  net->AttachPlanState(std::shared_ptr<void>(state));

  // ---- observability: decisions as metrics + one trace span ----
  auto& metrics = trace::MetricsRegistry::Default();
  metrics.GetGauge("plan.arena_bytes")
      .Set(static_cast<double>(plan.arena.total_bytes));
  metrics.GetGauge("plan.per_plane_bytes")
      .Set(static_cast<double>(plan.arena.per_plane_bytes));
  metrics.GetGauge("plan.col_slot_bytes")
      .Set(static_cast<double>(plan.col_slot_bytes));
  metrics.GetGauge("plan.fused_layers").Set(static_cast<double>(fused_layers));
  metrics.GetGauge("plan.direct_convs").Set(static_cast<double>(direct_convs));
  trace::Tracer::Get().Emit(
      "plan", net->name() + ".apply", start_ns, trace::NowNs(),
      {{"arena_bytes", static_cast<double>(plan.arena.total_bytes)},
       {"per_plane_bytes", static_cast<double>(plan.arena.per_plane_bytes)},
       {"fused_layers", static_cast<double>(fused_layers)},
       {"direct_convs", static_cast<double>(direct_convs)}});
}

template <typename Dtype>
BuildResult PlanAndApply(Net<Dtype>* net, const PlannerOptions& opts) {
  BuildResult result = BuildPlan(*net, opts);
  ApplyPlan(net, result.plan);
  return result;
}

template std::string NetSignature<float>(const Net<float>&);
template std::string NetSignature<double>(const Net<double>&);
template BuildResult BuildPlan<float>(const Net<float>&,
                                      const PlannerOptions&);
template BuildResult BuildPlan<double>(const Net<double>&,
                                       const PlannerOptions&);
template void ApplyPlan<float>(Net<float>*, const ExecutionPlan&);
template void ApplyPlan<double>(Net<double>*, const ExecutionPlan&);
template BuildResult PlanAndApply<float>(Net<float>*, const PlannerOptions&);
template BuildResult PlanAndApply<double>(Net<double>*,
                                          const PlannerOptions&);

}  // namespace cgdnn::plan
