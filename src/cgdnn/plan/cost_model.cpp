#include "cgdnn/plan/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "cgdnn/blas/blas.hpp"
#include "cgdnn/blas/im2col.hpp"
#include "cgdnn/profile/timer.hpp"

namespace cgdnn::plan {

namespace {

// Modelled cost (in "equivalent flops") of gathering one column element in
// the direct path: index decomposition + bounds test + load. Calibrated
// roughly against the measured gap on small-channel shapes; the measured
// refinement absorbs the error anyway.
constexpr double kGatherFlopsPerElem = 4.0;

// Relative analytic margin below which the two strategies are considered
// too close to call and the planner measures instead of trusting the model.
constexpr double kMeasureMarginFrac = 0.30;

}  // namespace

double ConvForwardFlops(const blas::ConvGeom& g, index_t num_output) {
  return 2.0 * static_cast<double>(num_output) *
         static_cast<double>(g.kernel_dim()) *
         static_cast<double>(g.out_spatial());
}

double AnalyticConvForwardUs(const blas::ConvGeom& g, index_t num_output,
                             bool direct, int dtype_bytes,
                             const perfctr::MachinePeak& peak) {
  const double col_elems = static_cast<double>(g.kernel_dim()) *
                           static_cast<double>(g.out_spatial());
  const double weight_bytes = static_cast<double>(num_output) *
                              static_cast<double>(g.kernel_dim()) *
                              dtype_bytes;
  const double image_bytes = static_cast<double>(g.bottom_dim()) * dtype_bytes;
  const double top_bytes = static_cast<double>(num_output) *
                           static_cast<double>(g.out_spatial()) * dtype_bytes;

  double flops = ConvForwardFlops(g, num_output);
  // Both paths read the weights and image and write the top once.
  double bytes = weight_bytes + image_bytes + top_bytes;
  if (direct) {
    // The implicit gather touches each column element once (from the image,
    // usually cache-resident) but pays index arithmetic per element.
    flops += col_elems * kGatherFlopsPerElem;
    bytes += col_elems * dtype_bytes;  // pack-buffer write
  } else {
    // Materialized im2col writes the col matrix, then the GEMM reads it
    // back; the pack stage writes it a second time into the pack buffer.
    bytes += 3.0 * col_elems * dtype_bytes;
  }

  // Per-shape planning is per-sample work executed by ONE thread (the batch
  // loop is the parallel loop), so scale the aggregate roofs down to a
  // single worker's share.
  const double t = std::max(1, peak.threads);
  const double gflops = std::max(1e-3, peak.gflops / t);
  const double gbps = std::max(1e-3, peak.mem_gbps / t);
  return std::max(flops / (gflops * 1e3), bytes / (gbps * 1e3));
}

template <typename Dtype>
double MeasureConvForwardUs(const blas::ConvGeom& g, index_t num_output,
                            bool direct, int reps) {
  const index_t k = g.kernel_dim();
  const index_t n = g.out_spatial();
  // Value-independent kernels: constant fill is as representative as real
  // activations and keeps the probe deterministic.
  std::vector<Dtype> weights(static_cast<std::size_t>(num_output * k),
                             Dtype(0.5));
  std::vector<Dtype> image(static_cast<std::size_t>(g.bottom_dim()),
                           Dtype(0.25));
  std::vector<Dtype> top(static_cast<std::size_t>(num_output * n), Dtype(0));
  std::vector<Dtype> col;
  if (!direct) col.resize(static_cast<std::size_t>(k * n));

  double best = 0;
  for (int r = 0; r < reps; ++r) {
    profile::Timer timer;
    if (direct) {
      blas::DirectConvForward(g, num_output, weights.data(), image.data(),
                              top.data());
    } else {
      blas::im2col(image.data(), g.channels, g.height, g.width, g.kernel_h,
                   g.kernel_w, g.pad_h, g.pad_w, g.stride_h, g.stride_w,
                   index_t{1}, index_t{1}, col.data());
      blas::gemm(blas::Transpose::kNo, blas::Transpose::kNo, num_output, n, k,
                 Dtype(1), weights.data(), col.data(), Dtype(0), top.data());
    }
    const double us = timer.MicroSeconds();
    if (r == 0 || us < best) best = us;
  }
  return best;
}

template <typename Dtype>
bool ChooseDirectForward(const blas::ConvGeom& g, index_t num_output,
                         const perfctr::MachinePeak& peak, bool measure,
                         ConvCost* cost) {
  ConvCost c;
  c.im2col_us = AnalyticConvForwardUs(g, num_output, /*direct=*/false,
                                      sizeof(Dtype), peak);
  c.direct_us = AnalyticConvForwardUs(g, num_output, /*direct=*/true,
                                      sizeof(Dtype), peak);
  const double lo = std::min(c.im2col_us, c.direct_us);
  const double hi = std::max(c.im2col_us, c.direct_us);
  const bool close = lo <= 0 || (hi - lo) / hi < kMeasureMarginFrac;
  bool direct = c.direct_us < c.im2col_us;
  if (measure || close) {
    c.measured_im2col_us =
        MeasureConvForwardUs<Dtype>(g, num_output, /*direct=*/false);
    c.measured_direct_us =
        MeasureConvForwardUs<Dtype>(g, num_output, /*direct=*/true);
    direct = c.measured_direct_us < c.measured_im2col_us;
  }
  if (cost != nullptr) *cost = c;
  return direct;
}

template double MeasureConvForwardUs<float>(const blas::ConvGeom&, index_t,
                                            bool, int);
template double MeasureConvForwardUs<double>(const blas::ConvGeom&, index_t,
                                             bool, int);
template bool ChooseDirectForward<float>(const blas::ConvGeom&, index_t,
                                         const perfctr::MachinePeak&, bool,
                                         ConvCost*);
template bool ChooseDirectForward<double>(const blas::ConvGeom&, index_t,
                                          const perfctr::MachinePeak&, bool,
                                          ConvCost*);

}  // namespace cgdnn::plan
