// ExecutionPlan: the serializable product of the planning pass.
//
// One plan is valid for exactly one (net signature, batch, thread count,
// git SHA) tuple — the four inputs that change what the planner would
// decide. The plan records three decision families:
//   1. per-conv kernel strategies (im2col-GEMM vs direct), with the cost
//      model's analytic and measured numbers kept for `cgdnn_plan --explain`;
//   2. fusion groups: elementwise in-place consumer chains folded into
//      their producer's output loop;
//   3. the activation arena layout (arena_plan.hpp intervals with offsets).
// Plans serialize to JSON for the on-disk cache (plan_cache.hpp) and the
// cgdnn_plan tool; FromJson treats any malformed input as "no plan".
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "cgdnn/plan/arena_plan.hpp"

namespace cgdnn::plan {

struct ConvDecision {
  std::string layer;
  bool forward_direct = false;
  bool backward_weights_direct = false;
  // Cost-model evidence (per-sample microseconds; measured < 0 = skipped).
  double im2col_us = 0;
  double direct_us = 0;
  double measured_im2col_us = -1;
  double measured_direct_us = -1;
};

struct FusionGroup {
  std::string producer;
  std::vector<std::string> consumers;  ///< in forward order
};

struct ExecutionPlan {
  // ---- cache key ----
  std::string net_signature;  ///< NetSignature() of the planned net
  index_t batch = 0;
  int threads = 0;
  std::string git_sha;

  // ---- machine model the decisions were derived from ----
  double gflops = 0;
  double mem_gbps = 0;

  // ---- decisions ----
  std::vector<ConvDecision> conv_decisions;
  std::vector<FusionGroup> fusion_groups;
  ArenaLayout arena;          ///< empty intervals = arena disabled
  index_t col_slot_bytes = 0; ///< shared serial col scratch size (0 = none)

  std::string ToJson() const;
  /// Parses a serialized plan; false (and `*out` unspecified) on any
  /// malformed input.
  static bool FromJson(std::string_view text, ExecutionPlan* out);
};

}  // namespace cgdnn::plan
