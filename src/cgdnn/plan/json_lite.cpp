#include "cgdnn/plan/json_lite.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace cgdnn::plan {

namespace {
constexpr std::size_t kMaxDepth = 64;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, 0)) return false;
    SkipWs();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out, std::size_t depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      case 't':
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = true;
        return Literal("true");
      case 'f':
        out->kind_ = JsonValue::Kind::kBool;
        out->bool_ = false;
        return Literal("false");
      case 'n':
        out->kind_ = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseNumber(JsonValue* out) {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return false;
    // strtod accepts hex/inf/nan forms JSON forbids; our writer never emits
    // them, and accepting them here cannot produce a wrong plan (the value
    // is just a number), so we keep the parser small.
    pos_ += static_cast<std::size_t>(end - begin);
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = v;
    return true;
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // Basic-plane UTF-8 encoding; surrogate pairs are not expected in
          // plan files (layer names are ASCII) and decode to replacements.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseArray(JsonValue* out, std::size_t depth) {
    out->kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue elem;
      SkipWs();
      if (!ParseValue(&elem, depth + 1)) return false;
      out->array_.push_back(std::move(elem));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseObject(JsonValue* out, std::size_t depth) {
    out->kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || !ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool JsonValue::Parse(std::string_view text, JsonValue* out) {
  return JsonParser(text).Parse(out);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::GetString(const std::string& key,
                                 std::string def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind_ == Kind::kString ? v->string_
                                                   : std::move(def);
}

double JsonValue::GetNumber(const std::string& key, double def) const {
  const JsonValue* v = Find(key);
  return v != nullptr ? v->AsNumber(def) : def;
}

index_t JsonValue::GetInt(const std::string& key, index_t def) const {
  const JsonValue* v = Find(key);
  return v != nullptr ? v->AsInt(def) : def;
}

bool JsonValue::GetBool(const std::string& key, bool def) const {
  const JsonValue* v = Find(key);
  return v != nullptr ? v->AsBool(def) : def;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace cgdnn::plan
