#include "cgdnn/plan/plan_cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "cgdnn/data/io.hpp"

namespace cgdnn::plan {

std::string PlanCacheDir(const std::string& override_dir) {
  if (!override_dir.empty()) return override_dir;
  if (const char* env = std::getenv("CGDNN_PLAN_CACHE_DIR");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return ".cgdnn_plan_cache";
}

std::string PlanCachePath(const PlanCacheKey& key, const std::string& dir) {
  // One CRC over all key fields with separators that cannot occur inside
  // them ambiguously; collisions only cost a re-plan (fields re-verified).
  std::string blob = key.net_signature;
  blob += '\n';
  blob += std::to_string(key.batch);
  blob += '\n';
  blob += std::to_string(key.threads);
  blob += '\n';
  blob += key.git_sha;
  const std::uint32_t crc = data::Crc32(blob.data(), blob.size());
  char name[32];
  std::snprintf(name, sizeof(name), "plan_%08x.json", crc);
  return dir + "/" + name;
}

bool LoadCachedPlan(const PlanCacheKey& key, const std::string& dir,
                    ExecutionPlan* out) {
  const std::string path = PlanCachePath(key, dir);
  std::string bytes;
  try {
    bytes = data::ReadFileBytes(path);
  } catch (...) {
    return false;  // no file: miss
  }
  ExecutionPlan plan;
  if (!ExecutionPlan::FromJson(bytes, &plan)) {
    // Corrupt or truncated entry (partial write survived a crash, disk
    // error, hand edit). Discard it so every later process pays the parse
    // attempt only once, and say so: silent deletion would mask a flaky
    // disk. A key-field mismatch below is NOT deleted — that file is a
    // valid plan for some other configuration hashed into the same name.
    std::fprintf(stderr,
                 "cgdnn: warning: discarding corrupt plan cache entry %s "
                 "(%zu bytes); re-planning\n",
                 path.c_str(), bytes.size());
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return false;
  }
  if (plan.net_signature != key.net_signature || plan.batch != key.batch ||
      plan.threads != key.threads || plan.git_sha != key.git_sha) {
    return false;
  }
  *out = std::move(plan);
  return true;
}

void StorePlan(const ExecutionPlan& plan, const std::string& dir) {
  PlanCacheKey key{plan.net_signature, plan.batch, plan.threads,
                   plan.git_sha};
  try {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    data::WriteFileAtomic(PlanCachePath(key, dir), plan.ToJson());
  } catch (...) {
    // Best-effort: a read-only or full disk must not fail planning.
  }
}

}  // namespace cgdnn::plan
