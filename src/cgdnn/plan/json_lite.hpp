// Minimal JSON reader/writer helpers for the on-disk plan cache.
//
// The repo's observability sinks only ever *write* JSON; the plan cache is
// the first artifact that must be read back. This is a small recursive-
// descent parser over the JSON subset our own writer emits (objects,
// arrays, strings with standard escapes, doubles, bools, null) — not a
// general-purpose validator. Anything malformed parses to failure and the
// cache treats it as a miss (plans are always recomputable).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "cgdnn/core/common.hpp"

namespace cgdnn::plan {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses `text` into `out`; false on any syntax error (out unspecified).
  static bool Parse(std::string_view text, JsonValue* out);

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  bool AsBool(bool def = false) const {
    return kind_ == Kind::kBool ? bool_ : def;
  }
  double AsNumber(double def = 0) const {
    return kind_ == Kind::kNumber ? number_ : def;
  }
  index_t AsInt(index_t def = 0) const {
    return kind_ == Kind::kNumber ? static_cast<index_t>(number_) : def;
  }
  const std::string& AsString() const { return string_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  const std::vector<JsonValue>& array() const { return array_; }

  // Convenience: typed member access with defaults (missing -> default).
  std::string GetString(const std::string& key, std::string def = "") const;
  double GetNumber(const std::string& key, double def = 0) const;
  index_t GetInt(const std::string& key, index_t def = 0) const;
  bool GetBool(const std::string& key, bool def = false) const;

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escapes a string for embedding in JSON output (no surrounding quotes).
std::string JsonEscape(std::string_view s);

}  // namespace cgdnn::plan
