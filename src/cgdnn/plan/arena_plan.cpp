#include "cgdnn/plan/arena_plan.hpp"

#include <algorithm>
#include <numeric>

namespace cgdnn::plan {

namespace {

index_t RoundUp(index_t v, index_t align) {
  return (v + align - 1) / align * align;
}

}  // namespace

ArenaLayout PlanArenaOffsets(std::vector<LifetimeInterval> intervals,
                             index_t align) {
  CGDNN_CHECK_GT(align, 0);
  // Place big intervals first: small ones fill the gaps the big ones leave.
  // The index indirection keeps the caller's interval order stable.
  std::vector<std::size_t> order(intervals.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return intervals[a].bytes > intervals[b].bytes;
                   });

  std::vector<std::size_t> placed;
  index_t total = 0;
  for (const std::size_t idx : order) {
    LifetimeInterval& iv = intervals[idx];
    CGDNN_CHECK_GE(iv.bytes, 0);
    CGDNN_CHECK_LE(iv.start, iv.end);
    // Collect the address ranges blocked by time-overlapping neighbours,
    // then scan for the lowest aligned gap that fits.
    std::vector<std::pair<index_t, index_t>> busy;  // [offset, offset+bytes)
    for (const std::size_t j : placed) {
      if (TimeOverlap(iv, intervals[j])) {
        busy.emplace_back(intervals[j].offset,
                          intervals[j].offset + intervals[j].bytes);
      }
    }
    std::sort(busy.begin(), busy.end());
    index_t offset = 0;
    for (const auto& [b, e] : busy) {
      if (offset + iv.bytes <= b) break;  // fits before this busy range
      offset = std::max(offset, RoundUp(e, align));
    }
    iv.offset = offset;
    total = std::max(total, offset + iv.bytes);
    placed.push_back(idx);
  }

  ArenaLayout layout;
  layout.total_bytes = RoundUp(total, align);
  layout.per_plane_bytes = 0;
  for (const auto& iv : intervals) layout.per_plane_bytes += iv.bytes;
  layout.intervals = std::move(intervals);
  ComputePreserved(&layout.intervals);
  return layout;
}

void ComputePreserved(std::vector<LifetimeInterval>* intervals) {
  for (auto& iv : *intervals) {
    bool preserved = true;
    for (const auto& other : *intervals) {
      if (&other == &iv) continue;
      // A later-starting occupant of the same addresses overwrites us after
      // our last use; anything starting at or before our end either ends
      // before we start (no time overlap is required for address sharing)
      // or IS a time-overlap (caught by ValidateLayout, not a preservation
      // question).
      if (AddrOverlap(iv, other) && other.start > iv.end) {
        preserved = false;
        break;
      }
    }
    iv.preserved = preserved;
  }
}

bool ValidateLayout(const std::vector<LifetimeInterval>& intervals,
                    std::string* why) {
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    if (intervals[i].offset < 0) {
      if (why != nullptr) *why = intervals[i].name + ": unplaced";
      return false;
    }
    for (std::size_t j = i + 1; j < intervals.size(); ++j) {
      if (TimeOverlap(intervals[i], intervals[j]) &&
          AddrOverlap(intervals[i], intervals[j])) {
        if (why != nullptr) {
          *why = intervals[i].name + " and " + intervals[j].name +
                 " are live together but share addresses";
        }
        return false;
      }
    }
  }
  return true;
}

}  // namespace cgdnn::plan
