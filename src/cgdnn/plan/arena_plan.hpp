// Lifetime-planned activation arena: interval coloring over the execution
// timeline.
//
// Per-blob allocation keeps every activation's data and diff plane alive for
// the whole iteration even though most are dead for most of it. The arena
// plan models one training iteration as a timeline of 2L integer steps for
// an L-layer net — forward of layer i at step i, backward of layer i at step
// 2L-1-i — assigns each plane a live interval on that timeline, and packs
// the intervals into one flat buffer: two planes may share addresses iff
// their intervals do not overlap in time. This is classic interval-graph
// coloring (offsets play the role of colors), solved greedily: place
// intervals in decreasing size order, each at the lowest aligned offset that
// does not collide with an already-placed, time-overlapping interval
// (first-fit decreasing — optimal on interval graphs for unit sizes, and a
// good 2-approximation here).
//
// A plane whose slot is re-used later in the timeline holds garbage after
// the iteration. The `preserved` flag records exactly this: an interval is
// preserved iff no address-overlapping interval starts after it ends.
// Validation (and anything else inspecting post-iteration state) may only
// compare preserved planes; everything the training loop itself reads is
// live by construction.
#pragma once

#include <string>
#include <vector>

#include "cgdnn/core/common.hpp"

namespace cgdnn::plan {

/// What a lifetime interval binds to when the plan is applied.
enum class SlotKind {
  kData = 0,  ///< a blob's data plane
  kDiff = 1,  ///< a blob's diff plane
  kCol = 2,   ///< the shared serial-path conv column scratch
};

struct LifetimeInterval {
  std::string name;     ///< blob name (or "col" for the shared scratch)
  SlotKind kind = SlotKind::kData;
  index_t blob_id = -1;  ///< net blob index; -1 for the col scratch
  index_t start = 0;     ///< first timeline step the plane is live (incl.)
  index_t end = 0;       ///< last timeline step the plane is live (incl.)
  index_t bytes = 0;     ///< plane size in bytes
  index_t offset = -1;   ///< assigned arena offset; -1 before planning
  bool preserved = false;  ///< contents intact after the iteration
};

struct ArenaLayout {
  std::vector<LifetimeInterval> intervals;
  index_t total_bytes = 0;     ///< arena size (max offset + size, aligned)
  index_t per_plane_bytes = 0; ///< sum of plane sizes: the per-blob baseline
};

/// True when the two intervals are simultaneously live.
inline bool TimeOverlap(const LifetimeInterval& a, const LifetimeInterval& b) {
  return a.start <= b.end && b.start <= a.end;
}

/// True when the two placed intervals share any arena addresses.
inline bool AddrOverlap(const LifetimeInterval& a, const LifetimeInterval& b) {
  return a.offset >= 0 && b.offset >= 0 && a.offset < b.offset + b.bytes &&
         b.offset < a.offset + a.bytes;
}

/// Assigns offsets (first-fit decreasing, `align`-byte aligned), computes
/// total/per-plane bytes and the preserved flags. Interval order in the
/// result matches the input (sorting is internal).
ArenaLayout PlanArenaOffsets(std::vector<LifetimeInterval> intervals,
                             index_t align = 64);

/// Recomputes every interval's preserved flag from the current offsets
/// (exposed separately so tests and the bad-plan injector can re-derive
/// flags after editing offsets).
void ComputePreserved(std::vector<LifetimeInterval>* intervals);

/// Checks the invariant that makes a layout safe: no two time-overlapping
/// intervals share addresses. Returns the offending pair's names via `why`
/// (when non-null) and false on violation.
bool ValidateLayout(const std::vector<LifetimeInterval>& intervals,
                    std::string* why);

}  // namespace cgdnn::plan
