// On-disk plan cache.
//
// Planning is cheap but not free — the measured-timing refinement runs the
// machine-peak probes plus both conv kernels per ambiguous shape, tens of
// milliseconds that would otherwise be paid at every process start. The
// cache persists each finished plan as JSON keyed by
// (net signature, batch, threads, git SHA): the four inputs that change the
// decisions. The git SHA is the coarse invalidator — any rebuild from new
// sources may have changed kernel costs, so cached measurements are stale.
//
// Files live in $CGDNN_PLAN_CACHE_DIR (default .cgdnn_plan_cache/ under the
// working directory) as plan_<crc32-of-key>.json, written atomically
// (data::WriteFileAtomic) so a crash never leaves a torn plan. Lookups
// re-verify every key field after parsing — a CRC collision or hand-edited
// file degrades to a miss, never to a wrong plan.
#pragma once

#include <string>

#include "cgdnn/plan/plan.hpp"

namespace cgdnn::plan {

struct PlanCacheKey {
  std::string net_signature;
  index_t batch = 0;
  int threads = 0;
  std::string git_sha;
};

/// Resolved cache directory: `override_dir` if non-empty, else
/// $CGDNN_PLAN_CACHE_DIR, else ".cgdnn_plan_cache".
std::string PlanCacheDir(const std::string& override_dir = "");

/// Full path of the cache file for `key` inside `dir`.
std::string PlanCachePath(const PlanCacheKey& key, const std::string& dir);

/// Loads and key-verifies a cached plan. False on miss, parse failure, or
/// any key-field mismatch (all mean: re-plan). A file that exists but does
/// not parse — the torn remains of a crashed writer, a disk error, a hand
/// edit — is deleted with a stderr warning so it is never re-probed; a
/// parseable plan whose key fields mismatch (CRC name collision) is left
/// in place, since it is valid for its own configuration.
bool LoadCachedPlan(const PlanCacheKey& key, const std::string& dir,
                    ExecutionPlan* out);

/// Persists `plan` under its own key fields. Creates `dir` if needed.
/// Failures are swallowed (the cache is an optimization, not state).
void StorePlan(const ExecutionPlan& plan, const std::string& dir);

}  // namespace cgdnn::plan
