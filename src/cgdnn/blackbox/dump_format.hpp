// On-disk layout of `blackbox-<pid>.bin` dumps, shared by the recorder's
// async-signal-safe writer and the tools/cgdnn_blackbox decoder.
//
// Everything is little-endian, naturally aligned, fixed-size — the crash
// handler memcpy-free-writes these structs straight from static storage.
// Layout, in file order:
//
//   DumpHeader
//   meta JSON              [DumpHeader.meta_bytes]  (no NUL)
//   NameRecord             x DumpHeader.name_count
//   per thread:            x DumpHeader.thread_count
//     ThreadHeader
//     EventRecord          x min(head, capacity)   (oldest -> newest)
//
// The decoder must tolerate truncation anywhere after the header: a crash
// while dumping (or a dump racing live producers) can tear the final
// records. Sanity rules for salvage: kind must be < kMax and nonzero,
// name_id < name_count.
#pragma once

#include <cstdint>

namespace cgdnn::blackbox {

inline constexpr char kMagic[8] = {'C', 'G', 'D', 'N', 'N', 'B', 'B', 'X'};
inline constexpr std::uint32_t kFormatVersion = 1;

/// Sentinel for "no crashing thread" / "no solver iteration yet".
inline constexpr std::uint32_t kNoThread = 0xffffffffu;
inline constexpr std::uint64_t kNoIteration = ~0ull;

struct DumpHeader {
  char magic[8];               ///< kMagic
  std::uint32_t version;       ///< kFormatVersion
  std::uint32_t reason;        ///< DumpReason
  std::uint64_t pid;
  std::uint64_t dump_t_ns;     ///< MonotonicNowNs at dump time
  std::uint32_t thread_count;  ///< ThreadHeader sections that follow names
  std::uint32_t name_count;    ///< NameRecord entries
  std::uint32_t crash_tid;     ///< recorder tid that took the signal, or kNoThread
  std::uint32_t signo;         ///< signal number for kSignal dumps, else 0
  std::uint64_t solver_iter;   ///< last begun solver iteration, or kNoIteration
  std::uint64_t meta_bytes;    ///< length of the meta JSON section
};
static_assert(sizeof(DumpHeader) == 64, "dump header layout is part of the format");

/// Interned name table entry: fixed-width, NUL-padded.
struct NameRecord {
  char name[64];
};
static_assert(sizeof(NameRecord) == 64);

/// One recorder thread's section header.
struct ThreadHeader {
  std::uint32_t tid;            ///< recorder-assigned dense id (0-based)
  std::uint32_t position_depth; ///< open positions at dump time (<= kMaxDepth)
  std::uint64_t head;           ///< total events ever recorded by this thread
  std::uint64_t capacity;       ///< ring capacity; event_count = min(head, capacity)
  std::uint64_t last_event_ns;  ///< timestamp of the newest event
  /// Open-position stack, innermost last: packed as (name_id << 32) | kind
  /// in `position[i]`, entry timestamp in `position_t_ns[i]`.
  std::uint64_t position[4];
  std::uint64_t position_t_ns[4];
};
static_assert(sizeof(ThreadHeader) == 96);

/// One ring slot. 32 bytes; in memory the same four words live in
/// std::atomic<uint64_t> (lock-free => layout-identical to uint64_t).
///   w0 = t_ns
///   w1 = (kind << 48) | (tid << 32) | name_id
///   w2 = a
///   w3 = b
struct EventRecord {
  std::uint64_t t_ns;
  std::uint64_t packed;
  std::uint64_t a;
  std::uint64_t b;
};
static_assert(sizeof(EventRecord) == 32);

inline std::uint64_t PackEvent(std::uint16_t kind, std::uint32_t tid,
                               std::uint32_t name_id) {
  return (static_cast<std::uint64_t>(kind) << 48) |
         (static_cast<std::uint64_t>(tid & 0xffffu) << 32) | name_id;
}
inline std::uint16_t EventKindOf(std::uint64_t packed) {
  return static_cast<std::uint16_t>(packed >> 48);
}
inline std::uint32_t EventTidOf(std::uint64_t packed) {
  return static_cast<std::uint32_t>((packed >> 32) & 0xffffu);
}
inline std::uint32_t EventNameOf(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed & 0xffffffffu);
}

}  // namespace cgdnn::blackbox
