// cgdnn_blackbox: always-on flight recorder, crash forensics, hang watchdog.
//
// Unlike the span tracer (opt-in, flush-on-exit), the recorder is ON by
// default and is built to survive the very failures that destroy flushed
// evidence: a SIGSEGV mid-region, a deadlocked merge, a diverging solver.
//
// Design:
//  * Each thread owns a lock-free SPSC ring of fixed-size 32-byte events
//    (producer: the owning thread; consumer: the crash handler / watchdog,
//    which only ever *read*). Event words are relaxed atomics; the head
//    counter is published with release semantics so a reader acquiring the
//    head sees fully written events. Overwrite-oldest: the ring always
//    holds the most recent N events per thread.
//  * Event payload is compact and static: a timestamp from the shared
//    monotonic epoch (cgdnn::MonotonicNowNs — same clock as the tracer, so
//    decoded dumps merge with Chrome traces on one timeline), a kind, the
//    recording thread, an interned name id and two 64-bit args.
//  * Crash path is async-signal-safe: handlers for SIGSEGV/SIGBUS/SIGFPE/
//    SIGABRT walk preallocated static tables (ring registry, name table,
//    prebuilt meta JSON) and emit `blackbox-<pid>.bin` with write(2) only.
//    No malloc, no locks, no iostreams in that path.
//  * The watchdog is fed by per-thread position stacks ("thread T is inside
//    region R since t") — it trips only on *open* work older than the
//    deadline, never on an idle process.
//
// Compile-out: -DCGDNN_BLACKBOX=OFF (CMake) turns every entry point into an
// inline no-op so benches can measure the recorder's cost. Runtime kill
// switch: CGDNN_BLACKBOX=off in the environment.
//
// Decoder: tools/cgdnn_blackbox (timeline + Chrome-trace JSON). Format
// documented in dump_format.hpp.
#pragma once

#include <cstdint>
#include <string>

#ifndef CGDNN_BLACKBOX_ENABLED
#define CGDNN_BLACKBOX_ENABLED 1
#endif

namespace cgdnn::blackbox {

/// Event kinds. Stable numbering: the decoder and dump format depend on it;
/// append only. Keep in sync with KindName() and tools/cgdnn_blackbox.
enum class EventKind : std::uint16_t {
  kSpanBegin = 1,        ///< TRACE_SCOPE entry: a=0, b=0
  kSpanEnd = 2,          ///< TRACE_SCOPE exit
  kRegionBegin = 3,      ///< parallel region entry (serial part), a=threads
  kRegionEnd = 4,        ///< parallel region exit, a=threads
  kChunkBegin = 5,       ///< per-thread chunk of a region, a=items
  kChunkEnd = 6,         ///< per-thread chunk done, a=items
  kMergeBegin = 7,       ///< reduction/merge phase entry, a=mode
  kMergeEnd = 8,         ///< reduction/merge phase exit, a=mode
  kSolverIterBegin = 9,  ///< a=iteration
  kSolverIterEnd = 10,   ///< a=iteration, b=bit_cast<u64>(double loss)
  kCheckpointBegin = 11, ///< a=iteration
  kCheckpointEnd = 12,   ///< a=iteration, b=bytes written
  kViolation = 13,       ///< write-set checker violation, a=kind detail
  kLayerBegin = 14,      ///< layer phase begin (fwd/bwd), a=phase
  kLayerEnd = 15,        ///< layer phase end, a=phase
  kMax = 16,
};

const char* KindName(EventKind kind);

/// Why a dump was written (header field; decoder prints it).
enum class DumpReason : std::uint32_t {
  kManual = 0,    ///< DumpNow() from tooling / tests
  kSignal = 1,    ///< fatal signal (crash tid + signo recorded)
  kWatchdog = 2,  ///< hang watchdog deadline exceeded
  kGuard = 3,     ///< non-finite-loss guard (solver divergence)
};

#if CGDNN_BLACKBOX_ENABLED

/// True when the recorder is armed (built in and not disabled via the
/// CGDNN_BLACKBOX=off environment variable). Cheap: one relaxed load.
bool Enabled();

/// Record one event into the calling thread's ring. `name` must be a
/// string literal or otherwise immortal — the recorder interns the pointer,
/// not a copy. No-op (one branch) when disabled.
void Record(EventKind kind, const char* name, std::uint64_t a = 0,
            std::uint64_t b = 0);

/// Paired position tracking for the watchdog: "this thread is inside
/// `name` since now". Push on entry, pop on exit. Also records the
/// corresponding begin/end event. Depth is capped (kMaxDepth); deeper
/// nesting records events but is invisible to the watchdog.
void PushPosition(EventKind begin_kind, const char* name, std::uint64_t a = 0,
                  std::uint64_t b = 0);
void PopPosition(EventKind end_kind, const char* name, std::uint64_t a = 0,
                 std::uint64_t b = 0);

/// RAII wrapper for PushPosition/PopPosition.
class ScopedPosition {
 public:
  ScopedPosition(EventKind begin_kind, EventKind end_kind, const char* name,
                 std::uint64_t a = 0)
      : end_kind_(end_kind), name_(name), a_(a) {
    PushPosition(begin_kind, name, a);
  }
  ~ScopedPosition() { PopPosition(end_kind_, name_, a_); }
  ScopedPosition(const ScopedPosition&) = delete;
  ScopedPosition& operator=(const ScopedPosition&) = delete;

 private:
  EventKind end_kind_;
  const char* name_;
  std::uint64_t a_;
};

/// Solver heartbeat: mark the start/end of iteration `iter`. Feeds the
/// watchdog's "solver iteration stalled" detection and the crash dump's
/// "last solver iteration" header field.
void BeginSolverIteration(std::uint64_t iter);
void EndSolverIteration(std::uint64_t iter, double loss);

/// Install the fatal-signal handlers (SIGSEGV/SIGBUS/SIGFPE/SIGABRT) and
/// set the dump path (directory or full path; empty = "blackbox-<pid>.bin"
/// in the CWD). Idempotent; later calls just update the path.
void InstallCrashHandlers(const std::string& dump_path = "");

/// Synchronous dump from regular (non-signal) code — the non-finite-loss
/// guard and the watchdog use this. First dump wins; later calls are no-ops
/// (returns false). Safe to call from any thread.
bool DumpNow(DumpReason reason);

/// Path the next dump will be written to.
std::string DumpPath();

// --- Watchdog -------------------------------------------------------------

struct WatchdogOptions {
  /// Deadline in nanoseconds: an open position or solver iteration older
  /// than this trips the watchdog.
  std::uint64_t deadline_ns = 0;
  /// Abort the process after dumping (production default). Tests set
  /// false and use on_stall to observe the trip.
  bool abort_on_stall = true;
  /// Test hook: called (from the watchdog thread) with a description of
  /// the stalled site before dump/abort. May be null.
  void (*on_stall)(const char* site, std::uint64_t age_ns) = nullptr;
};

/// Start the watchdog thread. No-op if already running or deadline_ns == 0.
void StartWatchdog(const WatchdogOptions& options);

/// Stop and join the watchdog thread. Safe if not running.
void StopWatchdog();

// --- Test support ---------------------------------------------------------

/// Drop all rings/names/positions and re-arm (re-reading CGDNN_BLACKBOX*
/// environment). Threads re-register lazily on their next Record. Test-only:
/// must not race live producers.
void ResetForTest();

/// Ring capacity (events per thread) currently in effect.
std::uint64_t RingCapacityForTest();

#else  // !CGDNN_BLACKBOX_ENABLED

inline bool Enabled() { return false; }
inline void Record(EventKind, const char*, std::uint64_t = 0,
                   std::uint64_t = 0) {}
inline void PushPosition(EventKind, const char*, std::uint64_t = 0,
                         std::uint64_t = 0) {}
inline void PopPosition(EventKind, const char*, std::uint64_t = 0,
                        std::uint64_t = 0) {}
class ScopedPosition {
 public:
  ScopedPosition(EventKind, EventKind, const char*, std::uint64_t = 0) {}
};
inline void BeginSolverIteration(std::uint64_t) {}
inline void EndSolverIteration(std::uint64_t, double) {}
inline void InstallCrashHandlers(const std::string& = "") {}
inline bool DumpNow(DumpReason) { return false; }
inline std::string DumpPath() { return {}; }
struct WatchdogOptions {
  std::uint64_t deadline_ns = 0;
  bool abort_on_stall = true;
  void (*on_stall)(const char*, std::uint64_t) = nullptr;
};
inline void StartWatchdog(const WatchdogOptions&) {}
inline void StopWatchdog() {}
inline void ResetForTest() {}
inline std::uint64_t RingCapacityForTest() { return 0; }

#endif  // CGDNN_BLACKBOX_ENABLED

}  // namespace cgdnn::blackbox
