#include "cgdnn/blackbox/blackbox.hpp"

#if CGDNN_BLACKBOX_ENABLED

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cgdnn/blackbox/dump_format.hpp"
#include "cgdnn/core/buildinfo.hpp"
#include "cgdnn/core/common.hpp"
#include "cgdnn/core/thread_annotations.hpp"

namespace cgdnn::blackbox {

namespace {

// Static budgets. Everything the crash handler touches is preallocated and
// fixed-size: the handler must not malloc, lock, or run constructors.
constexpr std::uint32_t kMaxThreads = 256;
constexpr std::uint32_t kMaxNames = 512;
constexpr std::uint32_t kNameHashSize = 1024;  // power of two, > 2*kMaxNames
constexpr std::uint32_t kMaxDepth = 4;
constexpr std::uint64_t kDefaultRingEvents = 4096;

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "ring slots must be plain words for the write(2) dump path");
static_assert(sizeof(std::atomic<std::uint64_t>) == sizeof(std::uint64_t));

/// One thread's event ring plus its watchdog-visible position stack.
/// Producer: the owning thread (relaxed word stores, release head publish).
/// Consumers: crash handler / watchdog (acquire head, relaxed word loads) —
/// they only read, so SPSC discipline holds.
struct Ring {
  explicit Ring(std::uint32_t tid_in, std::uint64_t capacity_in)
      : tid(tid_in),
        capacity(capacity_in),
        mask(capacity_in - 1),
        words(new std::atomic<std::uint64_t>[capacity_in * 4]()) {}

  const std::uint32_t tid;
  const std::uint64_t capacity;  // power of two
  const std::uint64_t mask;
  std::atomic<std::uint64_t> head{0};  // total events ever recorded
  std::atomic<std::uint64_t> last_event_ns{0};
  std::atomic<std::uint32_t> depth{0};  // open positions (may exceed kMaxDepth)
  std::atomic<std::uint64_t> pos_packed[kMaxDepth] = {};  // (name_id<<32)|kind
  std::atomic<std::uint64_t> pos_t_ns[kMaxDepth] = {};
  std::unique_ptr<std::atomic<std::uint64_t>[]> words;  // 4 per slot
};

// --- Global recorder state ------------------------------------------------

// Armed state: 0 = not yet read from environment, 1 = on, 2 = off.
std::atomic<int> g_armed{0};
std::atomic<std::uint64_t> g_generation{1};  // bumped by ResetForTest
Mutex g_register_mutex;  // thread registration + arming (cold paths)
std::uint64_t g_capacity CGDNN_GUARDED_BY(g_register_mutex) =
    kDefaultRingEvents;
std::atomic<Ring*> g_rings[kMaxThreads] = {};
std::atomic<std::uint32_t> g_ring_count{0};
std::vector<std::unique_ptr<Ring>> g_ring_owner
    CGDNN_GUARDED_BY(g_register_mutex);

// Interned names. The char table is what the dump writer emits verbatim;
// the hash table maps name *content* (not pointers — span names are
// dynamically built strings) to ids lock-free. Slot values are shifted so
// zero-initialized storage reads as empty:
//   0 = empty, 1 = claiming (winner is copying the name), v >= 2 = id v-2.
char g_names[kMaxNames][64] = {};
std::atomic<std::uint32_t> g_name_count{0};
std::atomic<std::uint32_t> g_name_slots[kNameHashSize] = {};
constexpr std::uint32_t kSlotEmpty = 0;
constexpr std::uint32_t kSlotClaiming = 1;

// Solver heartbeat slot (one solver per process is the repo's model).
std::atomic<std::uint64_t> g_solver_iter{kNoIteration};
std::atomic<std::uint64_t> g_solver_begin_ns{0};
std::atomic<bool> g_solver_open{false};

// Dump machinery. First dump wins: a watchdog dump must not be clobbered by
// the SIGABRT the watchdog then raises, and a crashing thread must not race
// a second crashing thread.
std::atomic<bool> g_dumped{false};
std::atomic<bool> g_prepared{false};  // path + meta buffers ready
char g_dump_path[1024] = {};
char g_meta[2048] = {};
std::uint64_t g_meta_len = 0;
bool g_handlers_installed CGDNN_GUARDED_BY(g_register_mutex) = false;

// Fault injection (drills). Read from the environment at arming time.
bool g_inject_any = false;
char g_crash_region[64] = {};
bool g_crash_in_iter = false;  // CGDNN_BLACKBOX_CRASH_IN_ITERATION
char g_stall_region[64] = {};
std::uint64_t g_stall_ms = 0;
std::atomic<bool> g_stall_done{false};

// Per-thread state. Constant-initialized POD: no TLS guard, safe to read
// from a signal handler once the thread has recorded at least one event.
struct ThreadState {
  Ring* ring;
  std::uint64_t generation;
  std::uint32_t tid;
};
thread_local ThreadState t_state{nullptr, 0, kNoThread};

bool ArmSlow() {
  LockGuard lock(g_register_mutex);
  int armed = g_armed.load(std::memory_order_relaxed);
  if (armed != 0) return armed == 1;

  const char* env = std::getenv("CGDNN_BLACKBOX");
  bool on = true;
  if (env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
       std::strcmp(env, "false") == 0)) {
    on = false;
  }

  g_capacity = kDefaultRingEvents;
  if (const char* cap = std::getenv("CGDNN_BLACKBOX_RING")) {
    const std::uint64_t parsed = std::strtoull(cap, nullptr, 10);
    if (parsed >= 16) g_capacity = parsed;
  }
  g_capacity = std::bit_ceil(g_capacity);

  g_crash_region[0] = '\0';
  g_stall_region[0] = '\0';
  g_stall_ms = 0;
  if (const char* r = std::getenv("CGDNN_BLACKBOX_CRASH_REGION")) {
    std::strncpy(g_crash_region, r, sizeof(g_crash_region) - 1);
    // Hold the crash until a solver iteration is open, so the dump also
    // carries the "last solver iteration" forensics the drill asserts on
    // (setup/warmup passes hit the region first otherwise).
    g_crash_in_iter =
        std::getenv("CGDNN_BLACKBOX_CRASH_IN_ITERATION") != nullptr;
  }
  if (const char* r = std::getenv("CGDNN_BLACKBOX_STALL_REGION")) {
    std::strncpy(g_stall_region, r, sizeof(g_stall_region) - 1);
    if (const char* ms = std::getenv("CGDNN_BLACKBOX_STALL_MS")) {
      g_stall_ms = std::strtoull(ms, nullptr, 10);
    }
    if (g_stall_ms == 0) g_stall_ms = 2000;
  }
  g_inject_any = g_crash_region[0] != '\0' || g_stall_region[0] != '\0';

  // Reserve the last name slot as the overflow bucket so Record never has
  // to fail when the intern table fills up.
  std::strncpy(g_names[kMaxNames - 1], "<overflow>",
               sizeof(g_names[kMaxNames - 1]) - 1);

  g_armed.store(on ? 1 : 2, std::memory_order_release);
  return on;
}

inline bool Armed() {
  const int armed = g_armed.load(std::memory_order_acquire);
  if (armed != 0) return armed == 1;
  return ArmSlow();
}

Ring* RegisterThread() {
  LockGuard lock(g_register_mutex);
  const std::uint32_t idx = g_ring_count.load(std::memory_order_relaxed);
  if (idx >= kMaxThreads) return nullptr;
  auto ring = std::make_unique<Ring>(idx, g_capacity);
  Ring* raw = ring.get();
  g_ring_owner.push_back(std::move(ring));
  g_rings[idx].store(raw, std::memory_order_release);
  g_ring_count.store(idx + 1, std::memory_order_release);
  t_state = {raw, g_generation.load(std::memory_order_relaxed), idx};
  return raw;
}

inline Ring* CurrentRing() {
  Ring* ring = t_state.ring;
  if (ring != nullptr &&
      t_state.generation == g_generation.load(std::memory_order_relaxed)) {
    return ring;
  }
  return RegisterThread();
}

std::uint32_t InternName(const char* name) {
  // Open-addressed content hash. Names are short (<64 chars, truncated to
  // the table width) and few (tens of call sites), so the fast path is one
  // FNV hash and one probe; no locks anywhere.
  std::uint64_t h = 0xcbf29ce484222325ull;
  std::size_t len = 0;
  for (const char* p = name; *p != '\0' && len < 63; ++p, ++len) {
    h = (h ^ static_cast<unsigned char>(*p)) * 0x100000001b3ull;
  }
  for (std::uint32_t probe = 0; probe < kNameHashSize; ++probe) {
    const std::uint32_t slot =
        static_cast<std::uint32_t>(h + probe) & (kNameHashSize - 1);
    std::uint32_t existing = g_name_slots[slot].load(std::memory_order_acquire);
    if (existing == kSlotEmpty) {
      if (g_name_slots[slot].compare_exchange_strong(
              existing, kSlotClaiming, std::memory_order_acq_rel)) {
        std::uint32_t id = g_name_count.fetch_add(1, std::memory_order_relaxed);
        if (id >= kMaxNames - 1) {
          id = kMaxNames - 1;  // shared overflow bucket
        } else {
          std::memcpy(g_names[id], name, len);  // table is zero-initialized
        }
        g_name_slots[slot].store(id + 2, std::memory_order_release);
        return id;
      }
    }
    while ((existing = g_name_slots[slot].load(std::memory_order_acquire)) ==
           kSlotClaiming) {
      // The claiming thread is between CAS and publication; momentary.
    }
    const std::uint32_t id = existing - 2;
    if (std::strncmp(g_names[id], name, 63) == 0) return id;
    // A different name hashed to this slot: keep probing.
  }
  return kMaxNames - 1;
}

inline void RecordInRing(Ring* ring, EventKind kind, std::uint32_t name_id,
                         std::uint64_t t_ns, std::uint64_t a,
                         std::uint64_t b) {
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  std::atomic<std::uint64_t>* w = &ring->words[(head & ring->mask) * 4];
  w[0].store(t_ns, std::memory_order_relaxed);
  w[1].store(PackEvent(static_cast<std::uint16_t>(kind), ring->tid, name_id),
             std::memory_order_relaxed);
  w[2].store(a, std::memory_order_relaxed);
  w[3].store(b, std::memory_order_relaxed);
  ring->last_event_ns.store(t_ns, std::memory_order_relaxed);
  ring->head.store(head + 1, std::memory_order_release);
}

void MaybeInject(EventKind kind, const char* name) {
  if (kind == EventKind::kChunkBegin && g_crash_region[0] != '\0' &&
      t_state.tid == 0 && std::strcmp(name, g_crash_region) == 0 &&
      (!g_crash_in_iter || g_solver_open.load(std::memory_order_relaxed))) {
    volatile int* null_page = nullptr;
    *null_page = 42;  // SIGSEGV mid-region, by request (crash drill)
  }
  if ((kind == EventKind::kMergeBegin || kind == EventKind::kChunkBegin) &&
      g_stall_region[0] != '\0' && std::strcmp(name, g_stall_region) == 0 &&
      !g_stall_done.exchange(true, std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(g_stall_ms));
  }
}

// --- Dump writing ---------------------------------------------------------

bool WriteFull(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Single static batch buffer for event copy-out. Safe without locking:
/// g_dumped guarantees at most one dump ever runs.
EventRecord g_scratch[256];

/// The actual dump. Async-signal-safe: open/write/close, static tables,
/// stack PODs — no allocation, locks, or iostreams. Caller must have won
/// the g_dumped exchange and ensured g_prepared (path + meta) beforehand.
bool WriteDump(DumpReason reason, int signo, std::uint32_t crash_tid) {
  const int fd =
      ::open(g_dump_path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return false;

  const std::uint32_t nthreads =
      std::min(g_ring_count.load(std::memory_order_acquire), kMaxThreads);
  const std::uint32_t nnames =
      std::min(g_name_count.load(std::memory_order_acquire), kMaxNames);

  DumpHeader hdr = {};
  std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
  hdr.version = kFormatVersion;
  hdr.reason = static_cast<std::uint32_t>(reason);
  hdr.pid = static_cast<std::uint64_t>(::getpid());
  hdr.dump_t_ns = MonotonicNowNs();
  hdr.thread_count = nthreads;
  hdr.name_count = nnames;
  hdr.crash_tid = crash_tid;
  hdr.signo = static_cast<std::uint32_t>(signo);
  hdr.solver_iter = g_solver_iter.load(std::memory_order_relaxed);
  hdr.meta_bytes = g_meta_len;

  bool ok = WriteFull(fd, &hdr, sizeof(hdr));
  ok = ok && WriteFull(fd, g_meta, g_meta_len);
  ok = ok && WriteFull(fd, g_names, static_cast<std::size_t>(nnames) * 64);

  for (std::uint32_t t = 0; ok && t < nthreads; ++t) {
    Ring* ring = g_rings[t].load(std::memory_order_acquire);
    if (ring == nullptr) break;  // registration raced the dump; stop here

    ThreadHeader th = {};
    th.tid = ring->tid;
    th.head = ring->head.load(std::memory_order_acquire);
    th.capacity = ring->capacity;
    th.last_event_ns = ring->last_event_ns.load(std::memory_order_relaxed);
    th.position_depth =
        std::min(ring->depth.load(std::memory_order_acquire), kMaxDepth);
    for (std::uint32_t d = 0; d < th.position_depth; ++d) {
      th.position[d] = ring->pos_packed[d].load(std::memory_order_relaxed);
      th.position_t_ns[d] = ring->pos_t_ns[d].load(std::memory_order_relaxed);
    }
    ok = WriteFull(fd, &th, sizeof(th));

    const std::uint64_t count = std::min(th.head, ring->capacity);
    const std::uint64_t start = th.head - count;
    std::uint64_t written = 0;
    while (ok && written < count) {
      const std::uint64_t batch =
          std::min<std::uint64_t>(count - written, 256);
      for (std::uint64_t i = 0; i < batch; ++i) {
        const std::uint64_t slot = (start + written + i) & ring->mask;
        std::atomic<std::uint64_t>* w = &ring->words[slot * 4];
        g_scratch[i].t_ns = w[0].load(std::memory_order_relaxed);
        g_scratch[i].packed = w[1].load(std::memory_order_relaxed);
        g_scratch[i].a = w[2].load(std::memory_order_relaxed);
        g_scratch[i].b = w[3].load(std::memory_order_relaxed);
      }
      ok = WriteFull(fd, g_scratch,
                     static_cast<std::size_t>(batch) * sizeof(EventRecord));
      written += batch;
    }
  }
  ::close(fd);
  return ok;
}

/// Build the dump path and meta JSON buffers. NOT signal-safe (snprintf,
/// string building) — called from InstallCrashHandlers / DumpNow, which run
/// in normal context; the signal handler only ever reads the result.
void PrepareDump(const char* requested_path) {
  if (requested_path != nullptr && requested_path[0] != '\0') {
    const std::size_t len = std::strlen(requested_path);
    if (requested_path[len - 1] == '/') {
      std::snprintf(g_dump_path, sizeof(g_dump_path), "%sblackbox-%d.bin",
                    requested_path, static_cast<int>(::getpid()));
    } else {
      std::snprintf(g_dump_path, sizeof(g_dump_path), "%s", requested_path);
    }
  } else if (g_dump_path[0] == '\0') {
    std::snprintf(g_dump_path, sizeof(g_dump_path), "blackbox-%d.bin",
                  static_cast<int>(::getpid()));
  }
  const std::string meta = buildinfo::MetaJson();
  g_meta_len = std::min(meta.size(), sizeof(g_meta));
  std::memcpy(g_meta, meta.data(), g_meta_len);
  g_prepared.store(true, std::memory_order_release);
}

void EnsurePrepared() {
  if (g_prepared.load(std::memory_order_acquire)) return;
  LockGuard lock(g_register_mutex);
  if (!g_prepared.load(std::memory_order_relaxed)) PrepareDump(nullptr);
}

extern "C" void CgdnnBlackboxOnFatalSignal(int signo) {
  if (!g_dumped.exchange(true, std::memory_order_acq_rel) &&
      g_prepared.load(std::memory_order_acquire)) {
    WriteDump(DumpReason::kSignal, signo, t_state.tid);
  }
  // Restore the default disposition and re-deliver so the process still
  // dies (and cores) the way it would have without us.
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

// --- Watchdog -------------------------------------------------------------

struct Watchdog {
  std::thread thread;
  std::atomic<bool> stop{false};
  WatchdogOptions options;
  bool running CGDNN_GUARDED_BY(g_register_mutex) = false;
};
Watchdog g_watchdog;

void ReportStall(const char* site, std::uint64_t age_ns) {
  if (g_watchdog.options.on_stall != nullptr) {
    g_watchdog.options.on_stall(site, age_ns);
  }
  DumpNow(DumpReason::kWatchdog);
  if (g_watchdog.options.abort_on_stall) {
    // g_dumped is already set, so the SIGABRT handler cannot clobber the
    // forensics we just wrote.
    std::fprintf(stderr,
                 "cgdnn_blackbox: watchdog stall at %s (%.1fs); dump: %s\n",
                 site, static_cast<double>(age_ns) * 1e-9, g_dump_path);
    std::abort();
  }
}

void WatchdogLoop() {
  const std::uint64_t deadline = g_watchdog.options.deadline_ns;
  const auto poll = std::chrono::nanoseconds(
      std::min<std::uint64_t>(deadline / 4, 250'000'000ull));
  while (!g_watchdog.stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(poll);
    if (g_watchdog.stop.load(std::memory_order_acquire)) return;

    const std::uint64_t now = MonotonicNowNs();
    const std::uint32_t nthreads =
        std::min(g_ring_count.load(std::memory_order_acquire), kMaxThreads);

    // A stall is OPEN work with no progress: we age a position against the
    // later of its entry time and the thread's most recent event, so a
    // long-but-active region never trips. An idle process (no open
    // positions, no open iteration) can never trip.
    std::uint64_t global_last = 0;
    for (std::uint32_t t = 0; t < nthreads; ++t) {
      Ring* ring = g_rings[t].load(std::memory_order_acquire);
      if (ring == nullptr) continue;
      global_last = std::max(
          global_last, ring->last_event_ns.load(std::memory_order_relaxed));
    }

    char site[160];
    for (std::uint32_t t = 0; t < nthreads; ++t) {
      Ring* ring = g_rings[t].load(std::memory_order_acquire);
      if (ring == nullptr) continue;
      const std::uint32_t depth =
          std::min(ring->depth.load(std::memory_order_acquire), kMaxDepth);
      const std::uint64_t last =
          ring->last_event_ns.load(std::memory_order_relaxed);
      // Innermost-first: every enclosing position of a stalled site is
      // stale too, but the deepest one names where the thread actually is.
      for (std::uint32_t d = depth; d-- > 0;) {
        const std::uint64_t packed =
            ring->pos_packed[d].load(std::memory_order_relaxed);
        const std::uint64_t since =
            ring->pos_t_ns[d].load(std::memory_order_relaxed);
        const std::uint64_t ref = std::max(since, last);
        if (now <= ref + deadline) continue;
        const std::uint32_t name_id =
            static_cast<std::uint32_t>(packed >> 32);
        const char* name = name_id < kMaxNames ? g_names[name_id] : "?";
        std::snprintf(site, sizeof(site), "%s [%s] tid=%u", name,
                      KindName(static_cast<EventKind>(
                          static_cast<std::uint16_t>(packed))),
                      ring->tid);
        ReportStall(site, now - ref);
        return;  // one trip per watchdog lifetime
      }
    }

    if (g_solver_open.load(std::memory_order_acquire)) {
      const std::uint64_t ref = std::max(
          g_solver_begin_ns.load(std::memory_order_relaxed), global_last);
      if (now > ref + deadline) {
        std::snprintf(site, sizeof(site), "solver iteration %llu",
                      static_cast<unsigned long long>(
                          g_solver_iter.load(std::memory_order_relaxed)));
        ReportStall(site, now - ref);
        return;
      }
    }
  }
}

}  // namespace

const char* KindName(EventKind kind) {
  switch (kind) {
    case EventKind::kSpanBegin: return "span_begin";
    case EventKind::kSpanEnd: return "span_end";
    case EventKind::kRegionBegin: return "region_begin";
    case EventKind::kRegionEnd: return "region_end";
    case EventKind::kChunkBegin: return "chunk_begin";
    case EventKind::kChunkEnd: return "chunk_end";
    case EventKind::kMergeBegin: return "merge_begin";
    case EventKind::kMergeEnd: return "merge_end";
    case EventKind::kSolverIterBegin: return "solver_iter_begin";
    case EventKind::kSolverIterEnd: return "solver_iter_end";
    case EventKind::kCheckpointBegin: return "checkpoint_begin";
    case EventKind::kCheckpointEnd: return "checkpoint_end";
    case EventKind::kViolation: return "violation";
    case EventKind::kLayerBegin: return "layer_begin";
    case EventKind::kLayerEnd: return "layer_end";
    default: return "unknown";
  }
}

bool Enabled() { return Armed(); }

void Record(EventKind kind, const char* name, std::uint64_t a,
            std::uint64_t b) {
  if (!Armed()) return;
  Ring* ring = CurrentRing();
  if (ring == nullptr) return;
  RecordInRing(ring, kind, InternName(name), MonotonicNowNs(), a, b);
}

void PushPosition(EventKind begin_kind, const char* name, std::uint64_t a,
                  std::uint64_t b) {
  if (!Armed()) return;
  Ring* ring = CurrentRing();
  if (ring == nullptr) return;
  const std::uint64_t now = MonotonicNowNs();
  const std::uint32_t name_id = InternName(name);
  RecordInRing(ring, begin_kind, name_id, now, a, b);
  const std::uint32_t depth = ring->depth.load(std::memory_order_relaxed);
  if (depth < kMaxDepth) {
    ring->pos_packed[depth].store(
        (static_cast<std::uint64_t>(name_id) << 32) |
            static_cast<std::uint16_t>(begin_kind),
        std::memory_order_relaxed);
    ring->pos_t_ns[depth].store(now, std::memory_order_relaxed);
  }
  ring->depth.store(depth + 1, std::memory_order_release);
  if (g_inject_any) MaybeInject(begin_kind, name);
}

void PopPosition(EventKind end_kind, const char* name, std::uint64_t a,
                 std::uint64_t b) {
  if (!Armed()) return;
  Ring* ring = CurrentRing();
  if (ring == nullptr) return;
  RecordInRing(ring, end_kind, InternName(name), MonotonicNowNs(), a, b);
  const std::uint32_t depth = ring->depth.load(std::memory_order_relaxed);
  if (depth > 0) ring->depth.store(depth - 1, std::memory_order_release);
}

void BeginSolverIteration(std::uint64_t iter) {
  if (!Armed()) return;
  g_solver_iter.store(iter, std::memory_order_relaxed);
  g_solver_begin_ns.store(MonotonicNowNs(), std::memory_order_relaxed);
  g_solver_open.store(true, std::memory_order_release);
  Record(EventKind::kSolverIterBegin, "solver.iteration", iter);
}

void EndSolverIteration(std::uint64_t iter, double loss) {
  if (!Armed()) return;
  Record(EventKind::kSolverIterEnd, "solver.iteration", iter,
         std::bit_cast<std::uint64_t>(loss));
  g_solver_open.store(false, std::memory_order_release);
}

void InstallCrashHandlers(const std::string& dump_path) {
  if (!Armed()) return;
  LockGuard lock(g_register_mutex);
  PrepareDump(dump_path.c_str());
  if (g_handlers_installed) return;
  struct sigaction action = {};
  action.sa_handler = &CgdnnBlackboxOnFatalSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  for (const int signo : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT}) {
    ::sigaction(signo, &action, nullptr);
  }
  g_handlers_installed = true;
}

bool DumpNow(DumpReason reason) {
  if (!Armed()) return false;
  EnsurePrepared();
  if (g_dumped.exchange(true, std::memory_order_acq_rel)) return false;
  return WriteDump(reason, 0, kNoThread);
}

std::string DumpPath() {
  if (!Armed()) return {};
  EnsurePrepared();
  return g_dump_path;
}

void StartWatchdog(const WatchdogOptions& options) {
  if (!Armed() || options.deadline_ns == 0) return;
  LockGuard lock(g_register_mutex);
  if (g_watchdog.running) return;
  g_watchdog.options = options;
  g_watchdog.stop.store(false, std::memory_order_release);
  g_watchdog.thread = std::thread(WatchdogLoop);
  g_watchdog.running = true;
}

void StopWatchdog() {
  std::thread joinable;
  {
    LockGuard lock(g_register_mutex);
    if (!g_watchdog.running) return;
    g_watchdog.stop.store(true, std::memory_order_release);
    joinable = std::move(g_watchdog.thread);
    g_watchdog.running = false;
  }
  joinable.join();
}

void ResetForTest() {
  StopWatchdog();
  LockGuard lock(g_register_mutex);
  for (auto& slot : g_rings) slot.store(nullptr, std::memory_order_relaxed);
  g_ring_count.store(0, std::memory_order_relaxed);
  g_ring_owner.clear();
  for (auto& slot : g_name_slots) {
    slot.store(kSlotEmpty, std::memory_order_relaxed);
  }
  std::memset(g_names, 0, sizeof(g_names));
  g_name_count.store(0, std::memory_order_relaxed);
  g_solver_iter.store(kNoIteration, std::memory_order_relaxed);
  g_solver_open.store(false, std::memory_order_relaxed);
  g_dumped.store(false, std::memory_order_relaxed);
  g_prepared.store(false, std::memory_order_relaxed);
  g_dump_path[0] = '\0';
  g_stall_done.store(false, std::memory_order_relaxed);
  // Bump the generation so live threads' cached ring pointers re-register,
  // then re-read the environment on the next Armed() call.
  g_generation.fetch_add(1, std::memory_order_relaxed);
  g_armed.store(0, std::memory_order_release);
}

std::uint64_t RingCapacityForTest() {
  if (!Armed()) return 0;
  LockGuard lock(g_register_mutex);
  return g_capacity;
}

}  // namespace cgdnn::blackbox

#else  // !CGDNN_BLACKBOX_ENABLED

namespace cgdnn::blackbox {

const char* KindName(EventKind) { return "unknown"; }

}  // namespace cgdnn::blackbox

#endif  // CGDNN_BLACKBOX_ENABLED
