#include "cgdnn/layers/lrn_layer.hpp"

#include <cmath>

#include "cgdnn/parallel/coalesce.hpp"

namespace cgdnn {

template <typename Dtype>
void LRNLayer<Dtype>::LayerSetUp(const std::vector<Blob<Dtype>*>& bottom,
                                 const std::vector<Blob<Dtype>*>& top) {
  (void)bottom;
  (void)top;
  const auto& p = this->layer_param_.lrn_param;
  CGDNN_CHECK(p.norm_region ==
              proto::LRNParameter::NormRegion::kAcrossChannels)
      << "only ACROSS_CHANNELS LRN is implemented";
  size_ = p.local_size;
  CGDNN_CHECK_EQ(size_ % 2, 1) << "LRN local_size must be odd";
  alpha_ = static_cast<Dtype>(p.alpha);
  beta_ = static_cast<Dtype>(p.beta);
  k_ = static_cast<Dtype>(p.k);
}

template <typename Dtype>
void LRNLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                              const std::vector<Blob<Dtype>*>& top) {
  num_ = bottom[0]->num();
  channels_ = bottom[0]->channels();
  height_ = bottom[0]->height();
  width_ = bottom[0]->width();
  top[0]->ReshapeLike(*bottom[0]);
  scale_.ReshapeLike(*bottom[0]);
}

template <typename Dtype>
void LRNLayer<Dtype>::ForwardRow(const Dtype* bottom_n, Dtype* top_n,
                                 Dtype* scale_n, index_t y) const {
  const index_t plane = height_ * width_;
  const index_t half = (size_ - 1) / 2;
  const Dtype alpha_over_size = alpha_ / static_cast<Dtype>(size_);
  for (index_t x = 0; x < width_; ++x) {
    const index_t pos = y * width_ + x;
    for (index_t c = 0; c < channels_; ++c) {
      const index_t lo = std::max<index_t>(0, c - half);
      const index_t hi = std::min(channels_ - 1, c + half);
      Dtype accum = 0;
      for (index_t cc = lo; cc <= hi; ++cc) {
        const Dtype v = bottom_n[cc * plane + pos];
        accum += v * v;
      }
      const Dtype s = k_ + alpha_over_size * accum;
      scale_n[c * plane + pos] = s;
      top_n[c * plane + pos] =
          bottom_n[c * plane + pos] * std::pow(s, -beta_);
    }
  }
}

template <typename Dtype>
void LRNLayer<Dtype>::BackwardRow(const Dtype* bottom_n, const Dtype* top_n,
                                  const Dtype* scale_n,
                                  const Dtype* top_diff_n,
                                  Dtype* bottom_diff_n, index_t y) const {
  const index_t plane = height_ * width_;
  const index_t half = (size_ - 1) / 2;
  const Dtype cache_ratio =
      Dtype(2) * alpha_ * beta_ / static_cast<Dtype>(size_);
  for (index_t x = 0; x < width_; ++x) {
    const index_t pos = y * width_ + x;
    for (index_t c = 0; c < channels_; ++c) {
      // dL/dx(c) = dL/dy(c) * scale(c)^-beta
      //          - cache_ratio * x(c) * sum_{c': c in window(c')}
      //              dL/dy(c') * y(c') / scale(c')
      const index_t lo = std::max<index_t>(0, c - half);
      const index_t hi = std::min(channels_ - 1, c + half);
      Dtype accum = 0;
      for (index_t cc = lo; cc <= hi; ++cc) {
        const index_t idx = cc * plane + pos;
        accum += top_diff_n[idx] * top_n[idx] / scale_n[idx];
      }
      const index_t idx = c * plane + pos;
      bottom_diff_n[idx] =
          top_diff_n[idx] * std::pow(scale_n[idx], -beta_) -
          cache_ratio * bottom_n[idx] * accum;
    }
  }
}

template <typename Dtype>
void LRNLayer<Dtype>::Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                                  const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  Dtype* top_data = top[0]->mutable_cpu_data();
  Dtype* scale_data = scale_.mutable_cpu_data();
  const index_t sample = channels_ * height_ * width_;
  for (index_t n = 0; n < num_; ++n) {
    for (index_t y = 0; y < height_; ++y) {
      ForwardRow(bottom_data + n * sample, top_data + n * sample,
                 scale_data + n * sample, y);
    }
  }
}

template <typename Dtype>
void LRNLayer<Dtype>::Forward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  Dtype* top_data = top[0]->mutable_cpu_data();
  Dtype* scale_data = scale_.mutable_cpu_data();
  const index_t sample = channels_ * height_ * width_;
  const int nthreads = parallel::Parallel::ResolveThreads();
  // LRN coalesces (N, H) — the channel window forbids splitting C, so its
  // data-thread distribution differs from conv/pool neighbours (the
  // locality effect discussed in §4.2.1).
  if (parallel::Parallel::Config().coalesce) {
    const parallel::CoalescedRange range{num_, height_};
#pragma omp parallel for num_threads(nthreads) schedule(static)
    for (index_t civ = 0; civ < range.total(); ++civ) {
      const auto idx = range.Decode(civ);
      ForwardRow(bottom_data + idx[0] * sample, top_data + idx[0] * sample,
                 scale_data + idx[0] * sample, idx[1]);
    }
  } else {
#pragma omp parallel for num_threads(nthreads) schedule(static)
    for (index_t n = 0; n < num_; ++n) {
      for (index_t y = 0; y < height_; ++y) {
        ForwardRow(bottom_data + n * sample, top_data + n * sample,
                   scale_data + n * sample, y);
      }
    }
  }
}

template <typename Dtype>
void LRNLayer<Dtype>::Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                                   const std::vector<bool>& propagate_down,
                                   const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  const Dtype* bottom_data = bottom[0]->cpu_data();
  const Dtype* top_data = top[0]->cpu_data();
  const Dtype* scale_data = scale_.cpu_data();
  const Dtype* top_diff = top[0]->cpu_diff();
  Dtype* bottom_diff = bottom[0]->mutable_cpu_diff();
  const index_t sample = channels_ * height_ * width_;
  for (index_t n = 0; n < num_; ++n) {
    for (index_t y = 0; y < height_; ++y) {
      BackwardRow(bottom_data + n * sample, top_data + n * sample,
                  scale_data + n * sample, top_diff + n * sample,
                  bottom_diff + n * sample, y);
    }
  }
}

template <typename Dtype>
void LRNLayer<Dtype>::Backward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  const Dtype* bottom_data = bottom[0]->cpu_data();
  const Dtype* top_data = top[0]->cpu_data();
  const Dtype* scale_data = scale_.cpu_data();
  const Dtype* top_diff = top[0]->cpu_diff();
  Dtype* bottom_diff = bottom[0]->mutable_cpu_diff();
  const index_t sample = channels_ * height_ * width_;
  const int nthreads = parallel::Parallel::ResolveThreads();
  if (parallel::Parallel::Config().coalesce) {
    const parallel::CoalescedRange range{num_, height_};
#pragma omp parallel for num_threads(nthreads) schedule(static)
    for (index_t civ = 0; civ < range.total(); ++civ) {
      const auto idx = range.Decode(civ);
      BackwardRow(bottom_data + idx[0] * sample, top_data + idx[0] * sample,
                  scale_data + idx[0] * sample, top_diff + idx[0] * sample,
                  bottom_diff + idx[0] * sample, idx[1]);
    }
  } else {
#pragma omp parallel for num_threads(nthreads) schedule(static)
    for (index_t n = 0; n < num_; ++n) {
      for (index_t y = 0; y < height_; ++y) {
        BackwardRow(bottom_data + n * sample, top_data + n * sample,
                    scale_data + n * sample, top_diff + n * sample,
                    bottom_diff + n * sample, y);
      }
    }
  }
}

template class LRNLayer<float>;
template class LRNLayer<double>;

}  // namespace cgdnn
