// ConvolutionLayer: im2col + GEMM convolution, the dominant layer of both
// evaluation networks (≈80% of MNIST iteration time, Fig. 4).
//
// Coarse-grain parallelization (paper §3.2.1): the batch loop is the
// parallel loop — each sample's im2col lowering and GEMMs are independent,
// so the forward pass needs only a per-thread column buffer. The backward
// pass additionally privatizes the weight/bias gradient accumulators and
// merges them with the configured GradientMerge strategy.
#pragma once

#include "cgdnn/blas/direct_conv.hpp"
#include "cgdnn/layers/layer.hpp"

namespace cgdnn {

/// Per-phase conv execution strategy, chosen by the planner's cost model.
/// kIm2colGemm materializes the column matrix; kDirect gathers it
/// implicitly while packing (blas/direct_conv.hpp). Both are bit-identical.
enum class ConvStrategy { kIm2colGemm = 0, kDirect = 1 };

template <typename Dtype>
class ConvolutionLayer : public Layer<Dtype> {
 public:
  explicit ConvolutionLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}

  void LayerSetUp(const std::vector<Blob<Dtype>*>& bottom,
                  const std::vector<Blob<Dtype>*>& top) override;
  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;

  const char* type() const override { return "Convolution"; }
  int ExactNumBottomBlobs() const override { return 1; }
  int ExactNumTopBlobs() const override { return 1; }

  index_t out_height() const { return out_h_; }
  index_t out_width() const { return out_w_; }

  bool SupportsFusedEpilogue() const override { return true; }

  /// This layer's per-sample geometry for the planner's cost model and the
  /// direct kernels. Valid after Reshape.
  blas::ConvGeom geom() const;
  /// True when the direct (implicit-im2col) kernels cover this layer's
  /// shape (group == 1, no dilation).
  bool DirectSupported() const;
  index_t num_output() const { return num_output_; }
  index_t col_count() const { return col_count_; }

  // Planner hooks: strategies default to kIm2colGemm (the unplanned
  // behavior); set from serial code only.
  ConvStrategy forward_strategy() const { return forward_strategy_; }
  ConvStrategy backward_weights_strategy() const {
    return backward_weights_strategy_;
  }
  void set_forward_strategy(ConvStrategy s) { forward_strategy_ = s; }
  void set_backward_weights_strategy(ConvStrategy s) {
    backward_weights_strategy_ = s;
  }
  /// Points the serial-path column buffer at an arena slot (count >=
  /// col_count()) instead of the layer's private lazily-grown blob; nullptr
  /// reverts to the private buffer.
  void BindSerialColBuffer(Dtype* slot, index_t count);

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;
  void Forward_cpu_parallel(const std::vector<Blob<Dtype>*>& bottom,
                            const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu_parallel(const std::vector<Blob<Dtype>*>& top,
                             const std::vector<bool>& propagate_down,
                             const std::vector<Blob<Dtype>*>& bottom) override;

 private:
  // One sample's forward/backward kernels, shared by the serial and
  // parallel paths (`col` is the caller-provided column buffer).
  void ForwardSample(const Dtype* bottom_data, Dtype* top_data,
                     Dtype* col) const;
  void BackwardSampleWeights(const Dtype* bottom_data, const Dtype* top_diff,
                             Dtype* weight_diff, Dtype* bias_diff,
                             Dtype* col) const;
  void BackwardSampleBottom(const Dtype* top_diff, Dtype* bottom_diff,
                            Dtype* col) const;
  void Im2ColSample(const Dtype* bottom_data, Dtype* col) const;
  /// Lazily (re)shapes the member column buffer; only the serial paths call
  /// this — the parallel paths use per-thread pool buffers instead.
  Dtype* SerialColBuffer();

  index_t num_output_ = 0;
  bool bias_term_ = true;
  index_t kernel_h_ = 0, kernel_w_ = 0;
  index_t stride_h_ = 1, stride_w_ = 1;
  index_t pad_h_ = 0, pad_w_ = 0;
  index_t dilation_ = 1;
  index_t group_ = 1;

  index_t channels_ = 0, height_ = 0, width_ = 0;
  index_t num_ = 0;
  index_t out_h_ = 0, out_w_ = 0;
  index_t out_spatial_ = 0;
  index_t kernel_dim_ = 0;      // channels/group * kh * kw
  index_t col_count_ = 0;       // channels * kh * kw * out_spatial
  index_t bottom_dim_ = 0, top_dim_ = 0;

  ConvStrategy forward_strategy_ = ConvStrategy::kIm2colGemm;
  ConvStrategy backward_weights_strategy_ = ConvStrategy::kIm2colGemm;

  Blob<Dtype> col_buffer_;       // serial-path column buffer (lazy)
  Dtype* planned_col_ = nullptr;  // arena slot replacing col_buffer_
  index_t planned_col_count_ = 0;
  Blob<Dtype> bias_multiplier_;  // vector of ones, length out_spatial
};

}  // namespace cgdnn
