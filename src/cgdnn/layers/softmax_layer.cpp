#include "cgdnn/layers/softmax_layer.hpp"

#include <cmath>

#include "cgdnn/parallel/coalesce.hpp"

namespace cgdnn {

template <typename Dtype>
void SoftmaxLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                                  const std::vector<Blob<Dtype>*>& top) {
  const int axis =
      bottom[0]->CanonicalAxisIndex(this->layer_param_.softmax_param.axis);
  outer_num_ = bottom[0]->count(0, axis);
  channels_ = bottom[0]->shape(axis);
  inner_num_ = bottom[0]->count(axis + 1);
  top[0]->ReshapeLike(*bottom[0]);
}

template <typename Dtype>
void SoftmaxLayer<Dtype>::ForwardPosition(const Dtype* bottom_data,
                                          Dtype* top_data, index_t outer,
                                          index_t inner) const {
  const index_t base = outer * channels_ * inner_num_ + inner;
  Dtype max_val = bottom_data[base];
  for (index_t c = 1; c < channels_; ++c) {
    max_val = std::max(max_val, bottom_data[base + c * inner_num_]);
  }
  Dtype sum = 0;
  for (index_t c = 0; c < channels_; ++c) {
    const Dtype e = std::exp(bottom_data[base + c * inner_num_] - max_val);
    top_data[base + c * inner_num_] = e;
    sum += e;
  }
  for (index_t c = 0; c < channels_; ++c) {
    top_data[base + c * inner_num_] /= sum;
  }
}

template <typename Dtype>
void SoftmaxLayer<Dtype>::BackwardPosition(const Dtype* top_data,
                                           const Dtype* top_diff,
                                           Dtype* bottom_diff, index_t outer,
                                           index_t inner) const {
  const index_t base = outer * channels_ * inner_num_ + inner;
  // dx = (dy - dot(dy, y)) * y
  Dtype dot = 0;
  for (index_t c = 0; c < channels_; ++c) {
    const index_t idx = base + c * inner_num_;
    dot += top_diff[idx] * top_data[idx];
  }
  for (index_t c = 0; c < channels_; ++c) {
    const index_t idx = base + c * inner_num_;
    bottom_diff[idx] = (top_diff[idx] - dot) * top_data[idx];
  }
}

template <typename Dtype>
void SoftmaxLayer<Dtype>::Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                                      const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  Dtype* top_data = top[0]->mutable_cpu_data();
  for (index_t o = 0; o < outer_num_; ++o) {
    for (index_t i = 0; i < inner_num_; ++i) {
      ForwardPosition(bottom_data, top_data, o, i);
    }
  }
}

template <typename Dtype>
void SoftmaxLayer<Dtype>::Forward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  Dtype* top_data = top[0]->mutable_cpu_data();
  const int nthreads = parallel::Parallel::ResolveThreads();
  const parallel::CoalescedRange range{outer_num_, inner_num_};
#pragma omp parallel for num_threads(nthreads) schedule(static)
  for (index_t civ = 0; civ < range.total(); ++civ) {
    const auto idx = range.Decode(civ);
    ForwardPosition(bottom_data, top_data, idx[0], idx[1]);
  }
}

template <typename Dtype>
void SoftmaxLayer<Dtype>::Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                                       const std::vector<bool>& propagate_down,
                                       const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  const Dtype* top_data = top[0]->cpu_data();
  const Dtype* top_diff = top[0]->cpu_diff();
  Dtype* bottom_diff = bottom[0]->mutable_cpu_diff();
  for (index_t o = 0; o < outer_num_; ++o) {
    for (index_t i = 0; i < inner_num_; ++i) {
      BackwardPosition(top_data, top_diff, bottom_diff, o, i);
    }
  }
}

template <typename Dtype>
void SoftmaxLayer<Dtype>::Backward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  const Dtype* top_data = top[0]->cpu_data();
  const Dtype* top_diff = top[0]->cpu_diff();
  Dtype* bottom_diff = bottom[0]->mutable_cpu_diff();
  const int nthreads = parallel::Parallel::ResolveThreads();
  const parallel::CoalescedRange range{outer_num_, inner_num_};
#pragma omp parallel for num_threads(nthreads) schedule(static)
  for (index_t civ = 0; civ < range.total(); ++civ) {
    const auto idx = range.Decode(civ);
    BackwardPosition(top_data, top_diff, bottom_diff, idx[0], idx[1]);
  }
}

template class SoftmaxLayer<float>;
template class SoftmaxLayer<double>;

}  // namespace cgdnn
