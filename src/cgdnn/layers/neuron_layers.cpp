#include "cgdnn/layers/neuron_layers.hpp"

#include <cmath>

#include "cgdnn/blas/blas.hpp"
#include "cgdnn/core/rng.hpp"

namespace cgdnn {

namespace {
int Threads() { return parallel::Parallel::ResolveThreads(); }
}  // namespace

// -------------------------------------------------------------------- ReLU

template <typename Dtype>
void ReLULayer<Dtype>::Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                                   const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  Dtype* top_data = top[0]->mutable_cpu_data();
  const index_t count = bottom[0]->count();
  for (index_t i = 0; i < count; ++i) {
    top_data[i] = bottom_data[i] > 0
                      ? bottom_data[i]
                      : negative_slope_ * bottom_data[i];
  }
}

template <typename Dtype>
void ReLULayer<Dtype>::Forward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  Dtype* top_data = top[0]->mutable_cpu_data();
  const index_t count = bottom[0]->count();
  const Dtype slope = negative_slope_;
  // Whole-nest coalescing: (s, d1, ..., dN) collapse into one loop.
#pragma omp parallel for num_threads(Threads()) schedule(static)
  for (index_t i = 0; i < count; ++i) {
    top_data[i] = bottom_data[i] > 0 ? bottom_data[i] : slope * bottom_data[i];
  }
}

template <typename Dtype>
void ReLULayer<Dtype>::Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                                    const std::vector<bool>& propagate_down,
                                    const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  const Dtype* bottom_data = bottom[0]->cpu_data();
  const Dtype* top_diff = top[0]->cpu_diff();
  Dtype* bottom_diff = bottom[0]->mutable_cpu_diff();
  const index_t count = bottom[0]->count();
  for (index_t i = 0; i < count; ++i) {
    bottom_diff[i] =
        top_diff[i] * (bottom_data[i] > 0 ? Dtype(1) : negative_slope_);
  }
}

template <typename Dtype>
void ReLULayer<Dtype>::Backward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  const Dtype* bottom_data = bottom[0]->cpu_data();
  const Dtype* top_diff = top[0]->cpu_diff();
  Dtype* bottom_diff = bottom[0]->mutable_cpu_diff();
  const index_t count = bottom[0]->count();
  const Dtype slope = negative_slope_;
#pragma omp parallel for num_threads(Threads()) schedule(static)
  for (index_t i = 0; i < count; ++i) {
    bottom_diff[i] = top_diff[i] * (bottom_data[i] > 0 ? Dtype(1) : slope);
  }
}

// ----------------------------------------------------------------- Sigmoid

namespace {
template <typename Dtype>
inline Dtype SigmoidFn(Dtype x) {
  return Dtype(0.5) * std::tanh(Dtype(0.5) * x) + Dtype(0.5);
}
}  // namespace

template <typename Dtype>
void SigmoidLayer<Dtype>::Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                                      const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  Dtype* top_data = top[0]->mutable_cpu_data();
  const index_t count = bottom[0]->count();
  for (index_t i = 0; i < count; ++i) top_data[i] = SigmoidFn(bottom_data[i]);
}

template <typename Dtype>
void SigmoidLayer<Dtype>::Forward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  Dtype* top_data = top[0]->mutable_cpu_data();
  const index_t count = bottom[0]->count();
#pragma omp parallel for num_threads(Threads()) schedule(static)
  for (index_t i = 0; i < count; ++i) top_data[i] = SigmoidFn(bottom_data[i]);
}

template <typename Dtype>
void SigmoidLayer<Dtype>::Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                                       const std::vector<bool>& propagate_down,
                                       const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  const Dtype* top_data = top[0]->cpu_data();
  const Dtype* top_diff = top[0]->cpu_diff();
  Dtype* bottom_diff = bottom[0]->mutable_cpu_diff();
  const index_t count = bottom[0]->count();
  for (index_t i = 0; i < count; ++i) {
    bottom_diff[i] = top_diff[i] * top_data[i] * (Dtype(1) - top_data[i]);
  }
}

template <typename Dtype>
void SigmoidLayer<Dtype>::Backward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  const Dtype* top_data = top[0]->cpu_data();
  const Dtype* top_diff = top[0]->cpu_diff();
  Dtype* bottom_diff = bottom[0]->mutable_cpu_diff();
  const index_t count = bottom[0]->count();
#pragma omp parallel for num_threads(Threads()) schedule(static)
  for (index_t i = 0; i < count; ++i) {
    bottom_diff[i] = top_diff[i] * top_data[i] * (Dtype(1) - top_data[i]);
  }
}

// -------------------------------------------------------------------- TanH

template <typename Dtype>
void TanHLayer<Dtype>::Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                                   const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  Dtype* top_data = top[0]->mutable_cpu_data();
  const index_t count = bottom[0]->count();
  for (index_t i = 0; i < count; ++i) top_data[i] = std::tanh(bottom_data[i]);
}

template <typename Dtype>
void TanHLayer<Dtype>::Forward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  Dtype* top_data = top[0]->mutable_cpu_data();
  const index_t count = bottom[0]->count();
#pragma omp parallel for num_threads(Threads()) schedule(static)
  for (index_t i = 0; i < count; ++i) top_data[i] = std::tanh(bottom_data[i]);
}

template <typename Dtype>
void TanHLayer<Dtype>::Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                                    const std::vector<bool>& propagate_down,
                                    const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  const Dtype* top_data = top[0]->cpu_data();
  const Dtype* top_diff = top[0]->cpu_diff();
  Dtype* bottom_diff = bottom[0]->mutable_cpu_diff();
  const index_t count = bottom[0]->count();
  for (index_t i = 0; i < count; ++i) {
    bottom_diff[i] = top_diff[i] * (Dtype(1) - top_data[i] * top_data[i]);
  }
}

template <typename Dtype>
void TanHLayer<Dtype>::Backward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  const Dtype* top_data = top[0]->cpu_data();
  const Dtype* top_diff = top[0]->cpu_diff();
  Dtype* bottom_diff = bottom[0]->mutable_cpu_diff();
  const index_t count = bottom[0]->count();
#pragma omp parallel for num_threads(Threads()) schedule(static)
  for (index_t i = 0; i < count; ++i) {
    bottom_diff[i] = top_diff[i] * (Dtype(1) - top_data[i] * top_data[i]);
  }
}

// ----------------------------------------------------------------- Dropout

template <typename Dtype>
DropoutLayer<Dtype>::DropoutLayer(const proto::LayerParameter& param)
    : NeuronLayer<Dtype>(param),
      ratio_(static_cast<Dtype>(param.dropout_param.dropout_ratio)),
      base_(GlobalRng().NextU64(), /*stream=*/0xD80),
      mask_() {
  CGDNN_CHECK_GT(ratio_, Dtype(0));
  CGDNN_CHECK_LT(ratio_, Dtype(1));
  scale_ = Dtype(1) / (Dtype(1) - ratio_);
}

template <typename Dtype>
void DropoutLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                                  const std::vector<Blob<Dtype>*>& top) {
  NeuronLayer<Dtype>::Reshape(bottom, top);
  mask_.resize(static_cast<std::size_t>(bottom[0]->count()));
}

template <typename Dtype>
bool DropoutLayer<Dtype>::MaskKeep(index_t i) const {
  // (pass, element) -> independent stream; a single draw decides the mask.
  Rng rng = base_.Split(HashCombine64(pass_counter_, static_cast<std::uint64_t>(i)));
  return rng.Uniform() >= static_cast<double>(ratio_);
}

template <typename Dtype>
void DropoutLayer<Dtype>::Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                                      const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  Dtype* top_data = top[0]->mutable_cpu_data();
  const index_t count = bottom[0]->count();
  if (this->phase_ == Phase::kTrain) {
    ++pass_counter_;
    for (index_t i = 0; i < count; ++i) {
      mask_[static_cast<std::size_t>(i)] = MaskKeep(i) ? scale_ : Dtype(0);
      top_data[i] = bottom_data[i] * mask_[static_cast<std::size_t>(i)];
    }
  } else {
    blas::copy(count, bottom_data, top_data);
  }
}

template <typename Dtype>
void DropoutLayer<Dtype>::Forward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  Dtype* top_data = top[0]->mutable_cpu_data();
  const index_t count = bottom[0]->count();
  if (this->phase_ == Phase::kTrain) {
    ++pass_counter_;
    Dtype* mask = mask_.data();
#pragma omp parallel for num_threads(Threads()) schedule(static)
    for (index_t i = 0; i < count; ++i) {
      // The counter-based mask stream makes this loop order-free: element
      // i's mask does not depend on which thread evaluates it.
      mask[i] = MaskKeep(i) ? scale_ : Dtype(0);
      top_data[i] = bottom_data[i] * mask[i];
    }
  } else {
    blas::copy(count, bottom_data, top_data);
  }
}

template <typename Dtype>
void DropoutLayer<Dtype>::Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                                       const std::vector<bool>& propagate_down,
                                       const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  const Dtype* top_diff = top[0]->cpu_diff();
  Dtype* bottom_diff = bottom[0]->mutable_cpu_diff();
  const index_t count = bottom[0]->count();
  if (this->phase_ == Phase::kTrain) {
    for (index_t i = 0; i < count; ++i) {
      bottom_diff[i] = top_diff[i] * mask_[static_cast<std::size_t>(i)];
    }
  } else {
    blas::copy(count, top_diff, bottom_diff);
  }
}

template <typename Dtype>
void DropoutLayer<Dtype>::Backward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  const Dtype* top_diff = top[0]->cpu_diff();
  Dtype* bottom_diff = bottom[0]->mutable_cpu_diff();
  const index_t count = bottom[0]->count();
  if (this->phase_ == Phase::kTrain) {
    const Dtype* mask = mask_.data();
#pragma omp parallel for num_threads(Threads()) schedule(static)
    for (index_t i = 0; i < count; ++i) bottom_diff[i] = top_diff[i] * mask[i];
  } else {
    blas::copy(count, top_diff, bottom_diff);
  }
}

#define CGDNN_INSTANTIATE_NEURON(Layer) \
  template class Layer<float>;          \
  template class Layer<double>

CGDNN_INSTANTIATE_NEURON(NeuronLayer);
CGDNN_INSTANTIATE_NEURON(ReLULayer);
CGDNN_INSTANTIATE_NEURON(SigmoidLayer);
CGDNN_INSTANTIATE_NEURON(TanHLayer);
CGDNN_INSTANTIATE_NEURON(DropoutLayer);

}  // namespace cgdnn
