#include "cgdnn/layers/extra_neuron_layers.hpp"

namespace cgdnn {

template <typename Dtype>
void ElementwiseNeuronLayer<Dtype>::Forward_cpu(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* x = bottom[0]->cpu_data();
  Dtype* y = top[0]->mutable_cpu_data();
  const index_t count = bottom[0]->count();
  for (index_t i = 0; i < count; ++i) y[i] = Evaluate(x[i]);
}

template <typename Dtype>
void ElementwiseNeuronLayer<Dtype>::Forward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* x = bottom[0]->cpu_data();
  Dtype* y = top[0]->mutable_cpu_data();
  const index_t count = bottom[0]->count();
#pragma omp parallel for num_threads(parallel::Parallel::ResolveThreads()) \
    schedule(static)
  for (index_t i = 0; i < count; ++i) y[i] = Evaluate(x[i]);
}

template <typename Dtype>
void ElementwiseNeuronLayer<Dtype>::Backward_cpu(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  CGDNN_CHECK(bottom[0] != top[0])
      << this->type() << " backward needs the original input: run out-of-place";
  const Dtype* x = bottom[0]->cpu_data();
  const Dtype* y = top[0]->cpu_data();
  const Dtype* dy = top[0]->cpu_diff();
  Dtype* dx = bottom[0]->mutable_cpu_diff();
  const index_t count = bottom[0]->count();
  for (index_t i = 0; i < count; ++i) dx[i] = dy[i] * Derivative(x[i], y[i]);
}

template <typename Dtype>
void ElementwiseNeuronLayer<Dtype>::Backward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  CGDNN_CHECK(bottom[0] != top[0])
      << this->type() << " backward needs the original input: run out-of-place";
  const Dtype* x = bottom[0]->cpu_data();
  const Dtype* y = top[0]->cpu_data();
  const Dtype* dy = top[0]->cpu_diff();
  Dtype* dx = bottom[0]->mutable_cpu_diff();
  const index_t count = bottom[0]->count();
#pragma omp parallel for num_threads(parallel::Parallel::ResolveThreads()) \
    schedule(static)
  for (index_t i = 0; i < count; ++i) dx[i] = dy[i] * Derivative(x[i], y[i]);
}

#define CGDNN_INSTANTIATE_EXTRA(Layer) \
  template class Layer<float>;         \
  template class Layer<double>

CGDNN_INSTANTIATE_EXTRA(ElementwiseNeuronLayer);
CGDNN_INSTANTIATE_EXTRA(PowerLayer);
CGDNN_INSTANTIATE_EXTRA(ExpLayer);
CGDNN_INSTANTIATE_EXTRA(LogLayer);
CGDNN_INSTANTIATE_EXTRA(AbsValLayer);
CGDNN_INSTANTIATE_EXTRA(BNLLLayer);
CGDNN_INSTANTIATE_EXTRA(ELULayer);

}  // namespace cgdnn
