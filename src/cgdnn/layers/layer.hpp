// Layer: the unit of network computation (paper §2.1.2). Every layer
// transforms bottom blobs into top blobs (forward) and propagates gradients
// from top diffs to bottom diffs and parameter diffs (backward).
//
// Each concrete layer provides up to four implementations:
//   * Forward_cpu / Backward_cpu — the sequential loop nests of
//     Algorithms 2/3 (also the correctness reference), and
//   * Forward_cpu_parallel / Backward_cpu_parallel — the coarse-grain
//     batch-level OpenMP versions of Algorithms 4/5 (coalesced loops,
//     per-thread privatization, ordered gradient merge).
// Forward()/Backward() dispatch on the global parallel::Parallel config;
// a layer without a parallel specialization falls back to the serial code,
// which is exactly the "network-agnostic" property: new layer types work
// unchanged, and gain batch-parallelism when their author adds one pragma.
#pragma once

#include <memory>
#include <vector>

#include "cgdnn/core/blob.hpp"
#include "cgdnn/core/common.hpp"
#include "cgdnn/layers/fused_op.hpp"
#include "cgdnn/parallel/context.hpp"
#include "cgdnn/proto/params.hpp"

namespace cgdnn {

template <typename Dtype>
class Layer {
 public:
  explicit Layer(const proto::LayerParameter& param)
      : layer_param_(param), phase_(param.include_phase.value_or(Phase::kTrain)) {}
  virtual ~Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Common setup: checks blob counts, runs layer-specific setup, shapes the
  /// tops, and installs loss weights.
  void SetUp(const std::vector<Blob<Dtype>*>& bottom,
             const std::vector<Blob<Dtype>*>& top) {
    CheckBlobCounts(bottom, top);
    LayerSetUp(bottom, top);
    Reshape(bottom, top);
    SetLossWeights(top);
  }

  virtual void LayerSetUp(const std::vector<Blob<Dtype>*>& /*bottom*/,
                          const std::vector<Blob<Dtype>*>& /*top*/) {}
  virtual void Reshape(const std::vector<Blob<Dtype>*>& bottom,
                       const std::vector<Blob<Dtype>*>& top) = 0;

  /// Runs the forward pass (serial or coarse-grain per the global parallel
  /// config) and returns the total weighted loss produced by this layer.
  Dtype Forward(const std::vector<Blob<Dtype>*>& bottom,
                const std::vector<Blob<Dtype>*>& top);

  /// Runs the backward pass. propagate_down[i] controls whether the
  /// gradient w.r.t. bottom[i] is computed.
  void Backward(const std::vector<Blob<Dtype>*>& top,
                const std::vector<bool>& propagate_down,
                const std::vector<Blob<Dtype>*>& bottom);

  /// Learnable parameter blobs (weights, biases).
  std::vector<std::shared_ptr<Blob<Dtype>>>& blobs() { return blobs_; }
  const std::vector<std::shared_ptr<Blob<Dtype>>>& blobs() const {
    return blobs_;
  }

  const proto::LayerParameter& layer_param() const { return layer_param_; }
  virtual const char* type() const = 0;

  // Blob count contract (−1 = unconstrained), mirroring Caffe.
  virtual int ExactNumBottomBlobs() const { return -1; }
  virtual int MinBottomBlobs() const { return -1; }
  virtual int MaxBottomBlobs() const { return -1; }
  virtual int ExactNumTopBlobs() const { return -1; }
  virtual int MinTopBlobs() const { return -1; }
  virtual int MaxTopBlobs() const { return -1; }

  /// True if the layer can never propagate to this bottom (e.g. labels).
  virtual bool AllowForceBackward(int /*bottom_index*/) const { return true; }

  Dtype loss(int top_index) const {
    return static_cast<std::size_t>(top_index) < loss_.size()
               ? loss_[static_cast<std::size_t>(top_index)]
               : Dtype(0);
  }
  void set_loss(int top_index, Dtype value) {
    if (loss_.size() <= static_cast<std::size_t>(top_index)) {
      loss_.resize(static_cast<std::size_t>(top_index) + 1, Dtype(0));
    }
    loss_[static_cast<std::size_t>(top_index)] = value;
  }

  bool param_propagate_down(int index) const {
    return static_cast<std::size_t>(index) < param_propagate_down_.size()
               ? param_propagate_down_[static_cast<std::size_t>(index)]
               : false;
  }
  void set_param_propagate_down(int index, bool value) {
    if (param_propagate_down_.size() <= static_cast<std::size_t>(index)) {
      param_propagate_down_.resize(static_cast<std::size_t>(index) + 1, true);
    }
    param_propagate_down_[static_cast<std::size_t>(index)] = value;
  }

  Phase phase() const { return phase_; }
  void set_phase(Phase phase) { phase_ = phase; }

  /// True for producers whose forward loops apply a planner-installed
  /// FusedEpilogue to each output chunk (conv/ip/pooling). The planner only
  /// fuses consumers into layers that opt in here.
  virtual bool SupportsFusedEpilogue() const { return false; }
  /// Installs (or clears, with nullptr) the fused elementwise chain this
  /// layer applies to its forward output. Set by plan::ApplyPlan from serial
  /// code; the layer reads it inside Forward only.
  void set_fused_epilogue(std::shared_ptr<const FusedEpilogue<Dtype>> ep) {
    fused_epilogue_ = std::move(ep);
  }
  const FusedEpilogue<Dtype>* fused_epilogue() const {
    return fused_epilogue_.get();
  }

  /// Mutable runtime state beyond blobs() — data cursors, dropout pass
  /// counters — exported as opaque u64 words for checkpointing. A resumed
  /// net must replay training bit-identically, so any layer whose forward
  /// pass depends on how many batches it has already served must export
  /// that state here. The base layer has none.
  virtual void ExportRuntimeState(std::vector<std::uint64_t>& /*state*/) const {
  }
  /// Restores state captured by ExportRuntimeState. Implementations must
  /// consume exactly the words they exported and reject anything else.
  virtual void ImportRuntimeState(const std::vector<std::uint64_t>& state) {
    CGDNN_CHECK(state.empty())
        << "layer type " << type() << " has no runtime state but got "
        << state.size() << " words";
  }

 protected:
  // Serial reference implementations (Algorithms 2/3).
  virtual void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                           const std::vector<Blob<Dtype>*>& top) = 0;
  virtual void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                            const std::vector<bool>& propagate_down,
                            const std::vector<Blob<Dtype>*>& bottom) = 0;

  // Coarse-grain batch-level implementations (Algorithms 4/5). The default
  // delegates to the serial code — the network-agnostic fallback.
  virtual void Forward_cpu_parallel(const std::vector<Blob<Dtype>*>& bottom,
                                    const std::vector<Blob<Dtype>*>& top) {
    Forward_cpu(bottom, top);
  }
  virtual void Backward_cpu_parallel(const std::vector<Blob<Dtype>*>& top,
                                     const std::vector<bool>& propagate_down,
                                     const std::vector<Blob<Dtype>*>& bottom) {
    Backward_cpu(top, propagate_down, bottom);
  }

  /// Default loss weight for top blob `index` (loss layers return 1 for
  /// their first top).
  virtual Dtype DefaultLossWeight(int /*index*/) const { return Dtype(0); }

  void SetLossWeights(const std::vector<Blob<Dtype>*>& top);
  void CheckBlobCounts(const std::vector<Blob<Dtype>*>& bottom,
                       const std::vector<Blob<Dtype>*>& top) const;

  proto::LayerParameter layer_param_;
  Phase phase_;
  std::vector<std::shared_ptr<Blob<Dtype>>> blobs_;
  std::vector<bool> param_propagate_down_;
  std::vector<Dtype> loss_;
  std::shared_ptr<const FusedEpilogue<Dtype>> fused_epilogue_;
};

// ----------------------------------------------------------------- Registry

template <typename Dtype>
class LayerRegistry {
 public:
  using Creator =
      std::shared_ptr<Layer<Dtype>> (*)(const proto::LayerParameter&);

  static LayerRegistry& Get();

  void Register(const std::string& type, Creator creator);
  std::shared_ptr<Layer<Dtype>> Create(const proto::LayerParameter& param);
  std::vector<std::string> Types() const;

 private:
  std::vector<std::pair<std::string, Creator>> registry_;
};

/// Idempotently registers every built-in layer for float and double.
/// LayerRegistry::Create calls it automatically, so library users never
/// need to; it is public for tests that enumerate the registry.
void EnsureLayersRegistered();

}  // namespace cgdnn
