#include "cgdnn/layers/pooling_layer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include <omp.h>

#include "cgdnn/parallel/coalesce.hpp"
#include "cgdnn/parallel/instrument.hpp"

namespace cgdnn {

template <typename Dtype>
void PoolingLayer<Dtype>::LayerSetUp(const std::vector<Blob<Dtype>*>& bottom,
                                     const std::vector<Blob<Dtype>*>& top) {
  (void)bottom;
  (void)top;
  const auto& p = this->layer_param_.pooling_param;
  method_ = p.pool;
  global_pooling_ = p.global_pooling;
  kernel_ = p.kernel_size;
  stride_ = p.stride;
  pad_ = p.pad;
  if (!global_pooling_) {
    CGDNN_CHECK_GT(kernel_, 0) << "pooling kernel size unset for layer "
                               << this->layer_param_.name;
  }
  CGDNN_CHECK_GT(stride_, 0);
  CGDNN_CHECK_GE(pad_, 0);
  if (pad_ > 0) {
    CGDNN_CHECK_LT(pad_, kernel_) << "padding must be smaller than the kernel";
  }
}

template <typename Dtype>
void PoolingLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                                  const std::vector<Blob<Dtype>*>& top) {
  num_ = bottom[0]->num();
  channels_ = bottom[0]->channels();
  height_ = bottom[0]->height();
  width_ = bottom[0]->width();
  if (global_pooling_) {
    // One output per (n, c) plane; the window spans the whole input.
    kernel_ = std::max(height_, width_);
    stride_ = 1;
    pad_ = 0;
    pooled_h_ = 1;
    pooled_w_ = 1;
    top[0]->Reshape(num_, channels_, pooled_h_, pooled_w_);
    if (method_ == proto::PoolingParameter::Method::kMax) {
      max_idx_.assign(static_cast<std::size_t>(top[0]->count()), -1);
    }
    return;
  }
  // Caffe uses ceil for pooled extents (unlike conv's floor) so no input
  // pixel is dropped on the right/bottom edges.
  pooled_h_ = static_cast<index_t>(std::ceil(
                  static_cast<double>(height_ + 2 * pad_ - kernel_) /
                  static_cast<double>(stride_))) +
              1;
  pooled_w_ = static_cast<index_t>(std::ceil(
                  static_cast<double>(width_ + 2 * pad_ - kernel_) /
                  static_cast<double>(stride_))) +
              1;
  if (pad_ > 0) {
    // Clip the last window to start inside the (padded) image.
    if ((pooled_h_ - 1) * stride_ >= height_ + pad_) --pooled_h_;
    if ((pooled_w_ - 1) * stride_ >= width_ + pad_) --pooled_w_;
  }
  top[0]->Reshape(num_, channels_, pooled_h_, pooled_w_);
  if (method_ == proto::PoolingParameter::Method::kMax) {
    max_idx_.assign(static_cast<std::size_t>(top[0]->count()), -1);
  }
}

template <typename Dtype>
void PoolingLayer<Dtype>::ForwardPlane(const Dtype* bottom_plane,
                                       Dtype* top_plane,
                                       index_t* mask_plane) const {
  const bool is_max = method_ == proto::PoolingParameter::Method::kMax;
  for (index_t ph = 0; ph < pooled_h_; ++ph) {
    for (index_t pw = 0; pw < pooled_w_; ++pw) {
      index_t hstart = ph * stride_ - pad_;
      index_t wstart = pw * stride_ - pad_;
      index_t hend = std::min(hstart + kernel_, height_ + (is_max ? 0 : pad_));
      index_t wend = std::min(wstart + kernel_, width_ + (is_max ? 0 : pad_));
      const index_t pool_size = (hend - hstart) * (wend - wstart);  // AVE: incl. pad
      hstart = std::max<index_t>(hstart, 0);
      wstart = std::max<index_t>(wstart, 0);
      hend = std::min(hend, height_);
      wend = std::min(wend, width_);
      const index_t out_idx = ph * pooled_w_ + pw;
      if (is_max) {
        Dtype best = -std::numeric_limits<Dtype>::max();
        index_t best_idx = -1;
        for (index_t h = hstart; h < hend; ++h) {
          for (index_t w = wstart; w < wend; ++w) {
            const index_t idx = h * width_ + w;
            if (bottom_plane[idx] > best) {
              best = bottom_plane[idx];
              best_idx = idx;
            }
          }
        }
        top_plane[out_idx] = best;
        mask_plane[out_idx] = best_idx;
      } else {
        Dtype sum = 0;
        for (index_t h = hstart; h < hend; ++h) {
          for (index_t w = wstart; w < wend; ++w) {
            sum += bottom_plane[h * width_ + w];
          }
        }
        top_plane[out_idx] = sum / static_cast<Dtype>(pool_size);
      }
    }
  }
}

template <typename Dtype>
void PoolingLayer<Dtype>::BackwardPlane(const Dtype* top_diff_plane,
                                        const index_t* mask_plane,
                                        Dtype* bottom_diff_plane) const {
  std::memset(bottom_diff_plane, 0,
              static_cast<std::size_t>(height_ * width_) * sizeof(Dtype));
  const bool is_max = method_ == proto::PoolingParameter::Method::kMax;
  for (index_t ph = 0; ph < pooled_h_; ++ph) {
    for (index_t pw = 0; pw < pooled_w_; ++pw) {
      const index_t out_idx = ph * pooled_w_ + pw;
      if (is_max) {
        const index_t src = mask_plane[out_idx];
        if (src >= 0) bottom_diff_plane[src] += top_diff_plane[out_idx];
      } else {
        index_t hstart = ph * stride_ - pad_;
        index_t wstart = pw * stride_ - pad_;
        const index_t hend0 = std::min(hstart + kernel_, height_ + pad_);
        const index_t wend0 = std::min(wstart + kernel_, width_ + pad_);
        const index_t pool_size = (hend0 - hstart) * (wend0 - wstart);
        hstart = std::max<index_t>(hstart, 0);
        wstart = std::max<index_t>(wstart, 0);
        const index_t hend = std::min(hend0, height_);
        const index_t wend = std::min(wend0, width_);
        const Dtype share =
            top_diff_plane[out_idx] / static_cast<Dtype>(pool_size);
        for (index_t h = hstart; h < hend; ++h) {
          for (index_t w = wstart; w < wend; ++w) {
            bottom_diff_plane[h * width_ + w] += share;
          }
        }
      }
    }
  }
}

template <typename Dtype>
void PoolingLayer<Dtype>::Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                                      const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  Dtype* top_data = top[0]->mutable_cpu_data();
  const index_t in_plane = height_ * width_;
  const index_t out_plane = pooled_h_ * pooled_w_;
  const FusedEpilogue<Dtype>* ep = this->fused_epilogue();
  for (index_t n = 0; n < num_; ++n) {
    for (index_t c = 0; c < channels_; ++c) {
      const index_t plane = n * channels_ + c;
      ForwardPlane(bottom_data + plane * in_plane, top_data + plane * out_plane,
                   max_idx_.data() + plane * out_plane);
      if (ep != nullptr) {
        ep->ApplyForward(top_data + plane * out_plane, plane * out_plane,
                         out_plane);
      }
    }
  }
}

template <typename Dtype>
void PoolingLayer<Dtype>::Forward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  Dtype* top_data = top[0]->mutable_cpu_data();
  const index_t in_plane = height_ * width_;
  const index_t out_plane = pooled_h_ * pooled_w_;
  index_t* mask = max_idx_.data();
  const bool coalesce = parallel::Parallel::Config().coalesce;
  // Algorithm 4: the (n, c) loops coalesce into one parallel loop. The
  // decode is the identity here because the planes are stored contiguously
  // in exactly (n*C + c) order. Without coalescing, only the batch loop is
  // parallel (ablation).
  if (coalesce) {
    const index_t total = num_ * channels_;
    const int nthreads = parallel::Parallel::ResolveThreads();
    parallel::RegionStats rstats(this->layer_param_.name + ".forward",
                                 nthreads);
    check::WriteSetChecker* chk = rstats.checker();
    const FusedEpilogue<Dtype>* ep = this->fused_epilogue();
#pragma omp parallel num_threads(nthreads)
    {
      const int tid = omp_get_thread_num();
      parallel::ThreadRegionScope rscope(rstats, tid);
#pragma omp for schedule(static) nowait
      for (index_t civ = 0; civ < total; ++civ) {
        ForwardPlane(bottom_data + civ * in_plane, top_data + civ * out_plane,
                     mask + civ * out_plane);
        if (ep != nullptr) {
          // Fused elementwise chain per plane (writes stay in this plane).
          ep->ApplyForward(top_data + civ * out_plane, civ * out_plane,
                           out_plane);
        }
        if (chk != nullptr) {
          chk->RecordWrite(tid, top_data, "top.data", civ * out_plane,
                           (civ + 1) * out_plane);
          chk->RecordWrite(tid, mask, "max_idx", civ * out_plane,
                           (civ + 1) * out_plane);
        }
      }
    }
  } else {
    const int nthreads = parallel::Parallel::ResolveThreads();
    parallel::RegionStats rstats(this->layer_param_.name + ".forward",
                                 nthreads);
    check::WriteSetChecker* chk = rstats.checker();
    const FusedEpilogue<Dtype>* ep = this->fused_epilogue();
#pragma omp parallel num_threads(nthreads)
    {
      const int tid = omp_get_thread_num();
      parallel::ThreadRegionScope rscope(rstats, tid);
#pragma omp for schedule(static)
      for (index_t n = 0; n < num_; ++n) {
        for (index_t c = 0; c < channels_; ++c) {
          const index_t plane = n * channels_ + c;
          ForwardPlane(bottom_data + plane * in_plane,
                       top_data + plane * out_plane, mask + plane * out_plane);
          if (ep != nullptr) {
            ep->ApplyForward(top_data + plane * out_plane, plane * out_plane,
                             out_plane);
          }
        }
        if (chk != nullptr) {
          chk->RecordWrite(tid, top_data, "top.data",
                           n * channels_ * out_plane,
                           (n + 1) * channels_ * out_plane);
          chk->RecordWrite(tid, mask, "max_idx", n * channels_ * out_plane,
                           (n + 1) * channels_ * out_plane);
        }
      }
    }
  }
}

template <typename Dtype>
void PoolingLayer<Dtype>::Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                                       const std::vector<bool>& propagate_down,
                                       const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  const Dtype* top_diff = top[0]->cpu_diff();
  Dtype* bottom_diff = bottom[0]->mutable_cpu_diff();
  const index_t in_plane = height_ * width_;
  const index_t out_plane = pooled_h_ * pooled_w_;
  for (index_t n = 0; n < num_; ++n) {
    for (index_t c = 0; c < channels_; ++c) {
      const index_t plane = n * channels_ + c;
      BackwardPlane(top_diff + plane * out_plane,
                    max_idx_.data() + plane * out_plane,
                    bottom_diff + plane * in_plane);
    }
  }
}

template <typename Dtype>
void PoolingLayer<Dtype>::Backward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  const Dtype* top_diff = top[0]->cpu_diff();
  Dtype* bottom_diff = bottom[0]->mutable_cpu_diff();
  const index_t in_plane = height_ * width_;
  const index_t out_plane = pooled_h_ * pooled_w_;
  const index_t* mask = max_idx_.data();
  const bool coalesce = parallel::Parallel::Config().coalesce;
  if (coalesce) {
    const index_t total = num_ * channels_;
    const int nthreads = parallel::Parallel::ResolveThreads();
    parallel::RegionStats rstats(this->layer_param_.name + ".backward",
                                 nthreads);
    check::WriteSetChecker* chk = rstats.checker();
#pragma omp parallel num_threads(nthreads)
    {
      const int tid = omp_get_thread_num();
      parallel::ThreadRegionScope rscope(rstats, tid);
#pragma omp for schedule(static) nowait
      for (index_t civ = 0; civ < total; ++civ) {
        BackwardPlane(top_diff + civ * out_plane, mask + civ * out_plane,
                      bottom_diff + civ * in_plane);
        if (chk != nullptr) {
          chk->RecordWrite(tid, bottom_diff, "bottom.diff", civ * in_plane,
                           (civ + 1) * in_plane);
        }
      }
    }
  } else {
#pragma omp parallel for num_threads(parallel::Parallel::ResolveThreads()) schedule(static)
    for (index_t n = 0; n < num_; ++n) {
      for (index_t c = 0; c < channels_; ++c) {
        const index_t plane = n * channels_ + c;
        BackwardPlane(top_diff + plane * out_plane, mask + plane * out_plane,
                      bottom_diff + plane * in_plane);
      }
    }
  }
}

template class PoolingLayer<float>;
template class PoolingLayer<double>;

}  // namespace cgdnn
