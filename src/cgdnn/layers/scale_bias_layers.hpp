// Scale and Bias layers: per-slice multiplicative / additive transforms
// with learnable coefficients, broadcast over the remaining axes (the
// building blocks batch-norm-style pipelines use in Caffe).
//
// For a bottom of shape (d0, ..., d_{axis-1}, S, inner...) with coefficient
// shape S (num_axes = 1 at `axis`, the common case):
//   Scale: y[o, s, i] = x[o, s, i] * w[s]     (+ b[s] with bias_term)
//   Bias:  y[o, s, i] = x[o, s, i] + b[s]
//
// Coarse-grain path: the (outer, S) loops are coalesced; coefficient
// gradients partition by coefficient index across threads (each w[s] sums
// over disjoint slices read by one thread only — no privatization needed,
// like InnerProduct's row partitioning).
#pragma once

#include "cgdnn/layers/layer.hpp"

namespace cgdnn {

template <typename Dtype>
class ScaleLayer : public Layer<Dtype> {
 public:
  explicit ScaleLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}

  void LayerSetUp(const std::vector<Blob<Dtype>*>& bottom,
                  const std::vector<Blob<Dtype>*>& top) override;
  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;
  const char* type() const override { return "Scale"; }
  int ExactNumBottomBlobs() const override { return 1; }
  int ExactNumTopBlobs() const override { return 1; }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;
  void Forward_cpu_parallel(const std::vector<Blob<Dtype>*>& bottom,
                            const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu_parallel(const std::vector<Blob<Dtype>*>& top,
                             const std::vector<bool>& propagate_down,
                             const std::vector<Blob<Dtype>*>& bottom) override;

 private:
  bool bias_term_ = false;
  index_t outer_ = 0, scale_dim_ = 0, inner_ = 0;
};

template <typename Dtype>
class BiasLayer : public Layer<Dtype> {
 public:
  explicit BiasLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}

  void LayerSetUp(const std::vector<Blob<Dtype>*>& bottom,
                  const std::vector<Blob<Dtype>*>& top) override;
  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;
  const char* type() const override { return "Bias"; }
  int ExactNumBottomBlobs() const override { return 1; }
  int ExactNumTopBlobs() const override { return 1; }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;
  void Forward_cpu_parallel(const std::vector<Blob<Dtype>*>& bottom,
                            const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu_parallel(const std::vector<Blob<Dtype>*>& top,
                             const std::vector<bool>& propagate_down,
                             const std::vector<Blob<Dtype>*>& bottom) override;

 private:
  index_t outer_ = 0, bias_dim_ = 0, inner_ = 0;
};

}  // namespace cgdnn
