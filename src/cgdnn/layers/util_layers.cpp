#include "cgdnn/layers/util_layers.hpp"

#include "cgdnn/blas/blas.hpp"

namespace cgdnn {

// ------------------------------------------------------------------- Split

template <typename Dtype>
void SplitLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                                const std::vector<Blob<Dtype>*>& top) {
  for (Blob<Dtype>* t : top) {
    t->ReshapeLike(*bottom[0]);
    t->ShareData(*bottom[0]);  // zero-copy forward
  }
}

template <typename Dtype>
void SplitLayer<Dtype>::Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                                    const std::vector<Blob<Dtype>*>& top) {
  (void)bottom;
  (void)top;  // data already shared in Reshape
}

template <typename Dtype>
void SplitLayer<Dtype>::Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                                     const std::vector<bool>& propagate_down,
                                     const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  const index_t count = bottom[0]->count();
  Dtype* bottom_diff = bottom[0]->mutable_cpu_diff();
  blas::copy(count, top[0]->cpu_diff(), bottom_diff);
  for (std::size_t i = 1; i < top.size(); ++i) {
    blas::axpy(count, Dtype(1), top[i]->cpu_diff(), bottom_diff);
  }
}

// ------------------------------------------------------------------ Concat

template <typename Dtype>
void ConcatLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                                 const std::vector<Blob<Dtype>*>& top) {
  axis_ = bottom[0]->CanonicalAxisIndex(this->layer_param_.concat_param.axis);
  std::vector<index_t> top_shape = bottom[0]->shape();
  num_concats_ = bottom[0]->count(0, axis_);
  for (std::size_t i = 1; i < bottom.size(); ++i) {
    CGDNN_CHECK_EQ(bottom[i]->num_axes(), bottom[0]->num_axes());
    for (int a = 0; a < bottom[0]->num_axes(); ++a) {
      if (a == axis_) continue;
      CGDNN_CHECK_EQ(bottom[i]->shape(a), bottom[0]->shape(a))
          << "concat inputs must match on non-concat axes";
    }
    top_shape[static_cast<std::size_t>(axis_)] += bottom[i]->shape(axis_);
  }
  top[0]->Reshape(top_shape);
  concat_input_ = top[0]->count(axis_);
}

template <typename Dtype>
void ConcatLayer<Dtype>::Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                                     const std::vector<Blob<Dtype>*>& top) {
  Dtype* top_data = top[0]->mutable_cpu_data();
  index_t offset = 0;
  for (Blob<Dtype>* b : bottom) {
    const Dtype* bottom_data = b->cpu_data();
    const index_t slice = b->count(axis_);
    for (index_t n = 0; n < num_concats_; ++n) {
      blas::copy(slice, bottom_data + n * slice,
                 top_data + n * concat_input_ + offset);
    }
    offset += slice;
  }
}

template <typename Dtype>
void ConcatLayer<Dtype>::Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                                      const std::vector<bool>& propagate_down,
                                      const std::vector<Blob<Dtype>*>& bottom) {
  const Dtype* top_diff = top[0]->cpu_diff();
  index_t offset = 0;
  for (std::size_t i = 0; i < bottom.size(); ++i) {
    const index_t slice = bottom[i]->count(axis_);
    if (propagate_down[i]) {
      Dtype* bottom_diff = bottom[i]->mutable_cpu_diff();
      for (index_t n = 0; n < num_concats_; ++n) {
        blas::copy(slice, top_diff + n * concat_input_ + offset,
                   bottom_diff + n * slice);
      }
    }
    offset += slice;
  }
}

// ----------------------------------------------------------------- Eltwise

template <typename Dtype>
void EltwiseLayer<Dtype>::LayerSetUp(const std::vector<Blob<Dtype>*>& bottom,
                                     const std::vector<Blob<Dtype>*>& top) {
  (void)top;
  const auto& p = this->layer_param_.eltwise_param;
  op_ = p.operation;
  coeffs_.assign(bottom.size(), Dtype(1));
  if (!p.coeff.empty()) {
    CGDNN_CHECK_EQ(p.coeff.size(), bottom.size())
        << "one coefficient per bottom, or none";
    CGDNN_CHECK(op_ == proto::EltwiseParameter::Op::kSum)
        << "coefficients only apply to SUM";
    for (std::size_t i = 0; i < bottom.size(); ++i) {
      coeffs_[i] = static_cast<Dtype>(p.coeff[i]);
    }
  }
}

template <typename Dtype>
void EltwiseLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                                  const std::vector<Blob<Dtype>*>& top) {
  for (std::size_t i = 1; i < bottom.size(); ++i) {
    CGDNN_CHECK(bottom[i]->shape() == bottom[0]->shape())
        << "eltwise inputs must have identical shapes";
  }
  top[0]->ReshapeLike(*bottom[0]);
  if (op_ == proto::EltwiseParameter::Op::kMax) {
    max_arg_.assign(static_cast<std::size_t>(bottom[0]->count()), 0);
  }
}

template <typename Dtype>
void EltwiseLayer<Dtype>::Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                                      const std::vector<Blob<Dtype>*>& top) {
  const index_t count = top[0]->count();
  Dtype* top_data = top[0]->mutable_cpu_data();
  switch (op_) {
    case proto::EltwiseParameter::Op::kProd:
      blas::mul(count, bottom[0]->cpu_data(), bottom[1]->cpu_data(), top_data);
      for (std::size_t i = 2; i < bottom.size(); ++i) {
        blas::mul(count, top_data, bottom[i]->cpu_data(), top_data);
      }
      break;
    case proto::EltwiseParameter::Op::kSum:
      blas::set(count, Dtype(0), top_data);
      for (std::size_t i = 0; i < bottom.size(); ++i) {
        blas::axpy(count, coeffs_[i], bottom[i]->cpu_data(), top_data);
      }
      break;
    case proto::EltwiseParameter::Op::kMax:
      for (index_t j = 0; j < count; ++j) {
        Dtype best = bottom[0]->cpu_data()[j];
        int arg = 0;
        for (std::size_t i = 1; i < bottom.size(); ++i) {
          const Dtype v = bottom[i]->cpu_data()[j];
          if (v > best) {
            best = v;
            arg = static_cast<int>(i);
          }
        }
        top_data[j] = best;
        max_arg_[static_cast<std::size_t>(j)] = arg;
      }
      break;
  }
}

template <typename Dtype>
void EltwiseLayer<Dtype>::Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                                       const std::vector<bool>& propagate_down,
                                       const std::vector<Blob<Dtype>*>& bottom) {
  const index_t count = top[0]->count();
  const Dtype* top_diff = top[0]->cpu_diff();
  const Dtype* top_data = top[0]->cpu_data();
  for (std::size_t i = 0; i < bottom.size(); ++i) {
    if (!propagate_down[i]) continue;
    Dtype* bottom_diff = bottom[i]->mutable_cpu_diff();
    switch (op_) {
      case proto::EltwiseParameter::Op::kProd:
        // d/db_i = top / b_i * top_diff (safe when b_i != 0; matches
        // Caffe's stable=false fast path).
        blas::div(count, top_data, bottom[i]->cpu_data(), bottom_diff);
        blas::mul(count, bottom_diff, top_diff, bottom_diff);
        break;
      case proto::EltwiseParameter::Op::kSum:
        for (index_t j = 0; j < count; ++j) {
          bottom_diff[j] = coeffs_[i] * top_diff[j];
        }
        break;
      case proto::EltwiseParameter::Op::kMax:
        for (index_t j = 0; j < count; ++j) {
          bottom_diff[j] =
              max_arg_[static_cast<std::size_t>(j)] == static_cast<int>(i)
                  ? top_diff[j]
                  : Dtype(0);
        }
        break;
    }
  }
}

// ----------------------------------------------------------------- Flatten

template <typename Dtype>
void FlattenLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                                  const std::vector<Blob<Dtype>*>& top) {
  CGDNN_CHECK_NE(bottom[0], top[0]) << "Flatten cannot run in-place";
  top[0]->Reshape({bottom[0]->shape(0), bottom[0]->count(1)});
  top[0]->ShareData(*bottom[0]);
  top[0]->ShareDiff(*bottom[0]);
}

template <typename Dtype>
void FlattenLayer<Dtype>::Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                                      const std::vector<Blob<Dtype>*>& top) {
  (void)bottom;
  (void)top;  // storage shared in Reshape
}

template <typename Dtype>
void FlattenLayer<Dtype>::Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                                       const std::vector<bool>& propagate_down,
                                       const std::vector<Blob<Dtype>*>& bottom) {
  (void)top;
  (void)propagate_down;
  (void)bottom;  // diff shared in Reshape
}

#define CGDNN_INSTANTIATE_UTIL(Layer) \
  template class Layer<float>;        \
  template class Layer<double>

CGDNN_INSTANTIATE_UTIL(SplitLayer);
CGDNN_INSTANTIATE_UTIL(ConcatLayer);
CGDNN_INSTANTIATE_UTIL(EltwiseLayer);
CGDNN_INSTANTIATE_UTIL(FlattenLayer);

}  // namespace cgdnn
