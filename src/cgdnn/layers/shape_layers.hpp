// Structural layers: Slice (the inverse of Concat), Reshape (zero-copy
// re-interpretation), ArgMax (evaluation-only class extraction) and
// Silence (explicitly consumes unused blobs).
#pragma once

#include <vector>

#include "cgdnn/layers/layer.hpp"

namespace cgdnn {

/// Slice: splits the bottom along `axis` into the tops, either at explicit
/// slice_points or into equal parts.
template <typename Dtype>
class SliceLayer : public Layer<Dtype> {
 public:
  explicit SliceLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}
  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;
  const char* type() const override { return "Slice"; }
  int ExactNumBottomBlobs() const override { return 1; }
  int MinTopBlobs() const override { return 1; }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;

 private:
  int axis_ = 1;
  index_t num_slices_ = 0;   // product of dims before axis
  index_t slice_input_ = 0;  // bottom count from axis on
  std::vector<index_t> sizes_;  // per-top extent along axis
};

/// Reshape: shares the bottom's storage under a new shape. Target dims of
/// 0 copy the corresponding bottom dim; a single -1 is inferred.
template <typename Dtype>
class ReshapeLayer : public Layer<Dtype> {
 public:
  explicit ReshapeLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}
  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;
  const char* type() const override { return "Reshape"; }
  int ExactNumBottomBlobs() const override { return 1; }
  int ExactNumTopBlobs() const override { return 1; }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& /*bottom*/,
                   const std::vector<Blob<Dtype>*>& /*top*/) override {}
  void Backward_cpu(const std::vector<Blob<Dtype>*>& /*top*/,
                    const std::vector<bool>& /*propagate_down*/,
                    const std::vector<Blob<Dtype>*>& /*bottom*/) override {}
};

/// ArgMax: per sample, the indices of the top_k highest scores (and
/// optionally the values). Evaluation-only.
template <typename Dtype>
class ArgMaxLayer : public Layer<Dtype> {
 public:
  explicit ArgMaxLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}
  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;
  const char* type() const override { return "ArgMax"; }
  int ExactNumBottomBlobs() const override { return 1; }
  int ExactNumTopBlobs() const override { return 1; }
  bool AllowForceBackward(int /*bottom_index*/) const override {
    return false;
  }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Forward_cpu_parallel(const std::vector<Blob<Dtype>*>& bottom,
                            const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& /*top*/,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& /*bottom*/) override {
    for (const bool pd : propagate_down) {
      CGDNN_CHECK(!pd) << "ArgMax cannot backpropagate";
    }
  }

 private:
  void ForwardSample(const Dtype* scores, Dtype* out, index_t n) const;

  index_t top_k_ = 1;
  bool out_max_val_ = false;
  index_t dim_ = 0;
};

/// Silence: consumes bottoms, produces nothing; backward zeroes the bottom
/// diffs (so unused net outputs do not propagate garbage).
template <typename Dtype>
class SilenceLayer : public Layer<Dtype> {
 public:
  explicit SilenceLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}
  void Reshape(const std::vector<Blob<Dtype>*>& /*bottom*/,
               const std::vector<Blob<Dtype>*>& /*top*/) override {}
  const char* type() const override { return "Silence"; }
  int MinBottomBlobs() const override { return 1; }
  int ExactNumTopBlobs() const override { return 0; }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& /*bottom*/,
                   const std::vector<Blob<Dtype>*>& /*top*/) override {}
  void Backward_cpu(const std::vector<Blob<Dtype>*>& /*top*/,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override {
    for (std::size_t i = 0; i < bottom.size(); ++i) {
      if (propagate_down[i]) bottom[i]->set_diff(Dtype(0));
    }
  }
};

}  // namespace cgdnn
