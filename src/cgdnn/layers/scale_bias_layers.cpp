#include "cgdnn/layers/scale_bias_layers.hpp"

#include <omp.h>

#include "cgdnn/blas/blas.hpp"
#include "cgdnn/layers/filler.hpp"
#include "cgdnn/parallel/coalesce.hpp"
#include "cgdnn/parallel/instrument.hpp"

namespace cgdnn {

// ------------------------------------------------------------------- Scale

template <typename Dtype>
void ScaleLayer<Dtype>::LayerSetUp(const std::vector<Blob<Dtype>*>& bottom,
                                   const std::vector<Blob<Dtype>*>& top) {
  (void)top;
  const auto& p = this->layer_param_.scale_param;
  CGDNN_CHECK_EQ(p.num_axes, 1) << "only num_axes == 1 is implemented";
  bias_term_ = p.bias_term;
  const int axis = bottom[0]->CanonicalAxisIndex(p.axis);
  if (this->blobs_.empty()) {
    this->blobs_.resize(bias_term_ ? 2 : 1);
    this->blobs_[0] = std::make_shared<Blob<Dtype>>(
        std::vector<index_t>{bottom[0]->shape(axis)});
    GetFiller<Dtype>(p.filler)->Fill(*this->blobs_[0], GlobalRng());
    if (bias_term_) {
      this->blobs_[1] = std::make_shared<Blob<Dtype>>(
          std::vector<index_t>{bottom[0]->shape(axis)});
      GetFiller<Dtype>(p.bias_filler)->Fill(*this->blobs_[1], GlobalRng());
    }
  }
  this->param_propagate_down_.assign(this->blobs_.size(), true);
}

template <typename Dtype>
void ScaleLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                                const std::vector<Blob<Dtype>*>& top) {
  const int axis =
      bottom[0]->CanonicalAxisIndex(this->layer_param_.scale_param.axis);
  CGDNN_CHECK_EQ(bottom[0]->shape(axis), this->blobs_[0]->count())
      << "scaled axis changed size for " << this->layer_param_.name;
  outer_ = bottom[0]->count(0, axis);
  scale_dim_ = bottom[0]->shape(axis);
  inner_ = bottom[0]->count(axis + 1);
  top[0]->ReshapeLike(*bottom[0]);
}

template <typename Dtype>
void ScaleLayer<Dtype>::Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                                    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* x = bottom[0]->cpu_data();
  const Dtype* w = this->blobs_[0]->cpu_data();
  const Dtype* b = bias_term_ ? this->blobs_[1]->cpu_data() : nullptr;
  Dtype* y = top[0]->mutable_cpu_data();
  for (index_t o = 0; o < outer_; ++o) {
    for (index_t s = 0; s < scale_dim_; ++s) {
      const index_t base = (o * scale_dim_ + s) * inner_;
      for (index_t i = 0; i < inner_; ++i) {
        y[base + i] = x[base + i] * w[s] + (b != nullptr ? b[s] : Dtype(0));
      }
    }
  }
}

template <typename Dtype>
void ScaleLayer<Dtype>::Forward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* x = bottom[0]->cpu_data();
  const Dtype* w = this->blobs_[0]->cpu_data();
  const Dtype* b = bias_term_ ? this->blobs_[1]->cpu_data() : nullptr;
  Dtype* y = top[0]->mutable_cpu_data();
  const parallel::CoalescedRange range{outer_, scale_dim_};
#pragma omp parallel for num_threads(parallel::Parallel::ResolveThreads()) \
    schedule(static)
  for (index_t civ = 0; civ < range.total(); ++civ) {
    const auto idx = range.Decode(civ);
    const index_t s = idx[1];
    const index_t base = civ * inner_;
    for (index_t i = 0; i < inner_; ++i) {
      y[base + i] = x[base + i] * w[s] + (b != nullptr ? b[s] : Dtype(0));
    }
  }
}

template <typename Dtype>
void ScaleLayer<Dtype>::Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                                     const std::vector<bool>& propagate_down,
                                     const std::vector<Blob<Dtype>*>& bottom) {
  const Dtype* dy = top[0]->cpu_diff();
  const Dtype* x = bottom[0]->cpu_data();
  const Dtype* w = this->blobs_[0]->cpu_data();
  if (this->param_propagate_down(0)) {
    Dtype* dw = this->blobs_[0]->mutable_cpu_diff();
    for (index_t o = 0; o < outer_; ++o) {
      for (index_t s = 0; s < scale_dim_; ++s) {
        const index_t base = (o * scale_dim_ + s) * inner_;
        Dtype sum = dw[s];
        for (index_t i = 0; i < inner_; ++i) sum += dy[base + i] * x[base + i];
        dw[s] = sum;
      }
    }
  }
  if (bias_term_ && this->param_propagate_down(1)) {
    Dtype* db = this->blobs_[1]->mutable_cpu_diff();
    for (index_t o = 0; o < outer_; ++o) {
      for (index_t s = 0; s < scale_dim_; ++s) {
        const index_t base = (o * scale_dim_ + s) * inner_;
        Dtype sum = db[s];
        for (index_t i = 0; i < inner_; ++i) sum += dy[base + i];
        db[s] = sum;
      }
    }
  }
  if (propagate_down[0]) {
    Dtype* dx = bottom[0]->mutable_cpu_diff();
    for (index_t o = 0; o < outer_; ++o) {
      for (index_t s = 0; s < scale_dim_; ++s) {
        const index_t base = (o * scale_dim_ + s) * inner_;
        for (index_t i = 0; i < inner_; ++i) dx[base + i] = dy[base + i] * w[s];
      }
    }
  }
}

template <typename Dtype>
void ScaleLayer<Dtype>::Backward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  const Dtype* dy = top[0]->cpu_diff();
  const Dtype* x = bottom[0]->cpu_data();
  const Dtype* w = this->blobs_[0]->cpu_data();
  const bool do_w = this->param_propagate_down(0);
  const bool do_b = bias_term_ && this->param_propagate_down(1);
  Dtype* dw = do_w ? this->blobs_[0]->mutable_cpu_diff() : nullptr;
  Dtype* db = do_b ? this->blobs_[1]->mutable_cpu_diff() : nullptr;
  Dtype* dx = propagate_down[0] ? bottom[0]->mutable_cpu_diff() : nullptr;
  const int nthreads = parallel::Parallel::ResolveThreads();
  parallel::RegionStats rstats(this->layer_param_.name + ".backward",
                               nthreads);
  check::WriteSetChecker* chk = rstats.checker();
#pragma omp parallel num_threads(nthreads)
  {
    const int tid = omp_get_thread_num();
    const int team = omp_get_num_threads();
    parallel::ThreadRegionScope rscope(rstats, tid);
    if (do_w || do_b) {
      // Coefficient-partitioned gradients: thread t owns coefficients
      // [begin, end) and walks their slices in the serial outer order —
      // bit-identical to the sequential accumulation, no privatization.
      const auto coeffs = parallel::StaticChunk(scale_dim_, team, tid);
      if (chk != nullptr && coeffs.size() > 0) {
        if (do_w) {
          chk->RecordWrite(tid, dw, "weight.diff", coeffs.begin, coeffs.end);
        }
        if (do_b) {
          chk->RecordWrite(tid, db, "bias.diff", coeffs.begin, coeffs.end);
        }
      }
      for (index_t s = coeffs.begin; s < coeffs.end; ++s) {
        Dtype wsum = do_w ? dw[s] : Dtype(0);
        Dtype bsum = do_b ? db[s] : Dtype(0);
        for (index_t o = 0; o < outer_; ++o) {
          const index_t base = (o * scale_dim_ + s) * inner_;
          for (index_t i = 0; i < inner_; ++i) {
            if (do_w) wsum += dy[base + i] * x[base + i];
            if (do_b) bsum += dy[base + i];
          }
        }
        if (do_w) dw[s] = wsum;
        if (do_b) db[s] = bsum;
      }
    }
    if (dx != nullptr) {
      const parallel::CoalescedRange range{outer_, scale_dim_};
#pragma omp for schedule(static)
      for (index_t civ = 0; civ < range.total(); ++civ) {
        const index_t s = range.Decode(civ)[1];
        const index_t base = civ * inner_;
        for (index_t i = 0; i < inner_; ++i) {
          dx[base + i] = dy[base + i] * w[s];
        }
        if (chk != nullptr) {
          chk->RecordWrite(tid, dx, "bottom.diff", base, base + inner_);
        }
      }
    }
  }
}

// -------------------------------------------------------------------- Bias

template <typename Dtype>
void BiasLayer<Dtype>::LayerSetUp(const std::vector<Blob<Dtype>*>& bottom,
                                  const std::vector<Blob<Dtype>*>& top) {
  (void)top;
  const auto& p = this->layer_param_.bias_param;
  CGDNN_CHECK_EQ(p.num_axes, 1) << "only num_axes == 1 is implemented";
  const int axis = bottom[0]->CanonicalAxisIndex(p.axis);
  if (this->blobs_.empty()) {
    this->blobs_.resize(1);
    this->blobs_[0] = std::make_shared<Blob<Dtype>>(
        std::vector<index_t>{bottom[0]->shape(axis)});
    GetFiller<Dtype>(p.filler)->Fill(*this->blobs_[0], GlobalRng());
  }
  this->param_propagate_down_.assign(1, true);
}

template <typename Dtype>
void BiasLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                               const std::vector<Blob<Dtype>*>& top) {
  const int axis =
      bottom[0]->CanonicalAxisIndex(this->layer_param_.bias_param.axis);
  CGDNN_CHECK_EQ(bottom[0]->shape(axis), this->blobs_[0]->count())
      << "biased axis changed size for " << this->layer_param_.name;
  outer_ = bottom[0]->count(0, axis);
  bias_dim_ = bottom[0]->shape(axis);
  inner_ = bottom[0]->count(axis + 1);
  top[0]->ReshapeLike(*bottom[0]);
}

template <typename Dtype>
void BiasLayer<Dtype>::Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                                   const std::vector<Blob<Dtype>*>& top) {
  const Dtype* x = bottom[0]->cpu_data();
  const Dtype* b = this->blobs_[0]->cpu_data();
  Dtype* y = top[0]->mutable_cpu_data();
  for (index_t o = 0; o < outer_; ++o) {
    for (index_t s = 0; s < bias_dim_; ++s) {
      const index_t base = (o * bias_dim_ + s) * inner_;
      for (index_t i = 0; i < inner_; ++i) y[base + i] = x[base + i] + b[s];
    }
  }
}

template <typename Dtype>
void BiasLayer<Dtype>::Forward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* x = bottom[0]->cpu_data();
  const Dtype* b = this->blobs_[0]->cpu_data();
  Dtype* y = top[0]->mutable_cpu_data();
  const parallel::CoalescedRange range{outer_, bias_dim_};
#pragma omp parallel for num_threads(parallel::Parallel::ResolveThreads()) \
    schedule(static)
  for (index_t civ = 0; civ < range.total(); ++civ) {
    const index_t s = range.Decode(civ)[1];
    const index_t base = civ * inner_;
    for (index_t i = 0; i < inner_; ++i) y[base + i] = x[base + i] + b[s];
  }
}

template <typename Dtype>
void BiasLayer<Dtype>::Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                                    const std::vector<bool>& propagate_down,
                                    const std::vector<Blob<Dtype>*>& bottom) {
  const Dtype* dy = top[0]->cpu_diff();
  if (this->param_propagate_down(0)) {
    Dtype* db = this->blobs_[0]->mutable_cpu_diff();
    for (index_t o = 0; o < outer_; ++o) {
      for (index_t s = 0; s < bias_dim_; ++s) {
        const index_t base = (o * bias_dim_ + s) * inner_;
        Dtype sum = db[s];
        for (index_t i = 0; i < inner_; ++i) sum += dy[base + i];
        db[s] = sum;
      }
    }
  }
  if (propagate_down[0] && bottom[0] != top[0]) {
    blas::copy(bottom[0]->count(), dy, bottom[0]->mutable_cpu_diff());
  }
}

template <typename Dtype>
void BiasLayer<Dtype>::Backward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  const Dtype* dy = top[0]->cpu_diff();
  const bool do_b = this->param_propagate_down(0);
  Dtype* db = do_b ? this->blobs_[0]->mutable_cpu_diff() : nullptr;
  const int nthreads = parallel::Parallel::ResolveThreads();
  if (do_b) {
    parallel::RegionStats rstats(this->layer_param_.name + ".backward",
                                 nthreads);
    check::WriteSetChecker* chk = rstats.checker();
#pragma omp parallel num_threads(nthreads)
    {
      const int tid = omp_get_thread_num();
      parallel::ThreadRegionScope rscope(rstats, tid);
      const auto coeffs =
          parallel::StaticChunk(bias_dim_, omp_get_num_threads(), tid);
      if (chk != nullptr && coeffs.size() > 0) {
        chk->RecordWrite(tid, db, "bias.diff", coeffs.begin, coeffs.end);
      }
      for (index_t s = coeffs.begin; s < coeffs.end; ++s) {
        Dtype sum = db[s];
        for (index_t o = 0; o < outer_; ++o) {
          const index_t base = (o * bias_dim_ + s) * inner_;
          for (index_t i = 0; i < inner_; ++i) sum += dy[base + i];
        }
        db[s] = sum;
      }
    }
  }
  if (propagate_down[0] && bottom[0] != top[0]) {
    blas::copy(bottom[0]->count(), dy, bottom[0]->mutable_cpu_diff());
  }
}

#define CGDNN_INSTANTIATE_SB(Layer) \
  template class Layer<float>;      \
  template class Layer<double>

CGDNN_INSTANTIATE_SB(ScaleLayer);
CGDNN_INSTANTIATE_SB(BiasLayer);

}  // namespace cgdnn
