#include "cgdnn/layers/loss_layers.hpp"

#include <cmath>

#include "cgdnn/blas/blas.hpp"

namespace cgdnn {

// --------------------------------------------------------- SoftmaxWithLoss

template <typename Dtype>
void SoftmaxWithLossLayer<Dtype>::Reshape(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  LossLayer<Dtype>::Reshape(bottom, top);
  num_ = bottom[0]->num();
  channels_ = bottom[0]->count() / num_;
  CGDNN_CHECK_GT(channels_, 1) << "need at least two classes";
  CGDNN_CHECK_EQ(bottom[1]->count(), num_)
      << "label blob must hold one label per sample";
  prob_.Reshape({num_, channels_});
  per_sample_loss_.assign(static_cast<std::size_t>(num_), Dtype(0));
}

template <typename Dtype>
Dtype SoftmaxWithLossLayer<Dtype>::Normalizer() const {
  return this->layer_param_.loss_param.normalize ? static_cast<Dtype>(num_)
                                                 : Dtype(1);
}

template <typename Dtype>
Dtype SoftmaxWithLossLayer<Dtype>::ForwardSample(const Dtype* bottom_data,
                                                 const Dtype* label,
                                                 Dtype* prob_data,
                                                 index_t n) {
  const Dtype* in = bottom_data + n * channels_;
  Dtype* p = prob_data + n * channels_;
  Dtype max_val = in[0];
  for (index_t c = 1; c < channels_; ++c) max_val = std::max(max_val, in[c]);
  Dtype sum = 0;
  for (index_t c = 0; c < channels_; ++c) {
    p[c] = std::exp(in[c] - max_val);
    sum += p[c];
  }
  for (index_t c = 0; c < channels_; ++c) p[c] /= sum;

  const auto lab = static_cast<index_t>(label[n]);
  const auto& ignore = this->layer_param_.loss_param.ignore_label;
  if (ignore && *ignore == lab) return Dtype(0);
  CGDNN_CHECK_GE(lab, 0) << "label out of range";
  CGDNN_CHECK_LT(lab, channels_) << "label out of range";
  // Clamp to avoid -inf on (numerically) zero probabilities, as Caffe does.
  return -std::log(std::max(p[lab], Dtype(1e-20)));
}

template <typename Dtype>
void SoftmaxWithLossLayer<Dtype>::Forward_cpu(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  const Dtype* label = bottom[1]->cpu_data();
  Dtype* prob_data = prob_.mutable_cpu_data();
  Dtype loss = 0;
  for (index_t n = 0; n < num_; ++n) {
    loss += ForwardSample(bottom_data, label, prob_data, n);
  }
  top[0]->mutable_cpu_data()[0] = loss / Normalizer();
}

template <typename Dtype>
void SoftmaxWithLossLayer<Dtype>::Forward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  const Dtype* label = bottom[1]->cpu_data();
  Dtype* prob_data = prob_.mutable_cpu_data();  // resolved before the region
  Dtype* per_sample = per_sample_loss_.data();
  const int nthreads = parallel::Parallel::ResolveThreads();
#pragma omp parallel for num_threads(nthreads) schedule(static)
  for (index_t n = 0; n < num_; ++n) {
    per_sample[n] = ForwardSample(bottom_data, label, prob_data, n);
  }
  // Sample-ordered reduction: identical bit pattern to the serial loop.
  Dtype loss = 0;
  for (index_t n = 0; n < num_; ++n) loss += per_sample[n];
  top[0]->mutable_cpu_data()[0] = loss / Normalizer();
}

template <typename Dtype>
void SoftmaxWithLossLayer<Dtype>::BackwardSample(const Dtype* label,
                                                 Dtype* bottom_diff, index_t n,
                                                 Dtype scale) const {
  const Dtype* p = prob_.cpu_data() + n * channels_;
  Dtype* d = bottom_diff + n * channels_;
  const auto lab = static_cast<index_t>(label[n]);
  const auto& ignore = this->layer_param_.loss_param.ignore_label;
  if (ignore && *ignore == lab) {
    for (index_t c = 0; c < channels_; ++c) d[c] = Dtype(0);
    return;
  }
  for (index_t c = 0; c < channels_; ++c) d[c] = p[c] * scale;
  d[lab] -= scale;
}

template <typename Dtype>
void SoftmaxWithLossLayer<Dtype>::Backward_cpu(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  CGDNN_CHECK(!propagate_down[1])
      << "SoftmaxWithLoss cannot backpropagate to labels";
  if (!propagate_down[0]) return;
  const Dtype* label = bottom[1]->cpu_data();
  Dtype* bottom_diff = bottom[0]->mutable_cpu_diff();
  const Dtype scale = top[0]->cpu_diff()[0] / Normalizer();
  for (index_t n = 0; n < num_; ++n) {
    BackwardSample(label, bottom_diff, n, scale);
  }
}

template <typename Dtype>
void SoftmaxWithLossLayer<Dtype>::Backward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  CGDNN_CHECK(!propagate_down[1])
      << "SoftmaxWithLoss cannot backpropagate to labels";
  if (!propagate_down[0]) return;
  const Dtype* label = bottom[1]->cpu_data();
  Dtype* bottom_diff = bottom[0]->mutable_cpu_diff();
  const Dtype scale = top[0]->cpu_diff()[0] / Normalizer();
  const int nthreads = parallel::Parallel::ResolveThreads();
#pragma omp parallel for num_threads(nthreads) schedule(static)
  for (index_t n = 0; n < num_; ++n) {
    BackwardSample(label, bottom_diff, n, scale);
  }
}

// ------------------------------------------------------------ EuclideanLoss

template <typename Dtype>
void EuclideanLossLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                                        const std::vector<Blob<Dtype>*>& top) {
  LossLayer<Dtype>::Reshape(bottom, top);
  CGDNN_CHECK_EQ(bottom[0]->count(), bottom[1]->count())
      << "inputs must have the same count";
  diff_.ReshapeLike(*bottom[0]);
}

template <typename Dtype>
void EuclideanLossLayer<Dtype>::Forward_cpu(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const index_t count = bottom[0]->count();
  blas::sub(count, bottom[0]->cpu_data(), bottom[1]->cpu_data(),
            diff_.mutable_cpu_data());
  const Dtype dot = blas::dot(count, diff_.cpu_data(), diff_.cpu_data());
  top[0]->mutable_cpu_data()[0] =
      dot / static_cast<Dtype>(bottom[0]->num()) / Dtype(2);
}

template <typename Dtype>
void EuclideanLossLayer<Dtype>::Backward_cpu(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  for (int i = 0; i < 2; ++i) {
    if (!propagate_down[static_cast<std::size_t>(i)]) continue;
    const Dtype sign = i == 0 ? Dtype(1) : Dtype(-1);
    const Dtype alpha =
        sign * top[0]->cpu_diff()[0] / static_cast<Dtype>(bottom[0]->num());
    blas::axpby(bottom[static_cast<std::size_t>(i)]->count(), alpha,
                diff_.cpu_data(), Dtype(0),
                bottom[static_cast<std::size_t>(i)]->mutable_cpu_diff());
  }
}

template class LossLayer<float>;
template class LossLayer<double>;
template class SoftmaxWithLossLayer<float>;
template class SoftmaxWithLossLayer<double>;
template class EuclideanLossLayer<float>;
template class EuclideanLossLayer<double>;

}  // namespace cgdnn
