#include "cgdnn/layers/filler.hpp"

#include <cmath>

namespace cgdnn {

namespace {

template <typename Dtype>
class ConstantFiller : public Filler<Dtype> {
 public:
  using Filler<Dtype>::Filler;
  void Fill(Blob<Dtype>& blob, Rng& /*rng*/) override {
    blob.set_data(static_cast<Dtype>(this->param_.value));
  }
};

template <typename Dtype>
class UniformFiller : public Filler<Dtype> {
 public:
  using Filler<Dtype>::Filler;
  void Fill(Blob<Dtype>& blob, Rng& rng) override {
    Dtype* data = blob.mutable_cpu_data();
    for (index_t i = 0; i < blob.count(); ++i) {
      data[i] = static_cast<Dtype>(
          rng.Uniform(this->param_.min, this->param_.max));
    }
  }
};

template <typename Dtype>
class GaussianFiller : public Filler<Dtype> {
 public:
  using Filler<Dtype>::Filler;
  void Fill(Blob<Dtype>& blob, Rng& rng) override {
    Dtype* data = blob.mutable_cpu_data();
    for (index_t i = 0; i < blob.count(); ++i) {
      data[i] = static_cast<Dtype>(
          rng.Gaussian(this->param_.mean, this->param_.std));
    }
  }
};

template <typename Dtype>
class XavierFiller : public Filler<Dtype> {
 public:
  using Filler<Dtype>::Filler;
  void Fill(Blob<Dtype>& blob, Rng& rng) override {
    const Dtype scale = std::sqrt(Dtype(3) / this->ScaleDenominator(blob));
    Dtype* data = blob.mutable_cpu_data();
    for (index_t i = 0; i < blob.count(); ++i) {
      data[i] = static_cast<Dtype>(rng.Uniform(-scale, scale));
    }
  }
};

template <typename Dtype>
class MsraFiller : public Filler<Dtype> {
 public:
  using Filler<Dtype>::Filler;
  void Fill(Blob<Dtype>& blob, Rng& rng) override {
    const Dtype std_dev = std::sqrt(Dtype(2) / this->ScaleDenominator(blob));
    Dtype* data = blob.mutable_cpu_data();
    for (index_t i = 0; i < blob.count(); ++i) {
      data[i] = static_cast<Dtype>(rng.Gaussian(0.0, std_dev));
    }
  }
};

template <typename Dtype>
class PositiveUnitballFiller : public Filler<Dtype> {
 public:
  using Filler<Dtype>::Filler;
  void Fill(Blob<Dtype>& blob, Rng& rng) override {
    Dtype* data = blob.mutable_cpu_data();
    const index_t num = blob.shape(0);
    const index_t dim = blob.count() / num;
    for (index_t n = 0; n < num; ++n) {
      Dtype sum = 0;
      for (index_t i = 0; i < dim; ++i) {
        data[n * dim + i] = static_cast<Dtype>(rng.Uniform());
        sum += data[n * dim + i];
      }
      CGDNN_CHECK_GT(sum, Dtype(0));
      for (index_t i = 0; i < dim; ++i) data[n * dim + i] /= sum;
    }
  }
};

template <typename Dtype>
class BilinearFiller : public Filler<Dtype> {
 public:
  using Filler<Dtype>::Filler;
  void Fill(Blob<Dtype>& blob, Rng& /*rng*/) override {
    CGDNN_CHECK_EQ(blob.num_axes(), 4) << "bilinear filler needs 4-axis blob";
    CGDNN_CHECK_EQ(blob.height(), blob.width())
        << "bilinear filler needs square kernels";
    Dtype* data = blob.mutable_cpu_data();
    const index_t k = blob.height();
    const auto f = static_cast<Dtype>((k + 1) / 2);
    const Dtype c = (static_cast<Dtype>(k) - 1) / (Dtype(2) * f);
    for (index_t i = 0; i < blob.count(); ++i) {
      const index_t x = i % k;
      const index_t y = (i / k) % k;
      data[i] = (Dtype(1) - std::abs(static_cast<Dtype>(x) / f - c)) *
                (Dtype(1) - std::abs(static_cast<Dtype>(y) / f - c));
    }
  }
};

}  // namespace

template <typename Dtype>
std::unique_ptr<Filler<Dtype>> GetFiller(const proto::FillerParameter& param) {
  const std::string& type = param.type;
  if (type == "constant") return std::make_unique<ConstantFiller<Dtype>>(param);
  if (type == "uniform") return std::make_unique<UniformFiller<Dtype>>(param);
  if (type == "gaussian") return std::make_unique<GaussianFiller<Dtype>>(param);
  if (type == "xavier") return std::make_unique<XavierFiller<Dtype>>(param);
  if (type == "msra") return std::make_unique<MsraFiller<Dtype>>(param);
  if (type == "positive_unitball")
    return std::make_unique<PositiveUnitballFiller<Dtype>>(param);
  if (type == "bilinear") return std::make_unique<BilinearFiller<Dtype>>(param);
  throw Error(__FILE__, __LINE__, "unknown filler type: " + type);
}

template std::unique_ptr<Filler<float>> GetFiller<float>(
    const proto::FillerParameter&);
template std::unique_ptr<Filler<double>> GetFiller<double>(
    const proto::FillerParameter&);

}  // namespace cgdnn
