#include "cgdnn/layers/shape_layers.hpp"

#include <algorithm>
#include <numeric>

#include "cgdnn/blas/blas.hpp"

namespace cgdnn {

// ------------------------------------------------------------------- Slice

template <typename Dtype>
void SliceLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                                const std::vector<Blob<Dtype>*>& top) {
  const auto& p = this->layer_param_.slice_param;
  axis_ = bottom[0]->CanonicalAxisIndex(p.axis);
  const index_t axis_dim = bottom[0]->shape(axis_);
  sizes_.clear();
  if (p.slice_point.empty()) {
    CGDNN_CHECK_EQ(axis_dim % static_cast<index_t>(top.size()), 0)
        << "axis dim " << axis_dim << " not divisible into " << top.size()
        << " equal slices";
    sizes_.assign(top.size(), axis_dim / static_cast<index_t>(top.size()));
  } else {
    CGDNN_CHECK_EQ(p.slice_point.size(), top.size() - 1)
        << "need exactly tops-1 slice points";
    index_t prev = 0;
    for (const index_t sp : p.slice_point) {
      CGDNN_CHECK_GT(sp, prev) << "slice points must be increasing";
      CGDNN_CHECK_LT(sp, axis_dim) << "slice point beyond axis extent";
      sizes_.push_back(sp - prev);
      prev = sp;
    }
    sizes_.push_back(axis_dim - prev);
  }
  num_slices_ = bottom[0]->count(0, axis_);
  slice_input_ = bottom[0]->count(axis_);
  for (std::size_t i = 0; i < top.size(); ++i) {
    std::vector<index_t> shape = bottom[0]->shape();
    shape[static_cast<std::size_t>(axis_)] = sizes_[i];
    top[i]->Reshape(shape);
  }
}

template <typename Dtype>
void SliceLayer<Dtype>::Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                                    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  index_t offset = 0;
  for (std::size_t i = 0; i < top.size(); ++i) {
    Dtype* top_data = top[i]->mutable_cpu_data();
    const index_t slice = top[i]->count(axis_);
    for (index_t n = 0; n < num_slices_; ++n) {
      blas::copy(slice, bottom_data + n * slice_input_ + offset,
                 top_data + n * slice);
    }
    offset += slice;
  }
}

template <typename Dtype>
void SliceLayer<Dtype>::Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                                     const std::vector<bool>& propagate_down,
                                     const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  Dtype* bottom_diff = bottom[0]->mutable_cpu_diff();
  index_t offset = 0;
  for (std::size_t i = 0; i < top.size(); ++i) {
    const Dtype* top_diff = top[i]->cpu_diff();
    const index_t slice = top[i]->count(axis_);
    for (index_t n = 0; n < num_slices_; ++n) {
      blas::copy(slice, top_diff + n * slice,
                 bottom_diff + n * slice_input_ + offset);
    }
    offset += slice;
  }
}

// ----------------------------------------------------------------- Reshape

template <typename Dtype>
void ReshapeLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                                  const std::vector<Blob<Dtype>*>& top) {
  CGDNN_CHECK_NE(bottom[0], top[0]) << "Reshape cannot run in-place";
  const auto& dims = this->layer_param_.reshape_param.shape.dim;
  CGDNN_CHECK(!dims.empty()) << "reshape_param.shape is required";
  std::vector<index_t> shape;
  int infer_axis = -1;
  index_t known = 1;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    index_t d = dims[i];
    if (d == 0) {
      CGDNN_CHECK_LT(static_cast<int>(i), bottom[0]->num_axes())
          << "dim 0 copies a bottom axis that does not exist";
      d = bottom[0]->shape(static_cast<int>(i));
    }
    if (d == -1) {
      CGDNN_CHECK_EQ(infer_axis, -1) << "at most one -1 dim";
      infer_axis = static_cast<int>(i);
      shape.push_back(0);  // placeholder
      continue;
    }
    CGDNN_CHECK_GT(d, 0) << "invalid reshape dim " << dims[i];
    known *= d;
    shape.push_back(d);
  }
  if (infer_axis >= 0) {
    CGDNN_CHECK_EQ(bottom[0]->count() % known, 0)
        << "cannot infer -1: " << bottom[0]->count() << " not divisible by "
        << known;
    shape[static_cast<std::size_t>(infer_axis)] = bottom[0]->count() / known;
  }
  top[0]->Reshape(shape);
  CGDNN_CHECK_EQ(top[0]->count(), bottom[0]->count())
      << "reshape must preserve the element count";
  top[0]->ShareData(*bottom[0]);
  top[0]->ShareDiff(*bottom[0]);
}

// ------------------------------------------------------------------ ArgMax

template <typename Dtype>
void ArgMaxLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                                 const std::vector<Blob<Dtype>*>& top) {
  const auto& p = this->layer_param_.argmax_param;
  top_k_ = p.top_k;
  out_max_val_ = p.out_max_val;
  dim_ = bottom[0]->count(1);
  CGDNN_CHECK_GE(top_k_, 1);
  CGDNN_CHECK_LE(top_k_, dim_) << "top_k exceeds the per-sample dimension";
  top[0]->Reshape({bottom[0]->shape(0), out_max_val_ ? 2 * top_k_ : top_k_});
}

template <typename Dtype>
void ArgMaxLayer<Dtype>::ForwardSample(const Dtype* scores, Dtype* out,
                                       index_t n) const {
  const Dtype* s = scores + n * dim_;
  std::vector<index_t> idx(static_cast<std::size_t>(dim_));
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + top_k_, idx.end(),
                    [s](index_t a, index_t b) {
                      return s[a] > s[b] || (s[a] == s[b] && a < b);
                    });
  const index_t out_dim = out_max_val_ ? 2 * top_k_ : top_k_;
  for (index_t k = 0; k < top_k_; ++k) {
    out[n * out_dim + k] = static_cast<Dtype>(idx[static_cast<std::size_t>(k)]);
    if (out_max_val_) {
      out[n * out_dim + top_k_ + k] = s[idx[static_cast<std::size_t>(k)]];
    }
  }
}

template <typename Dtype>
void ArgMaxLayer<Dtype>::Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                                     const std::vector<Blob<Dtype>*>& top) {
  const Dtype* scores = bottom[0]->cpu_data();
  Dtype* out = top[0]->mutable_cpu_data();
  for (index_t n = 0; n < bottom[0]->shape(0); ++n) {
    ForwardSample(scores, out, n);
  }
}

template <typename Dtype>
void ArgMaxLayer<Dtype>::Forward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* scores = bottom[0]->cpu_data();
  Dtype* out = top[0]->mutable_cpu_data();
  const index_t num = bottom[0]->shape(0);
#pragma omp parallel for num_threads(parallel::Parallel::ResolveThreads()) \
    schedule(static)
  for (index_t n = 0; n < num; ++n) {
    ForwardSample(scores, out, n);
  }
}

#define CGDNN_INSTANTIATE_SHAPE(Layer) \
  template class Layer<float>;         \
  template class Layer<double>

CGDNN_INSTANTIATE_SHAPE(SliceLayer);
CGDNN_INSTANTIATE_SHAPE(ReshapeLayer);
CGDNN_INSTANTIATE_SHAPE(ArgMaxLayer);
CGDNN_INSTANTIATE_SHAPE(SilenceLayer);

}  // namespace cgdnn
