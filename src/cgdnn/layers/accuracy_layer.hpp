// AccuracyLayer: fraction of samples whose label is among the top-k scored
// classes. Evaluation-only (no backward), used by the TEST-phase nets.
#pragma once

#include "cgdnn/layers/layer.hpp"

namespace cgdnn {

template <typename Dtype>
class AccuracyLayer : public Layer<Dtype> {
 public:
  explicit AccuracyLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}

  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;

  const char* type() const override { return "Accuracy"; }
  int ExactNumBottomBlobs() const override { return 2; }
  int ExactNumTopBlobs() const override { return 1; }
  bool AllowForceBackward(int /*bottom_index*/) const override {
    return false;
  }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& /*top*/,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& /*bottom*/) override {
    for (const bool pd : propagate_down) {
      CGDNN_CHECK(!pd) << "Accuracy layer cannot backpropagate";
    }
  }

 private:
  index_t top_k_ = 1;
};

}  // namespace cgdnn
