// Additional element-wise layers completing the Caffe neuron-layer family:
// Power, Exp, Log, AbsVal, BNLL (softplus) and ELU.
//
// All of them coalesce the whole loop nest in the coarse-grain path, which
// the shared ElementwiseNeuronLayer base implements once: subclasses only
// provide the per-element function and derivative — and automatically get
// the paper's batch-level parallelization (a concrete demonstration of the
// network-agnostic property inside the library itself).
#pragma once

#include <cmath>

#include "cgdnn/layers/neuron_layers.hpp"

namespace cgdnn {

/// Base for stateless element-wise layers: y_i = f(x_i),
/// dx_i = dy_i * f'(x_i, y_i). Serial and coarse-grain paths share the
/// per-element functions.
template <typename Dtype>
class ElementwiseNeuronLayer : public NeuronLayer<Dtype> {
 public:
  using NeuronLayer<Dtype>::NeuronLayer;

 protected:
  virtual Dtype Evaluate(Dtype x) const = 0;
  /// Derivative given input x and already-computed output y.
  virtual Dtype Derivative(Dtype x, Dtype y) const = 0;

  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;
  void Forward_cpu_parallel(const std::vector<Blob<Dtype>*>& bottom,
                            const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu_parallel(const std::vector<Blob<Dtype>*>& top,
                             const std::vector<bool>& propagate_down,
                             const std::vector<Blob<Dtype>*>& bottom) override;
};

/// y = (shift + scale * x) ^ power
template <typename Dtype>
class PowerLayer : public ElementwiseNeuronLayer<Dtype> {
 public:
  explicit PowerLayer(const proto::LayerParameter& param)
      : ElementwiseNeuronLayer<Dtype>(param),
        power_(static_cast<Dtype>(param.power_param.power)),
        scale_(static_cast<Dtype>(param.power_param.scale)),
        shift_(static_cast<Dtype>(param.power_param.shift)) {}
  const char* type() const override { return "Power"; }

 protected:
  Dtype Evaluate(Dtype x) const override {
    return std::pow(shift_ + scale_ * x, power_);
  }
  Dtype Derivative(Dtype x, Dtype y) const override {
    // dy/dx = power * scale * (shift + scale x)^(power-1)
    //       = power * scale * y / (shift + scale x)  when the base != 0.
    const Dtype base = shift_ + scale_ * x;
    if (power_ == Dtype(1)) return scale_;
    if (base == Dtype(0)) return Dtype(0);
    return power_ * scale_ * y / base;
  }

 private:
  Dtype power_, scale_, shift_;
};

/// y = base ^ (shift + scale * x)
template <typename Dtype>
class ExpLayer : public ElementwiseNeuronLayer<Dtype> {
 public:
  explicit ExpLayer(const proto::LayerParameter& param)
      : ElementwiseNeuronLayer<Dtype>(param),
        log_base_(param.exp_param.base < 0
                      ? Dtype(1)
                      : static_cast<Dtype>(std::log(param.exp_param.base))),
        scale_(static_cast<Dtype>(param.exp_param.scale)),
        shift_(static_cast<Dtype>(param.exp_param.shift)) {
    CGDNN_CHECK(param.exp_param.base < 0 || param.exp_param.base > 0)
        << "Exp base must be positive (or -1 for e)";
  }
  const char* type() const override { return "Exp"; }

 protected:
  Dtype Evaluate(Dtype x) const override {
    return std::exp((shift_ + scale_ * x) * log_base_);
  }
  Dtype Derivative(Dtype /*x*/, Dtype y) const override {
    return y * scale_ * log_base_;
  }

 private:
  Dtype log_base_, scale_, shift_;
};

/// y = log_base(shift + scale * x)
template <typename Dtype>
class LogLayer : public ElementwiseNeuronLayer<Dtype> {
 public:
  explicit LogLayer(const proto::LayerParameter& param)
      : ElementwiseNeuronLayer<Dtype>(param),
        inv_log_base_(param.log_param.base < 0
                          ? Dtype(1)
                          : Dtype(1) / static_cast<Dtype>(
                                           std::log(param.log_param.base))),
        scale_(static_cast<Dtype>(param.log_param.scale)),
        shift_(static_cast<Dtype>(param.log_param.shift)) {}
  const char* type() const override { return "Log"; }

 protected:
  Dtype Evaluate(Dtype x) const override {
    return std::log(shift_ + scale_ * x) * inv_log_base_;
  }
  Dtype Derivative(Dtype x, Dtype /*y*/) const override {
    return scale_ * inv_log_base_ / (shift_ + scale_ * x);
  }

 private:
  Dtype inv_log_base_, scale_, shift_;
};

/// y = |x|
template <typename Dtype>
class AbsValLayer : public ElementwiseNeuronLayer<Dtype> {
 public:
  using ElementwiseNeuronLayer<Dtype>::ElementwiseNeuronLayer;
  const char* type() const override { return "AbsVal"; }

 protected:
  Dtype Evaluate(Dtype x) const override { return std::abs(x); }
  Dtype Derivative(Dtype x, Dtype /*y*/) const override {
    return x > 0 ? Dtype(1) : (x < 0 ? Dtype(-1) : Dtype(0));
  }
};

/// BNLL / softplus: y = log(1 + exp(x)), evaluated overflow-safely.
template <typename Dtype>
class BNLLLayer : public ElementwiseNeuronLayer<Dtype> {
 public:
  using ElementwiseNeuronLayer<Dtype>::ElementwiseNeuronLayer;
  const char* type() const override { return "BNLL"; }

 protected:
  Dtype Evaluate(Dtype x) const override {
    return x > 0 ? x + std::log1p(std::exp(-x)) : std::log1p(std::exp(x));
  }
  Dtype Derivative(Dtype x, Dtype /*y*/) const override {
    // sigmoid(x)
    return Dtype(0.5) * std::tanh(Dtype(0.5) * x) + Dtype(0.5);
  }
};

/// ELU: y = x for x > 0, alpha * (exp(x) - 1) otherwise.
template <typename Dtype>
class ELULayer : public ElementwiseNeuronLayer<Dtype> {
 public:
  explicit ELULayer(const proto::LayerParameter& param)
      : ElementwiseNeuronLayer<Dtype>(param),
        alpha_(static_cast<Dtype>(param.elu_param.alpha)) {}
  const char* type() const override { return "ELU"; }

 protected:
  Dtype Evaluate(Dtype x) const override {
    return x > 0 ? x : alpha_ * (std::exp(x) - Dtype(1));
  }
  Dtype Derivative(Dtype x, Dtype y) const override {
    return x > 0 ? Dtype(1) : y + alpha_;
  }

 private:
  Dtype alpha_;
};

}  // namespace cgdnn
