// Input layers.
//
// DataLayer feeds batches from a Dataset (synthetic or file-backed; see
// cgdnn/data). It executes SEQUENTIALLY by design — the paper keeps Caffe's
// data layers serial and identifies the resulting first-conv-layer locality
// penalty as one of the coarse-grain limiting factors (§4.3 "Locality
// between layers"); the multicore simulator models exactly this.
//
// DummyDataLayer produces filler-defined constant blobs (tests/benches).
#pragma once

#include <memory>

#include "cgdnn/data/dataset.hpp"
#include "cgdnn/data/transformer.hpp"
#include "cgdnn/layers/layer.hpp"

namespace cgdnn {

template <typename Dtype>
class DataLayer : public Layer<Dtype> {
 public:
  explicit DataLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}

  void LayerSetUp(const std::vector<Blob<Dtype>*>& bottom,
                  const std::vector<Blob<Dtype>*>& top) override;
  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;

  const char* type() const override { return "Data"; }
  int ExactNumBottomBlobs() const override { return 0; }
  int MinTopBlobs() const override { return 1; }
  int MaxTopBlobs() const override { return 2; }
  bool AllowForceBackward(int /*bottom_index*/) const override {
    return false;
  }

  /// Position of the next sample in the epoch stream (tests).
  index_t cursor() const { return cursor_; }

  // The epoch cursor and augmentation ordinal advance every batch; both
  // must survive a checkpoint/resume for the sample stream to continue
  // where it stopped.
  void ExportRuntimeState(std::vector<std::uint64_t>& state) const override {
    state.push_back(static_cast<std::uint64_t>(cursor_));
    state.push_back(ordinal_);
  }
  void ImportRuntimeState(const std::vector<std::uint64_t>& state) override {
    CGDNN_CHECK_EQ(state.size(), 2u)
        << "Data layer runtime state must be {cursor, ordinal}";
    CGDNN_CHECK_LT(state[0], static_cast<std::uint64_t>(dataset_->num))
        << "restored data cursor out of range";
    cursor_ = static_cast<index_t>(state[0]);
    ordinal_ = state[1];
  }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& /*top*/,
                    const std::vector<bool>& /*propagate_down*/,
                    const std::vector<Blob<Dtype>*>& /*bottom*/) override {}
  // No Forward_cpu_parallel override: data layers stay sequential (paper).

 private:
  std::shared_ptr<const data::Dataset> dataset_;
  std::unique_ptr<data::DataTransformer> transformer_;
  index_t batch_size_ = 0;
  index_t cursor_ = 0;
  std::uint64_t ordinal_ = 0;  // global sample counter for augmentation
  std::vector<float> transform_buf_;
};

/// MemoryDataLayer: serves batches from user-provided arrays (Caffe's
/// MemoryDataLayer). Call Reset() with sample-major data before the first
/// forward; the layer walks the array in batch_size steps, wrapping. The
/// caller keeps ownership and must keep the arrays alive. Like every data
/// layer it executes sequentially (paper §4.3).
template <typename Dtype>
class MemoryDataLayer : public Layer<Dtype> {
 public:
  explicit MemoryDataLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}

  void LayerSetUp(const std::vector<Blob<Dtype>*>& bottom,
                  const std::vector<Blob<Dtype>*>& top) override;
  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;

  const char* type() const override { return "MemoryData"; }
  int ExactNumBottomBlobs() const override { return 0; }
  int MinTopBlobs() const override { return 1; }
  int MaxTopBlobs() const override { return 2; }
  bool AllowForceBackward(int /*bottom_index*/) const override {
    return false;
  }

  /// Points the layer at `n` samples (each channels*height*width values,
  /// sample-major) and, optionally, `n` labels. Resets the cursor.
  void Reset(const Dtype* data, const Dtype* labels, index_t n);

  index_t batch_size() const { return batch_size_; }

  void ExportRuntimeState(std::vector<std::uint64_t>& state) const override {
    state.push_back(static_cast<std::uint64_t>(cursor_));
  }
  void ImportRuntimeState(const std::vector<std::uint64_t>& state) override {
    CGDNN_CHECK_EQ(state.size(), 1u)
        << "MemoryData layer runtime state must be {cursor}";
    cursor_ = static_cast<index_t>(state[0]);
  }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& /*top*/,
                    const std::vector<bool>& /*propagate_down*/,
                    const std::vector<Blob<Dtype>*>& /*bottom*/) override {}

 private:
  index_t batch_size_ = 0;
  index_t channels_ = 0, height_ = 0, width_ = 0;
  const Dtype* data_ = nullptr;
  const Dtype* labels_ = nullptr;
  index_t num_samples_ = 0;
  index_t cursor_ = 0;
};

template <typename Dtype>
class DummyDataLayer : public Layer<Dtype> {
 public:
  explicit DummyDataLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}

  void LayerSetUp(const std::vector<Blob<Dtype>*>& bottom,
                  const std::vector<Blob<Dtype>*>& top) override;
  void Reshape(const std::vector<Blob<Dtype>*>& /*bottom*/,
               const std::vector<Blob<Dtype>*>& /*top*/) override {}

  const char* type() const override { return "DummyData"; }
  int ExactNumBottomBlobs() const override { return 0; }
  int MinTopBlobs() const override { return 1; }
  bool AllowForceBackward(int /*bottom_index*/) const override {
    return false;
  }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& /*bottom*/,
                   const std::vector<Blob<Dtype>*>& /*top*/) override {}
  void Backward_cpu(const std::vector<Blob<Dtype>*>& /*top*/,
                    const std::vector<bool>& /*propagate_down*/,
                    const std::vector<Blob<Dtype>*>& /*bottom*/) override {}
};

}  // namespace cgdnn
