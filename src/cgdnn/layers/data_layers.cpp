#include "cgdnn/layers/data_layers.hpp"

#include <algorithm>

#include "cgdnn/core/rng.hpp"
#include "cgdnn/layers/filler.hpp"

namespace cgdnn {

// -------------------------------------------------------------------- Data

template <typename Dtype>
void DataLayer<Dtype>::LayerSetUp(const std::vector<Blob<Dtype>*>& bottom,
                                  const std::vector<Blob<Dtype>*>& top) {
  (void)bottom;
  (void)top;
  const auto& p = this->layer_param_.data_param;
  CGDNN_CHECK_GT(p.batch_size, 0)
      << "data layer '" << this->layer_param_.name << "' needs batch_size";
  batch_size_ = p.batch_size;
  dataset_ = data::LoadDataset(p.source, p.num_samples, p.seed);
  CGDNN_CHECK_GE(dataset_->num, batch_size_)
      << "dataset smaller than one batch";
  transformer_ = std::make_unique<data::DataTransformer>(
      this->layer_param_.transform_param, this->phase_, p.seed);
  transform_buf_.resize(static_cast<std::size_t>(
      dataset_->channels * transformer_->out_height(dataset_->height) *
      transformer_->out_width(dataset_->width)));
}

template <typename Dtype>
void DataLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                               const std::vector<Blob<Dtype>*>& top) {
  (void)bottom;
  top[0]->Reshape(batch_size_, dataset_->channels,
                  transformer_->out_height(dataset_->height),
                  transformer_->out_width(dataset_->width));
  if (top.size() > 1) top[1]->Reshape({batch_size_});
}

template <typename Dtype>
void DataLayer<Dtype>::Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                                   const std::vector<Blob<Dtype>*>& top) {
  (void)bottom;
  Dtype* data = top[0]->mutable_cpu_data();
  Dtype* label = top.size() > 1 ? top[1]->mutable_cpu_data() : nullptr;
  const index_t sample_out = top[0]->count(1);
  // Sequential batch assembly (one thread touches all input data — the
  // memory-footprint pattern the paper attributes conv1's locality loss to).
  for (index_t i = 0; i < batch_size_; ++i) {
    const index_t s = cursor_;
    transformer_->Transform(dataset_->sample(s), dataset_->channels,
                            dataset_->height, dataset_->width, ordinal_++,
                            transform_buf_.data());
    Dtype* out = data + i * sample_out;
    for (index_t j = 0; j < sample_out; ++j) {
      out[j] = static_cast<Dtype>(transform_buf_[static_cast<std::size_t>(j)]);
    }
    if (label != nullptr) label[i] = static_cast<Dtype>(dataset_->label(s));
    cursor_ = (cursor_ + 1) % dataset_->num;
  }
}

// -------------------------------------------------------------- MemoryData

template <typename Dtype>
void MemoryDataLayer<Dtype>::LayerSetUp(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  (void)bottom;
  (void)top;
  const auto& p = this->layer_param_.memory_data_param;
  CGDNN_CHECK_GT(p.batch_size, 0) << "MemoryData needs batch_size";
  CGDNN_CHECK_GT(p.channels, 0) << "MemoryData needs channels";
  CGDNN_CHECK_GT(p.height, 0) << "MemoryData needs height";
  CGDNN_CHECK_GT(p.width, 0) << "MemoryData needs width";
  batch_size_ = p.batch_size;
  channels_ = p.channels;
  height_ = p.height;
  width_ = p.width;
}

template <typename Dtype>
void MemoryDataLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                                     const std::vector<Blob<Dtype>*>& top) {
  (void)bottom;
  top[0]->Reshape(batch_size_, channels_, height_, width_);
  if (top.size() > 1) top[1]->Reshape({batch_size_});
}

template <typename Dtype>
void MemoryDataLayer<Dtype>::Reset(const Dtype* data, const Dtype* labels,
                                   index_t n) {
  CGDNN_CHECK(data != nullptr);
  CGDNN_CHECK_GE(n, batch_size_) << "need at least one batch of samples";
  data_ = data;
  labels_ = labels;
  num_samples_ = n;
  cursor_ = 0;
}

template <typename Dtype>
void MemoryDataLayer<Dtype>::Forward_cpu(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  (void)bottom;
  CGDNN_CHECK(data_ != nullptr)
      << "MemoryData layer '" << this->layer_param_.name
      << "' used before Reset()";
  if (top.size() > 1) {
    CGDNN_CHECK(labels_ != nullptr)
        << "label top requested but Reset() got no labels";
  }
  const index_t dim = channels_ * height_ * width_;
  Dtype* out = top[0]->mutable_cpu_data();
  Dtype* label_out = top.size() > 1 ? top[1]->mutable_cpu_data() : nullptr;
  for (index_t i = 0; i < batch_size_; ++i) {
    std::copy(data_ + cursor_ * dim, data_ + (cursor_ + 1) * dim,
              out + i * dim);
    if (label_out != nullptr) label_out[i] = labels_[cursor_];
    cursor_ = (cursor_ + 1) % num_samples_;
  }
}

// --------------------------------------------------------------- DummyData

template <typename Dtype>
void DummyDataLayer<Dtype>::LayerSetUp(const std::vector<Blob<Dtype>*>& bottom,
                                       const std::vector<Blob<Dtype>*>& top) {
  (void)bottom;
  const auto& p = this->layer_param_.dummy_data_param;
  CGDNN_CHECK_EQ(p.shape.size(), top.size())
      << "DummyData needs one shape per top blob";
  for (std::size_t i = 0; i < top.size(); ++i) {
    top[i]->Reshape(p.shape[i].dim);
    proto::FillerParameter filler_param;  // default: constant 0
    if (i < p.data_filler.size()) filler_param = p.data_filler[i];
    GetFiller<Dtype>(filler_param)->Fill(*top[i], GlobalRng());
  }
}

template class MemoryDataLayer<float>;
template class MemoryDataLayer<double>;
template class DataLayer<float>;
template class DataLayer<double>;
template class DummyDataLayer<float>;
template class DummyDataLayer<double>;

}  // namespace cgdnn
