// Weight/bias initialization strategies (Caffe's filler.hpp).
// All fillers draw from an explicitly passed Rng, so network initialization
// is a pure function of the solver's random_seed.
#pragma once

#include <memory>

#include "cgdnn/core/blob.hpp"
#include "cgdnn/core/rng.hpp"
#include "cgdnn/proto/params.hpp"

namespace cgdnn {

template <typename Dtype>
class Filler {
 public:
  explicit Filler(const proto::FillerParameter& param) : param_(param) {}
  virtual ~Filler() = default;
  virtual void Fill(Blob<Dtype>& blob, Rng& rng) = 0;

 protected:
  /// Fan-in / fan-out for xavier/msra scaling: for a blob of shape
  /// (num, channels, h, w), fan_in = channels*h*w, fan_out = num*h*w.
  static index_t FanIn(const Blob<Dtype>& blob) {
    return blob.count() / blob.shape(0);
  }
  static index_t FanOut(const Blob<Dtype>& blob) {
    return blob.num_axes() > 1 ? blob.count() / blob.shape(1) : blob.count();
  }
  Dtype ScaleDenominator(const Blob<Dtype>& blob) const {
    index_t n = FanIn(blob);
    if (param_.variance_norm == "FAN_OUT") {
      n = FanOut(blob);
    } else if (param_.variance_norm == "AVERAGE") {
      n = (FanIn(blob) + FanOut(blob)) / 2;
    }
    return static_cast<Dtype>(n);
  }

  proto::FillerParameter param_;
};

/// Creates the filler named by `param.type`:
/// constant | uniform | gaussian | xavier | msra | positive_unitball | bilinear.
template <typename Dtype>
std::unique_ptr<Filler<Dtype>> GetFiller(const proto::FillerParameter& param);

}  // namespace cgdnn
