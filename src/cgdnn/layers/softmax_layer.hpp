// SoftmaxLayer: channel-wise softmax (numerically stabilized by max
// subtraction), applied independently at each (outer, inner) position.
#pragma once

#include "cgdnn/layers/layer.hpp"

namespace cgdnn {

template <typename Dtype>
class SoftmaxLayer : public Layer<Dtype> {
 public:
  explicit SoftmaxLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}

  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;

  const char* type() const override { return "Softmax"; }
  int ExactNumBottomBlobs() const override { return 1; }
  int ExactNumTopBlobs() const override { return 1; }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;
  void Forward_cpu_parallel(const std::vector<Blob<Dtype>*>& bottom,
                            const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu_parallel(const std::vector<Blob<Dtype>*>& top,
                             const std::vector<bool>& propagate_down,
                             const std::vector<Blob<Dtype>*>& bottom) override;

 private:
  void ForwardPosition(const Dtype* bottom_data, Dtype* top_data,
                       index_t outer, index_t inner) const;
  void BackwardPosition(const Dtype* top_data, const Dtype* top_diff,
                        Dtype* bottom_diff, index_t outer, index_t inner) const;

  index_t outer_num_ = 0;
  index_t channels_ = 0;
  index_t inner_num_ = 0;
};

}  // namespace cgdnn
