// Loss layers. SoftmaxWithLoss is the terminal layer of both evaluation
// networks; EuclideanLoss supports regression examples/tests.
//
// Loss reduction over the batch is a sum of per-sample terms. The parallel
// forward computes per-sample losses into a private array and reduces it in
// ascending sample order, which keeps the loss bit-independent of thread
// count (per-sample terms are written to disjoint slots, then folded
// serially) — the loss value is the quantity developers watch for the
// paper's convergence-invariance property.
#pragma once

#include <vector>

#include "cgdnn/layers/layer.hpp"

namespace cgdnn {

/// Common base: loss layers take (prediction, label/target) bottoms and
/// produce a scalar top with default loss weight 1.
template <typename Dtype>
class LossLayer : public Layer<Dtype> {
 public:
  explicit LossLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}
  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override {
    CGDNN_CHECK_EQ(bottom[0]->num(), bottom[1]->num())
        << "prediction and label batch sizes differ";
    top[0]->Reshape(std::vector<index_t>{});  // scalar
  }
  int ExactNumBottomBlobs() const override { return 2; }
  int ExactNumTopBlobs() const override { return 1; }
  bool AllowForceBackward(int bottom_index) const override {
    return bottom_index != 1;  // never backprop into labels
  }

 protected:
  Dtype DefaultLossWeight(int index) const override {
    return index == 0 ? Dtype(1) : Dtype(0);
  }
};

template <typename Dtype>
class SoftmaxWithLossLayer : public LossLayer<Dtype> {
 public:
  explicit SoftmaxWithLossLayer(const proto::LayerParameter& param)
      : LossLayer<Dtype>(param) {}

  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;

  const char* type() const override { return "SoftmaxWithLoss"; }

  /// Class probabilities from the last forward pass (tests/examples).
  const Blob<Dtype>& prob() const { return prob_; }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;
  void Forward_cpu_parallel(const std::vector<Blob<Dtype>*>& bottom,
                            const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu_parallel(const std::vector<Blob<Dtype>*>& top,
                             const std::vector<bool>& propagate_down,
                             const std::vector<Blob<Dtype>*>& bottom) override;

 private:
  /// Computes prob_ for one sample and returns its -log p(label) term
  /// (0 for ignored labels).
  Dtype ForwardSample(const Dtype* bottom_data, const Dtype* label,
                      Dtype* prob_data, index_t n);
  void BackwardSample(const Dtype* label, Dtype* bottom_diff, index_t n,
                      Dtype scale) const;
  Dtype Normalizer() const;

  index_t num_ = 0;
  index_t channels_ = 0;
  Blob<Dtype> prob_;
  std::vector<Dtype> per_sample_loss_;
};

template <typename Dtype>
class EuclideanLossLayer : public LossLayer<Dtype> {
 public:
  explicit EuclideanLossLayer(const proto::LayerParameter& param)
      : LossLayer<Dtype>(param) {}

  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;

  const char* type() const override { return "EuclideanLoss"; }
  bool AllowForceBackward(int /*bottom_index*/) const override {
    return true;  // both bottoms are differentiable
  }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;

 private:
  Blob<Dtype> diff_;
};

}  // namespace cgdnn
