#include "cgdnn/layers/batch_norm_layer.hpp"

#include <omp.h>

#include <cmath>

#include "cgdnn/parallel/coalesce.hpp"
#include "cgdnn/parallel/instrument.hpp"

namespace cgdnn {

template <typename Dtype>
void BatchNormLayer<Dtype>::LayerSetUp(const std::vector<Blob<Dtype>*>& bottom,
                                       const std::vector<Blob<Dtype>*>& top) {
  (void)top;
  const auto& p = this->layer_param_.batch_norm_param;
  use_global_stats_ =
      p.use_global_stats.value_or(this->phase_ == Phase::kTest);
  moving_average_fraction_ = static_cast<Dtype>(p.moving_average_fraction);
  eps_ = static_cast<Dtype>(p.eps);
  channels_ = bottom[0]->channels();
  if (this->blobs_.empty()) {
    this->blobs_.resize(3);
    this->blobs_[0] =
        std::make_shared<Blob<Dtype>>(std::vector<index_t>{channels_});
    this->blobs_[1] =
        std::make_shared<Blob<Dtype>>(std::vector<index_t>{channels_});
    this->blobs_[2] = std::make_shared<Blob<Dtype>>(std::vector<index_t>{1});
    for (auto& blob : this->blobs_) blob->set_data(Dtype(0));
  }
  // Statistics are not gradient-trained.
  this->param_propagate_down_.assign(3, false);
}

template <typename Dtype>
void BatchNormLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                                    const std::vector<Blob<Dtype>*>& top) {
  CGDNN_CHECK_EQ(bottom[0]->channels(), channels_)
      << "channel count changed for " << this->layer_param_.name;
  num_ = bottom[0]->num();
  spatial_ = bottom[0]->count(2);
  top[0]->ReshapeLike(*bottom[0]);
  mean_.Reshape({channels_});
  inv_std_.Reshape({channels_});
}

template <typename Dtype>
void BatchNormLayer<Dtype>::ForwardChannels(const Dtype* x, Dtype* y,
                                            Dtype* mean, Dtype* inv_std,
                                            index_t c0, index_t c1) {
  const index_t m = num_ * spatial_;
  const Dtype* stored_mean = this->blobs_[0]->cpu_data();
  const Dtype* stored_var = this->blobs_[1]->cpu_data();
  const Dtype scale_accum = this->blobs_[2]->cpu_data()[0];
  const Dtype scale =
      scale_accum == Dtype(0) ? Dtype(0) : Dtype(1) / scale_accum;

  for (index_t c = c0; c < c1; ++c) {
    if (use_global_stats_) {
      mean[c] = stored_mean[c] * scale;
      const Dtype var = stored_var[c] * scale;
      inv_std[c] = Dtype(1) / std::sqrt(var + eps_);
    } else {
      // Batch statistics over (N, spatial) in serial order: the per-channel
      // accumulation is identical no matter which thread owns the channel.
      Dtype sum = 0;
      for (index_t n = 0; n < num_; ++n) {
        const Dtype* xc = x + (n * channels_ + c) * spatial_;
        for (index_t s = 0; s < spatial_; ++s) sum += xc[s];
      }
      const Dtype mu = sum / static_cast<Dtype>(m);
      Dtype sq = 0;
      for (index_t n = 0; n < num_; ++n) {
        const Dtype* xc = x + (n * channels_ + c) * spatial_;
        for (index_t s = 0; s < spatial_; ++s) {
          const Dtype d = xc[s] - mu;
          sq += d * d;
        }
      }
      mean[c] = mu;
      inv_std[c] = Dtype(1) / std::sqrt(sq / static_cast<Dtype>(m) + eps_);
    }
    for (index_t n = 0; n < num_; ++n) {
      const Dtype* xc = x + (n * channels_ + c) * spatial_;
      Dtype* yc = y + (n * channels_ + c) * spatial_;
      for (index_t s = 0; s < spatial_; ++s) {
        yc[s] = (xc[s] - mean[c]) * inv_std[c];
      }
    }
  }
}

template <typename Dtype>
void BatchNormLayer<Dtype>::UpdateRunningStats() {
  const index_t m = num_ * spatial_;
  const Dtype bias_correction =
      m > 1 ? static_cast<Dtype>(m) / static_cast<Dtype>(m - 1) : Dtype(1);
  Dtype* stored_mean = this->blobs_[0]->mutable_cpu_data();
  Dtype* stored_var = this->blobs_[1]->mutable_cpu_data();
  Dtype* scale_accum = this->blobs_[2]->mutable_cpu_data();
  const Dtype* mean = mean_.cpu_data();
  const Dtype* inv_std = inv_std_.cpu_data();
  scale_accum[0] = scale_accum[0] * moving_average_fraction_ + Dtype(1);
  for (index_t c = 0; c < channels_; ++c) {
    const Dtype var = Dtype(1) / (inv_std[c] * inv_std[c]) - eps_;
    stored_mean[c] = stored_mean[c] * moving_average_fraction_ + mean[c];
    stored_var[c] =
        stored_var[c] * moving_average_fraction_ + bias_correction * var;
  }
}

template <typename Dtype>
void BatchNormLayer<Dtype>::Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                                        const std::vector<Blob<Dtype>*>& top) {
  const Dtype* x = bottom[0]->cpu_data();
  Dtype* y = top[0]->mutable_cpu_data();
  ForwardChannels(x, y, mean_.mutable_cpu_data(), inv_std_.mutable_cpu_data(),
                  0, channels_);
  if (!use_global_stats_) UpdateRunningStats();
}

template <typename Dtype>
void BatchNormLayer<Dtype>::Forward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* x = bottom[0]->cpu_data();
  Dtype* y = top[0]->mutable_cpu_data();
  Dtype* mean = mean_.mutable_cpu_data();      // resolved before the region
  Dtype* inv_std = inv_std_.mutable_cpu_data();
  const int nthreads = parallel::Parallel::ResolveThreads();
  parallel::RegionStats rstats(this->layer_param_.name + ".forward",
                               nthreads);
  check::WriteSetChecker* chk = rstats.checker();
#pragma omp parallel num_threads(nthreads)
  {
    const int tid = omp_get_thread_num();
    parallel::ThreadRegionScope rscope(rstats, tid);
    const auto range =
        parallel::StaticChunk(channels_, omp_get_num_threads(), tid);
    ForwardChannels(x, y, mean, inv_std, range.begin, range.end);
    if (chk != nullptr && range.size() > 0) {
      chk->RecordWrite(tid, mean, "mean", range.begin, range.end);
      chk->RecordWrite(tid, inv_std, "inv_std", range.begin, range.end);
      // The channel partition's writes to y are strided: one slab per
      // sample covering this thread's channel chunk.
      for (index_t n = 0; n < num_; ++n) {
        chk->RecordWrite(tid, y, "top.data",
                         (n * channels_ + range.begin) * spatial_,
                         (n * channels_ + range.end) * spatial_);
      }
    }
  }
  if (!use_global_stats_) UpdateRunningStats();
}

template <typename Dtype>
void BatchNormLayer<Dtype>::BackwardChannels(const Dtype* x, const Dtype* dy,
                                             Dtype* dx, index_t c0,
                                             index_t c1) const {
  const index_t m = num_ * spatial_;
  const Dtype* mean = mean_.cpu_data();
  const Dtype* inv_std = inv_std_.cpu_data();
  for (index_t c = c0; c < c1; ++c) {
    if (use_global_stats_) {
      for (index_t n = 0; n < num_; ++n) {
        const Dtype* dyc = dy + (n * channels_ + c) * spatial_;
        Dtype* dxc = dx + (n * channels_ + c) * spatial_;
        for (index_t s = 0; s < spatial_; ++s) dxc[s] = dyc[s] * inv_std[c];
      }
      continue;
    }
    // dx = inv_std * (dy - mean(dy) - x_hat * mean(dy * x_hat))
    Dtype sum_dy = 0, sum_dy_xhat = 0;
    for (index_t n = 0; n < num_; ++n) {
      const Dtype* xc = x + (n * channels_ + c) * spatial_;
      const Dtype* dyc = dy + (n * channels_ + c) * spatial_;
      for (index_t s = 0; s < spatial_; ++s) {
        const Dtype xhat = (xc[s] - mean[c]) * inv_std[c];
        sum_dy += dyc[s];
        sum_dy_xhat += dyc[s] * xhat;
      }
    }
    const Dtype mean_dy = sum_dy / static_cast<Dtype>(m);
    const Dtype mean_dy_xhat = sum_dy_xhat / static_cast<Dtype>(m);
    for (index_t n = 0; n < num_; ++n) {
      const Dtype* xc = x + (n * channels_ + c) * spatial_;
      const Dtype* dyc = dy + (n * channels_ + c) * spatial_;
      Dtype* dxc = dx + (n * channels_ + c) * spatial_;
      for (index_t s = 0; s < spatial_; ++s) {
        const Dtype xhat = (xc[s] - mean[c]) * inv_std[c];
        dxc[s] = inv_std[c] * (dyc[s] - mean_dy - xhat * mean_dy_xhat);
      }
    }
  }
}

template <typename Dtype>
void BatchNormLayer<Dtype>::Backward_cpu(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  CGDNN_CHECK(bottom[0] != top[0])
      << "BatchNorm backward needs the original input: run out-of-place";
  BackwardChannels(bottom[0]->cpu_data(), top[0]->cpu_diff(),
                   bottom[0]->mutable_cpu_diff(), 0, channels_);
}

template <typename Dtype>
void BatchNormLayer<Dtype>::Backward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  if (!propagate_down[0]) return;
  CGDNN_CHECK(bottom[0] != top[0])
      << "BatchNorm backward needs the original input: run out-of-place";
  const Dtype* x = bottom[0]->cpu_data();
  const Dtype* dy = top[0]->cpu_diff();
  Dtype* dx = bottom[0]->mutable_cpu_diff();
  const int nthreads = parallel::Parallel::ResolveThreads();
  parallel::RegionStats rstats(this->layer_param_.name + ".backward",
                               nthreads);
  check::WriteSetChecker* chk = rstats.checker();
#pragma omp parallel num_threads(nthreads)
  {
    const int tid = omp_get_thread_num();
    parallel::ThreadRegionScope rscope(rstats, tid);
    const auto range =
        parallel::StaticChunk(channels_, omp_get_num_threads(), tid);
    BackwardChannels(x, dy, dx, range.begin, range.end);
    if (chk != nullptr && range.size() > 0) {
      for (index_t n = 0; n < num_; ++n) {
        chk->RecordWrite(tid, dx, "bottom.diff",
                         (n * channels_ + range.begin) * spatial_,
                         (n * channels_ + range.end) * spatial_);
      }
    }
  }
}

template class BatchNormLayer<float>;
template class BatchNormLayer<double>;

}  // namespace cgdnn
