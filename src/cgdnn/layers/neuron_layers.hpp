// Element-wise ("neuron") layers: ReLU, Sigmoid, TanH, Dropout.
//
// These are the small-granularity layers of the paper's u-shaped scalability
// curves (Figs. 5/8): fully parallel with zero races, but so little work per
// element that thread-level speedup saturates early. The coarse-grain path
// coalesces the ENTIRE index space (batch x all blob dims) into one loop —
// "some layers coalesce the whole loop nest" (§3.2.1).
#pragma once

#include <vector>

#include "cgdnn/core/rng.hpp"
#include "cgdnn/layers/layer.hpp"

namespace cgdnn {

/// Common base: one bottom, one top (possibly in-place), top shaped like
/// bottom.
template <typename Dtype>
class NeuronLayer : public Layer<Dtype> {
 public:
  explicit NeuronLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}
  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override {
    top[0]->ReshapeLike(*bottom[0]);
  }
  int ExactNumBottomBlobs() const override { return 1; }
  int ExactNumTopBlobs() const override { return 1; }
};

template <typename Dtype>
class ReLULayer : public NeuronLayer<Dtype> {
 public:
  explicit ReLULayer(const proto::LayerParameter& param)
      : NeuronLayer<Dtype>(param),
        negative_slope_(static_cast<Dtype>(param.relu_param.negative_slope)) {}
  const char* type() const override { return "ReLU"; }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;
  void Forward_cpu_parallel(const std::vector<Blob<Dtype>*>& bottom,
                            const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu_parallel(const std::vector<Blob<Dtype>*>& top,
                             const std::vector<bool>& propagate_down,
                             const std::vector<Blob<Dtype>*>& bottom) override;

 private:
  Dtype negative_slope_;
};

template <typename Dtype>
class SigmoidLayer : public NeuronLayer<Dtype> {
 public:
  using NeuronLayer<Dtype>::NeuronLayer;
  const char* type() const override { return "Sigmoid"; }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;
  void Forward_cpu_parallel(const std::vector<Blob<Dtype>*>& bottom,
                            const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu_parallel(const std::vector<Blob<Dtype>*>& top,
                             const std::vector<bool>& propagate_down,
                             const std::vector<Blob<Dtype>*>& bottom) override;
};

template <typename Dtype>
class TanHLayer : public NeuronLayer<Dtype> {
 public:
  using NeuronLayer<Dtype>::NeuronLayer;
  const char* type() const override { return "TanH"; }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;
  void Forward_cpu_parallel(const std::vector<Blob<Dtype>*>& bottom,
                            const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu_parallel(const std::vector<Blob<Dtype>*>& top,
                             const std::vector<bool>& propagate_down,
                             const std::vector<Blob<Dtype>*>& bottom) override;
};

/// Dropout with inverted scaling (outputs scaled by 1/(1-ratio) at train
/// time). The mask for element i of forward pass k is a pure function of
/// (layer seed, k, i), so masks are identical for any thread count —
/// randomness never breaks convergence invariance.
template <typename Dtype>
class DropoutLayer : public NeuronLayer<Dtype> {
 public:
  explicit DropoutLayer(const proto::LayerParameter& param);
  const char* type() const override { return "Dropout"; }
  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;

  // The mask stream is keyed by (layer seed, pass counter, element); the
  // counter must survive checkpoint/resume so resumed passes draw the same
  // masks the uninterrupted run would have.
  void ExportRuntimeState(std::vector<std::uint64_t>& state) const override {
    state.push_back(pass_counter_);
  }
  void ImportRuntimeState(const std::vector<std::uint64_t>& state) override {
    CGDNN_CHECK_EQ(state.size(), 1u)
        << "Dropout layer runtime state must be {pass_counter}";
    pass_counter_ = state[0];
  }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;
  void Forward_cpu_parallel(const std::vector<Blob<Dtype>*>& bottom,
                            const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu_parallel(const std::vector<Blob<Dtype>*>& top,
                             const std::vector<bool>& propagate_down,
                             const std::vector<Blob<Dtype>*>& bottom) override;

 private:
  bool MaskKeep(index_t i) const;
  void ForwardRange(const Dtype* bottom_data, Dtype* top_data, index_t begin,
                    index_t end, std::vector<Dtype>& mask) const;

  Dtype ratio_;
  Dtype scale_;
  Rng base_;
  std::uint64_t pass_counter_ = 0;
  std::vector<Dtype> mask_;  // scale or 0 per element, kept for backward
};

}  // namespace cgdnn
