// Fused elementwise epilogues: the planner's forward-pass fusion mechanism.
//
// When a stateless elementwise layer runs in place on its producer's output
// (relu1 on top of ip1, the evaluation nets' standard idiom), the planner
// detaches the consumer from Net::Forward and hands the producer a
// FusedEpilogue instead. The producer applies the chain to each output chunk
// while it is still cache-hot inside its own (already instrumented) parallel
// loop — the tensor is written once instead of being round-tripped through
// memory by a separate layer pass.
//
// Legality rules (docs/perf.md): a layer may join an epilogue chain only if
// it (a) runs in place (top blob == bottom blob), so skipping it leaves no
// unwritten output; (b) is elementwise with no cross-element or cross-sample
// coupling, so per-chunk application inside any partitioning is equivalent;
// and (c) is stateless in forward, so application order/time cannot matter.
// ReLU/Sigmoid/TanH and inference Scale/Bias qualify; Dropout never does
// (its counter-based mask is stateful), nor do LRN/Pooling (cross-element).
// Backward is NOT fused: the consumer layers stay in the net and run their
// own Backward unchanged — forward fusion leaves every blob bit-identical,
// so the backward pass is bit-identical by construction.
//
// Each formula below replicates the corresponding layer's Forward_cpu
// expression exactly (same operations, same order) — that is what makes
// fused and unfused execution bit-identical, and the planned thread-sweep
// tests enforce it.
#pragma once

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "cgdnn/core/common.hpp"

namespace cgdnn {

enum class FusedOpKind { kReLU, kSigmoid, kTanH, kScale, kBias };

template <typename Dtype>
struct FusedOp {
  FusedOpKind kind = FusedOpKind::kReLU;
  Dtype slope = 0;              // kReLU: negative slope
  const Dtype* coef = nullptr;  // kScale: scale vector; kBias: bias vector
  const Dtype* bias = nullptr;  // kScale with bias_term: bias vector
  index_t dim = 0;              // kScale/kBias: coefficient count
  index_t inner = 1;            // kScale/kBias: inner (spatial) extent
};

/// An ordered chain of fused elementwise ops applied to a producer's output
/// range. `start` is the element's global offset within the blob — the
/// Scale/Bias coefficient index is (global_idx / inner) % dim, so chunked
/// application from any partitioning matches a whole-blob pass.
template <typename Dtype>
class FusedEpilogue {
 public:
  void Append(FusedOp<Dtype> op, std::string layer_name) {
    ops_.push_back(op);
    layer_names_.push_back(std::move(layer_name));
  }

  std::size_t size() const { return ops_.size(); }
  const std::vector<std::string>& layer_names() const { return layer_names_; }

  void ApplyForward(Dtype* data, index_t start, index_t count) const {
    for (const FusedOp<Dtype>& op : ops_) {
      switch (op.kind) {
        case FusedOpKind::kReLU: {
          const Dtype slope = op.slope;
          for (index_t i = 0; i < count; ++i) {
            data[i] = data[i] > 0 ? data[i] : slope * data[i];
          }
          break;
        }
        case FusedOpKind::kSigmoid:
          for (index_t i = 0; i < count; ++i) {
            data[i] =
                Dtype(0.5) * std::tanh(Dtype(0.5) * data[i]) + Dtype(0.5);
          }
          break;
        case FusedOpKind::kTanH:
          for (index_t i = 0; i < count; ++i) data[i] = std::tanh(data[i]);
          break;
        case FusedOpKind::kScale:
          for (index_t i = 0; i < count; ++i) {
            const index_t s = (start + i) / op.inner % op.dim;
            data[i] = data[i] * op.coef[s] +
                      (op.bias != nullptr ? op.bias[s] : Dtype(0));
          }
          break;
        case FusedOpKind::kBias:
          for (index_t i = 0; i < count; ++i) {
            data[i] += op.coef[(start + i) / op.inner % op.dim];
          }
          break;
      }
    }
  }

 private:
  std::vector<FusedOp<Dtype>> ops_;
  std::vector<std::string> layer_names_;
};

}  // namespace cgdnn
