// LRNLayer: local response normalization across channels (the CIFAR-10
// network's norm1/norm2 layers). For each position (n, y, x):
//   scale(c) = k + (alpha / local_size) * sum_{c' in window(c)} x(c')^2
//   y(c) = x(c) * scale(c)^(-beta)
//
// The paper calls out LRN as the layer whose data-thread distribution
// differs from its neighbours (it coalesces (N, H) rather than (N, C)
// because the channel window couples channels), causing the conv2 locality
// penalty discussed in §4.2.1.
#pragma once

#include "cgdnn/layers/layer.hpp"

namespace cgdnn {

template <typename Dtype>
class LRNLayer : public Layer<Dtype> {
 public:
  explicit LRNLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}

  void LayerSetUp(const std::vector<Blob<Dtype>*>& bottom,
                  const std::vector<Blob<Dtype>*>& top) override;
  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;

  const char* type() const override { return "LRN"; }
  int ExactNumBottomBlobs() const override { return 1; }
  int ExactNumTopBlobs() const override { return 1; }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;
  void Forward_cpu_parallel(const std::vector<Blob<Dtype>*>& bottom,
                            const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu_parallel(const std::vector<Blob<Dtype>*>& top,
                             const std::vector<bool>& propagate_down,
                             const std::vector<Blob<Dtype>*>& bottom) override;

 private:
  /// Forward for one (n, y) row across all channels and x.
  void ForwardRow(const Dtype* bottom_n, Dtype* top_n, Dtype* scale_n,
                  index_t y) const;
  /// Backward for one (n, y) row.
  void BackwardRow(const Dtype* bottom_n, const Dtype* top_n,
                   const Dtype* scale_n, const Dtype* top_diff_n,
                   Dtype* bottom_diff_n, index_t y) const;

  index_t size_ = 5;
  Dtype alpha_ = 1, beta_ = Dtype(0.75), k_ = 1;
  index_t num_ = 0, channels_ = 0, height_ = 0, width_ = 0;
  Blob<Dtype> scale_;  // stored for the backward pass
};

}  // namespace cgdnn
