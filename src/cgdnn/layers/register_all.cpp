// Central layer registration. Explicit (rather than static-initializer
// based) registration avoids the classic dead-stripping problem of
// self-registering translation units inside static libraries.
#include <mutex>

#include "cgdnn/layers/accuracy_layer.hpp"
#include "cgdnn/layers/batch_norm_layer.hpp"
#include "cgdnn/layers/conv_layer.hpp"
#include "cgdnn/layers/data_layers.hpp"
#include "cgdnn/layers/extra_neuron_layers.hpp"
#include "cgdnn/layers/inner_product_layer.hpp"
#include "cgdnn/layers/layer.hpp"
#include "cgdnn/layers/loss_layers.hpp"
#include "cgdnn/layers/lrn_layer.hpp"
#include "cgdnn/layers/neuron_layers.hpp"
#include "cgdnn/layers/pooling_layer.hpp"
#include "cgdnn/layers/scale_bias_layers.hpp"
#include "cgdnn/layers/shape_layers.hpp"
#include "cgdnn/layers/softmax_layer.hpp"
#include "cgdnn/layers/util_layers.hpp"

namespace cgdnn {

namespace {

template <typename Dtype, template <typename> class LayerT>
std::shared_ptr<Layer<Dtype>> Make(const proto::LayerParameter& param) {
  return std::make_shared<LayerT<Dtype>>(param);
}

template <typename Dtype>
void RegisterAllFor() {
  auto& registry = LayerRegistry<Dtype>::Get();
  registry.Register("Data", &Make<Dtype, DataLayer>);
  registry.Register("DummyData", &Make<Dtype, DummyDataLayer>);
  registry.Register("MemoryData", &Make<Dtype, MemoryDataLayer>);
  registry.Register("Convolution", &Make<Dtype, ConvolutionLayer>);
  registry.Register("Pooling", &Make<Dtype, PoolingLayer>);
  registry.Register("InnerProduct", &Make<Dtype, InnerProductLayer>);
  registry.Register("LRN", &Make<Dtype, LRNLayer>);
  registry.Register("ReLU", &Make<Dtype, ReLULayer>);
  registry.Register("Sigmoid", &Make<Dtype, SigmoidLayer>);
  registry.Register("TanH", &Make<Dtype, TanHLayer>);
  registry.Register("Dropout", &Make<Dtype, DropoutLayer>);
  registry.Register("Softmax", &Make<Dtype, SoftmaxLayer>);
  registry.Register("SoftmaxWithLoss", &Make<Dtype, SoftmaxWithLossLayer>);
  registry.Register("EuclideanLoss", &Make<Dtype, EuclideanLossLayer>);
  registry.Register("Accuracy", &Make<Dtype, AccuracyLayer>);
  registry.Register("Split", &Make<Dtype, SplitLayer>);
  registry.Register("Concat", &Make<Dtype, ConcatLayer>);
  registry.Register("Eltwise", &Make<Dtype, EltwiseLayer>);
  registry.Register("Flatten", &Make<Dtype, FlattenLayer>);
  registry.Register("Power", &Make<Dtype, PowerLayer>);
  registry.Register("Exp", &Make<Dtype, ExpLayer>);
  registry.Register("Log", &Make<Dtype, LogLayer>);
  registry.Register("AbsVal", &Make<Dtype, AbsValLayer>);
  registry.Register("BNLL", &Make<Dtype, BNLLLayer>);
  registry.Register("ELU", &Make<Dtype, ELULayer>);
  registry.Register("Scale", &Make<Dtype, ScaleLayer>);
  registry.Register("Bias", &Make<Dtype, BiasLayer>);
  registry.Register("Slice", &Make<Dtype, SliceLayer>);
  registry.Register("Reshape", &Make<Dtype, ReshapeLayer>);
  registry.Register("ArgMax", &Make<Dtype, ArgMaxLayer>);
  registry.Register("Silence", &Make<Dtype, SilenceLayer>);
  registry.Register("BatchNorm", &Make<Dtype, BatchNormLayer>);
}

}  // namespace

void EnsureLayersRegistered() {
  static std::once_flag once;
  std::call_once(once, [] {
    RegisterAllFor<float>();
    RegisterAllFor<double>();
  });
}

}  // namespace cgdnn
