// InnerProductLayer (fully connected): top = bottom * W^T + b.
//
// This is the paper's poor-scalability case study (ip1 in Fig. 5: ~4.6-5.9x
// at 8 threads, flat beyond): the work per sample is one GEMV, so deep in
// the net the per-thread granularity is tiny, and its input layout (pool2's
// output distribution) does not match its own work distribution.
//
// Coarse-grain parallelization: threads take contiguous sample chunks; each
// chunk is an independent GEMM over its rows (bit-identical to the serial
// row-major evaluation). The backward weight gradient is privatized per
// thread and merged with the configured strategy.
#pragma once

#include "cgdnn/layers/layer.hpp"

namespace cgdnn {

template <typename Dtype>
class InnerProductLayer : public Layer<Dtype> {
 public:
  explicit InnerProductLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}

  void LayerSetUp(const std::vector<Blob<Dtype>*>& bottom,
                  const std::vector<Blob<Dtype>*>& top) override;
  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;

  const char* type() const override { return "InnerProduct"; }
  int ExactNumBottomBlobs() const override { return 1; }
  int ExactNumTopBlobs() const override { return 1; }
  bool SupportsFusedEpilogue() const override { return true; }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;
  void Forward_cpu_parallel(const std::vector<Blob<Dtype>*>& bottom,
                            const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu_parallel(const std::vector<Blob<Dtype>*>& top,
                             const std::vector<bool>& propagate_down,
                             const std::vector<Blob<Dtype>*>& bottom) override;

 private:
  index_t num_output_ = 0;
  bool bias_term_ = true;
  index_t m_ = 0;  // batch size
  index_t k_ = 0;  // input feature dim
  Blob<Dtype> bias_multiplier_;  // ones, length m_
};

}  // namespace cgdnn
