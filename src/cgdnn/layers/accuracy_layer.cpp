#include "cgdnn/layers/accuracy_layer.hpp"

namespace cgdnn {

template <typename Dtype>
void AccuracyLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                                   const std::vector<Blob<Dtype>*>& top) {
  top_k_ = this->layer_param_.accuracy_param.top_k;
  CGDNN_CHECK_GE(top_k_, 1);
  CGDNN_CHECK_EQ(bottom[1]->count(), bottom[0]->num())
      << "one label per sample expected";
  CGDNN_CHECK_LE(top_k_, bottom[0]->count() / bottom[0]->num())
      << "top_k exceeds the number of classes";
  top[0]->Reshape(std::vector<index_t>{});
}

template <typename Dtype>
void AccuracyLayer<Dtype>::Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                                       const std::vector<Blob<Dtype>*>& top) {
  const Dtype* scores = bottom[0]->cpu_data();
  const Dtype* labels = bottom[1]->cpu_data();
  const index_t num = bottom[0]->num();
  const index_t classes = bottom[0]->count() / num;
  index_t correct = 0;
  for (index_t n = 0; n < num; ++n) {
    const Dtype* s = scores + n * classes;
    const auto lab = static_cast<index_t>(labels[n]);
    CGDNN_CHECK_GE(lab, 0);
    CGDNN_CHECK_LT(lab, classes);
    // Count classes strictly better than the label; ties resolve in the
    // label's favour (matches Caffe's >= comparison semantics).
    index_t better = 0;
    for (index_t c = 0; c < classes; ++c) {
      if (s[c] > s[lab]) ++better;
    }
    if (better < top_k_) ++correct;
  }
  top[0]->mutable_cpu_data()[0] =
      static_cast<Dtype>(correct) / static_cast<Dtype>(num);
}

template class AccuracyLayer<float>;
template class AccuracyLayer<double>;

}  // namespace cgdnn
