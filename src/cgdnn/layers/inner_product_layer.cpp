#include "cgdnn/layers/inner_product_layer.hpp"

#include <omp.h>

#include "cgdnn/blas/blas.hpp"
#include "cgdnn/layers/filler.hpp"
#include "cgdnn/parallel/coalesce.hpp"
#include "cgdnn/parallel/instrument.hpp"
#include "cgdnn/parallel/merge.hpp"
#include "cgdnn/parallel/privatizer.hpp"

namespace cgdnn {

template <typename Dtype>
void InnerProductLayer<Dtype>::LayerSetUp(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  (void)top;
  const auto& p = this->layer_param_.inner_product_param;
  num_output_ = p.num_output;
  bias_term_ = p.bias_term;
  CGDNN_CHECK_GT(num_output_, 0);
  const int axis = bottom[0]->CanonicalAxisIndex(p.axis);
  k_ = bottom[0]->count(axis);
  if (this->blobs_.empty()) {
    this->blobs_.resize(bias_term_ ? 2 : 1);
    this->blobs_[0] =
        std::make_shared<Blob<Dtype>>(std::vector<index_t>{num_output_, k_});
    GetFiller<Dtype>(p.weight_filler)->Fill(*this->blobs_[0], GlobalRng());
    if (bias_term_) {
      this->blobs_[1] =
          std::make_shared<Blob<Dtype>>(std::vector<index_t>{num_output_});
      GetFiller<Dtype>(p.bias_filler)->Fill(*this->blobs_[1], GlobalRng());
    }
  }
  this->param_propagate_down_.assign(this->blobs_.size(), true);
}

template <typename Dtype>
void InnerProductLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                                       const std::vector<Blob<Dtype>*>& top) {
  const int axis =
      bottom[0]->CanonicalAxisIndex(this->layer_param_.inner_product_param.axis);
  CGDNN_CHECK_EQ(bottom[0]->count(axis), k_)
      << "input feature dimension changed for " << this->layer_param_.name;
  m_ = bottom[0]->count(0, axis);
  top[0]->Reshape({m_, num_output_});
  if (bias_term_) {
    bias_multiplier_.Reshape({m_});
    bias_multiplier_.set_data(Dtype(1));
  }
}

template <typename Dtype>
void InnerProductLayer<Dtype>::Forward_cpu(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  const Dtype* weight = this->blobs_[0]->cpu_data();
  Dtype* top_data = top[0]->mutable_cpu_data();
  // top (m x num_output) = bottom (m x k) * W^T (k x num_output)
  blas::gemm(blas::Transpose::kNo, blas::Transpose::kTrans, m_, num_output_,
             k_, Dtype(1), bottom_data, weight, Dtype(0), top_data);
  if (bias_term_) {
    blas::ger(m_, num_output_, Dtype(1), bias_multiplier_.cpu_data(),
              this->blobs_[1]->cpu_data(), top_data);
  }
  if (const FusedEpilogue<Dtype>* ep = this->fused_epilogue()) {
    ep->ApplyForward(top_data, 0, m_ * num_output_);
  }
}

template <typename Dtype>
void InnerProductLayer<Dtype>::Forward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  const Dtype* weight = this->blobs_[0]->cpu_data();
  const Dtype* bias = bias_term_ ? this->blobs_[1]->cpu_data() : nullptr;
  Dtype* top_data = top[0]->mutable_cpu_data();
  const int nthreads = parallel::Parallel::ResolveThreads();
  parallel::RegionStats rstats(this->layer_param_.name + ".forward",
                               nthreads);
  // Batch-level parallelism: each thread evaluates the GEMM restricted to
  // its contiguous block of samples (rows). Row results are independent,
  // so this is bit-identical to the serial GEMM.
  check::WriteSetChecker* chk = rstats.checker();
#pragma omp parallel num_threads(nthreads)
  {
    const int tid = omp_get_thread_num();
    parallel::ThreadRegionScope rscope(rstats, tid);
    const auto range = parallel::StaticChunk(m_, omp_get_num_threads(), tid);
    if (range.size() > 0) {
      Dtype* out = top_data + range.begin * num_output_;
      if (chk != nullptr) {
        chk->RecordWrite(tid, top_data, "top.data",
                         range.begin * num_output_, range.end * num_output_);
      }
      blas::gemm(blas::Transpose::kNo, blas::Transpose::kTrans, range.size(),
                 num_output_, k_, Dtype(1), bottom_data + range.begin * k_,
                 weight, Dtype(0), out);
      if (bias != nullptr) {
        for (index_t s = 0; s < range.size(); ++s) {
          blas::axpy(num_output_, Dtype(1), bias, out + s * num_output_);
        }
      }
      if (const FusedEpilogue<Dtype>* ep = this->fused_epilogue()) {
        // Fused chain over this thread's row chunk — elementwise, so the
        // partitioned application is bit-identical to a whole-blob pass.
        ep->ApplyForward(out, range.begin * num_output_,
                         range.size() * num_output_);
      }
    }
  }
}

template <typename Dtype>
void InnerProductLayer<Dtype>::Backward_cpu(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  const Dtype* top_diff = top[0]->cpu_diff();
  if (this->param_propagate_down(0)) {
    // dW (num_output x k) += top_diff^T (num_output x m) * bottom (m x k)
    blas::gemm(blas::Transpose::kTrans, blas::Transpose::kNo, num_output_, k_,
               m_, Dtype(1), top_diff, bottom[0]->cpu_data(), Dtype(1),
               this->blobs_[0]->mutable_cpu_diff());
  }
  if (bias_term_ && this->param_propagate_down(1)) {
    // db += top_diff^T * ones
    blas::gemv(blas::Transpose::kTrans, m_, num_output_, Dtype(1), top_diff,
               bias_multiplier_.cpu_data(), Dtype(1),
               this->blobs_[1]->mutable_cpu_diff());
  }
  if (propagate_down[0]) {
    // d_bottom (m x k) = top_diff (m x num_output) * W (num_output x k)
    blas::gemm(blas::Transpose::kNo, blas::Transpose::kNo, m_, k_, num_output_,
               Dtype(1), top_diff, this->blobs_[0]->cpu_data(), Dtype(0),
               bottom[0]->mutable_cpu_diff());
  }
}

template <typename Dtype>
void InnerProductLayer<Dtype>::Backward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  const Dtype* top_diff = top[0]->cpu_diff();
  const Dtype* bottom_data = bottom[0]->cpu_data();
  const Dtype* weight = this->blobs_[0]->cpu_data();
  const bool do_weights = this->param_propagate_down(0);
  const bool do_bias = bias_term_ && this->param_propagate_down(1);
  Dtype* weight_diff_dest =
      do_weights ? this->blobs_[0]->mutable_cpu_diff() : nullptr;
  Dtype* bias_diff_dest = do_bias ? this->blobs_[1]->mutable_cpu_diff() : nullptr;
  Dtype* bottom_diff =
      propagate_down[0] ? bottom[0]->mutable_cpu_diff() : nullptr;

  const int nthreads = parallel::Parallel::ResolveThreads();
  parallel::RegionStats rstats(this->layer_param_.name + ".backward",
                               nthreads);
  // Parameter gradients are partitioned by OUTPUT ROW instead of by sample
  // (the loop-rearrangement freedom of paper §3.1.2): each dW row is a sum
  // over all samples, so threads own disjoint rows, no privatization or
  // merge is needed, and the per-row sample-ascending accumulation is
  // bit-identical to the serial GEMM. The weight matrix is the layer's
  // dominant state, so this also avoids the O(weights x threads) memory a
  // batch-partitioned accumulation would privatize.
  check::WriteSetChecker* chk = rstats.checker();
#pragma omp parallel num_threads(nthreads)
  {
    const int tid = omp_get_thread_num();
    const int team = omp_get_num_threads();
    parallel::ThreadRegionScope rscope(rstats, tid);
    if (do_weights || do_bias) {
      const auto rows = parallel::StaticChunk(num_output_, team, tid);
      if (chk != nullptr && rows.size() > 0) {
        if (do_weights) {
          chk->RecordWrite(tid, weight_diff_dest, "weight.diff",
                           rows.begin * k_, rows.end * k_);
        }
        if (do_bias) {
          chk->RecordWrite(tid, bias_diff_dest, "bias.diff", rows.begin,
                           rows.end);
        }
      }
      for (index_t o = rows.begin; o < rows.end; ++o) {
        if (do_weights) {
          Dtype* wrow = weight_diff_dest + o * k_;
          for (index_t s = 0; s < m_; ++s) {
            blas::axpy(k_, top_diff[s * num_output_ + o],
                       bottom_data + s * k_, wrow);
          }
        }
        if (do_bias) {
          // Accumulate from the existing value in sample order: the exact
          // association of the serial transposed GEMV.
          Dtype sum = bias_diff_dest[o];
          for (index_t s = 0; s < m_; ++s) sum += top_diff[s * num_output_ + o];
          bias_diff_dest[o] = sum;
        }
      }
    }
    if (bottom_diff != nullptr) {
      // Bottom gradient stays batch-partitioned (disjoint per sample).
      const auto range = parallel::StaticChunk(m_, team, tid);
      if (range.size() > 0) {
        if (chk != nullptr) {
          chk->RecordWrite(tid, bottom_diff, "bottom.diff",
                           range.begin * k_, range.end * k_);
        }
        blas::gemm(blas::Transpose::kNo, blas::Transpose::kNo, range.size(),
                   k_, num_output_, Dtype(1),
                   top_diff + range.begin * num_output_, weight, Dtype(0),
                   bottom_diff + range.begin * k_);
      }
    }
  }
}

template class InnerProductLayer<float>;
template class InnerProductLayer<double>;

}  // namespace cgdnn
