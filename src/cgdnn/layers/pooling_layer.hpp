// PoolingLayer: MAX / AVE spatial pooling (the paper's dimensionality-
// reduction layers, §2.2.1).
//
// Coarse-grain parallelization: the (sample, channel) loops are coalesced
// (Algorithm 4) — each (n, c) plane is an independent work unit in both
// passes, so there is no gradient race and no privatization is needed; the
// coalescing exists purely for work-balance (a batch of 64 with 16 threads
// would otherwise quantize badly once per-sample work shrinks deep in the
// net — the pool2 granularity effect of Fig. 5).
#pragma once

#include <vector>

#include "cgdnn/layers/layer.hpp"

namespace cgdnn {

template <typename Dtype>
class PoolingLayer : public Layer<Dtype> {
 public:
  explicit PoolingLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}

  void LayerSetUp(const std::vector<Blob<Dtype>*>& bottom,
                  const std::vector<Blob<Dtype>*>& top) override;
  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;

  const char* type() const override { return "Pooling"; }
  int ExactNumBottomBlobs() const override { return 1; }
  int ExactNumTopBlobs() const override { return 1; }
  bool SupportsFusedEpilogue() const override { return true; }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;
  void Forward_cpu_parallel(const std::vector<Blob<Dtype>*>& bottom,
                            const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu_parallel(const std::vector<Blob<Dtype>*>& top,
                             const std::vector<bool>& propagate_down,
                             const std::vector<Blob<Dtype>*>& bottom) override;

 private:
  // Per-(sample, channel)-plane kernels shared by both execution paths.
  void ForwardPlane(const Dtype* bottom_plane, Dtype* top_plane,
                    index_t* mask_plane) const;
  void BackwardPlane(const Dtype* top_diff_plane, const index_t* mask_plane,
                     Dtype* bottom_diff_plane) const;

  proto::PoolingParameter::Method method_ =
      proto::PoolingParameter::Method::kMax;
  index_t kernel_ = 0, stride_ = 1, pad_ = 0;
  bool global_pooling_ = false;

  index_t num_ = 0, channels_ = 0, height_ = 0, width_ = 0;
  index_t pooled_h_ = 0, pooled_w_ = 0;

  /// Argmax per output element (MAX pooling only), for the backward pass.
  std::vector<index_t> max_idx_;
};

}  // namespace cgdnn
