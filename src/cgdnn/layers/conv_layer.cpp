#include "cgdnn/layers/conv_layer.hpp"

#include <omp.h>

#include <vector>

#include "cgdnn/blas/blas.hpp"
#include "cgdnn/blas/im2col.hpp"
#include "cgdnn/layers/filler.hpp"
#include "cgdnn/parallel/instrument.hpp"
#include "cgdnn/parallel/merge.hpp"
#include "cgdnn/parallel/privatizer.hpp"

namespace cgdnn {

template <typename Dtype>
void ConvolutionLayer<Dtype>::LayerSetUp(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  (void)top;
  const auto& p = this->layer_param_.convolution_param;
  num_output_ = p.num_output;
  bias_term_ = p.bias_term;
  kernel_h_ = p.kernel_h;
  kernel_w_ = p.kernel_w;
  stride_h_ = p.stride_h;
  stride_w_ = p.stride_w;
  pad_h_ = p.pad_h;
  pad_w_ = p.pad_w;
  dilation_ = p.dilation;
  group_ = p.group;
  CGDNN_CHECK_GT(num_output_, 0);
  CGDNN_CHECK_GT(kernel_h_, 0) << "kernel size unset for conv layer "
                               << this->layer_param_.name;
  CGDNN_CHECK_GT(kernel_w_, 0);
  CGDNN_CHECK_GT(stride_h_, 0);
  CGDNN_CHECK_GT(stride_w_, 0);
  CGDNN_CHECK_GE(dilation_, 1);
  CGDNN_CHECK_GE(group_, 1);

  channels_ = bottom[0]->channels();
  CGDNN_CHECK_EQ(channels_ % group_, 0);
  CGDNN_CHECK_EQ(num_output_ % group_, 0);

  if (this->blobs_.empty()) {
    this->blobs_.resize(bias_term_ ? 2 : 1);
    this->blobs_[0] = std::make_shared<Blob<Dtype>>(std::vector<index_t>{
        num_output_, channels_ / group_, kernel_h_, kernel_w_});
    GetFiller<Dtype>(p.weight_filler)->Fill(*this->blobs_[0], GlobalRng());
    if (bias_term_) {
      this->blobs_[1] =
          std::make_shared<Blob<Dtype>>(std::vector<index_t>{num_output_});
      GetFiller<Dtype>(p.bias_filler)->Fill(*this->blobs_[1], GlobalRng());
    }
  }
  this->param_propagate_down_.assign(this->blobs_.size(), true);
}

template <typename Dtype>
void ConvolutionLayer<Dtype>::Reshape(const std::vector<Blob<Dtype>*>& bottom,
                                      const std::vector<Blob<Dtype>*>& top) {
  num_ = bottom[0]->num();
  CGDNN_CHECK_EQ(bottom[0]->channels(), channels_)
      << "conv layer input channel count changed";
  height_ = bottom[0]->height();
  width_ = bottom[0]->width();
  out_h_ = blas::ConvOutSize(height_, kernel_h_, pad_h_, stride_h_, dilation_);
  out_w_ = blas::ConvOutSize(width_, kernel_w_, pad_w_, stride_w_, dilation_);
  CGDNN_CHECK_GT(out_h_, 0) << "conv output collapsed to zero height";
  CGDNN_CHECK_GT(out_w_, 0) << "conv output collapsed to zero width";
  out_spatial_ = out_h_ * out_w_;
  kernel_dim_ = channels_ / group_ * kernel_h_ * kernel_w_;
  col_count_ = channels_ * kernel_h_ * kernel_w_ * out_spatial_;
  bottom_dim_ = channels_ * height_ * width_;
  top_dim_ = num_output_ * out_spatial_;
  top[0]->Reshape(num_, num_output_, out_h_, out_w_);
  // col_buffer_ is NOT reshaped here: the parallel paths acquire per-thread
  // column buffers from the PrivatizationPool, so the member buffer is
  // allocated lazily by SerialColBuffer() only when a serial pass runs
  // (otherwise the memory-table bench overcounts by one col buffer).
  if (bias_term_) {
    bias_multiplier_.Reshape({out_spatial_});
    bias_multiplier_.set_data(Dtype(1));
  }
}

template <typename Dtype>
Dtype* ConvolutionLayer<Dtype>::SerialColBuffer() {
  // An arena plan replaces the private buffer with a shared scratch slot
  // (one slot serves every conv layer — col contents never outlive one
  // sample step, so they can all alias).
  if (planned_col_ != nullptr) {
    CGDNN_CHECK_GE(planned_col_count_, col_count_)
        << "arena col slot too small for " << this->layer_param_.name;
    return planned_col_;
  }
  col_buffer_.Reshape({channels_ * kernel_h_ * kernel_w_, out_h_, out_w_});
  return col_buffer_.mutable_cpu_data();
}

template <typename Dtype>
void ConvolutionLayer<Dtype>::BindSerialColBuffer(Dtype* slot,
                                                  index_t count) {
  planned_col_ = slot;
  planned_col_count_ = slot != nullptr ? count : 0;
}

template <typename Dtype>
blas::ConvGeom ConvolutionLayer<Dtype>::geom() const {
  blas::ConvGeom g;
  g.channels = channels_;
  g.height = height_;
  g.width = width_;
  g.kernel_h = kernel_h_;
  g.kernel_w = kernel_w_;
  g.pad_h = pad_h_;
  g.pad_w = pad_w_;
  g.stride_h = stride_h_;
  g.stride_w = stride_w_;
  g.out_h = out_h_;
  g.out_w = out_w_;
  return g;
}

template <typename Dtype>
bool ConvolutionLayer<Dtype>::DirectSupported() const {
  return blas::DirectConvSupported(geom(), group_, dilation_);
}

template <typename Dtype>
void ConvolutionLayer<Dtype>::Im2ColSample(const Dtype* bottom_data,
                                           Dtype* col) const {
  blas::im2col(bottom_data, channels_, height_, width_, kernel_h_, kernel_w_,
               pad_h_, pad_w_, stride_h_, stride_w_, dilation_, dilation_,
               col);
}

template <typename Dtype>
void ConvolutionLayer<Dtype>::ForwardSample(const Dtype* bottom_data,
                                            Dtype* top_data,
                                            Dtype* col) const {
  const Dtype* weights = this->blobs_[0]->cpu_data();
  if (forward_strategy_ == ConvStrategy::kDirect) {
    // Implicit im2col: same kernel symbols, no materialized col (col may be
    // null). Planner guarantees DirectSupported(), i.e. group_ == 1.
    blas::DirectConvForward(geom(), num_output_, weights, bottom_data,
                            top_data);
  } else {
    Im2ColSample(bottom_data, col);
    const index_t out_per_group = num_output_ / group_;
    for (index_t g = 0; g < group_; ++g) {
      blas::gemm(blas::Transpose::kNo, blas::Transpose::kNo, out_per_group,
                 out_spatial_, kernel_dim_, Dtype(1),
                 weights + g * out_per_group * kernel_dim_,
                 col + g * kernel_dim_ * out_spatial_, Dtype(0),
                 top_data + g * out_per_group * out_spatial_);
    }
  }
  if (bias_term_) {
    // top += bias ⊗ ones(out_spatial)
    blas::ger(num_output_, out_spatial_, Dtype(1),
              this->blobs_[1]->cpu_data(), bias_multiplier_.cpu_data(),
              top_data);
  }
}

template <typename Dtype>
void ConvolutionLayer<Dtype>::BackwardSampleWeights(const Dtype* bottom_data,
                                                    const Dtype* top_diff,
                                                    Dtype* weight_diff,
                                                    Dtype* bias_diff,
                                                    Dtype* col) const {
  if (backward_weights_strategy_ == ConvStrategy::kDirect) {
    blas::DirectConvBackwardWeights(geom(), num_output_, top_diff,
                                    bottom_data, weight_diff);
  } else {
    Im2ColSample(bottom_data, col);
    const index_t out_per_group = num_output_ / group_;
    for (index_t g = 0; g < group_; ++g) {
      // dW_g += top_diff_g (out_per_group x spatial) x col_g^T
      blas::gemm(blas::Transpose::kNo, blas::Transpose::kTrans, out_per_group,
                 kernel_dim_, out_spatial_, Dtype(1),
                 top_diff + g * out_per_group * out_spatial_,
                 col + g * kernel_dim_ * out_spatial_, Dtype(1),
                 weight_diff + g * out_per_group * kernel_dim_);
    }
  }
  if (bias_diff != nullptr) {
    blas::gemv(blas::Transpose::kNo, num_output_, out_spatial_, Dtype(1),
               top_diff, bias_multiplier_.cpu_data(), Dtype(1), bias_diff);
  }
}

template <typename Dtype>
void ConvolutionLayer<Dtype>::BackwardSampleBottom(const Dtype* top_diff,
                                                   Dtype* bottom_diff,
                                                   Dtype* col) const {
  const Dtype* weights = this->blobs_[0]->cpu_data();
  const index_t out_per_group = num_output_ / group_;
  for (index_t g = 0; g < group_; ++g) {
    // col_g = W_g^T (kdim x out_per_group) x top_diff_g
    blas::gemm(blas::Transpose::kTrans, blas::Transpose::kNo, kernel_dim_,
               out_spatial_, out_per_group, Dtype(1),
               weights + g * out_per_group * kernel_dim_,
               top_diff + g * out_per_group * out_spatial_, Dtype(0),
               col + g * kernel_dim_ * out_spatial_);
  }
  blas::col2im(col, channels_, height_, width_, kernel_h_, kernel_w_, pad_h_,
               pad_w_, stride_h_, stride_w_, dilation_, dilation_,
               bottom_diff);
}

template <typename Dtype>
void ConvolutionLayer<Dtype>::Forward_cpu(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  Dtype* top_data = top[0]->mutable_cpu_data();
  Dtype* col = forward_strategy_ == ConvStrategy::kDirect ? nullptr
                                                          : SerialColBuffer();
  const FusedEpilogue<Dtype>* ep = this->fused_epilogue();
  for (index_t n = 0; n < num_; ++n) {
    ForwardSample(bottom_data + n * bottom_dim_, top_data + n * top_dim_, col);
    if (ep != nullptr) {
      ep->ApplyForward(top_data + n * top_dim_, n * top_dim_, top_dim_);
    }
  }
}

template <typename Dtype>
void ConvolutionLayer<Dtype>::Forward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& bottom,
    const std::vector<Blob<Dtype>*>& top) {
  const Dtype* bottom_data = bottom[0]->cpu_data();
  Dtype* top_data = top[0]->mutable_cpu_data();
  const int nthreads = parallel::Parallel::ResolveThreads();
  auto& pool = parallel::PrivatizationPool::Get();
  pool.Configure(nthreads);
  pool.BeginLayerScope();
  parallel::RegionStats rstats(this->layer_param_.name + ".forward",
                               nthreads);
  // Batch-level parallelism, no coalescing needed: each sample is a heavy
  // and uniform work unit (im2col + GEMM), and all writes are disjoint.
  check::WriteSetChecker* chk = rstats.checker();
  const FusedEpilogue<Dtype>* ep = this->fused_epilogue();
  const bool need_col = forward_strategy_ != ConvStrategy::kDirect;
#pragma omp parallel num_threads(nthreads)
  {
    const int tid = omp_get_thread_num();
    Dtype* col = need_col ? pool.Acquire<Dtype>(tid, col_count_) : nullptr;
    {
      parallel::ThreadRegionScope rscope(rstats, tid);
#pragma omp for schedule(static) nowait
      for (index_t n = 0; n < num_; ++n) {
        ForwardSample(bottom_data + n * bottom_dim_, top_data + n * top_dim_,
                      col);
        if (ep != nullptr) {
          // Fused elementwise chain, applied while the sample's output is
          // cache-hot; writes stay inside this sample's top range.
          ep->ApplyForward(top_data + n * top_dim_, n * top_dim_, top_dim_);
        }
        if (chk != nullptr) {
          chk->RecordWrite(tid, top_data, "top.data", n * top_dim_,
                           (n + 1) * top_dim_);
        }
      }
    }
    // nowait keeps barrier wait out of the busy-time measurement; the
    // region-end barrier still synchronizes everything.
  }
}

template <typename Dtype>
void ConvolutionLayer<Dtype>::Backward_cpu(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  const Dtype* top_diff = top[0]->cpu_diff();
  const Dtype* bottom_data = bottom[0]->cpu_data();
  const bool col_for_weights =
      this->param_propagate_down(0) &&
      backward_weights_strategy_ != ConvStrategy::kDirect;
  Dtype* col = col_for_weights || propagate_down[0] ? SerialColBuffer()
                                                    : nullptr;
  Dtype* weight_diff = this->param_propagate_down(0)
                           ? this->blobs_[0]->mutable_cpu_diff()
                           : nullptr;
  Dtype* bias_diff = bias_term_ && this->param_propagate_down(1)
                         ? this->blobs_[1]->mutable_cpu_diff()
                         : nullptr;
  for (index_t n = 0; n < num_; ++n) {
    if (weight_diff != nullptr) {
      BackwardSampleWeights(bottom_data + n * bottom_dim_,
                            top_diff + n * top_dim_, weight_diff, bias_diff,
                            col);
    }
    if (propagate_down[0]) {
      BackwardSampleBottom(top_diff + n * top_dim_,
                           bottom[0]->mutable_cpu_diff() + n * bottom_dim_,
                           col);
    }
  }
}

template <typename Dtype>
void ConvolutionLayer<Dtype>::Backward_cpu_parallel(
    const std::vector<Blob<Dtype>*>& top,
    const std::vector<bool>& propagate_down,
    const std::vector<Blob<Dtype>*>& bottom) {
  const Dtype* top_diff = top[0]->cpu_diff();
  const Dtype* bottom_data = bottom[0]->cpu_data();
  const bool do_weights = this->param_propagate_down(0);
  const bool do_bias = bias_term_ && this->param_propagate_down(1);
  const index_t wcount = this->blobs_[0]->count();
  const index_t bcount = bias_term_ ? this->blobs_[1]->count() : 0;
  // Shared destinations are resolved in serial code: SyncedMemory state
  // transitions must not happen concurrently inside the parallel region.
  Dtype* weight_diff_dest =
      do_weights ? this->blobs_[0]->mutable_cpu_diff() : nullptr;
  Dtype* bias_diff_dest = do_bias ? this->blobs_[1]->mutable_cpu_diff() : nullptr;
  Dtype* bottom_diff = propagate_down[0] ? bottom[0]->mutable_cpu_diff() : nullptr;

  const int nthreads = parallel::Parallel::ResolveThreads();
  const auto merge = parallel::Parallel::Config().merge;
  auto& pool = parallel::PrivatizationPool::Get();
  pool.Configure(nthreads);
  pool.BeginLayerScope();
  std::vector<Dtype*> priv_w(static_cast<std::size_t>(nthreads), nullptr);
  std::vector<Dtype*> priv_b(static_cast<std::size_t>(nthreads), nullptr);
  parallel::RegionStats rstats(this->layer_param_.name + ".backward",
                               nthreads);
  check::WriteSetChecker* chk = rstats.checker();

  const bool need_col =
      (do_weights && backward_weights_strategy_ != ConvStrategy::kDirect) ||
      propagate_down[0];
#pragma omp parallel num_threads(nthreads)
  {
    const int tid = omp_get_thread_num();
    Dtype* col = need_col ? pool.Acquire<Dtype>(tid, col_count_) : nullptr;
    Dtype* wgrad = nullptr;
    Dtype* bgrad = nullptr;
    if (do_weights) {
      // Object privatization (Algorithm 5, lines 3-5): a private gradient
      // blob per thread, zero-initialized to the reduction's neuter value.
      wgrad = pool.Acquire<Dtype>(tid, wcount);
      blas::set(wcount, Dtype(0), wgrad);
      priv_w[static_cast<std::size_t>(tid)] = wgrad;
    }
    if (do_bias) {
      bgrad = pool.Acquire<Dtype>(tid, bcount);
      blas::set(bcount, Dtype(0), bgrad);
      priv_b[static_cast<std::size_t>(tid)] = bgrad;
    }

    {
      parallel::ThreadRegionScope rscope(rstats, tid);
#pragma omp for schedule(static) nowait
      for (index_t n = 0; n < num_; ++n) {
        if (do_weights) {
          BackwardSampleWeights(bottom_data + n * bottom_dim_,
                                top_diff + n * top_dim_, wgrad, bgrad, col);
        }
        if (bottom_diff != nullptr) {
          BackwardSampleBottom(top_diff + n * top_dim_,
                               bottom_diff + n * bottom_dim_, col);
          if (chk != nullptr) {
            chk->RecordWrite(tid, bottom_diff, "bottom.diff",
                             n * bottom_dim_, (n + 1) * bottom_dim_);
          }
        }
      }
    }
    // Explicit barrier replacing the worksharing loop's implicit one (the
    // loop is nowait so the busy-time scope above excludes barrier waits):
    // all private gradients must be complete and visible before the merge.
#pragma omp barrier

    if (do_weights) {
      parallel::AccumulatePrivate(merge, priv_w.data(), nthreads,
                                  weight_diff_dest, wcount);
    }
    if (do_bias) {
      parallel::AccumulatePrivate(merge, priv_b.data(), nthreads,
                                  bias_diff_dest, bcount);
    }
  }
}

template class ConvolutionLayer<float>;
template class ConvolutionLayer<double>;

}  // namespace cgdnn
