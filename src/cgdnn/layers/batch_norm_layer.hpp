// BatchNormLayer: per-channel normalization to zero mean / unit variance
// (Caffe semantics: normalization only — pair with Scale(bias_term) for the
// learned affine transform).
//
// State blobs (never updated by the solver; their ParamSpecs get lr_mult 0
// automatically): [0] running mean x scale, [1] running variance x scale,
// [2] accumulated scale factor. Stored statistics are divided by the scale
// factor on use — Caffe's on-disk format, so .caffemodel-style weight
// exchange keeps working.
//
// Coarse-grain parallelization: channels are independent, so the (C) loop
// partitions across threads for statistics, normalization and backward —
// per-channel accumulations keep their serial order (bit-exact, no
// privatization), another instance of the §3.1.2 loop-rearrangement freedom.
#pragma once

#include "cgdnn/layers/layer.hpp"

namespace cgdnn {

template <typename Dtype>
class BatchNormLayer : public Layer<Dtype> {
 public:
  explicit BatchNormLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}

  void LayerSetUp(const std::vector<Blob<Dtype>*>& bottom,
                  const std::vector<Blob<Dtype>*>& top) override;
  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;
  const char* type() const override { return "BatchNorm"; }
  int ExactNumBottomBlobs() const override { return 1; }
  int ExactNumTopBlobs() const override { return 1; }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;
  void Forward_cpu_parallel(const std::vector<Blob<Dtype>*>& bottom,
                            const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu_parallel(const std::vector<Blob<Dtype>*>& top,
                             const std::vector<bool>& propagate_down,
                             const std::vector<Blob<Dtype>*>& bottom) override;

 private:
  /// Forward for channels [c0, c1): statistics (train) or stored stats
  /// (global), then normalization; saves mean_/inv_std_ for backward.
  void ForwardChannels(const Dtype* x, Dtype* y, Dtype* mean,
                       Dtype* inv_std, index_t c0, index_t c1);
  /// Backward for channels [c0, c1).
  void BackwardChannels(const Dtype* x, const Dtype* dy, Dtype* dx,
                        index_t c0, index_t c1) const;
  /// Running-statistics EMA update (serial part of the train forward).
  void UpdateRunningStats();

  bool use_global_stats_ = false;
  Dtype moving_average_fraction_ = Dtype(0.999);
  Dtype eps_ = Dtype(1e-5);
  index_t num_ = 0, channels_ = 0, spatial_ = 0;

  Blob<Dtype> mean_;     // per-channel mean used by this pass
  Blob<Dtype> inv_std_;  // per-channel 1/sqrt(var + eps)
};

}  // namespace cgdnn
