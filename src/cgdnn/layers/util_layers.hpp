// Structural / element-wise utility layers: Split (inserted automatically
// when one top feeds several bottoms), Concat, Eltwise, Flatten.
#pragma once

#include <vector>

#include "cgdnn/layers/layer.hpp"

namespace cgdnn {

/// Split: tops share the bottom's data (zero copy); backward sums top diffs.
template <typename Dtype>
class SplitLayer : public Layer<Dtype> {
 public:
  explicit SplitLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}
  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;
  const char* type() const override { return "Split"; }
  int ExactNumBottomBlobs() const override { return 1; }
  int MinTopBlobs() const override { return 1; }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;
};

/// Concat along a given axis (default: channels).
template <typename Dtype>
class ConcatLayer : public Layer<Dtype> {
 public:
  explicit ConcatLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}
  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;
  const char* type() const override { return "Concat"; }
  int MinBottomBlobs() const override { return 1; }
  int ExactNumTopBlobs() const override { return 1; }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;

 private:
  int axis_ = 1;
  index_t num_concats_ = 0;    // product of dims before axis
  index_t concat_input_ = 0;   // product of dims from axis on (per bottom)
};

/// Eltwise: PROD / SUM (with per-bottom coefficients) / MAX (with argmax
/// mask for the backward pass).
template <typename Dtype>
class EltwiseLayer : public Layer<Dtype> {
 public:
  explicit EltwiseLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}
  void LayerSetUp(const std::vector<Blob<Dtype>*>& bottom,
                  const std::vector<Blob<Dtype>*>& top) override;
  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;
  const char* type() const override { return "Eltwise"; }
  int MinBottomBlobs() const override { return 2; }
  int ExactNumTopBlobs() const override { return 1; }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;

 private:
  proto::EltwiseParameter::Op op_ = proto::EltwiseParameter::Op::kSum;
  std::vector<Dtype> coeffs_;
  std::vector<int> max_arg_;  // winning bottom index per element (kMax)
};

/// Flatten: reshapes (N, d1, d2, ...) to (N, d1*d2*...), sharing storage.
template <typename Dtype>
class FlattenLayer : public Layer<Dtype> {
 public:
  explicit FlattenLayer(const proto::LayerParameter& param)
      : Layer<Dtype>(param) {}
  void Reshape(const std::vector<Blob<Dtype>*>& bottom,
               const std::vector<Blob<Dtype>*>& top) override;
  const char* type() const override { return "Flatten"; }
  int ExactNumBottomBlobs() const override { return 1; }
  int ExactNumTopBlobs() const override { return 1; }

 protected:
  void Forward_cpu(const std::vector<Blob<Dtype>*>& bottom,
                   const std::vector<Blob<Dtype>*>& top) override;
  void Backward_cpu(const std::vector<Blob<Dtype>*>& top,
                    const std::vector<bool>& propagate_down,
                    const std::vector<Blob<Dtype>*>& bottom) override;
};

}  // namespace cgdnn
