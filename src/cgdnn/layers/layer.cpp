#include "cgdnn/layers/layer.hpp"

#include <algorithm>

#include "cgdnn/blas/blas.hpp"

namespace cgdnn {

template <typename Dtype>
Dtype Layer<Dtype>::Forward(const std::vector<Blob<Dtype>*>& bottom,
                            const std::vector<Blob<Dtype>*>& top) {
  Reshape(bottom, top);
  if (parallel::Parallel::CoarseGrain()) {
    Forward_cpu_parallel(bottom, top);
  } else {
    Forward_cpu(bottom, top);
  }
  // Weighted loss: Caffe convention — a top blob contributing to the loss
  // carries its (constant) loss weight in its diff plane.
  Dtype total = 0;
  for (std::size_t i = 0; i < top.size(); ++i) {
    if (loss(static_cast<int>(i)) == Dtype(0)) continue;
    const index_t count = top[i]->count();
    total += blas::dot(count, top[i]->cpu_data(), top[i]->cpu_diff());
  }
  return total;
}

template <typename Dtype>
void Layer<Dtype>::Backward(const std::vector<Blob<Dtype>*>& top,
                            const std::vector<bool>& propagate_down,
                            const std::vector<Blob<Dtype>*>& bottom) {
  CGDNN_CHECK_EQ(propagate_down.size(), bottom.size());
  if (parallel::Parallel::CoarseGrain()) {
    Backward_cpu_parallel(top, propagate_down, bottom);
  } else {
    Backward_cpu(top, propagate_down, bottom);
  }
}

template <typename Dtype>
void Layer<Dtype>::SetLossWeights(const std::vector<Blob<Dtype>*>& top) {
  const std::size_t num_loss_weights = layer_param_.loss_weight.size();
  if (num_loss_weights > 0) {
    CGDNN_CHECK_EQ(top.size(), num_loss_weights)
        << "loss_weight must be unspecified or specified once per top blob";
  }
  for (std::size_t i = 0; i < top.size(); ++i) {
    const Dtype weight =
        num_loss_weights > 0
            ? static_cast<Dtype>(layer_param_.loss_weight[i])
            : DefaultLossWeight(static_cast<int>(i));
    if (weight == Dtype(0)) continue;
    set_loss(static_cast<int>(i), weight);
    top[i]->set_diff(weight);
  }
}

template <typename Dtype>
void Layer<Dtype>::CheckBlobCounts(const std::vector<Blob<Dtype>*>& bottom,
                                   const std::vector<Blob<Dtype>*>& top) const {
  const auto nb = static_cast<int>(bottom.size());
  const auto nt = static_cast<int>(top.size());
  if (ExactNumBottomBlobs() >= 0) {
    CGDNN_CHECK_EQ(nb, ExactNumBottomBlobs())
        << type() << " layer takes exactly " << ExactNumBottomBlobs()
        << " bottom blob(s)";
  }
  if (MinBottomBlobs() >= 0) {
    CGDNN_CHECK_GE(nb, MinBottomBlobs())
        << type() << " layer takes at least " << MinBottomBlobs()
        << " bottom blob(s)";
  }
  if (MaxBottomBlobs() >= 0) {
    CGDNN_CHECK_LE(nb, MaxBottomBlobs())
        << type() << " layer takes at most " << MaxBottomBlobs()
        << " bottom blob(s)";
  }
  if (ExactNumTopBlobs() >= 0) {
    CGDNN_CHECK_EQ(nt, ExactNumTopBlobs())
        << type() << " layer produces exactly " << ExactNumTopBlobs()
        << " top blob(s)";
  }
  if (MinTopBlobs() >= 0) {
    CGDNN_CHECK_GE(nt, MinTopBlobs())
        << type() << " layer produces at least " << MinTopBlobs()
        << " top blob(s)";
  }
  if (MaxTopBlobs() >= 0) {
    CGDNN_CHECK_LE(nt, MaxTopBlobs())
        << type() << " layer produces at most " << MaxTopBlobs()
        << " top blob(s)";
  }
}

template <typename Dtype>
LayerRegistry<Dtype>& LayerRegistry<Dtype>::Get() {
  static LayerRegistry registry;
  return registry;
}

template <typename Dtype>
void LayerRegistry<Dtype>::Register(const std::string& type, Creator creator) {
  for (const auto& [name, _] : registry_) {
    CGDNN_CHECK(name != type) << "layer type registered twice: " << type;
  }
  registry_.emplace_back(type, creator);
}

template <typename Dtype>
std::shared_ptr<Layer<Dtype>> LayerRegistry<Dtype>::Create(
    const proto::LayerParameter& param) {
  EnsureLayersRegistered();
  for (const auto& [name, creator] : registry_) {
    if (name == param.type) return creator(param);
  }
  throw Error(__FILE__, __LINE__,
              "unknown layer type '" + param.type + "' (layer '" + param.name +
                  "')");
}

template <typename Dtype>
std::vector<std::string> LayerRegistry<Dtype>::Types() const {
  std::vector<std::string> types;
  types.reserve(registry_.size());
  for (const auto& [name, _] : registry_) types.push_back(name);
  std::sort(types.begin(), types.end());
  return types;
}

template class Layer<float>;
template class Layer<double>;
template class LayerRegistry<float>;
template class LayerRegistry<double>;

}  // namespace cgdnn
