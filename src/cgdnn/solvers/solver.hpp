// Solver: the training driver of Algorithm 1 — iterate batches, run the
// net's forward/backward, and update coefficients. Matches Caffe's solver
// architecture: a base class owns the loop, learning-rate policies,
// regularization and gradient clipping; subclasses implement the per-
// parameter update rule (SGD/Nesterov/AdaGrad/RMSProp/AdaDelta).
//
// Convergence invariance: the solver changes NO hyper-parameter as a
// function of the thread count — the same SolverParameter trains with 1 or
// 16 threads, and with the ordered gradient merge the loss trace is
// reproducible.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cgdnn/net/net.hpp"
#include "cgdnn/proto/params.hpp"
#include "cgdnn/trace/telemetry.hpp"

namespace cgdnn {

template <typename Dtype>
class Solver {
 public:
  explicit Solver(const proto::SolverParameter& param);
  virtual ~Solver() = default;
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Runs `iters` training iterations.
  void Step(index_t iters);
  /// Trains to max_iter (running scheduled tests).
  void Solve();

  /// Learning rate for the current iteration under the configured policy.
  double GetLearningRate() const;

  /// Evaluates the test net over test_iter batches; returns one averaged
  /// value per scalar test-net output (e.g. accuracy, loss), paired with
  /// the blob name.
  std::vector<std::pair<std::string, Dtype>> TestAll();

  /// Attaches a JSONL telemetry sink: one record per training iteration
  /// (iter, loss, lr, imgs/sec, RSS). nullptr detaches; the sink must
  /// outlive the training loop.
  void set_telemetry(trace::TelemetrySink* sink) { telemetry_ = sink; }

  Net<Dtype>& net() { return *net_; }
  Net<Dtype>* test_net() { return test_net_.get(); }
  index_t iter() const { return iter_; }
  const std::vector<Dtype>& loss_history() const { return loss_history_; }
  const proto::SolverParameter& param() const { return param_; }

  virtual const char* type() const = 0;

 protected:
  /// Applies weight decay / clipping, asks the subclass for the update
  /// value (left in each param's diff), then applies param -= diff.
  void ApplyUpdate();
  virtual void ComputeUpdateValue(std::size_t param_id, Dtype rate) = 0;

  void Regularize(std::size_t param_id);
  void ClipGradients();

  proto::SolverParameter param_;
  std::unique_ptr<Net<Dtype>> net_;
  std::unique_ptr<Net<Dtype>> test_net_;
  index_t iter_ = 0;
  std::vector<Dtype> loss_history_;
  /// Per-parameter state (momentum, squared-gradient accumulators, ...).
  std::vector<std::shared_ptr<Blob<Dtype>>> history_;
  std::vector<std::shared_ptr<Blob<Dtype>>> update_;
  trace::TelemetrySink* telemetry_ = nullptr;
};

/// Instantiates the solver named by param.type.
template <typename Dtype>
std::unique_ptr<Solver<Dtype>> CreateSolver(
    const proto::SolverParameter& param);

}  // namespace cgdnn
