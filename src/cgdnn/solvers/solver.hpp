// Solver: the training driver of Algorithm 1 — iterate batches, run the
// net's forward/backward, and update coefficients. Matches Caffe's solver
// architecture: a base class owns the loop, learning-rate policies,
// regularization and gradient clipping; subclasses implement the per-
// parameter update rule (SGD/Nesterov/AdaGrad/RMSProp/AdaDelta).
//
// Convergence invariance: the solver changes NO hyper-parameter as a
// function of the thread count — the same SolverParameter trains with 1 or
// 16 threads, and with the ordered gradient merge the loss trace is
// reproducible.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "cgdnn/net/checkpoint.hpp"
#include "cgdnn/net/net.hpp"
#include "cgdnn/proto/params.hpp"
#include "cgdnn/trace/telemetry.hpp"

namespace cgdnn {

template <typename Dtype>
class Solver {
 public:
  explicit Solver(const proto::SolverParameter& param);
  virtual ~Solver() = default;
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Runs `iters` training iterations.
  void Step(index_t iters);
  /// Trains to max_iter (running scheduled tests).
  void Solve();

  /// Learning rate for the current iteration under the configured policy.
  double GetLearningRate() const;

  /// Evaluates the test net over test_iter batches; returns one averaged
  /// value per scalar test-net output (e.g. accuracy, loss), paired with
  /// the blob name.
  std::vector<std::pair<std::string, Dtype>> TestAll();

  /// Attaches a JSONL telemetry sink: one record per training iteration
  /// (iter, loss, lr, imgs/sec, RSS). nullptr detaches; the sink must
  /// outlive the training loop.
  void set_telemetry(trace::TelemetrySink* sink) { telemetry_ = sink; }

  // ---------------------------------------------------- checkpoint/resume

  /// Writes a crash-safe full-training-state checkpoint (weights, solver
  /// accumulators, iteration, loss history, RNG state, layer cursors) to
  /// `path`. See cgdnn/net/checkpoint.hpp for the format.
  void Snapshot(const std::string& path);
  /// Restores a checkpoint written by Snapshot. Validates integrity (CRC),
  /// the solver type, and the hyper-parameter digest; training continued
  /// from here is bit-identical to a run that was never interrupted.
  void Restore(const std::string& path);
  /// Restores the newest valid snapshot under `prefix`
  /// (`<prefix>_iter_<N>.cgdnnckpt`). A truncated or corrupt snapshot is
  /// skipped with a warning and the next-older one is tried; throws if no
  /// retained snapshot loads. Returns the path actually restored.
  std::string RestoreLatest(const std::string& prefix);
  /// FNV-1a digest of the trajectory-relevant hyper-parameters (net, lr
  /// schedule, solver constants, seed — NOT max_iter/display/test/snapshot
  /// settings). Snapshots embed it so a resume with different training
  /// dynamics is rejected instead of silently diverging.
  std::uint64_t ParamDigest() const;
  /// Cooperative shutdown: when the flag (owned by the caller, e.g. a
  /// signal handler) becomes true, Step() returns before starting the next
  /// iteration, leaving the solver in a snapshot-clean state.
  void set_stop_flag(const std::atomic<bool>* flag) { stop_flag_ = flag; }

  Net<Dtype>& net() { return *net_; }
  Net<Dtype>* test_net() { return test_net_.get(); }
  index_t iter() const { return iter_; }
  const std::vector<Dtype>& loss_history() const { return loss_history_; }
  const proto::SolverParameter& param() const { return param_; }

  virtual const char* type() const = 0;

 protected:
  /// Applies weight decay / clipping, asks the subclass for the update
  /// value (left in each param's diff), then applies param -= diff.
  void ApplyUpdate();
  virtual void ComputeUpdateValue(std::size_t param_id, Dtype rate) = 0;

  void Regularize(std::size_t param_id);
  void ClipGradients();

  /// Names the accumulator blob groups a checkpoint must carry. The base
  /// solver owns "history"; subclasses with extra state (Adam's second
  /// moments, AdaDelta's update history) append theirs after calling the
  /// base implementation. `update_` is per-iteration scratch, not state.
  virtual void AppendStateGroups(std::vector<SolverStateGroup<Dtype>>& groups) {
    groups.push_back({"history", &history_});
  }

  /// Periodic `<prefix>_iter_<N>` snapshot plus retention rotation.
  void SnapshotAndRotate();

  proto::SolverParameter param_;
  std::unique_ptr<Net<Dtype>> net_;
  std::unique_ptr<Net<Dtype>> test_net_;
  index_t iter_ = 0;
  std::vector<Dtype> loss_history_;
  /// Per-parameter state (momentum, squared-gradient accumulators, ...).
  std::vector<std::shared_ptr<Blob<Dtype>>> history_;
  std::vector<std::shared_ptr<Blob<Dtype>>> update_;
  trace::TelemetrySink* telemetry_ = nullptr;
  const std::atomic<bool>* stop_flag_ = nullptr;
};

/// Instantiates the solver named by param.type.
template <typename Dtype>
std::unique_ptr<Solver<Dtype>> CreateSolver(
    const proto::SolverParameter& param);

}  // namespace cgdnn
