// The concrete update rules. All state lives in history_/update_ blobs
// shaped like the corresponding parameter.
#pragma once

#include "cgdnn/solvers/solver.hpp"

namespace cgdnn {

/// Plain / momentum SGD: v = momentum*v + lr*grad; w -= v.
template <typename Dtype>
class SGDSolver : public Solver<Dtype> {
 public:
  explicit SGDSolver(const proto::SolverParameter& param);
  const char* type() const override { return "SGD"; }

 protected:
  void ComputeUpdateValue(std::size_t param_id, Dtype rate) override;
};

/// Nesterov accelerated gradient [23]:
/// v' = momentum*v + lr*grad; w -= (1+momentum)*v' - momentum*v.
template <typename Dtype>
class NesterovSolver : public SGDSolver<Dtype> {
 public:
  explicit NesterovSolver(const proto::SolverParameter& param)
      : SGDSolver<Dtype>(param) {}
  const char* type() const override { return "Nesterov"; }

 protected:
  void ComputeUpdateValue(std::size_t param_id, Dtype rate) override;
};

/// AdaGrad [13]: h += grad^2; w -= lr * grad / (sqrt(h) + delta).
template <typename Dtype>
class AdaGradSolver : public SGDSolver<Dtype> {
 public:
  explicit AdaGradSolver(const proto::SolverParameter& param)
      : SGDSolver<Dtype>(param) {
    CGDNN_CHECK_EQ(param.momentum, 0.0) << "AdaGrad does not use momentum";
  }
  const char* type() const override { return "AdaGrad"; }

 protected:
  void ComputeUpdateValue(std::size_t param_id, Dtype rate) override;
};

/// RMSProp: h = decay*h + (1-decay)*grad^2; w -= lr*grad/(sqrt(h)+delta).
template <typename Dtype>
class RMSPropSolver : public SGDSolver<Dtype> {
 public:
  explicit RMSPropSolver(const proto::SolverParameter& param)
      : SGDSolver<Dtype>(param) {
    CGDNN_CHECK_EQ(param.momentum, 0.0) << "RMSProp does not use momentum";
  }
  const char* type() const override { return "RMSProp"; }

 protected:
  void ComputeUpdateValue(std::size_t param_id, Dtype rate) override;
};

/// Adam: bias-corrected first/second moment estimates;
/// w -= lr * sqrt(1 - b2^t) / (1 - b1^t) * m / (sqrt(v) + delta).
template <typename Dtype>
class AdamSolver : public SGDSolver<Dtype> {
 public:
  explicit AdamSolver(const proto::SolverParameter& param);
  const char* type() const override { return "Adam"; }

 protected:
  void ComputeUpdateValue(std::size_t param_id, Dtype rate) override;
  void AppendStateGroups(
      std::vector<SolverStateGroup<Dtype>>& groups) override {
    SGDSolver<Dtype>::AppendStateGroups(groups);
    groups.push_back({"second_moment", &second_moment_});
  }

 private:
  /// Second-moment accumulator (history_ stores the first moment).
  std::vector<std::shared_ptr<Blob<Dtype>>> second_moment_;
};

/// AdaDelta: parameter-free step sizing from running gradient/update RMS.
template <typename Dtype>
class AdaDeltaSolver : public SGDSolver<Dtype> {
 public:
  explicit AdaDeltaSolver(const proto::SolverParameter& param);
  const char* type() const override { return "AdaDelta"; }

 protected:
  void ComputeUpdateValue(std::size_t param_id, Dtype rate) override;
  void AppendStateGroups(
      std::vector<SolverStateGroup<Dtype>>& groups) override {
    SGDSolver<Dtype>::AppendStateGroups(groups);
    groups.push_back({"update_history", &update_history_});
  }

 private:
  /// Second accumulator (squared updates), alongside history_ (squared
  /// gradients).
  std::vector<std::shared_ptr<Blob<Dtype>>> update_history_;
};

}  // namespace cgdnn
