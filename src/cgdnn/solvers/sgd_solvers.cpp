#include "cgdnn/solvers/sgd_solvers.hpp"

#include <cmath>

#include "cgdnn/blas/blas.hpp"

namespace cgdnn {

// --------------------------------------------------------------------- SGD

template <typename Dtype>
SGDSolver<Dtype>::SGDSolver(const proto::SolverParameter& param)
    : Solver<Dtype>(param) {}

template <typename Dtype>
void SGDSolver<Dtype>::ComputeUpdateValue(std::size_t param_id, Dtype rate) {
  Blob<Dtype>* param = this->net_->learnable_params()[param_id];
  const auto local_rate =
      rate * static_cast<Dtype>(this->net_->params_lr()[param_id]);
  const auto momentum = static_cast<Dtype>(this->param_.momentum);
  Dtype* history = this->history_[param_id]->mutable_cpu_data();
  // v = momentum * v + local_rate * grad; update value (diff) = v
  blas::axpby(param->count(), local_rate, param->cpu_diff(), momentum,
              history);
  blas::copy(param->count(), history, param->mutable_cpu_diff());
}

// ---------------------------------------------------------------- Nesterov

template <typename Dtype>
void NesterovSolver<Dtype>::ComputeUpdateValue(std::size_t param_id,
                                               Dtype rate) {
  Blob<Dtype>* param = this->net_->learnable_params()[param_id];
  const auto local_rate =
      rate * static_cast<Dtype>(this->net_->params_lr()[param_id]);
  const auto momentum = static_cast<Dtype>(this->param_.momentum);
  const index_t count = param->count();
  Dtype* history = this->history_[param_id]->mutable_cpu_data();
  Dtype* scratch = this->update_[param_id]->mutable_cpu_data();
  // save v_{t-1}
  blas::copy(count, history, scratch);
  // v_t = momentum * v_{t-1} + lr * grad
  blas::axpby(count, local_rate, param->cpu_diff(), momentum, history);
  // update = (1 + momentum) * v_t - momentum * v_{t-1}
  Dtype* diff = param->mutable_cpu_diff();
  for (index_t i = 0; i < count; ++i) {
    diff[i] = (Dtype(1) + momentum) * history[i] - momentum * scratch[i];
  }
}

// ----------------------------------------------------------------- AdaGrad

template <typename Dtype>
void AdaGradSolver<Dtype>::ComputeUpdateValue(std::size_t param_id,
                                              Dtype rate) {
  Blob<Dtype>* param = this->net_->learnable_params()[param_id];
  const auto local_rate =
      rate * static_cast<Dtype>(this->net_->params_lr()[param_id]);
  const auto delta = static_cast<Dtype>(this->param_.delta);
  const index_t count = param->count();
  Dtype* history = this->history_[param_id]->mutable_cpu_data();
  Dtype* diff = param->mutable_cpu_diff();
  for (index_t i = 0; i < count; ++i) {
    history[i] += diff[i] * diff[i];
    diff[i] = local_rate * diff[i] / (std::sqrt(history[i]) + delta);
  }
}

// ----------------------------------------------------------------- RMSProp

template <typename Dtype>
void RMSPropSolver<Dtype>::ComputeUpdateValue(std::size_t param_id,
                                              Dtype rate) {
  Blob<Dtype>* param = this->net_->learnable_params()[param_id];
  const auto local_rate =
      rate * static_cast<Dtype>(this->net_->params_lr()[param_id]);
  const auto delta = static_cast<Dtype>(this->param_.delta);
  const auto decay = static_cast<Dtype>(this->param_.rms_decay);
  const index_t count = param->count();
  Dtype* history = this->history_[param_id]->mutable_cpu_data();
  Dtype* diff = param->mutable_cpu_diff();
  for (index_t i = 0; i < count; ++i) {
    history[i] = decay * history[i] + (Dtype(1) - decay) * diff[i] * diff[i];
    diff[i] = local_rate * diff[i] / (std::sqrt(history[i]) + delta);
  }
}

// -------------------------------------------------------------------- Adam

template <typename Dtype>
AdamSolver<Dtype>::AdamSolver(const proto::SolverParameter& param)
    : SGDSolver<Dtype>(param) {
  CGDNN_CHECK_GT(param.momentum, 0.0) << "Adam needs momentum (beta1)";
  CGDNN_CHECK_LT(param.momentum, 1.0);
  CGDNN_CHECK_GT(param.momentum2, 0.0) << "Adam needs momentum2 (beta2)";
  CGDNN_CHECK_LT(param.momentum2, 1.0);
  for (Blob<Dtype>* p : this->net_->learnable_params()) {
    second_moment_.push_back(std::make_shared<Blob<Dtype>>(p->shape()));
  }
}

template <typename Dtype>
void AdamSolver<Dtype>::ComputeUpdateValue(std::size_t param_id, Dtype rate) {
  Blob<Dtype>* param = this->net_->learnable_params()[param_id];
  const auto local_rate =
      rate * static_cast<Dtype>(this->net_->params_lr()[param_id]);
  const auto beta1 = static_cast<Dtype>(this->param_.momentum);
  const auto beta2 = static_cast<Dtype>(this->param_.momentum2);
  const auto eps = static_cast<Dtype>(this->param_.delta);
  const auto t = static_cast<Dtype>(this->iter_ + 1);
  const Dtype correction = std::sqrt(Dtype(1) - std::pow(beta2, t)) /
                           (Dtype(1) - std::pow(beta1, t));
  const index_t count = param->count();
  Dtype* m = this->history_[param_id]->mutable_cpu_data();
  Dtype* v = second_moment_[param_id]->mutable_cpu_data();
  Dtype* diff = param->mutable_cpu_diff();
  for (index_t i = 0; i < count; ++i) {
    m[i] = beta1 * m[i] + (Dtype(1) - beta1) * diff[i];
    v[i] = beta2 * v[i] + (Dtype(1) - beta2) * diff[i] * diff[i];
    diff[i] = local_rate * correction * m[i] / (std::sqrt(v[i]) + eps);
  }
}

// ---------------------------------------------------------------- AdaDelta

template <typename Dtype>
AdaDeltaSolver<Dtype>::AdaDeltaSolver(const proto::SolverParameter& param)
    : SGDSolver<Dtype>(param) {
  for (Blob<Dtype>* p : this->net_->learnable_params()) {
    update_history_.push_back(std::make_shared<Blob<Dtype>>(p->shape()));
  }
}

template <typename Dtype>
void AdaDeltaSolver<Dtype>::ComputeUpdateValue(std::size_t param_id,
                                               Dtype rate) {
  Blob<Dtype>* param = this->net_->learnable_params()[param_id];
  const auto local_rate =
      rate * static_cast<Dtype>(this->net_->params_lr()[param_id]);
  const auto delta = static_cast<Dtype>(this->param_.delta);
  const auto momentum = static_cast<Dtype>(this->param_.momentum);
  const index_t count = param->count();
  Dtype* grad_hist = this->history_[param_id]->mutable_cpu_data();
  Dtype* update_hist = update_history_[param_id]->mutable_cpu_data();
  Dtype* diff = param->mutable_cpu_diff();
  for (index_t i = 0; i < count; ++i) {
    grad_hist[i] =
        momentum * grad_hist[i] + (Dtype(1) - momentum) * diff[i] * diff[i];
    const Dtype step = diff[i] * std::sqrt((update_hist[i] + delta) /
                                           (grad_hist[i] + delta));
    update_hist[i] =
        momentum * update_hist[i] + (Dtype(1) - momentum) * step * step;
    diff[i] = local_rate * step;
  }
}

#define CGDNN_INSTANTIATE_SOLVER(S) \
  template class S<float>;          \
  template class S<double>

CGDNN_INSTANTIATE_SOLVER(SGDSolver);
CGDNN_INSTANTIATE_SOLVER(AdamSolver);
CGDNN_INSTANTIATE_SOLVER(NesterovSolver);
CGDNN_INSTANTIATE_SOLVER(AdaGradSolver);
CGDNN_INSTANTIATE_SOLVER(RMSPropSolver);
CGDNN_INSTANTIATE_SOLVER(AdaDeltaSolver);

}  // namespace cgdnn
