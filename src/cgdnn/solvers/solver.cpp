#include "cgdnn/solvers/solver.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>

#include "cgdnn/blackbox/blackbox.hpp"
#include "cgdnn/blas/blas.hpp"
#include "cgdnn/core/rng.hpp"
#include "cgdnn/profile/timer.hpp"
#include "cgdnn/solvers/sgd_solvers.hpp"
#include "cgdnn/trace/trace.hpp"

namespace cgdnn {

template <typename Dtype>
Solver<Dtype>::Solver(const proto::SolverParameter& param) : param_(param) {
  CGDNN_CHECK(!param_.net_param.layer.empty())
      << "solver has no inline net_param";
  SeedGlobalRng(param_.random_seed);
  net_ = std::make_unique<Net<Dtype>>(param_.net_param, Phase::kTrain);
  if (param_.test_iter > 0) {
    test_net_ = std::make_unique<Net<Dtype>>(param_.net_param, Phase::kTest);
    test_net_->ShareTrainedLayersWith(*net_);
  }
  for (Blob<Dtype>* p : net_->learnable_params()) {
    history_.push_back(std::make_shared<Blob<Dtype>>(p->shape()));
    update_.push_back(std::make_shared<Blob<Dtype>>(p->shape()));
  }
}

template <typename Dtype>
double Solver<Dtype>::GetLearningRate() const {
  const double base = param_.base_lr;
  const std::string& policy = param_.lr_policy;
  const auto it = static_cast<double>(iter_);
  if (policy == "fixed") return base;
  if (policy == "step") {
    CGDNN_CHECK_GT(param_.stepsize, 0) << "step policy needs stepsize";
    const auto step = std::floor(it / static_cast<double>(param_.stepsize));
    return base * std::pow(param_.gamma, step);
  }
  if (policy == "exp") return base * std::pow(param_.gamma, it);
  if (policy == "inv") {
    return base * std::pow(1.0 + param_.gamma * it, -param_.power);
  }
  if (policy == "multistep") {
    std::size_t stage = 0;
    while (stage < param_.stepvalue.size() &&
           iter_ >= param_.stepvalue[stage]) {
      ++stage;
    }
    return base * std::pow(param_.gamma, static_cast<double>(stage));
  }
  if (policy == "poly") {
    CGDNN_CHECK_GT(param_.max_iter, 0) << "poly policy needs max_iter";
    return base * std::pow(1.0 - it / static_cast<double>(param_.max_iter),
                           param_.power);
  }
  if (policy == "sigmoid") {
    return base /
           (1.0 + std::exp(-param_.gamma *
                           (it - static_cast<double>(param_.stepsize))));
  }
  throw Error(__FILE__, __LINE__, "unknown lr_policy: " + policy);
}

template <typename Dtype>
void Solver<Dtype>::Step(index_t iters) {
  // Batch size for throughput telemetry: the first blob is the data layer's
  // top, whose leading axis is the per-pass sample count.
  const double batch =
      net_->blobs().empty()
          ? 0.0
          : static_cast<double>(net_->blobs().front()->num());
  for (index_t i = 0; i < iters; ++i) {
    // Graceful shutdown (e.g. SIGINT in cgdnn_train): stop on an iteration
    // boundary so a final snapshot captures a resumable state.
    if (stop_flag_ != nullptr &&
        stop_flag_->load(std::memory_order_relaxed)) {
      break;
    }
    if (test_net_ && param_.test_interval > 0 &&
        iter_ % param_.test_interval == 0 &&
        (iter_ > 0 || param_.test_initialization)) {
      TestAll();
    }
    TRACE_SCOPE("solver", "iteration");
    // Flight-recorder heartbeat: the watchdog ages open iterations, and a
    // crash dump's header names the last iteration that began.
    const auto bbx_iter = static_cast<std::uint64_t>(iter_);
    blackbox::BeginSolverIteration(bbx_iter);
    profile::Timer iter_timer;
    net_->ClearParamDiffs();
    // Gradient accumulation: iter_size passes per update (effective batch
    // = iter_size x batch_size). Gradients sum across passes and are
    // rescaled so the update matches a single large batch.
    const index_t iter_size = std::max<index_t>(1, param_.iter_size);
    Dtype loss = 0;
    for (index_t k = 0; k < iter_size; ++k) {
      loss += net_->ForwardBackward();
    }
    loss /= static_cast<Dtype>(iter_size);
    if (!std::isfinite(static_cast<double>(loss))) {
      // Divergence guard: capture the last-good weights (this iteration's
      // update has NOT been applied) for post-mortem, then fail loudly
      // instead of training on garbage.
      std::string note;
      if (!param_.snapshot_prefix.empty()) {
        const std::string path = param_.snapshot_prefix + "_emergency" +
                                 "_iter_" + std::to_string(iter_) +
                                 ".cgdnnckpt";
        Snapshot(path);
        note = "; emergency snapshot saved to " + path;
      }
      // Dump the flight recorder too: the rings show which layers/merges
      // ran right before the divergence, which the snapshot cannot.
      blackbox::DumpNow(blackbox::DumpReason::kGuard);
      std::ostringstream msg;
      msg << "non-finite loss (" << loss << ") at iteration " << iter_
          << note;
      throw Error(__FILE__, __LINE__, msg.str());
    }
    if (iter_size > 1) {
      for (Blob<Dtype>* p : net_->learnable_params()) {
        p->scale_diff(Dtype(1) / static_cast<Dtype>(iter_size));
      }
    }
    loss_history_.push_back(loss);
    ApplyUpdate();
    blackbox::EndSolverIteration(bbx_iter, static_cast<double>(loss));
    ++iter_;
    if (param_.snapshot > 0 && !param_.snapshot_prefix.empty() &&
        iter_ % param_.snapshot == 0) {
      SnapshotAndRotate();
    }
    if (telemetry_ != nullptr) {
      const double secs = iter_timer.Seconds();
      telemetry_->Write(
          {{"iter", static_cast<double>(iter_)},
           {"loss", static_cast<double>(loss)},
           {"lr", GetLearningRate()},
           {"imgs_per_sec",
            secs > 0 ? batch * static_cast<double>(iter_size) / secs : 0.0},
           {"iter_us", secs * 1e6},
           {"rss_bytes",
            static_cast<double>(trace::CurrentRssBytes())}});
    }
    if (param_.display > 0 && iter_ % param_.display == 0) {
      std::cout << "Iteration " << iter_ << ", loss = " << loss
                << ", lr = " << GetLearningRate() << "\n";
    }
  }
}

template <typename Dtype>
void Solver<Dtype>::Solve() {
  CGDNN_CHECK_GT(param_.max_iter, 0) << "Solve() requires max_iter";
  // A restored solver may already be at (or past) max_iter.
  Step(std::max<index_t>(0, param_.max_iter - iter_));
}

// ------------------------------------------------------ checkpoint/resume

template <typename Dtype>
std::uint64_t Solver<Dtype>::ParamDigest() const {
  // Digest only what shapes the training trajectory. Run-length and
  // reporting knobs (max_iter, display, test_*, snapshot_*) may legally
  // differ between the interrupted and the resuming invocation.
  proto::SolverParameter p = param_;
  p.max_iter = 0;
  p.display = 0;
  p.test_iter = 0;
  p.test_interval = 0;
  p.test_initialization = true;
  p.snapshot = 0;
  p.snapshot_prefix.clear();
  p.snapshot_retain = 3;
  p.net.clear();
  return Fnv1a64(p.ToString());
}

template <typename Dtype>
void Solver<Dtype>::Snapshot(const std::string& path) {
  std::vector<SolverStateGroup<Dtype>> groups;
  AppendStateGroups(groups);
  CheckpointMeta<Dtype> meta;
  meta.iter = iter_;
  meta.rng = GlobalRng().state();
  meta.loss_history = loss_history_;
  SaveCheckpoint(path, type(), ParamDigest(), meta, *net_, groups);
}

template <typename Dtype>
void Solver<Dtype>::Restore(const std::string& path) {
  std::vector<SolverStateGroup<Dtype>> groups;
  AppendStateGroups(groups);
  CheckpointMeta<Dtype> meta =
      LoadCheckpoint(path, type(), ParamDigest(), *net_, groups);
  iter_ = meta.iter;
  loss_history_ = std::move(meta.loss_history);
  GlobalRng().set_state(meta.rng);
}

template <typename Dtype>
std::string Solver<Dtype>::RestoreLatest(const std::string& prefix) {
  const auto snapshots = ListSnapshots(prefix);
  CGDNN_CHECK(!snapshots.empty())
      << "no snapshots found under prefix " << prefix;
  // Newest first; a corrupt/truncated snapshot falls back to the previous
  // retained one.
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    try {
      Restore(it->second);
      return it->second;
    } catch (const std::exception& e) {
      std::cerr << "warning: skipping unusable snapshot " << it->second
                << ": " << e.what() << "\n";
    }
  }
  throw Error(__FILE__, __LINE__,
              "no valid snapshot under prefix " + prefix +
                  " (all retained files corrupt)");
}

template <typename Dtype>
void Solver<Dtype>::SnapshotAndRotate() {
  Snapshot(SnapshotPath(param_.snapshot_prefix, iter_));
  RotateSnapshots(param_.snapshot_prefix, param_.snapshot_retain);
}

template <typename Dtype>
std::vector<std::pair<std::string, Dtype>> Solver<Dtype>::TestAll() {
  CGDNN_CHECK(test_net_ != nullptr) << "no test net configured";
  CGDNN_CHECK_GT(param_.test_iter, 0);
  // Average the scalar output blobs (loss / accuracy style) over test_iter
  // forward passes.
  std::vector<std::pair<std::string, Dtype>> results;
  std::vector<Dtype> sums;
  std::vector<std::string> names;
  for (index_t i = 0; i < param_.test_iter; ++i) {
    test_net_->Forward();
    std::size_t k = 0;
    for (std::size_t b = 0; b < test_net_->blobs().size(); ++b) {
      if (test_net_->blobs()[b]->count() != 1) continue;
      if (i == 0) {
        sums.push_back(Dtype(0));
        names.push_back(test_net_->blob_names()[b]);
      }
      sums[k] += test_net_->blobs()[b]->cpu_data()[0];
      ++k;
    }
  }
  for (std::size_t k = 0; k < sums.size(); ++k) {
    results.emplace_back(names[k],
                         sums[k] / static_cast<Dtype>(param_.test_iter));
  }
  return results;
}

template <typename Dtype>
void Solver<Dtype>::ApplyUpdate() {
  ClipGradients();
  const auto rate = static_cast<Dtype>(GetLearningRate());
  for (std::size_t i = 0; i < net_->learnable_params().size(); ++i) {
    Regularize(i);
    ComputeUpdateValue(i, rate);
    net_->learnable_params()[i]->Update();
  }
}

template <typename Dtype>
void Solver<Dtype>::Regularize(std::size_t param_id) {
  const double decay_mult = net_->params_weight_decay()[param_id];
  const auto decay = static_cast<Dtype>(param_.weight_decay * decay_mult);
  if (decay == Dtype(0)) return;
  Blob<Dtype>* param = net_->learnable_params()[param_id];
  if (param_.regularization_type == "L2") {
    blas::axpy(param->count(), decay, param->cpu_data(),
               param->mutable_cpu_diff());
  } else if (param_.regularization_type == "L1") {
    Dtype* sign_buf = update_[param_id]->mutable_cpu_data();
    blas::sign(param->count(), param->cpu_data(), sign_buf);
    blas::axpy(param->count(), decay, sign_buf, param->mutable_cpu_diff());
  } else {
    throw Error(__FILE__, __LINE__, "unknown regularization_type: " +
                                        param_.regularization_type);
  }
}

template <typename Dtype>
void Solver<Dtype>::ClipGradients() {
  const double threshold = param_.clip_gradients;
  if (threshold < 0) return;
  Dtype sumsq = 0;
  for (const Blob<Dtype>* p : net_->learnable_params()) {
    sumsq += p->sumsq_diff();
  }
  const double l2norm = std::sqrt(static_cast<double>(sumsq));
  if (l2norm <= threshold) return;
  const auto scale = static_cast<Dtype>(threshold / l2norm);
  for (Blob<Dtype>* p : net_->learnable_params()) {
    p->scale_diff(scale);
  }
}

template <typename Dtype>
std::unique_ptr<Solver<Dtype>> CreateSolver(
    const proto::SolverParameter& param) {
  const std::string& type = param.type;
  if (type == "SGD") return std::make_unique<SGDSolver<Dtype>>(param);
  if (type == "Nesterov") return std::make_unique<NesterovSolver<Dtype>>(param);
  if (type == "Adam") return std::make_unique<AdamSolver<Dtype>>(param);
  if (type == "AdaGrad") return std::make_unique<AdaGradSolver<Dtype>>(param);
  if (type == "RMSProp") return std::make_unique<RMSPropSolver<Dtype>>(param);
  if (type == "AdaDelta") return std::make_unique<AdaDeltaSolver<Dtype>>(param);
  throw Error(__FILE__, __LINE__, "unknown solver type: " + type);
}

template class Solver<float>;
template class Solver<double>;
template std::unique_ptr<Solver<float>> CreateSolver<float>(
    const proto::SolverParameter&);
template std::unique_ptr<Solver<double>> CreateSolver<double>(
    const proto::SolverParameter&);

}  // namespace cgdnn
