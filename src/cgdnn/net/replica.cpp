#include "cgdnn/net/replica.hpp"

#include "cgdnn/blas/blas.hpp"

namespace cgdnn {

template <typename Dtype>
DataParallelGroup<Dtype>::DataParallelGroup(const proto::NetParameter& param,
                                            int replicas) {
  CGDNN_CHECK_GE(replicas, 1);
  for (int r = 0; r < replicas; ++r) {
    replicas_.push_back(std::make_unique<Net<Dtype>>(param, Phase::kTrain));
    if (r > 0) {
      // Weight data aliases the master; gradient planes stay private.
      replicas_.back()->ShareTrainedLayersWith(*replicas_.front());
    }
  }
}

template <typename Dtype>
Dtype DataParallelGroup<Dtype>::ForwardBackward() {
  for (auto& net : replicas_) net->ClearParamDiffs();
  Dtype loss = 0;
  // Replicas run one after another here (one host device); on a multi-GPU
  // deployment these R calls are what executes concurrently — their data
  // and gradient planes are fully disjoint.
  for (auto& net : replicas_) loss += net->ForwardBackward();
  AccumulateGradients();
  return loss / static_cast<Dtype>(size());
}

template <typename Dtype>
void DataParallelGroup<Dtype>::AccumulateGradients() {
  const auto scale = Dtype(1) / static_cast<Dtype>(size());
  auto& master_params = replicas_.front()->learnable_params();
  // Master's own gradient is scaled in place, then every other replica's
  // gradient is folded in replica order — a deterministic reduction, the
  // cross-device analogue of the ordered merge of Algorithm 5.
  for (Blob<Dtype>* p : master_params) p->scale_diff(scale);
  for (std::size_t r = 1; r < replicas_.size(); ++r) {
    const auto& rep_params = replicas_[r]->learnable_params();
    CGDNN_CHECK_EQ(rep_params.size(), master_params.size());
    for (std::size_t i = 0; i < master_params.size(); ++i) {
      blas::axpy(master_params[i]->count(), scale, rep_params[i]->cpu_diff(),
                 master_params[i]->mutable_cpu_diff());
    }
  }
}

template <typename Dtype>
void DataParallelGroup<Dtype>::ApplyUpdate(Dtype lr) {
  for (Blob<Dtype>* p : replicas_.front()->learnable_params()) {
    p->scale_diff(lr);
    p->Update();
  }
}

template class DataParallelGroup<float>;
template class DataParallelGroup<double>;

}  // namespace cgdnn
