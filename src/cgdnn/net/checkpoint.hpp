// Crash-safe full-training-state checkpoints.
//
// A checkpoint captures everything a resumed run needs to reproduce the
// uninterrupted one bit-for-bit: every layer blob (weights, biases,
// batch-norm statistics), the solver's accumulator blobs (momentum /
// squared-gradient / second-moment histories), the iteration counter, the
// loss history, the global RNG state, and per-layer runtime state (data
// cursors, dropout pass counters).
//
// Format "CGDNNCKP" v1, little-endian:
//   header:   magic[8] | u32 version | u8 scalar_size | u8 pad[3]
//             | u64 param_digest | u32 type_len | solver type
//   sections (fixed order), each  u32 tag | u64 payload_bytes | payload:
//     'META'  i64 iter | u64 rng_state[6]
//     'LOSS'  u64 count | Dtype losses[count]
//     'WGTS'  u32 layer_count, per layer: str name | u32 blob_count,
//             per blob: u32 ndims | i64 dims[] | raw Dtype values
//     'SOLV'  u32 group_count, per group: str name | u32 blob_count,
//             per blob: as in WGTS
//     'NETS'  u32 layer_count, per layer: str name | u32 words | u64[]
//   footer:   u32 'CRCF' | u64 body_bytes | u32 crc32(file[0..body_bytes))
//
// Writes go through data::WriteFileAtomic (tmp + fsync + rename), so a
// crash mid-snapshot can never corrupt an existing checkpoint. Loads verify
// the CRC over the whole body before interpreting a single length field, so
// truncations and bit-flips are rejected up front.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cgdnn/core/rng.hpp"
#include "cgdnn/net/net.hpp"

namespace cgdnn {

/// One named group of solver accumulator blobs (e.g. "history",
/// "second_moment"). The pointer refers into the owning solver.
template <typename Dtype>
struct SolverStateGroup {
  std::string name;
  std::vector<std::shared_ptr<Blob<Dtype>>>* blobs;
};

/// Scalar training state carried alongside the blobs.
template <typename Dtype>
struct CheckpointMeta {
  index_t iter = 0;
  RngState rng{};
  std::vector<Dtype> loss_history;
};

template <typename Dtype>
void SaveCheckpoint(const std::string& path, const std::string& solver_type,
                    std::uint64_t param_digest,
                    const CheckpointMeta<Dtype>& meta, const Net<Dtype>& net,
                    const std::vector<SolverStateGroup<Dtype>>& groups);

/// Verifies integrity (CRC + structure), the solver type, and the
/// hyper-parameter digest, then restores net weights, solver state and
/// layer runtime state in place. Throws cgdnn::Error on any mismatch or
/// corruption; the net/solver are only mutated after full validation of the
/// sections that feed them.
template <typename Dtype>
CheckpointMeta<Dtype> LoadCheckpoint(
    const std::string& path, const std::string& solver_type,
    std::uint64_t param_digest, Net<Dtype>& net,
    const std::vector<SolverStateGroup<Dtype>>& groups);

/// Canonical snapshot file name: `<prefix>_iter_<iter>.cgdnnckpt`.
std::string SnapshotPath(const std::string& prefix, index_t iter);

/// Retained snapshots for `prefix`, ascending by iteration. Emergency
/// snapshots (`<prefix>_emergency_iter_*.cgdnnckpt`) are not included.
std::vector<std::pair<index_t, std::string>> ListSnapshots(
    const std::string& prefix);

/// Deletes all but the newest `keep` retained snapshots (keep <= 0 keeps
/// everything).
void RotateSnapshots(const std::string& prefix, index_t keep);

/// FNV-1a 64-bit hash, used for hyper-parameter digests.
std::uint64_t Fnv1a64(std::string_view text);

}  // namespace cgdnn
