// Net: the layer DAG plus the forward/backward drivers of Algorithm 1.
//
// Construction follows Caffe's Net::Init: layers are instantiated in
// prototxt order, tops/bottoms are wired by blob name (with in-place reuse
// when a layer names its top after its bottom), Split layers are inserted
// wherever one top feeds several consumers, and backward-need flags are
// propagated from the loss layers.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cgdnn/layers/layer.hpp"
#include "cgdnn/profile/profiler.hpp"

namespace cgdnn {

template <typename Dtype>
class Net {
 public:
  Net(const proto::NetParameter& param, Phase phase);

  /// One forward pass; returns the total weighted loss.
  Dtype Forward();
  /// One backward pass (requires a preceding Forward).
  void Backward();
  /// Forward + Backward, returning the loss (one solver iteration's work,
  /// lines 3-10 of Algorithm 1).
  Dtype ForwardBackward();

  /// Zeroes the diffs of all learnable parameters (start of an iteration).
  void ClearParamDiffs();

  /// Shares learnable parameters with a compatible net (train/test pair):
  /// layers are matched by name and their param blobs aliased.
  void ShareTrainedLayersWith(const Net& other);

  const std::vector<std::shared_ptr<Layer<Dtype>>>& layers() const {
    return layers_;
  }
  const std::vector<std::string>& layer_names() const { return layer_names_; }
  const std::vector<std::shared_ptr<Blob<Dtype>>>& blobs() const {
    return blobs_;
  }
  const std::vector<std::string>& blob_names() const { return blob_names_; }

  bool has_blob(const std::string& name) const;
  const std::shared_ptr<Blob<Dtype>>& blob_by_name(
      const std::string& name) const;
  bool has_layer(const std::string& name) const;
  const std::shared_ptr<Layer<Dtype>>& layer_by_name(
      const std::string& name) const;

  /// All learnable parameter blobs, with their per-blob multipliers.
  const std::vector<Blob<Dtype>*>& learnable_params() const {
    return learnable_params_;
  }
  const std::vector<double>& params_lr() const { return params_lr_; }
  const std::vector<double>& params_weight_decay() const {
    return params_weight_decay_;
  }

  const std::vector<std::vector<Blob<Dtype>*>>& bottom_vecs() const {
    return bottom_vecs_;
  }
  const std::vector<std::vector<Blob<Dtype>*>>& top_vecs() const {
    return top_vecs_;
  }

  const std::string& name() const { return name_; }
  Phase phase() const { return phase_; }

  // ---- planner hooks (src/cgdnn/plan/) -----------------------------------

  /// Per-layer blob-id wiring and backward-need flags, exposed read-only for
  /// the planner's lifetime analysis and fusion legality checks.
  const std::vector<std::vector<std::size_t>>& top_id_vecs() const {
    return top_id_vecs_;
  }
  const std::vector<std::vector<std::size_t>>& bottom_id_vecs() const {
    return bottom_id_vecs_;
  }
  const std::vector<bool>& layer_need_backward() const {
    return layer_need_backward_;
  }
  const std::vector<bool>& blob_need_backward() const {
    return blob_need_backward_;
  }

  /// Marks layer `li` as fused into its producer: Forward() skips it (its
  /// work happens in the producer's FusedEpilogue); Backward still runs it.
  void set_layer_forward_skip(std::size_t li, bool skip);
  bool layer_forward_skip(std::size_t li) const {
    return li < layer_forward_skip_.size() && layer_forward_skip_[li];
  }

  /// Keeps the execution plan's owned state (activation arena storage,
  /// epilogues) alive as long as the net; opaque to the net itself.
  void AttachPlanState(std::shared_ptr<void> state) {
    plan_state_ = std::move(state);
  }
  const std::shared_ptr<void>& plan_state() const { return plan_state_; }

  /// Bytes held by all intermediate blobs (the "total memory" of the
  /// paper's §3.2.1 memory accounting).
  std::size_t MemoryUsedBytes() const;
  /// Bytes held by learnable parameters (subset of the above).
  std::size_t ParamMemoryBytes() const;

  /// Attaches a profiler recording per-layer forward/backward times
  /// (nullptr detaches).
  void set_profiler(profile::Profiler* profiler) { profiler_ = profiler; }

  /// Splits shared tops: the preprocessing Caffe applies before wiring.
  /// Public for tests.
  static proto::NetParameter InsertSplits(const proto::NetParameter& param);
  /// Drops layers whose include phase excludes `phase`.
  static proto::NetParameter FilterNet(const proto::NetParameter& param,
                                       Phase phase);

 private:
  void Init(const proto::NetParameter& param);
  void AppendTop(const proto::LayerParameter& lp, std::size_t top_index);
  void AppendBottom(const proto::LayerParameter& lp, std::size_t bottom_index);
  void AppendParams(const proto::LayerParameter& lp, std::size_t layer_index);

  std::string name_;
  Phase phase_;

  std::vector<std::shared_ptr<Layer<Dtype>>> layers_;
  std::vector<std::string> layer_names_;
  std::map<std::string, std::size_t> layer_names_index_;

  std::vector<std::shared_ptr<Blob<Dtype>>> blobs_;
  std::vector<std::string> blob_names_;
  std::map<std::string, std::size_t> blob_names_index_;

  std::vector<std::vector<Blob<Dtype>*>> bottom_vecs_;
  std::vector<std::vector<std::size_t>> bottom_id_vecs_;
  std::vector<std::vector<bool>> bottom_need_backward_;
  std::vector<std::vector<Blob<Dtype>*>> top_vecs_;
  std::vector<std::vector<std::size_t>> top_id_vecs_;

  std::vector<bool> layer_need_backward_;
  std::vector<bool> blob_need_backward_;  // indexed by blob id

  std::vector<Blob<Dtype>*> learnable_params_;
  std::vector<double> params_lr_;
  std::vector<double> params_weight_decay_;

  // Scratch for blob availability during wiring: name -> blob id of the
  // most recent producer.
  std::map<std::string, std::size_t> available_blobs_;

  std::vector<bool> layer_forward_skip_;  // true: fused into producer
  std::shared_ptr<void> plan_state_;      // owned by the execution plan

  bool force_backward_ = false;
  profile::Profiler* profiler_ = nullptr;
};

}  // namespace cgdnn
