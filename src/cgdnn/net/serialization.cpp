#include "cgdnn/net/serialization.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "cgdnn/data/io.hpp"

namespace cgdnn {

namespace {

constexpr char kMagic[8] = {'C', 'G', 'D', 'N', 'N', 'W', 'T', 'S'};
constexpr std::uint32_t kVersion = 1;
/// Upper bound on a single serialized blob (2^33 bytes = 8 GiB): rejects
/// corrupt dimension fields before they reach the raw-data allocation.
constexpr std::int64_t kMaxBlobBytes = std::int64_t{1} << 33;

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T ReadPod(std::istream& in, const std::string& path) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  CGDNN_CHECK(in.good()) << "truncated weights file: " << path;
  return v;
}

void WriteString(std::ostream& out, const std::string& s) {
  WritePod(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string ReadString(std::istream& in, const std::string& path) {
  const auto len = ReadPod<std::uint32_t>(in, path);
  CGDNN_CHECK_LE(len, 4096u) << "implausible name length in " << path;
  std::string s(len, '\0');
  in.read(s.data(), len);
  CGDNN_CHECK(in.good()) << "truncated weights file: " << path;
  return s;
}

}  // namespace

template <typename Dtype>
void SaveWeights(const Net<Dtype>& net, const std::string& path) {
  // Serialize into memory, then commit crash-safely: a kill mid-save leaves
  // the previous weights file intact instead of a half-written one.
  std::ostringstream out;
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);

  std::uint32_t layer_count = 0;
  for (const auto& layer : net.layers()) {
    if (!layer->blobs().empty()) ++layer_count;
  }
  WritePod(out, layer_count);

  for (std::size_t li = 0; li < net.layers().size(); ++li) {
    const auto& layer = net.layers()[li];
    if (layer->blobs().empty()) continue;
    WriteString(out, net.layer_names()[li]);
    WritePod(out, static_cast<std::uint32_t>(layer->blobs().size()));
    for (const auto& blob : layer->blobs()) {
      WritePod(out, static_cast<std::uint32_t>(blob->num_axes()));
      for (int a = 0; a < blob->num_axes(); ++a) {
        WritePod(out, static_cast<std::int64_t>(blob->shape(a)));
      }
      WritePod(out, static_cast<std::uint8_t>(sizeof(Dtype)));
      out.write(reinterpret_cast<const char*>(blob->cpu_data()),
                static_cast<std::streamsize>(blob->count() * sizeof(Dtype)));
    }
  }
  CGDNN_CHECK(out.good()) << "weight serialization failed for " << path;
  data::WriteFileAtomic(path, out.view());
}

template <typename Dtype>
std::size_t LoadWeights(Net<Dtype>& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CGDNN_CHECK(in.good()) << "cannot open weights file: " << path;
  char magic[8];
  in.read(magic, sizeof(magic));
  CGDNN_CHECK(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0)
      << "not a cgdnn weights file: " << path;
  const auto version = ReadPod<std::uint32_t>(in, path);
  CGDNN_CHECK_EQ(version, kVersion) << "unsupported weights version in " << path;
  const auto layer_count = ReadPod<std::uint32_t>(in, path);

  std::size_t restored = 0;
  for (std::uint32_t l = 0; l < layer_count; ++l) {
    const std::string name = ReadString(in, path);
    const auto blob_count = ReadPod<std::uint32_t>(in, path);
    const bool present = net.has_layer(name);
    Layer<Dtype>* layer = present ? net.layer_by_name(name).get() : nullptr;
    if (present) {
      CGDNN_CHECK_EQ(layer->blobs().size(),
                     static_cast<std::size_t>(blob_count))
          << "blob count mismatch for layer '" << name << "' in " << path;
      ++restored;
    }
    for (std::uint32_t b = 0; b < blob_count; ++b) {
      const auto ndims = ReadPod<std::uint32_t>(in, path);
      CGDNN_CHECK_LE(ndims, 32u) << "implausible blob rank in " << path;
      std::vector<index_t> shape;
      index_t count = 1;
      for (std::uint32_t d = 0; d < ndims; ++d) {
        const auto dim = ReadPod<std::int64_t>(in, path);
        // Validate before the multiply: a negative or huge dim must never
        // reach the allocation below (or overflow `count` on the way).
        CGDNN_CHECK_GT(dim, 0)
            << "non-positive blob dimension in " << path;
        CGDNN_CHECK_LE(dim, kMaxBlobBytes / count)
            << "blob too large in " << path << " (corrupt dimensions?)";
        shape.push_back(static_cast<index_t>(dim));
        count *= shape.back();
      }
      const auto scalar_size = ReadPod<std::uint8_t>(in, path);
      CGDNN_CHECK(scalar_size == 4 || scalar_size == 8)
          << "unsupported scalar size in " << path;
      CGDNN_CHECK_LE(count, kMaxBlobBytes / scalar_size)
          << "blob too large in " << path << " (corrupt dimensions?)";
      std::vector<char> raw(static_cast<std::size_t>(count) * scalar_size);
      in.read(raw.data(), static_cast<std::streamsize>(raw.size()));
      CGDNN_CHECK(in.good()) << "truncated weights file: " << path;
      if (!present) continue;  // skip layers the net does not have
      Blob<Dtype>& dst = *layer->blobs()[b];
      CGDNN_CHECK(dst.shape() == shape)
          << "shape mismatch for layer '" << name << "' blob " << b << ": net "
          << dst.shape_string();
      Dtype* out = dst.mutable_cpu_data();
      if (scalar_size == sizeof(Dtype)) {
        std::memcpy(out, raw.data(), raw.size());
      } else if (scalar_size == 4) {
        const auto* src = reinterpret_cast<const float*>(raw.data());
        for (index_t i = 0; i < count; ++i) out[i] = static_cast<Dtype>(src[i]);
      } else {
        const auto* src = reinterpret_cast<const double*>(raw.data());
        for (index_t i = 0; i < count; ++i) out[i] = static_cast<Dtype>(src[i]);
      }
    }
  }
  return restored;
}

template void SaveWeights<float>(const Net<float>&, const std::string&);
template void SaveWeights<double>(const Net<double>&, const std::string&);
template std::size_t LoadWeights<float>(Net<float>&, const std::string&);
template std::size_t LoadWeights<double>(Net<double>&, const std::string&);

}  // namespace cgdnn
