// The two evaluation networks of the paper (§2.2, Figure 3), expressed as
// prototxt builders so examples/tests/benches share one definition.
//
//  * LeNet on MNIST: data → conv1(20,5x5) → pool1(2x2 MAX) → conv2(50,5x5)
//    → pool2 → ip1(500) → relu1 (in-place) → ip2(10) → SoftmaxWithLoss.
//  * CIFAR-10 "quick": data → conv1(32,5x5,pad2) → pool1(3x3/2 MAX) → relu1
//    → norm1(LRN) → conv2(32) → relu2 → pool2(AVE) → norm2 → conv3(64) →
//    relu3 → pool3(AVE) → ip1(64) → ip2(10) → SoftmaxWithLoss.
// TEST phase additionally computes Accuracy.
#pragma once

#include <string>

#include "cgdnn/proto/params.hpp"

namespace cgdnn::models {

struct ModelOptions {
  index_t batch_size = 64;
  index_t num_samples = 512;     ///< synthetic dataset size
  std::uint64_t data_seed = 1;
  bool with_accuracy = true;     ///< add TEST-phase Accuracy layer
  std::string source;            ///< dataset source override (default synthetic)
};

/// LeNet (MNIST classifier) network parameter.
proto::NetParameter LeNet(const ModelOptions& opts = {});

/// CIFAR-10 "quick" CNN network parameter.
proto::NetParameter Cifar10Quick(const ModelOptions& opts = {});

/// Matching solver parameters (Caffe's lenet_solver / cifar10_quick_solver
/// hyper-parameters, scaled to synthetic dataset sizes).
proto::SolverParameter LeNetSolver(const ModelOptions& opts = {});
proto::SolverParameter Cifar10QuickSolver(const ModelOptions& opts = {});

}  // namespace cgdnn::models
