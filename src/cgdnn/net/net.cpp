#include "cgdnn/net/net.hpp"

#include <sstream>

#include "cgdnn/blackbox/blackbox.hpp"
#include "cgdnn/perfctr/perfctr.hpp"
#include "cgdnn/profile/timer.hpp"
#include "cgdnn/trace/counters.hpp"
#include "cgdnn/trace/metrics.hpp"
#include "cgdnn/trace/trace.hpp"

namespace cgdnn {

namespace {

std::string SplitLayerName(const std::string& layer_name,
                           const std::string& blob_name) {
  return blob_name + "_" + layer_name + "_split";
}

std::string SplitBlobName(const std::string& layer_name,
                          const std::string& blob_name, int k) {
  std::ostringstream os;
  os << blob_name << "_" << layer_name << "_split_" << k;
  return os.str();
}

/// One per-layer timing path serves the profiler, the span tracer and the
/// metrics registry: a span on the serial (driver) thread's timeline per
/// layer phase, a PhaseStats sample when a profiler is attached, and a
/// `layer.<name>.<phase>.us` histogram sample when metrics collection is on
/// (via Profiler::Record, or directly when no profiler is attached).
///
/// When hardware-counter collection is armed as well, the driver thread's
/// counter deltas over the layer are recorded under the same prefix
/// (`layer.<name>.<phase>.cycles`, `.ipc_last`, ...). In a multi-threaded
/// run these deltas cover only the driver thread's share of the parallel
/// work — the per-thread region metrics (`region.<name>.<phase>.*`) carry
/// the full team; in a serial run they cover the whole layer.
template <typename Dtype, typename Body>
void TimedLayerPhase(profile::Profiler* profiler, const std::string& layer,
                     profile::LayerPhase phase, Body&& body) {
  // Always-on flight-recorder breadcrumbs (both paths): a crash dump can
  // name the layer in flight even when tracing/profiling are off.
  blackbox::Record(blackbox::EventKind::kLayerBegin, layer.c_str(),
                   static_cast<std::uint64_t>(phase));
  if (profiler == nullptr && !trace::CollectionActive()) {
    body();
    blackbox::Record(blackbox::EventKind::kLayerEnd, layer.c_str(),
                     static_cast<std::uint64_t>(phase));
    return;
  }
  TRACE_SCOPE("layer",
              layer + "." + profile::LayerPhaseName(phase));
  perfctr::Sample ctr_begin;
  const bool want_ctr_metrics =
      trace::MetricsActive() && perfctr::CollectionActive();
  if (want_ctr_metrics) ctr_begin = perfctr::ReadThreadCounters();
  profile::Timer timer;
  body();
  const double us = timer.MicroSeconds();
  if (ctr_begin.valid) {
    trace::RecordCounterDeltaMetrics(
        "layer." + layer + "." + profile::LayerPhaseName(phase),
        perfctr::ComputeDelta(ctr_begin, perfctr::ReadThreadCounters()),
        trace::MetricsRegistry::Default());
  }
  if (profiler != nullptr) {
    profiler->Record(layer, phase, us);
  } else if (trace::MetricsActive()) {
    trace::MetricsRegistry::Default()
        .GetHistogram("layer." + layer + "." + profile::LayerPhaseName(phase) +
                      ".us")
        .Observe(us);
  }
  blackbox::Record(blackbox::EventKind::kLayerEnd, layer.c_str(),
                   static_cast<std::uint64_t>(phase));
}

}  // namespace

template <typename Dtype>
proto::NetParameter Net<Dtype>::FilterNet(const proto::NetParameter& param,
                                          Phase phase) {
  proto::NetParameter out = param;
  out.layer.clear();
  for (const auto& lp : param.layer) {
    if (lp.include_phase && *lp.include_phase != phase) continue;
    out.layer.push_back(lp);
  }
  return out;
}

template <typename Dtype>
proto::NetParameter Net<Dtype>::InsertSplits(const proto::NetParameter& param) {
  using Ref = std::pair<std::size_t, std::size_t>;  // (layer idx, top idx)
  std::map<std::string, Ref> producer;
  std::map<Ref, int> consumers;
  for (std::size_t li = 0; li < param.layer.size(); ++li) {
    const auto& lp = param.layer[li];
    for (const auto& bottom : lp.bottom) {
      const auto it = producer.find(bottom);
      CGDNN_CHECK(it != producer.end())
          << "unknown bottom blob '" << bottom << "' for layer '" << lp.name
          << "'";
      ++consumers[it->second];
    }
    for (std::size_t ti = 0; ti < lp.top.size(); ++ti) {
      producer[lp.top[ti]] = {li, ti};
    }
  }

  proto::NetParameter out = param;
  out.layer.clear();
  producer.clear();
  std::map<Ref, int> consumed;
  std::map<Ref, std::string> producing_layer_name;
  for (std::size_t li = 0; li < param.layer.size(); ++li) {
    proto::LayerParameter lp = param.layer[li];
    for (auto& bottom : lp.bottom) {
      const Ref ref = producer.at(bottom);
      if (consumers.at(ref) > 1) {
        bottom = SplitBlobName(producing_layer_name.at(ref), bottom,
                               consumed[ref]++);
      }
    }
    out.layer.push_back(lp);
    for (std::size_t ti = 0; ti < lp.top.size(); ++ti) {
      const Ref ref{li, ti};
      producer[lp.top[ti]] = ref;
      producing_layer_name[ref] = lp.name;
      const auto it = consumers.find(ref);
      if (it != consumers.end() && it->second > 1) {
        proto::LayerParameter split;
        split.type = "Split";
        split.name = SplitLayerName(lp.name, lp.top[ti]);
        split.bottom.push_back(lp.top[ti]);
        for (int k = 0; k < it->second; ++k) {
          split.top.push_back(SplitBlobName(lp.name, lp.top[ti], k));
        }
        out.layer.push_back(split);
      }
    }
  }
  return out;
}

template <typename Dtype>
Net<Dtype>::Net(const proto::NetParameter& param, Phase phase)
    : phase_(phase) {
  Init(InsertSplits(FilterNet(param, phase)));
}

template <typename Dtype>
void Net<Dtype>::Init(const proto::NetParameter& param) {
  name_ = param.name;
  force_backward_ = param.force_backward;

  for (std::size_t li = 0; li < param.layer.size(); ++li) {
    proto::LayerParameter lp = param.layer[li];
    lp.include_phase = phase_;  // layers inherit the net's phase
    layers_.push_back(LayerRegistry<Dtype>::Get().Create(lp));
    layer_names_.push_back(lp.name);
    layer_names_index_[lp.name] = li;
    bottom_vecs_.emplace_back();
    bottom_id_vecs_.emplace_back();
    bottom_need_backward_.emplace_back();
    top_vecs_.emplace_back();
    top_id_vecs_.emplace_back();

    for (std::size_t bi = 0; bi < lp.bottom.size(); ++bi) {
      AppendBottom(lp, bi);
    }
    for (std::size_t ti = 0; ti < lp.top.size(); ++ti) {
      AppendTop(lp, ti);
    }

    layers_[li]->SetUp(bottom_vecs_[li], top_vecs_[li]);
    AppendParams(lp, li);

    // A layer needs backward if any of its inputs carries gradient, if it
    // owns learnable parameters, or if it produces a loss.
    bool need_backward = !layers_[li]->blobs().empty();
    for (const bool bnb : bottom_need_backward_[li]) need_backward |= bnb;
    for (std::size_t ti = 0; ti < top_vecs_[li].size(); ++ti) {
      need_backward |= layers_[li]->loss(static_cast<int>(ti)) != Dtype(0);
    }
    layer_need_backward_.push_back(need_backward);
    for (const std::size_t top_id : top_id_vecs_[li]) {
      if (blob_need_backward_.size() <= top_id) {
        blob_need_backward_.resize(top_id + 1, false);
      }
      blob_need_backward_[top_id] = need_backward;
    }
  }

  // Backward-prune layers that do not contribute to any loss: traverse in
  // reverse, tracking which blobs are "under" a loss.
  std::vector<bool> blob_under_loss(blobs_.size(), false);
  for (std::size_t li = layers_.size(); li-- > 0;) {
    bool contributes = false;
    for (std::size_t ti = 0; ti < top_vecs_[li].size(); ++ti) {
      if (layers_[li]->loss(static_cast<int>(ti)) != Dtype(0) ||
          blob_under_loss[top_id_vecs_[li][ti]]) {
        contributes = true;
      }
    }
    if (!contributes && !force_backward_) {
      layer_need_backward_[li] = false;
    }
    if (layer_need_backward_[li]) {
      for (const std::size_t bid : bottom_id_vecs_[li]) {
        blob_under_loss[bid] = true;
      }
    }
  }
}

template <typename Dtype>
void Net<Dtype>::AppendBottom(const proto::LayerParameter& lp,
                              std::size_t bottom_index) {
  const std::string& name = lp.bottom[bottom_index];
  const auto it = available_blobs_.find(name);
  CGDNN_CHECK(it != available_blobs_.end())
      << "unknown bottom blob '" << name << "' for layer '" << lp.name << "'"
      << " (produced tops are consumed exactly once after split insertion)";
  const std::size_t blob_id = it->second;
  const std::size_t li = layers_.size() - 1;
  bottom_vecs_[li].push_back(blobs_[blob_id].get());
  bottom_id_vecs_[li].push_back(blob_id);
  const bool need =
      (blob_id < blob_need_backward_.size() && blob_need_backward_[blob_id]) ||
      (force_backward_ &&
       layers_[li]->AllowForceBackward(static_cast<int>(bottom_index)));
  bottom_need_backward_[li].push_back(need);
  available_blobs_.erase(it);
}

template <typename Dtype>
void Net<Dtype>::AppendTop(const proto::LayerParameter& lp,
                           std::size_t top_index) {
  const std::string& name = lp.top[top_index];
  const std::size_t li = layers_.size() - 1;
  const bool in_place = top_index < lp.bottom.size() &&
                        name == lp.bottom[top_index];
  if (in_place) {
    // In-place computation (e.g. ReLU on ip1): reuse the bottom blob.
    const std::size_t blob_id = bottom_id_vecs_[li][top_index];
    top_vecs_[li].push_back(blobs_[blob_id].get());
    top_id_vecs_[li].push_back(blob_id);
    available_blobs_[name] = blob_id;
    return;
  }
  auto blob = std::make_shared<Blob<Dtype>>();
  const std::size_t blob_id = blobs_.size();
  blobs_.push_back(blob);
  blob_names_.push_back(name);
  blob_names_index_[name] = blob_id;
  top_vecs_[li].push_back(blob.get());
  top_id_vecs_[li].push_back(blob_id);
  available_blobs_[name] = blob_id;
}

template <typename Dtype>
void Net<Dtype>::AppendParams(const proto::LayerParameter& lp,
                              std::size_t layer_index) {
  auto& layer = layers_[layer_index];
  for (std::size_t j = 0; j < layer->blobs().size(); ++j) {
    proto::ParamSpec spec;
    if (j < lp.param.size()) spec = lp.param[j];
    learnable_params_.push_back(layer->blobs()[j].get());
    params_lr_.push_back(spec.lr_mult);
    params_weight_decay_.push_back(spec.decay_mult);
    layer->set_param_propagate_down(static_cast<int>(j), spec.lr_mult != 0.0);
  }
}

template <typename Dtype>
Dtype Net<Dtype>::Forward() {
  TRACE_SCOPE("net", name_ + ".forward");
  Dtype loss = 0;
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    // Fused consumers run inside their producer's output loop (a planner-
    // installed FusedEpilogue); skipping them here is what removes the
    // extra memory round-trip. They still run their own Backward.
    if (layer_forward_skip(li)) continue;
    TimedLayerPhase<Dtype>(profiler_, layer_names_[li],
                           profile::LayerPhase::kForward, [&] {
                             loss += layers_[li]->Forward(bottom_vecs_[li],
                                                          top_vecs_[li]);
                           });
  }
  return loss;
}

template <typename Dtype>
void Net<Dtype>::Backward() {
  TRACE_SCOPE("net", name_ + ".backward");
  for (std::size_t li = layers_.size(); li-- > 0;) {
    if (!layer_need_backward_[li]) continue;
    TimedLayerPhase<Dtype>(profiler_, layer_names_[li],
                           profile::LayerPhase::kBackward, [&] {
                             layers_[li]->Backward(top_vecs_[li],
                                                   bottom_need_backward_[li],
                                                   bottom_vecs_[li]);
                           });
  }
}

template <typename Dtype>
void Net<Dtype>::set_layer_forward_skip(std::size_t li, bool skip) {
  CGDNN_CHECK_LT(li, layers_.size());
  if (layer_forward_skip_.size() < layers_.size()) {
    layer_forward_skip_.assign(layers_.size(), false);
  }
  layer_forward_skip_[li] = skip;
}

template <typename Dtype>
Dtype Net<Dtype>::ForwardBackward() {
  const Dtype loss = Forward();
  Backward();
  return loss;
}

template <typename Dtype>
void Net<Dtype>::ClearParamDiffs() {
  for (Blob<Dtype>* param : learnable_params_) param->set_diff(Dtype(0));
}

template <typename Dtype>
void Net<Dtype>::ShareTrainedLayersWith(const Net& other) {
  for (std::size_t li = 0; li < other.layers_.size(); ++li) {
    const auto it = layer_names_index_.find(other.layer_names_[li]);
    if (it == layer_names_index_.end()) continue;
    auto& target = layers_[it->second];
    const auto& source = other.layers_[li];
    if (source->blobs().empty()) continue;
    CGDNN_CHECK_EQ(target->blobs().size(), source->blobs().size())
        << "incompatible parameter counts for shared layer '"
        << other.layer_names_[li] << "'";
    for (std::size_t j = 0; j < source->blobs().size(); ++j) {
      CGDNN_CHECK(target->blobs()[j]->shape() == source->blobs()[j]->shape())
          << "incompatible parameter shapes for shared layer '"
          << other.layer_names_[li] << "'";
      target->blobs()[j]->ShareData(*source->blobs()[j]);
    }
  }
}

template <typename Dtype>
bool Net<Dtype>::has_blob(const std::string& name) const {
  return blob_names_index_.contains(name);
}

template <typename Dtype>
const std::shared_ptr<Blob<Dtype>>& Net<Dtype>::blob_by_name(
    const std::string& name) const {
  const auto it = blob_names_index_.find(name);
  CGDNN_CHECK(it != blob_names_index_.end()) << "unknown blob: " << name;
  return blobs_[it->second];
}

template <typename Dtype>
bool Net<Dtype>::has_layer(const std::string& name) const {
  return layer_names_index_.contains(name);
}

template <typename Dtype>
const std::shared_ptr<Layer<Dtype>>& Net<Dtype>::layer_by_name(
    const std::string& name) const {
  const auto it = layer_names_index_.find(name);
  CGDNN_CHECK(it != layer_names_index_.end()) << "unknown layer: " << name;
  return layers_[it->second];
}

template <typename Dtype>
std::size_t Net<Dtype>::MemoryUsedBytes() const {
  std::size_t bytes = 0;
  for (const auto& blob : blobs_) bytes += 2 * blob->data_bytes();  // data+diff
  return bytes + ParamMemoryBytes();
}

template <typename Dtype>
std::size_t Net<Dtype>::ParamMemoryBytes() const {
  std::size_t bytes = 0;
  for (const Blob<Dtype>* param : learnable_params_) {
    bytes += 2 * param->data_bytes();
  }
  return bytes;
}

template class Net<float>;
template class Net<double>;

}  // namespace cgdnn
