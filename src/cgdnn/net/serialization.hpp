// Trained-weight serialization (the role of Caffe's .caffemodel files).
//
// Format "CGDNNWTS" v1, little-endian:
//   magic[8] | u32 version | u32 layer_count
//   per layer:  u32 name_len | name | u32 blob_count
//   per blob:   u32 ndims | i64 dims[ndims] | u8 scalar_size | raw values
// Weights are stored at their in-memory precision; loading converts between
// float and double transparently. Loading matches layers by NAME (Caffe
// semantics): layers absent from the file keep their current weights,
// layers present must match blob counts and shapes exactly.
//
// Saving is crash-safe (tmp + fsync + atomic rename, see data::
// WriteFileAtomic); loading validates dimensions and caps blob sizes so a
// corrupt file is rejected with a clear error instead of a wild allocation.
// Full training-state snapshots (solver history, RNG, cursors) are the
// separate checkpoint format in cgdnn/net/checkpoint.hpp.
#pragma once

#include <string>

#include "cgdnn/net/net.hpp"

namespace cgdnn {

template <typename Dtype>
void SaveWeights(const Net<Dtype>& net, const std::string& path);

/// Returns the number of layers whose weights were restored.
template <typename Dtype>
std::size_t LoadWeights(Net<Dtype>& net, const std::string& path);

}  // namespace cgdnn
