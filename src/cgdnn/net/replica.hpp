// Data-parallel replica groups — the paper's multi-device compatibility
// claim, made concrete.
//
// The abstract states the batch-level parallelization "is compatible with
// multi-GPU execution without altering the algorithm convergence rate":
// because the gradient of a batch is the average of per-sample gradients,
// a batch can be SPLIT across R model replicas (each itself running the
// coarse-grain OpenMP layers) and the replica gradients averaged in a fixed
// order — the update equals the single-device large-batch update, so no
// hyper-parameter (in particular the effective batch size) changes.
//
// DataParallelGroup manages R replica nets built from one NetParameter:
//  * replicas SHARE the master's weight data (zero copy), so one Update()
//    on the master advances every replica;
//  * each replica keeps its own gradient plane;
//  * AccumulateGradients() folds replica gradients into the master in
//    replica order scaled by 1/R — deterministic, like the ordered merge.
// On this host the replicas stand in for devices; the structure is exactly
// what a multi-GPU deployment would distribute.
#pragma once

#include <memory>
#include <vector>

#include "cgdnn/net/net.hpp"

namespace cgdnn {

template <typename Dtype>
class DataParallelGroup {
 public:
  /// Builds `replicas` nets from `param` (TRAIN phase). Every replica's
  /// learnable parameters alias the first ("master") replica's data.
  DataParallelGroup(const proto::NetParameter& param, int replicas);

  int size() const { return static_cast<int>(replicas_.size()); }
  Net<Dtype>& master() { return *replicas_.front(); }
  Net<Dtype>& replica(int r) { return *replicas_[static_cast<std::size_t>(r)]; }

  /// One data-parallel iteration: zero master diffs, run every replica's
  /// ForwardBackward (each on its own data shard — the caller wires the
  /// replica data layers), then fold gradients into the master scaled by
  /// 1/R in replica order. Returns the averaged loss.
  Dtype ForwardBackward();

  /// Applies the accumulated master gradient: param -= lr * grad.
  void ApplyUpdate(Dtype lr);

 private:
  void AccumulateGradients();

  std::vector<std::unique_ptr<Net<Dtype>>> replicas_;
};

}  // namespace cgdnn
