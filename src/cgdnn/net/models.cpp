#include "cgdnn/net/models.hpp"

namespace cgdnn::models {

namespace {

using proto::FillerParameter;
using proto::LayerParameter;
using proto::NetParameter;

FillerParameter Xavier() {
  FillerParameter f;
  f.type = "xavier";
  return f;
}

FillerParameter Gaussian(double std_dev) {
  FillerParameter f;
  f.type = "gaussian";
  f.std = std_dev;
  return f;
}

FillerParameter Constant(double value = 0.0) {
  FillerParameter f;
  f.type = "constant";
  f.value = value;
  return f;
}

LayerParameter Data(const std::string& name, const std::string& source,
                    const ModelOptions& opts) {
  LayerParameter l;
  l.name = name;
  l.type = "Data";
  l.top = {"data", "label"};
  l.data_param.source = opts.source.empty() ? source : opts.source;
  l.data_param.batch_size = opts.batch_size;
  l.data_param.num_samples = opts.num_samples;
  l.data_param.seed = opts.data_seed;
  return l;
}

LayerParameter Conv(const std::string& name, const std::string& bottom,
                    index_t num_output, index_t kernel, index_t stride,
                    index_t pad, const FillerParameter& weight_filler) {
  LayerParameter l;
  l.name = name;
  l.type = "Convolution";
  l.bottom = {bottom};
  l.top = {name};
  l.convolution_param.num_output = num_output;
  l.convolution_param.kernel_h = kernel;
  l.convolution_param.kernel_w = kernel;
  l.convolution_param.stride_h = stride;
  l.convolution_param.stride_w = stride;
  l.convolution_param.pad_h = pad;
  l.convolution_param.pad_w = pad;
  l.convolution_param.weight_filler = weight_filler;
  l.convolution_param.bias_filler = Constant();
  l.param = {{"", 1.0, 1.0}, {"", 2.0, 0.0}};  // Caffe's conv lr multipliers
  return l;
}

LayerParameter Pool(const std::string& name, const std::string& bottom,
                    proto::PoolingParameter::Method method, index_t kernel,
                    index_t stride) {
  LayerParameter l;
  l.name = name;
  l.type = "Pooling";
  l.bottom = {bottom};
  l.top = {name};
  l.pooling_param.pool = method;
  l.pooling_param.kernel_size = kernel;
  l.pooling_param.stride = stride;
  return l;
}

LayerParameter ReLU(const std::string& name, const std::string& blob) {
  LayerParameter l;
  l.name = name;
  l.type = "ReLU";
  l.bottom = {blob};
  l.top = {blob};  // in-place, as in the Caffe model zoo
  return l;
}

LayerParameter Lrn(const std::string& name, const std::string& bottom,
                   index_t local_size, double alpha, double beta) {
  LayerParameter l;
  l.name = name;
  l.type = "LRN";
  l.bottom = {bottom};
  l.top = {name};
  l.lrn_param.local_size = local_size;
  l.lrn_param.alpha = alpha;
  l.lrn_param.beta = beta;
  return l;
}

LayerParameter Ip(const std::string& name, const std::string& bottom,
                  index_t num_output, const FillerParameter& weight_filler) {
  LayerParameter l;
  l.name = name;
  l.type = "InnerProduct";
  l.bottom = {bottom};
  l.top = {name};
  l.inner_product_param.num_output = num_output;
  l.inner_product_param.weight_filler = weight_filler;
  l.inner_product_param.bias_filler = Constant();
  l.param = {{"", 1.0, 1.0}, {"", 2.0, 0.0}};
  return l;
}

LayerParameter Loss(const std::string& bottom) {
  LayerParameter l;
  l.name = "loss";
  l.type = "SoftmaxWithLoss";
  l.bottom = {bottom, "label"};
  l.top = {"loss"};
  return l;
}

LayerParameter Accuracy(const std::string& bottom) {
  LayerParameter l;
  l.name = "accuracy";
  l.type = "Accuracy";
  l.bottom = {bottom, "label"};
  l.top = {"accuracy"};
  l.include_phase = Phase::kTest;
  return l;
}

}  // namespace

NetParameter LeNet(const ModelOptions& opts) {
  NetParameter net;
  net.name = "LeNet";
  net.layer.push_back(Data("mnist", "synthetic-mnist", opts));
  net.layer.push_back(Conv("conv1", "data", 20, 5, 1, 0, Xavier()));
  net.layer.push_back(
      Pool("pool1", "conv1", proto::PoolingParameter::Method::kMax, 2, 2));
  net.layer.push_back(Conv("conv2", "pool1", 50, 5, 1, 0, Xavier()));
  net.layer.push_back(
      Pool("pool2", "conv2", proto::PoolingParameter::Method::kMax, 2, 2));
  net.layer.push_back(Ip("ip1", "pool2", 500, Xavier()));
  net.layer.push_back(ReLU("relu1", "ip1"));
  net.layer.push_back(Ip("ip2", "ip1", 10, Xavier()));
  if (opts.with_accuracy) net.layer.push_back(Accuracy("ip2"));
  net.layer.push_back(Loss("ip2"));
  return net;
}

NetParameter Cifar10Quick(const ModelOptions& opts) {
  NetParameter net;
  net.name = "CIFAR10_quick";
  ModelOptions o = opts;
  if (o.batch_size == 64) o.batch_size = 100;  // Caffe's CIFAR default
  net.layer.push_back(Data("cifar", "synthetic-cifar10", o));
  net.layer.push_back(Conv("conv1", "data", 32, 5, 1, 2, Gaussian(0.0001)));
  net.layer.push_back(
      Pool("pool1", "conv1", proto::PoolingParameter::Method::kMax, 3, 2));
  net.layer.push_back(ReLU("relu1", "pool1"));
  net.layer.push_back(Lrn("norm1", "pool1", 3, 5e-5, 0.75));
  net.layer.push_back(Conv("conv2", "norm1", 32, 5, 1, 2, Gaussian(0.01)));
  net.layer.push_back(ReLU("relu2", "conv2"));
  net.layer.push_back(
      Pool("pool2", "conv2", proto::PoolingParameter::Method::kAve, 3, 2));
  net.layer.push_back(Lrn("norm2", "pool2", 3, 5e-5, 0.75));
  net.layer.push_back(Conv("conv3", "norm2", 64, 5, 1, 2, Gaussian(0.01)));
  net.layer.push_back(ReLU("relu3", "conv3"));
  net.layer.push_back(
      Pool("pool3", "conv3", proto::PoolingParameter::Method::kAve, 3, 2));
  net.layer.push_back(Ip("ip1", "pool3", 64, Gaussian(0.1)));
  net.layer.push_back(Ip("ip2", "ip1", 10, Gaussian(0.1)));
  if (opts.with_accuracy) net.layer.push_back(Accuracy("ip2"));
  net.layer.push_back(Loss("ip2"));
  return net;
}

proto::SolverParameter LeNetSolver(const ModelOptions& opts) {
  proto::SolverParameter s;
  s.type = "SGD";
  s.net_param = LeNet(opts);
  s.base_lr = 0.01;
  s.momentum = 0.9;
  s.weight_decay = 0.0005;
  s.lr_policy = "inv";
  s.gamma = 0.0001;
  s.power = 0.75;
  s.max_iter = 200;
  s.test_iter = 4;
  s.test_interval = 100;
  s.random_seed = 1;
  return s;
}

proto::SolverParameter Cifar10QuickSolver(const ModelOptions& opts) {
  proto::SolverParameter s;
  s.type = "SGD";
  s.net_param = Cifar10Quick(opts);
  s.base_lr = 0.001;
  s.momentum = 0.9;
  s.weight_decay = 0.004;
  s.lr_policy = "fixed";
  s.max_iter = 200;
  s.test_iter = 4;
  s.test_interval = 100;
  s.random_seed = 1;
  return s;
}

}  // namespace cgdnn::models
