#include "cgdnn/net/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <string>

#include "cgdnn/blackbox/blackbox.hpp"
#include "cgdnn/data/io.hpp"

namespace cgdnn {

namespace {

constexpr char kMagic[8] = {'C', 'G', 'D', 'N', 'N', 'C', 'K', 'P'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kFooterBytes = 4 + 8 + 4;  // tag | body_bytes | crc
constexpr char kSnapshotSuffix[] = ".cgdnnckpt";

constexpr std::uint32_t FourCC(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr std::uint32_t kTagMeta = FourCC('M', 'E', 'T', 'A');
constexpr std::uint32_t kTagLoss = FourCC('L', 'O', 'S', 'S');
constexpr std::uint32_t kTagWeights = FourCC('W', 'G', 'T', 'S');
constexpr std::uint32_t kTagSolver = FourCC('S', 'O', 'L', 'V');
constexpr std::uint32_t kTagNetState = FourCC('N', 'E', 'T', 'S');
constexpr std::uint32_t kTagFooter = FourCC('C', 'R', 'C', 'F');

// ------------------------------------------------------------- byte writer

class ByteWriter {
 public:
  template <typename T>
  void Pod(const T& v) {
    bytes_.append(reinterpret_cast<const char*>(&v), sizeof(T));
  }
  void Raw(const void* data, std::size_t size) {
    bytes_.append(static_cast<const char*>(data), size);
  }
  void Str(const std::string& s) {
    Pod(static_cast<std::uint32_t>(s.size()));
    bytes_.append(s);
  }
  /// Appends `section` framed with its tag and length.
  void Section(std::uint32_t tag, const std::string& payload) {
    Pod(tag);
    Pod(static_cast<std::uint64_t>(payload.size()));
    bytes_.append(payload);
  }
  std::string& bytes() { return bytes_; }

 private:
  std::string bytes_;
};

// ----------------------------------------------- bounds-checked byte reader

/// Cursor over an already-CRC-verified buffer. Every read is bounds-checked
/// anyway, so a logic bug in the writer (or a hash collision) degrades to a
/// clean Error instead of a wild allocation or out-of-bounds read.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size, const std::string& path)
      : data_(data), size_(size), path_(&path) {}

  template <typename T>
  T Pod() {
    T v{};
    Need(sizeof(T));
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  std::string Str() {
    const auto len = Pod<std::uint32_t>();
    CGDNN_CHECK_LE(len, 4096u) << "implausible name length in " << *path_;
    Need(len);
    std::string s(data_ + pos_, len);
    pos_ += len;
    return s;
  }
  const char* Raw(std::size_t size) {
    Need(size);
    const char* p = data_ + pos_;
    pos_ += size;
    return p;
  }
  /// Sub-reader over the next `size` bytes (one section's payload).
  ByteReader Sub(std::size_t size) {
    return ByteReader(Raw(size), size, *path_);
  }
  std::size_t remaining() const { return size_ - pos_; }
  void ExpectConsumed(const char* what) const {
    CGDNN_CHECK_EQ(remaining(), 0u)
        << what << " section has trailing bytes in " << *path_;
  }

 private:
  void Need(std::size_t n) const {
    CGDNN_CHECK_LE(n, size_ - pos_)
        << "structurally truncated checkpoint: " << *path_;
  }
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  const std::string* path_;
};

// ------------------------------------------------------------ blob framing

template <typename Dtype>
void WriteBlob(ByteWriter& w, const Blob<Dtype>& blob) {
  w.Pod(static_cast<std::uint32_t>(blob.num_axes()));
  for (int a = 0; a < blob.num_axes(); ++a) {
    w.Pod(static_cast<std::int64_t>(blob.shape(a)));
  }
  w.Raw(blob.cpu_data(),
        static_cast<std::size_t>(blob.count()) * sizeof(Dtype));
}

/// Reads one blob into `dst`, requiring the stored shape to match exactly.
/// The payload size is derived from dst's (trusted) count, never from the
/// file, so corrupt dims cannot drive an allocation.
template <typename Dtype>
void ReadBlobInto(ByteReader& r, Blob<Dtype>& dst, const std::string& what,
                  const std::string& path) {
  const auto ndims = r.Pod<std::uint32_t>();
  CGDNN_CHECK_EQ(ndims, static_cast<std::uint32_t>(dst.num_axes()))
      << "rank mismatch for " << what << " in " << path;
  for (std::uint32_t d = 0; d < ndims; ++d) {
    const auto dim = r.Pod<std::int64_t>();
    CGDNN_CHECK_EQ(dim, static_cast<std::int64_t>(dst.shape(
                            static_cast<int>(d))))
        << "shape mismatch for " << what << " in " << path << " (net "
        << dst.shape_string() << ")";
  }
  const std::size_t bytes =
      static_cast<std::size_t>(dst.count()) * sizeof(Dtype);
  std::memcpy(dst.mutable_cpu_data(), r.Raw(bytes), bytes);
}

}  // namespace

// -------------------------------------------------------------------- save

template <typename Dtype>
void SaveCheckpoint(const std::string& path, const std::string& solver_type,
                    std::uint64_t param_digest,
                    const CheckpointMeta<Dtype>& meta, const Net<Dtype>& net,
                    const std::vector<SolverStateGroup<Dtype>>& groups) {
  blackbox::Record(blackbox::EventKind::kCheckpointBegin, "checkpoint.save",
                   static_cast<std::uint64_t>(meta.iter));
  ByteWriter file;
  file.Raw(kMagic, sizeof(kMagic));
  file.Pod(kVersion);
  file.Pod(static_cast<std::uint8_t>(sizeof(Dtype)));
  const std::uint8_t pad[3] = {0, 0, 0};
  file.Raw(pad, sizeof(pad));
  file.Pod(param_digest);
  file.Str(solver_type);

  {
    ByteWriter s;
    s.Pod(static_cast<std::int64_t>(meta.iter));
    for (std::uint64_t w : meta.rng.s) s.Pod(w);
    s.Pod(meta.rng.seed);
    s.Pod(meta.rng.stream);
    file.Section(kTagMeta, s.bytes());
  }
  {
    ByteWriter s;
    s.Pod(static_cast<std::uint64_t>(meta.loss_history.size()));
    s.Raw(meta.loss_history.data(),
          meta.loss_history.size() * sizeof(Dtype));
    file.Section(kTagLoss, s.bytes());
  }
  {
    ByteWriter s;
    std::uint32_t layer_count = 0;
    for (const auto& layer : net.layers()) {
      if (!layer->blobs().empty()) ++layer_count;
    }
    s.Pod(layer_count);
    for (std::size_t li = 0; li < net.layers().size(); ++li) {
      const auto& layer = net.layers()[li];
      if (layer->blobs().empty()) continue;
      s.Str(net.layer_names()[li]);
      s.Pod(static_cast<std::uint32_t>(layer->blobs().size()));
      for (const auto& blob : layer->blobs()) WriteBlob(s, *blob);
    }
    file.Section(kTagWeights, s.bytes());
  }
  {
    ByteWriter s;
    s.Pod(static_cast<std::uint32_t>(groups.size()));
    for (const auto& group : groups) {
      s.Str(group.name);
      s.Pod(static_cast<std::uint32_t>(group.blobs->size()));
      for (const auto& blob : *group.blobs) WriteBlob(s, *blob);
    }
    file.Section(kTagSolver, s.bytes());
  }
  {
    ByteWriter s;
    std::uint32_t layer_count = 0;
    std::vector<std::uint64_t> words;
    for (const auto& layer : net.layers()) {
      words.clear();
      layer->ExportRuntimeState(words);
      if (!words.empty()) ++layer_count;
    }
    s.Pod(layer_count);
    for (std::size_t li = 0; li < net.layers().size(); ++li) {
      words.clear();
      net.layers()[li]->ExportRuntimeState(words);
      if (words.empty()) continue;
      s.Str(net.layer_names()[li]);
      s.Pod(static_cast<std::uint32_t>(words.size()));
      s.Raw(words.data(), words.size() * sizeof(std::uint64_t));
    }
    file.Section(kTagNetState, s.bytes());
  }

  const std::uint64_t body_bytes = file.bytes().size();
  const std::uint32_t crc =
      data::Crc32(file.bytes().data(), file.bytes().size());
  file.Pod(kTagFooter);
  file.Pod(body_bytes);
  file.Pod(crc);

  data::WriteFileAtomic(path, file.bytes());
  blackbox::Record(blackbox::EventKind::kCheckpointEnd, "checkpoint.save",
                   static_cast<std::uint64_t>(meta.iter),
                   file.bytes().size());
}

// -------------------------------------------------------------------- load

template <typename Dtype>
CheckpointMeta<Dtype> LoadCheckpoint(
    const std::string& path, const std::string& solver_type,
    std::uint64_t param_digest, Net<Dtype>& net,
    const std::vector<SolverStateGroup<Dtype>>& groups) {
  const std::string bytes = data::ReadFileBytes(path);

  // Integrity first: footer frame and CRC over the whole body. Any
  // truncation or bit-flip anywhere in the file fails here, before a single
  // length field is trusted.
  CGDNN_CHECK_GE(bytes.size(), sizeof(kMagic) + kFooterBytes)
      << "truncated checkpoint: " << path;
  const std::size_t body_size = bytes.size() - kFooterBytes;
  ByteReader footer(bytes.data() + body_size, kFooterBytes, path);
  CGDNN_CHECK_EQ(footer.Pod<std::uint32_t>(), kTagFooter)
      << "missing checkpoint footer (truncated file?): " << path;
  CGDNN_CHECK_EQ(footer.Pod<std::uint64_t>(),
                 static_cast<std::uint64_t>(body_size))
      << "checkpoint body size mismatch (truncated file?): " << path;
  CGDNN_CHECK_EQ(footer.Pod<std::uint32_t>(),
                 data::Crc32(bytes.data(), body_size))
      << "checkpoint CRC mismatch (corrupt file): " << path;

  ByteReader r(bytes.data(), body_size, path);
  CGDNN_CHECK(std::memcmp(r.Raw(sizeof(kMagic)), kMagic, sizeof(kMagic)) == 0)
      << "not a cgdnn checkpoint: " << path;
  CGDNN_CHECK_EQ(r.Pod<std::uint32_t>(), kVersion)
      << "unsupported checkpoint version in " << path;
  const auto scalar_size = r.Pod<std::uint8_t>();
  CGDNN_CHECK_EQ(static_cast<std::size_t>(scalar_size), sizeof(Dtype))
      << "checkpoint scalar width mismatch in " << path;
  r.Raw(3);  // pad
  const auto stored_digest = r.Pod<std::uint64_t>();
  CGDNN_CHECK_EQ(stored_digest, param_digest)
      << "hyper-parameter digest mismatch: " << path
      << " was written by a run with different trajectory-relevant solver "
         "settings (net, lr schedule, seed, ...)";
  const std::string stored_type = r.Str();
  CGDNN_CHECK_EQ(stored_type, solver_type)
      << "checkpoint solver type mismatch in " << path;

  CheckpointMeta<Dtype> meta;
  bool saw_meta = false, saw_loss = false, saw_weights = false,
       saw_solver = false, saw_net_state = false;
  while (r.remaining() > 0) {
    const auto tag = r.Pod<std::uint32_t>();
    const auto len = r.Pod<std::uint64_t>();
    ByteReader s = r.Sub(static_cast<std::size_t>(len));
    if (tag == kTagMeta) {
      saw_meta = true;
      meta.iter = static_cast<index_t>(s.Pod<std::int64_t>());
      CGDNN_CHECK_GE(meta.iter, 0) << "negative iteration in " << path;
      for (auto& w : meta.rng.s) w = s.Pod<std::uint64_t>();
      meta.rng.seed = s.Pod<std::uint64_t>();
      meta.rng.stream = s.Pod<std::uint64_t>();
      s.ExpectConsumed("META");
    } else if (tag == kTagLoss) {
      saw_loss = true;
      const auto count = s.Pod<std::uint64_t>();
      CGDNN_CHECK_EQ(count * sizeof(Dtype), s.remaining())
          << "loss history length mismatch in " << path;
      meta.loss_history.resize(static_cast<std::size_t>(count));
      std::memcpy(meta.loss_history.data(), s.Raw(s.remaining()),
                  meta.loss_history.size() * sizeof(Dtype));
    } else if (tag == kTagWeights) {
      saw_weights = true;
      const auto layer_count = s.Pod<std::uint32_t>();
      for (std::uint32_t l = 0; l < layer_count; ++l) {
        const std::string name = s.Str();
        const auto blob_count = s.Pod<std::uint32_t>();
        CGDNN_CHECK(net.has_layer(name))
            << "checkpoint names unknown layer '" << name << "': " << path;
        Layer<Dtype>& layer = *net.layer_by_name(name);
        CGDNN_CHECK_EQ(layer.blobs().size(),
                       static_cast<std::size_t>(blob_count))
            << "blob count mismatch for layer '" << name << "' in " << path;
        for (std::uint32_t b = 0; b < blob_count; ++b) {
          ReadBlobInto(s, *layer.blobs()[b],
                       "layer '" + name + "' blob " + std::to_string(b),
                       path);
        }
      }
      s.ExpectConsumed("WGTS");
    } else if (tag == kTagSolver) {
      saw_solver = true;
      const auto group_count = s.Pod<std::uint32_t>();
      CGDNN_CHECK_EQ(static_cast<std::size_t>(group_count), groups.size())
          << "solver state group count mismatch in " << path;
      for (std::uint32_t g = 0; g < group_count; ++g) {
        const std::string name = s.Str();
        CGDNN_CHECK_EQ(name, groups[g].name)
            << "solver state group mismatch in " << path;
        const auto blob_count = s.Pod<std::uint32_t>();
        CGDNN_CHECK_EQ(static_cast<std::size_t>(blob_count),
                       groups[g].blobs->size())
            << "solver state blob count mismatch for group '" << name
            << "' in " << path;
        for (std::uint32_t b = 0; b < blob_count; ++b) {
          ReadBlobInto(s, *(*groups[g].blobs)[b],
                       "solver state '" + name + "' blob " +
                           std::to_string(b),
                       path);
        }
      }
      s.ExpectConsumed("SOLV");
    } else if (tag == kTagNetState) {
      saw_net_state = true;
      const auto layer_count = s.Pod<std::uint32_t>();
      for (std::uint32_t l = 0; l < layer_count; ++l) {
        const std::string name = s.Str();
        const auto word_count = s.Pod<std::uint32_t>();
        CGDNN_CHECK_LE(word_count, 1024u)
            << "implausible runtime state size in " << path;
        std::vector<std::uint64_t> words(word_count);
        std::memcpy(words.data(), s.Raw(word_count * sizeof(std::uint64_t)),
                    word_count * sizeof(std::uint64_t));
        CGDNN_CHECK(net.has_layer(name))
            << "checkpoint runtime state names unknown layer '" << name
            << "': " << path;
        net.layer_by_name(name)->ImportRuntimeState(words);
      }
      s.ExpectConsumed("NETS");
    } else {
      throw Error(__FILE__, __LINE__,
                  "unknown checkpoint section in " + path);
    }
  }
  CGDNN_CHECK(saw_meta && saw_loss && saw_weights && saw_solver &&
              saw_net_state)
      << "checkpoint is missing sections: " << path;
  return meta;
}

// ------------------------------------------------- snapshot files on disk

std::string SnapshotPath(const std::string& prefix, index_t iter) {
  return prefix + "_iter_" + std::to_string(iter) + kSnapshotSuffix;
}

std::vector<std::pair<index_t, std::string>> ListSnapshots(
    const std::string& prefix) {
  namespace fs = std::filesystem;
  const fs::path p(prefix);
  fs::path dir = p.parent_path();
  if (dir.empty()) dir = ".";
  const std::string stem = p.filename().string() + "_iter_";
  std::vector<std::pair<index_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(stem, 0) != 0) continue;
    if (name.size() <= stem.size() + std::strlen(kSnapshotSuffix)) continue;
    if (name.substr(name.size() - std::strlen(kSnapshotSuffix)) !=
        kSnapshotSuffix) {
      continue;
    }
    const std::string digits = name.substr(
        stem.size(), name.size() - stem.size() - std::strlen(kSnapshotSuffix));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    found.emplace_back(static_cast<index_t>(std::stoll(digits)),
                       entry.path().string());
  }
  std::sort(found.begin(), found.end());
  return found;
}

void RotateSnapshots(const std::string& prefix, index_t keep) {
  if (keep <= 0) return;
  auto snapshots = ListSnapshots(prefix);
  if (snapshots.size() <= static_cast<std::size_t>(keep)) return;
  std::error_code ec;
  for (std::size_t i = 0; i + static_cast<std::size_t>(keep) < snapshots.size();
       ++i) {
    std::filesystem::remove(snapshots[i].second, ec);  // best-effort
  }
}

std::uint64_t Fnv1a64(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

#define CGDNN_INSTANTIATE_CHECKPOINT(Dtype)                              \
  template void SaveCheckpoint<Dtype>(                                   \
      const std::string&, const std::string&, std::uint64_t,             \
      const CheckpointMeta<Dtype>&, const Net<Dtype>&,                   \
      const std::vector<SolverStateGroup<Dtype>>&);                      \
  template CheckpointMeta<Dtype> LoadCheckpoint<Dtype>(                  \
      const std::string&, const std::string&, std::uint64_t, Net<Dtype>&, \
      const std::vector<SolverStateGroup<Dtype>>&)

CGDNN_INSTANTIATE_CHECKPOINT(float);
CGDNN_INSTANTIATE_CHECKPOINT(double);

}  // namespace cgdnn
