// DataTransformer: the per-sample preprocessing Caffe applies between the
// raw dataset and the network input blob — scaling, per-channel mean
// subtraction, random cropping and mirroring. Random decisions are drawn
// from a generator keyed by (seed, sample ordinal), so the output stream is
// independent of thread count (convergence invariance).
#pragma once

#include "cgdnn/core/common.hpp"
#include "cgdnn/core/rng.hpp"
#include "cgdnn/proto/params.hpp"

namespace cgdnn::data {

class DataTransformer {
 public:
  DataTransformer(const proto::TransformationParameter& param, Phase phase,
                  std::uint64_t seed);

  /// Output spatial size for an input of (height, width).
  index_t out_height(index_t in_height) const;
  index_t out_width(index_t in_width) const;

  /// Transforms one C x H x W sample into `out` (C x outH x outW).
  /// `ordinal` identifies the sample position in the global stream and
  /// seeds the per-sample randomness (crop offset, mirror flip).
  void Transform(const float* in, index_t channels, index_t height,
                 index_t width, std::uint64_t ordinal, float* out) const;

 private:
  proto::TransformationParameter param_;
  Phase phase_;
  Rng base_;
};

}  // namespace cgdnn::data
