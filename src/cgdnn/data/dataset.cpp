#include "cgdnn/data/dataset.hpp"

#include <map>
#include <mutex>
#include <tuple>

#include "cgdnn/core/thread_annotations.hpp"
#include "cgdnn/data/io.hpp"
#include "cgdnn/data/synthetic.hpp"

namespace cgdnn::data {

namespace {
using CacheKey = std::tuple<std::string, index_t, std::uint64_t>;
std::map<CacheKey, std::shared_ptr<const Dataset>>& Cache() {
  static std::map<CacheKey, std::shared_ptr<const Dataset>> cache;
  return cache;
}
cgdnn::Mutex& CacheMutex() {
  static cgdnn::Mutex m;
  return m;
}
}  // namespace

std::shared_ptr<const Dataset> LoadDataset(const std::string& source,
                                           index_t num_samples,
                                           std::uint64_t seed) {
  const CacheKey key{source, num_samples, seed};
  // Check-release-load-relock-insert: the load below can read files, and
  // holding the cache mutex across disk I/O would stall every other cache
  // user behind one cold miss (tools/lint_locks.py rule
  // blocking-under-lock; regression fixture
  // tools/lock_fixtures/bad_cache_load_under_lock.cpp). Two threads racing
  // the same cold key may both load; the first insert wins and the loser's
  // copy is discarded.
  {
    cgdnn::LockGuard lock(CacheMutex());
    auto& cache = Cache();
    if (const auto it = cache.find(key); it != cache.end()) return it->second;
  }

  std::shared_ptr<const Dataset> ds;
  if (source == "synthetic-mnist") {
    ds = std::make_shared<Dataset>(MakeSyntheticMnist(num_samples, seed));
  } else if (source == "synthetic-cifar10") {
    ds = std::make_shared<Dataset>(MakeSyntheticCifar10(num_samples, seed));
  } else if (source == "random") {
    ds = std::make_shared<Dataset>(
        MakeRandom(num_samples, 1, 28, 28, 10, seed));
  } else if (source.starts_with("idx:")) {
    ds = std::make_shared<Dataset>(ReadIdx(source.substr(4)));
  } else if (source.starts_with("cifarbin:")) {
    ds = std::make_shared<Dataset>(ReadCifarBin(source.substr(9)));
  } else {
    throw Error(__FILE__, __LINE__, "unknown dataset source: " + source);
  }
  cgdnn::LockGuard lock(CacheMutex());
  return Cache().emplace(key, ds).first->second;
}

void ClearDatasetCache() {
  cgdnn::LockGuard lock(CacheMutex());
  Cache().clear();
}

}  // namespace cgdnn::data
