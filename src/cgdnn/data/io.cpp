#include "cgdnn/data/io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

namespace cgdnn::data {

namespace {

constexpr std::uint32_t kIdxImagesMagic = 0x00000803;
constexpr std::uint32_t kIdxLabelsMagic = 0x00000801;

std::uint32_t ReadBigEndian32(std::istream& in) {
  unsigned char b[4];
  in.read(reinterpret_cast<char*>(b), 4);
  CGDNN_CHECK(in.good()) << "truncated IDX header";
  return (std::uint32_t{b[0]} << 24) | (std::uint32_t{b[1]} << 16) |
         (std::uint32_t{b[2]} << 8) | std::uint32_t{b[3]};
}

void WriteBigEndian32(std::ostream& out, std::uint32_t v) {
  const unsigned char b[4] = {
      static_cast<unsigned char>(v >> 24), static_cast<unsigned char>(v >> 16),
      static_cast<unsigned char>(v >> 8), static_cast<unsigned char>(v)};
  out.write(reinterpret_cast<const char*>(b), 4);
}

std::uint8_t QuantizePixel(float v) {
  return static_cast<std::uint8_t>(
      std::clamp(std::lround(v * 255.0f), 0L, 255L));
}

std::array<std::uint32_t, 256> MakeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

/// RAII fd that closes on scope exit (error paths throw through here).
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> table = MakeCrc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc ^= 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  CGDNN_CHECK(in.good()) << "cannot open " << path;
  const auto size = static_cast<std::streamsize>(in.tellg());
  in.seekg(0);
  std::string bytes(static_cast<std::size_t>(size), '\0');
  in.read(bytes.data(), size);
  CGDNN_CHECK(in.good()) << "read failed: " << path;
  return bytes;
}

void WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  {
    Fd fd;
    fd.fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    CGDNN_CHECK_GE(fd.fd, 0)
        << "cannot create " << tmp << ": " << std::strerror(errno);
    std::size_t written = 0;
    while (written < bytes.size()) {
      const ::ssize_t n =
          ::write(fd.fd, bytes.data() + written, bytes.size() - written);
      if (n < 0 && errno == EINTR) continue;
      CGDNN_CHECK_GT(n, 0) << "write failed: " << tmp << ": "
                           << std::strerror(errno);
      written += static_cast<std::size_t>(n);
    }
    CGDNN_CHECK_EQ(::fsync(fd.fd), 0)
        << "fsync failed: " << tmp << ": " << std::strerror(errno);
  }
  CGDNN_CHECK_EQ(std::rename(tmp.c_str(), path.c_str()), 0)
      << "rename " << tmp << " -> " << path << " failed: "
      << std::strerror(errno);
  // fsync the directory so the rename itself survives a power loss.
  auto dir = std::filesystem::path(path).parent_path();
  if (dir.empty()) dir = ".";
  Fd dfd;
  dfd.fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd.fd >= 0) ::fsync(dfd.fd);  // best-effort: some filesystems refuse
}

Dataset ReadIdx(const std::string& prefix) {
  const std::string images_path = prefix + "-images.idx3-ubyte";
  const std::string labels_path = prefix + "-labels.idx1-ubyte";

  std::ifstream images(images_path, std::ios::binary);
  CGDNN_CHECK(images.good()) << "cannot open " << images_path;
  CGDNN_CHECK_EQ(ReadBigEndian32(images), kIdxImagesMagic)
      << "bad IDX image magic in " << images_path;
  const auto num = static_cast<index_t>(ReadBigEndian32(images));
  const auto height = static_cast<index_t>(ReadBigEndian32(images));
  const auto width = static_cast<index_t>(ReadBigEndian32(images));

  std::ifstream labels(labels_path, std::ios::binary);
  CGDNN_CHECK(labels.good()) << "cannot open " << labels_path;
  CGDNN_CHECK_EQ(ReadBigEndian32(labels), kIdxLabelsMagic)
      << "bad IDX label magic in " << labels_path;
  CGDNN_CHECK_EQ(static_cast<index_t>(ReadBigEndian32(labels)), num)
      << "image/label count mismatch";

  Dataset ds;
  ds.name = "idx:" + prefix;
  ds.num = num;
  ds.channels = 1;
  ds.height = height;
  ds.width = width;
  ds.num_classes = 10;
  const std::size_t pixels = static_cast<std::size_t>(num * height * width);
  std::vector<std::uint8_t> raw(pixels);
  images.read(reinterpret_cast<char*>(raw.data()),
              static_cast<std::streamsize>(pixels));
  CGDNN_CHECK(images.good()) << "truncated IDX image data in " << images_path;
  ds.images.resize(pixels);
  for (std::size_t i = 0; i < pixels; ++i) {
    ds.images[i] = static_cast<float>(raw[i]) / 256.0f;  // Caffe's 1/256 scale
  }

  std::vector<std::uint8_t> raw_labels(static_cast<std::size_t>(num));
  labels.read(reinterpret_cast<char*>(raw_labels.data()), num);
  CGDNN_CHECK(labels.good()) << "truncated IDX label data in " << labels_path;
  ds.labels.resize(static_cast<std::size_t>(num));
  for (index_t i = 0; i < num; ++i) {
    ds.labels[static_cast<std::size_t>(i)] = raw_labels[static_cast<std::size_t>(i)];
  }
  return ds;
}

void WriteIdx(const Dataset& ds, const std::string& prefix) {
  CGDNN_CHECK_EQ(ds.channels, 1) << "IDX stores single-channel images";
  const std::string images_path = prefix + "-images.idx3-ubyte";
  const std::string labels_path = prefix + "-labels.idx1-ubyte";

  std::ofstream images(images_path, std::ios::binary);
  CGDNN_CHECK(images.good()) << "cannot create " << images_path;
  WriteBigEndian32(images, kIdxImagesMagic);
  WriteBigEndian32(images, static_cast<std::uint32_t>(ds.num));
  WriteBigEndian32(images, static_cast<std::uint32_t>(ds.height));
  WriteBigEndian32(images, static_cast<std::uint32_t>(ds.width));
  for (float v : ds.images) {
    const std::uint8_t q = QuantizePixel(v);
    images.write(reinterpret_cast<const char*>(&q), 1);
  }
  CGDNN_CHECK(images.good()) << "write failed: " << images_path;

  std::ofstream labels(labels_path, std::ios::binary);
  CGDNN_CHECK(labels.good()) << "cannot create " << labels_path;
  WriteBigEndian32(labels, kIdxLabelsMagic);
  WriteBigEndian32(labels, static_cast<std::uint32_t>(ds.num));
  for (index_t l : ds.labels) {
    const auto q = static_cast<std::uint8_t>(l);
    labels.write(reinterpret_cast<const char*>(&q), 1);
  }
  CGDNN_CHECK(labels.good()) << "write failed: " << labels_path;
}

Dataset ReadCifarBin(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  CGDNN_CHECK(in.good()) << "cannot open " << path;
  constexpr index_t kRecord = 1 + 3 * 32 * 32;
  const auto size = static_cast<index_t>(in.tellg());
  CGDNN_CHECK_EQ(size % kRecord, 0)
      << "file size is not a multiple of the CIFAR record size";
  const index_t num = size / kRecord;
  in.seekg(0);

  Dataset ds;
  ds.name = "cifarbin:" + path;
  ds.num = num;
  ds.channels = 3;
  ds.height = 32;
  ds.width = 32;
  ds.num_classes = 10;
  ds.images.resize(static_cast<std::size_t>(num * 3 * 32 * 32));
  ds.labels.resize(static_cast<std::size_t>(num));
  std::vector<std::uint8_t> record(static_cast<std::size_t>(kRecord));
  for (index_t i = 0; i < num; ++i) {
    in.read(reinterpret_cast<char*>(record.data()), kRecord);
    CGDNN_CHECK(in.good()) << "truncated CIFAR record " << i;
    ds.labels[static_cast<std::size_t>(i)] = record[0];
    float* img = ds.mutable_sample(i);
    for (index_t j = 0; j < 3 * 32 * 32; ++j) {
      img[j] = static_cast<float>(record[static_cast<std::size_t>(1 + j)]) / 256.0f;
    }
  }
  return ds;
}

void WriteCifarBin(const Dataset& ds, const std::string& path) {
  CGDNN_CHECK_EQ(ds.channels, 3);
  CGDNN_CHECK_EQ(ds.height, 32);
  CGDNN_CHECK_EQ(ds.width, 32);
  std::ofstream out(path, std::ios::binary);
  CGDNN_CHECK(out.good()) << "cannot create " << path;
  for (index_t i = 0; i < ds.num; ++i) {
    const auto label = static_cast<std::uint8_t>(ds.label(i));
    out.write(reinterpret_cast<const char*>(&label), 1);
    const float* img = ds.sample(i);
    for (index_t j = 0; j < 3 * 32 * 32; ++j) {
      const std::uint8_t q = QuantizePixel(img[j]);
      out.write(reinterpret_cast<const char*>(&q), 1);
    }
  }
  CGDNN_CHECK(out.good()) << "write failed: " << path;
}

}  // namespace cgdnn::data
