// Procedural stand-ins for MNIST and CIFAR-10 (see DESIGN.md §4).
//
// MNIST substitute: seven-segment stroke renderings of the digits 0-9 with
// per-sample random affine jitter (shift/scale/rotation), stroke thickness
// variation and additive noise — 28x28 grayscale, like MNIST.
//
// CIFAR-10 substitute: 32x32 RGB textures where each class k has a
// characteristic base colour and oriented sinusoidal pattern, with random
// phase and noise per sample. Convolutional nets separate the classes well,
// which is what the convergence experiments need; per-layer *cost* depends
// only on the shapes.
#pragma once

#include "cgdnn/data/dataset.hpp"

namespace cgdnn::data {

Dataset MakeSyntheticMnist(index_t num_samples, std::uint64_t seed);

Dataset MakeSyntheticCifar10(index_t num_samples, std::uint64_t seed);

/// Unstructured noise dataset (shape-compatible with MNIST by default);
/// used by micro-benchmarks where only tensor shapes matter.
Dataset MakeRandom(index_t num_samples, index_t channels, index_t height,
                   index_t width, index_t num_classes, std::uint64_t seed);

}  // namespace cgdnn::data
