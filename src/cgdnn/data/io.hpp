// On-disk dataset formats: IDX (the MNIST distribution format) and the
// CIFAR-10 binary batch format. Real downloaded files drop straight into the
// Data layer via "idx:<prefix>" / "cifarbin:<file>" sources; the writers let
// tests round-trip synthetic data through the genuine byte formats.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "cgdnn/data/dataset.hpp"

namespace cgdnn::data {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `size` bytes.
/// Pass a previous return value as `crc` to checksum data incrementally.
std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t crc = 0);

/// Reads a whole binary file into memory. Throws cgdnn::Error on failure.
std::string ReadFileBytes(const std::string& path);

/// Crash-safe whole-file write: writes to `path.tmp`, flushes and fsyncs,
/// then atomically renames over `path` and fsyncs the containing directory.
/// A crash at any point leaves either the previous file intact or (at worst)
/// a stray `.tmp` — never a half-written `path`.
void WriteFileAtomic(const std::string& path, std::string_view bytes);

/// Reads `<prefix>-images.idx3-ubyte` + `<prefix>-labels.idx1-ubyte`
/// (big-endian IDX with magics 0x00000803 / 0x00000801). Pixels are scaled
/// to [0, 1] (Caffe's scale: 0.00390625).
Dataset ReadIdx(const std::string& prefix);

/// Writes the dataset in IDX format (quantizing pixels to uint8).
void WriteIdx(const Dataset& ds, const std::string& prefix);

/// Reads one CIFAR-10 binary batch file (records of 1 label byte + 3072
/// pixel bytes, row-major per channel).
Dataset ReadCifarBin(const std::string& path);

/// Writes the dataset as a CIFAR-10 binary batch file. Requires 3x32x32.
void WriteCifarBin(const Dataset& ds, const std::string& path);

}  // namespace cgdnn::data
