// On-disk dataset formats: IDX (the MNIST distribution format) and the
// CIFAR-10 binary batch format. Real downloaded files drop straight into the
// Data layer via "idx:<prefix>" / "cifarbin:<file>" sources; the writers let
// tests round-trip synthetic data through the genuine byte formats.
#pragma once

#include <string>

#include "cgdnn/data/dataset.hpp"

namespace cgdnn::data {

/// Reads `<prefix>-images.idx3-ubyte` + `<prefix>-labels.idx1-ubyte`
/// (big-endian IDX with magics 0x00000803 / 0x00000801). Pixels are scaled
/// to [0, 1] (Caffe's scale: 0.00390625).
Dataset ReadIdx(const std::string& prefix);

/// Writes the dataset in IDX format (quantizing pixels to uint8).
void WriteIdx(const Dataset& ds, const std::string& prefix);

/// Reads one CIFAR-10 binary batch file (records of 1 label byte + 3072
/// pixel bytes, row-major per channel).
Dataset ReadCifarBin(const std::string& path);

/// Writes the dataset as a CIFAR-10 binary batch file. Requires 3x32x32.
void WriteCifarBin(const Dataset& ds, const std::string& path);

}  // namespace cgdnn::data
