#include "cgdnn/data/transformer.hpp"

namespace cgdnn::data {

DataTransformer::DataTransformer(const proto::TransformationParameter& param,
                                 Phase phase, std::uint64_t seed)
    : param_(param), phase_(phase), base_(seed, /*stream=*/0x7F0F) {
  if (!param_.mean_value.empty()) {
    CGDNN_CHECK_GE(param_.mean_value.size(), 1u);
  }
}

index_t DataTransformer::out_height(index_t in_height) const {
  return param_.crop_size > 0 ? param_.crop_size : in_height;
}

index_t DataTransformer::out_width(index_t in_width) const {
  return param_.crop_size > 0 ? param_.crop_size : in_width;
}

void DataTransformer::Transform(const float* in, index_t channels,
                                index_t height, index_t width,
                                std::uint64_t ordinal, float* out) const {
  const index_t crop = param_.crop_size;
  const index_t oh = out_height(height);
  const index_t ow = out_width(width);

  index_t off_h = 0;
  index_t off_w = 0;
  bool mirror = false;
  if (crop > 0) {
    CGDNN_CHECK_LE(crop, height);
    CGDNN_CHECK_LE(crop, width);
  }
  if (phase_ == Phase::kTrain) {
    Rng rng = base_.Split(ordinal);
    if (crop > 0) {
      off_h = rng.UniformInt(0, height - crop);
      off_w = rng.UniformInt(0, width - crop);
    }
    if (param_.mirror) mirror = rng.Bernoulli(0.5);
  } else if (crop > 0) {
    off_h = (height - crop) / 2;  // deterministic center crop at test time
    off_w = (width - crop) / 2;
  }

  const auto scale = static_cast<float>(param_.scale);
  for (index_t c = 0; c < channels; ++c) {
    const float mean =
        param_.mean_value.empty()
            ? 0.0f
            : static_cast<float>(param_.mean_value[std::min(
                  static_cast<std::size_t>(c), param_.mean_value.size() - 1)]);
    const float* in_plane = in + c * height * width;
    float* out_plane = out + c * oh * ow;
    for (index_t y = 0; y < oh; ++y) {
      const float* in_row = in_plane + (y + off_h) * width + off_w;
      float* out_row = out_plane + y * ow;
      for (index_t x = 0; x < ow; ++x) {
        const index_t src_x = mirror ? ow - 1 - x : x;
        out_row[x] = (in_row[src_x] - mean) * scale;
      }
    }
  }
}

}  // namespace cgdnn::data
