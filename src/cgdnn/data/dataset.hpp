// In-memory dataset container plus the resolver the Data layer uses.
//
// The paper trains on MNIST and CIFAR-10, which are not redistributable
// inside this offline reproduction; DESIGN.md §4 documents the substitution:
// procedural generators emit datasets with the same tensor shapes, value
// range ([0,1] after Caffe's 1/256 scaling) and a 10-class learnable
// structure. Real files in IDX / CIFAR-binary format load through the same
// interface (see io.hpp) when available.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cgdnn/core/common.hpp"

namespace cgdnn::data {

struct Dataset {
  std::string name;
  index_t num = 0;
  index_t channels = 0;
  index_t height = 0;
  index_t width = 0;
  index_t num_classes = 0;
  /// Pixel values in [0, 1], sample-major C-contiguous (N x C x H x W).
  std::vector<float> images;
  std::vector<index_t> labels;

  index_t sample_dim() const { return channels * height * width; }
  const float* sample(index_t i) const {
    CGDNN_CHECK_GE(i, 0);
    CGDNN_CHECK_LT(i, num);
    return images.data() + i * sample_dim();
  }
  float* mutable_sample(index_t i) {
    CGDNN_CHECK_GE(i, 0);
    CGDNN_CHECK_LT(i, num);
    return images.data() + i * sample_dim();
  }
  index_t label(index_t i) const {
    CGDNN_CHECK_GE(i, 0);
    CGDNN_CHECK_LT(i, num);
    return labels[static_cast<std::size_t>(i)];
  }
};

/// Resolves a DataParameter-style source string to a dataset:
///   "synthetic-mnist"    — 28x28x1 procedural digits
///   "synthetic-cifar10"  — 32x32x3 procedural class textures
///   "random"             — unstructured noise with random labels
///   "idx:<prefix>"       — <prefix>-images.idx3-ubyte / -labels.idx1-ubyte
///   "cifarbin:<file>"    — CIFAR-10 binary batch file
/// Results are cached per (source, num_samples, seed) so the train and test
/// nets of one solver share storage.
std::shared_ptr<const Dataset> LoadDataset(const std::string& source,
                                           index_t num_samples,
                                           std::uint64_t seed);

/// Drops all cached datasets (tests).
void ClearDatasetCache();

}  // namespace cgdnn::data
