#include "cgdnn/data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "cgdnn/core/rng.hpp"

namespace cgdnn::data {

namespace {

struct Segment {
  float x1, y1, x2, y2;
};

// Seven-segment layout in a unit box (x right, y down):
//      --0--
//     1     2
//      --3--
//     4     5
//      --6--
constexpr Segment kSegments[7] = {
    {0.25f, 0.15f, 0.75f, 0.15f},  // 0: top
    {0.25f, 0.15f, 0.25f, 0.50f},  // 1: top-left
    {0.75f, 0.15f, 0.75f, 0.50f},  // 2: top-right
    {0.25f, 0.50f, 0.75f, 0.50f},  // 3: middle
    {0.25f, 0.50f, 0.25f, 0.85f},  // 4: bottom-left
    {0.75f, 0.50f, 0.75f, 0.85f},  // 5: bottom-right
    {0.25f, 0.85f, 0.75f, 0.85f},  // 6: bottom
};

// Active segments per digit (classic seven-segment encoding).
constexpr int kDigitSegments[10][7] = {
    {1, 1, 1, 0, 1, 1, 1},  // 0
    {0, 0, 1, 0, 0, 1, 0},  // 1
    {1, 0, 1, 1, 1, 0, 1},  // 2
    {1, 0, 1, 1, 0, 1, 1},  // 3
    {0, 1, 1, 1, 0, 1, 0},  // 4
    {1, 1, 0, 1, 0, 1, 1},  // 5
    {1, 1, 0, 1, 1, 1, 1},  // 6
    {1, 0, 1, 0, 0, 1, 0},  // 7
    {1, 1, 1, 1, 1, 1, 1},  // 8
    {1, 1, 1, 1, 0, 1, 1},  // 9
};

float DistanceToSegment(float px, float py, const Segment& s) {
  const float dx = s.x2 - s.x1;
  const float dy = s.y2 - s.y1;
  const float len2 = dx * dx + dy * dy;
  float t = len2 > 0 ? ((px - s.x1) * dx + (py - s.y1) * dy) / len2 : 0.0f;
  t = std::clamp(t, 0.0f, 1.0f);
  const float cx = s.x1 + t * dx;
  const float cy = s.y1 + t * dy;
  return std::hypot(px - cx, py - cy);
}

}  // namespace

Dataset MakeSyntheticMnist(index_t num_samples, std::uint64_t seed) {
  CGDNN_CHECK_GT(num_samples, 0);
  Dataset ds;
  ds.name = "synthetic-mnist";
  ds.num = num_samples;
  ds.channels = 1;
  ds.height = 28;
  ds.width = 28;
  ds.num_classes = 10;
  ds.images.assign(static_cast<std::size_t>(num_samples * 28 * 28), 0.0f);
  ds.labels.resize(static_cast<std::size_t>(num_samples));

  const Rng base(seed, /*stream=*/0xD161);
  for (index_t i = 0; i < num_samples; ++i) {
    // Per-sample generator keyed by the sample index: sample i is identical
    // no matter how many samples are generated or in what order.
    Rng rng = base.Split(static_cast<std::uint64_t>(i));
    const index_t digit = i % 10;  // balanced classes
    ds.labels[static_cast<std::size_t>(i)] = digit;

    const float angle =
        static_cast<float>(rng.Uniform(-0.15, 0.15));  // radians (~±8.5°)
    const float scale = static_cast<float>(rng.Uniform(0.85, 1.1));
    const float shift_x = static_cast<float>(rng.Uniform(-0.06, 0.06));
    const float shift_y = static_cast<float>(rng.Uniform(-0.06, 0.06));
    const float thickness = static_cast<float>(rng.Uniform(0.045, 0.075));
    const float cos_a = std::cos(angle);
    const float sin_a = std::sin(angle);

    // Transform the active template segments for this sample.
    Segment segs[7];
    int nsegs = 0;
    for (int s = 0; s < 7; ++s) {
      if (!kDigitSegments[digit][s]) continue;
      Segment seg = kSegments[s];
      const auto xform = [&](float& x, float& y) {
        const float tx = (x - 0.5f) * scale;
        const float ty = (y - 0.5f) * scale;
        x = 0.5f + shift_x + cos_a * tx - sin_a * ty;
        y = 0.5f + shift_y + sin_a * tx + cos_a * ty;
      };
      xform(seg.x1, seg.y1);
      xform(seg.x2, seg.y2);
      segs[nsegs++] = seg;
    }

    float* img = ds.mutable_sample(i);
    for (index_t y = 0; y < 28; ++y) {
      for (index_t x = 0; x < 28; ++x) {
        const float px = (static_cast<float>(x) + 0.5f) / 28.0f;
        const float py = (static_cast<float>(y) + 0.5f) / 28.0f;
        float intensity = 0.0f;
        for (int s = 0; s < nsegs; ++s) {
          const float d = DistanceToSegment(px, py, segs[s]);
          // Soft-edged stroke: full intensity inside, linear falloff over
          // one stroke width outside.
          const float v = 1.0f - std::clamp((d - thickness) / thickness, 0.0f, 1.0f);
          intensity = std::max(intensity, v);
        }
        // Additive sensor-style noise, clamped to the valid range.
        intensity += static_cast<float>(rng.Uniform(-0.04, 0.04));
        img[y * 28 + x] = std::clamp(intensity, 0.0f, 1.0f);
      }
    }
  }
  return ds;
}

Dataset MakeSyntheticCifar10(index_t num_samples, std::uint64_t seed) {
  CGDNN_CHECK_GT(num_samples, 0);
  Dataset ds;
  ds.name = "synthetic-cifar10";
  ds.num = num_samples;
  ds.channels = 3;
  ds.height = 32;
  ds.width = 32;
  ds.num_classes = 10;
  ds.images.assign(static_cast<std::size_t>(num_samples * 3 * 32 * 32), 0.0f);
  ds.labels.resize(static_cast<std::size_t>(num_samples));

  // Ten well-separated base colours (roughly evenly spread hues).
  constexpr float kPalette[10][3] = {
      {0.9f, 0.2f, 0.2f}, {0.9f, 0.6f, 0.1f}, {0.8f, 0.8f, 0.2f},
      {0.3f, 0.8f, 0.2f}, {0.1f, 0.7f, 0.6f}, {0.2f, 0.5f, 0.9f},
      {0.3f, 0.2f, 0.9f}, {0.7f, 0.2f, 0.8f}, {0.9f, 0.3f, 0.6f},
      {0.6f, 0.6f, 0.6f}};

  const Rng base(seed, /*stream=*/0xC1FA);
  for (index_t i = 0; i < num_samples; ++i) {
    Rng rng = base.Split(static_cast<std::uint64_t>(i));
    const index_t cls = i % 10;
    ds.labels[static_cast<std::size_t>(i)] = cls;

    // Class-characteristic oriented sinusoid; random phase per sample.
    const float theta =
        static_cast<float>(cls) * static_cast<float>(std::numbers::pi) / 10.0f;
    const float freq = 2.5f + static_cast<float>(cls % 3);
    const float phase =
        static_cast<float>(rng.Uniform(0.0, 2.0 * std::numbers::pi));
    const float cos_t = std::cos(theta);
    const float sin_t = std::sin(theta);
    const float brightness = static_cast<float>(rng.Uniform(0.8, 1.2));

    float* img = ds.mutable_sample(i);
    const index_t plane = 32 * 32;
    for (index_t y = 0; y < 32; ++y) {
      for (index_t x = 0; x < 32; ++x) {
        const float u = static_cast<float>(x) / 32.0f;
        const float v = static_cast<float>(y) / 32.0f;
        const float wave =
            0.5f + 0.5f * std::sin(2.0f * static_cast<float>(std::numbers::pi) *
                                       freq * (u * cos_t + v * sin_t) +
                                   phase);
        const float noise = static_cast<float>(rng.Uniform(-0.05, 0.05));
        for (index_t c = 0; c < 3; ++c) {
          const float val =
              brightness * kPalette[cls][c] * (0.35f + 0.65f * wave) + noise;
          img[c * plane + y * 32 + x] = std::clamp(val, 0.0f, 1.0f);
        }
      }
    }
  }
  return ds;
}

Dataset MakeRandom(index_t num_samples, index_t channels, index_t height,
                   index_t width, index_t num_classes, std::uint64_t seed) {
  CGDNN_CHECK_GT(num_samples, 0);
  CGDNN_CHECK_GT(num_classes, 0);
  Dataset ds;
  ds.name = "random";
  ds.num = num_samples;
  ds.channels = channels;
  ds.height = height;
  ds.width = width;
  ds.num_classes = num_classes;
  ds.images.resize(static_cast<std::size_t>(num_samples * ds.sample_dim()));
  ds.labels.resize(static_cast<std::size_t>(num_samples));
  const Rng base(seed, /*stream=*/0x4A4D);
  for (index_t i = 0; i < num_samples; ++i) {
    Rng rng = base.Split(static_cast<std::uint64_t>(i));
    ds.labels[static_cast<std::size_t>(i)] = rng.UniformInt(0, num_classes - 1);
    float* img = ds.mutable_sample(i);
    for (index_t j = 0; j < ds.sample_dim(); ++j) {
      img[j] = static_cast<float>(rng.Uniform());
    }
  }
  return ds;
}

}  // namespace cgdnn::data
