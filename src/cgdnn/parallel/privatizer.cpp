#include "cgdnn/parallel/privatizer.hpp"

#include <algorithm>

namespace cgdnn::parallel {

namespace {
constexpr std::size_t kAlign = 64;
constexpr std::size_t kMinChunkBytes = 64 * 1024;

std::size_t AlignUp(std::size_t n) { return (n + kAlign - 1) / kAlign * kAlign; }
}  // namespace

void* ThreadArena::Allocate(std::size_t bytes) {
  const std::size_t need = AlignUp(std::max<std::size_t>(bytes, 1));
  for (Chunk& chunk : chunks_) {
    if (chunk.buffer.bytes() - chunk.used >= need) {
      void* p = static_cast<char*>(chunk.buffer.get()) + chunk.used;
      chunk.used += need;
      used_ += need;
      return p;
    }
  }
  Chunk chunk;
  const std::size_t chunk_bytes = std::max(need, kMinChunkBytes);
  chunk.buffer = AlignedBuffer(chunk_bytes);
  chunk.used = need;
  capacity_ += chunk_bytes;
  used_ += need;
  chunks_.push_back(std::move(chunk));
  return chunks_.back().buffer.get();
}

void ThreadArena::ResetScope() {
  for (Chunk& chunk : chunks_) chunk.used = 0;
  used_ = 0;
}

PrivatizationPool& PrivatizationPool::Get() {
  static PrivatizationPool pool;
  return pool;
}

void PrivatizationPool::Configure(int nthreads) {
  CGDNN_CHECK_GT(nthreads, 0);
  while (arenas_.size() < static_cast<std::size_t>(nthreads)) {
    arenas_.push_back(std::make_unique<ThreadArena>());
  }
}

void PrivatizationPool::BeginLayerScope() {
  RecordHighWater();
  for (auto& arena : arenas_) arena->ResetScope();
}

void PrivatizationPool::RecordHighWater() {
  std::size_t used = 0;
  for (const auto& arena : arenas_) used += arena->used_bytes();
  high_water_ = std::max(high_water_, used);
}

std::size_t PrivatizationPool::total_bytes() const {
  std::size_t total = 0;
  for (const auto& arena : arenas_) total += arena->capacity_bytes();
  return total;
}

void PrivatizationPool::Release() {
  RecordHighWater();
  arenas_.clear();
  high_water_ = 0;
}

}  // namespace cgdnn::parallel
