#include "cgdnn/parallel/privatizer.hpp"

#include <algorithm>

namespace cgdnn::parallel {

PrivatizationPool& PrivatizationPool::Get() {
  static PrivatizationPool pool;
  return pool;
}

void PrivatizationPool::Configure(int nthreads) {
  CGDNN_CHECK_GT(nthreads, 0);
  while (arenas_.size() < static_cast<std::size_t>(nthreads)) {
    arenas_.push_back(std::make_unique<ThreadArena>());
  }
}

void PrivatizationPool::BeginLayerScope() {
  RecordHighWater();
  for (auto& arena : arenas_) arena->ResetScope();
}

void PrivatizationPool::RecordHighWater() {
  std::size_t used = 0;
  for (const auto& arena : arenas_) used += arena->used_bytes();
  high_water_ = std::max(high_water_, used);
}

std::size_t PrivatizationPool::total_bytes() const {
  std::size_t total = 0;
  for (const auto& arena : arenas_) total += arena->capacity_bytes();
  return total;
}

void PrivatizationPool::Release() {
  RecordHighWater();
  arenas_.clear();
  high_water_ = 0;
}

}  // namespace cgdnn::parallel
