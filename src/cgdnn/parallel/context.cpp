#include "cgdnn/parallel/context.hpp"

#include <omp.h>

namespace cgdnn::parallel {

const char* GradientMergeName(GradientMerge mode) {
  switch (mode) {
    case GradientMerge::kSerial: return "serial";
    case GradientMerge::kOrdered: return "ordered";
    case GradientMerge::kAtomic: return "atomic";
    case GradientMerge::kTree: return "tree";
  }
  return "?";
}

GradientMerge GradientMergeFromName(const std::string& name) {
  if (name == "serial") return GradientMerge::kSerial;
  if (name == "ordered") return GradientMerge::kOrdered;
  if (name == "atomic") return GradientMerge::kAtomic;
  if (name == "tree") return GradientMerge::kTree;
  throw Error(__FILE__, __LINE__, "unknown gradient merge mode: " + name);
}

ParallelConfig& Parallel::Config() {
  static ParallelConfig cfg = [] {
    omp_set_dynamic(0);  // teams must have exactly the requested size
    return ParallelConfig{};
  }();
  return cfg;
}

int Parallel::ResolveThreads() {
  const ParallelConfig& cfg = Config();
  if (cfg.mode == ExecutionMode::kSerial) return 1;
  return cfg.num_threads > 0 ? cfg.num_threads : omp_get_max_threads();
}

bool Parallel::CoarseGrain() {
  return Config().mode == ExecutionMode::kCoarseGrain && ResolveThreads() > 1;
}

Parallel::Scope::Scope(const ParallelConfig& cfg) : saved_(Config()) {
  Config() = cfg;
}

Parallel::Scope::~Scope() { Config() = saved_; }

}  // namespace cgdnn::parallel
