// Per-thread data privatization (Algorithm 5, lines 3-5).
//
// The backward pass accumulates weight gradients across batch samples; with
// batch-level threads that update is a race, so each thread writes into a
// private blob first. The paper's memory argument (§3.2.1): privatized
// storage never crosses layer boundaries, so one per-thread arena reused by
// every layer bounds the total extra memory at the *largest* layer's needs
// (≈640KB MNIST / ≈1250KB CIFAR-10 with 16 threads, ~5% of the net).
//
// Arena properties: chunked (pointers remain stable while a scope is open),
// grow-only (reuse across layers), per-thread (no cross-thread allocation).
// The arena itself lives in core (cgdnn/core/arena.hpp) so that the BLAS
// GEMM packing scratch can share the same allocator without a dependency
// cycle; this header re-exports it under the historical name.
#pragma once

#include <memory>
#include <vector>

#include "cgdnn/core/arena.hpp"
#include "cgdnn/core/common.hpp"

namespace cgdnn::parallel {

using ThreadArena = ::cgdnn::ThreadArena;

class PrivatizationPool {
 public:
  /// Process-wide pool used by the layer implementations.
  static PrivatizationPool& Get();

  /// Ensures arenas exist for threads [0, nthreads). Must be called from
  /// serial code (layers call it before opening the parallel region).
  void Configure(int nthreads);

  /// Resets every thread's scope; called at the start of a layer pass —
  /// this is what implements cross-layer reuse.
  void BeginLayerScope();

  /// Typed allocation for thread `tid`. Contents are uninitialized; callers
  /// zero-fill (the "neuter value of the reduction", Algorithm 5 line 5).
  template <typename Dtype>
  Dtype* Acquire(int tid, index_t count) {
    CGDNN_CHECK_GE(tid, 0);
    CGDNN_CHECK_LT(static_cast<std::size_t>(tid), arenas_.size());
    return static_cast<Dtype*>(arenas_[static_cast<std::size_t>(tid)]->Allocate(
        static_cast<std::size_t>(count) * sizeof(Dtype)));
  }

  /// Total bytes currently held across all arenas (the paper's "additional
  /// memory" figure) and the per-run high-water mark of per-layer usage.
  std::size_t total_bytes() const;
  std::size_t high_water_layer_bytes() const { return high_water_; }
  int configured_threads() const { return static_cast<int>(arenas_.size()); }

  /// Releases all arenas (tests / memory-table bench).
  void Release();

 private:
  void RecordHighWater();

  std::vector<std::unique_ptr<ThreadArena>> arenas_;
  std::size_t high_water_ = 0;
};

}  // namespace cgdnn::parallel
