// Global configuration of the coarse-grain parallel execution: how many
// OpenMP threads the batch-level loops use, which gradient-merge strategy
// the backward passes apply, and whether loop coalescing is active.
//
// This is the knob surface of the paper: §3.2.1 introduces the coalescing
// transformation and the ordered gradient update; §4 sweeps thread counts.
#pragma once

#include <string>

#include "cgdnn/core/common.hpp"

namespace cgdnn::parallel {

/// How per-thread private gradient blobs are folded into the shared blob.
enum class GradientMerge {
  /// No privatization; gradients are accumulated directly (requires the
  /// layer loops to run serially — used as the reference).
  kSerial,
  /// `#pragma omp for ordered` accumulation in thread-id order. Produces the
  /// bit pattern of the sequential execution for ANY thread count — the
  /// paper's convergence-invariant default for tuning/debugging (§3.2.1).
  kOrdered,
  /// Critical-section accumulation in arrival order. Fastest merge but
  /// non-deterministic across runs ("reduction-based solution", §3.2.1).
  kAtomic,
  /// Barrier-synchronized pairwise tree. Deterministic for a fixed thread
  /// count, but the value differs from the sequential one.
  kTree,
};

const char* GradientMergeName(GradientMerge mode);
GradientMerge GradientMergeFromName(const std::string& name);

/// How layer loops execute.
enum class ExecutionMode {
  kSerial,       ///< Algorithms 2/3: plain loop nests.
  kCoarseGrain,  ///< Algorithms 4/5: coalesced OpenMP batch-level loops.
};

struct ParallelConfig {
  ExecutionMode mode = ExecutionMode::kCoarseGrain;
  /// 0 = use omp_get_max_threads().
  int num_threads = 0;
  GradientMerge merge = GradientMerge::kOrdered;
  /// When false, only the bare batch loop is parallelized (no coalescing) —
  /// the work-unbalance ablation of §3.2.1 / §4.3.
  bool coalesce = true;
};

/// Process-wide parallel configuration (layers consult it on every pass).
class Parallel {
 public:
  static ParallelConfig& Config();
  /// Thread count the next parallel region should request (resolves 0).
  static int ResolveThreads();
  /// True if layer loops should take the coarse-grain (OpenMP) path.
  static bool CoarseGrain();

  /// RAII override, restoring the previous configuration on destruction.
  class Scope {
   public:
    explicit Scope(const ParallelConfig& cfg);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ParallelConfig saved_;
  };
};

}  // namespace cgdnn::parallel
