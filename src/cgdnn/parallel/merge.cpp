#include "cgdnn/parallel/merge.hpp"

#include <omp.h>

#include "cgdnn/blas/blas.hpp"
#include "cgdnn/check/write_set.hpp"
#include "cgdnn/trace/metrics.hpp"
#include "cgdnn/trace/trace.hpp"

namespace cgdnn::parallel {

namespace {

/// Per-thread merge accounting: span on the calling thread's timeline plus
/// wait-time metrics. `total` covers the whole merge (serialization and
/// barrier waits included), `work_ns` only this thread's own accumulation
/// work — the difference is what the thread spent blocked on the merge.
/// Called by every participating thread, with thread 0 counting the
/// invocation.
void RecordMerge(const char* mode_name, std::uint64_t start_ns,
                 std::uint64_t work_ns) {
  const std::uint64_t end_ns = trace::NowNs();
  const std::uint64_t total_ns = end_ns - start_ns;
  const std::string prefix = std::string("merge.") + mode_name;
  if (trace::TracingActive()) {
    trace::Tracer::Get().Emit("merge", prefix, start_ns, end_ns);
  }
  if (trace::MetricsActive()) {
    auto& registry = trace::MetricsRegistry::Default();
    registry.GetHistogram(prefix + ".thread_us")
        .Observe(static_cast<double>(total_ns) / 1e3);
    registry.GetHistogram(prefix + ".wait_us")
        .Observe(static_cast<double>(total_ns > work_ns ? total_ns - work_ns
                                                        : 0) /
                 1e3);
    if (omp_get_thread_num() == 0) {
      registry.GetCounter(prefix + ".invocations").Add();
    }
  }
}

template <typename Dtype>
void MergeOrdered(Dtype* const* parts, int nparts, Dtype* dest, index_t n) {
  const bool collect = trace::CollectionActive();
  const std::uint64_t t0 = collect ? trace::NowNs() : 0;
  std::uint64_t work_ns = 0;
  // Algorithm 5 lines 22-24: an ordered loop over thread ids. Each thread
  // executes its own iteration; the ordered construct serializes the
  // accumulations in tid order, reproducing the sequential bit pattern.
#pragma omp for ordered schedule(static, 1)
  for (int th = 0; th < nparts; ++th) {
#pragma omp ordered
    {
      const std::uint64_t w0 = collect ? trace::NowNs() : 0;
      blas::axpy(n, Dtype(1), parts[th], dest);
      if (collect) work_ns += trace::NowNs() - w0;
    }
  }
  // implicit barrier of the ordered for: all accumulations complete here
  if (collect) RecordMerge("ordered", t0, work_ns);
}

template <typename Dtype>
void MergeAtomic(Dtype* const* parts, int nparts, Dtype* dest, index_t n) {
  const bool collect = trace::CollectionActive();
  const std::uint64_t t0 = collect ? trace::NowNs() : 0;
  std::uint64_t work_ns = 0;
  const int tid = omp_get_thread_num();
  if (tid < nparts) {
#pragma omp critical(cgdnn_gradient_merge)
    {
      const std::uint64_t w0 = collect ? trace::NowNs() : 0;
      blas::axpy(n, Dtype(1), parts[tid], dest);
      if (collect) work_ns += trace::NowNs() - w0;
    }
  }
#pragma omp barrier
  if (collect) RecordMerge("atomic", t0, work_ns);
}

template <typename Dtype>
void MergeTree(Dtype* const* parts, int nparts, Dtype* dest, index_t n) {
  const bool collect = trace::CollectionActive();
  const std::uint64_t t0 = collect ? trace::NowNs() : 0;
  std::uint64_t work_ns = 0;
  const int tid = omp_get_thread_num();
  for (int stride = 1; stride < nparts; stride *= 2) {
    if (tid < nparts && tid % (2 * stride) == 0 && tid + stride < nparts) {
      const std::uint64_t w0 = collect ? trace::NowNs() : 0;
      blas::axpy(n, Dtype(1), parts[tid + stride], parts[tid]);
      if (collect) work_ns += trace::NowNs() - w0;
    }
#pragma omp barrier
  }
#pragma omp single
  {
    const std::uint64_t w0 = collect ? trace::NowNs() : 0;
    blas::axpy(n, Dtype(1), parts[0], dest);
    if (collect) work_ns += trace::NowNs() - w0;
  }
  // implicit barrier at the end of single
  if (collect) RecordMerge("tree", t0, work_ns);
}

}  // namespace

template <typename Dtype>
void AccumulatePrivate(GradientMerge mode, Dtype* const* parts, int nparts,
                       Dtype* dest, index_t n) {
  // cgdnn-check hook: a thread reaching the merge while another is still in
  // its write phase means the barrier before the merge is missing. The
  // violation is parked and thrown serially at region end.
  if (auto* chk = check::WriteSetChecker::Current()) {
    chk->BeginMerge(omp_get_thread_num());
  }
  // Flight-recorder position for the whole merge, including its barriers:
  // a thread that never leaves (missing barrier, deadlocked ordered clause)
  // shows an open merge position in the dump and trips the watchdog.
  const char* merge_site = "merge.serial";
  switch (mode) {
    case GradientMerge::kOrdered: merge_site = "merge.ordered"; break;
    case GradientMerge::kAtomic: merge_site = "merge.atomic"; break;
    case GradientMerge::kTree: merge_site = "merge.tree"; break;
    case GradientMerge::kSerial: break;
  }
  blackbox::ScopedPosition bbx_merge(blackbox::EventKind::kMergeBegin,
                                     blackbox::EventKind::kMergeEnd,
                                     merge_site,
                                     static_cast<std::uint64_t>(mode));
  switch (mode) {
    case GradientMerge::kOrdered:
      MergeOrdered(parts, nparts, dest, n);
      break;
    case GradientMerge::kAtomic:
      MergeAtomic(parts, nparts, dest, n);
      break;
    case GradientMerge::kTree:
      MergeTree(parts, nparts, dest, n);
      break;
    case GradientMerge::kSerial:
#pragma omp single
      CGDNN_CHECK(false) << "kSerial merge inside a parallel region";
      break;
  }
}

template void AccumulatePrivate<float>(GradientMerge, float* const*, int,
                                       float*, index_t);
template void AccumulatePrivate<double>(GradientMerge, double* const*, int,
                                        double*, index_t);

}  // namespace cgdnn::parallel
