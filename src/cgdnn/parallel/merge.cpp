#include "cgdnn/parallel/merge.hpp"

#include <omp.h>

#include "cgdnn/blas/blas.hpp"

namespace cgdnn::parallel {

namespace {

template <typename Dtype>
void MergeOrdered(Dtype* const* parts, int nparts, Dtype* dest, index_t n) {
  // Algorithm 5 lines 22-24: an ordered loop over thread ids. Each thread
  // executes its own iteration; the ordered construct serializes the
  // accumulations in tid order, reproducing the sequential bit pattern.
#pragma omp for ordered schedule(static, 1)
  for (int th = 0; th < nparts; ++th) {
#pragma omp ordered
    blas::axpy(n, Dtype(1), parts[th], dest);
  }
}

template <typename Dtype>
void MergeAtomic(Dtype* const* parts, int nparts, Dtype* dest, index_t n) {
  const int tid = omp_get_thread_num();
  if (tid < nparts) {
#pragma omp critical(cgdnn_gradient_merge)
    blas::axpy(n, Dtype(1), parts[tid], dest);
  }
#pragma omp barrier
}

template <typename Dtype>
void MergeTree(Dtype* const* parts, int nparts, Dtype* dest, index_t n) {
  const int tid = omp_get_thread_num();
  for (int stride = 1; stride < nparts; stride *= 2) {
    if (tid < nparts && tid % (2 * stride) == 0 && tid + stride < nparts) {
      blas::axpy(n, Dtype(1), parts[tid + stride], parts[tid]);
    }
#pragma omp barrier
  }
#pragma omp single
  blas::axpy(n, Dtype(1), parts[0], dest);
  // implicit barrier at the end of single
}

}  // namespace

template <typename Dtype>
void AccumulatePrivate(GradientMerge mode, Dtype* const* parts, int nparts,
                       Dtype* dest, index_t n) {
  switch (mode) {
    case GradientMerge::kOrdered:
      MergeOrdered(parts, nparts, dest, n);
      break;
    case GradientMerge::kAtomic:
      MergeAtomic(parts, nparts, dest, n);
      break;
    case GradientMerge::kTree:
      MergeTree(parts, nparts, dest, n);
      break;
    case GradientMerge::kSerial:
#pragma omp single
      CGDNN_CHECK(false) << "kSerial merge inside a parallel region";
      break;
  }
}

template void AccumulatePrivate<float>(GradientMerge, float* const*, int,
                                       float*, index_t);
template void AccumulatePrivate<double>(GradientMerge, double* const*, int,
                                        double*, index_t);

}  // namespace cgdnn::parallel
