// Gradient merge strategies (Algorithm 5, lines 22-24).
//
// After the worksharing loop of a backward pass, each thread holds a private
// gradient accumulation. AccumulatePrivate folds all private parts into the
// shared gradient blob. It MUST be called by every thread of the enclosing
// parallel region (it contains worksharing/barrier constructs) and relies on
// the implicit barrier of the preceding `omp for` having made all parts
// visible.
#pragma once

#include "cgdnn/core/common.hpp"
#include "cgdnn/parallel/context.hpp"

namespace cgdnn::parallel {

/// Folds `parts[0..nparts)` (each an array of `n` values) into `dest`
/// (accumulating: dest += sum of parts), using the given merge strategy.
///
/// * kOrdered — thread-id-ordered accumulation via `omp for ordered`;
///   bit-identical to the sequential sample order for any thread count.
/// * kAtomic — critical-section accumulation in arrival order.
/// * kTree — barrier-stepped pairwise reduction into parts[0], then one
///   thread adds parts[0] to dest. Destroys the contents of `parts`.
/// * kSerial — invalid here (no privatization happens in serial mode).
template <typename Dtype>
void AccumulatePrivate(GradientMerge mode, Dtype* const* parts, int nparts,
                       Dtype* dest, index_t n);

}  // namespace cgdnn::parallel
