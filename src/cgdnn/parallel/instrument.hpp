// Per-region observability hooks for the coarse-grain parallel loops.
//
// The paper's scalability analysis (§4.1, §4.3) hinges on how evenly a
// coalesced worksharing loop distributes across the team. RegionStats
// collects each thread's busy time for one parallel region, emits one trace
// span per thread (so the region shows up on every thread's timeline in
// chrome://tracing) and records the load-imbalance ratio — max over mean
// per-thread busy time, 1.0 = perfectly balanced — into the metrics
// registry as `region.<name>.imbalance`, together with the straggler's
// thread id (`region.<name>.straggler_tid`).
//
// When hardware-counter collection is armed (perfctr::SetActive), each
// ThreadRegionScope additionally samples its thread's counter group at the
// chunk boundaries: the per-thread deltas ride on the trace spans as args,
// and the region totals land in the registry as
// `region.<name>.{cycles,instructions,...}` counters plus derived
// `ipc_last` / `llc_miss_rate_last` gauges. Counters missing on the host
// record nothing — output fields are absent, never zeroed.
//
// Usage (layer code):
//   parallel::RegionStats rs("conv1.forward", nthreads);
//   #pragma omp parallel num_threads(nthreads)
//   {
//     ...
//     {
//       parallel::ThreadRegionScope scope(rs, tid);
//       #pragma omp for schedule(static) nowait   // nowait: the scope must
//       for (...) { ... }                         // not time barrier waits
//     }
//     #pragma omp barrier    // restore the worksharing barrier if needed
//   }
//
// When neither tracing nor metrics collection is active the constructor
// reads one atomic flag and every hook is a no-op — the disabled cost is a
// branch per region, not per iteration.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cgdnn/check/write_set.hpp"
#include "cgdnn/core/common.hpp"
#include "cgdnn/perfctr/perfctr.hpp"
#include "cgdnn/trace/trace.hpp"

namespace cgdnn::parallel {

class RegionStats {
 public:
  /// Serial, before the parallel region opens.
  RegionStats(std::string name, int nthreads);
  /// Serial, after the region joins: records imbalance + counter metrics,
  /// then verifies the region's write sets when cgdnn-check is armed
  /// (throwing cgdnn::Error on a partition violation).
  ~RegionStats() noexcept(false);
  RegionStats(const RegionStats&) = delete;
  RegionStats& operator=(const RegionStats&) = delete;

  bool active() const { return active_; }
  /// True when per-thread counter sampling is on for this region.
  bool counters_active() const { return counters_active_; }
  const std::string& name() const { return name_; }

  /// Called by `tid` only (its own slot): accumulates busy nanoseconds.
  void AddThreadBusyNs(int tid, std::uint64_t busy_ns);
  /// Called by `tid` only (its own slot): accumulates counter deltas.
  void AddThreadDelta(int tid, const perfctr::Delta& delta);

  /// max/mean busy time over threads that did any work; 0 before the
  /// region ran. Exposed for tests.
  double ImbalanceRatio() const;
  /// Thread id with the largest busy time (-1 before the region ran).
  /// The "who is the straggler" half of the imbalance attribution.
  int StragglerTid() const;
  /// Sum of per-thread counter deltas (invalid when none were recorded).
  perfctr::Delta TotalDelta() const;

  /// The region's write-set checker: non-null only while cgdnn-check is
  /// armed (CGDNN_CHECK=on / check::ScopedEnable). Layers record their
  /// shared-buffer writes through it:
  ///   if (auto* chk = rstats.checker())
  ///     chk->RecordWrite(tid, top_data, "top.data", begin, end);
  check::WriteSetChecker* checker() { return checker_.get(); }

 private:
  std::string name_;
  int nthreads_ = 0;
  std::vector<std::uint64_t> busy_ns_;
  std::vector<perfctr::Delta> deltas_;
  std::unique_ptr<check::WriteSetChecker> checker_;
  std::unique_ptr<check::CurrentRegionBinding> checker_binding_;
  bool active_ = false;
  bool counters_active_ = false;
};

/// RAII per-thread hook: times the enclosed worksharing chunk, feeds the
/// RegionStats slot and emits the thread's span (with counter-delta args
/// when counter collection is on).
class ThreadRegionScope {
 public:
  ThreadRegionScope(RegionStats& stats, int tid)
      : stats_(stats), tid_(tid) {
    blackbox::PushPosition(blackbox::EventKind::kChunkBegin,
                           stats_.name().c_str(),
                           static_cast<std::uint64_t>(tid));
    if (!stats_.active()) return;
    if (stats_.counters_active()) {
      start_sample_ = perfctr::ReadThreadCounters();
    }
    start_ns_ = trace::NowNs();
  }
  ~ThreadRegionScope() {
    blackbox::PopPosition(blackbox::EventKind::kChunkEnd,
                          stats_.name().c_str(),
                          static_cast<std::uint64_t>(tid_));
    // The scope closes right after the thread's worksharing chunk, so it
    // doubles as the write-phase boundary for the race checker: any merge
    // entered before every thread passed this point is missing its barrier.
    if (auto* chk = stats_.checker()) chk->EndWritePhase(tid_);
    if (!stats_.active()) return;
    const std::uint64_t end_ns = trace::NowNs();
    stats_.AddThreadBusyNs(tid_, end_ns - start_ns_);
    perfctr::Delta delta;
    if (start_sample_.valid) {
      delta = perfctr::ComputeDelta(start_sample_,
                                    perfctr::ReadThreadCounters());
      stats_.AddThreadDelta(tid_, delta);
    }
    if (trace::TracingActive()) {
      trace::Tracer::Get().Emit("region", stats_.name(), start_ns_, end_ns,
                                trace::CounterTraceArgs(delta));
    }
  }
  ThreadRegionScope(const ThreadRegionScope&) = delete;
  ThreadRegionScope& operator=(const ThreadRegionScope&) = delete;

 private:
  RegionStats& stats_;
  int tid_;
  std::uint64_t start_ns_ = 0;
  perfctr::Sample start_sample_;
};

}  // namespace cgdnn::parallel
