// Loop coalescing support (Algorithm 4, lines 4-9 of the paper).
//
// The coarse-grain transformation collapses the leading k loops of a layer's
// (S, D1, ..., DN) nest into a single loop over `civ` in [0, S*D1*...*Dk),
// then recovers the original indices with the mixed-radix decode functions
// f_s, f_1, ..., f_k. Coalescing keeps the parallelism at batch level while
// shrinking the minimal work unit, which is what makes OpenMP's static
// scheduling balance well when S is small relative to the thread count.
#pragma once

#include <array>
#include <initializer_list>

#include "cgdnn/core/common.hpp"

namespace cgdnn::parallel {

/// A collapsed iteration space over up to kMaxDims leading loop dimensions.
/// The first dimension varies slowest (matching the original loop nest
/// order, so the decode preserves the sequential iteration order).
class CoalescedRange {
 public:
  static constexpr int kMaxDims = 6;

  CoalescedRange(std::initializer_list<index_t> dims) {
    CGDNN_CHECK_LE(dims.size(), static_cast<std::size_t>(kMaxDims));
    CGDNN_CHECK_GT(dims.size(), 0u);
    ndims_ = static_cast<int>(dims.size());
    int i = 0;
    total_ = 1;
    for (index_t d : dims) {
      CGDNN_CHECK_GE(d, 0);
      dims_[i++] = d;
      total_ *= d;
    }
  }

  index_t total() const { return total_; }
  int ndims() const { return ndims_; }
  index_t dim(int i) const { return dims_[i]; }

  /// Recovers the loop indices for collapsed induction variable `civ`:
  /// idx[0] = f_s(civ), idx[1] = f_1(civ), ...
  void Decode(index_t civ, index_t* idx) const {
    for (int i = ndims_ - 1; i > 0; --i) {
      idx[i] = civ % dims_[i];
      civ /= dims_[i];
    }
    idx[0] = civ;
  }

  std::array<index_t, kMaxDims> Decode(index_t civ) const {
    std::array<index_t, kMaxDims> idx{};
    Decode(civ, idx.data());
    return idx;
  }

 private:
  std::array<index_t, kMaxDims> dims_{};
  int ndims_ = 0;
  index_t total_ = 0;
};

/// The iteration sub-range OpenMP static scheduling (no chunk argument)
/// assigns to thread `tid` of `nthreads`: contiguous blocks, the first
/// `total % nthreads` threads receiving one extra iteration. Exposed so the
/// multicore simulator and tests can reason about the exact distribution.
struct IterRange {
  index_t begin = 0;
  index_t end = 0;
  index_t size() const { return end - begin; }
};

inline IterRange StaticChunk(index_t total, int nthreads, int tid) {
  CGDNN_CHECK_GT(nthreads, 0);
  CGDNN_CHECK_GE(tid, 0);
  CGDNN_CHECK_LT(tid, nthreads);
  const index_t base = total / nthreads;
  const index_t rem = total % nthreads;
  const index_t begin = tid * base + (tid < rem ? tid : rem);
  const index_t size = base + (tid < rem ? 1 : 0);
  return {begin, begin + size};
}

}  // namespace cgdnn::parallel
