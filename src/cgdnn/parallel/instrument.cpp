#include "cgdnn/parallel/instrument.hpp"

#include <algorithm>

#include "cgdnn/trace/counters.hpp"
#include "cgdnn/trace/metrics.hpp"

namespace cgdnn::parallel {

RegionStats::RegionStats(std::string name, int nthreads)
    : name_(std::move(name)), nthreads_(nthreads) {
  // The flight recorder tracks every region — even with tracing/metrics
  // off — so crash dumps and the watchdog can name the region in flight.
  blackbox::PushPosition(blackbox::EventKind::kRegionBegin, name_.c_str(),
                         static_cast<std::uint64_t>(nthreads));
  if (check::Enabled()) {
    checker_ = std::make_unique<check::WriteSetChecker>(name_, nthreads);
    checker_binding_ =
        std::make_unique<check::CurrentRegionBinding>(checker_.get());
  }
  if (!trace::CollectionActive()) return;
  active_ = true;
  const auto slots = static_cast<std::size_t>(std::max(nthreads, 1));
  busy_ns_.assign(slots, 0);
  counters_active_ = perfctr::CollectionActive();
  if (counters_active_) deltas_.assign(slots, perfctr::Delta{});
}

void RegionStats::AddThreadBusyNs(int tid, std::uint64_t busy_ns) {
  if (tid >= 0 && static_cast<std::size_t>(tid) < busy_ns_.size()) {
    busy_ns_[static_cast<std::size_t>(tid)] += busy_ns;
  }
}

void RegionStats::AddThreadDelta(int tid, const perfctr::Delta& delta) {
  if (tid >= 0 && static_cast<std::size_t>(tid) < deltas_.size()) {
    deltas_[static_cast<std::size_t>(tid)].Accumulate(delta);
  }
}

double RegionStats::ImbalanceRatio() const {
  std::uint64_t max_ns = 0, total_ns = 0;
  std::size_t busy_threads = 0;
  for (const std::uint64_t ns : busy_ns_) {
    if (ns == 0) continue;
    ++busy_threads;
    total_ns += ns;
    max_ns = std::max(max_ns, ns);
  }
  if (busy_threads == 0 || total_ns == 0) return 0.0;
  const double mean =
      static_cast<double>(total_ns) / static_cast<double>(busy_threads);
  return static_cast<double>(max_ns) / mean;
}

int RegionStats::StragglerTid() const {
  std::uint64_t max_ns = 0;
  int straggler = -1;
  for (std::size_t tid = 0; tid < busy_ns_.size(); ++tid) {
    if (busy_ns_[tid] > max_ns) {
      max_ns = busy_ns_[tid];
      straggler = static_cast<int>(tid);
    }
  }
  return straggler;
}

perfctr::Delta RegionStats::TotalDelta() const {
  perfctr::Delta total;
  for (const perfctr::Delta& d : deltas_) total.Accumulate(d);
  return total;
}

RegionStats::~RegionStats() noexcept(false) {
  // Pop before Verify: a partition violation throws, and the recorder's
  // position stack must stay balanced through that unwind.
  blackbox::PopPosition(blackbox::EventKind::kRegionEnd, name_.c_str(),
                        static_cast<std::uint64_t>(nthreads_));
  // Unbind before Verify so a throwing verification never leaves a dangling
  // Current() pointer. Verify() is called explicitly (it may throw;
  // ~unique_ptr is noexcept) — the member destructor then finds it already
  // verified and stays silent.
  checker_binding_.reset();
  if (checker_) checker_->Verify();
  if (!active_ || !trace::MetricsActive()) return;
  auto& registry = trace::MetricsRegistry::Default();
  const double ratio = ImbalanceRatio();
  if (ratio > 0.0) {
    registry.GetHistogram("region." + name_ + ".imbalance").Observe(ratio);
    registry.GetGauge("region." + name_ + ".imbalance_last").Set(ratio);
    registry.GetGauge("region." + name_ + ".straggler_tid")
        .Set(static_cast<double>(StragglerTid()));
  }
  if (counters_active_) {
    trace::RecordCounterDeltaMetrics("region." + name_, TotalDelta(),
                                     registry);
  }
}

}  // namespace cgdnn::parallel
