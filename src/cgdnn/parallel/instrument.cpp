#include "cgdnn/parallel/instrument.hpp"

#include <algorithm>

#include "cgdnn/trace/metrics.hpp"

namespace cgdnn::parallel {

RegionStats::RegionStats(std::string name, int nthreads)
    : name_(std::move(name)) {
  if (!trace::CollectionActive()) return;
  active_ = true;
  busy_ns_.assign(static_cast<std::size_t>(std::max(nthreads, 1)), 0);
}

void RegionStats::AddThreadBusyNs(int tid, std::uint64_t busy_ns) {
  if (tid >= 0 && static_cast<std::size_t>(tid) < busy_ns_.size()) {
    busy_ns_[static_cast<std::size_t>(tid)] += busy_ns;
  }
}

double RegionStats::ImbalanceRatio() const {
  std::uint64_t max_ns = 0, total_ns = 0;
  std::size_t busy_threads = 0;
  for (const std::uint64_t ns : busy_ns_) {
    if (ns == 0) continue;
    ++busy_threads;
    total_ns += ns;
    max_ns = std::max(max_ns, ns);
  }
  if (busy_threads == 0 || total_ns == 0) return 0.0;
  const double mean =
      static_cast<double>(total_ns) / static_cast<double>(busy_threads);
  return static_cast<double>(max_ns) / mean;
}

RegionStats::~RegionStats() {
  if (!active_ || !trace::MetricsActive()) return;
  const double ratio = ImbalanceRatio();
  if (ratio <= 0.0) return;
  auto& registry = trace::MetricsRegistry::Default();
  registry.GetHistogram("region." + name_ + ".imbalance").Observe(ratio);
  registry.GetGauge("region." + name_ + ".imbalance_last").Set(ratio);
}

}  // namespace cgdnn::parallel
