// Roofline model: measured machine ceilings + per-layer placement.
//
// The audit tool (tools/cgdnn_audit) wants to say "conv1 forward reaches
// 61% of what this machine could do for its arithmetic intensity, and the
// shortfall is memory / compute / imbalance". That needs two measured
// ceilings — peak compute (GFLOP/s) and memory bandwidth (GB/s) — and pure
// placement/classification math. The ceilings come from probes run on the
// host at audit startup, not from a spec sheet: a small packed-GEMM probe
// (the same engine the conv/ip layers use, so "peak" is an achievable
// target, docs/perf.md) and a STREAM-triad sweep sized past the LLC.
#pragma once

#include "cgdnn/core/common.hpp"

namespace cgdnn::perfctr {

/// Measured ceilings of this host at a given concurrency.
struct MachinePeak {
  int threads = 1;
  /// Aggregate packed-GEMM GFLOP/s with `threads` concurrent workers.
  double gflops = 0;
  /// Aggregate triad bandwidth in GB/s (counted as 3 streamed arrays).
  double mem_gbps = 0;
  /// Arithmetic intensity (FLOP/byte) where the compute and memory roofs
  /// intersect; below it a kernel is bandwidth-limited.
  double RidgeAi() const { return mem_gbps > 0 ? gflops / mem_gbps : 0; }
};

/// Runs the GEMM and triad probes with `threads` concurrent workers.
/// `gemm_dim` is the square GEMM size (small enough to keep startup cheap,
/// large enough to hit the packed engine's blocked path);
/// `triad_elems` is the per-array element count of the bandwidth probe.
MachinePeak MeasureMachinePeak(int threads, index_t gemm_dim = 192,
                               index_t triad_elems = 1 << 22, int reps = 3);

/// Where one (layer, phase, thread-count) measurement sits on the roofline.
struct RooflinePoint {
  double ai = 0;                 ///< FLOP/byte of the kernel
  double achieved_gflops = 0;    ///< flops / measured time
  double attainable_gflops = 0;  ///< min(peak, ai * bandwidth)
  /// achieved / attainable in [0, ~1]; 0 when inputs were degenerate.
  double roof_efficiency = 0;
  /// True when the bandwidth roof (ai * bw) is below the compute peak,
  /// i.e. the point sits left of the ridge.
  bool memory_limited = false;
  bool valid = false;
};

RooflinePoint PlaceOnRoofline(double flops, double bytes, double time_us,
                              const MachinePeak& peak);

/// Why a measurement falls short of ideal scaling.
enum class BoundClass {
  kCompute,    ///< near the compute roof (or AI above the ridge)
  kMemory,     ///< AI below the ridge: bandwidth is the ceiling
  kImbalance,  ///< one straggler thread dominates the region
  kUnknown,    ///< degenerate inputs (no flops/bytes/time measured)
};

const char* BoundClassName(BoundClass c);

/// Imbalance ratio (max/mean per-thread busy time) above which the
/// shortfall is attributed to load imbalance rather than the roofline.
constexpr double kImbalanceBoundThreshold = 1.25;

/// Classification: imbalance wins when the region's max/mean busy-time
/// ratio exceeds kImbalanceBoundThreshold (a straggler explains the gap
/// regardless of where the roof is); otherwise the AI-vs-ridge position
/// picks memory or compute. `imbalance_ratio <= 0` means "not measured"
/// (serial run or instrumentation off) and never selects kImbalance.
BoundClass ClassifyBound(const RooflinePoint& point, double imbalance_ratio);

}  // namespace cgdnn::perfctr
