#include "cgdnn/perfctr/roofline.hpp"

#include <omp.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "cgdnn/blas/blas.hpp"

namespace cgdnn::perfctr {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

MachinePeak MeasureMachinePeak(int threads, index_t gemm_dim,
                               index_t triad_elems, int reps) {
  CGDNN_CHECK_GT(gemm_dim, 0);
  CGDNN_CHECK_GT(triad_elems, 0);
  CGDNN_CHECK_GT(reps, 0);
  MachinePeak peak;
  peak.threads = std::max(threads, 1);

  // --- compute roof: `threads` concurrent packed GEMMs --------------------
  // Every worker multiplies its own gemm_dim^3 problem; the aggregate rate
  // over the slowest rep-synchronized interval is what batch-parallel layer
  // code could at best sustain.
  {
    const std::size_t n2 = static_cast<std::size_t>(gemm_dim * gemm_dim);
    std::vector<std::vector<float>> a(static_cast<std::size_t>(peak.threads)),
        b(a.size()), c(a.size());
    for (std::size_t t = 0; t < a.size(); ++t) {
      a[t].assign(n2, 1.0f + 1e-3f * static_cast<float>(t));
      b[t].assign(n2, 0.5f);
      c[t].assign(n2, 0.0f);
    }
    double best_s = 0;
    // Measurement probe: instrumenting it would perturb the peak it exists
    // to measure.
    // cgdnn-lint: allow(instrumented-region)
#pragma omp parallel num_threads(peak.threads)
    {
      const std::size_t t = static_cast<std::size_t>(omp_get_thread_num());
      // warmup: touch pages + populate pack scratch
      blas::gemm(blas::Transpose::kNo, blas::Transpose::kNo, gemm_dim,
                 gemm_dim, gemm_dim, 1.0f, a[t].data(), b[t].data(), 0.0f,
                 c[t].data());
      for (int rep = 0; rep < reps; ++rep) {
#pragma omp barrier
        double t0 = 0;
#pragma omp master
        t0 = NowSeconds();
        blas::gemm(blas::Transpose::kNo, blas::Transpose::kNo, gemm_dim,
                   gemm_dim, gemm_dim, 1.0f, a[t].data(), b[t].data(), 0.0f,
                   c[t].data());
#pragma omp barrier
#pragma omp master
        {
          const double s = NowSeconds() - t0;
          if (s > 0 && (best_s == 0 || s < best_s)) best_s = s;
        }
      }
    }
    if (best_s > 0) {
      const double flops = 2.0 * static_cast<double>(gemm_dim) *
                           static_cast<double>(gemm_dim) *
                           static_cast<double>(gemm_dim) *
                           static_cast<double>(peak.threads);
      peak.gflops = flops / best_s / 1e9;
    }
  }

  // --- memory roof: STREAM-style triad ------------------------------------
  // a = b + s*c over arrays sized past the LLC; traffic is counted as the
  // three streamed arrays (write-allocate traffic makes the real number
  // higher, so this ceiling is conservative).
  {
    const std::size_t n = static_cast<std::size_t>(triad_elems);
    std::vector<float> ta(n, 1.0f), tb(n, 2.0f), tc(n, 3.0f);
    double best_s = 0;
    for (int rep = 0; rep < reps + 1; ++rep) {  // first rep = page warmup
      const double t0 = NowSeconds();
#pragma omp parallel for num_threads(peak.threads) schedule(static)
      for (index_t i = 0; i < triad_elems; ++i) {
        ta[static_cast<std::size_t>(i)] =
            tb[static_cast<std::size_t>(i)] +
            1.5f * tc[static_cast<std::size_t>(i)];
      }
      const double s = NowSeconds() - t0;
      if (rep > 0 && s > 0 && (best_s == 0 || s < best_s)) best_s = s;
    }
    if (best_s > 0) {
      const double bytes =
          3.0 * static_cast<double>(triad_elems) * sizeof(float);
      peak.mem_gbps = bytes / best_s / 1e9;
    }
  }
  return peak;
}

RooflinePoint PlaceOnRoofline(double flops, double bytes, double time_us,
                              const MachinePeak& peak) {
  RooflinePoint p;
  if (flops <= 0 || bytes <= 0 || time_us <= 0 || peak.gflops <= 0) return p;
  p.ai = flops / bytes;
  p.achieved_gflops = flops / (time_us * 1e3);
  if (peak.mem_gbps > 0 && p.ai * peak.mem_gbps < peak.gflops) {
    p.attainable_gflops = p.ai * peak.mem_gbps;
    p.memory_limited = true;
  } else {
    p.attainable_gflops = peak.gflops;
  }
  if (p.attainable_gflops > 0) {
    p.roof_efficiency = p.achieved_gflops / p.attainable_gflops;
  }
  p.valid = true;
  return p;
}

const char* BoundClassName(BoundClass c) {
  switch (c) {
    case BoundClass::kCompute: return "compute";
    case BoundClass::kMemory: return "memory";
    case BoundClass::kImbalance: return "imbalance";
    case BoundClass::kUnknown: return "unknown";
  }
  return "?";
}

BoundClass ClassifyBound(const RooflinePoint& point, double imbalance_ratio) {
  if (!point.valid) return BoundClass::kUnknown;
  if (imbalance_ratio > kImbalanceBoundThreshold) {
    return BoundClass::kImbalance;
  }
  return point.memory_limited ? BoundClass::kMemory : BoundClass::kCompute;
}

}  // namespace cgdnn::perfctr
