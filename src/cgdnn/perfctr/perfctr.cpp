#include "cgdnn/perfctr/perfctr.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "cgdnn/core/thread_annotations.hpp"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define CGDNN_PERFCTR_LINUX 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define CGDNN_PERFCTR_LINUX 0
#endif

namespace cgdnn::perfctr {

namespace {

std::atomic<bool> g_active{false};
std::atomic<bool> g_force_unavailable{false};

// Cached Supported() probe. 0 = not probed, 1 = supported, -1 = unsupported.
std::atomic<int> g_probe_state{0};
Mutex g_probe_mu;
std::string g_unavailable_reason CGDNN_GUARDED_BY(g_probe_mu);

bool DisabledByEnv() {
  const char* v = std::getenv("CGDNN_PERFCTR");
  if (v == nullptr) return false;
  const std::string s(v);
  return s == "off" || s == "0" || s == "false";
}

#if CGDNN_PERFCTR_LINUX

long PerfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                   unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

/// type/config pair of each Event slot, creation order == enum order.
struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr EventSpec kEventSpecs[kNumEvents] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
};

perf_event_attr MakeAttr(const EventSpec& spec, bool leader) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  // User-space-only counting works under perf_event_paranoid <= 2.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // The group starts disabled and is enabled atomically after every member
  // opened, so all counters cover the same interval.
  attr.disabled = leader ? 1 : 0;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return attr;
}

#endif  // CGDNN_PERFCTR_LINUX

}  // namespace

const char* EventName(Event e) {
  switch (e) {
    case Event::kCycles: return "cycles";
    case Event::kInstructions: return "instructions";
    case Event::kLLCRefs: return "llc_refs";
    case Event::kLLCMisses: return "llc_misses";
    case Event::kStalledCycles: return "stalled_cycles";
  }
  return "?";
}

double Delta::Ipc() const {
  if (!has(Event::kInstructions) || !has(Event::kCycles)) return -1.0;
  const double cycles = get(Event::kCycles);
  if (cycles <= 0.0) return -1.0;
  return get(Event::kInstructions) / cycles;
}

double Delta::LlcMissRate() const {
  if (!has(Event::kLLCMisses) || !has(Event::kLLCRefs)) return -1.0;
  const double refs = get(Event::kLLCRefs);
  if (refs <= 0.0) return -1.0;
  return get(Event::kLLCMisses) / refs;
}

double Delta::StalledFrac() const {
  if (!has(Event::kStalledCycles) || !has(Event::kCycles)) return -1.0;
  const double cycles = get(Event::kCycles);
  if (cycles <= 0.0) return -1.0;
  return get(Event::kStalledCycles) / cycles;
}

void Delta::Accumulate(const Delta& other) {
  if (!other.valid) return;
  if (!valid) {
    *this = other;
    return;
  }
  for (int i = 0; i < kNumEvents; ++i) {
    present[i] = present[i] && other.present[i];
    value[i] = present[i] ? value[i] + other.value[i] : 0.0;
  }
  if (other.multiplex_scale > multiplex_scale) {
    multiplex_scale = other.multiplex_scale;
  }
}

double ScaleMultiplexed(std::uint64_t raw_delta, std::uint64_t enabled_delta,
                        std::uint64_t running_delta, bool* valid_out) {
  if (running_delta == 0) {
    // enabled == running == 0: nothing elapsed, the raw delta (0) is exact.
    // enabled > 0 with running == 0: the group never reached the PMU over
    // the interval — there is no basis for an estimate.
    const bool exact = enabled_delta == 0;
    if (valid_out != nullptr) *valid_out = exact;
    return exact ? static_cast<double>(raw_delta) : 0.0;
  }
  if (valid_out != nullptr) *valid_out = true;
  return static_cast<double>(raw_delta) *
         (static_cast<double>(enabled_delta) /
          static_cast<double>(running_delta));
}

Delta ComputeDelta(const Sample& begin, const Sample& end) {
  Delta d;
  if (!begin.valid || !end.valid) return d;
  const std::uint64_t enabled =
      WrapDelta(begin.time_enabled, end.time_enabled);
  const std::uint64_t running =
      WrapDelta(begin.time_running, end.time_running);
  bool scale_valid = false;
  // Probe the scale validity once; per-event raw deltas share the group's
  // enabled/running interval.
  ScaleMultiplexed(0, enabled, running, &scale_valid);
  if (!scale_valid) return d;
  d.valid = true;
  d.multiplex_scale =
      running == 0 ? 1.0
                   : static_cast<double>(enabled) / static_cast<double>(running);
  for (int i = 0; i < kNumEvents; ++i) {
    if (!begin.present[i] || !end.present[i]) continue;
    d.present[i] = true;
    d.value[i] = ScaleMultiplexed(WrapDelta(begin.value[i], end.value[i]),
                                  enabled, running, nullptr);
  }
  return d;
}

#if CGDNN_PERFCTR_LINUX

bool CounterSet::Open() {
  Close();
  for (int i = 0; i < kNumEvents; ++i) {
    perf_event_attr attr = MakeAttr(kEventSpecs[i], /*leader=*/i == 0);
    const long fd = PerfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1,
                                  /*group_fd=*/leader_fd_, /*flags=*/0);
    if (fd < 0) {
      if (i == 0) return false;  // no leader, no group
      continue;  // PMU lacks this event (common for stalled-cycles): skip
    }
    fds_[static_cast<std::size_t>(i)] = static_cast<int>(fd);
    present_[static_cast<std::size_t>(i)] = true;
    if (i == 0) leader_fd_ = static_cast<int>(fd);
    ++n_open_;
  }
  ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  return true;
}

void CounterSet::Close() {
  for (int& fd : fds_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
  leader_fd_ = -1;
  present_.fill(false);
  n_open_ = 0;
}

Sample CounterSet::Read() const {
  Sample s;
  if (!ok()) return s;
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr]
  // (values in group-creation order, i.e. ascending Event over present_).
  std::uint64_t buf[3 + kNumEvents];
  const ssize_t want = static_cast<ssize_t>(
      (3 + static_cast<std::size_t>(n_open_)) * sizeof(std::uint64_t));
  if (read(leader_fd_, buf, static_cast<std::size_t>(want)) != want) return s;
  if (buf[0] != static_cast<std::uint64_t>(n_open_)) return s;
  s.time_enabled = buf[1];
  s.time_running = buf[2];
  std::size_t slot = 3;
  for (int i = 0; i < kNumEvents; ++i) {
    if (!present_[static_cast<std::size_t>(i)]) continue;
    s.value[static_cast<std::size_t>(i)] = buf[slot++];
    s.present[static_cast<std::size_t>(i)] = true;
  }
  s.valid = true;
  return s;
}

#else  // !CGDNN_PERFCTR_LINUX

bool CounterSet::Open() { return false; }
void CounterSet::Close() {}
Sample CounterSet::Read() const { return Sample{}; }

#endif

bool Supported() {
  int state = g_probe_state.load(std::memory_order_acquire);
  if (state != 0) return state > 0;
  LockGuard lock(g_probe_mu);
  state = g_probe_state.load(std::memory_order_acquire);
  if (state != 0) return state > 0;

  std::string reason;
  bool ok = false;
  if (g_force_unavailable.load(std::memory_order_relaxed)) {
    reason = "forced unavailable (test hook)";
  } else if (DisabledByEnv()) {
    reason = "disabled via CGDNN_PERFCTR";
  } else {
#if CGDNN_PERFCTR_LINUX
    CounterSet probe;
    ok = probe.Open();
    if (!ok) {
      reason = std::string("perf_event_open failed: ") + std::strerror(errno) +
               " (check /proc/sys/kernel/perf_event_paranoid or container "
               "seccomp policy)";
    }
#else
    reason = "perf_event_open not available on this platform";
#endif
  }
  g_unavailable_reason = reason;
  g_probe_state.store(ok ? 1 : -1, std::memory_order_release);
  return ok;
}

std::string UnavailableReason() {
  if (Supported()) return "";
  LockGuard lock(g_probe_mu);
  return g_unavailable_reason;
}

void SetActive(bool active) {
  if (active && !Supported()) {
    g_active.store(false, std::memory_order_relaxed);
    return;
  }
  g_active.store(active, std::memory_order_relaxed);
}

bool CollectionActive() {
  return g_active.load(std::memory_order_relaxed);
}

Sample ReadThreadCounters() {
  if (!CollectionActive()) return Sample{};
  // One group per thread, opened on first use and kept for the thread's
  // lifetime (OpenMP reuses its workers across regions). A failed open is
  // remembered so the thread does not retry the syscall per read.
  thread_local CounterSet set;
  thread_local bool attempted = false;
  if (!attempted) {
    attempted = true;
    set.Open();
  }
  return set.Read();
}

void ForceUnavailableForTest(bool force) {
  g_force_unavailable.store(force, std::memory_order_relaxed);
}

void ResetForTest() {
  g_probe_state.store(0, std::memory_order_release);
  g_active.store(false, std::memory_order_relaxed);
}

}  // namespace cgdnn::perfctr
