// Hardware performance-counter access for the coarse-grain runtime.
//
// The paper argues with *measured hardware efficiency* — per-layer scaling,
// cores kept busy, memory traffic — and wall time alone cannot distinguish a
// memory-bound layer from a low-IPC one or a straggler thread. CounterSet
// wraps `perf_event_open` with one event group per thread (leader: cycles;
// members: instructions, LLC references/misses, stalled backend cycles).
// Reads go through the leader with PERF_FORMAT_GROUP, so one syscall
// returns every member plus the group's time_enabled/time_running pair;
// deltas are multiplex-scaled by enabled/running so numbers stay unbiased
// when the kernel rotates more groups than the PMU has slots.
//
// Fallback discipline: counters are best-effort everywhere. When the host
// cannot deliver them (container seccomp filter, perf_event_paranoid,
// non-Linux build, CGDNN_PERFCTR=off) every entry point stays a cheap no-op
// and downstream consumers (trace args, derived metrics, cgdnn_audit)
// silently omit counter-derived fields — timing-only output must never
// break. Nothing is opened unless a tool explicitly arms collection with
// SetActive(true), so un-instrumented runs pay one relaxed atomic load.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "cgdnn/core/common.hpp"

namespace cgdnn::perfctr {

/// Counter slots of one per-thread group, in group-creation order.
enum class Event {
  kCycles = 0,
  kInstructions,
  kLLCRefs,
  kLLCMisses,
  kStalledCycles,
};
constexpr int kNumEvents = 5;

/// Stable identifier used in metrics/trace/audit keys ("cycles", ...).
const char* EventName(Event e);

/// One point-in-time reading of a thread's counter group. `value[i]` is the
/// raw accumulated count of event i (only meaningful when `present[i]`);
/// time_enabled/time_running are the group's scheduling times in ns.
struct Sample {
  std::array<std::uint64_t, kNumEvents> value{};
  std::array<bool, kNumEvents> present{};
  std::uint64_t time_enabled = 0;
  std::uint64_t time_running = 0;
  bool valid = false;
};

/// Multiplex-scaled counter increments between two Samples of the same
/// group. Values are estimates: raw delta * (enabled / running) over the
/// interval. `present[i]` mirrors the events the group actually carries;
/// derived ratios return a negative sentinel when an operand is missing.
struct Delta {
  std::array<double, kNumEvents> value{};
  std::array<bool, kNumEvents> present{};
  /// enabled/running scale applied (1.0 = the group was never descheduled).
  double multiplex_scale = 1.0;
  bool valid = false;

  bool has(Event e) const { return valid && present[static_cast<int>(e)]; }
  double get(Event e) const { return value[static_cast<int>(e)]; }

  /// Instructions per cycle; < 0 when either counter is missing.
  double Ipc() const;
  /// LLC misses / LLC references in [0, 1]; < 0 when missing or no refs.
  double LlcMissRate() const;
  /// Stalled backend cycles / cycles; < 0 when missing.
  double StalledFrac() const;

  /// Element-wise sum (events missing in either side become missing) —
  /// used to aggregate per-thread deltas into a region total.
  void Accumulate(const Delta& other);
};

// ----- pure counter math (unit-tested, no syscalls) ------------------------

/// Increment of a monotonically increasing hardware counter, tolerant of a
/// 64-bit wraparound between the two readings.
inline std::uint64_t WrapDelta(std::uint64_t prev, std::uint64_t cur) {
  return cur - prev;  // unsigned arithmetic is the mod-2^64 delta
}

/// Extrapolates a raw counter increment over the fraction of the interval
/// the group was actually scheduled on the PMU. running == 0 (the group
/// never ran — more groups than hardware slots and no rotation yet) yields
/// 0 and sets *valid_out to false.
double ScaleMultiplexed(std::uint64_t raw_delta, std::uint64_t enabled_delta,
                        std::uint64_t running_delta, bool* valid_out);

/// begin/end must come from the same group. Invalid inputs produce an
/// invalid (all-absent) Delta.
Delta ComputeDelta(const Sample& begin, const Sample& end);

// ----- counter group -------------------------------------------------------

/// RAII owner of one perf_event group counting the calling thread (pid=0,
/// cpu=-1, user space only). Events that the PMU rejects individually are
/// skipped; the set is usable as long as the cycles leader opened.
class CounterSet {
 public:
  CounterSet() = default;
  ~CounterSet() { Close(); }
  CounterSet(const CounterSet&) = delete;
  CounterSet& operator=(const CounterSet&) = delete;

  /// Opens the group for the calling thread. Returns false (leaving the set
  /// inert) when perf_event_open is unavailable or denied.
  bool Open();
  void Close();
  bool ok() const { return leader_fd_ >= 0; }

  /// Reads all members in one syscall. Returns an invalid Sample when the
  /// set is not open or the read fails.
  Sample Read() const;

 private:
  int leader_fd_ = -1;
  std::array<int, kNumEvents> fds_{{-1, -1, -1, -1, -1}};
  std::array<bool, kNumEvents> present_{};
  int n_open_ = 0;  ///< group members that opened, in creation order
};

// ----- process-wide switches ----------------------------------------------

/// True when this process can open counters at all: Linux, not disabled via
/// CGDNN_PERFCTR (off/0/false), and a probe perf_event_open succeeded. The
/// probe result is cached after the first call.
bool Supported();

/// Arms/disarms counter collection. Arming is a request: CollectionActive()
/// stays false on hosts where Supported() is false, and nothing is opened
/// until the first ReadThreadCounters() call on each thread.
void SetActive(bool active);

/// True when collection is armed AND the host supports counters — the one
/// flag instrumentation hot paths check (a relaxed atomic load).
bool CollectionActive();

/// Samples the calling thread's lazily-opened counter group. Returns an
/// invalid Sample when collection is inactive or the group failed to open.
Sample ReadThreadCounters();

/// Human-readable reason why counters are unavailable ("" when Supported()).
std::string UnavailableReason();

// ----- test hooks ----------------------------------------------------------

/// Makes Supported() report false (simulating a perf_event_open failure)
/// until reset. Affects new probes only; call ResetForTest() after toggling.
void ForceUnavailableForTest(bool force);
/// Drops the cached Supported() probe so env/force changes take effect.
void ResetForTest();

}  // namespace cgdnn::perfctr
