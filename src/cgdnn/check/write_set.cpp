#include "cgdnn/check/write_set.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <sstream>

#include "cgdnn/blackbox/blackbox.hpp"

namespace cgdnn::check {

namespace {
// kViolation event `a` values (decoder renders these).
constexpr std::uint64_t kViolationMissingBarrier = 1;
constexpr std::uint64_t kViolationOverlappingWrites = 2;
}  // namespace

namespace {

// -1 = follow the environment, 0 = forced off, 1 = forced on.
std::atomic<int> g_override{-1};

bool EnvEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("CGDNN_CHECK");
    if (v == nullptr) return false;
    return std::strcmp(v, "on") == 0 || std::strcmp(v, "1") == 0 ||
           std::strcmp(v, "true") == 0;
  }();
  return enabled;
}

WriteSetChecker* g_current = nullptr;

}  // namespace

#if CGDNN_CHECK_ENABLED
bool Enabled() {
  const int ovr = g_override.load(std::memory_order_relaxed);
  if (ovr >= 0) return ovr != 0;
  return EnvEnabled();
}
#endif

ScopedEnable::ScopedEnable(bool on)
    : saved_(g_override.exchange(on ? 1 : 0, std::memory_order_relaxed)) {}

ScopedEnable::~ScopedEnable() {
  g_override.store(saved_, std::memory_order_relaxed);
}

WriteSetChecker::WriteSetChecker(std::string region, int nthreads)
    : region_(std::move(region)), nthreads_(std::max(nthreads, 1)) {
  threads_.resize(static_cast<std::size_t>(nthreads_));
  write_phase_done_.assign(static_cast<std::size_t>(nthreads_), 0);
}

WriteSetChecker::~WriteSetChecker() noexcept(false) {
  // Don't pile a violation onto an in-flight exception: terminate() beats
  // losing the original error.
  if (!verified_ && std::uncaught_exceptions() == 0) Verify();
}

void WriteSetChecker::RecordWrite(int tid, const void* base, const char* blob,
                                  std::int64_t begin, std::int64_t end) {
  if (tid < 0 || tid >= nthreads_ || begin >= end) return;
  auto& buffers = threads_[static_cast<std::size_t>(tid)].buffers;
  BufferWrites* bw = nullptr;
  for (auto& b : buffers) {
    if (b.base == base) {
      bw = &b;
      break;
    }
  }
  if (bw == nullptr) {
    buffers.push_back(BufferWrites{base, blob, {}});
    bw = &buffers.back();
  }
  if (!bw->intervals.empty()) {
    WriteInterval& last = bw->intervals.back();
    // Static chunks arrive in ascending order, so extending the trailing
    // interval keeps the list O(threads) instead of O(samples).
    if (begin <= last.end && end >= last.begin) {
      last.begin = std::min(last.begin, begin);
      last.end = std::max(last.end, end);
      return;
    }
  }
  bw->intervals.push_back(WriteInterval{begin, end});
}

void WriteSetChecker::EndWritePhase(int tid) {
  if (tid < 0 || tid >= nthreads_) return;
  // The explicit barrier between the write loop and the merge publishes
  // this flag; relaxed is enough because BeginMerge only runs after it.
  write_phase_done_[static_cast<std::size_t>(tid)] = 1;
}

void WriteSetChecker::BeginMerge(int tid) {
  for (int t = 0; t < nthreads_; ++t) {
    if (write_phase_done_[static_cast<std::size_t>(t)]) continue;
    LockGuard lock(merge_violation_mu_);
    if (merge_violation_.empty()) {
      std::ostringstream os;
      os << "region '" << region_ << "': thread " << tid
         << " entered the gradient merge while thread " << t
         << " had not finished its write phase — the explicit barrier "
            "between the nowait worksharing loop and the merge is missing";
      merge_violation_ = os.str();
      // Park in the flight recorder immediately: the throw happens later,
      // at region end, and the process may crash before reaching it.
      blackbox::Record(blackbox::EventKind::kViolation, region_.c_str(),
                       kViolationMissingBarrier,
                       static_cast<std::uint64_t>(tid));
    }
    return;
  }
}

void WriteSetChecker::Verify() {
  if (verified_) return;
  verified_ = true;

  {
    LockGuard lock(merge_violation_mu_);
    CGDNN_CHECK(merge_violation_.empty()) << "cgdnn-check: " << merge_violation_;
  }

  // Merge all threads' lists per buffer, then sweep each buffer's intervals
  // in (begin, tid) order: any overlap between neighbours from different
  // threads is a partition violation.
  struct Tagged {
    WriteInterval iv;
    int tid;
    const char* blob;
  };
  std::vector<const void*> bases;
  for (const auto& tw : threads_) {
    for (const auto& bw : tw.buffers) {
      if (std::find(bases.begin(), bases.end(), bw.base) == bases.end()) {
        bases.push_back(bw.base);
      }
    }
  }
  for (const void* base : bases) {
    std::vector<Tagged> all;
    for (int t = 0; t < nthreads_; ++t) {
      for (const auto& bw : threads_[static_cast<std::size_t>(t)].buffers) {
        if (bw.base != base) continue;
        for (const WriteInterval& iv : bw.intervals) {
          all.push_back(Tagged{iv, t, bw.blob});
        }
      }
    }
    std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
      return a.iv.begin != b.iv.begin ? a.iv.begin < b.iv.begin
                                      : a.iv.end < b.iv.end;
    });
    // Sweep in begin order, carrying the interval with the furthest end
    // seen so far ("active"). Any interval overlapping an earlier one from
    // another thread must overlap the active one (begin order + maximal
    // end), so comparing against active alone is sufficient.
    if (!all.empty()) {
      Tagged active = all[0];
      for (std::size_t i = 1; i < all.size(); ++i) {
        const Tagged& cur = all[i];
        if (cur.tid != active.tid && cur.iv.begin < active.iv.end) {
          blackbox::Record(blackbox::EventKind::kViolation, region_.c_str(),
                           kViolationOverlappingWrites,
                           static_cast<std::uint64_t>(cur.tid));
          CGDNN_CHECK(false)
              << "cgdnn-check: region '" << region_ << "' blob '"
              << cur.blob << "': overlapping thread write sets — thread "
              << active.tid << " wrote [" << active.iv.begin << ", "
              << active.iv.end << ") and thread " << cur.tid << " wrote ["
              << cur.iv.begin << ", " << cur.iv.end << ")";
        }
        if (cur.tid == active.tid) {
          active.iv.end = std::max(active.iv.end, cur.iv.end);
        } else if (cur.iv.end > active.iv.end) {
          active = cur;
        }
      }
    }
  }
}

WriteSetChecker* WriteSetChecker::Current() { return g_current; }

CurrentRegionBinding::CurrentRegionBinding(WriteSetChecker* checker)
    : saved_(g_current) {
  g_current = checker;
}

CurrentRegionBinding::~CurrentRegionBinding() { g_current = saved_; }

}  // namespace cgdnn::check
