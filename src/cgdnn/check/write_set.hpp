// cgdnn-check: shadow write-set recorder for the coarse-grain parallel
// regions (the runtime half of the parallel-discipline tooling; the static
// half is tools/lint_parallel.py).
//
// The paper's bit-identity claim rests on two invariants that plain testing
// only samples: (1) the batch/channel partition gives every thread a write
// set that is PAIRWISE DISJOINT from every other thread's on each shared
// blob, and (2) privatized gradients are merged only after the explicit
// barrier that ends the write phase, so the merge reads fully written
// private buffers. The checker records per-thread [begin, end) element
// intervals on each shared buffer during a region and verifies both
// invariants when the region joins, throwing cgdnn::Error naming the layer,
// the blob and the two offending thread ids on violation.
//
// Cost model: compiled behind the CGDNN_CHECK CMake option (on by default,
// defining CGDNN_CHECK_ENABLED=1) and runtime-gated by the CGDNN_CHECK=on
// environment variable. When the env switch is off the only cost is one
// null-pointer test per recording site; when compiled out, Enabled() is a
// constant false and every hook folds away.
//
// Threading contract: the checker object is created and destroyed in serial
// code (it lives inside parallel::RegionStats, which brackets the omp
// region). RecordWrite/EndWritePhase are called by the owning thread on its
// own slot only — no locks needed. BeginMerge reads other threads' phase
// flags, which are released by the barrier preceding every merge; a
// violation found inside the region is parked and re-thrown serially by
// Verify() so no exception crosses the parallel-region boundary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cgdnn/core/common.hpp"
#include "cgdnn/core/thread_annotations.hpp"

#ifndef CGDNN_CHECK_ENABLED
#define CGDNN_CHECK_ENABLED 1
#endif

namespace cgdnn::check {

#if CGDNN_CHECK_ENABLED
/// True when write-set checking is armed for this process: the CGDNN_CHECK
/// environment variable is "on"/"1"/"true" (read once), or a ScopedEnable
/// override is live.
bool Enabled();
#else
constexpr bool Enabled() { return false; }
#endif

/// RAII override of the env switch, for tests: forces checking on (or off)
/// until destruction, then restores the previous state.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true);
  ~ScopedEnable();
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  int saved_;
};

/// One recorded write interval: elements [begin, end) of a buffer.
struct WriteInterval {
  std::int64_t begin = 0;
  std::int64_t end = 0;
};

class WriteSetChecker {
 public:
  /// Serial, before the parallel region opens. `region` is the instrumented
  /// region's name ("<layer>.forward" / "<layer>.backward").
  WriteSetChecker(std::string region, int nthreads);
  /// Serial, after the region joins. Runs Verify() unless it already ran
  /// (or an exception is in flight).
  ~WriteSetChecker() noexcept(false);
  WriteSetChecker(const WriteSetChecker&) = delete;
  WriteSetChecker& operator=(const WriteSetChecker&) = delete;

  /// Called by thread `tid` (its own slot only): thread `tid` wrote
  /// elements [begin, end) of the shared buffer `base`, known to the layer
  /// as `blob` ("top.data", "bottom.diff", ...). Adjacent/overlapping
  /// intervals from the same thread coalesce on insertion, so recording
  /// per-sample slots of a static chunk stays O(1) amortized.
  void RecordWrite(int tid, const void* base, const char* blob,
                   std::int64_t begin, std::int64_t end);

  /// Called by thread `tid` when its write phase ends (the ThreadRegionScope
  /// destructor — i.e. right after the worksharing loop, before the barrier
  /// that precedes any merge).
  void EndWritePhase(int tid);

  /// Called by thread `tid` as it enters a gradient merge. Verifies every
  /// participating thread has ended its write phase — a thread that reaches
  /// the merge while another is still writing means the explicit barrier
  /// between the nowait loop and the merge is missing.
  void BeginMerge(int tid);

  /// Serial, after the region joins: asserts all threads' write sets are
  /// pairwise disjoint on every recorded buffer and re-throws any violation
  /// parked by BeginMerge. Throws cgdnn::Error naming the region, the blob
  /// and the two offending thread ids. Idempotent.
  void Verify();

  int nthreads() const { return nthreads_; }
  const std::string& region() const { return region_; }

  /// Process-wide "current region" pointer so call sites that cannot see
  /// the owning RegionStats (the merge kernels) can reach the checker.
  /// Set/cleared serially by the owner; regions do not nest.
  static WriteSetChecker* Current();

 private:
  friend class CurrentRegionBinding;

  // Recording is lock-free: each thread appends to its own slot only, and
  // the slots are merged by base pointer in the serial Verify().
  struct BufferWrites {
    const void* base = nullptr;
    const char* blob = "";
    // Sorted by construction for static chunks (ascending visit order);
    // Verify() sorts defensively before the sweep.
    std::vector<WriteInterval> intervals;
  };
  struct ThreadWrites {
    std::vector<BufferWrites> buffers;  // a handful per region: linear scan
  };

  std::string region_;
  int nthreads_;
  bool verified_ = false;
  std::vector<ThreadWrites> threads_;
  // Phase flags, one cache line apart would be overkill here: written once
  // per region by the owner thread, read by mergers after a barrier.
  std::vector<std::uint8_t> write_phase_done_;
  // First in-region violation (missing barrier), parked for Verify().
  // Every merging thread may report; Verify re-reads under the lock.
  Mutex merge_violation_mu_;
  std::string merge_violation_ CGDNN_GUARDED_BY(merge_violation_mu_);
};

/// Serial RAII binding of WriteSetChecker::Current() (used by RegionStats).
class CurrentRegionBinding {
 public:
  explicit CurrentRegionBinding(WriteSetChecker* checker);
  ~CurrentRegionBinding();
  CurrentRegionBinding(const CurrentRegionBinding&) = delete;
  CurrentRegionBinding& operator=(const CurrentRegionBinding&) = delete;

 private:
  WriteSetChecker* saved_;
};

}  // namespace cgdnn::check
