// Typed configuration messages mirroring Caffe's caffe.proto definitions,
// parsed from / printed to the prototxt text format. Field names match
// Caffe's so real LeNet / CIFAR-10-quick prototxt files (minus unsupported
// features) load unchanged.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cgdnn/core/common.hpp"
#include "cgdnn/proto/textformat.hpp"

namespace cgdnn::proto {

struct FillerParameter {
  std::string type = "constant";  // constant|uniform|gaussian|xavier|msra|positive_unitball|bilinear
  double value = 0.0;             // constant
  double min = 0.0, max = 1.0;    // uniform
  double mean = 0.0, std = 1.0;   // gaussian
  std::string variance_norm = "FAN_IN";  // xavier/msra: FAN_IN|FAN_OUT|AVERAGE

  static FillerParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

/// Per-learnable-blob training multipliers (Caffe's ParamSpec).
struct ParamSpec {
  std::string name;  // optional: shared-parameter key
  double lr_mult = 1.0;
  double decay_mult = 1.0;

  static ParamSpec FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct ConvolutionParameter {
  index_t num_output = 0;
  bool bias_term = true;
  index_t kernel_h = 0, kernel_w = 0;  // set via kernel_size or kernel_h/w
  index_t stride_h = 1, stride_w = 1;
  index_t pad_h = 0, pad_w = 0;
  index_t dilation = 1;
  index_t group = 1;
  FillerParameter weight_filler;
  FillerParameter bias_filler;

  static ConvolutionParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct PoolingParameter {
  enum class Method { kMax, kAve };
  Method pool = Method::kMax;
  index_t kernel_size = 0;
  index_t stride = 1;
  index_t pad = 0;
  bool global_pooling = false;

  static PoolingParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct InnerProductParameter {
  index_t num_output = 0;
  bool bias_term = true;
  int axis = 1;
  FillerParameter weight_filler;
  FillerParameter bias_filler;

  static InnerProductParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct LRNParameter {
  index_t local_size = 5;
  double alpha = 1.0;
  double beta = 0.75;
  double k = 1.0;
  enum class NormRegion { kAcrossChannels, kWithinChannel };
  NormRegion norm_region = NormRegion::kAcrossChannels;

  static LRNParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct ReLUParameter {
  double negative_slope = 0.0;

  static ReLUParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct BlobShape {
  std::vector<index_t> dim;

  static BlobShape FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

/// y = (shift + scale * x) ^ power
struct PowerParameter {
  double power = 1.0;
  double scale = 1.0;
  double shift = 0.0;

  static PowerParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

/// y = base ^ (shift + scale * x); base -1 means e.
struct ExpParameter {
  double base = -1.0;
  double scale = 1.0;
  double shift = 0.0;

  static ExpParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

/// y = log_base(shift + scale * x); base -1 means e.
struct LogParameter {
  double base = -1.0;
  double scale = 1.0;
  double shift = 0.0;

  static LogParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct ELUParameter {
  double alpha = 1.0;

  static ELUParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

/// Per-channel learned (or provided) multiplicative scaling.
struct ScaleParameter {
  int axis = 1;
  int num_axes = 1;
  bool bias_term = false;
  FillerParameter filler{.type = "constant", .value = 1.0};  // identity scale
  FillerParameter bias_filler;  // defaults to constant 0

  static ScaleParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

/// Per-channel learned (or provided) additive bias.
struct BiasParameter {
  int axis = 1;
  int num_axes = 1;
  FillerParameter filler;  // defaults to constant 0

  static BiasParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct SliceParameter {
  int axis = 1;
  std::vector<index_t> slice_point;  // empty = equal slices

  static SliceParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct ReshapeParameter {
  /// Target shape; dim 0 copies the bottom dimension, dim -1 is inferred.
  BlobShape shape;

  static ReshapeParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct ArgMaxParameter {
  index_t top_k = 1;
  bool out_max_val = false;

  static ArgMaxParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

/// MemoryData: user-supplied in-memory batches (Caffe's MemoryDataLayer).
struct MemoryDataParameter {
  index_t batch_size = 0;
  index_t channels = 0;
  index_t height = 0;
  index_t width = 0;

  static MemoryDataParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct BatchNormParameter {
  /// Unset: batch statistics in TRAIN, stored statistics in TEST (Caffe's
  /// default); set: force the choice.
  std::optional<bool> use_global_stats;
  double moving_average_fraction = 0.999;
  double eps = 1e-5;

  static BatchNormParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct DropoutParameter {
  double dropout_ratio = 0.5;

  static DropoutParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct EltwiseParameter {
  enum class Op { kProd, kSum, kMax };
  Op operation = Op::kSum;
  std::vector<double> coeff;  // per-bottom coefficients for kSum

  static EltwiseParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct ConcatParameter {
  int axis = 1;

  static ConcatParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct SoftmaxParameter {
  int axis = 1;

  static SoftmaxParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct AccuracyParameter {
  index_t top_k = 1;
  int axis = 1;

  static AccuracyParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct LossParameter {
  std::optional<index_t> ignore_label;
  bool normalize = true;

  static LossParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

/// Data source configuration. `source` selects a dataset:
///   "synthetic-mnist" | "synthetic-cifar10" | "random" | path to IDX/CIFAR
/// files (see cgdnn/data). The data layer runs sequentially, as in the paper.
struct DataParameter {
  std::string source = "synthetic-mnist";
  index_t batch_size = 0;
  index_t num_samples = 1024;  // synthetic dataset size
  std::uint64_t seed = 1;      // synthetic dataset seed

  static DataParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct TransformationParameter {
  double scale = 1.0;
  bool mirror = false;
  index_t crop_size = 0;
  std::vector<double> mean_value;

  static TransformationParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

/// Constant-content input layer (Caffe's DummyData), used by tests/benches.
struct DummyDataParameter {
  std::vector<BlobShape> shape;
  std::vector<FillerParameter> data_filler;

  static DummyDataParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct LayerParameter {
  std::string name;
  std::string type;
  std::vector<std::string> bottom;
  std::vector<std::string> top;
  std::optional<Phase> include_phase;  // Caffe's include { phase: ... }
  std::vector<double> loss_weight;
  std::vector<ParamSpec> param;

  ConvolutionParameter convolution_param;
  PoolingParameter pooling_param;
  InnerProductParameter inner_product_param;
  LRNParameter lrn_param;
  ReLUParameter relu_param;
  PowerParameter power_param;
  ExpParameter exp_param;
  LogParameter log_param;
  ELUParameter elu_param;
  ScaleParameter scale_param;
  BiasParameter bias_param;
  SliceParameter slice_param;
  ReshapeParameter reshape_param;
  ArgMaxParameter argmax_param;
  BatchNormParameter batch_norm_param;
  MemoryDataParameter memory_data_param;
  DropoutParameter dropout_param;
  EltwiseParameter eltwise_param;
  ConcatParameter concat_param;
  SoftmaxParameter softmax_param;
  AccuracyParameter accuracy_param;
  LossParameter loss_param;
  DataParameter data_param;
  TransformationParameter transform_param;
  DummyDataParameter dummy_data_param;

  static LayerParameter FromText(const TextMessage& msg);
  void ToText(TextMessage& msg) const;
};

struct NetParameter {
  std::string name;
  bool force_backward = false;
  std::vector<LayerParameter> layer;

  static NetParameter FromText(const TextMessage& msg);
  static NetParameter FromString(std::string_view prototxt);
  static NetParameter FromFile(const std::string& path);
  void ToText(TextMessage& msg) const;
  std::string ToString() const;
};

struct SolverParameter {
  std::string type = "SGD";  // SGD|Nesterov|Adam|AdaGrad|RMSProp|AdaDelta
  NetParameter net_param;    // inline net (net_param { ... })
  /// Path to an external net prototxt (Caffe's `net:` field); resolved by
  /// the cgdnn_train tool into net_param before solver construction.
  std::string net;
  index_t test_iter = 0;
  index_t test_interval = 0;
  bool test_initialization = true;
  double base_lr = 0.01;
  index_t display = 0;
  index_t max_iter = 0;
  /// Gradient accumulation: each iteration runs `iter_size` forward/backward
  /// passes before one update, giving an effective batch of
  /// iter_size * batch_size without growing the working set.
  index_t iter_size = 1;
  std::string lr_policy = "fixed";  // fixed|step|exp|inv|multistep|poly|sigmoid
  double gamma = 0.0;
  double power = 0.0;
  double momentum = 0.0;
  double weight_decay = 0.0;
  std::string regularization_type = "L2";  // L2|L1
  index_t stepsize = 0;
  std::vector<index_t> stepvalue;
  double clip_gradients = -1.0;
  /// Periodic checkpointing (Caffe's snapshot/snapshot_prefix): every
  /// `snapshot` iterations a full training-state checkpoint is written to
  /// `<snapshot_prefix>_iter_<N>.cgdnnckpt`; the newest `snapshot_retain`
  /// files are kept, older ones rotated away. 0 disables.
  index_t snapshot = 0;
  std::string snapshot_prefix;
  index_t snapshot_retain = 3;
  std::uint64_t random_seed = 1;
  double delta = 1e-8;     // AdaGrad / AdaDelta / RMSProp numerical floor
  double rms_decay = 0.99; // RMSProp
  double momentum2 = 0.999;

  static SolverParameter FromText(const TextMessage& msg);
  static SolverParameter FromString(std::string_view prototxt);
  void ToText(TextMessage& msg) const;
  std::string ToString() const;
};

}  // namespace cgdnn::proto
