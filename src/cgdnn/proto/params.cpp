#include "cgdnn/proto/params.hpp"

#include <sstream>

namespace cgdnn::proto {

namespace {

[[noreturn]] void UnknownField(const char* message_name,
                               const std::string& field) {
  throw Error(__FILE__, __LINE__, std::string("unknown field '") + field +
                                      "' in message " + message_name);
}

Phase ParsePhase(const std::string& token) {
  if (token == "TRAIN") return Phase::kTrain;
  if (token == "TEST") return Phase::kTest;
  throw Error(__FILE__, __LINE__, "unknown phase: " + token);
}

}  // namespace

// ------------------------------------------------------------------ Filler

FillerParameter FillerParameter::FromText(const TextMessage& msg) {
  FillerParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "type") p.type = e.value.AsString();
    else if (e.name == "value") p.value = e.value.AsDouble();
    else if (e.name == "min") p.min = e.value.AsDouble();
    else if (e.name == "max") p.max = e.value.AsDouble();
    else if (e.name == "mean") p.mean = e.value.AsDouble();
    else if (e.name == "std") p.std = e.value.AsDouble();
    else if (e.name == "variance_norm") p.variance_norm = e.value.AsString();
    else UnknownField("FillerParameter", e.name);
  }
  return p;
}

void FillerParameter::ToText(TextMessage& msg) const {
  msg.AddString("type", type);
  if (type == "constant") msg.AddDouble("value", value);
  if (type == "uniform") {
    msg.AddDouble("min", min);
    msg.AddDouble("max", max);
  }
  if (type == "gaussian") {
    msg.AddDouble("mean", mean);
    msg.AddDouble("std", std);
  }
  if (type == "xavier" || type == "msra") {
    msg.AddScalar("variance_norm", variance_norm);
  }
}

// --------------------------------------------------------------- ParamSpec

ParamSpec ParamSpec::FromText(const TextMessage& msg) {
  ParamSpec p;
  for (const auto& e : msg.entries()) {
    if (e.name == "name") p.name = e.value.AsString();
    else if (e.name == "lr_mult") p.lr_mult = e.value.AsDouble();
    else if (e.name == "decay_mult") p.decay_mult = e.value.AsDouble();
    else UnknownField("ParamSpec", e.name);
  }
  return p;
}

void ParamSpec::ToText(TextMessage& msg) const {
  if (!name.empty()) msg.AddString("name", name);
  msg.AddDouble("lr_mult", lr_mult);
  msg.AddDouble("decay_mult", decay_mult);
}

// ------------------------------------------------------------- Convolution

ConvolutionParameter ConvolutionParameter::FromText(const TextMessage& msg) {
  ConvolutionParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "num_output") p.num_output = e.value.AsInt();
    else if (e.name == "bias_term") p.bias_term = e.value.AsBool();
    else if (e.name == "kernel_size") p.kernel_h = p.kernel_w = e.value.AsInt();
    else if (e.name == "kernel_h") p.kernel_h = e.value.AsInt();
    else if (e.name == "kernel_w") p.kernel_w = e.value.AsInt();
    else if (e.name == "stride") p.stride_h = p.stride_w = e.value.AsInt();
    else if (e.name == "stride_h") p.stride_h = e.value.AsInt();
    else if (e.name == "stride_w") p.stride_w = e.value.AsInt();
    else if (e.name == "pad") p.pad_h = p.pad_w = e.value.AsInt();
    else if (e.name == "pad_h") p.pad_h = e.value.AsInt();
    else if (e.name == "pad_w") p.pad_w = e.value.AsInt();
    else if (e.name == "dilation") p.dilation = e.value.AsInt();
    else if (e.name == "group") p.group = e.value.AsInt();
    else if (e.name == "weight_filler")
      p.weight_filler = FillerParameter::FromText(e.value.message());
    else if (e.name == "bias_filler")
      p.bias_filler = FillerParameter::FromText(e.value.message());
    else UnknownField("ConvolutionParameter", e.name);
  }
  return p;
}

void ConvolutionParameter::ToText(TextMessage& msg) const {
  msg.AddInt("num_output", num_output);
  if (!bias_term) msg.AddBool("bias_term", false);
  if (kernel_h == kernel_w) {
    msg.AddInt("kernel_size", kernel_h);
  } else {
    msg.AddInt("kernel_h", kernel_h);
    msg.AddInt("kernel_w", kernel_w);
  }
  if (stride_h == stride_w) {
    if (stride_h != 1) msg.AddInt("stride", stride_h);
  } else {
    msg.AddInt("stride_h", stride_h);
    msg.AddInt("stride_w", stride_w);
  }
  if (pad_h == pad_w) {
    if (pad_h != 0) msg.AddInt("pad", pad_h);
  } else {
    msg.AddInt("pad_h", pad_h);
    msg.AddInt("pad_w", pad_w);
  }
  if (dilation != 1) msg.AddInt("dilation", dilation);
  if (group != 1) msg.AddInt("group", group);
  weight_filler.ToText(msg.AddMessage("weight_filler"));
  if (bias_term) bias_filler.ToText(msg.AddMessage("bias_filler"));
}

// ----------------------------------------------------------------- Pooling

PoolingParameter PoolingParameter::FromText(const TextMessage& msg) {
  PoolingParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "pool") {
      const std::string v = e.value.AsString();
      if (v == "MAX") p.pool = Method::kMax;
      else if (v == "AVE") p.pool = Method::kAve;
      else throw Error(__FILE__, __LINE__, "unknown pooling method: " + v);
    } else if (e.name == "kernel_size") p.kernel_size = e.value.AsInt();
    else if (e.name == "stride") p.stride = e.value.AsInt();
    else if (e.name == "pad") p.pad = e.value.AsInt();
    else if (e.name == "global_pooling") p.global_pooling = e.value.AsBool();
    else UnknownField("PoolingParameter", e.name);
  }
  return p;
}

void PoolingParameter::ToText(TextMessage& msg) const {
  msg.AddScalar("pool", pool == Method::kMax ? "MAX" : "AVE");
  if (global_pooling) {
    msg.AddBool("global_pooling", true);
  } else {
    msg.AddInt("kernel_size", kernel_size);
  }
  if (stride != 1) msg.AddInt("stride", stride);
  if (pad != 0) msg.AddInt("pad", pad);
}

// ------------------------------------------------------------ InnerProduct

InnerProductParameter InnerProductParameter::FromText(const TextMessage& msg) {
  InnerProductParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "num_output") p.num_output = e.value.AsInt();
    else if (e.name == "bias_term") p.bias_term = e.value.AsBool();
    else if (e.name == "axis") p.axis = static_cast<int>(e.value.AsInt());
    else if (e.name == "weight_filler")
      p.weight_filler = FillerParameter::FromText(e.value.message());
    else if (e.name == "bias_filler")
      p.bias_filler = FillerParameter::FromText(e.value.message());
    else UnknownField("InnerProductParameter", e.name);
  }
  return p;
}

void InnerProductParameter::ToText(TextMessage& msg) const {
  msg.AddInt("num_output", num_output);
  if (!bias_term) msg.AddBool("bias_term", false);
  if (axis != 1) msg.AddInt("axis", axis);
  weight_filler.ToText(msg.AddMessage("weight_filler"));
  if (bias_term) bias_filler.ToText(msg.AddMessage("bias_filler"));
}

// --------------------------------------------------------------------- LRN

LRNParameter LRNParameter::FromText(const TextMessage& msg) {
  LRNParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "local_size") p.local_size = e.value.AsInt();
    else if (e.name == "alpha") p.alpha = e.value.AsDouble();
    else if (e.name == "beta") p.beta = e.value.AsDouble();
    else if (e.name == "k") p.k = e.value.AsDouble();
    else if (e.name == "norm_region") {
      const std::string v = e.value.AsString();
      if (v == "ACROSS_CHANNELS") p.norm_region = NormRegion::kAcrossChannels;
      else if (v == "WITHIN_CHANNEL") p.norm_region = NormRegion::kWithinChannel;
      else throw Error(__FILE__, __LINE__, "unknown norm_region: " + v);
    } else UnknownField("LRNParameter", e.name);
  }
  return p;
}

void LRNParameter::ToText(TextMessage& msg) const {
  msg.AddInt("local_size", local_size);
  msg.AddDouble("alpha", alpha);
  msg.AddDouble("beta", beta);
  if (k != 1.0) msg.AddDouble("k", k);
  if (norm_region == NormRegion::kWithinChannel) {
    msg.AddScalar("norm_region", "WITHIN_CHANNEL");
  }
}

// -------------------------------------------------------------------- ReLU

ReLUParameter ReLUParameter::FromText(const TextMessage& msg) {
  ReLUParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "negative_slope") p.negative_slope = e.value.AsDouble();
    else UnknownField("ReLUParameter", e.name);
  }
  return p;
}

void ReLUParameter::ToText(TextMessage& msg) const {
  if (negative_slope != 0.0) msg.AddDouble("negative_slope", negative_slope);
}

// ------------------------------------------------------------------- Power

PowerParameter PowerParameter::FromText(const TextMessage& msg) {
  PowerParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "power") p.power = e.value.AsDouble();
    else if (e.name == "scale") p.scale = e.value.AsDouble();
    else if (e.name == "shift") p.shift = e.value.AsDouble();
    else UnknownField("PowerParameter", e.name);
  }
  return p;
}

void PowerParameter::ToText(TextMessage& msg) const {
  if (power != 1.0) msg.AddDouble("power", power);
  if (scale != 1.0) msg.AddDouble("scale", scale);
  if (shift != 0.0) msg.AddDouble("shift", shift);
}

// --------------------------------------------------------------------- Exp

ExpParameter ExpParameter::FromText(const TextMessage& msg) {
  ExpParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "base") p.base = e.value.AsDouble();
    else if (e.name == "scale") p.scale = e.value.AsDouble();
    else if (e.name == "shift") p.shift = e.value.AsDouble();
    else UnknownField("ExpParameter", e.name);
  }
  return p;
}

void ExpParameter::ToText(TextMessage& msg) const {
  if (base != -1.0) msg.AddDouble("base", base);
  if (scale != 1.0) msg.AddDouble("scale", scale);
  if (shift != 0.0) msg.AddDouble("shift", shift);
}

// --------------------------------------------------------------------- Log

LogParameter LogParameter::FromText(const TextMessage& msg) {
  LogParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "base") p.base = e.value.AsDouble();
    else if (e.name == "scale") p.scale = e.value.AsDouble();
    else if (e.name == "shift") p.shift = e.value.AsDouble();
    else UnknownField("LogParameter", e.name);
  }
  return p;
}

void LogParameter::ToText(TextMessage& msg) const {
  if (base != -1.0) msg.AddDouble("base", base);
  if (scale != 1.0) msg.AddDouble("scale", scale);
  if (shift != 0.0) msg.AddDouble("shift", shift);
}

// --------------------------------------------------------------------- ELU

ELUParameter ELUParameter::FromText(const TextMessage& msg) {
  ELUParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "alpha") p.alpha = e.value.AsDouble();
    else UnknownField("ELUParameter", e.name);
  }
  return p;
}

void ELUParameter::ToText(TextMessage& msg) const {
  if (alpha != 1.0) msg.AddDouble("alpha", alpha);
}

// ------------------------------------------------------------------- Scale

ScaleParameter ScaleParameter::FromText(const TextMessage& msg) {
  ScaleParameter p;
  p.filler.type = "constant";
  p.filler.value = 1.0;
  for (const auto& e : msg.entries()) {
    if (e.name == "axis") p.axis = static_cast<int>(e.value.AsInt());
    else if (e.name == "num_axes") p.num_axes = static_cast<int>(e.value.AsInt());
    else if (e.name == "bias_term") p.bias_term = e.value.AsBool();
    else if (e.name == "filler")
      p.filler = FillerParameter::FromText(e.value.message());
    else if (e.name == "bias_filler")
      p.bias_filler = FillerParameter::FromText(e.value.message());
    else UnknownField("ScaleParameter", e.name);
  }
  return p;
}

void ScaleParameter::ToText(TextMessage& msg) const {
  if (axis != 1) msg.AddInt("axis", axis);
  if (num_axes != 1) msg.AddInt("num_axes", num_axes);
  if (bias_term) msg.AddBool("bias_term", true);
  filler.ToText(msg.AddMessage("filler"));
  if (bias_term) bias_filler.ToText(msg.AddMessage("bias_filler"));
}

// -------------------------------------------------------------------- Bias

BiasParameter BiasParameter::FromText(const TextMessage& msg) {
  BiasParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "axis") p.axis = static_cast<int>(e.value.AsInt());
    else if (e.name == "num_axes") p.num_axes = static_cast<int>(e.value.AsInt());
    else if (e.name == "filler")
      p.filler = FillerParameter::FromText(e.value.message());
    else UnknownField("BiasParameter", e.name);
  }
  return p;
}

void BiasParameter::ToText(TextMessage& msg) const {
  if (axis != 1) msg.AddInt("axis", axis);
  if (num_axes != 1) msg.AddInt("num_axes", num_axes);
  filler.ToText(msg.AddMessage("filler"));
}

// ------------------------------------------------------------------- Slice

SliceParameter SliceParameter::FromText(const TextMessage& msg) {
  SliceParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "axis") p.axis = static_cast<int>(e.value.AsInt());
    else if (e.name == "slice_point") p.slice_point.push_back(e.value.AsInt());
    else UnknownField("SliceParameter", e.name);
  }
  return p;
}

void SliceParameter::ToText(TextMessage& msg) const {
  if (axis != 1) msg.AddInt("axis", axis);
  for (index_t sp : slice_point) msg.AddInt("slice_point", sp);
}

// ----------------------------------------------------------------- Reshape

ReshapeParameter ReshapeParameter::FromText(const TextMessage& msg) {
  ReshapeParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "shape") p.shape = BlobShape::FromText(e.value.message());
    else UnknownField("ReshapeParameter", e.name);
  }
  return p;
}

void ReshapeParameter::ToText(TextMessage& msg) const {
  shape.ToText(msg.AddMessage("shape"));
}

// ------------------------------------------------------------------ ArgMax

ArgMaxParameter ArgMaxParameter::FromText(const TextMessage& msg) {
  ArgMaxParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "top_k") p.top_k = e.value.AsInt();
    else if (e.name == "out_max_val") p.out_max_val = e.value.AsBool();
    else UnknownField("ArgMaxParameter", e.name);
  }
  return p;
}

void ArgMaxParameter::ToText(TextMessage& msg) const {
  if (top_k != 1) msg.AddInt("top_k", top_k);
  if (out_max_val) msg.AddBool("out_max_val", true);
}

// -------------------------------------------------------------- MemoryData

MemoryDataParameter MemoryDataParameter::FromText(const TextMessage& msg) {
  MemoryDataParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "batch_size") p.batch_size = e.value.AsInt();
    else if (e.name == "channels") p.channels = e.value.AsInt();
    else if (e.name == "height") p.height = e.value.AsInt();
    else if (e.name == "width") p.width = e.value.AsInt();
    else UnknownField("MemoryDataParameter", e.name);
  }
  return p;
}

void MemoryDataParameter::ToText(TextMessage& msg) const {
  msg.AddInt("batch_size", batch_size);
  msg.AddInt("channels", channels);
  msg.AddInt("height", height);
  msg.AddInt("width", width);
}

// --------------------------------------------------------------- BatchNorm

BatchNormParameter BatchNormParameter::FromText(const TextMessage& msg) {
  BatchNormParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "use_global_stats") p.use_global_stats = e.value.AsBool();
    else if (e.name == "moving_average_fraction")
      p.moving_average_fraction = e.value.AsDouble();
    else if (e.name == "eps") p.eps = e.value.AsDouble();
    else UnknownField("BatchNormParameter", e.name);
  }
  return p;
}

void BatchNormParameter::ToText(TextMessage& msg) const {
  if (use_global_stats) msg.AddBool("use_global_stats", *use_global_stats);
  if (moving_average_fraction != 0.999) {
    msg.AddDouble("moving_average_fraction", moving_average_fraction);
  }
  if (eps != 1e-5) msg.AddDouble("eps", eps);
}

// ----------------------------------------------------------------- Dropout

DropoutParameter DropoutParameter::FromText(const TextMessage& msg) {
  DropoutParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "dropout_ratio") p.dropout_ratio = e.value.AsDouble();
    else UnknownField("DropoutParameter", e.name);
  }
  return p;
}

void DropoutParameter::ToText(TextMessage& msg) const {
  msg.AddDouble("dropout_ratio", dropout_ratio);
}

// ----------------------------------------------------------------- Eltwise

EltwiseParameter EltwiseParameter::FromText(const TextMessage& msg) {
  EltwiseParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "operation") {
      const std::string v = e.value.AsString();
      if (v == "PROD") p.operation = Op::kProd;
      else if (v == "SUM") p.operation = Op::kSum;
      else if (v == "MAX") p.operation = Op::kMax;
      else throw Error(__FILE__, __LINE__, "unknown eltwise op: " + v);
    } else if (e.name == "coeff") p.coeff.push_back(e.value.AsDouble());
    else UnknownField("EltwiseParameter", e.name);
  }
  return p;
}

void EltwiseParameter::ToText(TextMessage& msg) const {
  const char* names[] = {"PROD", "SUM", "MAX"};
  msg.AddScalar("operation", names[static_cast<int>(operation)]);
  for (double c : coeff) msg.AddDouble("coeff", c);
}

// ------------------------------------------------------------------ Concat

ConcatParameter ConcatParameter::FromText(const TextMessage& msg) {
  ConcatParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "axis") p.axis = static_cast<int>(e.value.AsInt());
    else UnknownField("ConcatParameter", e.name);
  }
  return p;
}

void ConcatParameter::ToText(TextMessage& msg) const {
  if (axis != 1) msg.AddInt("axis", axis);
}

// ----------------------------------------------------------------- Softmax

SoftmaxParameter SoftmaxParameter::FromText(const TextMessage& msg) {
  SoftmaxParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "axis") p.axis = static_cast<int>(e.value.AsInt());
    else UnknownField("SoftmaxParameter", e.name);
  }
  return p;
}

void SoftmaxParameter::ToText(TextMessage& msg) const {
  if (axis != 1) msg.AddInt("axis", axis);
}

// ---------------------------------------------------------------- Accuracy

AccuracyParameter AccuracyParameter::FromText(const TextMessage& msg) {
  AccuracyParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "top_k") p.top_k = e.value.AsInt();
    else if (e.name == "axis") p.axis = static_cast<int>(e.value.AsInt());
    else UnknownField("AccuracyParameter", e.name);
  }
  return p;
}

void AccuracyParameter::ToText(TextMessage& msg) const {
  if (top_k != 1) msg.AddInt("top_k", top_k);
  if (axis != 1) msg.AddInt("axis", axis);
}

// -------------------------------------------------------------------- Loss

LossParameter LossParameter::FromText(const TextMessage& msg) {
  LossParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "ignore_label") p.ignore_label = e.value.AsInt();
    else if (e.name == "normalize") p.normalize = e.value.AsBool();
    else UnknownField("LossParameter", e.name);
  }
  return p;
}

void LossParameter::ToText(TextMessage& msg) const {
  if (ignore_label) msg.AddInt("ignore_label", *ignore_label);
  if (!normalize) msg.AddBool("normalize", false);
}

// -------------------------------------------------------------------- Data

DataParameter DataParameter::FromText(const TextMessage& msg) {
  DataParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "source") p.source = e.value.AsString();
    else if (e.name == "batch_size") p.batch_size = e.value.AsInt();
    else if (e.name == "num_samples") p.num_samples = e.value.AsInt();
    else if (e.name == "seed")
      p.seed = static_cast<std::uint64_t>(e.value.AsInt());
    else UnknownField("DataParameter", e.name);
  }
  return p;
}

void DataParameter::ToText(TextMessage& msg) const {
  msg.AddString("source", source);
  msg.AddInt("batch_size", batch_size);
  msg.AddInt("num_samples", num_samples);
  msg.AddInt("seed", static_cast<index_t>(seed));
}

// ---------------------------------------------------------- Transformation

TransformationParameter TransformationParameter::FromText(
    const TextMessage& msg) {
  TransformationParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "scale") p.scale = e.value.AsDouble();
    else if (e.name == "mirror") p.mirror = e.value.AsBool();
    else if (e.name == "crop_size") p.crop_size = e.value.AsInt();
    else if (e.name == "mean_value") p.mean_value.push_back(e.value.AsDouble());
    else UnknownField("TransformationParameter", e.name);
  }
  return p;
}

void TransformationParameter::ToText(TextMessage& msg) const {
  if (scale != 1.0) msg.AddDouble("scale", scale);
  if (mirror) msg.AddBool("mirror", true);
  if (crop_size != 0) msg.AddInt("crop_size", crop_size);
  for (double m : mean_value) msg.AddDouble("mean_value", m);
}

// --------------------------------------------------------------- BlobShape

BlobShape BlobShape::FromText(const TextMessage& msg) {
  BlobShape p;
  for (const auto& e : msg.entries()) {
    if (e.name == "dim") p.dim.push_back(e.value.AsInt());
    else UnknownField("BlobShape", e.name);
  }
  return p;
}

void BlobShape::ToText(TextMessage& msg) const {
  for (index_t d : dim) msg.AddInt("dim", d);
}

// --------------------------------------------------------------- DummyData

DummyDataParameter DummyDataParameter::FromText(const TextMessage& msg) {
  DummyDataParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "shape") p.shape.push_back(BlobShape::FromText(e.value.message()));
    else if (e.name == "data_filler")
      p.data_filler.push_back(FillerParameter::FromText(e.value.message()));
    else UnknownField("DummyDataParameter", e.name);
  }
  return p;
}

void DummyDataParameter::ToText(TextMessage& msg) const {
  for (const auto& s : shape) s.ToText(msg.AddMessage("shape"));
  for (const auto& f : data_filler) f.ToText(msg.AddMessage("data_filler"));
}

// ------------------------------------------------------------------- Layer

LayerParameter LayerParameter::FromText(const TextMessage& msg) {
  LayerParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "name") p.name = e.value.AsString();
    else if (e.name == "type") p.type = e.value.AsString();
    else if (e.name == "bottom") p.bottom.push_back(e.value.AsString());
    else if (e.name == "top") p.top.push_back(e.value.AsString());
    else if (e.name == "loss_weight") p.loss_weight.push_back(e.value.AsDouble());
    else if (e.name == "param") p.param.push_back(ParamSpec::FromText(e.value.message()));
    else if (e.name == "include") {
      const TextMessage& inc = e.value.message();
      if (inc.Has("phase")) p.include_phase = ParsePhase(inc.Get("phase").AsString());
    }
    else if (e.name == "phase") p.include_phase = ParsePhase(e.value.AsString());
    else if (e.name == "convolution_param")
      p.convolution_param = ConvolutionParameter::FromText(e.value.message());
    else if (e.name == "pooling_param")
      p.pooling_param = PoolingParameter::FromText(e.value.message());
    else if (e.name == "inner_product_param")
      p.inner_product_param = InnerProductParameter::FromText(e.value.message());
    else if (e.name == "lrn_param")
      p.lrn_param = LRNParameter::FromText(e.value.message());
    else if (e.name == "relu_param")
      p.relu_param = ReLUParameter::FromText(e.value.message());
    else if (e.name == "power_param")
      p.power_param = PowerParameter::FromText(e.value.message());
    else if (e.name == "exp_param")
      p.exp_param = ExpParameter::FromText(e.value.message());
    else if (e.name == "log_param")
      p.log_param = LogParameter::FromText(e.value.message());
    else if (e.name == "elu_param")
      p.elu_param = ELUParameter::FromText(e.value.message());
    else if (e.name == "scale_param")
      p.scale_param = ScaleParameter::FromText(e.value.message());
    else if (e.name == "bias_param")
      p.bias_param = BiasParameter::FromText(e.value.message());
    else if (e.name == "slice_param")
      p.slice_param = SliceParameter::FromText(e.value.message());
    else if (e.name == "reshape_param")
      p.reshape_param = ReshapeParameter::FromText(e.value.message());
    else if (e.name == "argmax_param")
      p.argmax_param = ArgMaxParameter::FromText(e.value.message());
    else if (e.name == "batch_norm_param")
      p.batch_norm_param = BatchNormParameter::FromText(e.value.message());
    else if (e.name == "memory_data_param")
      p.memory_data_param = MemoryDataParameter::FromText(e.value.message());
    else if (e.name == "dropout_param")
      p.dropout_param = DropoutParameter::FromText(e.value.message());
    else if (e.name == "eltwise_param")
      p.eltwise_param = EltwiseParameter::FromText(e.value.message());
    else if (e.name == "concat_param")
      p.concat_param = ConcatParameter::FromText(e.value.message());
    else if (e.name == "softmax_param")
      p.softmax_param = SoftmaxParameter::FromText(e.value.message());
    else if (e.name == "accuracy_param")
      p.accuracy_param = AccuracyParameter::FromText(e.value.message());
    else if (e.name == "loss_param")
      p.loss_param = LossParameter::FromText(e.value.message());
    else if (e.name == "data_param")
      p.data_param = DataParameter::FromText(e.value.message());
    else if (e.name == "transform_param")
      p.transform_param = TransformationParameter::FromText(e.value.message());
    else if (e.name == "dummy_data_param")
      p.dummy_data_param = DummyDataParameter::FromText(e.value.message());
    else UnknownField("LayerParameter", e.name);
  }
  CGDNN_CHECK(!p.type.empty()) << "layer '" << p.name << "' has no type";
  return p;
}

void LayerParameter::ToText(TextMessage& msg) const {
  msg.AddString("name", name);
  msg.AddString("type", type);
  for (const auto& b : bottom) msg.AddString("bottom", b);
  for (const auto& t : top) msg.AddString("top", t);
  if (include_phase) {
    msg.AddMessage("include").AddScalar(
        "phase", *include_phase == Phase::kTrain ? "TRAIN" : "TEST");
  }
  for (double w : loss_weight) msg.AddDouble("loss_weight", w);
  for (const auto& ps : param) ps.ToText(msg.AddMessage("param"));
  // Only the sub-message relevant to the layer type is emitted, mirroring
  // how Caffe prototxt files are written.
  if (type == "Convolution") convolution_param.ToText(msg.AddMessage("convolution_param"));
  else if (type == "Pooling") pooling_param.ToText(msg.AddMessage("pooling_param"));
  else if (type == "InnerProduct") inner_product_param.ToText(msg.AddMessage("inner_product_param"));
  else if (type == "LRN") lrn_param.ToText(msg.AddMessage("lrn_param"));
  else if (type == "ReLU") relu_param.ToText(msg.AddMessage("relu_param"));
  else if (type == "Power") power_param.ToText(msg.AddMessage("power_param"));
  else if (type == "Exp") exp_param.ToText(msg.AddMessage("exp_param"));
  else if (type == "Log") log_param.ToText(msg.AddMessage("log_param"));
  else if (type == "ELU") elu_param.ToText(msg.AddMessage("elu_param"));
  else if (type == "Scale") scale_param.ToText(msg.AddMessage("scale_param"));
  else if (type == "Bias") bias_param.ToText(msg.AddMessage("bias_param"));
  else if (type == "Slice") slice_param.ToText(msg.AddMessage("slice_param"));
  else if (type == "Reshape") reshape_param.ToText(msg.AddMessage("reshape_param"));
  else if (type == "ArgMax") argmax_param.ToText(msg.AddMessage("argmax_param"));
  else if (type == "BatchNorm") batch_norm_param.ToText(msg.AddMessage("batch_norm_param"));
  else if (type == "MemoryData") memory_data_param.ToText(msg.AddMessage("memory_data_param"));
  else if (type == "Dropout") dropout_param.ToText(msg.AddMessage("dropout_param"));
  else if (type == "Eltwise") eltwise_param.ToText(msg.AddMessage("eltwise_param"));
  else if (type == "Concat") concat_param.ToText(msg.AddMessage("concat_param"));
  else if (type == "Softmax") softmax_param.ToText(msg.AddMessage("softmax_param"));
  else if (type == "Accuracy") accuracy_param.ToText(msg.AddMessage("accuracy_param"));
  else if (type == "Data") {
    data_param.ToText(msg.AddMessage("data_param"));
    transform_param.ToText(msg.AddMessage("transform_param"));
  } else if (type == "DummyData") {
    dummy_data_param.ToText(msg.AddMessage("dummy_data_param"));
  }
}

// --------------------------------------------------------------------- Net

NetParameter NetParameter::FromText(const TextMessage& msg) {
  NetParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "name") p.name = e.value.AsString();
    else if (e.name == "force_backward") p.force_backward = e.value.AsBool();
    else if (e.name == "layer" || e.name == "layers")
      p.layer.push_back(LayerParameter::FromText(e.value.message()));
    else UnknownField("NetParameter", e.name);
  }
  return p;
}

NetParameter NetParameter::FromString(std::string_view prototxt) {
  return FromText(TextMessage::Parse(prototxt));
}

NetParameter NetParameter::FromFile(const std::string& path) {
  return FromText(TextMessage::ParseFile(path));
}

void NetParameter::ToText(TextMessage& msg) const {
  msg.AddString("name", name);
  if (force_backward) msg.AddBool("force_backward", true);
  for (const auto& l : layer) l.ToText(msg.AddMessage("layer"));
}

std::string NetParameter::ToString() const {
  TextMessage msg;
  ToText(msg);
  return msg.Print();
}

// ------------------------------------------------------------------ Solver

SolverParameter SolverParameter::FromText(const TextMessage& msg) {
  SolverParameter p;
  for (const auto& e : msg.entries()) {
    if (e.name == "type") p.type = e.value.AsString();
    else if (e.name == "net") p.net = e.value.AsString();
    else if (e.name == "net_param")
      p.net_param = NetParameter::FromText(e.value.message());
    else if (e.name == "test_iter") p.test_iter = e.value.AsInt();
    else if (e.name == "test_interval") p.test_interval = e.value.AsInt();
    else if (e.name == "test_initialization") p.test_initialization = e.value.AsBool();
    else if (e.name == "base_lr") p.base_lr = e.value.AsDouble();
    else if (e.name == "display") p.display = e.value.AsInt();
    else if (e.name == "max_iter") p.max_iter = e.value.AsInt();
    else if (e.name == "iter_size") p.iter_size = e.value.AsInt();
    else if (e.name == "lr_policy") p.lr_policy = e.value.AsString();
    else if (e.name == "gamma") p.gamma = e.value.AsDouble();
    else if (e.name == "power") p.power = e.value.AsDouble();
    else if (e.name == "momentum") p.momentum = e.value.AsDouble();
    else if (e.name == "weight_decay") p.weight_decay = e.value.AsDouble();
    else if (e.name == "regularization_type") p.regularization_type = e.value.AsString();
    else if (e.name == "stepsize") p.stepsize = e.value.AsInt();
    else if (e.name == "stepvalue") p.stepvalue.push_back(e.value.AsInt());
    else if (e.name == "clip_gradients") p.clip_gradients = e.value.AsDouble();
    else if (e.name == "snapshot") p.snapshot = e.value.AsInt();
    else if (e.name == "snapshot_prefix") p.snapshot_prefix = e.value.AsString();
    else if (e.name == "snapshot_retain") p.snapshot_retain = e.value.AsInt();
    else if (e.name == "random_seed")
      p.random_seed = static_cast<std::uint64_t>(e.value.AsInt());
    else if (e.name == "delta") p.delta = e.value.AsDouble();
    else if (e.name == "rms_decay") p.rms_decay = e.value.AsDouble();
    else if (e.name == "momentum2") p.momentum2 = e.value.AsDouble();
    else UnknownField("SolverParameter", e.name);
  }
  return p;
}

SolverParameter SolverParameter::FromString(std::string_view prototxt) {
  return FromText(TextMessage::Parse(prototxt));
}

void SolverParameter::ToText(TextMessage& msg) const {
  msg.AddString("type", type);
  if (!net.empty()) msg.AddString("net", net);
  if (!net_param.layer.empty() || !net_param.name.empty()) {
    net_param.ToText(msg.AddMessage("net_param"));
  }
  if (test_iter != 0) msg.AddInt("test_iter", test_iter);
  if (test_interval != 0) msg.AddInt("test_interval", test_interval);
  if (!test_initialization) msg.AddBool("test_initialization", false);
  msg.AddDouble("base_lr", base_lr);
  if (display != 0) msg.AddInt("display", display);
  msg.AddInt("max_iter", max_iter);
  if (iter_size != 1) msg.AddInt("iter_size", iter_size);
  msg.AddString("lr_policy", lr_policy);
  if (gamma != 0.0) msg.AddDouble("gamma", gamma);
  if (power != 0.0) msg.AddDouble("power", power);
  if (momentum != 0.0) msg.AddDouble("momentum", momentum);
  if (weight_decay != 0.0) msg.AddDouble("weight_decay", weight_decay);
  if (regularization_type != "L2")
    msg.AddString("regularization_type", regularization_type);
  if (stepsize != 0) msg.AddInt("stepsize", stepsize);
  for (index_t sv : stepvalue) msg.AddInt("stepvalue", sv);
  if (clip_gradients >= 0.0) msg.AddDouble("clip_gradients", clip_gradients);
  if (snapshot != 0) msg.AddInt("snapshot", snapshot);
  if (!snapshot_prefix.empty()) msg.AddString("snapshot_prefix", snapshot_prefix);
  if (snapshot_retain != 3) msg.AddInt("snapshot_retain", snapshot_retain);
  msg.AddInt("random_seed", static_cast<index_t>(random_seed));
  if (delta != 1e-8) msg.AddDouble("delta", delta);
  if (rms_decay != 0.99) msg.AddDouble("rms_decay", rms_decay);
  if (momentum2 != 0.999) msg.AddDouble("momentum2", momentum2);
}

std::string SolverParameter::ToString() const {
  TextMessage msg;
  ToText(msg);
  return msg.Print();
}

}  // namespace cgdnn::proto
