// A protobuf *text-format* (prototxt) subset parser and printer — the
// configuration surface Caffe users touch. Supports the constructs Caffe
// prototxt files use: scalar fields (`name: "LeNet"`, `base_lr: 0.01`),
// repeated fields (multiple `layer { ... }` entries, `stepvalue: 1 2`-style
// repetition via repeated keys), nested messages with optional colon
// (`weight_filler { ... }`), enum tokens (`pool: MAX`), booleans, and `#`
// comments. Field order is preserved (layer order is semantically relevant).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cgdnn/core/common.hpp"

namespace cgdnn::proto {

class TextMessage;

/// One field value: either a scalar token (number / quoted string / enum /
/// bool, stored in raw token form) or a nested message.
class TextValue {
 public:
  static TextValue Scalar(std::string token, bool quoted);
  static TextValue Message(std::unique_ptr<TextMessage> msg);

  bool is_message() const { return msg_ != nullptr; }
  bool is_scalar() const { return msg_ == nullptr; }
  bool quoted() const { return quoted_; }

  /// Raw token (unquoted content for strings).
  const std::string& token() const;
  const TextMessage& message() const;
  TextMessage& message();

  // Typed conversions with validation; throw cgdnn::Error on mismatch.
  std::string AsString() const;
  double AsDouble() const;
  index_t AsInt() const;
  bool AsBool() const;

  TextValue(TextValue&&) noexcept;
  TextValue& operator=(TextValue&&) noexcept;
  ~TextValue();

 private:
  TextValue() = default;
  std::string token_;
  bool quoted_ = false;
  std::unique_ptr<TextMessage> msg_;
};

class TextMessage {
 public:
  struct Entry {
    std::string name;
    TextValue value;
  };

  /// Parses prototxt text into a message tree. Throws cgdnn::Error with a
  /// line/column diagnostic on malformed input.
  static TextMessage Parse(std::string_view text);
  /// Convenience: reads a file then parses it.
  static TextMessage ParseFile(const std::string& path);

  const std::vector<Entry>& entries() const { return entries_; }

  bool Has(std::string_view name) const;
  std::size_t Count(std::string_view name) const;
  /// First value for the field; throws if absent.
  const TextValue& Get(std::string_view name) const;
  /// All values for a repeated field (possibly empty).
  std::vector<const TextValue*> GetAll(std::string_view name) const;

  // Typed accessors with defaults.
  std::string GetString(std::string_view name, std::string def = "") const;
  double GetDouble(std::string_view name, double def = 0.0) const;
  index_t GetInt(std::string_view name, index_t def = 0) const;
  bool GetBool(std::string_view name, bool def = false) const;

  // Builders (used by the printers / round-trip tests).
  void AddScalar(std::string name, std::string token, bool quoted = false);
  void AddString(std::string name, std::string value);
  void AddDouble(std::string name, double value);
  void AddInt(std::string name, index_t value);
  void AddBool(std::string name, bool value);
  TextMessage& AddMessage(std::string name);

  /// Serializes back to prototxt (2-space indentation).
  std::string Print(int indent = 0) const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace cgdnn::proto
