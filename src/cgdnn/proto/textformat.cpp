#include "cgdnn/proto/textformat.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

namespace cgdnn::proto {

// ---------------------------------------------------------------- TextValue

TextValue TextValue::Scalar(std::string token, bool quoted) {
  TextValue v;
  v.token_ = std::move(token);
  v.quoted_ = quoted;
  return v;
}

TextValue TextValue::Message(std::unique_ptr<TextMessage> msg) {
  TextValue v;
  v.msg_ = std::move(msg);
  return v;
}

TextValue::TextValue(TextValue&&) noexcept = default;
TextValue& TextValue::operator=(TextValue&&) noexcept = default;
TextValue::~TextValue() = default;

const std::string& TextValue::token() const {
  CGDNN_CHECK(is_scalar()) << "field holds a message, not a scalar";
  return token_;
}

const TextMessage& TextValue::message() const {
  CGDNN_CHECK(is_message()) << "field holds a scalar, not a message";
  return *msg_;
}

TextMessage& TextValue::message() {
  CGDNN_CHECK(is_message()) << "field holds a scalar, not a message";
  return *msg_;
}

std::string TextValue::AsString() const { return token(); }

double TextValue::AsDouble() const {
  const std::string& t = token();
  try {
    std::size_t pos = 0;
    const double v = std::stod(t, &pos);
    CGDNN_CHECK_EQ(pos, t.size()) << "trailing characters in number '" << t << "'";
    return v;
  } catch (const std::invalid_argument&) {
    throw Error(__FILE__, __LINE__, "not a number: '" + t + "'");
  } catch (const std::out_of_range&) {
    throw Error(__FILE__, __LINE__, "number out of range: '" + t + "'");
  }
}

index_t TextValue::AsInt() const {
  const std::string& t = token();
  index_t v = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  CGDNN_CHECK(ec == std::errc{} && ptr == t.data() + t.size())
      << "not an integer: '" << t << "'";
  return v;
}

bool TextValue::AsBool() const {
  const std::string& t = token();
  if (t == "true" || t == "1") return true;
  if (t == "false" || t == "0") return false;
  throw Error(__FILE__, __LINE__, "not a boolean: '" + t + "'");
}

// ----------------------------------------------------------------- Lexer

namespace {

struct Token {
  enum class Kind { kIdent, kScalar, kString, kColon, kLBrace, kRBrace, kEnd };
  Kind kind;
  std::string text;
  int line;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token Next() {
    SkipSpaceAndComments();
    if (pos_ >= text_.size()) return {Token::Kind::kEnd, "", line_};
    const char c = text_[pos_];
    if (c == ':') {
      ++pos_;
      return {Token::Kind::kColon, ":", line_};
    }
    if (c == '{') {
      ++pos_;
      return {Token::Kind::kLBrace, "{", line_};
    }
    if (c == '}') {
      ++pos_;
      return {Token::Kind::kRBrace, "}", line_};
    }
    if (c == '"' || c == '\'') return LexString(c);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexIdentOrKeyword();
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
        c == '.') {
      return LexNumber();
    }
    Fail(std::string("unexpected character '") + c + "'");
  }

  [[noreturn]] void Fail(const std::string& msg) const {
    std::ostringstream os;
    os << "prototxt parse error at line " << line_ << ": " << msg;
    throw Error(__FILE__, __LINE__, os.str());
  }

  int line() const { return line_; }

 private:
  void SkipSpaceAndComments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c)) || c == ',' ||
                 c == ';') {
        ++pos_;  // commas/semicolons are permitted separators in text format
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Token LexString(char quote) {
    const int start_line = line_;
    ++pos_;  // consume quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          case '\'': c = '\''; break;
          default: Fail(std::string("unknown escape '\\") + esc + "'");
        }
      } else if (c == '\n') {
        Fail("unterminated string literal");
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) Fail("unterminated string literal");
    ++pos_;  // closing quote
    return {Token::Kind::kString, std::move(out), start_line};
  }

  Token LexIdentOrKeyword() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    return {Token::Kind::kIdent, std::string(text_.substr(start, pos_ - start)),
            line_};
  }

  Token LexNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+') {
        ++pos_;
      } else {
        break;
      }
    }
    return {Token::Kind::kScalar,
            std::string(text_.substr(start, pos_ - start)), line_};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) { Advance(); }

  TextMessage ParseMessageBody(bool top_level) {
    TextMessage msg;
    while (true) {
      if (cur_.kind == Token::Kind::kEnd) {
        if (!top_level) lexer_.Fail("unexpected end of input: missing '}'");
        return msg;
      }
      if (cur_.kind == Token::Kind::kRBrace) {
        if (top_level) lexer_.Fail("unexpected '}' at top level");
        return msg;
      }
      ParseField(msg);
    }
  }

 private:
  void Advance() { cur_ = lexer_.Next(); }

  void ParseField(TextMessage& msg) {
    if (cur_.kind != Token::Kind::kIdent) {
      lexer_.Fail("expected field name, got '" + cur_.text + "'");
    }
    std::string name = cur_.text;
    Advance();
    if (cur_.kind == Token::Kind::kColon) {
      Advance();
      if (cur_.kind == Token::Kind::kLBrace) {
        ParseNested(msg, std::move(name));
      } else if (cur_.kind == Token::Kind::kString) {
        msg.AddScalar(std::move(name), cur_.text, /*quoted=*/true);
        Advance();
      } else if (cur_.kind == Token::Kind::kScalar ||
                 cur_.kind == Token::Kind::kIdent) {
        msg.AddScalar(std::move(name), cur_.text, /*quoted=*/false);
        Advance();
      } else {
        lexer_.Fail("expected value after ':' for field '" + name + "'");
      }
    } else if (cur_.kind == Token::Kind::kLBrace) {
      ParseNested(msg, std::move(name));
    } else {
      lexer_.Fail("expected ':' or '{' after field name '" + name + "'");
    }
  }

  void ParseNested(TextMessage& msg, std::string name) {
    Advance();  // consume '{'
    auto nested = std::make_unique<TextMessage>(ParseMessageBody(false));
    if (cur_.kind != Token::Kind::kRBrace) {
      lexer_.Fail("expected '}' closing message '" + name + "'");
    }
    Advance();  // consume '}'
    TextMessage& slot = msg.AddMessage(std::move(name));
    slot = std::move(*nested);
  }

  Lexer lexer_;
  Token cur_{Token::Kind::kEnd, "", 0};
};

}  // namespace

// ---------------------------------------------------------------- Message

TextMessage TextMessage::Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseMessageBody(/*top_level=*/true);
}

TextMessage TextMessage::ParseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CGDNN_CHECK(in.good()) << "cannot open prototxt file: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str());
}

bool TextMessage::Has(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

std::size_t TextMessage::Count(std::string_view name) const {
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (e.name == name) ++n;
  }
  return n;
}

const TextValue& TextMessage::Get(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return e.value;
  }
  throw Error(__FILE__, __LINE__,
              "missing required field '" + std::string(name) + "'");
}

std::vector<const TextValue*> TextMessage::GetAll(std::string_view name) const {
  std::vector<const TextValue*> out;
  for (const Entry& e : entries_) {
    if (e.name == name) out.push_back(&e.value);
  }
  return out;
}

std::string TextMessage::GetString(std::string_view name,
                                   std::string def) const {
  return Has(name) ? Get(name).AsString() : std::move(def);
}

double TextMessage::GetDouble(std::string_view name, double def) const {
  return Has(name) ? Get(name).AsDouble() : def;
}

index_t TextMessage::GetInt(std::string_view name, index_t def) const {
  return Has(name) ? Get(name).AsInt() : def;
}

bool TextMessage::GetBool(std::string_view name, bool def) const {
  return Has(name) ? Get(name).AsBool() : def;
}

void TextMessage::AddScalar(std::string name, std::string token, bool quoted) {
  entries_.push_back({std::move(name), TextValue::Scalar(std::move(token), quoted)});
}

void TextMessage::AddString(std::string name, std::string value) {
  AddScalar(std::move(name), std::move(value), /*quoted=*/true);
}

void TextMessage::AddDouble(std::string name, double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  AddScalar(std::move(name), os.str());
}

void TextMessage::AddInt(std::string name, index_t value) {
  AddScalar(std::move(name), std::to_string(value));
}

void TextMessage::AddBool(std::string name, bool value) {
  AddScalar(std::move(name), value ? "true" : "false");
}

TextMessage& TextMessage::AddMessage(std::string name) {
  entries_.push_back(
      {std::move(name), TextValue::Message(std::make_unique<TextMessage>())});
  return entries_.back().value.message();
}

namespace {
void PrintQuoted(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\\': os << "\\\\"; break;
      case '"': os << "\\\""; break;
      default: os << c;
    }
  }
  os << '"';
}
}  // namespace

std::string TextMessage::Print(int indent) const {
  std::ostringstream os;
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  for (const Entry& e : entries_) {
    if (e.value.is_message()) {
      os << pad << e.name << " {\n"
         << e.value.message().Print(indent + 1) << pad << "}\n";
    } else if (e.value.quoted()) {
      os << pad << e.name << ": ";
      PrintQuoted(os, e.value.token());
      os << "\n";
    } else {
      os << pad << e.name << ": " << e.value.token() << "\n";
    }
  }
  return os.str();
}

}  // namespace cgdnn::proto
