#include "cgdnn/profile/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <numeric>
#include <sstream>

#include "cgdnn/trace/metrics.hpp"
#include "cgdnn/trace/trace.hpp"

namespace cgdnn::profile {

const char* LayerPhaseName(LayerPhase phase) {
  return phase == LayerPhase::kForward ? "forward" : "backward";
}

double PhaseStats::total_us() const {
  return std::accumulate(samples_us.begin(), samples_us.end(), 0.0);
}

double PhaseStats::mean_us() const {
  return samples_us.empty() ? 0.0 : total_us() / static_cast<double>(samples_us.size());
}

double PhaseStats::min_us() const {
  return samples_us.empty()
             ? 0.0
             : *std::min_element(samples_us.begin(), samples_us.end());
}

double PhaseStats::max_us() const {
  return samples_us.empty()
             ? 0.0
             : *std::max_element(samples_us.begin(), samples_us.end());
}

double PhaseStats::stddev_us() const {
  if (samples_us.size() < 2) return 0.0;
  const double mean = mean_us();
  double sq = 0.0;
  for (const double v : samples_us) sq += (v - mean) * (v - mean);
  return std::sqrt(sq / static_cast<double>(samples_us.size()));
}

double PhaseStats::p50_us() const {
  if (samples_us.empty()) return 0.0;
  std::vector<double> sorted = samples_us;
  const std::size_t mid = (sorted.size() - 1) / 2;
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(mid),
                   sorted.end());
  return sorted[mid];
}

void Profiler::Record(const std::string& layer, LayerPhase phase,
                      double micros) {
  if (std::find(order_.begin(), order_.end(), layer) == order_.end()) {
    order_.push_back(layer);
  }
  stats_[{layer, phase}].Add(micros);
  if (trace::MetricsActive()) {
    trace::MetricsRegistry::Default()
        .GetHistogram("layer." + layer + "." + LayerPhaseName(phase) + ".us")
        .Observe(micros);
  }
}

void Profiler::Reset() {
  stats_.clear();
  order_.clear();
}

const PhaseStats& Profiler::stats(const std::string& layer,
                                  LayerPhase phase) const {
  static const PhaseStats kEmpty{};
  const auto it = stats_.find({layer, phase});
  return it == stats_.end() ? kEmpty : it->second;
}

bool Profiler::has(const std::string& layer, LayerPhase phase) const {
  return stats_.contains({layer, phase});
}

double Profiler::TotalMeanUs() const {
  double total = 0.0;
  for (const auto& [key, st] : stats_) total += st.mean_us();
  return total;
}

std::string Profiler::Table() const {
  const double total = TotalMeanUs();
  std::ostringstream os;
  os << std::left << std::setw(16) << "layer" << std::setw(10) << "phase"
     << std::right << std::setw(14) << "mean_us" << std::setw(14) << "min_us"
     << std::setw(9) << "share" << "\n";
  for (const auto& layer : order_) {
    for (const LayerPhase phase : {LayerPhase::kForward, LayerPhase::kBackward}) {
      if (!has(layer, phase)) continue;
      const PhaseStats& st = stats(layer, phase);
      os << std::left << std::setw(16) << layer << std::setw(10)
         << LayerPhaseName(phase) << std::right << std::fixed
         << std::setprecision(1) << std::setw(14) << st.mean_us()
         << std::setw(14) << st.min_us() << std::setprecision(1)
         << std::setw(8) << (total > 0 ? 100.0 * st.mean_us() / total : 0.0)
         << "%\n";
    }
  }
  os << std::left << std::setw(26) << "TOTAL (per iteration)" << std::right
     << std::fixed << std::setprecision(1) << std::setw(14) << total << "\n";
  return os.str();
}

std::string Profiler::Csv() const {
  const double total = TotalMeanUs();
  std::ostringstream os;
  os << "layer,phase,mean_us,min_us,max_us,stddev_us,p50_us,total_us,count,"
        "share\n";
  for (const auto& layer : order_) {
    for (const LayerPhase phase : {LayerPhase::kForward, LayerPhase::kBackward}) {
      if (!has(layer, phase)) continue;
      const PhaseStats& st = stats(layer, phase);
      os << layer << ',' << LayerPhaseName(phase) << ',' << st.mean_us() << ','
         << st.min_us() << ',' << st.max_us() << ',' << st.stddev_us() << ','
         << st.p50_us() << ',' << st.total_us() << ',' << st.count() << ','
         << (total > 0 ? st.mean_us() / total : 0.0) << "\n";
    }
  }
  return os.str();
}

}  // namespace cgdnn::profile
