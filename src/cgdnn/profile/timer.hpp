// Monotonic wall-clock timing used by the per-layer instrumentation.
#pragma once

#include <chrono>

namespace cgdnn::profile {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed microseconds since construction / last Restart.
  double MicroSeconds() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }
  double MilliSeconds() const { return MicroSeconds() / 1e3; }
  double Seconds() const { return MicroSeconds() / 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cgdnn::profile
