// Per-layer, per-phase execution-time instrumentation.
//
// The paper's Figures 4/5/7/8 are built from exactly this data: absolute
// microseconds per (layer, forward|backward) and the share of each layer in
// the total iteration time. Net installs one Record() call around every
// layer invocation when a Profiler is attached.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cgdnn/core/common.hpp"

namespace cgdnn::profile {

enum class LayerPhase { kForward, kBackward };

const char* LayerPhaseName(LayerPhase phase);

struct PhaseStats {
  std::vector<double> samples_us;

  void Add(double us) { samples_us.push_back(us); }
  double total_us() const;
  double mean_us() const;
  double min_us() const;
  double max_us() const;
  /// Population standard deviation over the samples (0 when < 2 samples).
  double stddev_us() const;
  /// Median (lower-median for even sample counts).
  double p50_us() const;
  std::size_t count() const { return samples_us.size(); }
};

class Profiler {
 public:
  /// Adds one sample. Besides the in-memory PhaseStats, the sample feeds the
  /// process metrics registry (histogram `layer.<name>.<phase>.us`) whenever
  /// metrics collection is active, so --metrics-out dumps include the
  /// per-layer timing distributions.
  void Record(const std::string& layer, LayerPhase phase, double micros);
  void Reset();

  /// Layer names in first-recorded order (network order for forward).
  const std::vector<std::string>& layer_order() const { return order_; }
  /// Stats for a (layer, phase); returns empty stats when absent.
  const PhaseStats& stats(const std::string& layer, LayerPhase phase) const;
  bool has(const std::string& layer, LayerPhase phase) const;

  /// Sum of mean forward+backward time over all layers (one iteration).
  double TotalMeanUs() const;

  /// Figure 4/7-style table: one row per layer and phase with absolute mean
  /// microseconds and relative share of the iteration.
  std::string Table() const;
  /// CSV with header
  /// `layer,phase,mean_us,min_us,max_us,stddev_us,p50_us,total_us,count,share`.
  std::string Csv() const;

 private:
  using Key = std::pair<std::string, LayerPhase>;
  std::map<Key, PhaseStats> stats_;
  std::vector<std::string> order_;
};

}  // namespace cgdnn::profile
