#include "cgdnn/blas/im2col.hpp"

#include <cstring>

namespace cgdnn::blas {

template <typename Dtype>
void im2col(const Dtype* data_im, index_t channels, index_t height,
            index_t width, index_t kernel_h, index_t kernel_w, index_t pad_h,
            index_t pad_w, index_t stride_h, index_t stride_w,
            index_t dilation_h, index_t dilation_w, Dtype* data_col) {
  const index_t out_h =
      ConvOutSize(height, kernel_h, pad_h, stride_h, dilation_h);
  const index_t out_w =
      ConvOutSize(width, kernel_w, pad_w, stride_w, dilation_w);
  const index_t channel_size = height * width;
  for (index_t c = 0; c < channels; ++c, data_im += channel_size) {
    for (index_t kh = 0; kh < kernel_h; ++kh) {
      for (index_t kw = 0; kw < kernel_w; ++kw) {
        index_t in_y = kh * dilation_h - pad_h;
        for (index_t oy = 0; oy < out_h; ++oy, in_y += stride_h) {
          if (in_y < 0 || in_y >= height) {
            for (index_t ox = 0; ox < out_w; ++ox) *(data_col++) = 0;
            continue;
          }
          const Dtype* row = data_im + in_y * width;
          index_t in_x = kw * dilation_w - pad_w;
          for (index_t ox = 0; ox < out_w; ++ox, in_x += stride_w) {
            *(data_col++) =
                (in_x >= 0 && in_x < width) ? row[in_x] : Dtype(0);
          }
        }
      }
    }
  }
}

template <typename Dtype>
void col2im(const Dtype* data_col, index_t channels, index_t height,
            index_t width, index_t kernel_h, index_t kernel_w, index_t pad_h,
            index_t pad_w, index_t stride_h, index_t stride_w,
            index_t dilation_h, index_t dilation_w, Dtype* data_im) {
  std::memset(data_im, 0,
              static_cast<std::size_t>(channels * height * width) *
                  sizeof(Dtype));
  const index_t out_h =
      ConvOutSize(height, kernel_h, pad_h, stride_h, dilation_h);
  const index_t out_w =
      ConvOutSize(width, kernel_w, pad_w, stride_w, dilation_w);
  const index_t channel_size = height * width;
  for (index_t c = 0; c < channels; ++c, data_im += channel_size) {
    for (index_t kh = 0; kh < kernel_h; ++kh) {
      for (index_t kw = 0; kw < kernel_w; ++kw) {
        index_t in_y = kh * dilation_h - pad_h;
        for (index_t oy = 0; oy < out_h; ++oy, in_y += stride_h) {
          if (in_y < 0 || in_y >= height) {
            data_col += out_w;
            continue;
          }
          Dtype* row = data_im + in_y * width;
          index_t in_x = kw * dilation_w - pad_w;
          for (index_t ox = 0; ox < out_w; ++ox, in_x += stride_w) {
            if (in_x >= 0 && in_x < width) row[in_x] += *data_col;
            ++data_col;
          }
        }
      }
    }
  }
}

#define CGDNN_INSTANTIATE_IM2COL(Dtype)                                      \
  template void im2col<Dtype>(const Dtype*, index_t, index_t, index_t,       \
                              index_t, index_t, index_t, index_t, index_t,   \
                              index_t, index_t, index_t, Dtype*);            \
  template void col2im<Dtype>(const Dtype*, index_t, index_t, index_t,       \
                              index_t, index_t, index_t, index_t, index_t,   \
                              index_t, index_t, index_t, Dtype*)

CGDNN_INSTANTIATE_IM2COL(float);
CGDNN_INSTANTIATE_IM2COL(double);

}  // namespace cgdnn::blas
