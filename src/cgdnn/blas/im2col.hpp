// im2col / col2im: the lowering that turns a convolution into a GEMM, as in
// Caffe's ConvolutionLayer. For an input image of C x H x W and a kernel of
// kh x kw with padding/stride/dilation, im2col produces a matrix of
// (C*kh*kw) x (out_h*out_w) where column (y, x) contains the receptive field
// of output pixel (y, x).
#pragma once

#include "cgdnn/core/common.hpp"

namespace cgdnn::blas {

/// Output spatial extent for one convolved/pooled dimension.
inline index_t ConvOutSize(index_t in, index_t kernel, index_t pad,
                           index_t stride, index_t dilation) {
  const index_t eff_kernel = dilation * (kernel - 1) + 1;
  return (in + 2 * pad - eff_kernel) / stride + 1;
}

template <typename Dtype>
void im2col(const Dtype* data_im, index_t channels, index_t height,
            index_t width, index_t kernel_h, index_t kernel_w, index_t pad_h,
            index_t pad_w, index_t stride_h, index_t stride_w,
            index_t dilation_h, index_t dilation_w, Dtype* data_col);

template <typename Dtype>
void col2im(const Dtype* data_col, index_t channels, index_t height,
            index_t width, index_t kernel_h, index_t kernel_w, index_t pad_h,
            index_t pad_w, index_t stride_h, index_t stride_w,
            index_t dilation_h, index_t dilation_w, Dtype* data_im);

}  // namespace cgdnn::blas
