// Direct (implicit-im2col) convolution kernels, the planner's alternative to
// the materialized im2col + GEMM path.
//
// Instead of lowering a sample to a (channels*kh*kw) x out_spatial column
// matrix in memory and running GEMM over it, these kernels gather the same
// column values straight from the input image while packing — the "col"
// matrix exists only virtually. For small-channel / small-kernel shapes
// (cifar conv1: 3 input channels lower to a 25x-larger col matrix) this
// removes the col write+read round-trip entirely and keeps the image
// resident in L1/L2; the planner's cost model decides per shape whether
// that beats the materialized path.
//
// Bit-identity contract (docs/perf.md): both strategies run the SAME kernel
// symbols from gemm_kernels.hpp — the packed path feeds MicroKernel pack
// buffers that are byte-identical to what PackBSlab would produce from a
// materialized col matrix, and the small path runs AxpyRowKernel /
// DotRowKernel in the same per-element ascending-k order as SmallGemmNN /
// SmallGemmNT. A planner strategy switch therefore never changes a single
// output bit, which the planned-vs-unplanned thread-sweep tests enforce.
//
// Scope: group == 1 and dilation == 1 (every conv in the paper's evaluation
// networks). The backward-bottom pass stays on the materialized path — it
// *writes* the col matrix (W^T * top_diff) before col2im, so there is
// nothing to gather implicitly.
#pragma once

#include "cgdnn/core/common.hpp"

namespace cgdnn::blas {

/// One sample's conv geometry, shared by the direct kernels and the
/// planner's cost model.
struct ConvGeom {
  index_t channels = 0, height = 0, width = 0;
  index_t kernel_h = 0, kernel_w = 0;
  index_t pad_h = 0, pad_w = 0;
  index_t stride_h = 1, stride_w = 1;
  index_t out_h = 0, out_w = 0;

  index_t out_spatial() const { return out_h * out_w; }
  index_t kernel_dim() const { return channels * kernel_h * kernel_w; }
  index_t bottom_dim() const { return channels * height * width; }
};

/// True when the direct kernels cover this shape (group == 1, no dilation).
bool DirectConvSupported(const ConvGeom& g, index_t group, index_t dilation);

/// top[num_output x out_spatial] = weights[num_output x kernel_dim] *
/// implicit_col(image); bit-identical to
///   im2col(image, col); gemm(kNo, kNo, num_output, out_spatial, kernel_dim,
///                            1, weights, col, 0, top)
template <typename Dtype>
void DirectConvForward(const ConvGeom& g, index_t num_output,
                       const Dtype* weights, const Dtype* image, Dtype* top);

/// weight_diff[num_output x kernel_dim] += top_diff[num_output x out_spatial]
/// * implicit_col(image)^T; bit-identical to
///   im2col(image, col); gemm(kNo, kTrans, num_output, kernel_dim,
///                            out_spatial, 1, top_diff, col, 1, weight_diff)
template <typename Dtype>
void DirectConvBackwardWeights(const ConvGeom& g, index_t num_output,
                               const Dtype* top_diff, const Dtype* image,
                               Dtype* weight_diff);

}  // namespace cgdnn::blas
