// Implicit-im2col convolution kernels (see direct_conv.hpp for the
// bit-identity contract with the materialized im2col + GEMM path).
#include "cgdnn/blas/direct_conv.hpp"

#include <algorithm>

#include "cgdnn/blas/blas.hpp"
#include "cgdnn/blas/gemm_kernels.hpp"
#include "cgdnn/core/arena.hpp"

namespace cgdnn::blas {

namespace {

/// Gathers elements of the virtual col matrix. Row r of col corresponds to
/// (channel, kernel-row, kernel-col) = decompose(r); column `pos` to output
/// position (oh, ow) = (pos / out_w, pos % out_w). The decompositions are
/// precomputed into arena tables once per sample call so the hot gather is
/// table lookups + bounds checks — no divisions.
template <typename Dtype>
class ImplicitCol {
 public:
  ImplicitCol(const ConvGeom& g, const Dtype* image, ThreadArena& arena)
      : g_(g), image_(image) {
    const index_t n = g.out_spatial();
    const index_t k = g.kernel_dim();
    iy0_ = static_cast<index_t*>(
        arena.Allocate(static_cast<std::size_t>(n) * sizeof(index_t)));
    ix0_ = static_cast<index_t*>(
        arena.Allocate(static_cast<std::size_t>(n) * sizeof(index_t)));
    row_c_ = static_cast<index_t*>(
        arena.Allocate(static_cast<std::size_t>(k) * sizeof(index_t)));
    row_kh_ = static_cast<index_t*>(
        arena.Allocate(static_cast<std::size_t>(k) * sizeof(index_t)));
    row_kw_ = static_cast<index_t*>(
        arena.Allocate(static_cast<std::size_t>(k) * sizeof(index_t)));
    for (index_t pos = 0; pos < n; ++pos) {
      iy0_[pos] = (pos / g.out_w) * g.stride_h - g.pad_h;
      ix0_[pos] = (pos % g.out_w) * g.stride_w - g.pad_w;
    }
    for (index_t r = 0; r < k; ++r) {
      row_c_[r] = r / (g.kernel_h * g.kernel_w);
      row_kh_[r] = r / g.kernel_w % g.kernel_h;
      row_kw_[r] = r % g.kernel_w;
    }
  }

  /// col(r, pos), zero outside the padded image.
  Dtype At(index_t r, index_t pos) const {
    const index_t ih = iy0_[pos] + row_kh_[r];
    const index_t iw = ix0_[pos] + row_kw_[r];
    if (ih < 0 || ih >= g_.height || iw < 0 || iw >= g_.width) {
      return Dtype(0);
    }
    return image_[(row_c_[r] * g_.height + ih) * g_.width + iw];
  }

  /// out[0..len) = col(r, pos0..pos0+len); the values im2col would have
  /// stored in that row segment.
  void GatherRow(index_t r, index_t pos0, index_t len, Dtype* out) const {
    const index_t kh = row_kh_[r];
    const index_t kw = row_kw_[r];
    const Dtype* plane = image_ + row_c_[r] * g_.height * g_.width;
    for (index_t i = 0; i < len; ++i) {
      const index_t pos = pos0 + i;
      const index_t ih = iy0_[pos] + kh;
      const index_t iw = ix0_[pos] + kw;
      out[i] = (ih < 0 || ih >= g_.height || iw < 0 || iw >= g_.width)
                   ? Dtype(0)
                   : plane[ih * g_.width + iw];
    }
  }

 private:
  const ConvGeom& g_;
  const Dtype* image_;
  index_t* iy0_ = nullptr;   // per output position: oh*stride_h - pad_h
  index_t* ix0_ = nullptr;   // per output position: ow*stride_w - pad_w
  index_t* row_c_ = nullptr;  // per col row: input channel
  index_t* row_kh_ = nullptr;  // per col row: kernel row offset
  index_t* row_kw_ = nullptr;  // per col row: kernel col offset
};

template <typename Dtype>
Dtype* AllocPack(ThreadArena& arena, index_t panels, index_t tile) {
  return static_cast<Dtype*>(arena.Allocate(
      static_cast<std::size_t>(kernels::RoundUpTo(panels, tile) *
                               GemmBlocking<Dtype>::kKC) *
      sizeof(Dtype)));
}

}  // namespace

bool DirectConvSupported(const ConvGeom& g, index_t group, index_t dilation) {
  return group == 1 && dilation == 1 && g.out_spatial() > 0 &&
         g.kernel_dim() > 0;
}

template <typename Dtype>
void DirectConvForward(const ConvGeom& g, index_t num_output,
                       const Dtype* weights, const Dtype* image, Dtype* top) {
  using B = GemmBlocking<Dtype>;
  const index_t m = num_output;
  const index_t n = g.out_spatial();
  const index_t k = g.kernel_dim();
  ThreadArena& arena = kernels::PackArena();
  arena.ResetScope();
  const ImplicitCol<Dtype> col(g, image, arena);

  if (kernels::UsePackedPath<Dtype>(n, k)) {
    Dtype* packa = AllocPack<Dtype>(arena, B::kMC, B::kMR);
    Dtype* packb = AllocPack<Dtype>(arena, B::kNC, B::kNR);
    kernels::PackedGemmLoop(
        m, n, k, Dtype(0), top, n,
        [&](index_t i0, index_t p0, index_t mc, index_t kc, Dtype* pack) {
          kernels::PackASlab(false, weights, k, i0, p0, mc, kc, Dtype(1),
                             pack);
        },
        // Pack op(B) slabs straight from the image: panel layout and values
        // match PackBSlab(false, col_matrix, n, ...) element for element, so
        // the MicroKernel sees byte-identical inputs.
        [&](index_t p0, index_t j0, index_t kc, index_t nc, Dtype* pack) {
          constexpr index_t NR = GemmBlocking<Dtype>::kNR;
          for (index_t jr = 0; jr < nc; jr += NR) {
            const index_t nr = std::min(NR, nc - jr);
            for (index_t kk = 0; kk < kc; ++kk) {
              col.GatherRow(p0 + kk, j0 + jr, nr, pack);
              for (index_t j = nr; j < NR; ++j) pack[j] = Dtype(0);
              pack += NR;
            }
          }
        },
        packa, packb);
    return;
  }

  // Small path: same per-element ascending-kk accumulation chains as
  // SmallGemmNN — the i/kk loops are interchanged so each gathered row is
  // reused across all m output rows, which permutes only whole-row updates,
  // never the order of adds into one element.
  kernels::ScaleC(m, n, Dtype(0), top);
  auto* rowbuf = static_cast<Dtype*>(
      arena.Allocate(static_cast<std::size_t>(n) * sizeof(Dtype)));
  for (index_t k0 = 0; k0 < k; k0 += kernels::kSmallGemmBlockK) {
    const index_t k1 = std::min(k0 + kernels::kSmallGemmBlockK, k);
    for (index_t kk = k0; kk < k1; ++kk) {
      col.GatherRow(kk, 0, n, rowbuf);
      for (index_t i = 0; i < m; ++i) {
        kernels::AxpyRowKernel(n, Dtype(1) * weights[i * k + kk], rowbuf,
                               top + i * n);
      }
    }
  }
}

template <typename Dtype>
void DirectConvBackwardWeights(const ConvGeom& g, index_t num_output,
                               const Dtype* top_diff, const Dtype* image,
                               Dtype* weight_diff) {
  using B = GemmBlocking<Dtype>;
  const index_t m = num_output;
  const index_t n = g.kernel_dim();
  const index_t k = g.out_spatial();
  ThreadArena& arena = kernels::PackArena();
  arena.ResetScope();
  const ImplicitCol<Dtype> col(g, image, arena);

  if (kernels::UsePackedPath<Dtype>(n, k)) {
    Dtype* packa = AllocPack<Dtype>(arena, B::kMC, B::kMR);
    Dtype* packb = AllocPack<Dtype>(arena, B::kNC, B::kNR);
    kernels::PackedGemmLoop(
        m, n, k, Dtype(1), weight_diff, n,
        [&](index_t i0, index_t p0, index_t mc, index_t kc, Dtype* pack) {
          kernels::PackASlab(false, top_diff, k, i0, p0, mc, kc, Dtype(1),
                             pack);
        },
        // op(B)(kk, j) = col^T(kk, j) = col(j0+jr+j, p0+kk): matches
        // PackBSlab(true, col_matrix, out_spatial, ...) element for element.
        [&](index_t p0, index_t j0, index_t kc, index_t nc, Dtype* pack) {
          constexpr index_t NR = GemmBlocking<Dtype>::kNR;
          for (index_t jr = 0; jr < nc; jr += NR) {
            const index_t nr = std::min(NR, nc - jr);
            for (index_t kk = 0; kk < kc; ++kk) {
              for (index_t j = 0; j < nr; ++j) {
                pack[j] = col.At(j0 + jr + j, p0 + kk);
              }
              for (index_t j = nr; j < NR; ++j) pack[j] = Dtype(0);
              pack += NR;
            }
          }
        },
        packa, packb);
    return;
  }

  // Small path: SmallGemmNT computes each element's dot with one
  // DotRowKernel call and one `+=` — the i/j loop interchange (gathered row
  // reused across output rows) cannot reorder anything within an element.
  auto* rowbuf = static_cast<Dtype*>(
      arena.Allocate(static_cast<std::size_t>(k) * sizeof(Dtype)));
  for (index_t j = 0; j < n; ++j) {
    col.GatherRow(j, 0, k, rowbuf);
    for (index_t i = 0; i < m; ++i) {
      weight_diff[i * n + j] +=
          Dtype(1) * kernels::DotRowKernel(k, top_diff + i * k, rowbuf);
    }
  }
}

#define CGDNN_INSTANTIATE_DIRECT_CONV(Dtype)                               \
  template void DirectConvForward<Dtype>(const ConvGeom&, index_t,         \
                                         const Dtype*, const Dtype*,       \
                                         Dtype*);                          \
  template void DirectConvBackwardWeights<Dtype>(                          \
      const ConvGeom&, index_t, const Dtype*, const Dtype*, Dtype*)

CGDNN_INSTANTIATE_DIRECT_CONV(float);
CGDNN_INSTANTIATE_DIRECT_CONV(double);

}  // namespace cgdnn::blas
