// Packed, register-tiled GEMM engine (BLIS-style, docs/perf.md).
//
// Large shapes take the packed path: panels of op(A) (MC x KC, alpha folded
// in) and op(B) (KC x NC) are packed into 64-byte-aligned per-thread scratch
// — the pack routines absorb all four transpose combinations, so there is
// exactly ONE inner kernel. The microkernel accumulates an MR x NR register
// tile over a KC panel with a branch-free, `omp simd`-vectorized loop; beta
// is folded into the tile store of the first KC panel, so no separate sweep
// over C remains. Edge tiles are zero-padded during packing, keeping the
// kernel free of remainder branches.
//
// Small shapes (op(B) volume under kGemmPackMinWork) skip packing and run
// branch-free naive loop nests: for LeNet-sized layers the pack traffic
// would dominate the O(mnk) work. Both paths accumulate each C element in
// ascending-k order with per-element chains, so results are independent of
// how callers partition rows — the bit-identity the coarse-grain
// inner-product path relies on (and FLOP counts/timings are value-
// independent: there are no data-dependent skips anywhere).
#include <algorithm>

#include "cgdnn/blas/blas.hpp"
#include "cgdnn/core/arena.hpp"

namespace cgdnn::blas {

namespace {

constexpr index_t RoundUp(index_t v, index_t to) { return (v + to - 1) / to * to; }

/// One grow-only pack arena per OS thread: a single allocation on the
/// thread's first packed GEMM (sizes are compile-time constants), then
/// reused across calls, layers and samples — no malloc inside parallel
/// regions after warm-up. Distinct from parallel::PrivatizationPool's
/// arenas, whose scope is reset per layer by serial code.
ThreadArena& PackArena() {
  static thread_local ThreadArena arena;
  return arena;
}

template <typename Dtype>
void ScaleC(index_t m, index_t n, Dtype beta, Dtype* c) {
  const index_t total = m * n;
  if (beta == Dtype(0)) {
    std::fill(c, c + total, Dtype(0));
  } else if (beta != Dtype(1)) {
    for (index_t i = 0; i < total; ++i) c[i] *= beta;
  }
}

// ---- packed path -----------------------------------------------------------

/// Packs the mc x kc slab of op(A) starting at (row i0, depth p0) into
/// MR-wide row panels: panel p holds rows [p*MR, p*MR+MR), laid out kk-major
/// with MR contiguous values per kk. alpha is folded in here; rows past mc
/// are zero-padded so the microkernel never branches on the row remainder.
template <typename Dtype>
void PackASlab(bool trans, const Dtype* a, index_t lda, index_t i0,
               index_t p0, index_t mc, index_t kc, Dtype alpha, Dtype* pack) {
  constexpr index_t MR = GemmBlocking<Dtype>::kMR;
  for (index_t ir = 0; ir < mc; ir += MR) {
    const index_t mr = std::min(MR, mc - ir);
    for (index_t kk = 0; kk < kc; ++kk) {
      if (trans) {
        // op(A)(i, kk) = a[kk * lda + i]
        const Dtype* src = a + (p0 + kk) * lda + i0 + ir;
        for (index_t i = 0; i < mr; ++i) pack[i] = alpha * src[i];
      } else {
        // op(A)(i, kk) = a[i * lda + kk]
        const Dtype* src = a + (i0 + ir) * lda + p0 + kk;
        for (index_t i = 0; i < mr; ++i) pack[i] = alpha * src[i * lda];
      }
      for (index_t i = mr; i < MR; ++i) pack[i] = Dtype(0);
      pack += MR;
    }
  }
}

/// Packs the kc x nc slab of op(B) starting at (depth p0, col j0) into
/// NR-wide column panels (kk-major, NR contiguous values per kk), columns
/// past nc zero-padded.
template <typename Dtype>
void PackBSlab(bool trans, const Dtype* b, index_t ldb, index_t p0,
               index_t j0, index_t kc, index_t nc, Dtype* pack) {
  constexpr index_t NR = GemmBlocking<Dtype>::kNR;
  for (index_t jr = 0; jr < nc; jr += NR) {
    const index_t nr = std::min(NR, nc - jr);
    for (index_t kk = 0; kk < kc; ++kk) {
      if (trans) {
        // op(B)(kk, j) = b[j * ldb + kk]
        const Dtype* src = b + (j0 + jr) * ldb + p0 + kk;
        for (index_t j = 0; j < nr; ++j) pack[j] = src[j * ldb];
      } else {
        // op(B)(kk, j) = b[kk * ldb + j]
        const Dtype* src = b + (p0 + kk) * ldb + j0 + jr;
        for (index_t j = 0; j < nr; ++j) pack[j] = src[j];
      }
      for (index_t j = nr; j < NR; ++j) pack[j] = Dtype(0);
      pack += NR;
    }
  }
}

/// The single inner kernel: accumulates op(A)op(B) over one KC panel into an
/// MR x NR register tile, then merges the tile into C. `beta` applies to
/// the destination exactly once per (jc, C-tile) — the caller passes the
/// user's beta for the first KC panel and 1 afterwards. The kk loop is
/// branch-free; edge handling happens only in the store, on padded tiles.
template <typename Dtype>
void MicroKernel(index_t kc, const Dtype* __restrict ap,
                 const Dtype* __restrict bp, Dtype* __restrict c, index_t ldc,
                 index_t mr, index_t nr, Dtype beta) {
  constexpr index_t MR = GemmBlocking<Dtype>::kMR;
  constexpr index_t NR = GemmBlocking<Dtype>::kNR;
  Dtype acc[MR * NR] = {};
  for (index_t kk = 0; kk < kc; ++kk) {
    const Dtype* a = ap + kk * MR;
    const Dtype* b = bp + kk * NR;
    for (index_t i = 0; i < MR; ++i) {
      const Dtype ai = a[i];
#pragma omp simd
      for (index_t j = 0; j < NR; ++j) acc[i * NR + j] += ai * b[j];
    }
  }
  if (mr == MR && nr == NR) {
    if (beta == Dtype(1)) {
      for (index_t i = 0; i < MR; ++i) {
        Dtype* ci = c + i * ldc;
#pragma omp simd
        for (index_t j = 0; j < NR; ++j) ci[j] += acc[i * NR + j];
      }
    } else if (beta == Dtype(0)) {
      for (index_t i = 0; i < MR; ++i) {
        Dtype* ci = c + i * ldc;
#pragma omp simd
        for (index_t j = 0; j < NR; ++j) ci[j] = acc[i * NR + j];
      }
    } else {
      for (index_t i = 0; i < MR; ++i) {
        Dtype* ci = c + i * ldc;
#pragma omp simd
        for (index_t j = 0; j < NR; ++j) ci[j] = beta * ci[j] + acc[i * NR + j];
      }
    }
  } else {
    for (index_t i = 0; i < mr; ++i) {
      Dtype* ci = c + i * ldc;
      for (index_t j = 0; j < nr; ++j) {
        if (beta == Dtype(1)) {
          ci[j] += acc[i * NR + j];
        } else if (beta == Dtype(0)) {
          ci[j] = acc[i * NR + j];
        } else {
          ci[j] = beta * ci[j] + acc[i * NR + j];
        }
      }
    }
  }
}

template <typename Dtype>
void PackedGemm(bool trans_a, bool trans_b, index_t m, index_t n, index_t k,
                Dtype alpha, const Dtype* a, const Dtype* b, Dtype beta,
                Dtype* c) {
  using B = GemmBlocking<Dtype>;
  const index_t lda = trans_a ? m : k;
  const index_t ldb = trans_b ? k : n;
  ThreadArena& arena = PackArena();
  arena.ResetScope();
  auto* packa = static_cast<Dtype*>(arena.Allocate(
      static_cast<std::size_t>(RoundUp(B::kMC, B::kMR) * B::kKC) *
      sizeof(Dtype)));
  auto* packb = static_cast<Dtype*>(arena.Allocate(
      static_cast<std::size_t>(RoundUp(B::kNC, B::kNR) * B::kKC) *
      sizeof(Dtype)));
  for (index_t jc = 0; jc < n; jc += B::kNC) {
    const index_t nc = std::min(B::kNC, n - jc);
    for (index_t pc = 0; pc < k; pc += B::kKC) {
      const index_t kc = std::min(B::kKC, k - pc);
      const Dtype beta_panel = pc == 0 ? beta : Dtype(1);
      PackBSlab(trans_b, b, ldb, pc, jc, kc, nc, packb);
      for (index_t ic = 0; ic < m; ic += B::kMC) {
        const index_t mc = std::min(B::kMC, m - ic);
        PackASlab(trans_a, a, lda, ic, pc, mc, kc, alpha, packa);
        for (index_t jr = 0; jr < nc; jr += B::kNR) {
          const index_t nr = std::min(B::kNR, nc - jr);
          for (index_t ir = 0; ir < mc; ir += B::kMR) {
            const index_t mr = std::min(B::kMR, mc - ir);
            MicroKernel(kc, packa + ir * kc, packb + jr * kc,
                        c + (ic + ir) * n + jc + jr, n, mr, nr, beta_panel);
          }
        }
      }
    }
  }
}

// ---- small path ------------------------------------------------------------
//
// Branch-free naive loop nests (the pre-packing kernels, minus their
// value-dependent zero skips), run after ScaleC. Loop orders keep the
// innermost loop over contiguous C and, when possible, contiguous A/B;
// K-blocking keeps the NN working set inside L1/L2.

constexpr index_t kBlockK = 256;

template <typename Dtype>
void SmallGemmNN(index_t m, index_t n, index_t k, Dtype alpha, const Dtype* a,
                 const Dtype* b, Dtype* c) {
  for (index_t k0 = 0; k0 < k; k0 += kBlockK) {
    const index_t k1 = std::min(k0 + kBlockK, k);
    for (index_t i = 0; i < m; ++i) {
      Dtype* ci = c + i * n;
      for (index_t kk = k0; kk < k1; ++kk) {
        const Dtype aik = alpha * a[i * k + kk];
        const Dtype* bk = b + kk * n;
#pragma omp simd
        for (index_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
      }
    }
  }
}

template <typename Dtype>
void SmallGemmNT(index_t m, index_t n, index_t k, Dtype alpha, const Dtype* a,
                 const Dtype* b, Dtype* c) {
  for (index_t i = 0; i < m; ++i) {
    const Dtype* ai = a + i * k;
    Dtype* ci = c + i * n;
    for (index_t j = 0; j < n; ++j) {
      const Dtype* bj = b + j * k;
      Dtype sum = 0;
#pragma omp simd reduction(+ : sum)
      for (index_t kk = 0; kk < k; ++kk) sum += ai[kk] * bj[kk];
      ci[j] += alpha * sum;
    }
  }
}

template <typename Dtype>
void SmallGemmTN(index_t m, index_t n, index_t k, Dtype alpha, const Dtype* a,
                 const Dtype* b, Dtype* c) {
  // op(A)(i,kk) = a[kk*m + i]
  for (index_t kk = 0; kk < k; ++kk) {
    const Dtype* ak = a + kk * m;
    const Dtype* bk = b + kk * n;
    for (index_t i = 0; i < m; ++i) {
      const Dtype aik = alpha * ak[i];
      Dtype* ci = c + i * n;
#pragma omp simd
      for (index_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

template <typename Dtype>
void SmallGemmTT(index_t m, index_t n, index_t k, Dtype alpha, const Dtype* a,
                 const Dtype* b, Dtype* c) {
  // op(A)(i,kk) = a[kk*m + i]; op(B)(kk,j) = b[j*k + kk]
  for (index_t i = 0; i < m; ++i) {
    Dtype* ci = c + i * n;
    for (index_t j = 0; j < n; ++j) {
      const Dtype* bj = b + j * k;
      Dtype sum = 0;
      for (index_t kk = 0; kk < k; ++kk) sum += a[kk * m + i] * bj[kk];
      ci[j] += alpha * sum;
    }
  }
}

/// m is deliberately not consulted: a row-partitioned call must take the
/// same branch as the full-batch call (see kGemmPackMinWork).
template <typename Dtype>
bool UsePackedPath(index_t n, index_t k) {
  return n >= GemmBlocking<Dtype>::kNR && n * k >= kGemmPackMinWork;
}

}  // namespace

std::size_t gemm_pack_scratch_bytes() { return PackArena().capacity_bytes(); }

template <typename Dtype>
void gemm(Transpose trans_a, Transpose trans_b, index_t m, index_t n,
          index_t k, Dtype alpha, const Dtype* a, const Dtype* b, Dtype beta,
          Dtype* c) {
  CGDNN_CHECK_GE(m, 0);
  CGDNN_CHECK_GE(n, 0);
  CGDNN_CHECK_GE(k, 0);
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == Dtype(0)) {
    ScaleC(m, n, beta, c);
    return;
  }
  const bool ta = trans_a == Transpose::kTrans;
  const bool tb = trans_b == Transpose::kTrans;
  if (UsePackedPath<Dtype>(n, k)) {
    PackedGemm(ta, tb, m, n, k, alpha, a, b, beta, c);
    return;
  }
  ScaleC(m, n, beta, c);
  if (!ta && !tb) {
    SmallGemmNN(m, n, k, alpha, a, b, c);
  } else if (!ta && tb) {
    SmallGemmNT(m, n, k, alpha, a, b, c);
  } else if (ta && !tb) {
    SmallGemmTN(m, n, k, alpha, a, b, c);
  } else {
    SmallGemmTT(m, n, k, alpha, a, b, c);
  }
}

template <typename Dtype>
void gemv(Transpose trans_a, index_t m, index_t n, Dtype alpha,
          const Dtype* a, const Dtype* x, Dtype beta, Dtype* y) {
  // A is m x n row-major; y has length m (no trans) or n (trans).
  const index_t ylen = trans_a == Transpose::kNo ? m : n;
  if (beta == Dtype(0)) {
    std::fill(y, y + ylen, Dtype(0));
  } else if (beta != Dtype(1)) {
    for (index_t i = 0; i < ylen; ++i) y[i] *= beta;
  }
  if (alpha == Dtype(0) || m == 0 || n == 0) return;
  if (trans_a == Transpose::kNo) {
    for (index_t i = 0; i < m; ++i) {
      const Dtype* ai = a + i * n;
      Dtype sum = 0;
#pragma omp simd reduction(+ : sum)
      for (index_t j = 0; j < n; ++j) sum += ai[j] * x[j];
      y[i] += alpha * sum;
    }
  } else {
    for (index_t i = 0; i < m; ++i) {
      // No zero-skip on x[i]: FLOP counts and timings must stay
      // input-independent (the paper's instrumentation assumption).
      const Dtype axi = alpha * x[i];
      const Dtype* ai = a + i * n;
#pragma omp simd
      for (index_t j = 0; j < n; ++j) y[j] += axi * ai[j];
    }
  }
}

template <typename Dtype>
void ger(index_t m, index_t n, Dtype alpha, const Dtype* x, const Dtype* y,
         Dtype* a) {
  for (index_t i = 0; i < m; ++i) {
    // No zero-skip on x[i] — see gemv.
    const Dtype axi = alpha * x[i];
    Dtype* ai = a + i * n;
#pragma omp simd
    for (index_t j = 0; j < n; ++j) ai[j] += axi * y[j];
  }
}

#define CGDNN_INSTANTIATE_GEMM(Dtype)                                         \
  template void gemm<Dtype>(Transpose, Transpose, index_t, index_t, index_t, \
                            Dtype, const Dtype*, const Dtype*, Dtype,        \
                            Dtype*);                                         \
  template void gemv<Dtype>(Transpose, index_t, index_t, Dtype,              \
                            const Dtype*, const Dtype*, Dtype, Dtype*);      \
  template void ger<Dtype>(index_t, index_t, Dtype, const Dtype*,            \
                           const Dtype*, Dtype*)

CGDNN_INSTANTIATE_GEMM(float);
CGDNN_INSTANTIATE_GEMM(double);

}  // namespace cgdnn::blas
