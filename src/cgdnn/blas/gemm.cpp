#include <algorithm>

#include "cgdnn/blas/blas.hpp"

namespace cgdnn::blas {

namespace {

// Loop orders are chosen so the innermost loop runs over contiguous C and,
// when possible, contiguous A/B — the compiler vectorizes these with -O2.
// K-blocking keeps the working set of the NN kernel inside L1/L2 for the
// matrix shapes produced by im2col-based convolutions.
constexpr index_t kBlockK = 256;

template <typename Dtype>
void ScaleC(index_t m, index_t n, Dtype beta, Dtype* c) {
  const index_t total = m * n;
  if (beta == Dtype(0)) {
    std::fill(c, c + total, Dtype(0));
  } else if (beta != Dtype(1)) {
    for (index_t i = 0; i < total; ++i) c[i] *= beta;
  }
}

template <typename Dtype>
void GemmNN(index_t m, index_t n, index_t k, Dtype alpha, const Dtype* a,
            const Dtype* b, Dtype* c) {
  for (index_t k0 = 0; k0 < k; k0 += kBlockK) {
    const index_t k1 = std::min(k0 + kBlockK, k);
    for (index_t i = 0; i < m; ++i) {
      Dtype* ci = c + i * n;
      for (index_t kk = k0; kk < k1; ++kk) {
        const Dtype aik = alpha * a[i * k + kk];
        if (aik == Dtype(0)) continue;
        const Dtype* bk = b + kk * n;
        for (index_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
      }
    }
  }
}

template <typename Dtype>
void GemmNT(index_t m, index_t n, index_t k, Dtype alpha, const Dtype* a,
            const Dtype* b, Dtype* c) {
  for (index_t i = 0; i < m; ++i) {
    const Dtype* ai = a + i * k;
    Dtype* ci = c + i * n;
    for (index_t j = 0; j < n; ++j) {
      const Dtype* bj = b + j * k;
      Dtype sum = 0;
      for (index_t kk = 0; kk < k; ++kk) sum += ai[kk] * bj[kk];
      ci[j] += alpha * sum;
    }
  }
}

template <typename Dtype>
void GemmTN(index_t m, index_t n, index_t k, Dtype alpha, const Dtype* a,
            const Dtype* b, Dtype* c) {
  // op(A)(i,kk) = a[kk*m + i]
  for (index_t kk = 0; kk < k; ++kk) {
    const Dtype* ak = a + kk * m;
    const Dtype* bk = b + kk * n;
    for (index_t i = 0; i < m; ++i) {
      const Dtype aik = alpha * ak[i];
      if (aik == Dtype(0)) continue;
      Dtype* ci = c + i * n;
      for (index_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

template <typename Dtype>
void GemmTT(index_t m, index_t n, index_t k, Dtype alpha, const Dtype* a,
            const Dtype* b, Dtype* c) {
  // op(A)(i,kk) = a[kk*m + i]; op(B)(kk,j) = b[j*k + kk]
  for (index_t i = 0; i < m; ++i) {
    Dtype* ci = c + i * n;
    for (index_t j = 0; j < n; ++j) {
      const Dtype* bj = b + j * k;
      Dtype sum = 0;
      for (index_t kk = 0; kk < k; ++kk) sum += a[kk * m + i] * bj[kk];
      ci[j] += alpha * sum;
    }
  }
}

}  // namespace

template <typename Dtype>
void gemm(Transpose trans_a, Transpose trans_b, index_t m, index_t n,
          index_t k, Dtype alpha, const Dtype* a, const Dtype* b, Dtype beta,
          Dtype* c) {
  CGDNN_CHECK_GE(m, 0);
  CGDNN_CHECK_GE(n, 0);
  CGDNN_CHECK_GE(k, 0);
  ScaleC(m, n, beta, c);
  if (m == 0 || n == 0 || k == 0 || alpha == Dtype(0)) return;
  const bool ta = trans_a == Transpose::kTrans;
  const bool tb = trans_b == Transpose::kTrans;
  if (!ta && !tb) {
    GemmNN(m, n, k, alpha, a, b, c);
  } else if (!ta && tb) {
    GemmNT(m, n, k, alpha, a, b, c);
  } else if (ta && !tb) {
    GemmTN(m, n, k, alpha, a, b, c);
  } else {
    GemmTT(m, n, k, alpha, a, b, c);
  }
}

template <typename Dtype>
void gemv(Transpose trans_a, index_t m, index_t n, Dtype alpha,
          const Dtype* a, const Dtype* x, Dtype beta, Dtype* y) {
  // A is m x n row-major; y has length m (no trans) or n (trans).
  const index_t ylen = trans_a == Transpose::kNo ? m : n;
  if (beta == Dtype(0)) {
    std::fill(y, y + ylen, Dtype(0));
  } else if (beta != Dtype(1)) {
    for (index_t i = 0; i < ylen; ++i) y[i] *= beta;
  }
  if (alpha == Dtype(0) || m == 0 || n == 0) return;
  if (trans_a == Transpose::kNo) {
    for (index_t i = 0; i < m; ++i) {
      const Dtype* ai = a + i * n;
      Dtype sum = 0;
      for (index_t j = 0; j < n; ++j) sum += ai[j] * x[j];
      y[i] += alpha * sum;
    }
  } else {
    for (index_t i = 0; i < m; ++i) {
      const Dtype axi = alpha * x[i];
      if (axi == Dtype(0)) continue;
      const Dtype* ai = a + i * n;
      for (index_t j = 0; j < n; ++j) y[j] += axi * ai[j];
    }
  }
}

template <typename Dtype>
void ger(index_t m, index_t n, Dtype alpha, const Dtype* x, const Dtype* y,
         Dtype* a) {
  for (index_t i = 0; i < m; ++i) {
    const Dtype axi = alpha * x[i];
    if (axi == Dtype(0)) continue;
    Dtype* ai = a + i * n;
    for (index_t j = 0; j < n; ++j) ai[j] += axi * y[j];
  }
}

#define CGDNN_INSTANTIATE_GEMM(Dtype)                                         \
  template void gemm<Dtype>(Transpose, Transpose, index_t, index_t, index_t, \
                            Dtype, const Dtype*, const Dtype*, Dtype,        \
                            Dtype*);                                         \
  template void gemv<Dtype>(Transpose, index_t, index_t, Dtype,              \
                            const Dtype*, const Dtype*, Dtype, Dtype*);      \
  template void ger<Dtype>(index_t, index_t, Dtype, const Dtype*,            \
                           const Dtype*, Dtype*)

CGDNN_INSTANTIATE_GEMM(float);
CGDNN_INSTANTIATE_GEMM(double);

}  // namespace cgdnn::blas
