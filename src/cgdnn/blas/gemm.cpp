// Packed, register-tiled GEMM engine (BLIS-style, docs/perf.md).
//
// Large shapes take the packed path: panels of op(A) (MC x KC, alpha folded
// in) and op(B) (KC x NC) are packed into 64-byte-aligned per-thread scratch
// — the pack routines absorb all four transpose combinations, so there is
// exactly ONE inner kernel. The microkernel accumulates an MR x NR register
// tile over a KC panel with a branch-free, `omp simd`-vectorized loop; beta
// is folded into the tile store of the first KC panel, so no separate sweep
// over C remains. Edge tiles are zero-padded during packing, keeping the
// kernel free of remainder branches.
//
// Small shapes (op(B) volume under kGemmPackMinWork) skip packing and run
// branch-free naive loop nests: for LeNet-sized layers the pack traffic
// would dominate the O(mnk) work. Both paths accumulate each C element in
// ascending-k order with per-element chains, so results are independent of
// how callers partition rows — the bit-identity the coarse-grain
// inner-product path relies on (and FLOP counts/timings are value-
// independent: there are no data-dependent skips anywhere).
//
// The pack routines, microkernel, blocking nest and small-path row kernels
// live in gemm_kernels.hpp so the planner's direct-convolution path can run
// the very same kernel symbols on implicitly-gathered im2col data (the
// bit-identity contract between conv strategies).
#include <algorithm>

#include "cgdnn/blas/blas.hpp"
#include "cgdnn/blas/gemm_kernels.hpp"
#include "cgdnn/core/arena.hpp"

namespace cgdnn::blas {

namespace kernels {
ThreadArena& PackArena() {
  static thread_local ThreadArena arena;
  return arena;
}
}  // namespace kernels

namespace {

using kernels::AxpyRowKernel;
using kernels::DotRowKernel;
using kernels::RoundUpTo;
using kernels::ScaleC;

template <typename Dtype>
void PackedGemm(bool trans_a, bool trans_b, index_t m, index_t n, index_t k,
                Dtype alpha, const Dtype* a, const Dtype* b, Dtype beta,
                Dtype* c) {
  using B = GemmBlocking<Dtype>;
  const index_t lda = trans_a ? m : k;
  const index_t ldb = trans_b ? k : n;
  ThreadArena& arena = kernels::PackArena();
  arena.ResetScope();
  auto* packa = static_cast<Dtype*>(arena.Allocate(
      static_cast<std::size_t>(RoundUpTo(B::kMC, B::kMR) * B::kKC) *
      sizeof(Dtype)));
  auto* packb = static_cast<Dtype*>(arena.Allocate(
      static_cast<std::size_t>(RoundUpTo(B::kNC, B::kNR) * B::kKC) *
      sizeof(Dtype)));
  kernels::PackedGemmLoop(
      m, n, k, beta, c, n,
      [&](index_t i0, index_t p0, index_t mc, index_t kc, Dtype* pack) {
        kernels::PackASlab(trans_a, a, lda, i0, p0, mc, kc, alpha, pack);
      },
      [&](index_t p0, index_t j0, index_t kc, index_t nc, Dtype* pack) {
        kernels::PackBSlab(trans_b, b, ldb, p0, j0, kc, nc, pack);
      },
      packa, packb);
}

// ---- small path ------------------------------------------------------------
//
// Branch-free naive loop nests (the pre-packing kernels, minus their
// value-dependent zero skips), run after ScaleC. Loop orders keep the
// innermost loop over contiguous C and, when possible, contiguous A/B;
// K-blocking keeps the NN working set inside L1/L2. The row-level work runs
// through the shared AxpyRowKernel / DotRowKernel symbols (bit-identity with
// the direct-conv small path).

template <typename Dtype>
void SmallGemmNN(index_t m, index_t n, index_t k, Dtype alpha, const Dtype* a,
                 const Dtype* b, Dtype* c) {
  for (index_t k0 = 0; k0 < k; k0 += kernels::kSmallGemmBlockK) {
    const index_t k1 = std::min(k0 + kernels::kSmallGemmBlockK, k);
    for (index_t i = 0; i < m; ++i) {
      Dtype* ci = c + i * n;
      for (index_t kk = k0; kk < k1; ++kk) {
        AxpyRowKernel(n, alpha * a[i * k + kk], b + kk * n, ci);
      }
    }
  }
}

template <typename Dtype>
void SmallGemmNT(index_t m, index_t n, index_t k, Dtype alpha, const Dtype* a,
                 const Dtype* b, Dtype* c) {
  for (index_t i = 0; i < m; ++i) {
    const Dtype* ai = a + i * k;
    Dtype* ci = c + i * n;
    for (index_t j = 0; j < n; ++j) {
      ci[j] += alpha * DotRowKernel(k, ai, b + j * k);
    }
  }
}

template <typename Dtype>
void SmallGemmTN(index_t m, index_t n, index_t k, Dtype alpha, const Dtype* a,
                 const Dtype* b, Dtype* c) {
  // op(A)(i,kk) = a[kk*m + i]
  for (index_t kk = 0; kk < k; ++kk) {
    const Dtype* ak = a + kk * m;
    const Dtype* bk = b + kk * n;
    for (index_t i = 0; i < m; ++i) {
      AxpyRowKernel(n, alpha * ak[i], bk, c + i * n);
    }
  }
}

template <typename Dtype>
void SmallGemmTT(index_t m, index_t n, index_t k, Dtype alpha, const Dtype* a,
                 const Dtype* b, Dtype* c) {
  // op(A)(i,kk) = a[kk*m + i]; op(B)(kk,j) = b[j*k + kk]
  for (index_t i = 0; i < m; ++i) {
    Dtype* ci = c + i * n;
    for (index_t j = 0; j < n; ++j) {
      const Dtype* bj = b + j * k;
      Dtype sum = 0;
      for (index_t kk = 0; kk < k; ++kk) sum += a[kk * m + i] * bj[kk];
      ci[j] += alpha * sum;
    }
  }
}

}  // namespace

std::size_t gemm_pack_scratch_bytes() {
  return kernels::PackArena().capacity_bytes();
}

template <typename Dtype>
void gemm(Transpose trans_a, Transpose trans_b, index_t m, index_t n,
          index_t k, Dtype alpha, const Dtype* a, const Dtype* b, Dtype beta,
          Dtype* c) {
  CGDNN_CHECK_GE(m, 0);
  CGDNN_CHECK_GE(n, 0);
  CGDNN_CHECK_GE(k, 0);
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == Dtype(0)) {
    ScaleC(m, n, beta, c);
    return;
  }
  const bool ta = trans_a == Transpose::kTrans;
  const bool tb = trans_b == Transpose::kTrans;
  if (kernels::UsePackedPath<Dtype>(n, k)) {
    PackedGemm(ta, tb, m, n, k, alpha, a, b, beta, c);
    return;
  }
  ScaleC(m, n, beta, c);
  if (!ta && !tb) {
    SmallGemmNN(m, n, k, alpha, a, b, c);
  } else if (!ta && tb) {
    SmallGemmNT(m, n, k, alpha, a, b, c);
  } else if (ta && !tb) {
    SmallGemmTN(m, n, k, alpha, a, b, c);
  } else {
    SmallGemmTT(m, n, k, alpha, a, b, c);
  }
}

template <typename Dtype>
void gemv(Transpose trans_a, index_t m, index_t n, Dtype alpha,
          const Dtype* a, const Dtype* x, Dtype beta, Dtype* y) {
  // A is m x n row-major; y has length m (no trans) or n (trans).
  const index_t ylen = trans_a == Transpose::kNo ? m : n;
  if (beta == Dtype(0)) {
    std::fill(y, y + ylen, Dtype(0));
  } else if (beta != Dtype(1)) {
    for (index_t i = 0; i < ylen; ++i) y[i] *= beta;
  }
  if (alpha == Dtype(0) || m == 0 || n == 0) return;
  if (trans_a == Transpose::kNo) {
    for (index_t i = 0; i < m; ++i) {
      y[i] += alpha * DotRowKernel(n, a + i * n, x);
    }
  } else {
    for (index_t i = 0; i < m; ++i) {
      // No zero-skip on x[i]: FLOP counts and timings must stay
      // input-independent (the paper's instrumentation assumption).
      AxpyRowKernel(n, alpha * x[i], a + i * n, y);
    }
  }
}

template <typename Dtype>
void ger(index_t m, index_t n, Dtype alpha, const Dtype* x, const Dtype* y,
         Dtype* a) {
  for (index_t i = 0; i < m; ++i) {
    // No zero-skip on x[i] — see gemv.
    AxpyRowKernel(n, alpha * x[i], y, a + i * n);
  }
}

#define CGDNN_INSTANTIATE_GEMM(Dtype)                                         \
  template void gemm<Dtype>(Transpose, Transpose, index_t, index_t, index_t, \
                            Dtype, const Dtype*, const Dtype*, Dtype,        \
                            Dtype*);                                         \
  template void gemv<Dtype>(Transpose, index_t, index_t, Dtype,              \
                            const Dtype*, const Dtype*, Dtype, Dtype*);      \
  template void ger<Dtype>(index_t, index_t, Dtype, const Dtype*,            \
                           const Dtype*, Dtype*)

CGDNN_INSTANTIATE_GEMM(float);
CGDNN_INSTANTIATE_GEMM(double);

}  // namespace cgdnn::blas
