// Fine-grain (OpenMP-parallel) BLAS kernels. These stand in for a threaded
// OpenBLAS: they parallelize *inside* a single linear-algebra call, i.e. the
// "BLAS-level parallelism" of paper §3.1.1, as opposed to the batch-level
// parallelism the paper advocates. Used only by the ablation benches — the
// coarse-grain layer paths call the serial kernels.
#include <omp.h>

#include "cgdnn/blas/blas.hpp"

namespace cgdnn::blas::finegrain {

namespace {
int g_threads = 0;  // 0 = use omp_get_max_threads()

int EffectiveThreads() {
  return g_threads > 0 ? g_threads : omp_get_max_threads();
}
}  // namespace

void set_num_threads(int n) {
  CGDNN_CHECK_GE(n, 0);
  g_threads = n;
}

int num_threads() { return EffectiveThreads(); }

template <typename Dtype>
void gemm(Transpose trans_a, Transpose trans_b, index_t m, index_t n,
          index_t k, Dtype alpha, const Dtype* a, const Dtype* b, Dtype beta,
          Dtype* c) {
  const bool ta = trans_a == Transpose::kTrans;
  const bool tb = trans_b == Transpose::kTrans;
  const int threads = EffectiveThreads();
  // Rows of C are independent, so a static parallel-for over i gives the
  // same floating-point result as the serial inner-product evaluation.
#pragma omp parallel for num_threads(threads) schedule(static)
  for (index_t i = 0; i < m; ++i) {
    Dtype* ci = c + i * n;
    for (index_t j = 0; j < n; ++j) {
      Dtype sum = 0;
      for (index_t kk = 0; kk < k; ++kk) {
        const Dtype av = ta ? a[kk * m + i] : a[i * k + kk];
        const Dtype bv = tb ? b[j * k + kk] : b[kk * n + j];
        sum += av * bv;
      }
      ci[j] = alpha * sum + (beta == Dtype(0) ? Dtype(0) : beta * ci[j]);
    }
  }
}

template <typename Dtype>
void axpy(index_t n, Dtype alpha, const Dtype* x, Dtype* y) {
  const int threads = EffectiveThreads();
#pragma omp parallel for num_threads(threads) schedule(static)
  for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

#define CGDNN_INSTANTIATE_FG(Dtype)                                          \
  template void gemm<Dtype>(Transpose, Transpose, index_t, index_t, index_t, \
                            Dtype, const Dtype*, const Dtype*, Dtype,        \
                            Dtype*);                                         \
  template void axpy<Dtype>(index_t, Dtype, const Dtype*, Dtype*)

CGDNN_INSTANTIATE_FG(float);
CGDNN_INSTANTIATE_FG(double);

}  // namespace cgdnn::blas::finegrain
