// Native BLAS subset (the role OpenBLAS plays in the paper's Caffe setup).
//
// All matrices are row-major and densely packed (leading dimension equals
// the row length), which is the only case Caffe's math_functions need.
// Two execution modes are provided:
//   * the default serial kernels (used inside coarse-grain parallel regions,
//     where the batch loop supplies all thread-level parallelism), and
//   * `finegrain::*` OpenMP-parallel variants standing in for a threaded
//     OpenBLAS — the "BLAS-level parallelism" baseline of paper §3.1.1,
//     exercised by bench/abl_blas_vs_batch.
#pragma once

#include "cgdnn/core/common.hpp"

namespace cgdnn::blas {

enum class Transpose { kNo, kTrans };

/// Cache- and register-blocking parameters of the packed GEMM engine
/// (docs/perf.md). The microkernel updates an MR x NR register tile; panels
/// of A (MC x KC) and B (KC x NC) are packed into contiguous 64-byte-aligned
/// per-thread scratch. Exposed so tests can sweep the edge cases (m/n around
/// kMR/kNR, k around kKC) and so the docs/bench shapes stay in sync.
template <typename Dtype>
struct GemmBlocking;

template <>
struct GemmBlocking<float> {
  static constexpr index_t kMR = 4, kNR = 8;
  static constexpr index_t kMC = 64, kKC = 256, kNC = 1024;
};

template <>
struct GemmBlocking<double> {
  static constexpr index_t kMR = 4, kNR = 4;
  static constexpr index_t kMC = 64, kKC = 256, kNC = 512;
};

/// Shapes below this op(B) volume (n * k element loads) skip packing and run
/// branch-free naive loop nests instead: for LeNet-sized layers the pack
/// traffic would dominate. The predicate deliberately ignores m so that a
/// row-partitioned GEMM (inner-product coarse-grain path) takes the same
/// branch — and therefore produces bit-identical rows — as the full-batch
/// serial call.
constexpr index_t kGemmPackMinWork = 4096;

/// Bytes of GEMM packing scratch currently reserved by the calling thread
/// (0 until this thread executes its first packed GEMM). One grow-only
/// arena per thread, reused across calls/layers/samples.
std::size_t gemm_pack_scratch_bytes();

/// C := alpha * op(A) * op(B) + beta * C
/// op(A) is M x K, op(B) is K x N, C is M x N; all row-major, packed.
template <typename Dtype>
void gemm(Transpose trans_a, Transpose trans_b, index_t m, index_t n,
          index_t k, Dtype alpha, const Dtype* a, const Dtype* b, Dtype beta,
          Dtype* c);

/// y := alpha * op(A) * x + beta * y.  A is M x N row-major.
template <typename Dtype>
void gemv(Transpose trans_a, index_t m, index_t n, Dtype alpha,
          const Dtype* a, const Dtype* x, Dtype beta, Dtype* y);

/// Rank-1 update: A := alpha * x * y^T + A.  A is M x N row-major.
template <typename Dtype>
void ger(index_t m, index_t n, Dtype alpha, const Dtype* x, const Dtype* y,
         Dtype* a);

// ----- level 1 ------------------------------------------------------------

template <typename Dtype>
void axpy(index_t n, Dtype alpha, const Dtype* x, Dtype* y);  // y += a*x

template <typename Dtype>
void axpby(index_t n, Dtype alpha, const Dtype* x, Dtype beta, Dtype* y);

template <typename Dtype>
void scal(index_t n, Dtype alpha, Dtype* x);

template <typename Dtype>
Dtype dot(index_t n, const Dtype* x, const Dtype* y);

template <typename Dtype>
Dtype asum(index_t n, const Dtype* x);

template <typename Dtype>
Dtype sumsq(index_t n, const Dtype* x);

template <typename Dtype>
void copy(index_t n, const Dtype* x, Dtype* y);

template <typename Dtype>
void set(index_t n, Dtype value, Dtype* y);

// ----- element-wise vector math (Caffe's caffe_add/sub/mul/...) ------------

template <typename Dtype>
void add(index_t n, const Dtype* a, const Dtype* b, Dtype* y);
template <typename Dtype>
void sub(index_t n, const Dtype* a, const Dtype* b, Dtype* y);
template <typename Dtype>
void mul(index_t n, const Dtype* a, const Dtype* b, Dtype* y);
template <typename Dtype>
void div(index_t n, const Dtype* a, const Dtype* b, Dtype* y);
template <typename Dtype>
void add_scalar(index_t n, Dtype alpha, Dtype* y);
template <typename Dtype>
void sqr(index_t n, const Dtype* a, Dtype* y);
template <typename Dtype>
void sqrt(index_t n, const Dtype* a, Dtype* y);
template <typename Dtype>
void exp(index_t n, const Dtype* a, Dtype* y);
template <typename Dtype>
void log(index_t n, const Dtype* a, Dtype* y);
template <typename Dtype>
void abs(index_t n, const Dtype* a, Dtype* y);
template <typename Dtype>
void powx(index_t n, const Dtype* a, Dtype b, Dtype* y);

/// y[i] := sign(x[i]) in {-1, 0, +1} (used for L1 regularization).
template <typename Dtype>
void sign(index_t n, const Dtype* x, Dtype* y);

// ----- fine-grain (OpenMP-parallel) variants --------------------------------

namespace finegrain {
/// Number of threads the fine-grain kernels may use (default: OpenMP max).
void set_num_threads(int n);
int num_threads();

template <typename Dtype>
void gemm(Transpose trans_a, Transpose trans_b, index_t m, index_t n,
          index_t k, Dtype alpha, const Dtype* a, const Dtype* b, Dtype beta,
          Dtype* c);

template <typename Dtype>
void axpy(index_t n, Dtype alpha, const Dtype* x, Dtype* y);
}  // namespace finegrain

}  // namespace cgdnn::blas
