// Shared GEMM kernel primitives (pack routines, microkernel, small-path row
// kernels) factored out of gemm.cpp so the direct-convolution path can reuse
// them.
//
// Bit-identity contract: the planner may switch a conv layer between
// im2col-GEMM and direct (implicit-im2col) execution, and the two must
// produce byte-identical outputs. That holds because both paths funnel every
// floating-point accumulation through the SAME kernel symbols defined here —
// the packed path through MicroKernel on identically-valued pack buffers,
// the small path through AxpyRowKernel / DotRowKernel in the same
// per-element ascending-k order. The reduction-order-sensitive kernels
// (MicroKernel, DotRowKernel, AxpyRowKernel) are marked noinline: each
// instantiation is ODR-merged to one out-of-line definition, so the
// vectorizer cannot specialize the reduction tree differently per call site.
#pragma once

#include <algorithm>

#include "cgdnn/blas/blas.hpp"
#include "cgdnn/core/arena.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define CGDNN_KERNEL_NOINLINE __attribute__((noinline))
#else
#define CGDNN_KERNEL_NOINLINE
#endif

namespace cgdnn::blas::kernels {

constexpr index_t RoundUpTo(index_t v, index_t to) {
  return (v + to - 1) / to * to;
}

/// One grow-only pack arena per OS thread, shared by the packed GEMM and the
/// direct-conv path (defined in gemm.cpp). A single allocation on the
/// thread's first packed call, then reused across calls, layers and samples.
ThreadArena& PackArena();

/// Small-path K blocking (keeps the NN working set inside L1/L2).
constexpr index_t kSmallGemmBlockK = 256;

/// m is deliberately not consulted: a row-partitioned call must take the
/// same branch as the full-batch call (see kGemmPackMinWork). The planner's
/// direct-conv path consults the same predicate so strategy switches never
/// change which kernel family runs for a given (n, k).
template <typename Dtype>
bool UsePackedPath(index_t n, index_t k) {
  return n >= GemmBlocking<Dtype>::kNR && n * k >= kGemmPackMinWork;
}

template <typename Dtype>
void ScaleC(index_t m, index_t n, Dtype beta, Dtype* c) {
  const index_t total = m * n;
  if (beta == Dtype(0)) {
    std::fill(c, c + total, Dtype(0));
  } else if (beta != Dtype(1)) {
    for (index_t i = 0; i < total; ++i) c[i] *= beta;
  }
}

// ---- packed-path primitives ------------------------------------------------

/// Packs the mc x kc slab of op(A) starting at (row i0, depth p0) into
/// MR-wide row panels: panel p holds rows [p*MR, p*MR+MR), laid out kk-major
/// with MR contiguous values per kk. alpha is folded in here; rows past mc
/// are zero-padded so the microkernel never branches on the row remainder.
template <typename Dtype>
void PackASlab(bool trans, const Dtype* a, index_t lda, index_t i0,
               index_t p0, index_t mc, index_t kc, Dtype alpha, Dtype* pack) {
  constexpr index_t MR = GemmBlocking<Dtype>::kMR;
  for (index_t ir = 0; ir < mc; ir += MR) {
    const index_t mr = std::min(MR, mc - ir);
    for (index_t kk = 0; kk < kc; ++kk) {
      if (trans) {
        // op(A)(i, kk) = a[kk * lda + i]
        const Dtype* src = a + (p0 + kk) * lda + i0 + ir;
        for (index_t i = 0; i < mr; ++i) pack[i] = alpha * src[i];
      } else {
        // op(A)(i, kk) = a[i * lda + kk]
        const Dtype* src = a + (i0 + ir) * lda + p0 + kk;
        for (index_t i = 0; i < mr; ++i) pack[i] = alpha * src[i * lda];
      }
      for (index_t i = mr; i < MR; ++i) pack[i] = Dtype(0);
      pack += MR;
    }
  }
}

/// Packs the kc x nc slab of op(B) starting at (depth p0, col j0) into
/// NR-wide column panels (kk-major, NR contiguous values per kk), columns
/// past nc zero-padded.
template <typename Dtype>
void PackBSlab(bool trans, const Dtype* b, index_t ldb, index_t p0,
               index_t j0, index_t kc, index_t nc, Dtype* pack) {
  constexpr index_t NR = GemmBlocking<Dtype>::kNR;
  for (index_t jr = 0; jr < nc; jr += NR) {
    const index_t nr = std::min(NR, nc - jr);
    for (index_t kk = 0; kk < kc; ++kk) {
      if (trans) {
        // op(B)(kk, j) = b[j * ldb + kk]
        const Dtype* src = b + (j0 + jr) * ldb + p0 + kk;
        for (index_t j = 0; j < nr; ++j) pack[j] = src[j * ldb];
      } else {
        // op(B)(kk, j) = b[kk * ldb + j]
        const Dtype* src = b + (p0 + kk) * ldb + j0 + jr;
        for (index_t j = 0; j < nr; ++j) pack[j] = src[j];
      }
      for (index_t j = nr; j < NR; ++j) pack[j] = Dtype(0);
      pack += NR;
    }
  }
}

/// The single inner kernel: accumulates op(A)op(B) over one KC panel into an
/// MR x NR register tile, then merges the tile into C. `beta` applies to
/// the destination exactly once per (jc, C-tile) — the caller passes the
/// user's beta for the first KC panel and 1 afterwards. The kk loop is
/// branch-free; edge handling happens only in the store, on padded tiles.
template <typename Dtype>
CGDNN_KERNEL_NOINLINE void MicroKernel(index_t kc, const Dtype* __restrict ap,
                                       const Dtype* __restrict bp,
                                       Dtype* __restrict c, index_t ldc,
                                       index_t mr, index_t nr, Dtype beta) {
  constexpr index_t MR = GemmBlocking<Dtype>::kMR;
  constexpr index_t NR = GemmBlocking<Dtype>::kNR;
  Dtype acc[MR * NR] = {};
  for (index_t kk = 0; kk < kc; ++kk) {
    const Dtype* a = ap + kk * MR;
    const Dtype* b = bp + kk * NR;
    for (index_t i = 0; i < MR; ++i) {
      const Dtype ai = a[i];
#pragma omp simd
      for (index_t j = 0; j < NR; ++j) acc[i * NR + j] += ai * b[j];
    }
  }
  if (mr == MR && nr == NR) {
    if (beta == Dtype(1)) {
      for (index_t i = 0; i < MR; ++i) {
        Dtype* ci = c + i * ldc;
#pragma omp simd
        for (index_t j = 0; j < NR; ++j) ci[j] += acc[i * NR + j];
      }
    } else if (beta == Dtype(0)) {
      for (index_t i = 0; i < MR; ++i) {
        Dtype* ci = c + i * ldc;
#pragma omp simd
        for (index_t j = 0; j < NR; ++j) ci[j] = acc[i * NR + j];
      }
    } else {
      for (index_t i = 0; i < MR; ++i) {
        Dtype* ci = c + i * ldc;
#pragma omp simd
        for (index_t j = 0; j < NR; ++j) ci[j] = beta * ci[j] + acc[i * NR + j];
      }
    }
  } else {
    for (index_t i = 0; i < mr; ++i) {
      Dtype* ci = c + i * ldc;
      for (index_t j = 0; j < nr; ++j) {
        if (beta == Dtype(1)) {
          ci[j] += acc[i * NR + j];
        } else if (beta == Dtype(0)) {
          ci[j] = acc[i * NR + j];
        } else {
          ci[j] = beta * ci[j] + acc[i * NR + j];
        }
      }
    }
  }
}

/// The jc/pc/ic/jr/ir blocking nest of the packed path, with the two pack
/// steps supplied by the caller. The GEMM front-end passes PackASlab /
/// PackBSlab over row-major matrices; the direct-conv path passes packers
/// that gather op(B) straight from the input image (implicit im2col). Both
/// produce identically-valued pack buffers, so the MicroKernel sequence —
/// and therefore every FP operation — is the same.
///
/// PackA(i0, p0, mc, kc, dst) packs the op(A) slab (alpha folded in);
/// PackB(p0, j0, kc, nc, dst) packs the op(B) slab. `packa`/`packb` must
/// hold RoundUpTo(MC,MR)*KC and RoundUpTo(NC,NR)*KC elements respectively.
template <typename Dtype, typename PackA, typename PackB>
void PackedGemmLoop(index_t m, index_t n, index_t k, Dtype beta, Dtype* c,
                    index_t ldc, PackA&& pack_a, PackB&& pack_b, Dtype* packa,
                    Dtype* packb) {
  using B = GemmBlocking<Dtype>;
  for (index_t jc = 0; jc < n; jc += B::kNC) {
    const index_t nc = std::min(B::kNC, n - jc);
    for (index_t pc = 0; pc < k; pc += B::kKC) {
      const index_t kc = std::min(B::kKC, k - pc);
      const Dtype beta_panel = pc == 0 ? beta : Dtype(1);
      pack_b(pc, jc, kc, nc, packb);
      for (index_t ic = 0; ic < m; ic += B::kMC) {
        const index_t mc = std::min(B::kMC, m - ic);
        pack_a(ic, pc, mc, kc, packa);
        for (index_t jr = 0; jr < nc; jr += B::kNR) {
          const index_t nr = std::min(B::kNR, nc - jr);
          for (index_t ir = 0; ir < mc; ir += B::kMR) {
            const index_t mr = std::min(B::kMR, mc - ir);
            MicroKernel(kc, packa + ir * kc, packb + jr * kc,
                        c + (ic + ir) * ldc + jc + jr, ldc, mr, nr,
                        beta_panel);
          }
        }
      }
    }
  }
}

// ---- small-path row primitives ---------------------------------------------

/// y[0..n) += a * x[0..n). Per-element chains — no reduction — but kept
/// out-of-line anyway so every caller runs the identical vectorized body.
template <typename Dtype>
CGDNN_KERNEL_NOINLINE void AxpyRowKernel(index_t n, Dtype a,
                                         const Dtype* __restrict x,
                                         Dtype* __restrict y) {
#pragma omp simd
  for (index_t j = 0; j < n; ++j) y[j] += a * x[j];
}

/// sum over x[0..k) * y[0..k). The `omp simd` reduction tree depends on the
/// vector factor the compiler picks — noinline pins ONE definition per type
/// so im2col-GEMM and direct conv reduce in exactly the same order.
template <typename Dtype>
CGDNN_KERNEL_NOINLINE Dtype DotRowKernel(index_t k, const Dtype* __restrict x,
                                         const Dtype* __restrict y) {
  Dtype sum = 0;
#pragma omp simd reduction(+ : sum)
  for (index_t kk = 0; kk < k; ++kk) sum += x[kk] * y[kk];
  return sum;
}

}  // namespace cgdnn::blas::kernels
