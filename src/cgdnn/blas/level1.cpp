#include <algorithm>
#include <cmath>
#include <cstring>

#include "cgdnn/blas/blas.hpp"

namespace cgdnn::blas {

template <typename Dtype>
void axpy(index_t n, Dtype alpha, const Dtype* x, Dtype* y) {
  for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

template <typename Dtype>
void axpby(index_t n, Dtype alpha, const Dtype* x, Dtype beta, Dtype* y) {
  for (index_t i = 0; i < n; ++i) y[i] = alpha * x[i] + beta * y[i];
}

template <typename Dtype>
void scal(index_t n, Dtype alpha, Dtype* x) {
  for (index_t i = 0; i < n; ++i) x[i] *= alpha;
}

template <typename Dtype>
Dtype dot(index_t n, const Dtype* x, const Dtype* y) {
  Dtype sum = 0;
  for (index_t i = 0; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

template <typename Dtype>
Dtype asum(index_t n, const Dtype* x) {
  Dtype sum = 0;
  for (index_t i = 0; i < n; ++i) sum += std::abs(x[i]);
  return sum;
}

template <typename Dtype>
Dtype sumsq(index_t n, const Dtype* x) {
  Dtype sum = 0;
  for (index_t i = 0; i < n; ++i) sum += x[i] * x[i];
  return sum;
}

template <typename Dtype>
void copy(index_t n, const Dtype* x, Dtype* y) {
  if (x == y || n == 0) return;
  std::memcpy(y, x, static_cast<std::size_t>(n) * sizeof(Dtype));
}

template <typename Dtype>
void set(index_t n, Dtype value, Dtype* y) {
  std::fill(y, y + n, value);
}

template <typename Dtype>
void add(index_t n, const Dtype* a, const Dtype* b, Dtype* y) {
  for (index_t i = 0; i < n; ++i) y[i] = a[i] + b[i];
}

template <typename Dtype>
void sub(index_t n, const Dtype* a, const Dtype* b, Dtype* y) {
  for (index_t i = 0; i < n; ++i) y[i] = a[i] - b[i];
}

template <typename Dtype>
void mul(index_t n, const Dtype* a, const Dtype* b, Dtype* y) {
  for (index_t i = 0; i < n; ++i) y[i] = a[i] * b[i];
}

template <typename Dtype>
void div(index_t n, const Dtype* a, const Dtype* b, Dtype* y) {
  for (index_t i = 0; i < n; ++i) y[i] = a[i] / b[i];
}

template <typename Dtype>
void add_scalar(index_t n, Dtype alpha, Dtype* y) {
  for (index_t i = 0; i < n; ++i) y[i] += alpha;
}

template <typename Dtype>
void sqr(index_t n, const Dtype* a, Dtype* y) {
  for (index_t i = 0; i < n; ++i) y[i] = a[i] * a[i];
}

template <typename Dtype>
void sqrt(index_t n, const Dtype* a, Dtype* y) {
  for (index_t i = 0; i < n; ++i) y[i] = std::sqrt(a[i]);
}

template <typename Dtype>
void exp(index_t n, const Dtype* a, Dtype* y) {
  for (index_t i = 0; i < n; ++i) y[i] = std::exp(a[i]);
}

template <typename Dtype>
void log(index_t n, const Dtype* a, Dtype* y) {
  for (index_t i = 0; i < n; ++i) y[i] = std::log(a[i]);
}

template <typename Dtype>
void abs(index_t n, const Dtype* a, Dtype* y) {
  for (index_t i = 0; i < n; ++i) y[i] = std::abs(a[i]);
}

template <typename Dtype>
void powx(index_t n, const Dtype* a, Dtype b, Dtype* y) {
  for (index_t i = 0; i < n; ++i) y[i] = std::pow(a[i], b);
}

template <typename Dtype>
void sign(index_t n, const Dtype* x, Dtype* y) {
  for (index_t i = 0; i < n; ++i) {
    y[i] = (Dtype(0) < x[i]) - (x[i] < Dtype(0));
  }
}

#define CGDNN_INSTANTIATE_L1(Dtype)                                       \
  template void axpy<Dtype>(index_t, Dtype, const Dtype*, Dtype*);        \
  template void axpby<Dtype>(index_t, Dtype, const Dtype*, Dtype,         \
                             Dtype*);                                     \
  template void scal<Dtype>(index_t, Dtype, Dtype*);                      \
  template Dtype dot<Dtype>(index_t, const Dtype*, const Dtype*);         \
  template Dtype asum<Dtype>(index_t, const Dtype*);                      \
  template Dtype sumsq<Dtype>(index_t, const Dtype*);                     \
  template void copy<Dtype>(index_t, const Dtype*, Dtype*);               \
  template void set<Dtype>(index_t, Dtype, Dtype*);                       \
  template void add<Dtype>(index_t, const Dtype*, const Dtype*, Dtype*);  \
  template void sub<Dtype>(index_t, const Dtype*, const Dtype*, Dtype*);  \
  template void mul<Dtype>(index_t, const Dtype*, const Dtype*, Dtype*);  \
  template void div<Dtype>(index_t, const Dtype*, const Dtype*, Dtype*);  \
  template void add_scalar<Dtype>(index_t, Dtype, Dtype*);                \
  template void sqr<Dtype>(index_t, const Dtype*, Dtype*);                \
  template void sqrt<Dtype>(index_t, const Dtype*, Dtype*);               \
  template void exp<Dtype>(index_t, const Dtype*, Dtype*);                \
  template void log<Dtype>(index_t, const Dtype*, Dtype*);                \
  template void abs<Dtype>(index_t, const Dtype*, Dtype*);                \
  template void powx<Dtype>(index_t, const Dtype*, Dtype, Dtype*);        \
  template void sign<Dtype>(index_t, const Dtype*, Dtype*)

CGDNN_INSTANTIATE_L1(float);
CGDNN_INSTANTIATE_L1(double);

}  // namespace cgdnn::blas
