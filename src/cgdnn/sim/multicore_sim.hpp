// Multicore execution model for the coarse-grain OpenMP parallelization.
//
// For each layer pass at T threads the model composes the effects the paper
// identifies (§4.3):
//  * static-schedule makespan — the slowest thread's share of the coalesced
//    iteration space (exact OpenMP static chunking, so quantization shows
//    up when T does not divide the iteration count);
//  * work granularity — the fixed fork/join overhead stops helping once
//    per-thread work shrinks to its scale;
//  * locality between layers — the memory-bound fraction of a pass pays a
//    penalty when the producer's data-thread distribution differs (or the
//    producer is the sequential data layer);
//  * NUMA — crossing the 8-core node boundary adds a bandwidth penalty to
//    the memory-bound fraction;
//  * gradient merge — backward passes of parameterized layers add the
//    ordered-merge serialization (T accumulations of the parameter blob).
#pragma once

#include <vector>

#include "cgdnn/sim/machine.hpp"
#include "cgdnn/sim/workload.hpp"

namespace cgdnn::sim {

struct LayerSim {
  std::string name;
  std::string type;
  double forward_us = 0;
  double backward_us = 0;
};

struct NetSim {
  int threads = 1;
  std::vector<LayerSim> layers;
  double total_us = 0;
};

class MulticoreSim {
 public:
  explicit MulticoreSim(const CpuMachine& machine) : machine_(machine) {}

  /// Simulated execution time (µs) of one layer pass at `threads` threads.
  /// `prev` is the upstream layer (nullptr for the first).
  double SimulatePass(const LayerWork& layer, const PassWork& pass,
                      const LayerWork* prev, int threads,
                      bool is_backward) const;

  /// Simulates a full iteration (all layers, forward + backward).
  NetSim SimulateNet(const std::vector<LayerWork>& work, int threads) const;

  const CpuMachine& machine() const { return machine_; }

 private:
  CpuMachine machine_;
};

}  // namespace cgdnn::sim
