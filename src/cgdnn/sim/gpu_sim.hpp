// GPU performance models for the fine-grain comparison bars of Figures 6/9.
//
// Two variants, as in the paper:
//  * plain-GPU — Caffe's native CUDA kernels: memory-bound layers (pooling,
//    LRN, ReLU) run near bandwidth, while the generic convolution kernels
//    achieve a tiny fraction of peak FLOPs (the paper measures conv
//    speedups of only 0.43x-6x);
//  * cuDNN-GPU — NVIDIA's tuned library: convolution efficiency jumps an
//    order of magnitude; its pooling kernels trade peak bandwidth for
//    generality (the paper's pool2 drop from 62x to 27x).
// Per-pass time = max(flops/peak_eff, bytes/bw_eff) + kernel launches.
#pragma once

#include <string>

#include "cgdnn/sim/machine.hpp"
#include "cgdnn/sim/multicore_sim.hpp"  // LayerSim / NetSim result types
#include "cgdnn/sim/workload.hpp"

namespace cgdnn::sim {

enum class GpuVariant { kPlain, kCudnn };

const char* GpuVariantName(GpuVariant v);

class GpuSim {
 public:
  explicit GpuSim(const GpuMachine& machine) : machine_(machine) {}

  /// Kernel model for (layer type, variant, pass).
  GpuKernelModel KernelModel(const std::string& type, GpuVariant variant,
                             bool is_backward) const;

  /// Simulated execution time (µs) of one layer pass.
  double SimulatePass(const LayerWork& layer, const PassWork& pass,
                      GpuVariant variant, bool is_backward) const;

  /// Simulates a full iteration.
  NetSim SimulateNet(const std::vector<LayerWork>& work,
                     GpuVariant variant) const;

 private:
  GpuMachine machine_;
};

}  // namespace cgdnn::sim
