#include "cgdnn/sim/gpu_sim.hpp"

#include <algorithm>
#include <cmath>

namespace cgdnn::sim {

const char* GpuVariantName(GpuVariant v) {
  return v == GpuVariant::kPlain ? "plain-GPU" : "cuDNN-GPU";
}

GpuKernelModel GpuSim::KernelModel(const std::string& type, GpuVariant variant,
                                   bool is_backward) const {
  const bool cudnn = variant == GpuVariant::kCudnn;
  if (type == "Convolution") {
    if (cudnn) {
      // Tuned implicit-GEMM kernels.
      return {is_backward ? 0.015 : 0.03, 0.5, 3};
    }
    // Caffe's generic per-sample im2col+gemm kernels: very low efficiency,
    // one kernel chain per sample (the paper's 0.43x-2.9x conv numbers).
    return {is_backward ? 0.002 : 0.0015, 0.15, 8};
  }
  if (type == "Pooling") {
    // Plain kernels are embarrassingly bandwidth-friendly; cuDNN's generic
    // pooling loses part of that (62x -> 27x in Fig. 6).
    if (cudnn) return {0.05, is_backward ? 0.25 : 0.3, 2};
    return {0.05, is_backward ? 0.4 : 0.65, 1};
  }
  if (type == "LRN") return {0.05, 0.35, 2};
  if (type == "ReLU" || type == "Sigmoid" || type == "TanH" ||
      type == "Dropout") {
    // Bandwidth-bound but tiny: launch overhead dominates.
    if (cudnn) return {0.05, 0.25, 1};
    return {0.05, 0.35, 1};
  }
  if (type == "InnerProduct") return {is_backward ? 0.06 : 0.04, 0.4, 2};
  if (type == "Softmax" || type == "SoftmaxWithLoss") return {0.02, 0.2, 3};
  if (type == "Data") return {0.0, 0.0, 0};  // host-side, sequential
  return {0.02, 0.2, 1};
}

double GpuSim::SimulatePass(const LayerWork& layer, const PassWork& pass,
                            GpuVariant variant, bool is_backward) const {
  if (pass.serial_us <= 0) return 0;
  if (layer.sequential) return pass.serial_us;  // data layer stays on host
  GpuKernelModel km = KernelModel(layer.type, variant, is_backward);
  if (layer.type == "Convolution") {
    // Occupancy: bigger convolutions fill the device better — the reason
    // the paper's CIFAR conv layers reach 1.8-6x on the plain kernels while
    // the small MNIST ones sit near 1x. cuDNN's tiling is less sensitive.
    const double occupancy = std::clamp(pass.flops / 2e8, 0.8, 3.5);
    km.flops_eff *= variant == GpuVariant::kPlain ? occupancy
                                                  : std::sqrt(occupancy);
  }
  if (km.kernels == 0) return pass.serial_us;
  const double t_flops =
      km.flops_eff > 0 ? pass.flops / (machine_.peak_flops_per_us * km.flops_eff)
                       : 0;
  const double t_bytes =
      km.bw_eff > 0 ? pass.bytes / (machine_.peak_bytes_per_us * km.bw_eff)
                    : 0;
  return std::max(t_flops, t_bytes) + km.kernels * machine_.launch_overhead_us;
}

NetSim GpuSim::SimulateNet(const std::vector<LayerWork>& work,
                           GpuVariant variant) const {
  NetSim sim;
  sim.threads = 0;  // GPU
  for (const LayerWork& lw : work) {
    LayerSim ls;
    ls.name = lw.name;
    ls.type = lw.type;
    ls.forward_us = SimulatePass(lw, lw.forward, variant, false);
    ls.backward_us = SimulatePass(lw, lw.backward, variant, true);
    sim.total_us += ls.forward_us + ls.backward_us;
    sim.layers.push_back(std::move(ls));
  }
  return sim;
}

}  // namespace cgdnn::sim
