#include "cgdnn/sim/workload.hpp"

#include "cgdnn/parallel/context.hpp"

namespace cgdnn::sim {

const char* DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kSequential: return "sequential";
    case Distribution::kBatch: return "batch";
    case Distribution::kBatchChannel: return "batch-channel";
    case Distribution::kBatchRow: return "batch-row";
    case Distribution::kWholeNest: return "whole-nest";
    case Distribution::kNone: return "none";
  }
  return "?";
}

namespace {

constexpr double kF = sizeof(float);

/// Analytic cost model per layer type. `bot`/`top` are the principal
/// bottom/top blobs; `layer` supplies parameters.
void FillAnalytic(const Layer<float>& layer, const Blob<float>& bot,
                  const Blob<float>& top, LayerWork& w) {
  const std::string& type = w.type;
  const double bot_b = static_cast<double>(bot.count()) * kF;
  const double top_b = static_cast<double>(top.count()) * kF;
  double param_b = 0;
  for (const auto& p : layer.blobs()) {
    param_b += static_cast<double>(p->count()) * kF;
    w.param_count += p->count();
  }
  const index_t n = bot.num();

  if (type == "Data") {
    w.dist = Distribution::kSequential;
    w.sequential = true;
    w.forward = {0, top_b, 0, 0};
    w.backward = {0, 0, 0, 0};
  } else if (type == "Convolution") {
    // flops = 2 * K * out_spatial per output element per sample
    const double out_count = static_cast<double>(top.count());
    const double k = static_cast<double>(layer.blobs()[0]->count()) /
                     static_cast<double>(top.channels());  // Cin/g*kh*kw
    const double fwd_flops = 2.0 * out_count * k;
    // im2col roughly re-reads the input k/ (stride^2) times; approximate the
    // traffic as bottom * kh*kw / stride + top + params.
    const double col_b = bot_b * k / static_cast<double>(bot.channels());
    w.dist = Distribution::kBatch;
    w.forward = {fwd_flops, col_b + top_b + param_b, n, 0};
    w.backward = {2 * fwd_flops, 2 * (col_b + top_b) + 2 * param_b, n, 0};
  } else if (type == "Pooling") {
    // Each output inspects a kernel window: ~k^2 compares per output.
    const double window =
        static_cast<double>(bot.count()) / std::max<double>(1.0, top.count());
    w.dist = Distribution::kBatchChannel;
    w.forward = {static_cast<double>(top.count()) * window * 3,
                 bot_b + top_b, n * bot.channels(), 0};
    w.backward = {static_cast<double>(top.count()) * window,
                  bot_b + top_b, n * bot.channels(), 0};
  } else if (type == "LRN") {
    w.dist = Distribution::kBatchRow;
    w.locality_class = 1;  // strided channel windows
    w.forward = {static_cast<double>(bot.count()) * 15, 2 * bot_b + top_b,
                 n * bot.height(), 0};
    w.backward = {static_cast<double>(bot.count()) * 20, 4 * bot_b,
                  n * bot.height(), 0};
  } else if (type == "InnerProduct") {
    const double fwd_flops = 2.0 * static_cast<double>(bot.count(1)) *
                             static_cast<double>(top.count());
    // The weight matrix is streamed once per sample (GEMV-style access; it
    // exceeds the per-core caches for the evaluated nets), which is what
    // makes ip1 memory-bound and poorly scaling in the paper's Fig. 5.
    const double streamed_params = param_b * static_cast<double>(n);
    w.dist = Distribution::kBatch;
    // Flattening a spatial producer re-interprets the blob: the paper's
    // pool2→ip1 locality loss (§4.1.1).
    if (bot.num_axes() > 2 && bot.count(2) > 1) w.locality_class = 2;
    w.merge_params = false;  // row-partitioned gradient, no merge
    w.forward = {fwd_flops, bot_b + top_b + streamed_params, n, 0};
    w.backward = {2 * fwd_flops, bot_b + top_b + 2 * streamed_params, n, 0};
  } else if (type == "ReLU" || type == "Sigmoid" || type == "TanH" ||
             type == "Dropout" || type == "Power" || type == "Exp" ||
             type == "Log" || type == "AbsVal" || type == "BNLL" ||
             type == "ELU") {
    w.dist = Distribution::kWholeNest;
    w.forward = {static_cast<double>(bot.count()) * 2, bot_b + top_b,
                 bot.count(), 0};
    w.backward = {static_cast<double>(bot.count()) * 2, 2 * (bot_b + top_b),
                  bot.count(), 0};
  } else if (type == "BatchNorm" || type == "Scale" || type == "Bias") {
    // Channel/coefficient-partitioned layers: parallel over C, no merge.
    w.dist = Distribution::kBatchChannel;
    w.merge_params = false;
    w.forward = {static_cast<double>(bot.count()) * 4, 2 * bot_b + top_b,
                 bot.channels(), 0};
    w.backward = {static_cast<double>(bot.count()) * 6, 2 * (bot_b + top_b),
                  bot.channels(), 0};
  } else if (type == "Softmax" || type == "SoftmaxWithLoss") {
    w.dist = Distribution::kBatch;
    w.forward = {static_cast<double>(bot.count()) * 8, bot_b + top_b, n, 0};
    w.backward = {static_cast<double>(bot.count()) * 2, 2 * bot_b, n, 0};
  } else if (type == "LRN2") {
    // unreachable; placeholder for extension
  } else {
    // Generic small layer (Accuracy, Split, ...): byte-bound copy-ish cost.
    w.dist = Distribution::kNone;
    w.forward = {static_cast<double>(bot.count()), bot_b + top_b, 0, 0};
    w.backward = {static_cast<double>(bot.count()), bot_b + top_b, 0, 0};
  }
}

}  // namespace

std::vector<LayerWork> ExtractWorkload(Net<float>& net, int measure_iters,
                                       int warmup) {
  CGDNN_CHECK_GT(measure_iters, 0);
  std::vector<LayerWork> work;
  // Analytic part from shapes (valid after one forward reshape).
  net.Forward();
  const auto& layers = net.layers();
  for (std::size_t li = 0; li < layers.size(); ++li) {
    LayerWork w;
    w.name = net.layer_names()[li];
    w.type = layers[li]->type();
    const auto& bots = net.bottom_vecs()[li];
    const auto& tops = net.top_vecs()[li];
    const Blob<float>& principal_bot = bots.empty() ? *tops[0] : *bots[0];
    const Blob<float>& principal_top = *tops[0];
    FillAnalytic(*layers[li], principal_bot, principal_top, w);
    work.push_back(std::move(w));
  }

  // Measured part: profiled serial execution.
  parallel::ParallelConfig serial_cfg;
  serial_cfg.mode = parallel::ExecutionMode::kSerial;
  parallel::Parallel::Scope scope(serial_cfg);
  for (int i = 0; i < warmup; ++i) net.ForwardBackward();
  profile::Profiler profiler;
  net.set_profiler(&profiler);
  for (int i = 0; i < measure_iters; ++i) net.ForwardBackward();
  net.set_profiler(nullptr);

  for (LayerWork& w : work) {
    // Use the minimum over repetitions: least noisy estimate of the true
    // serial cost on a shared host.
    w.forward.serial_us =
        profiler.stats(w.name, profile::LayerPhase::kForward).min_us();
    w.backward.serial_us =
        profiler.stats(w.name, profile::LayerPhase::kBackward).min_us();
  }
  return work;
}

void RecordWorkloadMetrics(const std::vector<LayerWork>& work,
                           trace::MetricsRegistry& registry) {
  for (const LayerWork& w : work) {
    const auto record_pass = [&](const char* phase, const PassWork& pass) {
      const std::string prefix = "layer." + w.name + "." + phase;
      registry.GetGauge(prefix + ".flops").Set(pass.flops);
      registry.GetGauge(prefix + ".bytes").Set(pass.bytes);
      if (pass.serial_us > 0 && pass.flops > 0) {
        // flops per pass / (µs * 1e3) = GFLOP/s.
        registry.GetGauge(prefix + ".gflops")
            .Set(pass.flops / (pass.serial_us * 1e3));
      }
    };
    record_pass("forward", w.forward);
    record_pass("backward", w.backward);
  }
}

}  // namespace cgdnn::sim
