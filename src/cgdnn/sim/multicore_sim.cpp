#include "cgdnn/sim/multicore_sim.hpp"

#include <algorithm>
#include <cmath>

namespace cgdnn::sim {

double MulticoreSim::SimulatePass(const LayerWork& layer, const PassWork& pass,
                                  const LayerWork* prev, int threads,
                                  bool is_backward) const {
  if (pass.serial_us <= 0) return 0;
  if (layer.sequential || pass.par_iters == 0 || threads <= 1) {
    return pass.serial_us;
  }
  const int t = std::min<int>(threads, machine_.cores);

  // Static-schedule makespan: the slowest thread executes ceil(iters/T)
  // iterations (uniform per-iteration cost assumed, as in the layer loops).
  const double iters = static_cast<double>(pass.par_iters);
  const double max_chunk = std::ceil(iters / t);
  const double chunk_frac = max_chunk / iters;

  // Memory-bound fraction from arithmetic intensity.
  const double ai = pass.bytes > 0 ? pass.flops / pass.bytes : 1e9;
  const double mem_frac = 1.0 / (1.0 + ai / machine_.balance_flops_per_byte);

  // Locality penalty: producer layout-class mismatch or sequential producer.
  double loc_mult = 1.0;
  if (prev != nullptr &&
      (prev->sequential || prev->locality_class != layer.locality_class)) {
    // Penalty grows with the fraction of data that lands on a different
    // thread than produced it: 1 - 1/T of the blob, in expectation.
    loc_mult += machine_.locality_penalty * (1.0 - 1.0 / t);
  }

  // NUMA penalty once the team spans sockets.
  double numa_mult = 1.0;
  if (t > machine_.cores_per_node()) {
    const double spill =
        static_cast<double>(t - machine_.cores_per_node()) /
        static_cast<double>(machine_.cores - machine_.cores_per_node());
    numa_mult += machine_.numa_penalty * spill;
  }

  const double compute_frac = 1.0 - mem_frac;
  double time = pass.serial_us *
                (compute_frac * chunk_frac +
                 mem_frac * chunk_frac * loc_mult * numa_mult);

  // Fixed parallel-region overhead (fork/join + implicit barrier).
  time += machine_.fork_join_us;

  // Ordered gradient merge: T sequential accumulations of the parameter
  // blob (backward passes of parameterized layers only). Modelled as a
  // byte-rate-limited serial chain; negligible for the studied layers, as
  // the paper observes, but it is part of the model.
  if (is_backward && layer.param_count > 0 && layer.merge_params) {
    const double merge_bytes =
        static_cast<double>(layer.param_count) * sizeof(float) * t;
    constexpr double kMergeBytesPerUs = 30000.0;  // ~30 GB/s (cache-resident)
    time += merge_bytes / kMergeBytesPerUs;
  }
  return time;
}

NetSim MulticoreSim::SimulateNet(const std::vector<LayerWork>& work,
                                 int threads) const {
  NetSim sim;
  sim.threads = threads;
  const LayerWork* prev = nullptr;
  for (const LayerWork& lw : work) {
    LayerSim ls;
    ls.name = lw.name;
    ls.type = lw.type;
    ls.forward_us = SimulatePass(lw, lw.forward, prev, threads, false);
    ls.backward_us = SimulatePass(lw, lw.backward, prev, threads, true);
    sim.total_us += ls.forward_us + ls.backward_us;
    sim.layers.push_back(std::move(ls));
    prev = &lw;
  }
  return sim;
}

}  // namespace cgdnn::sim
