// Workload extraction: turns a real Net into the per-layer description the
// simulators consume — analytic FLOP/byte counts from the actual blob
// shapes, the parallel iteration space each layer's coarse-grain loop
// exposes, its data-thread distribution pattern, and measured single-thread
// forward/backward times from the profiler.
#pragma once

#include <string>
#include <vector>

#include "cgdnn/net/net.hpp"
#include "cgdnn/trace/metrics.hpp"

namespace cgdnn::sim {

/// Data-thread distribution pattern of a layer's coarse-grain loop. Two
/// adjacent layers with different patterns lose producer-consumer locality
/// (paper §4.3).
enum class Distribution {
  kSequential,    ///< data layers: one thread touches everything
  kBatch,         ///< parallel over samples (conv, ip chunks)
  kBatchChannel,  ///< coalesced (N, C) planes (pooling)
  kBatchRow,      ///< coalesced (N, H) rows (LRN)
  kWholeNest,     ///< fully coalesced element loop (ReLU & friends)
  kNone,          ///< layers with no meaningful loop (loss tail)
};

const char* DistributionName(Distribution d);

struct PassWork {
  double flops = 0;
  double bytes = 0;
  /// Iterations of the (coalesced) parallel loop; 0 = not parallelized.
  index_t par_iters = 0;
  /// Measured single-thread execution time on the host (microseconds).
  double serial_us = 0;
};

struct LayerWork {
  std::string name;
  std::string type;
  Distribution dist = Distribution::kNone;
  /// Memory-layout class of the layer's data-thread association. Two
  /// adjacent layers lose locality when their classes differ:
  ///   0 — contiguous NCHW ranges (batch / plane / element chunks all slice
  ///       the blob into contiguous runs);
  ///   1 — strided access (LRN rows span all channels);
  ///   2 — reshaping consumer (InnerProduct flattening a spatial blob, the
  ///       paper's pool2→ip1 case).
  int locality_class = 0;
  bool sequential = false;  ///< executes serially regardless of threads
  PassWork forward;
  PassWork backward;
  /// Learnable-coefficient count (privatized in the backward pass).
  index_t param_count = 0;
  /// Whether the backward pass privatizes + merges parameter gradients
  /// (convolutions do; InnerProduct partitions gradient rows instead).
  bool merge_params = true;
};

/// Computes analytic FLOP/byte counts and iteration spaces for every layer
/// of `net`, then measures single-thread forward/backward times by running
/// `measure_iters` profiled serial iterations (after `warmup` unprofiled
/// ones). The net is executed for real — call on a freshly built net.
std::vector<LayerWork> ExtractWorkload(Net<float>& net,
                                       int measure_iters = 5,
                                       int warmup = 2);

/// Publishes the per-layer work into a metrics registry: gauges
/// `layer.<name>.<phase>.flops` and `.bytes` (analytic counts per pass) and
/// `.gflops` (achieved GFLOP/s implied by the measured serial time). Layers
/// without a measured time get no gflops gauge.
void RecordWorkloadMetrics(const std::vector<LayerWork>& work,
                           trace::MetricsRegistry& registry);

}  // namespace cgdnn::sim
