# Empty dependencies file for cgdnn_time.
# This may be replaced when dependencies are built.
