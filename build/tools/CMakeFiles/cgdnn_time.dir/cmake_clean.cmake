file(REMOVE_RECURSE
  "CMakeFiles/cgdnn_time.dir/cgdnn_time.cpp.o"
  "CMakeFiles/cgdnn_time.dir/cgdnn_time.cpp.o.d"
  "cgdnn_time"
  "cgdnn_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgdnn_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
