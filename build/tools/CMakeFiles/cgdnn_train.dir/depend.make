# Empty dependencies file for cgdnn_train.
# This may be replaced when dependencies are built.
