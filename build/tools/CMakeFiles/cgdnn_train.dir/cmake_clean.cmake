file(REMOVE_RECURSE
  "CMakeFiles/cgdnn_train.dir/cgdnn_train.cpp.o"
  "CMakeFiles/cgdnn_train.dir/cgdnn_train.cpp.o.d"
  "cgdnn_train"
  "cgdnn_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgdnn_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
