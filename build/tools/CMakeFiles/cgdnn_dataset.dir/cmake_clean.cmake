file(REMOVE_RECURSE
  "CMakeFiles/cgdnn_dataset.dir/cgdnn_dataset.cpp.o"
  "CMakeFiles/cgdnn_dataset.dir/cgdnn_dataset.cpp.o.d"
  "cgdnn_dataset"
  "cgdnn_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgdnn_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
