# Empty compiler generated dependencies file for cgdnn_dataset.
# This may be replaced when dependencies are built.
