# Empty compiler generated dependencies file for cgdnn_parallel.
# This may be replaced when dependencies are built.
