file(REMOVE_RECURSE
  "libcgdnn_parallel.a"
)
