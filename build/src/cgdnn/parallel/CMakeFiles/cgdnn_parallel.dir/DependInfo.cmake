
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cgdnn/parallel/context.cpp" "src/cgdnn/parallel/CMakeFiles/cgdnn_parallel.dir/context.cpp.o" "gcc" "src/cgdnn/parallel/CMakeFiles/cgdnn_parallel.dir/context.cpp.o.d"
  "/root/repo/src/cgdnn/parallel/merge.cpp" "src/cgdnn/parallel/CMakeFiles/cgdnn_parallel.dir/merge.cpp.o" "gcc" "src/cgdnn/parallel/CMakeFiles/cgdnn_parallel.dir/merge.cpp.o.d"
  "/root/repo/src/cgdnn/parallel/privatizer.cpp" "src/cgdnn/parallel/CMakeFiles/cgdnn_parallel.dir/privatizer.cpp.o" "gcc" "src/cgdnn/parallel/CMakeFiles/cgdnn_parallel.dir/privatizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cgdnn/core/CMakeFiles/cgdnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cgdnn/blas/CMakeFiles/cgdnn_blas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
