file(REMOVE_RECURSE
  "CMakeFiles/cgdnn_parallel.dir/context.cpp.o"
  "CMakeFiles/cgdnn_parallel.dir/context.cpp.o.d"
  "CMakeFiles/cgdnn_parallel.dir/merge.cpp.o"
  "CMakeFiles/cgdnn_parallel.dir/merge.cpp.o.d"
  "CMakeFiles/cgdnn_parallel.dir/privatizer.cpp.o"
  "CMakeFiles/cgdnn_parallel.dir/privatizer.cpp.o.d"
  "libcgdnn_parallel.a"
  "libcgdnn_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgdnn_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
