
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cgdnn/core/blob.cpp" "src/cgdnn/core/CMakeFiles/cgdnn_core.dir/blob.cpp.o" "gcc" "src/cgdnn/core/CMakeFiles/cgdnn_core.dir/blob.cpp.o.d"
  "/root/repo/src/cgdnn/core/common.cpp" "src/cgdnn/core/CMakeFiles/cgdnn_core.dir/common.cpp.o" "gcc" "src/cgdnn/core/CMakeFiles/cgdnn_core.dir/common.cpp.o.d"
  "/root/repo/src/cgdnn/core/rng.cpp" "src/cgdnn/core/CMakeFiles/cgdnn_core.dir/rng.cpp.o" "gcc" "src/cgdnn/core/CMakeFiles/cgdnn_core.dir/rng.cpp.o.d"
  "/root/repo/src/cgdnn/core/synced_memory.cpp" "src/cgdnn/core/CMakeFiles/cgdnn_core.dir/synced_memory.cpp.o" "gcc" "src/cgdnn/core/CMakeFiles/cgdnn_core.dir/synced_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
