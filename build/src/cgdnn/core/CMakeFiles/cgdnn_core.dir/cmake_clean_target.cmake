file(REMOVE_RECURSE
  "libcgdnn_core.a"
)
