file(REMOVE_RECURSE
  "CMakeFiles/cgdnn_core.dir/blob.cpp.o"
  "CMakeFiles/cgdnn_core.dir/blob.cpp.o.d"
  "CMakeFiles/cgdnn_core.dir/common.cpp.o"
  "CMakeFiles/cgdnn_core.dir/common.cpp.o.d"
  "CMakeFiles/cgdnn_core.dir/rng.cpp.o"
  "CMakeFiles/cgdnn_core.dir/rng.cpp.o.d"
  "CMakeFiles/cgdnn_core.dir/synced_memory.cpp.o"
  "CMakeFiles/cgdnn_core.dir/synced_memory.cpp.o.d"
  "libcgdnn_core.a"
  "libcgdnn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgdnn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
