# Empty dependencies file for cgdnn_core.
# This may be replaced when dependencies are built.
