file(REMOVE_RECURSE
  "libcgdnn_sim.a"
)
