# Empty compiler generated dependencies file for cgdnn_sim.
# This may be replaced when dependencies are built.
