file(REMOVE_RECURSE
  "CMakeFiles/cgdnn_sim.dir/gpu_sim.cpp.o"
  "CMakeFiles/cgdnn_sim.dir/gpu_sim.cpp.o.d"
  "CMakeFiles/cgdnn_sim.dir/multicore_sim.cpp.o"
  "CMakeFiles/cgdnn_sim.dir/multicore_sim.cpp.o.d"
  "CMakeFiles/cgdnn_sim.dir/workload.cpp.o"
  "CMakeFiles/cgdnn_sim.dir/workload.cpp.o.d"
  "libcgdnn_sim.a"
  "libcgdnn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgdnn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
