# Empty compiler generated dependencies file for cgdnn_solvers.
# This may be replaced when dependencies are built.
