file(REMOVE_RECURSE
  "libcgdnn_solvers.a"
)
