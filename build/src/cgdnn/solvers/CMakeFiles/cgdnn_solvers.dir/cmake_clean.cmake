file(REMOVE_RECURSE
  "CMakeFiles/cgdnn_solvers.dir/sgd_solvers.cpp.o"
  "CMakeFiles/cgdnn_solvers.dir/sgd_solvers.cpp.o.d"
  "CMakeFiles/cgdnn_solvers.dir/solver.cpp.o"
  "CMakeFiles/cgdnn_solvers.dir/solver.cpp.o.d"
  "libcgdnn_solvers.a"
  "libcgdnn_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgdnn_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
