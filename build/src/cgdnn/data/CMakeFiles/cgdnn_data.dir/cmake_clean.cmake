file(REMOVE_RECURSE
  "CMakeFiles/cgdnn_data.dir/dataset.cpp.o"
  "CMakeFiles/cgdnn_data.dir/dataset.cpp.o.d"
  "CMakeFiles/cgdnn_data.dir/io.cpp.o"
  "CMakeFiles/cgdnn_data.dir/io.cpp.o.d"
  "CMakeFiles/cgdnn_data.dir/synthetic.cpp.o"
  "CMakeFiles/cgdnn_data.dir/synthetic.cpp.o.d"
  "CMakeFiles/cgdnn_data.dir/transformer.cpp.o"
  "CMakeFiles/cgdnn_data.dir/transformer.cpp.o.d"
  "libcgdnn_data.a"
  "libcgdnn_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgdnn_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
