file(REMOVE_RECURSE
  "libcgdnn_data.a"
)
