# Empty dependencies file for cgdnn_data.
# This may be replaced when dependencies are built.
