
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cgdnn/data/dataset.cpp" "src/cgdnn/data/CMakeFiles/cgdnn_data.dir/dataset.cpp.o" "gcc" "src/cgdnn/data/CMakeFiles/cgdnn_data.dir/dataset.cpp.o.d"
  "/root/repo/src/cgdnn/data/io.cpp" "src/cgdnn/data/CMakeFiles/cgdnn_data.dir/io.cpp.o" "gcc" "src/cgdnn/data/CMakeFiles/cgdnn_data.dir/io.cpp.o.d"
  "/root/repo/src/cgdnn/data/synthetic.cpp" "src/cgdnn/data/CMakeFiles/cgdnn_data.dir/synthetic.cpp.o" "gcc" "src/cgdnn/data/CMakeFiles/cgdnn_data.dir/synthetic.cpp.o.d"
  "/root/repo/src/cgdnn/data/transformer.cpp" "src/cgdnn/data/CMakeFiles/cgdnn_data.dir/transformer.cpp.o" "gcc" "src/cgdnn/data/CMakeFiles/cgdnn_data.dir/transformer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cgdnn/core/CMakeFiles/cgdnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cgdnn/proto/CMakeFiles/cgdnn_proto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
