# Empty compiler generated dependencies file for cgdnn_net.
# This may be replaced when dependencies are built.
