file(REMOVE_RECURSE
  "CMakeFiles/cgdnn_net.dir/models.cpp.o"
  "CMakeFiles/cgdnn_net.dir/models.cpp.o.d"
  "CMakeFiles/cgdnn_net.dir/net.cpp.o"
  "CMakeFiles/cgdnn_net.dir/net.cpp.o.d"
  "CMakeFiles/cgdnn_net.dir/replica.cpp.o"
  "CMakeFiles/cgdnn_net.dir/replica.cpp.o.d"
  "CMakeFiles/cgdnn_net.dir/serialization.cpp.o"
  "CMakeFiles/cgdnn_net.dir/serialization.cpp.o.d"
  "libcgdnn_net.a"
  "libcgdnn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgdnn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
