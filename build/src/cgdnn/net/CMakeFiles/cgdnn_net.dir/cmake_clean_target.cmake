file(REMOVE_RECURSE
  "libcgdnn_net.a"
)
