
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cgdnn/layers/accuracy_layer.cpp" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/accuracy_layer.cpp.o" "gcc" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/accuracy_layer.cpp.o.d"
  "/root/repo/src/cgdnn/layers/batch_norm_layer.cpp" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/batch_norm_layer.cpp.o" "gcc" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/batch_norm_layer.cpp.o.d"
  "/root/repo/src/cgdnn/layers/conv_layer.cpp" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/conv_layer.cpp.o" "gcc" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/conv_layer.cpp.o.d"
  "/root/repo/src/cgdnn/layers/data_layers.cpp" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/data_layers.cpp.o" "gcc" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/data_layers.cpp.o.d"
  "/root/repo/src/cgdnn/layers/extra_neuron_layers.cpp" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/extra_neuron_layers.cpp.o" "gcc" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/extra_neuron_layers.cpp.o.d"
  "/root/repo/src/cgdnn/layers/filler.cpp" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/filler.cpp.o" "gcc" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/filler.cpp.o.d"
  "/root/repo/src/cgdnn/layers/inner_product_layer.cpp" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/inner_product_layer.cpp.o" "gcc" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/inner_product_layer.cpp.o.d"
  "/root/repo/src/cgdnn/layers/layer.cpp" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/layer.cpp.o" "gcc" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/layer.cpp.o.d"
  "/root/repo/src/cgdnn/layers/loss_layers.cpp" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/loss_layers.cpp.o" "gcc" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/loss_layers.cpp.o.d"
  "/root/repo/src/cgdnn/layers/lrn_layer.cpp" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/lrn_layer.cpp.o" "gcc" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/lrn_layer.cpp.o.d"
  "/root/repo/src/cgdnn/layers/neuron_layers.cpp" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/neuron_layers.cpp.o" "gcc" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/neuron_layers.cpp.o.d"
  "/root/repo/src/cgdnn/layers/pooling_layer.cpp" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/pooling_layer.cpp.o" "gcc" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/pooling_layer.cpp.o.d"
  "/root/repo/src/cgdnn/layers/register_all.cpp" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/register_all.cpp.o" "gcc" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/register_all.cpp.o.d"
  "/root/repo/src/cgdnn/layers/scale_bias_layers.cpp" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/scale_bias_layers.cpp.o" "gcc" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/scale_bias_layers.cpp.o.d"
  "/root/repo/src/cgdnn/layers/shape_layers.cpp" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/shape_layers.cpp.o" "gcc" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/shape_layers.cpp.o.d"
  "/root/repo/src/cgdnn/layers/softmax_layer.cpp" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/softmax_layer.cpp.o" "gcc" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/softmax_layer.cpp.o.d"
  "/root/repo/src/cgdnn/layers/util_layers.cpp" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/util_layers.cpp.o" "gcc" "src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/util_layers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cgdnn/core/CMakeFiles/cgdnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cgdnn/blas/CMakeFiles/cgdnn_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/cgdnn/proto/CMakeFiles/cgdnn_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/cgdnn/parallel/CMakeFiles/cgdnn_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/cgdnn/data/CMakeFiles/cgdnn_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
