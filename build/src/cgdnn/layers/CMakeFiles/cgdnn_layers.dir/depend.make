# Empty dependencies file for cgdnn_layers.
# This may be replaced when dependencies are built.
