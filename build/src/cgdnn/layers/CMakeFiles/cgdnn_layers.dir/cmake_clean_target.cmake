file(REMOVE_RECURSE
  "libcgdnn_layers.a"
)
