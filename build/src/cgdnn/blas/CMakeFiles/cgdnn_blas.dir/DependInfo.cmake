
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cgdnn/blas/finegrain.cpp" "src/cgdnn/blas/CMakeFiles/cgdnn_blas.dir/finegrain.cpp.o" "gcc" "src/cgdnn/blas/CMakeFiles/cgdnn_blas.dir/finegrain.cpp.o.d"
  "/root/repo/src/cgdnn/blas/gemm.cpp" "src/cgdnn/blas/CMakeFiles/cgdnn_blas.dir/gemm.cpp.o" "gcc" "src/cgdnn/blas/CMakeFiles/cgdnn_blas.dir/gemm.cpp.o.d"
  "/root/repo/src/cgdnn/blas/im2col.cpp" "src/cgdnn/blas/CMakeFiles/cgdnn_blas.dir/im2col.cpp.o" "gcc" "src/cgdnn/blas/CMakeFiles/cgdnn_blas.dir/im2col.cpp.o.d"
  "/root/repo/src/cgdnn/blas/level1.cpp" "src/cgdnn/blas/CMakeFiles/cgdnn_blas.dir/level1.cpp.o" "gcc" "src/cgdnn/blas/CMakeFiles/cgdnn_blas.dir/level1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cgdnn/core/CMakeFiles/cgdnn_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
