# Empty compiler generated dependencies file for cgdnn_blas.
# This may be replaced when dependencies are built.
