file(REMOVE_RECURSE
  "CMakeFiles/cgdnn_blas.dir/finegrain.cpp.o"
  "CMakeFiles/cgdnn_blas.dir/finegrain.cpp.o.d"
  "CMakeFiles/cgdnn_blas.dir/gemm.cpp.o"
  "CMakeFiles/cgdnn_blas.dir/gemm.cpp.o.d"
  "CMakeFiles/cgdnn_blas.dir/im2col.cpp.o"
  "CMakeFiles/cgdnn_blas.dir/im2col.cpp.o.d"
  "CMakeFiles/cgdnn_blas.dir/level1.cpp.o"
  "CMakeFiles/cgdnn_blas.dir/level1.cpp.o.d"
  "libcgdnn_blas.a"
  "libcgdnn_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgdnn_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
