file(REMOVE_RECURSE
  "libcgdnn_blas.a"
)
