
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cgdnn/proto/params.cpp" "src/cgdnn/proto/CMakeFiles/cgdnn_proto.dir/params.cpp.o" "gcc" "src/cgdnn/proto/CMakeFiles/cgdnn_proto.dir/params.cpp.o.d"
  "/root/repo/src/cgdnn/proto/textformat.cpp" "src/cgdnn/proto/CMakeFiles/cgdnn_proto.dir/textformat.cpp.o" "gcc" "src/cgdnn/proto/CMakeFiles/cgdnn_proto.dir/textformat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cgdnn/core/CMakeFiles/cgdnn_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
