# Empty dependencies file for cgdnn_proto.
# This may be replaced when dependencies are built.
