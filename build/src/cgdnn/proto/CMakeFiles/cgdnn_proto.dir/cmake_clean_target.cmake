file(REMOVE_RECURSE
  "libcgdnn_proto.a"
)
