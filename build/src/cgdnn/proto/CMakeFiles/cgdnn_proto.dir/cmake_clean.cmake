file(REMOVE_RECURSE
  "CMakeFiles/cgdnn_proto.dir/params.cpp.o"
  "CMakeFiles/cgdnn_proto.dir/params.cpp.o.d"
  "CMakeFiles/cgdnn_proto.dir/textformat.cpp.o"
  "CMakeFiles/cgdnn_proto.dir/textformat.cpp.o.d"
  "libcgdnn_proto.a"
  "libcgdnn_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgdnn_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
