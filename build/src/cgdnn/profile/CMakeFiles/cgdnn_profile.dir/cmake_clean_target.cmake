file(REMOVE_RECURSE
  "libcgdnn_profile.a"
)
