file(REMOVE_RECURSE
  "CMakeFiles/cgdnn_profile.dir/profiler.cpp.o"
  "CMakeFiles/cgdnn_profile.dir/profiler.cpp.o.d"
  "libcgdnn_profile.a"
  "libcgdnn_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cgdnn_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
