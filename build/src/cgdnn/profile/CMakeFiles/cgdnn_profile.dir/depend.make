# Empty dependencies file for cgdnn_profile.
# This may be replaced when dependencies are built.
