# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_blas[1]_include.cmake")
include("/root/repo/build/tests/test_proto[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_layers[1]_include.cmake")
include("/root/repo/build/tests/test_layers_ext[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_solvers[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_profile[1]_include.cmake")
