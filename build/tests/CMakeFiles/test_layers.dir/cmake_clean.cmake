file(REMOVE_RECURSE
  "CMakeFiles/test_layers.dir/test_conv_layer.cpp.o"
  "CMakeFiles/test_layers.dir/test_conv_layer.cpp.o.d"
  "CMakeFiles/test_layers.dir/test_data_layers.cpp.o"
  "CMakeFiles/test_layers.dir/test_data_layers.cpp.o.d"
  "CMakeFiles/test_layers.dir/test_filler.cpp.o"
  "CMakeFiles/test_layers.dir/test_filler.cpp.o.d"
  "CMakeFiles/test_layers.dir/test_gradient_check.cpp.o"
  "CMakeFiles/test_layers.dir/test_gradient_check.cpp.o.d"
  "CMakeFiles/test_layers.dir/test_inner_product_layer.cpp.o"
  "CMakeFiles/test_layers.dir/test_inner_product_layer.cpp.o.d"
  "CMakeFiles/test_layers.dir/test_lrn_layer.cpp.o"
  "CMakeFiles/test_layers.dir/test_lrn_layer.cpp.o.d"
  "CMakeFiles/test_layers.dir/test_neuron_layers.cpp.o"
  "CMakeFiles/test_layers.dir/test_neuron_layers.cpp.o.d"
  "CMakeFiles/test_layers.dir/test_pooling_layer.cpp.o"
  "CMakeFiles/test_layers.dir/test_pooling_layer.cpp.o.d"
  "CMakeFiles/test_layers.dir/test_softmax_layers.cpp.o"
  "CMakeFiles/test_layers.dir/test_softmax_layers.cpp.o.d"
  "CMakeFiles/test_layers.dir/test_util_layers.cpp.o"
  "CMakeFiles/test_layers.dir/test_util_layers.cpp.o.d"
  "test_layers"
  "test_layers.pdb"
  "test_layers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
