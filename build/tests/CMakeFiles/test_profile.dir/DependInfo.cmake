
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_profiler.cpp" "tests/CMakeFiles/test_profile.dir/test_profiler.cpp.o" "gcc" "tests/CMakeFiles/test_profile.dir/test_profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cgdnn/sim/CMakeFiles/cgdnn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cgdnn/solvers/CMakeFiles/cgdnn_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/cgdnn/net/CMakeFiles/cgdnn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cgdnn/layers/CMakeFiles/cgdnn_layers.dir/DependInfo.cmake"
  "/root/repo/build/src/cgdnn/data/CMakeFiles/cgdnn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/cgdnn/profile/CMakeFiles/cgdnn_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/cgdnn/parallel/CMakeFiles/cgdnn_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/cgdnn/proto/CMakeFiles/cgdnn_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/cgdnn/blas/CMakeFiles/cgdnn_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/cgdnn/core/CMakeFiles/cgdnn_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
