file(REMOVE_RECURSE
  "CMakeFiles/test_layers_ext.dir/test_batch_norm_layer.cpp.o"
  "CMakeFiles/test_layers_ext.dir/test_batch_norm_layer.cpp.o.d"
  "CMakeFiles/test_layers_ext.dir/test_extra_neuron_layers.cpp.o"
  "CMakeFiles/test_layers_ext.dir/test_extra_neuron_layers.cpp.o.d"
  "CMakeFiles/test_layers_ext.dir/test_scale_bias_layers.cpp.o"
  "CMakeFiles/test_layers_ext.dir/test_scale_bias_layers.cpp.o.d"
  "CMakeFiles/test_layers_ext.dir/test_shape_layers.cpp.o"
  "CMakeFiles/test_layers_ext.dir/test_shape_layers.cpp.o.d"
  "test_layers_ext"
  "test_layers_ext.pdb"
  "test_layers_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layers_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
