file(REMOVE_RECURSE
  "CMakeFiles/test_proto.dir/test_params.cpp.o"
  "CMakeFiles/test_proto.dir/test_params.cpp.o.d"
  "CMakeFiles/test_proto.dir/test_textformat.cpp.o"
  "CMakeFiles/test_proto.dir/test_textformat.cpp.o.d"
  "CMakeFiles/test_proto.dir/test_textformat_robustness.cpp.o"
  "CMakeFiles/test_proto.dir/test_textformat_robustness.cpp.o.d"
  "test_proto"
  "test_proto.pdb"
  "test_proto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
