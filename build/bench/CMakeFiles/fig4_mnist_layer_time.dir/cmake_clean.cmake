file(REMOVE_RECURSE
  "CMakeFiles/fig4_mnist_layer_time.dir/bench_common.cpp.o"
  "CMakeFiles/fig4_mnist_layer_time.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig4_mnist_layer_time.dir/fig4_mnist_layer_time.cpp.o"
  "CMakeFiles/fig4_mnist_layer_time.dir/fig4_mnist_layer_time.cpp.o.d"
  "fig4_mnist_layer_time"
  "fig4_mnist_layer_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mnist_layer_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
