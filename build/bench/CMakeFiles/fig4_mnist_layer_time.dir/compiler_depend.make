# Empty compiler generated dependencies file for fig4_mnist_layer_time.
# This may be replaced when dependencies are built.
