file(REMOVE_RECURSE
  "CMakeFiles/fig5_mnist_layer_scalability.dir/bench_common.cpp.o"
  "CMakeFiles/fig5_mnist_layer_scalability.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig5_mnist_layer_scalability.dir/fig5_mnist_layer_scalability.cpp.o"
  "CMakeFiles/fig5_mnist_layer_scalability.dir/fig5_mnist_layer_scalability.cpp.o.d"
  "fig5_mnist_layer_scalability"
  "fig5_mnist_layer_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mnist_layer_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
