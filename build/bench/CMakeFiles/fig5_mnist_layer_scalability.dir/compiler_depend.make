# Empty compiler generated dependencies file for fig5_mnist_layer_scalability.
# This may be replaced when dependencies are built.
