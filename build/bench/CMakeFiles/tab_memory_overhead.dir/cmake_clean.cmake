file(REMOVE_RECURSE
  "CMakeFiles/tab_memory_overhead.dir/bench_common.cpp.o"
  "CMakeFiles/tab_memory_overhead.dir/bench_common.cpp.o.d"
  "CMakeFiles/tab_memory_overhead.dir/tab_memory_overhead.cpp.o"
  "CMakeFiles/tab_memory_overhead.dir/tab_memory_overhead.cpp.o.d"
  "tab_memory_overhead"
  "tab_memory_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_memory_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
