# Empty dependencies file for tab_memory_overhead.
# This may be replaced when dependencies are built.
