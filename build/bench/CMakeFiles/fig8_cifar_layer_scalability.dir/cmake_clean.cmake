file(REMOVE_RECURSE
  "CMakeFiles/fig8_cifar_layer_scalability.dir/bench_common.cpp.o"
  "CMakeFiles/fig8_cifar_layer_scalability.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig8_cifar_layer_scalability.dir/fig8_cifar_layer_scalability.cpp.o"
  "CMakeFiles/fig8_cifar_layer_scalability.dir/fig8_cifar_layer_scalability.cpp.o.d"
  "fig8_cifar_layer_scalability"
  "fig8_cifar_layer_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cifar_layer_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
