# Empty dependencies file for fig8_cifar_layer_scalability.
# This may be replaced when dependencies are built.
