file(REMOVE_RECURSE
  "CMakeFiles/fig6_mnist_overall.dir/bench_common.cpp.o"
  "CMakeFiles/fig6_mnist_overall.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig6_mnist_overall.dir/fig6_mnist_overall.cpp.o"
  "CMakeFiles/fig6_mnist_overall.dir/fig6_mnist_overall.cpp.o.d"
  "fig6_mnist_overall"
  "fig6_mnist_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mnist_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
