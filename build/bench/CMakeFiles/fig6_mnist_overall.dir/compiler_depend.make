# Empty compiler generated dependencies file for fig6_mnist_overall.
# This may be replaced when dependencies are built.
