file(REMOVE_RECURSE
  "CMakeFiles/abl_blas_vs_batch.dir/abl_blas_vs_batch.cpp.o"
  "CMakeFiles/abl_blas_vs_batch.dir/abl_blas_vs_batch.cpp.o.d"
  "CMakeFiles/abl_blas_vs_batch.dir/bench_common.cpp.o"
  "CMakeFiles/abl_blas_vs_batch.dir/bench_common.cpp.o.d"
  "abl_blas_vs_batch"
  "abl_blas_vs_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_blas_vs_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
