# Empty compiler generated dependencies file for abl_blas_vs_batch.
# This may be replaced when dependencies are built.
