file(REMOVE_RECURSE
  "CMakeFiles/fig9_cifar_overall.dir/bench_common.cpp.o"
  "CMakeFiles/fig9_cifar_overall.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig9_cifar_overall.dir/fig9_cifar_overall.cpp.o"
  "CMakeFiles/fig9_cifar_overall.dir/fig9_cifar_overall.cpp.o.d"
  "fig9_cifar_overall"
  "fig9_cifar_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cifar_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
