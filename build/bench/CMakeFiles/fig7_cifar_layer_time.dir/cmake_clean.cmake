file(REMOVE_RECURSE
  "CMakeFiles/fig7_cifar_layer_time.dir/bench_common.cpp.o"
  "CMakeFiles/fig7_cifar_layer_time.dir/bench_common.cpp.o.d"
  "CMakeFiles/fig7_cifar_layer_time.dir/fig7_cifar_layer_time.cpp.o"
  "CMakeFiles/fig7_cifar_layer_time.dir/fig7_cifar_layer_time.cpp.o.d"
  "fig7_cifar_layer_time"
  "fig7_cifar_layer_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cifar_layer_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
