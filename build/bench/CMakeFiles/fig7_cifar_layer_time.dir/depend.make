# Empty dependencies file for fig7_cifar_layer_time.
# This may be replaced when dependencies are built.
