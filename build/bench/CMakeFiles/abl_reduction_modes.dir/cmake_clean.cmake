file(REMOVE_RECURSE
  "CMakeFiles/abl_reduction_modes.dir/abl_reduction_modes.cpp.o"
  "CMakeFiles/abl_reduction_modes.dir/abl_reduction_modes.cpp.o.d"
  "CMakeFiles/abl_reduction_modes.dir/bench_common.cpp.o"
  "CMakeFiles/abl_reduction_modes.dir/bench_common.cpp.o.d"
  "abl_reduction_modes"
  "abl_reduction_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_reduction_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
