# Empty compiler generated dependencies file for abl_reduction_modes.
# This may be replaced when dependencies are built.
