file(REMOVE_RECURSE
  "CMakeFiles/abl_coalescing.dir/abl_coalescing.cpp.o"
  "CMakeFiles/abl_coalescing.dir/abl_coalescing.cpp.o.d"
  "CMakeFiles/abl_coalescing.dir/bench_common.cpp.o"
  "CMakeFiles/abl_coalescing.dir/bench_common.cpp.o.d"
  "abl_coalescing"
  "abl_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
