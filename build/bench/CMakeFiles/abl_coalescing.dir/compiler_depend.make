# Empty compiler generated dependencies file for abl_coalescing.
# This may be replaced when dependencies are built.
