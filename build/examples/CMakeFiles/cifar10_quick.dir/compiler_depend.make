# Empty compiler generated dependencies file for cifar10_quick.
# This may be replaced when dependencies are built.
