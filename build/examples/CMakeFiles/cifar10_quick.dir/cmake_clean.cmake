file(REMOVE_RECURSE
  "CMakeFiles/cifar10_quick.dir/cifar10_quick.cpp.o"
  "CMakeFiles/cifar10_quick.dir/cifar10_quick.cpp.o.d"
  "cifar10_quick"
  "cifar10_quick.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cifar10_quick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
