# Empty compiler generated dependencies file for custom_layer.
# This may be replaced when dependencies are built.
