# Empty dependencies file for convergence_invariance.
# This may be replaced when dependencies are built.
