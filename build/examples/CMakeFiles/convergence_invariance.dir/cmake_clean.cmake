file(REMOVE_RECURSE
  "CMakeFiles/convergence_invariance.dir/convergence_invariance.cpp.o"
  "CMakeFiles/convergence_invariance.dir/convergence_invariance.cpp.o.d"
  "convergence_invariance"
  "convergence_invariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
