# Empty compiler generated dependencies file for mnist_lenet.
# This may be replaced when dependencies are built.
