file(REMOVE_RECURSE
  "CMakeFiles/mnist_lenet.dir/mnist_lenet.cpp.o"
  "CMakeFiles/mnist_lenet.dir/mnist_lenet.cpp.o.d"
  "mnist_lenet"
  "mnist_lenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnist_lenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
