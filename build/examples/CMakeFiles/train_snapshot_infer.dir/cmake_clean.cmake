file(REMOVE_RECURSE
  "CMakeFiles/train_snapshot_infer.dir/train_snapshot_infer.cpp.o"
  "CMakeFiles/train_snapshot_infer.dir/train_snapshot_infer.cpp.o.d"
  "train_snapshot_infer"
  "train_snapshot_infer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_snapshot_infer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
