# Empty dependencies file for train_snapshot_infer.
# This may be replaced when dependencies are built.
