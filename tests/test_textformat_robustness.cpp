// Robustness sweep for the prototxt parser: pseudo-random token soup must
// either parse or throw cgdnn::Error — never crash, hang, or throw anything
// else. This is the library's only parser of external input.
#include <gtest/gtest.h>

#include <string>

#include "cgdnn/core/rng.hpp"
#include "cgdnn/proto/params.hpp"
#include "cgdnn/proto/textformat.hpp"

namespace cgdnn::proto {
namespace {

std::string RandomTokenSoup(Rng& rng, int tokens) {
  static const char* kTokens[] = {
      "layer",  "{",       "}",        ":",       "name",    "\"x\"",
      "type",   "3.14",    "-7",       "true",    "false",   "TRAIN",
      "bottom", "top",     "1e9",      "\"\"",    "#c\n",    "a_b.c",
      "param",  "include", "\"q\\n\"", "0",       "shape",   "dim",
  };
  std::string out;
  for (int i = 0; i < tokens; ++i) {
    out += kTokens[rng.UniformInt(0, std::size(kTokens) - 1)];
    out += ' ';
  }
  return out;
}

TEST(TextFormatRobustness, RandomTokenSoupNeverCrashes) {
  Rng rng(0xF00D);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string soup = RandomTokenSoup(rng, 1 + trial % 40);
    try {
      (void)TextMessage::Parse(soup);
      ++parsed;
    } catch (const Error&) {
      ++rejected;
    }
    // Any other exception type escapes and fails the test.
  }
  // Sanity: the sweep must exercise both outcomes.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(TextFormatRobustness, RandomBytesNeverCrash) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes;
    const int len = 1 + static_cast<int>(rng.UniformInt(0, 120));
    for (int i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.UniformInt(1, 127)));
    }
    try {
      (void)TextMessage::Parse(bytes);
    } catch (const Error&) {
      // expected for malformed input
    }
  }
  SUCCEED();
}

TEST(TextFormatRobustness, ValidStructureWithUnknownFieldsRejectedByTypedLayer) {
  // The generic parser accepts any well-formed tree; the typed layer is
  // where unknown fields are rejected, with the field name in the message.
  const auto msg = TextMessage::Parse(R"(
    name: "n"
    layer { name: "l" type: "ReLU" frobnicate: 12 }
  )");
  try {
    (void)NetParameter::FromText(msg);
    FAIL() << "expected rejection";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
  }
}

TEST(TextFormatRobustness, DeeplyNestedInputHandled) {
  std::string deep;
  constexpr int kDepth = 200;
  for (int i = 0; i < kDepth; ++i) deep += "m { ";
  deep += "x: 1 ";
  for (int i = 0; i < kDepth; ++i) deep += "} ";
  const auto msg = TextMessage::Parse(deep);
  const TextMessage* cur = &msg;
  for (int i = 0; i < kDepth; ++i) cur = &cur->Get("m").message();
  EXPECT_EQ(cur->GetInt("x"), 1);
}

TEST(TextFormatRobustness, HugeRepeatedFieldHandled) {
  std::string many = "name: \"n\"\n";
  for (int i = 0; i < 5000; ++i) many += "dim: " + std::to_string(i) + "\n";
  const auto msg = TextMessage::Parse(many);
  EXPECT_EQ(msg.Count("dim"), 5000u);
  EXPECT_EQ(msg.GetAll("dim").back()->AsInt(), 4999);
}

}  // namespace
}  // namespace cgdnn::proto
