// Tests for the annotated synchronization primitives
// (src/cgdnn/core/thread_annotations.hpp): cgdnn::Mutex, LockGuard,
// UniqueLock and the predicate-only CondVar. These wrap std types 1:1, so
// the interesting properties are behavioral — mutual exclusion, early
// unlock/relock, predicate waits surviving spurious wakeups, timed waits —
// exercised under real thread contention so the TSan stage of
// tools/run_checks.sh (SyncPrimitives rides in tsan_tests) can vouch for
// the wrappers themselves. One case runs a producer/consumer handoff under
// the armed write-set checker to prove the wrappers coexist with
// cgdnn-check instrumentation.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cgdnn/check/write_set.hpp"
#include "cgdnn/core/thread_annotations.hpp"

namespace cgdnn {
namespace {

TEST(SyncPrimitives, LockGuardMutualExclusion) {
  // N threads × M increments of a guarded counter: any lost update means
  // the guard did not exclude.
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  Mutex mu;
  std::int64_t counter CGDNN_GUARDED_BY(mu) = 0;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kIters; ++i) {
        LockGuard lock(mu);
        counter += 1;
      }
    });
  }
  for (auto& th : threads) th.join();

  LockGuard lock(mu);
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(SyncPrimitives, TryLockRespectsHolder) {
  Mutex mu;
  mu.lock();
  // A second try_lock on a non-recursive mutex from another thread must
  // fail while held and succeed after release.
  bool acquired_while_held = true;
  std::thread probe([&]() { acquired_while_held = mu.try_lock(); });
  probe.join();
  EXPECT_FALSE(acquired_while_held);
  mu.unlock();

  bool acquired_after_release = false;
  std::thread probe2([&]() {
    acquired_after_release = mu.try_lock();
    if (acquired_after_release) mu.unlock();
  });
  probe2.join();
  EXPECT_TRUE(acquired_after_release);
}

TEST(SyncPrimitives, UniqueLockEarlyUnlockAndRelock) {
  // The serve-queue handoff pattern: mutate under the lock, Unlock() to
  // run side effects, Lock() again to continue. owns_lock() tracks state.
  Mutex mu;
  int value CGDNN_GUARDED_BY(mu) = 0;

  UniqueLock lock(mu);
  EXPECT_TRUE(lock.owns_lock());
  value = 1;
  lock.Unlock();
  EXPECT_FALSE(lock.owns_lock());

  // While unlocked, another thread can take the mutex.
  std::thread other([&]() {
    LockGuard inner(mu);
    value = 2;
  });
  other.join();

  lock.Lock();
  EXPECT_TRUE(lock.owns_lock());
  EXPECT_EQ(value, 2);
}

TEST(SyncPrimitives, CondVarPredicateWake) {
  // Producer/consumer through CondVar::Wait. The predicate overload is the
  // only overload — a notify with the predicate still false must NOT
  // release the waiter (stage < wanted), which is exactly the
  // spurious-wakeup/missed-condition discipline the wrapper hardcodes.
  Mutex mu;
  CondVar cv;
  int stage CGDNN_GUARDED_BY(mu) = 0;
  int observed CGDNN_GUARDED_BY(mu) = -1;

  std::thread consumer([&]() {
    UniqueLock lock(mu);
    cv.Wait(mu, [&]() CGDNN_REQUIRES(mu) { return stage >= 2; });
    observed = stage;
  });

  {
    LockGuard lock(mu);
    stage = 1;
  }
  cv.NotifyAll();  // predicate still false: consumer must keep waiting
  {
    LockGuard lock(mu);
    stage = 2;
  }
  cv.NotifyAll();
  consumer.join();

  LockGuard lock(mu);
  EXPECT_EQ(observed, 2);
}

TEST(SyncPrimitives, WaitForTimesOutOnFalsePredicate) {
  Mutex mu;
  CondVar cv;
  bool never CGDNN_GUARDED_BY(mu) = false;

  UniqueLock lock(mu);
  const auto start = std::chrono::steady_clock::now();
  const bool ok =
      cv.WaitFor(mu, std::chrono::milliseconds(20),
                 [&]() CGDNN_REQUIRES(mu) { return never; });
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(ok);
  EXPECT_GE(elapsed, std::chrono::milliseconds(15));
}

TEST(SyncPrimitives, WaitUntilWakesOnPredicate) {
  // WaitUntil with a generous deadline must return true promptly once the
  // predicate flips — it is a deadline, not a sleep.
  Mutex mu;
  CondVar cv;
  bool ready CGDNN_GUARDED_BY(mu) = false;
  bool woke = false;

  std::thread waiter([&]() {
    UniqueLock lock(mu);
    woke = cv.WaitUntil(
        mu, std::chrono::steady_clock::now() + std::chrono::seconds(30),
        [&]() CGDNN_REQUIRES(mu) { return ready; });
  });

  {
    LockGuard lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_TRUE(woke);
}

TEST(SyncPrimitives, HandoffUnderArmedWriteSetChecker) {
  // The wrappers must coexist with cgdnn-check instrumentation: run a
  // bounded producer/consumer handoff with the write-set checker armed.
  // (When CGDNN_CHECK is compiled out, ScopedEnable is a no-op and this
  // degenerates to a plain concurrency test — still worth running.)
  check::ScopedEnable armed;
  constexpr int kItems = 1000;
  Mutex mu;
  CondVar cv;
  std::vector<int> queue CGDNN_GUARDED_BY(mu);
  bool done CGDNN_GUARDED_BY(mu) = false;
  std::int64_t sum = 0;

  std::thread consumer([&]() {
    std::int64_t local = 0;
    UniqueLock lock(mu);
    while (true) {
      cv.Wait(mu, [&]() CGDNN_REQUIRES(mu) {
        return done || !queue.empty();
      });
      for (int v : queue) local += v;
      queue.clear();
      if (done) break;
    }
    sum = local;
  });

  for (int i = 1; i <= kItems; ++i) {
    {
      LockGuard lock(mu);
      queue.push_back(i);
    }
    cv.NotifyOne();
  }
  {
    LockGuard lock(mu);
    done = true;
  }
  cv.NotifyOne();
  consumer.join();

  EXPECT_EQ(sum, static_cast<std::int64_t>(kItems) * (kItems + 1) / 2);
}

}  // namespace
}  // namespace cgdnn
