#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "cgdnn/blas/im2col.hpp"
#include "cgdnn/core/rng.hpp"

namespace cgdnn::blas {
namespace {

TEST(ConvOutSize, Basics) {
  EXPECT_EQ(ConvOutSize(28, 5, 0, 1, 1), 24);
  EXPECT_EQ(ConvOutSize(32, 5, 2, 1, 1), 32);  // "same" conv
  EXPECT_EQ(ConvOutSize(28, 2, 0, 2, 1), 14);  // pool-style stride
  EXPECT_EQ(ConvOutSize(7, 3, 0, 1, 2), 3);    // dilation 2 -> effective 5
}

TEST(Im2Col, IdentityKernelIsCopy) {
  // 1x1 kernel, stride 1: the column matrix equals the image.
  const std::vector<float> img = {1, 2, 3, 4, 5, 6};
  std::vector<float> col(6);
  im2col<float>(img.data(), 1, 2, 3, 1, 1, 0, 0, 1, 1, 1, 1, col.data());
  EXPECT_EQ(col, img);
}

TEST(Im2Col, TwoByTwoKernelKnownLayout) {
  // 1 channel, 3x3 image, 2x2 kernel, stride 1 -> 2x2 output, col is 4x4.
  const std::vector<float> img = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> col(16);
  im2col<float>(img.data(), 1, 3, 3, 2, 2, 0, 0, 1, 1, 1, 1, col.data());
  // Row r of col = kernel offset (kh, kw); column = output position.
  const std::vector<float> expected = {
      1, 2, 4, 5,   // (0,0)
      2, 3, 5, 6,   // (0,1)
      4, 5, 7, 8,   // (1,0)
      5, 6, 8, 9};  // (1,1)
  EXPECT_EQ(col, expected);
}

TEST(Im2Col, PaddingYieldsZeros) {
  const std::vector<float> img = {1, 2, 3, 4};  // 2x2
  // 3x3 kernel, pad 1, stride 1 -> 2x2 output; corner taps hit padding.
  std::vector<float> col(9 * 4);
  im2col<float>(img.data(), 1, 2, 2, 3, 3, 1, 1, 1, 1, 1, 1, col.data());
  // Kernel offset (0,0) looks up-left of every output: output (0,0) reads
  // padded (-1,-1) = 0; output (1,1) reads pixel (0,0) = 1.
  EXPECT_EQ(col[0], 0);
  EXPECT_EQ(col[3], 1);
  // Center tap (1,1) is the identity.
  const std::size_t center = 4 * 4;
  EXPECT_EQ(col[center + 0], 1);
  EXPECT_EQ(col[center + 3], 4);
}

TEST(Im2Col, MultiChannelStacksChannelMajor) {
  const std::vector<float> img = {1, 2, 3, 4,      // channel 0
                                  10, 20, 30, 40};  // channel 1
  std::vector<float> col(2 * 4);  // 1x1 kernel on 2x2
  im2col<float>(img.data(), 2, 2, 2, 1, 1, 0, 0, 1, 1, 1, 1, col.data());
  EXPECT_EQ(col, img);
}

// Adjointness: col2im is the transpose of im2col, so for random x, y:
//   <im2col(x), y> == <x, col2im(y)>.
// This single property pins down every indexing detail of both kernels.
using ColCase = std::tuple<int, int, int, int, int, int>;
// channels, size, kernel, pad, stride, dilation

class Im2ColAdjoint : public ::testing::TestWithParam<ColCase> {};

TEST_P(Im2ColAdjoint, InnerProductIdentity) {
  const auto [channels, size, kernel, pad, stride, dilation] = GetParam();
  const index_t out =
      ConvOutSize(size, kernel, pad, stride, dilation);
  ASSERT_GT(out, 0);
  const index_t img_count = channels * size * size;
  const index_t col_count = channels * kernel * kernel * out * out;

  Rng rng(static_cast<std::uint64_t>(channels * 1000 + size * 100 +
                                     kernel * 10 + pad + stride + dilation));
  std::vector<double> x(static_cast<std::size_t>(img_count));
  std::vector<double> y(static_cast<std::size_t>(col_count));
  for (auto& v : x) v = rng.Uniform(-1, 1);
  for (auto& v : y) v = rng.Uniform(-1, 1);

  std::vector<double> col(static_cast<std::size_t>(col_count));
  im2col<double>(x.data(), channels, size, size, kernel, kernel, pad, pad,
                 stride, stride, dilation, dilation, col.data());
  std::vector<double> img(static_cast<std::size_t>(img_count));
  col2im<double>(y.data(), channels, size, size, kernel, kernel, pad, pad,
                 stride, stride, dilation, dilation, img.data());

  double lhs = 0, rhs = 0;
  for (index_t i = 0; i < col_count; ++i) {
    lhs += col[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
  }
  for (index_t i = 0; i < img_count; ++i) {
    rhs += x[static_cast<std::size_t>(i)] * img[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(lhs, rhs, 1e-9 * static_cast<double>(col_count));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Im2ColAdjoint,
    ::testing::Values(ColCase{1, 5, 3, 0, 1, 1}, ColCase{3, 8, 3, 1, 1, 1},
                      ColCase{2, 9, 5, 2, 2, 1}, ColCase{1, 7, 3, 0, 2, 2},
                      ColCase{4, 6, 2, 0, 2, 1}, ColCase{1, 28, 5, 0, 1, 1},
                      ColCase{3, 32, 5, 2, 1, 1}));

TEST(Col2Im, AccumulatesOverlappingContributions) {
  // 2x2 kernel, stride 1 on a 3x3 image: center pixel (1,1) is covered by
  // all four output positions, once per kernel tap that reaches it.
  const index_t out = ConvOutSize(3, 2, 0, 1, 1);
  ASSERT_EQ(out, 2);
  std::vector<float> col(4 * 4, 1.0f);
  std::vector<float> img(9);
  col2im<float>(col.data(), 1, 3, 3, 2, 2, 0, 0, 1, 1, 1, 1, img.data());
  EXPECT_FLOAT_EQ(img[4], 4.0f);  // center: 4 contributions
  EXPECT_FLOAT_EQ(img[0], 1.0f);  // corner: 1 contribution
  EXPECT_FLOAT_EQ(img[1], 2.0f);  // edge: 2 contributions
}

}  // namespace
}  // namespace cgdnn::blas
