// Fault injection against the on-disk plan cache (docs/robustness.md).
// A serving process that crashes mid-StorePlan, a flaky disk, or a hand
// edit can leave .cgdnn_plan_cache entries torn. Every such corruption
// must degrade to a cache miss with the bad entry discarded (warned, not
// silent) so the next start re-plans instead of re-hitting the same parse
// failure forever — and a valid entry for a *different* key that collides
// into the same CRC filename must survive untouched.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <string>

#include "cgdnn/data/io.hpp"
#include "cgdnn/plan/plan_cache.hpp"

namespace cgdnn {
namespace {

plan::ExecutionPlan FaultPlanFixture() {
  plan::ExecutionPlan p;
  p.net_signature = "lenet|test|1|data:Data:4x1x28x28";
  p.batch = 4;
  p.threads = 2;
  p.git_sha = "deadbee";
  p.gflops = 12.5;
  p.mem_gbps = 6.25;
  plan::ConvDecision d;
  d.layer = "conv1";
  d.forward_direct = false;
  d.im2col_us = 4.5;
  d.direct_us = 6.0;
  p.conv_decisions.push_back(d);
  plan::FusionGroup g;
  g.producer = "ip1";
  g.consumers = {"relu1"};
  p.fusion_groups.push_back(g);
  return p;
}

class PlanCacheFaults : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "cgdnn_plan_cache_faults";
    std::filesystem::remove_all(dir_);
    plan_ = FaultPlanFixture();
    key_ = plan::PlanCacheKey{plan_.net_signature, plan_.batch,
                              plan_.threads, plan_.git_sha};
    path_ = plan::PlanCachePath(key_, dir_);
    plan::StorePlan(plan_, dir_);
    ASSERT_TRUE(std::filesystem::exists(path_));
  }

  std::string dir_;
  std::string path_;
  plan::ExecutionPlan plan_;
  plan::PlanCacheKey key_;
};

TEST_F(PlanCacheFaults, TruncationAtEveryByteIsDiscardedAndRecoverable) {
  const std::string full = data::ReadFileBytes(path_);
  ASSERT_GT(full.size(), 2u);
  // Every strict prefix of a valid entry is what a crashed non-atomic
  // writer (or torn disk sector) could leave behind. Byte granularity is
  // the JSON analogue of the checkpoint test's section boundaries: it
  // covers mid-token, mid-string, and mid-number cuts.
  for (std::size_t len = 0; len < full.size(); ++len) {
    data::WriteFileAtomic(path_, full.substr(0, len));
    plan::ExecutionPlan loaded;
    if (plan::LoadCachedPlan(key_, dir_, &loaded)) {
      // Only a cut that removed nothing but trailing whitespace may still
      // hit — and then it must be the complete plan, never a torn one.
      EXPECT_EQ(loaded.ToJson(), plan_.ToJson())
          << "cut at " << len << " loaded a partial plan";
      continue;
    }
    EXPECT_FALSE(std::filesystem::exists(path_))
        << "corrupt entry (cut at " << len << ") was not discarded";
    // The slot must be immediately reusable: re-plan + store + hit.
    plan::StorePlan(plan_, dir_);
    ASSERT_TRUE(plan::LoadCachedPlan(key_, dir_, &loaded))
        << "cache unusable after discarding cut at " << len;
  }
}

TEST_F(PlanCacheFaults, BitFlipsNeverLoadAWrongPlan) {
  const std::string full = data::ReadFileBytes(path_);
  const std::string want = plan_.ToJson();
  // Flip one bit in every region of the file (stride keeps runtime low;
  // offsets cover structure chars, keys, strings, and numbers).
  for (std::size_t at = 0; at < full.size(); at += 7) {
    std::string bytes = full;
    bytes[at] = static_cast<char>(bytes[at] ^ 0x20);
    data::WriteFileAtomic(path_, bytes);
    plan::ExecutionPlan loaded;
    if (plan::LoadCachedPlan(key_, dir_, &loaded)) {
      // A flip that keeps the JSON valid AND all four key fields intact
      // (inside a float, or a field name the parser then skips) is
      // allowed to hit — but what loaded must be a self-consistent plan
      // (key-verified, round-trippable), never a torn one.
      EXPECT_EQ(loaded.net_signature, key_.net_signature);
      EXPECT_EQ(loaded.batch, key_.batch);
      EXPECT_EQ(loaded.threads, key_.threads);
      EXPECT_EQ(loaded.git_sha, key_.git_sha);
      plan::ExecutionPlan round;
      EXPECT_TRUE(plan::ExecutionPlan::FromJson(loaded.ToJson(), &round))
          << "loaded plan does not round-trip (flip at " << at << ")";
    } else if (!std::filesystem::exists(path_)) {
      // Unparseable: must have been discarded; slot must recover.
      plan::StorePlan(plan_, dir_);
      ASSERT_TRUE(plan::LoadCachedPlan(key_, dir_, &loaded));
      EXPECT_EQ(loaded.ToJson(), want);
    }
    data::WriteFileAtomic(path_, full);  // restore for the next flip
  }
}

TEST_F(PlanCacheFaults, KeyMismatchIsAMissButTheFileSurvives) {
  // A CRC name collision means the file on disk is a valid plan for some
  // OTHER configuration. Deleting it would let two configurations evict
  // each other forever; a mismatch must stay a silent miss.
  plan::PlanCacheKey other = key_;
  other.git_sha = "0000000";
  data::WriteFileAtomic(plan::PlanCachePath(other, dir_),
                        plan_.ToJson());  // valid JSON, wrong git_sha
  plan::ExecutionPlan loaded;
  EXPECT_FALSE(plan::LoadCachedPlan(other, dir_, &loaded));
  EXPECT_TRUE(std::filesystem::exists(plan::PlanCachePath(other, dir_)));
}

TEST_F(PlanCacheFaults, EmptyAndGarbageEntriesAreDiscardedOnce) {
  for (const char* junk :
       {"", "\x01\x02\x7f", "not json at all", "{\"net_signature\":",
        "[1,2,3]", "{}"}) {
    data::WriteFileAtomic(path_, junk);
    plan::ExecutionPlan loaded;
    EXPECT_FALSE(plan::LoadCachedPlan(key_, dir_, &loaded));
    EXPECT_FALSE(std::filesystem::exists(path_))
        << "junk entry survived: '" << junk << "'";
  }
}

TEST_F(PlanCacheFaults, MissingFileIsASilentMissWithoutSideEffects) {
  std::filesystem::remove_all(dir_);
  plan::ExecutionPlan loaded;
  EXPECT_FALSE(plan::LoadCachedPlan(key_, dir_, &loaded));
  EXPECT_FALSE(std::filesystem::exists(dir_));  // miss must not mkdir
}

}  // namespace
}  // namespace cgdnn
