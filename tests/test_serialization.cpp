#include "cgdnn/net/serialization.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "cgdnn/core/rng.hpp"
#include "cgdnn/data/dataset.hpp"
#include "cgdnn/net/models.hpp"

namespace cgdnn {
namespace {

class SerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cgdnn_ser_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    data::ClearDatasetCache();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static proto::NetParameter SmallNet() {
    models::ModelOptions opts;
    opts.batch_size = 4;
    opts.num_samples = 16;
    opts.with_accuracy = false;
    return models::LeNet(opts);
  }

  std::filesystem::path dir_;
};

TEST_F(SerializationTest, SaveLoadRoundTripBitExact) {
  SeedGlobalRng(1);
  Net<float> source(SmallNet(), Phase::kTrain);
  SaveWeights(source, Path("w.cgdnn"));

  SeedGlobalRng(2);  // different init
  Net<float> target(SmallNet(), Phase::kTrain);
  // Must differ before the load...
  EXPECT_NE(source.layer_by_name("conv1")->blobs()[0]->cpu_data()[0],
            target.layer_by_name("conv1")->blobs()[0]->cpu_data()[0]);
  const std::size_t restored = LoadWeights(target, Path("w.cgdnn"));
  EXPECT_EQ(restored, 4u);  // conv1, conv2, ip1, ip2
  // ...and match exactly after.
  for (const auto& name : {"conv1", "conv2", "ip1", "ip2"}) {
    const auto& a = source.layer_by_name(name)->blobs();
    const auto& b = target.layer_by_name(name)->blobs();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      for (index_t i = 0; i < a[j]->count(); ++i) {
        ASSERT_EQ(a[j]->cpu_data()[i], b[j]->cpu_data()[i])
            << name << " blob " << j << " element " << i;
      }
    }
  }
}

TEST_F(SerializationTest, TrainedWeightsReproduceForwardOutputs) {
  // Dataset of exactly one batch: every Forward sees the same samples, so
  // the loss depends only on the weights.
  models::ModelOptions opts;
  opts.batch_size = 8;
  opts.num_samples = 8;
  opts.with_accuracy = false;
  const auto one_batch_net = models::LeNet(opts);

  SeedGlobalRng(3);
  Net<float> net(one_batch_net, Phase::kTrain);
  net.ClearParamDiffs();
  net.ForwardBackward();  // perturb from init
  for (auto* p : const_cast<std::vector<Blob<float>*>&>(net.learnable_params())) {
    p->Update();
  }
  const float loss_before = net.Forward();
  SaveWeights(net, Path("trained.cgdnn"));

  SeedGlobalRng(99);
  Net<float> restored(one_batch_net, Phase::kTrain);
  LoadWeights(restored, Path("trained.cgdnn"));
  const float loss_after = restored.Forward();
  EXPECT_EQ(loss_before, loss_after)
      << "same weights + same data stream must give the same loss";
}

TEST_F(SerializationTest, CrossPrecisionLoad) {
  SeedGlobalRng(4);
  Net<double> source(SmallNet(), Phase::kTrain);
  SaveWeights(source, Path("f64.cgdnn"));
  SeedGlobalRng(5);
  Net<float> target(SmallNet(), Phase::kTrain);
  EXPECT_EQ(LoadWeights(target, Path("f64.cgdnn")), 4u);
  const double expected = source.layer_by_name("ip2")->blobs()[0]->cpu_data()[7];
  EXPECT_FLOAT_EQ(target.layer_by_name("ip2")->blobs()[0]->cpu_data()[7],
                  static_cast<float>(expected));
}

TEST_F(SerializationTest, UnknownLayersAreSkipped) {
  SeedGlobalRng(6);
  Net<float> lenet(SmallNet(), Phase::kTrain);
  SaveWeights(lenet, Path("lenet.cgdnn"));

  // A different net sharing only ip2's name and shape... build tiny net
  // with one same-named layer of a DIFFERENT shape to prove shape checking,
  // and a net with no matching layers to prove skipping.
  const auto other = proto::NetParameter::FromString(R"(
    name: "other"
    layer {
      name: "data" type: "Data" top: "data" top: "label"
      data_param { source: "synthetic-mnist" batch_size: 2 num_samples: 8 seed: 1 }
    }
    layer {
      name: "fc_unrelated" type: "InnerProduct" bottom: "data" top: "fc"
      inner_product_param { num_output: 3 weight_filler { type: "xavier" } }
    }
    layer {
      name: "loss" type: "SoftmaxWithLoss" bottom: "fc" bottom: "label"
      top: "loss"
    }
  )");
  Net<float> unrelated(other, Phase::kTrain);
  EXPECT_EQ(LoadWeights(unrelated, Path("lenet.cgdnn")), 0u);
}

TEST_F(SerializationTest, ShapeMismatchRejected) {
  SeedGlobalRng(7);
  Net<float> lenet(SmallNet(), Phase::kTrain);
  SaveWeights(lenet, Path("lenet.cgdnn"));

  auto modified = SmallNet();
  for (auto& lp : modified.layer) {
    if (lp.name == "ip1") lp.inner_product_param.num_output = 300;  // was 500
  }
  Net<float> target(modified, Phase::kTrain);
  EXPECT_THROW(LoadWeights(target, Path("lenet.cgdnn")), Error);
}

namespace {
// Hand-built weights file with attacker-controlled blob dimensions: a
// valid header/layer framing whose first blob claims the given dims.
std::string WeightsFileWithDims(const std::vector<std::int64_t>& dims) {
  std::string bytes("CGDNNWTS", 8);
  const auto pod = [&bytes](const auto& v) {
    bytes.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  pod(std::uint32_t{1});  // version
  pod(std::uint32_t{1});  // layer count
  const std::string name = "ip";
  pod(static_cast<std::uint32_t>(name.size()));
  bytes.append(name);
  pod(std::uint32_t{1});  // blob count
  pod(static_cast<std::uint32_t>(dims.size()));
  for (const std::int64_t d : dims) pod(d);
  pod(std::uint8_t{4});  // float32 payload (absent — dims must fail first)
  return bytes;
}
}  // namespace

TEST_F(SerializationTest, NonPositiveBlobDimensionsRejected) {
  SeedGlobalRng(10);
  Net<float> net(SmallNet(), Phase::kTrain);
  for (const auto& dims : std::vector<std::vector<std::int64_t>>{
           {0, 10}, {-1, 10}, {10, -4}, {std::int64_t{-1} << 40}}) {
    const std::string path = Path("baddims.cgdnn");
    std::ofstream(path, std::ios::binary) << WeightsFileWithDims(dims);
    EXPECT_THROW(LoadWeights(net, path), Error) << "dims[0]=" << dims[0];
  }
}

TEST_F(SerializationTest, HugeBlobDimensionsRejectedBeforeAllocation) {
  SeedGlobalRng(11);
  Net<float> net(SmallNet(), Phase::kTrain);
  // Each variant would overflow or exhaust memory if the dims were
  // multiplied or passed to an allocation unchecked.
  for (const auto& dims : std::vector<std::vector<std::int64_t>>{
           {std::int64_t{1} << 62},
           {std::int64_t{1} << 31, std::int64_t{1} << 31},
           {std::int64_t{1} << 21, std::int64_t{1} << 21,
            std::int64_t{1} << 21}}) {
    const std::string path = Path("hugedims.cgdnn");
    std::ofstream(path, std::ios::binary) << WeightsFileWithDims(dims);
    EXPECT_THROW(LoadWeights(net, path), Error);
  }
}

TEST_F(SerializationTest, SaveLeavesNoTempFile) {
  SeedGlobalRng(12);
  Net<float> net(SmallNet(), Phase::kTrain);
  SaveWeights(net, Path("atomic.cgdnn"));
  EXPECT_TRUE(std::filesystem::exists(Path("atomic.cgdnn")));
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    ++entries;
    EXPECT_EQ(entry.path().extension(), ".cgdnn")
        << "stray file after atomic save: " << entry.path();
  }
  EXPECT_EQ(entries, 1u);
}

TEST_F(SerializationTest, CorruptFilesRejected) {
  SeedGlobalRng(8);
  Net<float> net(SmallNet(), Phase::kTrain);
  EXPECT_THROW(LoadWeights(net, Path("absent.cgdnn")), Error);
  {
    std::ofstream out(Path("bad.cgdnn"), std::ios::binary);
    out.write("NOTWEIGHTS", 10);
  }
  EXPECT_THROW(LoadWeights(net, Path("bad.cgdnn")), Error);
  // Truncated: valid header, then EOF.
  SaveWeights(net, Path("trunc.cgdnn"));
  std::filesystem::resize_file(Path("trunc.cgdnn"), 40);
  EXPECT_THROW(LoadWeights(net, Path("trunc.cgdnn")), Error);
}

}  // namespace
}  // namespace cgdnn
