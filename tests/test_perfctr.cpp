#include "cgdnn/perfctr/perfctr.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>

#include "cgdnn/parallel/instrument.hpp"
#include "cgdnn/perfctr/roofline.hpp"
#include "cgdnn/trace/counters.hpp"
#include "cgdnn/trace/metrics.hpp"
#include "cgdnn/trace/trace.hpp"

namespace cgdnn::perfctr {
namespace {

// Restores the process-wide perfctr and trace state around each test so the
// order of test execution cannot leak an armed/forced configuration.
class PerfctrTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("CGDNN_PERFCTR");
    ForceUnavailableForTest(false);
    ResetForTest();
    trace::SetMetrics(false);
    trace::Tracer::Get().Stop();
    trace::Tracer::Get().Clear();
    trace::MetricsRegistry::Default().Reset();
  }
};

Sample MakeSample(std::uint64_t cycles, std::uint64_t instructions,
                  std::uint64_t enabled, std::uint64_t running) {
  Sample s;
  s.valid = true;
  s.time_enabled = enabled;
  s.time_running = running;
  s.present[static_cast<int>(Event::kCycles)] = true;
  s.value[static_cast<int>(Event::kCycles)] = cycles;
  s.present[static_cast<int>(Event::kInstructions)] = true;
  s.value[static_cast<int>(Event::kInstructions)] = instructions;
  return s;
}

// ----- pure counter math ---------------------------------------------------

TEST_F(PerfctrTest, WrapDeltaMonotonic) {
  EXPECT_EQ(WrapDelta(100, 350), 250u);
  EXPECT_EQ(WrapDelta(0, 0), 0u);
}

TEST_F(PerfctrTest, WrapDeltaSurvivesWraparound) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  // Counter wrapped past 2^64: prev near the top, cur restarted low.
  EXPECT_EQ(WrapDelta(max - 9, 15), 25u);
  EXPECT_EQ(WrapDelta(max, 0), 1u);
}

TEST_F(PerfctrTest, ScaleMultiplexedFullScheduleIsExact) {
  bool valid = false;
  EXPECT_DOUBLE_EQ(ScaleMultiplexed(1000, 500, 500, &valid), 1000.0);
  EXPECT_TRUE(valid);
}

TEST_F(PerfctrTest, ScaleMultiplexedExtrapolatesRotatedGroup) {
  bool valid = false;
  // Group on the PMU for only a quarter of the interval: estimate 4x.
  EXPECT_DOUBLE_EQ(ScaleMultiplexed(1000, 400, 100, &valid), 4000.0);
  EXPECT_TRUE(valid);
}

TEST_F(PerfctrTest, ScaleMultiplexedZeroIntervalIsExactZero) {
  bool valid = false;
  EXPECT_DOUBLE_EQ(ScaleMultiplexed(0, 0, 0, &valid), 0.0);
  EXPECT_TRUE(valid);
}

TEST_F(PerfctrTest, ScaleMultiplexedNeverScheduledIsInvalid) {
  bool valid = true;
  // enabled > 0 but running == 0: no basis for an estimate.
  EXPECT_DOUBLE_EQ(ScaleMultiplexed(123, 700, 0, &valid), 0.0);
  EXPECT_FALSE(valid);
}

TEST_F(PerfctrTest, ComputeDeltaScalesAndTracksPresence) {
  const Sample begin = MakeSample(1000, 3000, 1000, 1000);
  const Sample end = MakeSample(1400, 4000, 3000, 2000);  // enabled 2x running
  const Delta d = ComputeDelta(begin, end);
  ASSERT_TRUE(d.valid);
  EXPECT_DOUBLE_EQ(d.multiplex_scale, 2.0);
  EXPECT_TRUE(d.has(Event::kCycles));
  EXPECT_DOUBLE_EQ(d.get(Event::kCycles), 800.0);  // (1400-1000) * 2
  EXPECT_TRUE(d.has(Event::kInstructions));
  EXPECT_DOUBLE_EQ(d.get(Event::kInstructions), 2000.0);
  // Events the group never carried stay absent, not zero-present.
  EXPECT_FALSE(d.has(Event::kLLCRefs));
  EXPECT_FALSE(d.has(Event::kStalledCycles));
  EXPECT_DOUBLE_EQ(d.Ipc(), 2.5);
  EXPECT_LT(d.LlcMissRate(), 0.0);  // sentinel: refs/misses missing
  EXPECT_LT(d.StalledFrac(), 0.0);
}

TEST_F(PerfctrTest, ComputeDeltaHandlesCounterWraparound) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  Sample begin = MakeSample(max - 99, 0, 1000, 1000);
  Sample end = MakeSample(100, 500, 2000, 2000);
  const Delta d = ComputeDelta(begin, end);
  ASSERT_TRUE(d.valid);
  EXPECT_DOUBLE_EQ(d.get(Event::kCycles), 200.0);  // wrapped, not negative
}

TEST_F(PerfctrTest, ComputeDeltaRejectsInvalidSamples) {
  const Sample good = MakeSample(10, 10, 10, 10);
  Sample bad;  // valid == false
  EXPECT_FALSE(ComputeDelta(bad, good).valid);
  EXPECT_FALSE(ComputeDelta(good, bad).valid);
  // Group enabled over the interval but never scheduled: invalid estimate.
  const Sample never_ran_begin = MakeSample(5, 5, 0, 0);
  const Sample never_ran_end = MakeSample(5, 5, 1000, 0);
  EXPECT_FALSE(ComputeDelta(never_ran_begin, never_ran_end).valid);
}

TEST_F(PerfctrTest, DeltaAccumulateSumsAndIntersectsPresence) {
  Delta a = ComputeDelta(MakeSample(0, 0, 100, 100),
                         MakeSample(100, 400, 200, 200));
  Delta b = ComputeDelta(MakeSample(0, 0, 100, 100),
                         MakeSample(300, 200, 300, 200));  // scale 2x
  a.Accumulate(b);
  ASSERT_TRUE(a.valid);
  EXPECT_DOUBLE_EQ(a.get(Event::kCycles), 100.0 + 600.0);
  EXPECT_DOUBLE_EQ(a.get(Event::kInstructions), 400.0 + 400.0);
  EXPECT_DOUBLE_EQ(a.multiplex_scale, 2.0);  // worst scale wins

  // Accumulating an invalid delta changes nothing; accumulating into an
  // invalid delta adopts the other side.
  Delta invalid;
  a.Accumulate(invalid);
  EXPECT_DOUBLE_EQ(a.get(Event::kCycles), 700.0);
  Delta fresh;
  fresh.Accumulate(a);
  ASSERT_TRUE(fresh.valid);
  EXPECT_DOUBLE_EQ(fresh.get(Event::kCycles), 700.0);
}

// ----- fallback discipline -------------------------------------------------

TEST_F(PerfctrTest, EnvVariableDisablesCounters) {
  setenv("CGDNN_PERFCTR", "off", 1);
  ResetForTest();
  EXPECT_FALSE(Supported());
  EXPECT_NE(UnavailableReason().find("CGDNN_PERFCTR"), std::string::npos);
  SetActive(true);  // arming must not stick on an unsupported host
  EXPECT_FALSE(CollectionActive());
  EXPECT_FALSE(ReadThreadCounters().valid);
}

TEST_F(PerfctrTest, SimulatedOpenFailureFallsBackCleanly) {
  ForceUnavailableForTest(true);
  ResetForTest();
  EXPECT_FALSE(Supported());
  EXPECT_FALSE(UnavailableReason().empty());
  SetActive(true);
  EXPECT_FALSE(CollectionActive());
  EXPECT_FALSE(ReadThreadCounters().valid);
}

TEST_F(PerfctrTest, MetricsOmitCounterFieldsWhenUnavailable) {
  ForceUnavailableForTest(true);
  ResetForTest();
  SetActive(true);
  trace::SetMetrics(true);
  auto& registry = trace::MetricsRegistry::Default();
  registry.Reset();
  {
    parallel::RegionStats rs("fbtest.forward", 2);
    EXPECT_TRUE(rs.active());
    EXPECT_FALSE(rs.counters_active());
    rs.AddThreadBusyNs(0, 1000);
    rs.AddThreadBusyNs(1, 3000);
  }
  // Timing-derived metrics still land ...
  EXPECT_NE(registry.FindGauge("region.fbtest.forward.imbalance_last"),
            nullptr);
  // ... but counter-derived keys are absent, not zeroed.
  EXPECT_EQ(registry.FindCounter("region.fbtest.forward.cycles"), nullptr);
  EXPECT_EQ(registry.FindGauge("region.fbtest.forward.ipc_last"), nullptr);
}

TEST_F(PerfctrTest, TraceOmitsCounterArgsWhenUnavailable) {
  ForceUnavailableForTest(true);
  ResetForTest();
  SetActive(true);
  trace::Tracer::Get().Clear();
  trace::Tracer::Get().Start();
  {
    parallel::RegionStats rs("fbtrace.forward", 1);
    parallel::ThreadRegionScope scope(rs, 0);
  }
  trace::Tracer::Get().Stop();
  std::ostringstream out;
  trace::Tracer::Get().WriteChromeTrace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("fbtrace.forward"), std::string::npos);
  // Span events must not carry counter args; only the leading provenance
  // metadata event may have an args object.
  const auto meta_end = json.find("}}");
  ASSERT_NE(meta_end, std::string::npos);
  EXPECT_EQ(json.find("\"args\"", meta_end), std::string::npos);
  EXPECT_EQ(json.find("cycles"), std::string::npos);
}

TEST_F(PerfctrTest, RecordCounterDeltaMetricsIgnoresInvalidDelta) {
  auto& registry = trace::MetricsRegistry::Default();
  registry.Reset();
  trace::RecordCounterDeltaMetrics("layer.x.forward", Delta{}, registry);
  EXPECT_EQ(registry.FindCounter("layer.x.forward.cycles"), nullptr);
}

TEST_F(PerfctrTest, RecordCounterDeltaMetricsWritesPresentEventsOnly) {
  auto& registry = trace::MetricsRegistry::Default();
  registry.Reset();
  const Delta d = ComputeDelta(MakeSample(0, 0, 100, 100),
                               MakeSample(500, 1000, 200, 200));
  trace::RecordCounterDeltaMetrics("layer.x.forward", d, registry);
  const auto* cycles = registry.FindCounter("layer.x.forward.cycles");
  ASSERT_NE(cycles, nullptr);
  EXPECT_EQ(cycles->value(), 500);
  const auto* ipc = registry.FindGauge("layer.x.forward.ipc_last");
  ASSERT_NE(ipc, nullptr);
  EXPECT_DOUBLE_EQ(ipc->value(), 2.0);
  // LLC events were absent from the delta: no keys, not zeroes.
  EXPECT_EQ(registry.FindCounter("layer.x.forward.llc_misses"), nullptr);
  EXPECT_EQ(registry.FindGauge("layer.x.forward.llc_miss_rate_last"),
            nullptr);
}

// ----- imbalance attribution ----------------------------------------------

TEST_F(PerfctrTest, RegionStatsAttributesStraggler) {
  trace::SetMetrics(true);
  parallel::RegionStats rs("skew.forward", 4);
  ASSERT_TRUE(rs.active());
  rs.AddThreadBusyNs(0, 100);
  rs.AddThreadBusyNs(1, 100);
  rs.AddThreadBusyNs(2, 100);
  rs.AddThreadBusyNs(3, 400);  // the straggler
  // mean = 175ns, max = 400ns
  EXPECT_NEAR(rs.ImbalanceRatio(), 400.0 / 175.0, 1e-12);
  EXPECT_EQ(rs.StragglerTid(), 3);
}

TEST_F(PerfctrTest, RegionStatsBalancedRegionReportsUnity) {
  trace::SetMetrics(true);
  parallel::RegionStats rs("flat.forward", 3);
  for (int tid = 0; tid < 3; ++tid) rs.AddThreadBusyNs(tid, 500);
  EXPECT_DOUBLE_EQ(rs.ImbalanceRatio(), 1.0);
}

TEST_F(PerfctrTest, RegionStatsIgnoresIdleThreads) {
  trace::SetMetrics(true);
  parallel::RegionStats rs("partial.forward", 4);
  // Only two threads did work; idle slots must not drag the mean down.
  rs.AddThreadBusyNs(0, 300);
  rs.AddThreadBusyNs(2, 100);
  EXPECT_NEAR(rs.ImbalanceRatio(), 300.0 / 200.0, 1e-12);
  EXPECT_EQ(rs.StragglerTid(), 0);
}

// ----- roofline ------------------------------------------------------------

TEST_F(PerfctrTest, PlaceOnRooflineMemoryBoundPoint) {
  MachinePeak peak;
  peak.gflops = 100.0;
  peak.mem_gbps = 10.0;  // ridge at 10 FLOP/B
  // ai = 1 FLOP/B, well left of the ridge: bandwidth roof applies.
  const auto p = PlaceOnRoofline(/*flops=*/1e9, /*bytes=*/1e9,
                                 /*time_us=*/1e6, peak);
  ASSERT_TRUE(p.valid);
  EXPECT_DOUBLE_EQ(p.ai, 1.0);
  EXPECT_DOUBLE_EQ(p.achieved_gflops, 1.0);
  EXPECT_DOUBLE_EQ(p.attainable_gflops, 10.0);  // ai * bw < peak
  EXPECT_TRUE(p.memory_limited);
  EXPECT_DOUBLE_EQ(p.roof_efficiency, 0.1);
}

TEST_F(PerfctrTest, PlaceOnRooflineComputeBoundPoint) {
  MachinePeak peak;
  peak.gflops = 100.0;
  peak.mem_gbps = 10.0;
  // ai = 100 FLOP/B, right of the ridge: compute roof applies.
  const auto p = PlaceOnRoofline(1e9, 1e7, /*time_us=*/2e4, peak);
  ASSERT_TRUE(p.valid);
  EXPECT_DOUBLE_EQ(p.ai, 100.0);
  EXPECT_DOUBLE_EQ(p.achieved_gflops, 50.0);
  EXPECT_DOUBLE_EQ(p.attainable_gflops, 100.0);
  EXPECT_FALSE(p.memory_limited);
  EXPECT_DOUBLE_EQ(p.roof_efficiency, 0.5);
}

TEST_F(PerfctrTest, PlaceOnRooflineRejectsDegenerateInputs) {
  MachinePeak peak;
  peak.gflops = 100.0;
  peak.mem_gbps = 10.0;
  EXPECT_FALSE(PlaceOnRoofline(0, 1e6, 100, peak).valid);   // no flops
  EXPECT_FALSE(PlaceOnRoofline(1e6, 0, 100, peak).valid);   // no bytes
  EXPECT_FALSE(PlaceOnRoofline(1e6, 1e6, 0, peak).valid);   // no time
  EXPECT_FALSE(PlaceOnRoofline(1e6, 1e6, 100, MachinePeak{}).valid);
}

TEST_F(PerfctrTest, ClassifyBoundBranches) {
  MachinePeak peak;
  peak.gflops = 100.0;
  peak.mem_gbps = 10.0;
  const auto mem = PlaceOnRoofline(1e9, 1e9, 1e6, peak);
  const auto cpu = PlaceOnRoofline(1e9, 1e7, 2e4, peak);
  // Straggler attribution wins over the roofline when measured.
  EXPECT_EQ(ClassifyBound(cpu, kImbalanceBoundThreshold + 0.1),
            BoundClass::kImbalance);
  // Below the threshold (or unmeasured, <= 0) the roof decides.
  EXPECT_EQ(ClassifyBound(mem, 1.05), BoundClass::kMemory);
  EXPECT_EQ(ClassifyBound(cpu, 0.0), BoundClass::kCompute);
  EXPECT_EQ(ClassifyBound(RooflinePoint{}, 2.0), BoundClass::kUnknown);
}

TEST_F(PerfctrTest, BoundClassNamesAreStable) {
  EXPECT_STREQ(BoundClassName(BoundClass::kCompute), "compute");
  EXPECT_STREQ(BoundClassName(BoundClass::kMemory), "memory");
  EXPECT_STREQ(BoundClassName(BoundClass::kImbalance), "imbalance");
  EXPECT_STREQ(BoundClassName(BoundClass::kUnknown), "unknown");
}

TEST_F(PerfctrTest, MachinePeakProbeProducesPositiveCeilings) {
  // Tiny probe sizes: this checks plumbing, not peak quality.
  const MachinePeak peak =
      MeasureMachinePeak(/*threads=*/1, /*gemm_dim=*/48,
                         /*triad_elems=*/1 << 14, /*reps=*/1);
  EXPECT_EQ(peak.threads, 1);
  EXPECT_GT(peak.gflops, 0.0);
  EXPECT_GT(peak.mem_gbps, 0.0);
  EXPECT_GT(peak.RidgeAi(), 0.0);
}

// ----- live counters (only on hosts that deliver them) ---------------------

TEST_F(PerfctrTest, LiveCounterSetSmokeWhenSupported) {
  ResetForTest();
  if (!Supported()) {
    GTEST_SKIP() << "hardware counters unavailable: " << UnavailableReason();
  }
  CounterSet set;
  ASSERT_TRUE(set.Open());
  const Sample begin = set.Read();
  ASSERT_TRUE(begin.valid);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const Sample end = set.Read();
  ASSERT_TRUE(end.valid);
  const Delta d = ComputeDelta(begin, end);
  ASSERT_TRUE(d.valid);
  EXPECT_TRUE(d.has(Event::kCycles));
  EXPECT_GT(d.get(Event::kCycles), 0.0);
}

}  // namespace
}  // namespace cgdnn::perfctr
