#include <gtest/gtest.h>

#include <cmath>

#include "cgdnn/layers/loss_layers.hpp"
#include "cgdnn/layers/softmax_layer.hpp"
#include "gradient_checker.hpp"

namespace cgdnn {
namespace {

using testing::FillUniform;
using testing::GradientChecker;

proto::LayerParameter Param(const std::string& type) {
  proto::LayerParameter p;
  p.name = "sm";
  p.type = type;
  return p;
}

template <typename Dtype>
class SoftmaxLayerTest : public ::testing::Test {};

using Dtypes = ::testing::Types<float, double>;
TYPED_TEST_SUITE(SoftmaxLayerTest, Dtypes);

TYPED_TEST(SoftmaxLayerTest, RowsSumToOneAndOrderPreserved) {
  Blob<TypeParam> bottom({3, 5});
  Blob<TypeParam> top;
  FillUniform<TypeParam>(&bottom, TypeParam(-3), TypeParam(3));
  std::vector<Blob<TypeParam>*> bots{&bottom}, tops{&top};
  SoftmaxLayer<TypeParam> layer(Param("Softmax"));
  layer.SetUp(bots, tops);
  layer.Forward(bots, tops);
  for (index_t n = 0; n < 3; ++n) {
    TypeParam sum = 0;
    for (index_t c = 0; c < 5; ++c) {
      const TypeParam p = top.cpu_data()[n * 5 + c];
      EXPECT_GT(p, TypeParam(0));
      EXPECT_LT(p, TypeParam(1));
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
    // Monotonic: larger logits give larger probabilities.
    for (index_t a = 0; a < 5; ++a) {
      for (index_t b = 0; b < 5; ++b) {
        if (bottom.cpu_data()[n * 5 + a] > bottom.cpu_data()[n * 5 + b]) {
          EXPECT_GT(top.cpu_data()[n * 5 + a], top.cpu_data()[n * 5 + b]);
        }
      }
    }
  }
}

TYPED_TEST(SoftmaxLayerTest, StableUnderLargeLogits) {
  Blob<TypeParam> bottom({1, 3});
  Blob<TypeParam> top;
  bottom.mutable_cpu_data()[0] = TypeParam(1000);
  bottom.mutable_cpu_data()[1] = TypeParam(1001);
  bottom.mutable_cpu_data()[2] = TypeParam(999);
  std::vector<Blob<TypeParam>*> bots{&bottom}, tops{&top};
  SoftmaxLayer<TypeParam> layer(Param("Softmax"));
  layer.SetUp(bots, tops);
  layer.Forward(bots, tops);
  for (index_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(std::isnan(static_cast<double>(top.cpu_data()[i])));
  }
  EXPECT_GT(top.cpu_data()[1], top.cpu_data()[0]);
}

TYPED_TEST(SoftmaxLayerTest, SpatialSoftmaxPerPosition) {
  Blob<TypeParam> bottom(1, 4, 2, 3);
  Blob<TypeParam> top;
  FillUniform<TypeParam>(&bottom, TypeParam(-1), TypeParam(1));
  std::vector<Blob<TypeParam>*> bots{&bottom}, tops{&top};
  SoftmaxLayer<TypeParam> layer(Param("Softmax"));
  layer.SetUp(bots, tops);
  layer.Forward(bots, tops);
  for (index_t h = 0; h < 2; ++h) {
    for (index_t w = 0; w < 3; ++w) {
      TypeParam sum = 0;
      for (index_t c = 0; c < 4; ++c) sum += top.data_at(0, c, h, w);
      EXPECT_NEAR(sum, 1.0, 1e-5);
    }
  }
}

TEST(SoftmaxGradient, Exhaustive) {
  Blob<double> bottom(2, 4, 2, 2);
  Blob<double> top;
  FillUniform<double>(&bottom, -2.0, 2.0);
  std::vector<Blob<double>*> bots{&bottom}, tops{&top};
  SoftmaxLayer<double> layer(Param("Softmax"));
  GradientChecker<double> checker(1e-4, 1e-4);
  checker.CheckGradientExhaustive(layer, bots, tops);
}

// --------------------------------------------------------- SoftmaxWithLoss

template <typename Dtype>
void MakeLossInputs(Blob<Dtype>& scores, Blob<Dtype>& labels, index_t num,
                    index_t classes, std::uint64_t seed = 1) {
  scores.Reshape({num, classes});
  FillUniform<Dtype>(&scores, Dtype(-2), Dtype(2), seed);
  labels.Reshape({num});
  Rng rng(seed + 1);
  for (index_t i = 0; i < num; ++i) {
    labels.mutable_cpu_data()[i] =
        static_cast<Dtype>(rng.UniformInt(0, classes - 1));
  }
}

TYPED_TEST(SoftmaxLayerTest, LossMatchesManualCrossEntropy) {
  Blob<TypeParam> scores, labels, loss;
  MakeLossInputs(scores, labels, 4, 3);
  std::vector<Blob<TypeParam>*> bots{&scores, &labels}, tops{&loss};
  SoftmaxWithLossLayer<TypeParam> layer(Param("SoftmaxWithLoss"));
  layer.SetUp(bots, tops);
  layer.Forward(bots, tops);

  double expected = 0;
  for (index_t n = 0; n < 4; ++n) {
    double max_v = scores.cpu_data()[n * 3];
    for (index_t c = 1; c < 3; ++c) {
      max_v = std::max(max_v, static_cast<double>(scores.cpu_data()[n * 3 + c]));
    }
    double denom = 0;
    for (index_t c = 0; c < 3; ++c) {
      denom += std::exp(static_cast<double>(scores.cpu_data()[n * 3 + c]) - max_v);
    }
    const auto lab = static_cast<index_t>(labels.cpu_data()[n]);
    expected -= std::log(
        std::exp(static_cast<double>(scores.cpu_data()[n * 3 + lab]) - max_v) /
        denom);
  }
  EXPECT_NEAR(loss.cpu_data()[0], expected / 4.0, 1e-5);
}

TYPED_TEST(SoftmaxLayerTest, PerfectPredictionGivesNearZeroLoss) {
  Blob<TypeParam> scores({2, 3});
  Blob<TypeParam> labels({2});
  Blob<TypeParam> loss;
  scores.set_data(TypeParam(0));
  scores.mutable_cpu_data()[0 * 3 + 1] = TypeParam(50);
  scores.mutable_cpu_data()[1 * 3 + 2] = TypeParam(50);
  labels.mutable_cpu_data()[0] = TypeParam(1);
  labels.mutable_cpu_data()[1] = TypeParam(2);
  std::vector<Blob<TypeParam>*> bots{&scores, &labels}, tops{&loss};
  SoftmaxWithLossLayer<TypeParam> layer(Param("SoftmaxWithLoss"));
  layer.SetUp(bots, tops);
  layer.Forward(bots, tops);
  EXPECT_NEAR(loss.cpu_data()[0], 0.0, 1e-5);
}

TEST(SoftmaxWithLossGradient, MatchesFiniteDifferences) {
  Blob<double> scores, labels, loss;
  MakeLossInputs(scores, labels, 5, 4, 7);
  std::vector<Blob<double>*> bots{&scores, &labels}, tops{&loss};
  SoftmaxWithLossLayer<double> layer(Param("SoftmaxWithLoss"));
  GradientChecker<double> checker(1e-4, 1e-4);
  // Only bottom[0] (scores) is differentiable.
  layer.SetUp(bots, tops);
  checker.CheckGradientSingle(layer, bots, tops, 0, 0, 0);
}

TYPED_TEST(SoftmaxLayerTest, IgnoreLabelSkipsSamples) {
  Blob<TypeParam> scores({2, 3});
  Blob<TypeParam> labels({2});
  Blob<TypeParam> loss;
  FillUniform<TypeParam>(&scores, TypeParam(-1), TypeParam(1));
  labels.mutable_cpu_data()[0] = TypeParam(1);
  labels.mutable_cpu_data()[1] = TypeParam(-1);  // ignored
  auto p = Param("SoftmaxWithLoss");
  p.loss_param.ignore_label = -1;
  std::vector<Blob<TypeParam>*> bots{&scores, &labels}, tops{&loss};
  SoftmaxWithLossLayer<TypeParam> layer(p);
  layer.SetUp(bots, tops);
  layer.Forward(bots, tops);
  loss.set_diff(TypeParam(1));
  layer.Backward(tops, {true, false}, bots);
  // The ignored sample's gradient must be exactly zero.
  for (index_t c = 0; c < 3; ++c) {
    EXPECT_EQ(scores.cpu_diff()[3 + c], TypeParam(0));
  }
}

TYPED_TEST(SoftmaxLayerTest, LossRejectsBackpropToLabels) {
  Blob<TypeParam> scores, labels, loss;
  MakeLossInputs(scores, labels, 2, 3);
  std::vector<Blob<TypeParam>*> bots{&scores, &labels}, tops{&loss};
  SoftmaxWithLossLayer<TypeParam> layer(Param("SoftmaxWithLoss"));
  layer.SetUp(bots, tops);
  layer.Forward(bots, tops);
  EXPECT_THROW(layer.Backward(tops, {true, true}, bots), Error);
}

TYPED_TEST(SoftmaxLayerTest, OutOfRangeLabelRejected) {
  Blob<TypeParam> scores({1, 3});
  Blob<TypeParam> labels({1});
  Blob<TypeParam> loss;
  FillUniform<TypeParam>(&scores, TypeParam(-1), TypeParam(1));
  labels.mutable_cpu_data()[0] = TypeParam(3);
  std::vector<Blob<TypeParam>*> bots{&scores, &labels}, tops{&loss};
  SoftmaxWithLossLayer<TypeParam> layer(Param("SoftmaxWithLoss"));
  layer.SetUp(bots, tops);
  EXPECT_THROW(layer.Forward(bots, tops), Error);
}

// ------------------------------------------------------------ EuclideanLoss

TYPED_TEST(SoftmaxLayerTest, EuclideanLossValue) {
  Blob<TypeParam> a({2, 2});
  Blob<TypeParam> b({2, 2});
  Blob<TypeParam> loss;
  a.set_data(TypeParam(3));
  b.set_data(TypeParam(1));
  std::vector<Blob<TypeParam>*> bots{&a, &b}, tops{&loss};
  EuclideanLossLayer<TypeParam> layer(Param("EuclideanLoss"));
  layer.SetUp(bots, tops);
  layer.Forward(bots, tops);
  // sum (3-1)^2 = 16 over 4 elements; / (2 * num=2) = 4.
  EXPECT_NEAR(loss.cpu_data()[0], 4.0, 1e-6);
}

TEST(EuclideanLossGradient, BothBottoms) {
  Blob<double> a({3, 4});
  Blob<double> b({3, 4});
  Blob<double> loss;
  FillUniform<double>(&a, -1.0, 1.0, 10);
  FillUniform<double>(&b, -1.0, 1.0, 11);
  std::vector<Blob<double>*> bots{&a, &b}, tops{&loss};
  EuclideanLossLayer<double> layer(Param("EuclideanLoss"));
  GradientChecker<double> checker(1e-4, 1e-4);
  layer.SetUp(bots, tops);
  checker.CheckGradientSingle(layer, bots, tops, -1, 0, 0);
}

}  // namespace
}  // namespace cgdnn
