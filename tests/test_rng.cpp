#include "cgdnn/core/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace cgdnn {
namespace {

TEST(Rng, DeterministicForSeedAndStream) {
  Rng a(42, 7);
  Rng b(42, 7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(1, 0), b(1, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(9);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(Rng, UniformIntInclusiveBoundsAndCoverage) {
  Rng rng(11);
  std::set<index_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const index_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u) << "all 5 values should occur in 1000 draws";
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(1);
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(Rng, GaussianMomentsApproximate) {
  Rng rng(77);
  constexpr int kN = 50000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.Gaussian(2.0, 3.0);
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / kN;
  const double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, GaussianZeroStddevIsConstant) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(rng.Gaussian(1.5, 0.0), 1.5);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(8);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, SplitIsOrderIndependent) {
  // Splitting substream k yields the same generator regardless of when the
  // parent's state was advanced — the property dropout masks rely on.
  Rng parent(100, 5);
  Rng early = parent.Split(3);
  parent.NextU64();
  parent.NextU64();
  Rng late = parent.Split(3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(early.NextU64(), late.NextU64());
  }
}

TEST(Rng, SplitSubstreamsIndependent) {
  Rng parent(100);
  Rng a = parent.Split(1);
  Rng b = parent.Split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.Uniform(2.0, 1.0), Error);
  EXPECT_THROW(rng.UniformInt(5, 4), Error);
  EXPECT_THROW(rng.Gaussian(0.0, -1.0), Error);
  EXPECT_THROW(rng.Bernoulli(-0.1), Error);
  EXPECT_THROW(rng.Bernoulli(1.1), Error);
}

TEST(GlobalRng, Reseedable) {
  SeedGlobalRng(1234);
  const std::uint64_t a = GlobalRng().NextU64();
  SeedGlobalRng(1234);
  const std::uint64_t b = GlobalRng().NextU64();
  EXPECT_EQ(a, b);
}

TEST(HashCombine64, SensitiveToBothInputs) {
  EXPECT_NE(HashCombine64(1, 2), HashCombine64(2, 1));
  EXPECT_NE(HashCombine64(1, 2), HashCombine64(1, 3));
}

// Property sweep: uniformity of low bits for several seeds (xoshiro256**
// scrambles well; a gross bias here would indicate a broken step function).
class RngBitBalance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBitBalance, LowBitRoughlyBalanced) {
  Rng rng(GetParam());
  int ones = 0;
  constexpr int kN = 4096;
  for (int i = 0; i < kN; ++i) ones += static_cast<int>(rng.NextU64() & 1);
  EXPECT_NEAR(static_cast<double>(ones) / kN, 0.5, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBitBalance,
                         ::testing::Values(1u, 2u, 42u, 1000u, 0xDEADBEEFu));

}  // namespace
}  // namespace cgdnn
